// Package repro's root benchmark suite: one testing.B benchmark per
// experiment in EXPERIMENTS.md (E1–E11), plus ablation benches for the
// design choices DESIGN.md calls out (index fan-out, incremental vs batch
// reasoning, reasoner-backed vs syntactic policy decisions, cache on/off).
//
// Run with:
//
//	go test -bench=. -benchmem
package repro

import (
	"fmt"
	"testing"

	"repro/internal/align"
	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/geoxacml"
	"repro/internal/gml"
	"repro/internal/grdf"
	"repro/internal/gsacs"
	"repro/internal/owl"
	"repro/internal/rdf"
	"repro/internal/seconto"
	"repro/internal/sparql"
	"repro/internal/store"
)

// --- E1: ontology construction (Fig. 1) -------------------------------------

func BenchmarkE1OntologyBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := grdf.Ontology()
		if g.Len() == 0 {
			b.Fatal("empty ontology")
		}
	}
}

func BenchmarkE1OntologyMaterialize(b *testing.B) {
	st := store.FromGraph(grdf.Ontology())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, stats := owl.Materialize(st); stats.Inferred == 0 {
			b.Fatal("no inferences")
		}
	}
}

// --- E2: listings round-trip (Lists 1–5, 8) ----------------------------------

func BenchmarkE2ListingsRoundTrip(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.E2Listings()
		if len(t.Rows) != 6 {
			b.Fatal("listing count changed")
		}
	}
}

// --- E3: topology realization (Fig. 2) ----------------------------------------

func BenchmarkE3TopologyRealize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.E3Topology()
		if len(t.Rows) == 0 {
			b.Fatal("no checks")
		}
	}
}

// --- E4: GML conversion (Lists 6–7) -------------------------------------------

func BenchmarkE4ConvertGML(b *testing.B) {
	hydro := datagen.Hydrology(datagen.HydrologyConfig{Seed: 20})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col, err := gml.FromGRDF(hydro.Store, datagen.HydroStream)
		if err != nil {
			b.Fatal(err)
		}
		doc := gml.Format(col)
		back, err := gml.ParseString(doc)
		if err != nil {
			b.Fatal(err)
		}
		st := store.New()
		if _, err := gml.ToGRDF(st, back, rdf.AppNS); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E5: scenario role views (Sec 7.1) -----------------------------------------

func BenchmarkE5ScenarioViews(b *testing.B) {
	sc := datagen.NewScenario(datagen.ScenarioConfig{Seed: 17, Sites: 20})
	reasoner := gsacs.NewOWLReasoner(sc.Merged, grdf.Ontology(), seconto.Ontology())
	for _, role := range []struct {
		name string
		iri  rdf.IRI
	}{
		{"MainRepair", datagen.RoleMainRepair},
		{"Hazmat", datagen.RoleHazmat},
		{"Emergency", datagen.RoleEmergency},
	} {
		b.Run(role.name, func(b *testing.B) {
			e := gsacs.New(sc.Policies, sc.Merged, gsacs.Options{Reasoner: reasoner})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v := e.View(role.iri, seconto.ActionView)
				if v.Len() == 0 {
					b.Fatal("empty view")
				}
			}
		})
	}
}

// --- E6: fine-grained vs object-level decision cost ---------------------------

func BenchmarkE6FineVsCoarse(b *testing.B) {
	sc := datagen.NewScenario(datagen.ScenarioConfig{Seed: 23, Sites: 20})
	reasoner := gsacs.NewOWLReasoner(sc.Merged, grdf.Ontology(), seconto.Ontology())
	e := gsacs.New(sc.Policies, sc.Merged, gsacs.Options{Reasoner: reasoner})
	xacml := &geoxacml.PolicySet{Rules: []geoxacml.Rule{
		{ID: "sites", Subject: "mainrep", Action: "view",
			Resource: datagen.ChemSite, Effect: geoxacml.Permit},
	}}
	sites := sc.Chemical.Sites

	b.Run("GRDF-decide", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			acc := e.Decide(datagen.RoleMainRepair, seconto.ActionView, sites[i%len(sites)].IRI)
			if !acc.Allowed {
				b.Fatal("denied")
			}
		}
	})
	b.Run("GeoXACML-decide", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if xacml.Evaluate("mainrep", "view", sites[i%len(sites)].IRI, sc.Merged) != geoxacml.Permit {
				b.Fatal("not permitted")
			}
		}
	})
	b.Run("GRDF-view", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e.View(datagen.RoleMainRepair, seconto.ActionView)
		}
	})
	b.Run("GeoXACML-view", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			xacml.View("mainrep", "view", sc.Merged)
		}
	})
}

// --- E7: enforcement under merge ----------------------------------------------

func BenchmarkE7MergeEnforcement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.E7MergeEnforcement()
		if len(t.Rows) != 4 {
			b.Fatal("unexpected table shape")
		}
	}
}

// --- E8: query cache -----------------------------------------------------------

func BenchmarkE8QueryCache(b *testing.B) {
	sc := datagen.NewScenario(datagen.ScenarioConfig{Seed: 31, Sites: 30})
	reasoner := gsacs.NewOWLReasoner(sc.Merged, grdf.Ontology(), seconto.Ontology())
	roles := []rdf.IRI{datagen.RoleMainRepair, datagen.RoleHazmat, datagen.RoleEmergency}

	b.Run("cache-off", func(b *testing.B) {
		e := gsacs.New(sc.Policies, sc.Merged, gsacs.Options{Reasoner: reasoner})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.View(roles[i%len(roles)], seconto.ActionView)
		}
	})
	b.Run("cache-on", func(b *testing.B) {
		e := gsacs.New(sc.Policies, sc.Merged, gsacs.Options{Reasoner: reasoner, CacheSize: 16})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.View(roles[i%len(roles)], seconto.ActionView)
		}
	})
}

// --- E9: reasoning scale --------------------------------------------------------

func BenchmarkE9Reasoning(b *testing.B) {
	for _, n := range []int{10, 50, 200} {
		b.Run(fmt.Sprintf("sites-%d", n), func(b *testing.B) {
			sc := datagen.NewScenario(datagen.ScenarioConfig{Seed: 37, Sites: n})
			data := sc.Merged.Snapshot()
			data.AddGraph(grdf.Ontology())
			triples := data.Triples()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := owl.NewReasoner()
				r.AddAll(triples)
				if r.InferredCount() == 0 {
					b.Fatal("no inferences")
				}
			}
			b.ReportMetric(float64(len(triples)), "triples")
		})
	}
}

// --- E10: store and SPARQL scale -------------------------------------------------

func BenchmarkE10StoreLoad(b *testing.B) {
	for _, n := range []int{10, 100, 400} {
		b.Run(fmt.Sprintf("sites-%d", n), func(b *testing.B) {
			sc := datagen.NewScenario(datagen.ScenarioConfig{Seed: 41, Sites: n})
			triples := sc.Merged.Triples()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st := store.New()
				st.AddAll(triples)
			}
			b.ReportMetric(float64(len(triples)), "triples")
		})
	}
}

func BenchmarkE10SparqlJoin(b *testing.B) {
	for _, n := range []int{10, 100, 400} {
		b.Run(fmt.Sprintf("sites-%d", n), func(b *testing.B) {
			sc := datagen.NewScenario(datagen.ScenarioConfig{Seed: 41, Sites: n})
			e := sparql.NewEngine(sc.Merged)
			q := `SELECT ?s ?n WHERE { ?s a app:ChemSite . ?s app:hasSiteName ?n }`
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := e.Query(q)
				if err != nil || len(res.Bindings) != n {
					b.Fatalf("rows=%d err=%v", len(res.Bindings), err)
				}
			}
		})
	}
}

func BenchmarkE10SpatialFilter(b *testing.B) {
	sc := datagen.NewScenario(datagen.ScenarioConfig{Seed: 41, Sites: 50})
	e := grdf.NewEngine(sc.Merged)
	q := fmt.Sprintf(`SELECT ?s WHERE { ?s a app:ChemSite . FILTER(grdf:distance(?s, <%s>) < 5280) }`,
		string(sc.Hydrology.Streams[0].IRI))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E11: alignment ---------------------------------------------------------------

func BenchmarkE11Alignment(b *testing.B) {
	left := grdf.Ontology()
	for i := 0; i < b.N; i++ {
		a := align.Align(left, left, align.Options{})
		if len(a.Pairs) == 0 {
			b.Fatal("no pairs")
		}
	}
}

// --- Ablations ---------------------------------------------------------------------

// BenchmarkAblationIndexes compares the store's indexed pattern matching
// against a full-scan baseline — the 1-index-vs-3 design choice.
func BenchmarkAblationIndexes(b *testing.B) {
	sc := datagen.NewScenario(datagen.ScenarioConfig{Seed: 43, Sites: 200})
	st := sc.Merged
	triples := st.Triples()
	pred := datagen.HasSiteName

	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if st.Count(nil, pred, nil) == 0 {
				b.Fatal("no matches")
			}
		}
	})
	b.Run("full-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 0
			for _, t := range triples {
				if t.Predicate.Equal(pred) {
					n++
				}
			}
			if n == 0 {
				b.Fatal("no matches")
			}
		}
	})
}

// BenchmarkAblationIncrementalReasoning compares streaming single-triple
// additions into a live reasoner against re-materializing from scratch after
// each change.
func BenchmarkAblationIncrementalReasoning(b *testing.B) {
	base := datagen.NewScenario(datagen.ScenarioConfig{Seed: 47, Sites: 20}).Merged.Snapshot()
	base.AddGraph(grdf.Ontology())
	newTriple := func(i int) rdf.Triple {
		return rdf.T(
			rdf.IRI(fmt.Sprintf("%sdelta%d", rdf.AppNS, i)),
			rdf.RDFType, datagen.ChemSite)
	}

	b.Run("incremental", func(b *testing.B) {
		r := owl.NewReasoner()
		r.AddAll(base.Triples())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Add(newTriple(i))
		}
	})
	b.Run("rematerialize", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st := base.Snapshot()
			st.Add(newTriple(i))
			owl.Materialize(st)
		}
	})
}

// BenchmarkAblationDecisionReasoner compares policy decisions with the OWL
// reasoner plugged in (subclass-aware resource matching) against the
// syntactic fallback.
func BenchmarkAblationDecisionReasoner(b *testing.B) {
	sc := datagen.NewScenario(datagen.ScenarioConfig{Seed: 53, Sites: 20})
	site := sc.Chemical.Sites[0].IRI

	b.Run("with-reasoner", func(b *testing.B) {
		reasoner := gsacs.NewOWLReasoner(sc.Merged, grdf.Ontology(), seconto.Ontology())
		e := gsacs.New(sc.Policies, sc.Merged, gsacs.Options{Reasoner: reasoner})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !e.Decide(datagen.RoleEmergency, seconto.ActionView, site).Allowed {
				b.Fatal("denied")
			}
		}
	})
	b.Run("syntactic", func(b *testing.B) {
		e := gsacs.New(sc.Policies, sc.Merged, gsacs.Options{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Decide(datagen.RoleEmergency, seconto.ActionView, site)
		}
	})
}

// --- E12: policy merge and conflict resolution ---------------------------------

func BenchmarkE12PolicyConflicts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.E12PolicyConflicts()
		if len(t.Rows) != 3 {
			b.Fatal("unexpected table shape")
		}
	}
}
