// Package load is an open-loop (constant-arrival-rate) load harness for the
// G-SACS HTTP surface. Requests are dispatched on a fixed schedule derived
// from the target RPS, independent of how fast earlier responses come back —
// the closed-loop alternative (fire, wait, fire) silently slows its own
// arrival rate whenever the server stalls, hiding exactly the latencies a
// capacity test exists to find (coordinated omission). Every sample is
// measured from its *intended* start time on that schedule, so a request
// that spent 900ms queued behind a stalled server and 100ms being served
// reports one second, not one hundred milliseconds.
package load

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Outcome classifies one completed request.
type Outcome int

const (
	// OK is a successful, full-fidelity response.
	OK Outcome = iota
	// Degraded is a successful response that carried a degradation marker
	// (a federated answer missing sources).
	Degraded
	// Error is a failed request: transport error or 5xx.
	Error
	// Shed is a request the server refused with 429 under admission control:
	// a deliberate, fast rejection carrying Retry-After. Sheds are counted
	// apart from errors and excluded from the latency distributions — a
	// refusal answered in microseconds is not service, and folding it in
	// would flatter the latency verdict of an overloaded server.
	Shed
)

// Arm is one traffic class in the mix: a weight and a request function.
// Do must honor ctx and classify the response; its error is recorded but
// not propagated (a load test keeps going when requests fail).
type Arm struct {
	Name   string
	Weight int
	Do     func(ctx context.Context) (Outcome, error)
}

// SLO are the client-side pass/fail targets applied to a Report.
type SLO struct {
	// Latency is the objective for Quantile (default 100ms).
	Latency time.Duration
	// Quantile the latency objective applies to (default 0.99).
	Quantile float64
	// Availability is the minimum fraction of non-Error outcomes
	// (default 0.999).
	Availability float64
}

func (s SLO) withDefaults() SLO {
	if s.Latency <= 0 {
		s.Latency = 100 * time.Millisecond
	}
	if s.Quantile <= 0 || s.Quantile >= 1 {
		s.Quantile = 0.99
	}
	if s.Availability <= 0 || s.Availability >= 1 {
		s.Availability = 0.999
	}
	return s
}

// Config drives one Run.
type Config struct {
	// RPS is the constant arrival rate (required, > 0).
	RPS float64
	// Duration is how long to keep dispatching (required, > 0).
	Duration time.Duration
	// Arms is the weighted traffic mix (required, non-empty).
	Arms []Arm
	// MaxInFlight bounds concurrently executing requests (default 4096).
	// Arrivals beyond the bound still start on schedule; they queue for a
	// slot and the queue wait counts into their recorded latency, exactly
	// like a real client staring at a saturated server.
	MaxInFlight int
	// Seed makes the arm-selection sequence reproducible (default 1).
	Seed int64
	// SLO are the pass/fail targets for the report.
	SLO SLO
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4096
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	c.SLO = c.SLO.withDefaults()
	return c
}

func (c Config) validate() error {
	if c.RPS <= 0 {
		return errors.New("load: RPS must be positive")
	}
	if c.Duration <= 0 {
		return errors.New("load: Duration must be positive")
	}
	if len(c.Arms) == 0 {
		return errors.New("load: at least one arm required")
	}
	total := 0
	for _, a := range c.Arms {
		if a.Weight < 0 {
			return errors.New("load: negative arm weight")
		}
		if a.Do == nil {
			return errors.New("load: arm without Do function")
		}
		total += a.Weight
	}
	if total == 0 {
		return errors.New("load: all arm weights are zero")
	}
	return nil
}

// armStats accumulates one arm's samples.
type armStats struct {
	name      string
	corrected *obs.LatencySketch // measured from intended start
	service   *obs.LatencySketch // measured from actual dispatch
	ok        atomic.Uint64
	degraded  atomic.Uint64
	errors    atomic.Uint64
	shed      atomic.Uint64
}

// Result is the raw outcome of one Run; Report renders it.
type Result struct {
	cfg     Config
	arms    []*armStats
	elapsed time.Duration
	sent    uint64
}

// Run executes one constant-rate trial. It returns when every dispatched
// request has completed or ctx is cancelled (in-flight requests are
// cancelled through the ctx handed to each arm).
func Run(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	stats := make([]*armStats, len(cfg.Arms))
	for i, a := range cfg.Arms {
		stats[i] = &armStats{
			name:      a.Name,
			corrected: obs.NewLatencySketch(),
			service:   obs.NewLatencySketch(),
		}
	}
	// Pre-draw the arm schedule so selection cost is off the dispatch path
	// and the sequence is reproducible for a given seed.
	total := int(cfg.RPS * cfg.Duration.Seconds())
	if total < 1 {
		total = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	picks := make([]int, total)
	weightSum := 0
	for _, a := range cfg.Arms {
		weightSum += a.Weight
	}
	for i := range picks {
		w := rng.Intn(weightSum)
		for j, a := range cfg.Arms {
			if w -= a.Weight; w < 0 {
				picks[i] = j
				break
			}
		}
	}

	interval := time.Duration(float64(time.Second) / cfg.RPS)
	sem := make(chan struct{}, cfg.MaxInFlight)
	var wg sync.WaitGroup
	start := time.Now()
	var sent uint64

dispatch:
	for i := 0; i < total; i++ {
		intended := start.Add(time.Duration(i) * interval)
		if d := time.Until(intended); d > 0 {
			timer := time.NewTimer(d)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				break dispatch
			}
		} else if ctx.Err() != nil {
			break dispatch
		}
		sent++
		arm := picks[i]
		wg.Add(1)
		// The goroutine — not the dispatcher — waits for an in-flight slot:
		// the dispatcher must never block, or the arrival rate would degrade
		// into a closed loop. Queue wait lands in the corrected latency.
		go func(intended time.Time, arm int) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				stats[arm].errors.Add(1)
				stats[arm].corrected.Record(time.Since(intended))
				return
			}
			callStart := time.Now()
			out, _ := cfg.Arms[arm].Do(ctx)
			if out == Shed {
				stats[arm].shed.Add(1)
				return
			}
			stats[arm].service.Record(time.Since(callStart))
			stats[arm].corrected.Record(time.Since(intended))
			switch out {
			case OK:
				stats[arm].ok.Add(1)
			case Degraded:
				stats[arm].degraded.Add(1)
			default:
				stats[arm].errors.Add(1)
			}
		}(intended, arm)
	}
	wg.Wait()
	return &Result{cfg: cfg, arms: stats, elapsed: time.Since(start), sent: sent}, nil
}

// Quantiles is the latency summary of one distribution, in milliseconds.
type Quantiles struct {
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`
	MeanMs float64 `json:"mean_ms"`
}

func quantilesOf(s *obs.LatencySketch) Quantiles {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return Quantiles{
		P50Ms:  ms(s.Quantile(0.50)),
		P90Ms:  ms(s.Quantile(0.90)),
		P99Ms:  ms(s.Quantile(0.99)),
		P999Ms: ms(s.Quantile(0.999)),
		MaxMs:  ms(s.Max()),
		MeanMs: ms(s.Mean()),
	}
}

// ArmReport is one arm's slice of the report.
type ArmReport struct {
	Name      string    `json:"name"`
	Requests  uint64    `json:"requests"`
	OK        uint64    `json:"ok"`
	Degraded  uint64    `json:"degraded"`
	Errors    uint64    `json:"errors"`
	Shed      uint64    `json:"shed"`
	Corrected Quantiles `json:"corrected"`
	Service   Quantiles `json:"service"`
}

// Verdict is the SLO pass/fail block.
type Verdict struct {
	LatencyTargetMs    float64 `json:"latency_target_ms"`
	LatencyQuantile    float64 `json:"latency_quantile"`
	LatencyMs          float64 `json:"latency_ms"`
	LatencyOK          bool    `json:"latency_ok"`
	AvailabilityTarget float64 `json:"availability_target"`
	Availability       float64 `json:"availability"`
	AvailabilityOK     bool    `json:"availability_ok"`
	Pass               bool    `json:"pass"`
}

// Report is the machine-readable result of one Run.
type Report struct {
	TargetRPS   float64 `json:"target_rps"`
	AchievedRPS float64 `json:"achieved_rps"`
	DurationSec float64 `json:"duration_sec"`
	Requests    uint64  `json:"requests"`
	OK          uint64  `json:"ok"`
	Degraded    uint64  `json:"degraded"`
	Errors      uint64  `json:"errors"`
	// Shed counts 429 refusals from server-side admission control. They are
	// reported apart from errors: a shed is the overload policy working (the
	// client got a fast, honest refusal with a Retry-After), not a fault.
	Shed uint64 `json:"shed"`
	// ShedRate is Shed / Requests.
	ShedRate float64 `json:"shed_rate"`
	// GoodputRPS is the rate of full-fidelity-or-degraded answers actually
	// delivered — the number that must not collapse when offered load
	// exceeds capacity.
	GoodputRPS float64 `json:"goodput_rps"`
	// Corrected is the coordinated-omission-corrected distribution: every
	// sample anchored at its intended start on the arrival schedule.
	Corrected Quantiles `json:"corrected"`
	// Service is the same traffic timed from actual dispatch — the number a
	// closed-loop harness would (misleadingly) report. The gap between the
	// two is the cost of queueing.
	Service Quantiles   `json:"service"`
	Arms    []ArmReport `json:"arms"`
	SLO     Verdict     `json:"slo"`
}

// Report renders r against its configured SLO.
func (r *Result) Report() Report {
	var armReports []ArmReport
	var corrected, service []*obs.LatencySketch
	var ok, degraded, errs, shed uint64
	for _, a := range r.arms {
		ar := ArmReport{
			Name:      a.name,
			OK:        a.ok.Load(),
			Degraded:  a.degraded.Load(),
			Errors:    a.errors.Load(),
			Shed:      a.shed.Load(),
			Corrected: quantilesOf(a.corrected),
			Service:   quantilesOf(a.service),
		}
		ar.Requests = ar.OK + ar.Degraded + ar.Errors + ar.Shed
		armReports = append(armReports, ar)
		corrected = append(corrected, a.corrected)
		service = append(service, a.service)
		ok += ar.OK
		degraded += ar.Degraded
		errs += ar.Errors
		shed += ar.Shed
	}
	allCorrected := obs.MergeSketches(corrected...)
	rep := Report{
		TargetRPS:   r.cfg.RPS,
		DurationSec: r.elapsed.Seconds(),
		Requests:    r.sent,
		OK:          ok,
		Degraded:    degraded,
		Errors:      errs,
		Shed:        shed,
		Corrected:   quantilesOf(allCorrected),
		Service:     quantilesOf(obs.MergeSketches(service...)),
		Arms:        armReports,
	}
	if r.elapsed > 0 {
		rep.AchievedRPS = float64(r.sent) / r.elapsed.Seconds()
		rep.GoodputRPS = float64(ok+degraded) / r.elapsed.Seconds()
	}
	if r.sent > 0 {
		rep.ShedRate = float64(shed) / float64(r.sent)
	}
	slo := r.cfg.SLO
	v := Verdict{
		LatencyTargetMs:    float64(slo.Latency) / float64(time.Millisecond),
		LatencyQuantile:    slo.Quantile,
		LatencyMs:          float64(allCorrected.Quantile(slo.Quantile)) / float64(time.Millisecond),
		AvailabilityTarget: slo.Availability,
	}
	v.LatencyOK = v.LatencyMs <= v.LatencyTargetMs
	// Availability judges admitted traffic only: a shed is the server
	// refusing work honestly, not failing it, so it leaves the denominator.
	// The shed rate is reported alongside — a server that sheds everything
	// is vacuously available at zero goodput, and the report shows both.
	if admitted := r.sent - shed; admitted > 0 {
		v.Availability = float64(ok+degraded) / float64(admitted)
	} else if r.sent > 0 {
		v.Availability = 1
	}
	v.AvailabilityOK = v.Availability >= slo.Availability
	v.Pass = v.LatencyOK && v.AvailabilityOK
	rep.SLO = v
	return rep
}

// SweepReport is the result of a Sweep: one Report per target rate plus the
// highest rate that passed its SLO.
type SweepReport struct {
	Steps []Report `json:"steps"`
	// MaxSustainedRPS is the highest *goodput* among SLO-passing steps, 0
	// when every step breached. Goodput, not offered rate: an admission-
	// controlled step may pass its SLO while shedding part of the offered
	// load, and only the answered part was sustained.
	MaxSustainedRPS float64 `json:"max_sustained_rps"`
	Pass            bool    `json:"pass"`
}

// Sweep runs base once per rate in rpsList (ascending), returning every
// step's report and the maximum sustained rate under SLO. Later steps still
// run after a breach — the shape of the degradation is the point.
func Sweep(ctx context.Context, base Config, rpsList []float64) (SweepReport, error) {
	rates := append([]float64(nil), rpsList...)
	sort.Float64s(rates)
	var sw SweepReport
	for _, rps := range rates {
		cfg := base
		cfg.RPS = rps
		res, err := Run(ctx, cfg)
		if err != nil {
			return sw, err
		}
		rep := res.Report()
		sw.Steps = append(sw.Steps, rep)
		if rep.SLO.Pass {
			sw.Pass = true
			if rep.GoodputRPS > sw.MaxSustainedRPS {
				sw.MaxSustainedRPS = rep.GoodputRPS
			}
		}
		if ctx.Err() != nil {
			break
		}
	}
	return sw, nil
}
