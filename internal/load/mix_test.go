package load

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/grdf"
	"repro/internal/gsacs"
	"repro/internal/rdf"
	"repro/internal/seconto"
)

// testServer spins up a gsacs server over the built-in scenario with a
// writer role, mirroring gsacs-server -writer-role Writer.
func testServer(t *testing.T) (*httptest.Server, string) {
	t.Helper()
	sc := datagen.NewScenario(datagen.ScenarioConfig{Seed: 7, Sites: 4})
	writer := rdf.IRI(seconto.NS + "Writer")
	for _, action := range []rdf.IRI{seconto.ActionView, seconto.ActionModify, seconto.ActionDelete} {
		sc.Policies.Rules = append(sc.Policies.Rules, seconto.Rule{
			ID:       rdf.IRI(seconto.NS + "LoadWriter" + action.LocalName()),
			Subject:  writer,
			Action:   action,
			Resource: grdf.Feature,
			Permit:   true,
		})
	}
	reasoner := gsacs.NewOWLReasoner(sc.Merged, grdf.Ontology(), seconto.Ontology())
	e := gsacs.New(sc.Policies, sc.Merged, gsacs.Options{Reasoner: reasoner})
	srv := httptest.NewServer(gsacs.NewServer(e, nil))
	t.Cleanup(srv.Close)
	return srv, string(sc.Chemical.Sites[0].IRI)
}

func TestScenarioArmsEndToEnd(t *testing.T) {
	srv, site := testServer(t)
	arms, err := ScenarioArms(MixConfig{
		BaseURL:    srv.URL,
		Client:     srv.Client(),
		WriterRole: "Writer",
		MutateSite: site,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(arms) != 4 {
		t.Fatalf("arms %d, want query x2 + view + mutate", len(arms))
	}
	ctx := context.Background()
	for _, arm := range arms {
		out, err := arm.Do(ctx)
		if out != OK || err != nil {
			t.Errorf("arm %s: outcome %v err %v", arm.Name, out, err)
		}
	}
}

func TestScenarioArmsMutateDisabledWithoutWriter(t *testing.T) {
	arms, err := ScenarioArms(MixConfig{BaseURL: "http://127.0.0.1:1"})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range arms {
		if len(a.Name) >= 6 && a.Name[:6] == "mutate" {
			t.Fatal("mutate arm present without a writer role")
		}
	}
	if _, err := ScenarioArms(MixConfig{}); err == nil {
		t.Fatal("missing BaseURL accepted")
	}
}

// TestScenarioArmsRoundRobin: with several targets the read arms must
// spread evenly across all of them, and the mutate arm must pin to the
// first (the leader of a replicated deployment).
func TestScenarioArmsRoundRobin(t *testing.T) {
	const n = 3
	hits := make([]int, n)
	bases := make([]string, n)
	for i := 0; i < n; i++ {
		i := i
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hits[i]++
			fmt.Fprint(w, `{"results":[]}`)
		}))
		t.Cleanup(srv.Close)
		bases[i] = srv.URL
	}
	arms, err := ScenarioArms(MixConfig{BaseURLs: bases, WriterRole: "Writer", MutateWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const rounds = 12
	for r := 0; r < rounds; r++ {
		for _, arm := range arms {
			if arm.Name[:6] == "mutate" {
				continue
			}
			if out, err := arm.Do(ctx); out != OK || err != nil {
				t.Fatalf("arm %s: %v %v", arm.Name, out, err)
			}
		}
	}
	// 3 read arms x 12 rounds over 3 targets: exactly 12 requests each.
	for i, h := range hits {
		if h != rounds {
			t.Fatalf("target %d served %d requests, want %d (hits %v)", i, h, rounds, hits)
		}
	}
	// The mutate arm addresses the first target only.
	before := append([]int(nil), hits...)
	for _, arm := range arms {
		if arm.Name[:6] != "mutate" {
			continue
		}
		for r := 0; r < 4; r++ {
			arm.Do(ctx) // outcome irrelevant; the stub is not a gsacs server
		}
	}
	if hits[0] != before[0]+4 || hits[1] != before[1] || hits[2] != before[2] {
		t.Fatalf("mutations not pinned to the first target: before %v after %v", before, hits)
	}
}

// TestRunAgainstLiveServer is the harness acceptance loop: a short open-loop
// run against a real server must complete with zero errors and a verdict.
func TestRunAgainstLiveServer(t *testing.T) {
	srv, site := testServer(t)
	arms, err := ScenarioArms(MixConfig{
		BaseURL:    srv.URL,
		Client:     srv.Client(),
		WriterRole: "Writer",
		MutateSite: site,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), Config{
		RPS:      50,
		Duration: 300 * time.Millisecond,
		Arms:     arms,
		SLO:      SLO{Latency: 5 * time.Second, Availability: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report()
	if rep.Errors != 0 {
		t.Fatalf("errors against a healthy server: %+v", rep)
	}
	if rep.Requests < 5 {
		t.Fatalf("only %d requests", rep.Requests)
	}
	if !rep.SLO.Pass {
		t.Fatalf("generous SLO failed: %+v", rep.SLO)
	}
}

func TestClassify(t *testing.T) {
	mk := func(status int, body string) (*http.Response, error) {
		rec := httptest.NewRecorder()
		rec.WriteHeader(status)
		fmt.Fprint(rec, body)
		return rec.Result(), nil
	}
	if out, err := classify(mk(200, `{"solutions":[]}`)); out != OK || err != nil {
		t.Errorf("200 = %v %v", out, err)
	}
	if out, _ := classify(mk(200, `{"degraded":true,"solutions":[]}`)); out != Degraded {
		t.Errorf("degraded = %v", out)
	}
	if out, err := classify(mk(500, "boom")); out != Error || err == nil {
		t.Errorf("500 = %v %v", out, err)
	}
	if out, err := classify(mk(429, `{"error":"shed","code":"overloaded"}`)); out != Shed || err != nil {
		t.Errorf("429 = %v %v, want Shed with no error", out, err)
	}
	if out, err := classify(mk(403, "denied")); out != Error || err == nil {
		t.Errorf("403 = %v %v", out, err)
	}
	if out, err := classify(nil, fmt.Errorf("dial refused")); out != Error || err == nil {
		t.Errorf("transport error = %v %v", out, err)
	}
}
