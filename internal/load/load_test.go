package load

import (
	"context"
	"encoding/json"
	"testing"
	"time"
)

// instantArm completes immediately with the given outcome.
func instantArm(name string, out Outcome) Arm {
	return Arm{Name: name, Weight: 1,
		Do: func(ctx context.Context) (Outcome, error) { return out, nil }}
}

func TestRunValidation(t *testing.T) {
	ctx := context.Background()
	for name, cfg := range map[string]Config{
		"zero rps":      {Duration: time.Second, Arms: []Arm{instantArm("a", OK)}},
		"zero duration": {RPS: 10, Arms: []Arm{instantArm("a", OK)}},
		"no arms":       {RPS: 10, Duration: time.Second},
		"zero weights": {RPS: 10, Duration: time.Second,
			Arms: []Arm{{Name: "a", Weight: 0, Do: func(context.Context) (Outcome, error) { return OK, nil }}}},
		"nil do": {RPS: 10, Duration: time.Second, Arms: []Arm{{Name: "a", Weight: 1}}},
	} {
		if _, err := Run(ctx, cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRunCountsAndReport(t *testing.T) {
	res, err := Run(context.Background(), Config{
		RPS:      500,
		Duration: 200 * time.Millisecond,
		Seed:     7,
		Arms: []Arm{
			instantArm("ok", OK),
			instantArm("degraded", Degraded),
			instantArm("err", Error),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report()
	if rep.Requests == 0 || rep.Requests != rep.OK+rep.Degraded+rep.Errors {
		t.Fatalf("request accounting broken: %+v", rep)
	}
	if rep.OK == 0 || rep.Degraded == 0 || rep.Errors == 0 {
		t.Fatalf("mix not exercised: ok=%d deg=%d err=%d", rep.OK, rep.Degraded, rep.Errors)
	}
	if rep.AchievedRPS <= 0 {
		t.Fatalf("achieved rps %v", rep.AchievedRPS)
	}
	if len(rep.Arms) != 3 {
		t.Fatalf("arms %d", len(rep.Arms))
	}
	// A run with errors on one third of traffic must fail availability.
	if rep.SLO.AvailabilityOK || rep.SLO.Pass {
		t.Fatalf("verdict must fail: %+v", rep.SLO)
	}
	// The report must round-trip as JSON (the -json contract).
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Requests != rep.Requests || back.SLO.Pass != rep.SLO.Pass {
		t.Fatal("report JSON round-trip lost fields")
	}
}

// TestShedAccounting: 429s land in the shed bucket, not errors; they leave
// the availability denominator and the latency sketches, but goodput and the
// shed rate expose them.
func TestShedAccounting(t *testing.T) {
	slow := func(ctx context.Context) (Outcome, error) {
		time.Sleep(5 * time.Millisecond)
		return OK, nil
	}
	res, err := Run(context.Background(), Config{
		RPS:      400,
		Duration: 250 * time.Millisecond,
		Seed:     3,
		Arms: []Arm{
			{Name: "served", Weight: 1, Do: slow},
			instantArm("shed", Shed),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report()
	if rep.Shed == 0 || rep.OK == 0 {
		t.Fatalf("mix not exercised: %+v", rep)
	}
	if rep.Requests != rep.OK+rep.Degraded+rep.Errors+rep.Shed {
		t.Fatalf("request accounting broken: %+v", rep)
	}
	if rep.Errors != 0 {
		t.Fatalf("sheds leaked into errors: %+v", rep)
	}
	// Half the traffic shed instantly; if sheds entered the sketches the
	// merged count would include them.
	var armShed ArmReport
	for _, a := range rep.Arms {
		if a.Name == "shed" {
			armShed = a
		}
	}
	if armShed.Shed != rep.Shed {
		t.Fatalf("per-arm shed = %d, want all %d on the shed arm", armShed.Shed, rep.Shed)
	}
	if armShed.Corrected.MaxMs != 0 || armShed.Service.MaxMs != 0 {
		t.Fatalf("shed samples entered the latency sketches: %+v", armShed)
	}
	// Availability judges admitted traffic only: every admitted request
	// succeeded, so the verdict must not be dragged down by the sheds.
	if rep.SLO.Availability < 0.999 {
		t.Fatalf("availability = %v, want ~1 over admitted traffic", rep.SLO.Availability)
	}
	if rep.ShedRate <= 0 || rep.ShedRate >= 1 {
		t.Fatalf("shed rate = %v, want in (0,1)", rep.ShedRate)
	}
	if rep.GoodputRPS <= 0 || rep.GoodputRPS >= rep.AchievedRPS {
		t.Fatalf("goodput = %v vs achieved %v, want positive and below achieved",
			rep.GoodputRPS, rep.AchievedRPS)
	}
}

// TestCoordinatedOmissionCorrection is the heart of the harness: with one
// in-flight slot and a service time far slower than the arrival interval,
// requests pile up behind the slot. A closed-loop (service-time) view sees
// only the ~20ms each call took; the corrected view must charge every
// sample its queueing delay from the intended schedule, so the corrected
// tail has to dwarf the service tail.
func TestCoordinatedOmissionCorrection(t *testing.T) {
	const service = 20 * time.Millisecond
	res, err := Run(context.Background(), Config{
		RPS:         100, // arrival every 10ms, service 20ms: queue grows
		Duration:    300 * time.Millisecond,
		MaxInFlight: 1,
		Arms: []Arm{{Name: "slow", Weight: 1,
			Do: func(ctx context.Context) (Outcome, error) {
				time.Sleep(service)
				return OK, nil
			}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report()
	if rep.Requests < 20 {
		t.Fatalf("only %d requests dispatched", rep.Requests)
	}
	// ~30 arrivals at 10ms spacing into a 20ms server: the last arrival
	// queues behind ~29 predecessors, so the corrected max approaches
	// 29*20ms - 290ms intended offset ≈ 300ms of schedule slip. Service
	// max stays near 20ms. Generous CI margins: corrected p99 must exceed
	// service p99 by at least 4x, and the corrected max must exceed 100ms.
	if rep.Corrected.P99Ms < 4*rep.Service.P99Ms {
		t.Fatalf("correction missing: corrected p99 %.1fms vs service p99 %.1fms",
			rep.Corrected.P99Ms, rep.Service.P99Ms)
	}
	if rep.Corrected.MaxMs < 100 {
		t.Fatalf("corrected max %.1fms, want the queueing tail (>100ms)", rep.Corrected.MaxMs)
	}
	if rep.Service.MaxMs > 120 {
		t.Fatalf("service max %.1fms — the slot wait leaked into service time", rep.Service.MaxMs)
	}
}

// TestOpenLoopHoldsArrivalRate: the dispatcher must not slow down when the
// server stalls. With plenty of in-flight slots and a slow arm, the achieved
// rate has to stay near the target.
func TestOpenLoopHoldsArrivalRate(t *testing.T) {
	res, err := Run(context.Background(), Config{
		RPS:      200,
		Duration: 250 * time.Millisecond,
		Arms: []Arm{{Name: "stall", Weight: 1,
			Do: func(ctx context.Context) (Outcome, error) {
				time.Sleep(50 * time.Millisecond)
				return OK, nil
			}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report()
	want := 200 * 0.25
	if float64(rep.Requests) < want*0.8 {
		t.Fatalf("dispatched %d, want ~%.0f — the loop closed", rep.Requests, want)
	}
}

func TestRunHonorsContextCancel(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := Run(ctx, Config{
		RPS:      10,
		Duration: 10 * time.Second, // cancelled long before this
		Arms:     []Arm{instantArm("a", OK)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("cancel did not stop the dispatcher")
	}
	if res.Report().Requests > 20 {
		t.Fatalf("dispatched %d after cancel", res.Report().Requests)
	}
}

func TestSweep(t *testing.T) {
	slow := func(ctx context.Context) (Outcome, error) {
		time.Sleep(2 * time.Millisecond)
		return OK, nil
	}
	sw, err := Sweep(context.Background(), Config{
		Duration: 150 * time.Millisecond,
		Arms:     []Arm{{Name: "a", Weight: 1, Do: slow}},
		SLO:      SLO{Latency: 500 * time.Millisecond, Availability: 0.9},
	}, []float64{100, 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Steps) != 2 {
		t.Fatalf("steps %d", len(sw.Steps))
	}
	// Ascending order regardless of input order.
	if sw.Steps[0].TargetRPS != 50 || sw.Steps[1].TargetRPS != 100 {
		t.Fatalf("steps not sorted: %v, %v", sw.Steps[0].TargetRPS, sw.Steps[1].TargetRPS)
	}
	if !sw.Pass || sw.MaxSustainedRPS <= 0 {
		t.Fatalf("easy SLO must pass: %+v", sw)
	}
	// An impossible SLO must fail every step and report no sustained rate.
	sw, err = Sweep(context.Background(), Config{
		Duration: 100 * time.Millisecond,
		Arms:     []Arm{{Name: "a", Weight: 1, Do: slow}},
		SLO:      SLO{Latency: time.Nanosecond, Availability: 0.999},
	}, []float64{50})
	if err != nil {
		t.Fatal(err)
	}
	if sw.Pass || sw.MaxSustainedRPS != 0 {
		t.Fatalf("impossible SLO passed: %+v", sw)
	}
}

func TestSweepPropagatesRunError(t *testing.T) {
	_, err := Sweep(context.Background(), Config{
		Duration: time.Second, // no arms: Run must reject
	}, []float64{10})
	if err == nil {
		t.Fatal("invalid config accepted")
	}
}
