package load

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"
)

// The Section 7.1 traffic mix over a live gsacs-server: the emergency
// responder and hazmat officer query, the main-repair contractor views its
// redacted slice, and an optional writer role mutates site data. Weights
// default to a read-heavy 70/25/5 query/view/mutate split.

// mixQuery is the Sec 7.1 aggregation shape: walk from chemical sites
// through their inventory to the stored chemicals.
const mixQuery = `SELECT ?site ?name ?chem WHERE {
  ?site a app:ChemSite .
  ?site app:hasSiteName ?name .
  ?site app:hasChemicalInfo ?info .
  ?info app:chemical ?rec .
  ?rec app:hasChemName ?chem .
}`

// mixSiteQuery is the lighter site listing the responder dashboard issues.
const mixSiteQuery = `SELECT ?site ?name WHERE {
  ?site a app:ChemSite .
  ?site app:hasSiteName ?name .
}`

// MixConfig builds the scenario arms.
type MixConfig struct {
	// BaseURL is the gsacs-server root, e.g. http://127.0.0.1:8080.
	BaseURL string
	// BaseURLs, when set, round-robins the read arms across several server
	// roots — the read replicas of a replicated deployment. Overrides
	// BaseURL. The mutate arm always addresses the first entry: in a
	// leader/follower deployment only the leader accepts writes, so list it
	// first when mutating.
	BaseURLs []string
	// Client is the shared HTTP client (default: keep-alive tuned for the
	// configured concurrency).
	Client *http.Client
	// QueryWeight, ViewWeight, MutateWeight set the mix (defaults 70/25/5;
	// MutateWeight is forced to 0 when WriterRole is empty).
	QueryWeight, ViewWeight, MutateWeight int
	// WriterRole is the role granted write access on the server
	// (gsacs-server -writer-role); empty disables the mutate arm.
	WriterRole string
	// MutateSite is the IRI the mutate arm writes hasSiteName values onto
	// (default: the first built-in scenario site).
	MutateSite string
	// Timeout bounds each request (default 10s).
	Timeout time.Duration
}

// NewClient returns an http.Client tuned for an open-loop harness with up
// to maxInFlight concurrent requests: without the idle-connection headroom,
// the transport would close and reopen sockets under burst and the harness
// would measure TCP handshakes instead of the server.
func NewClient(maxInFlight int, timeout time.Duration) *http.Client {
	if maxInFlight <= 0 {
		maxInFlight = 4096
	}
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = maxInFlight
	tr.MaxIdleConnsPerHost = maxInFlight
	return &http.Client{Transport: tr, Timeout: timeout}
}

// ScenarioArms builds the weighted Sec 7.1 arms against cfg.BaseURL, or
// round-robin across cfg.BaseURLs.
func ScenarioArms(cfg MixConfig) ([]Arm, error) {
	bases := cfg.BaseURLs
	if len(bases) == 0 {
		if cfg.BaseURL == "" {
			return nil, fmt.Errorf("load: BaseURL required")
		}
		bases = []string{cfg.BaseURL}
	}
	for i := range bases {
		bases[i] = strings.TrimRight(bases[i], "/")
		if bases[i] == "" {
			return nil, fmt.Errorf("load: target %d is empty", i)
		}
	}
	base := bases[0]
	if cfg.QueryWeight == 0 && cfg.ViewWeight == 0 && cfg.MutateWeight == 0 {
		cfg.QueryWeight, cfg.ViewWeight, cfg.MutateWeight = 70, 25, 5
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	client := cfg.Client
	if client == nil {
		client = NewClient(0, cfg.Timeout)
	}
	if cfg.MutateSite == "" {
		cfg.MutateSite = "http://grdf.org/app#chem_site001"
	}

	// One shared cursor keeps the interleaving even across arms: with k
	// targets, every k-th read (whatever its arm) lands on the same server.
	var rr atomic.Uint64
	get := func(path string) func(ctx context.Context) (Outcome, error) {
		urls := make([]string, len(bases))
		for i, b := range bases {
			urls[i] = b + path
		}
		return func(ctx context.Context) (Outcome, error) {
			u := urls[rr.Add(1)%uint64(len(urls))]
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
			if err != nil {
				return Error, err
			}
			return classify(client.Do(req))
		}
	}

	arms := []Arm{
		// The hazmat officer's full aggregation walk: the heaviest read.
		{
			Name:   "query:Hazmat",
			Weight: cfg.QueryWeight,
			Do: get("/v1/query?role=Hazmat&q=" +
				url.QueryEscape(mixQuery)),
		},
		// The responder's site listing: lighter, but security-gated the
		// same way.
		{
			Name:   "query:EmergencyResponse",
			Weight: (cfg.QueryWeight + 1) / 2,
			Do: get("/v1/query?role=EmergencyResponse&q=" +
				url.QueryEscape(mixSiteQuery)),
		},
		// The contractor's redacted view export.
		{
			Name:   "view:MainRep",
			Weight: cfg.ViewWeight,
			Do:     get("/v1/view?role=MainRep"),
		},
	}
	if cfg.WriterRole != "" && cfg.MutateWeight > 0 {
		var seq atomic.Uint64
		u := base + "/v1/insert?role=" + url.QueryEscape(cfg.WriterRole)
		arms = append(arms, Arm{
			Name:   "mutate:" + cfg.WriterRole,
			Weight: cfg.MutateWeight,
			Do: func(ctx context.Context) (Outcome, error) {
				n := seq.Add(1)
				body := fmt.Sprintf(
					"<%s> <http://grdf.org/app#hasSiteName> \"loadgen-%d\" .\n",
					cfg.MutateSite, n)
				req, err := http.NewRequestWithContext(ctx, http.MethodPost, u,
					strings.NewReader(body))
				if err != nil {
					return Error, err
				}
				req.Header.Set("Content-Type", "application/n-triples")
				return classify(client.Do(req))
			},
		})
	}
	return arms, nil
}

// classify maps an HTTP exchange onto an Outcome, draining the body so the
// connection returns to the keep-alive pool.
func classify(resp *http.Response, err error) (Outcome, error) {
	if err != nil {
		return Error, err
	}
	defer resp.Body.Close()
	body, readErr := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	io.Copy(io.Discard, resp.Body)
	if readErr != nil {
		return Error, readErr
	}
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		// Admission control refused the request on purpose. Count it as a
		// shed, not an error — the overload policy working is a different
		// finding from the server breaking.
		return Shed, nil
	case resp.StatusCode >= 500:
		return Error, fmt.Errorf("load: status %d", resp.StatusCode)
	case resp.StatusCode >= 400:
		// A 4xx under a fixed mix is a harness bug, not server load; count
		// it as an error so it cannot hide.
		return Error, fmt.Errorf("load: status %d", resp.StatusCode)
	case bytes.Contains(body, []byte(`"degraded":true`)):
		return Degraded, nil
	default:
		return OK, nil
	}
}
