package wal

import (
	"errors"
	"testing"

	"repro/internal/rdf"
)

// TestRecordSequencing: appends get contiguous sequence numbers, survive
// rotation, and ReadRecords returns exactly the requested window as
// decodable frames.
func TestRecordSequencing(t *testing.T) {
	dir := t.TempDir()
	st, repo := openRepo(t, dir, Options{Fsync: FsyncOff})
	defer repo.Close()

	if got := repo.HeadSeq(); got != 0 {
		t.Fatalf("fresh HeadSeq = %d, want 0", got)
	}
	if got := repo.MinSeq(); got != 1 {
		t.Fatalf("fresh MinSeq = %d, want 1", got)
	}

	const n = 10
	for i := 0; i < n; i++ {
		st.Add(triple(i))
		if i == 4 {
			// Rotate mid-stream: sequences must stay contiguous across the
			// segment boundary.
			if err := repo.Snapshot(); err != nil {
				t.Fatalf("Snapshot: %v", err)
			}
		}
	}
	if got := repo.HeadSeq(); got != n {
		t.Fatalf("HeadSeq = %d, want %d", got, n)
	}

	frames, err := repo.ReadRecords(3, 1<<20)
	if err != nil {
		t.Fatalf("ReadRecords(3): %v", err)
	}
	if len(frames) != n-2 {
		t.Fatalf("ReadRecords(3) returned %d frames, want %d", len(frames), n-2)
	}
	// Frames decode with the standard decoder and land on the right triples.
	for i, frame := range frames {
		rec, next, err := DecodeRecord(frame, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if next != len(frame) {
			t.Fatalf("frame %d: decoded %d of %d bytes", i, next, len(frame))
		}
		want := triple(i + 2) // seq 3 is the third add = triple(2)
		if rec.Kind != KindAdd || len(rec.Triples) != 1 || rec.Triples[0].String() != want.String() {
			t.Fatalf("frame %d decoded to %v %v, want add %v", i, rec.Kind, rec.Triples, want)
		}
	}

	// Past the head: empty, nil error (the long-poll signal).
	if frames, err := repo.ReadRecords(n+1, 1<<20); err != nil || len(frames) != 0 {
		t.Fatalf("ReadRecords past head = %d frames, %v; want 0, nil", len(frames), err)
	}

	// maxBytes pages the response but always ships at least one frame.
	frames, err = repo.ReadRecords(1, 1)
	if err != nil || len(frames) != 1 {
		t.Fatalf("ReadRecords(1, tiny) = %d frames, %v; want exactly 1", len(frames), err)
	}
}

// TestSequencingSurvivesReopen: the index is rebuilt from disk at recovery
// and the full window is streamable again (incarnation-local numbering).
func TestSequencingSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	st, repo := openRepo(t, dir, Options{Fsync: FsyncAlways})
	for i := 0; i < 6; i++ {
		st.Add(triple(i))
	}
	if err := repo.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for i := 6; i < 9; i++ {
		st.Add(triple(i))
	}
	head := repo.HeadSeq()
	if err := repo.Close(); err != nil {
		t.Fatal(err)
	}

	_, repo2 := openRepo(t, dir, Options{Fsync: FsyncAlways})
	defer repo2.Close()
	if got := repo2.HeadSeq(); got != head {
		t.Fatalf("HeadSeq after reopen = %d, want %d", got, head)
	}
	frames, err := repo2.ReadRecords(repo2.MinSeq(), 1<<20)
	if err != nil {
		t.Fatalf("ReadRecords after reopen: %v", err)
	}
	if want := int(head - repo2.MinSeq() + 1); len(frames) != want {
		t.Fatalf("streamable window after reopen = %d frames, want %d", len(frames), want)
	}
}

// TestWatchSignalsAppend: the long-poll channel closes on append.
func TestWatchSignalsAppend(t *testing.T) {
	st, repo := openRepo(t, t.TempDir(), Options{Fsync: FsyncOff})
	defer repo.Close()
	ch := repo.Watch()
	select {
	case <-ch:
		t.Fatal("watch fired before any append")
	default:
	}
	st.Add(triple(0))
	select {
	case <-ch:
	default:
		t.Fatal("watch did not fire after append")
	}
}

// TestGCRetentionFloor is the regression test for the replication
// retention guard: with a floor at an active follower's acked position, GC
// must not delete any segment between that position and the head, however
// many snapshots supersede it — and once the floor lifts, the same
// segments become collectable again.
func TestGCRetentionFloor(t *testing.T) {
	dir := t.TempDir()
	st, repo := openRepo(t, dir, Options{Fsync: FsyncOff})
	defer repo.Close()

	for i := 0; i < 5; i++ {
		st.Add(triple(i))
	}
	// A follower acked seq 2; it next needs seq 3.
	const acked = uint64(2)
	repo.SetRetainSeq(acked + 1)

	// Two snapshot cycles would normally GC every pre-snapshot segment.
	for i := 5; i < 8; i++ {
		if err := repo.Snapshot(); err != nil {
			t.Fatalf("Snapshot: %v", err)
		}
		st.Add(triple(i))
	}

	// The window from the follower's next seq to the head must be intact.
	if min := repo.MinSeq(); min > acked+1 {
		t.Fatalf("MinSeq = %d: GC deleted records an active follower needs (acked %d)", min, acked)
	}
	frames, err := repo.ReadRecords(acked+1, 1<<20)
	if err != nil {
		t.Fatalf("ReadRecords(follower resume point): %v", err)
	}
	if want := int(repo.HeadSeq() - acked); len(frames) != want {
		t.Fatalf("resume window = %d frames, want %d", len(frames), want)
	}
	// Every pinned frame still decodes.
	for i, frame := range frames {
		if _, _, err := DecodeRecord(frame, 0); err != nil {
			t.Fatalf("pinned frame %d: %v", i, err)
		}
	}

	// Lift the floor: the next snapshot cycle may collect the old segments.
	repo.SetRetainSeq(0)
	if err := repo.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := repo.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if _, err := repo.ReadRecords(1, 1<<20); !errors.Is(err, ErrCompacted) {
		t.Fatalf("ReadRecords(1) after floor lifted = %v, want ErrCompacted", err)
	}
	// Recovery still works from the snapshots, floor or no floor.
	if err := repo.Close(); err != nil {
		t.Fatal(err)
	}
	st2, repo2 := openRepo(t, dir, Options{Fsync: FsyncOff})
	defer repo2.Close()
	sameState(t, st, st2)
}

// TestFrameAtMatchesDecode: the cheap frame slicer agrees with the full
// decoder on framing and rejects a flipped bit.
func TestFrameAtMatchesDecode(t *testing.T) {
	recs := []Record{
		{Kind: KindAdd, Gen: 1, Triples: []rdf.Triple{triple(0)}},
		{Kind: KindClear, Gen: 2},
	}
	var buf []byte
	for _, r := range recs {
		frame, err := EncodeRecord(r)
		if err != nil {
			t.Fatal(err)
		}
		buf = append(buf, frame...)
	}
	off := 0
	for i := range recs {
		frame, next, err := frameAt(buf, off)
		if err != nil {
			t.Fatalf("frameAt record %d: %v", i, err)
		}
		rec, dnext, err := decodeRecord(buf, off)
		if err != nil {
			t.Fatalf("decodeRecord record %d: %v", i, err)
		}
		if next != dnext {
			t.Fatalf("record %d: frameAt next %d != decode next %d", i, next, dnext)
		}
		if rec.Kind != recs[i].Kind {
			t.Fatalf("record %d: kind %v, want %v", i, rec.Kind, recs[i].Kind)
		}
		if len(frame) != next-off {
			t.Fatalf("record %d: frame length %d, want %d", i, len(frame), next-off)
		}
		off = next
	}
	if _, _, err := frameAt(buf, off); err == nil {
		t.Fatal("frameAt past end succeeded")
	} else if !errors.Is(err, ErrTorn) {
		// Zero remaining bytes report a torn header; io.EOF is the decoder's
		// business, not the slicer's.
		_ = err
	}

	// A flipped payload bit fails the slice-time CRC.
	FlipBitBytes(buf, frameHeaderLen+2, 3)
	if _, _, err := frameAt(buf, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("frameAt on corrupt frame = %v, want ErrCorrupt", err)
	}
}
