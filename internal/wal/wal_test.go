package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/store"
)

// triple builds a distinct test triple for index i.
func triple(i int) rdf.Triple {
	return rdf.T(
		rdf.IRI(fmt.Sprintf("http://example.org/s%d", i)),
		rdf.IRI("http://example.org/p"),
		rdf.Literal{Value: fmt.Sprintf("v%d", i), Datatype: rdf.XSDString},
	)
}

// openRepo opens a repository over dir with the given options defaults.
func openRepo(t *testing.T, dir string, opts Options) (*store.Store, *Repository) {
	t.Helper()
	opts.Dir = dir
	st := store.New()
	repo, err := Open(st, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return st, repo
}

// tripleSet renders a store's triples as a sorted string set for comparison.
func tripleSet(st *store.Store) []string {
	ts := st.Triples()
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.String()
	}
	sort.Strings(out)
	return out
}

func sameState(t *testing.T, a, b *store.Store) {
	t.Helper()
	as, bs := tripleSet(a), tripleSet(b)
	if len(as) != len(bs) {
		t.Fatalf("stores differ: %d vs %d triples\n%v\n%v", len(as), len(bs), as, bs)
	}
	for i := range as {
		if as[i] != bs[i] {
			t.Fatalf("stores differ at %d: %q vs %q", i, as[i], bs[i])
		}
	}
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{Kind: KindAdd, Gen: 7, Triples: []rdf.Triple{triple(1), triple(2)}},
		{Kind: KindRemove, Gen: 9, Triples: []rdf.Triple{triple(1)}},
		{Kind: KindReplace, Gen: 12, Triples: []rdf.Triple{triple(2), triple(3)}},
		{Kind: KindClear, Gen: 15},
		{Kind: KindAudit, Data: []byte(`{"who":"hydrologist1","allowed":true}`)},
	}
	var log []byte
	for _, r := range recs {
		frame, err := encodeRecord(r)
		if err != nil {
			t.Fatalf("encode %v: %v", r.Kind, err)
		}
		log = append(log, frame...)
	}
	off := 0
	for i, want := range recs {
		got, next, err := decodeRecord(log, off)
		if err != nil {
			t.Fatalf("decode record %d: %v", i, err)
		}
		if got.Kind != want.Kind || got.Gen != want.Gen {
			t.Fatalf("record %d: got kind=%v gen=%d, want kind=%v gen=%d",
				i, got.Kind, got.Gen, want.Kind, want.Gen)
		}
		if len(got.Triples) != len(want.Triples) {
			t.Fatalf("record %d: %d triples, want %d", i, len(got.Triples), len(want.Triples))
		}
		for j := range want.Triples {
			if got.Triples[j].String() != want.Triples[j].String() {
				t.Fatalf("record %d triple %d: %s != %s", i, j, got.Triples[j], want.Triples[j])
			}
		}
		if !bytes.Equal(got.Data, want.Data) {
			t.Fatalf("record %d: data %q, want %q", i, got.Data, want.Data)
		}
		off = next
	}
	if _, _, err := decodeRecord(log, off); err == nil || !strings.Contains(err.Error(), "EOF") {
		t.Fatalf("expected clean EOF at end of log, got %v", err)
	}
}

func TestDecodeRejectsCorruptFrame(t *testing.T) {
	frame, err := encodeRecord(Record{Kind: KindAdd, Triples: []rdf.Triple{triple(1)}})
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit: checksum must catch it.
	bad := append([]byte(nil), frame...)
	bad[frameHeaderLen+3] ^= 0x10
	if _, _, err := decodeRecord(bad, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit flip: got %v, want ErrCorrupt", err)
	}
	// Shear the frame: torn, not corrupt.
	if _, _, err := decodeRecord(frame[:len(frame)-3], 0); !errors.Is(err, ErrTorn) {
		t.Fatalf("short frame: got %v, want ErrTorn", err)
	}
	// Zero-filled tail (post-crash filesystem signature): torn.
	if _, _, err := decodeRecord(make([]byte, 32), 0); !errors.Is(err, ErrTorn) {
		t.Fatalf("zero fill: got %v, want ErrTorn", err)
	}
}

func TestOpenEmptyDirAndReopen(t *testing.T) {
	dir := t.TempDir()
	st, repo := openRepo(t, dir, Options{Fsync: FsyncAlways})

	for i := 0; i < 10; i++ {
		if !st.Add(triple(i)) {
			t.Fatalf("add %d failed", i)
		}
	}
	st.Remove(triple(3))
	if ok, err := st.Replace(triple(4), triple(40)); err != nil || !ok {
		t.Fatalf("replace: ok=%v err=%v", ok, err)
	}
	if err := repo.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	st2, repo2 := openRepo(t, dir, Options{Fsync: FsyncAlways})
	defer repo2.Close()
	sameState(t, st, st2)
	info := repo2.Info()
	if info.RecordsReplayed != 12 {
		t.Errorf("RecordsReplayed = %d, want 12", info.RecordsReplayed)
	}
	if info.TornTailTruncated {
		t.Error("unexpected torn-tail truncation on a clean log")
	}
}

func TestMutationsRefusedAfterClose(t *testing.T) {
	dir := t.TempDir()
	st, repo := openRepo(t, dir, Options{})
	if err := repo.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Apply(store.Op{Kind: store.OpAdd, Triples: []rdf.Triple{triple(1)}}); !errors.Is(err, errClosed) {
		t.Fatalf("mutation after Close: got %v, want errClosed", err)
	}
	if st.Len() != 0 {
		t.Fatalf("store mutated after Close: %d triples", st.Len())
	}
}

func TestAuditRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, repo := openRepo(t, dir, Options{Fsync: FsyncAlways})
	payloads := [][]byte{
		[]byte(`{"seq":1}`), []byte(`{"seq":2}`), []byte(`{"seq":3}`),
	}
	for i, p := range payloads {
		if err := repo.AppendAudit(p); err != nil {
			t.Fatalf("audit %d: %v", i, err)
		}
		st.Add(triple(i)) // the mutation fsync flushes the audit entry
	}
	repo.Close()

	_, repo2 := openRepo(t, dir, Options{})
	defer repo2.Close()
	got := repo2.AuditReplay()
	if len(got) != len(payloads) {
		t.Fatalf("recovered %d audit payloads, want %d", len(got), len(payloads))
	}
	for i := range payloads {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Fatalf("audit %d: %s, want %s", i, got[i], payloads[i])
		}
	}
}

func TestTornTailTruncatedOnRecovery(t *testing.T) {
	dir := t.TempDir()
	st, repo := openRepo(t, dir, Options{Fsync: FsyncAlways})
	for i := 0; i < 5; i++ {
		st.Add(triple(i))
	}
	repo.Close()

	// Shear the last frame mid-way: the classic partial-write crash.
	seg := filepath.Join(dir, segmentName(1))
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := TruncateFile(seg, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	st2, repo2 := openRepo(t, dir, Options{})
	defer repo2.Close()
	info := repo2.Info()
	if !info.TornTailTruncated {
		t.Error("TornTailTruncated not reported")
	}
	if info.RecordsReplayed != 4 {
		t.Errorf("RecordsReplayed = %d, want 4 (last record torn away)", info.RecordsReplayed)
	}
	if st2.Len() != 4 {
		t.Errorf("store has %d triples, want 4", st2.Len())
	}
	// The truncated log must accept new appends and reopen cleanly.
	st2.Add(triple(99))
	repo2.Close()
	st3, repo3 := openRepo(t, dir, Options{})
	defer repo3.Close()
	if st3.Len() != 5 {
		t.Errorf("after truncate+append+reopen: %d triples, want 5", st3.Len())
	}
}

func TestMidLogCorruptionRefusesRecovery(t *testing.T) {
	dir := t.TempDir()
	st, repo := openRepo(t, dir, Options{Fsync: FsyncAlways})
	for i := 0; i < 8; i++ {
		st.Add(triple(i))
	}
	repo.Close()

	// Flip a bit deep inside the log — not the tail. Recovery must refuse.
	if err := FlipBit(filepath.Join(dir, segmentName(1)), 30, 2); err != nil {
		t.Fatal(err)
	}
	_, err := Open(store.New(), Options{Dir: dir})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("recovery over flipped bit: got %v, want ErrCorrupt", err)
	}
}

func TestMidLogTornSegmentRefusesRecovery(t *testing.T) {
	dir := t.TempDir()
	st, repo := openRepo(t, dir, Options{Fsync: FsyncAlways, SnapshotEvery: 0})
	for i := 0; i < 4; i++ {
		st.Add(triple(i))
	}
	if err := repo.Snapshot(); err != nil { // rotates to segment 2
		t.Fatal(err)
	}
	st.Add(triple(10))
	repo.Close()

	// Remove the snapshot and shear segment 1: now segment 1 is torn but NOT
	// final, which is unrecoverable damage, not a crash signature.
	if err := os.Remove(filepath.Join(dir, snapshotName(1))); err != nil {
		t.Fatal(err)
	}
	seg1 := filepath.Join(dir, segmentName(1))
	fi, _ := os.Stat(seg1)
	if err := TruncateFile(seg1, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	_, err := Open(store.New(), Options{Dir: dir})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-log torn segment: got %v, want ErrCorrupt", err)
	}
}

func TestSnapshotAndReplay(t *testing.T) {
	dir := t.TempDir()
	st, repo := openRepo(t, dir, Options{Fsync: FsyncAlways})
	for i := 0; i < 20; i++ {
		st.Add(triple(i))
	}
	if err := repo.Snapshot(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	for i := 20; i < 25; i++ {
		st.Add(triple(i))
	}
	st.Remove(triple(0))
	repo.Close()

	st2, repo2 := openRepo(t, dir, Options{})
	defer repo2.Close()
	sameState(t, st, st2)
	info := repo2.Info()
	if info.SnapshotSeq != 1 {
		t.Errorf("SnapshotSeq = %d, want 1", info.SnapshotSeq)
	}
	if info.SnapshotTriples != 20 {
		t.Errorf("SnapshotTriples = %d, want 20", info.SnapshotTriples)
	}
	if info.RecordsReplayed != 6 {
		t.Errorf("RecordsReplayed = %d, want 6 (only post-snapshot records)", info.RecordsReplayed)
	}
}

func TestSnapshotFallbackWhenNewestCorrupt(t *testing.T) {
	dir := t.TempDir()
	st, repo := openRepo(t, dir, Options{Fsync: FsyncAlways})
	for i := 0; i < 10; i++ {
		st.Add(triple(i))
	}
	if err := repo.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 15; i++ {
		st.Add(triple(i))
	}
	if err := repo.Snapshot(); err != nil {
		t.Fatal(err)
	}
	st.Add(triple(100))
	repo.Close()

	// Corrupt the newest snapshot: recovery must fall back to the previous
	// one and replay the retained segments to the same state.
	if err := FlipBit(filepath.Join(dir, snapshotName(2)), 40, 5); err != nil {
		t.Fatal(err)
	}
	st2, repo2 := openRepo(t, dir, Options{})
	defer repo2.Close()
	sameState(t, st, st2)
	if repo2.Info().SnapshotSeq != 1 {
		t.Errorf("SnapshotSeq = %d, want fallback to 1", repo2.Info().SnapshotSeq)
	}
}

func TestSnapshotGC(t *testing.T) {
	dir := t.TempDir()
	st, repo := openRepo(t, dir, Options{Fsync: FsyncOff})
	for round := 0; round < 4; round++ {
		for i := 0; i < 5; i++ {
			st.Add(triple(round*5 + i))
		}
		if err := repo.Snapshot(); err != nil {
			t.Fatalf("snapshot round %d: %v", round, err)
		}
	}
	repo.Close()

	dirSt, err := listDir(OSFS(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirSt.snapshots) != 2 {
		t.Errorf("%d snapshots retained, want 2: %v", len(dirSt.snapshots), dirSt.snapshots)
	}
	// Every retained segment must be newer than the older kept snapshot.
	keepFrom := dirSt.snapshots[0]
	for _, seq := range dirSt.segments {
		if seq <= keepFrom {
			t.Errorf("segment %d should have been collected (older kept snapshot is %d)", seq, keepFrom)
		}
	}
	// And the directory must still recover to the full state.
	st2, repo2 := openRepo(t, dir, Options{})
	defer repo2.Close()
	sameState(t, st, st2)
}

func TestAutomaticSnapshotTrigger(t *testing.T) {
	dir := t.TempDir()
	st, repo := openRepo(t, dir, Options{Fsync: FsyncOff, SnapshotEvery: 10})
	for i := 0; i < 25; i++ {
		st.Add(triple(i))
	}
	// The snapshotter is asynchronous: poll for its output.
	deadline := time.Now().Add(5 * time.Second)
	var dirSt dirState
	for {
		var err error
		dirSt, err = listDir(OSFS(), dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(dirSt.snapshots) > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	repo.Close()
	if len(dirSt.snapshots) == 0 {
		t.Error("no automatic snapshot was written after 25 records with SnapshotEvery=10")
	}
	st2, repo2 := openRepo(t, dir, Options{})
	defer repo2.Close()
	sameState(t, st, st2)
}

func TestParseFsyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FsyncPolicy
	}{{"always", FsyncAlways}, {"interval", FsyncInterval}, {"off", FsyncOff}} {
		got, err := ParseFsyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseFsyncPolicy(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if got.String() != tc.in {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), tc.in)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Error("ParseFsyncPolicy accepted an unknown policy")
	}
}

func TestStoreMustBeEmpty(t *testing.T) {
	st := store.New()
	st.Add(triple(1))
	if _, err := Open(st, Options{Dir: t.TempDir()}); err == nil {
		t.Fatal("Open accepted a non-empty store")
	}
}

// --- chaos -----------------------------------------------------------------

func TestChaosFsyncFailureIsFailStop(t *testing.T) {
	dir := t.TempDir()
	// Warm up a clean log so the failure lands mid-stream.
	st0, repo0 := openRepo(t, dir, Options{Fsync: FsyncAlways})
	st0.Add(triple(0))
	repo0.Close()

	ffs := NewFaultFS(nil, FaultConfig{FailSyncAt: 3})
	st, repo := openRepo(t, dir, Options{Fsync: FsyncAlways, FS: ffs})
	defer repo.Close()

	var acked []int
	var failed bool
	for i := 1; i <= 6; i++ {
		_, err := st.Apply(store.Op{Kind: store.OpAdd, Triples: []rdf.Triple{triple(i)}})
		if err == nil {
			if failed {
				t.Fatalf("append %d succeeded after the log failed — fail-stop violated", i)
			}
			acked = append(acked, i)
			continue
		}
		failed = true
		if !errors.Is(err, ErrInjected) && !strings.Contains(err.Error(), "broken") {
			t.Fatalf("append %d: unexpected error %v", i, err)
		}
		// The store must not have applied the unacknowledged mutation.
		if st.Has(triple(i)) {
			t.Fatalf("unacked triple %d is visible in the store", i)
		}
	}
	if !failed {
		t.Fatal("fault never fired")
	}
	repo.Close()

	// Recovery must surface every acked mutation (and may surface nothing
	// else, since failed appends were never applied).
	st2, repo2 := openRepo(t, dir, Options{})
	defer repo2.Close()
	for _, i := range acked {
		if !st2.Has(triple(i)) {
			t.Errorf("acked triple %d lost across recovery", i)
		}
	}
	if !st2.Has(triple(0)) {
		t.Error("pre-fault triple 0 lost")
	}
}

func TestChaosShortWriteIsRepaired(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil, FaultConfig{ShortWriteAt: 3})
	st, repo := openRepo(t, dir, Options{Fsync: FsyncAlways, FS: ffs})

	var acked []int
	sawFault := false
	for i := 0; i < 6; i++ {
		_, err := st.Apply(store.Op{Kind: store.OpAdd, Triples: []rdf.Triple{triple(i)}})
		if err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("append %d: unexpected error %v", i, err)
			}
			sawFault = true
			continue
		}
		acked = append(acked, i)
	}
	if !sawFault {
		t.Fatal("short-write fault never fired")
	}
	if err := repo.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// The torn frame was truncate-repaired in place, so recovery sees a clean
	// log holding exactly the acked mutations.
	st2, repo2 := openRepo(t, dir, Options{})
	defer repo2.Close()
	if repo2.Info().TornTailTruncated {
		t.Error("torn tail at recovery — the short write was not repaired at append time")
	}
	if st2.Len() != len(acked) {
		t.Errorf("recovered %d triples, want %d", st2.Len(), len(acked))
	}
	for _, i := range acked {
		if !st2.Has(triple(i)) {
			t.Errorf("acked triple %d lost", i)
		}
	}
}

func TestChaosSnapshotRenameFailureKeepsLog(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil, FaultConfig{FailRenameAt: 1})
	st, repo := openRepo(t, dir, Options{Fsync: FsyncAlways, FS: ffs})
	for i := 0; i < 5; i++ {
		st.Add(triple(i))
	}
	if err := repo.Snapshot(); err == nil {
		t.Fatal("snapshot with failing rename reported success")
	}
	// The failed snapshot must not damage durability: log still replays.
	st.Add(triple(5))
	repo.Close()
	st2, repo2 := openRepo(t, dir, Options{})
	defer repo2.Close()
	sameState(t, st, st2)
	if repo2.Info().SnapshotSeq != 0 {
		t.Errorf("recovered from snapshot %d, want none", repo2.Info().SnapshotSeq)
	}
}

func TestChaosConcurrentWritersUnderFaults(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil, FaultConfig{ShortWriteAt: 17})
	st, repo := openRepo(t, dir, Options{Fsync: FsyncOff, FS: ffs, SnapshotEvery: 25})

	const writers, perWriter = 4, 30
	var mu sync.Mutex
	acked := make(map[string]bool)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tr := triple(w*1000 + i)
				if _, err := st.Apply(store.Op{Kind: store.OpAdd, Triples: []rdf.Triple{tr}}); err == nil {
					mu.Lock()
					acked[tr.String()] = true
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	if err := repo.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	st2, repo2 := openRepo(t, dir, Options{})
	defer repo2.Close()
	have := make(map[string]bool)
	for _, line := range tripleSet(st2) {
		have[line] = true
	}
	for tr := range acked {
		if !have[tr] {
			t.Errorf("acked triple %s lost across recovery", tr)
		}
	}
}

func TestMetricsRegistered(t *testing.T) {
	reg := obs.NewRegistry()
	dir := t.TempDir()
	st, repo := openRepo(t, dir, Options{Fsync: FsyncAlways, Metrics: reg})
	st.Add(triple(1))
	if err := repo.Snapshot(); err != nil {
		t.Fatal(err)
	}
	repo.Close()

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{
		"grdf_wal_appends_total", "grdf_wal_bytes", "grdf_wal_fsync_seconds",
		"grdf_recovery_seconds", "grdf_snapshots_total", "grdf_snapshot_triples",
		"grdf_wal_segments",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("metric %s missing from exposition", name)
		}
	}
}

// FuzzWALDecode throws arbitrary bytes at the frame decoder: it must never
// panic and must only ever return a record, EOF, ErrTorn or ErrCorrupt.
func FuzzWALDecode(f *testing.F) {
	for _, r := range []Record{
		{Kind: KindAdd, Gen: 1, Triples: []rdf.Triple{triple(1)}},
		{Kind: KindReplace, Gen: 2, Triples: []rdf.Triple{triple(1), triple(2)}},
		{Kind: KindClear, Gen: 3},
		{Kind: KindAudit, Data: []byte(`{"a":1}`)},
	} {
		frame, err := encodeRecord(r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	f.Add([]byte{})
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		off := 0
		for {
			rec, next, err := decodeRecord(data, off)
			if err != nil {
				return // EOF, torn or corrupt — all acceptable terminal states
			}
			if next <= off {
				t.Fatalf("decoder did not advance: off=%d next=%d", off, next)
			}
			// A decoded record must re-encode (decode output is structurally
			// valid by construction).
			if _, err := encodeRecord(rec); err != nil {
				t.Fatalf("decoded record does not re-encode: %v", err)
			}
			off = next
		}
	})
}
