// Package wal is the durable ontology repository of the G-SACS
// architecture: an append-only write-ahead log with CRC32C-checksummed,
// length-prefixed records, atomic checksummed snapshots, and crash recovery
// that restores a store.Store to exactly the acknowledged state.
//
// Fig. 3 of the paper places a persistent "Onto Repository" at the heart of
// G-SACS; before this package the repository was purely in-memory, so any
// process or machine fault silently discarded every mutation accepted
// through the write-authorization path. The contract here is the standard
// one for durable stores:
//
//   - A mutation acknowledged under the "always" fsync policy survives
//     SIGKILL and power loss (zero acknowledged-mutation loss).
//   - A torn final record (the classic partial-write crash signature) is
//     detected by checksum framing and truncated away on recovery.
//   - Corruption anywhere else (bit flips, truncated middle segments)
//     refuses recovery with a descriptive error — corrupt data is never
//     loaded silently.
//
// All filesystem access goes through the FS interface so chaos tests can
// inject short writes, fsync failures and rename faults deterministically.
package wal

import (
	"io"
	"io/fs"
	"os"
)

// File is the subset of *os.File the log needs. Implementations must honor
// the usual POSIX semantics for append-mode writes and Sync.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file to stable storage (fsync).
	Sync() error
	// Truncate shears the file to size bytes.
	Truncate(size int64) error
}

// FS abstracts the filesystem operations of the repository so tests can
// interpose deterministic faults. OSFS is the production implementation.
type FS interface {
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadDir(name string) ([]fs.DirEntry, error)
	MkdirAll(path string, perm fs.FileMode) error
	Stat(name string) (fs.FileInfo, error)
}

// osFS is the real filesystem.
type osFS struct{}

// OSFS returns the production FS backed by package os.
func OSFS() FS { return osFS{} }

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                   { return os.Remove(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (osFS) MkdirAll(path string, perm fs.FileMode) error {
	return os.MkdirAll(path, perm)
}
func (osFS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable. Platforms that cannot open directories simply skip the sync —
// the rename itself is still atomic.
func syncDir(fsys FS, dir string) error {
	d, err := fsys.OpenFile(dir, os.O_RDONLY, 0)
	if err != nil {
		return nil
	}
	defer d.Close()
	return d.Sync()
}

// readAll reads a whole file through the FS.
func readAll(fsys FS, name string) ([]byte, error) {
	f, err := fsys.OpenFile(name, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}
