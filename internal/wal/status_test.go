package wal

import (
	"context"
	"testing"

	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/store"
)

// TestWALStatus follows the status block through a repository's life: empty
// open, mutations, snapshot, crash recovery — the fields /healthz serves.
func TestWALStatus(t *testing.T) {
	dir := t.TempDir()
	st, repo := openRepo(t, dir, Options{Fsync: FsyncAlways})

	got := repo.WALStatus()
	if got.LastSnapshotSeq != 0 || got.LastSnapshotGen != 0 {
		t.Errorf("fresh repo snapshot ids = %d/%d, want 0/0",
			got.LastSnapshotSeq, got.LastSnapshotGen)
	}
	if got.Segments != 1 {
		t.Errorf("fresh repo segments = %d, want the one open segment", got.Segments)
	}
	if got.Broken {
		t.Error("fresh repo reports broken")
	}

	for i := 0; i < 5; i++ {
		st.Add(triple(i))
	}
	if err := repo.Snapshot(); err != nil {
		t.Fatal(err)
	}
	got = repo.WALStatus()
	if got.LastSnapshotSeq == 0 {
		t.Error("snapshot seq still 0 after Snapshot")
	}
	if got.LastSnapshotGen != st.Generation() {
		t.Errorf("snapshot generation = %d, want the store's %d",
			got.LastSnapshotGen, st.Generation())
	}
	if err := repo.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: recovery loads the snapshot and replays the (empty) tail; the
	// status must carry the recovery cost and the loaded snapshot identity.
	st2, repo2 := openRepo(t, dir, Options{})
	defer repo2.Close()
	if st2.Len() != 5 {
		t.Fatalf("recovered %d triples, want 5", st2.Len())
	}
	got = repo2.WALStatus()
	if got.LastSnapshotSeq == 0 || got.LastSnapshotGen == 0 {
		t.Errorf("recovered snapshot ids = %d/%d, want the loaded snapshot",
			got.LastSnapshotSeq, got.LastSnapshotGen)
	}
	if got.RecoverySeconds <= 0 {
		t.Error("recovery duration not reported")
	}
	if got.Segments == 0 {
		t.Error("no segments reported after reopen")
	}
}

// TestWALSpans: a mutation whose Op carries a traced context must leave
// wal.append (and, under FsyncAlways, wal.fsync) spans on that trace, with
// the batch size on the append span's counters.
func TestWALSpans(t *testing.T) {
	st, repo := openRepo(t, t.TempDir(), Options{Fsync: FsyncAlways})
	defer repo.Close()

	tr := obs.NewTracer(4)
	ctx, root := tr.StartTrace(context.Background(), "mutation", "")
	if _, err := st.Apply(store.Op{
		Kind:    store.OpAdd,
		Triples: []rdf.Triple{triple(1), triple(2)},
		Ctx:     ctx,
	}); err != nil {
		t.Fatal(err)
	}
	root.End()

	td, ok := tr.Trace(obs.TraceID(ctx))
	if !ok {
		t.Fatal("trace not retained")
	}
	byName := map[string]obs.SpanData{}
	for _, sd := range td.Spans {
		byName[sd.Name] = sd
	}
	app, ok := byName["wal.append"]
	if !ok {
		t.Fatalf("no wal.append span: %+v", td.Spans)
	}
	if app.Counters["triples"] != 2 || app.Counters["bytes"] == 0 {
		t.Errorf("wal.append counters = %v, want 2 triples and a byte count", app.Counters)
	}
	if app.Failed {
		t.Errorf("wal.append failed: %s", app.Error)
	}
	if _, ok := byName["wal.fsync"]; !ok {
		t.Fatalf("no wal.fsync span under FsyncAlways: %+v", td.Spans)
	}

	// An untraced op must work identically, just without spans.
	if _, err := st.Apply(store.Op{Kind: store.OpAdd, Triples: []rdf.Triple{triple(3)}}); err != nil {
		t.Fatal(err)
	}
}
