package wal

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// FsyncPolicy selects when appended records reach stable storage.
type FsyncPolicy int

const (
	// FsyncAlways fsyncs before every mutation acknowledgment: zero
	// acknowledged-mutation loss across SIGKILL and power failure.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval batches fsyncs on a timer: bounded loss window, far
	// higher throughput.
	FsyncInterval
	// FsyncOff never fsyncs explicitly (the OS flushes eventually). Crash
	// durability is best-effort; suitable for benchmarks and ephemera.
	FsyncOff
)

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncOff:
		return "off"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}

// ParseFsyncPolicy parses "always", "interval" or "off".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "off":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or off)", s)
}

// Options configures Open.
type Options struct {
	// Dir is the data directory holding segments and snapshots. Required.
	Dir string
	// FS overrides the filesystem (tests inject faults here). Nil means the
	// real one.
	FS FS
	// Fsync selects the durability/throughput trade-off.
	Fsync FsyncPolicy
	// FsyncInterval is the flush period under FsyncInterval (default 50ms).
	FsyncInterval time.Duration
	// SnapshotEvery triggers a background snapshot after this many appended
	// records (0 disables automatic snapshots; Snapshot can still be called).
	SnapshotEvery int
	// MaxAuditReplay caps how many recovered audit payloads are retained for
	// the caller, newest last (default 4096; the G-SACS audit ring is far
	// smaller).
	MaxAuditReplay int
	// Metrics, when non-nil, receives the repository's instruments.
	Metrics *obs.Registry
	// Logger receives recovery and snapshot diagnostics (nil = discard).
	Logger *slog.Logger
}

// RecoveryInfo describes what Open reconstructed.
type RecoveryInfo struct {
	// SnapshotSeq is the snapshot the state was loaded from (0 = none).
	SnapshotSeq uint64
	// SnapshotTriples is how many triples that snapshot held.
	SnapshotTriples int
	// SegmentsReplayed and RecordsReplayed count the WAL tail replay.
	SegmentsReplayed int
	RecordsReplayed  int
	// AuditRecords counts recovered audit payloads (see Repository.AuditReplay).
	AuditRecords int
	// TornTailTruncated reports that an incomplete final record was cut away.
	TornTailTruncated bool
	// Duration is the wall time recovery took.
	Duration time.Duration
}

// Repository is the durable ontology repository: it journals every store
// mutation to an append-only log before the store applies it, checkpoints the
// full state into checksummed snapshots, and garbage-collects superseded
// files. One Repository owns one data directory.
type Repository struct {
	fsys          FS
	dir           string
	policy        FsyncPolicy
	snapshotEvery int
	logger        *slog.Logger
	st            *store.Store

	mu               sync.Mutex // guards the append path and file rotation
	seg              File       // active segment, opened O_APPEND
	segSeq           uint64
	segBytes         int64 // bytes successfully appended to the active segment
	dirty            bool  // appended bytes not yet fsynced
	recordsSinceSnap int
	broken           error // fail-stop: first unrecoverable write/sync error
	closed           bool

	// Replication streaming state (also under mu). Record sequence numbers
	// are incarnation-local: rebuilt by indexSegments at recovery, advanced
	// by every append. See stream.go.
	headSeq   uint64            // seq of the newest appended record (0 = none yet)
	minSeq    uint64            // oldest record seq still streamable from disk
	segStarts map[uint64]uint64 // segment seq -> seq of its first record
	retainSeq uint64            // GC retention floor for followers (0 = none)
	watch     chan struct{}     // closed and replaced on every append (long-poll)

	snapMu sync.Mutex // serializes whole snapshot cycles

	recovery    RecoveryInfo
	auditReplay [][]byte

	// statusMu guards the snapshot provenance served by Status — written
	// rarely (recovery, snapshot completion), read by /healthz.
	statusMu    sync.Mutex
	lastSnapSeq uint64
	lastSnapGen uint64

	snapCh   chan struct{}
	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	mAppends  *obs.Counter
	mBytes    *obs.Counter
	mFsync    *obs.Histogram
	mSnaps    *obs.Counter
	mSnapDur  *obs.Histogram
	mSnapTrip *obs.Gauge
	mSnapSize *obs.Gauge
}

// errClosed is returned by appends after Close.
var errClosed = errors.New("wal: repository closed")

// Open recovers the durable state from opts.Dir into st — latest valid
// snapshot first, then the WAL tail — installs the commit hook that journals
// every subsequent mutation, and starts the background flush/snapshot
// goroutines. st must be empty: the repository is the source of truth for its
// contents.
//
// A torn final record (partial last write before a crash) is truncated away.
// Corruption anywhere else — a failed checksum, a gap in the segment
// sequence, a mid-log torn record — refuses recovery with an error wrapping
// ErrCorrupt rather than serving silently wrong data.
func Open(st *store.Store, opts Options) (*Repository, error) {
	if opts.Dir == "" {
		return nil, errors.New("wal: Options.Dir is required")
	}
	if st == nil {
		return nil, errors.New("wal: store is required")
	}
	if st.Len() != 0 {
		return nil, fmt.Errorf("wal: store must be empty before recovery (has %d triples)", st.Len())
	}
	r := &Repository{
		fsys:          opts.FS,
		dir:           opts.Dir,
		policy:        opts.Fsync,
		snapshotEvery: opts.SnapshotEvery,
		logger:        opts.Logger,
		st:            st,
		snapCh:        make(chan struct{}, 1),
		stopCh:        make(chan struct{}),
		watch:         make(chan struct{}),
	}
	if r.fsys == nil {
		r.fsys = OSFS()
	}
	if r.logger == nil {
		r.logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	maxAudit := opts.MaxAuditReplay
	if maxAudit <= 0 {
		maxAudit = 4096
	}
	if err := r.fsys.MkdirAll(r.dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create data dir: %w", err)
	}

	start := time.Now()
	if err := r.recover(maxAudit); err != nil {
		return nil, err
	}
	if err := r.indexSegments(); err != nil {
		return nil, err
	}
	r.recovery.AuditRecords = len(r.auditReplay)
	r.recovery.Duration = time.Since(start)
	r.logger.Info("wal: recovery complete",
		"snapshot_seq", r.recovery.SnapshotSeq,
		"snapshot_triples", r.recovery.SnapshotTriples,
		"segments_replayed", r.recovery.SegmentsReplayed,
		"records_replayed", r.recovery.RecordsReplayed,
		"torn_tail_truncated", r.recovery.TornTailTruncated,
		"duration", r.recovery.Duration)

	r.instrument(opts.Metrics)
	st.SetGroupCommitHook(r.commitGroup)

	if r.policy == FsyncInterval {
		iv := opts.FsyncInterval
		if iv <= 0 {
			iv = 50 * time.Millisecond
		}
		r.wg.Add(1)
		go r.flushLoop(iv)
	}
	if r.snapshotEvery > 0 {
		r.wg.Add(1)
		go r.snapshotLoop()
	}
	return r, nil
}

// instrument registers the repository's metrics (nil-safe).
func (r *Repository) instrument(reg *obs.Registry) {
	r.mAppends = reg.Counter("grdf_wal_appends_total", "Records appended to the write-ahead log.")
	r.mBytes = reg.Counter("grdf_wal_bytes", "Bytes appended to the write-ahead log.")
	r.mFsync = reg.Histogram("grdf_wal_fsync_seconds", "WAL fsync latency.", nil)
	r.mSnaps = reg.Counter("grdf_snapshots_total", "Snapshots written.")
	r.mSnapDur = reg.Histogram("grdf_snapshot_duration_seconds", "Snapshot capture+write duration.", nil)
	r.mSnapTrip = reg.Gauge("grdf_snapshot_triples", "Triples in the most recent snapshot.")
	r.mSnapSize = reg.Gauge("grdf_snapshot_bytes", "Size of the most recent snapshot file.")
	reg.Gauge("grdf_recovery_seconds", "Wall time of the last crash recovery.").
		Set(r.recovery.Duration.Seconds())
	reg.GaugeFunc("grdf_wal_segments", "Live WAL segment files.", func() float64 {
		st, err := listDir(r.fsys, r.dir)
		if err != nil {
			return 0
		}
		return float64(len(st.segments))
	})
}

// recover loads the newest loadable snapshot, replays every later segment,
// and leaves the repository positioned to append to the highest segment.
func (r *Repository) recover(maxAudit int) error {
	dirSt, err := listDir(r.fsys, r.dir)
	if err != nil {
		return fmt.Errorf("wal: list data dir: %w", err)
	}

	// Newest snapshot first; a corrupt one falls back to its predecessor
	// (the GC keeps one exactly for this). Track the fallback so the segment
	// coverage check below can tell "no snapshot ever" from "all corrupt".
	var baseSeq uint64
	hadSnapshots := len(dirSt.snapshots) > 0
	loaded := false
	for i := len(dirSt.snapshots) - 1; i >= 0; i-- {
		seq := dirSt.snapshots[i]
		gen, triples, err := loadSnapshot(r.fsys, r.dir, seq)
		if err != nil {
			r.logger.Warn("wal: snapshot unusable, falling back", "seq", seq, "err", err)
			continue
		}
		r.st.AddAll(triples)
		baseSeq = seq
		loaded = true
		r.recovery.SnapshotSeq = seq
		r.recovery.SnapshotTriples = len(triples)
		r.lastSnapSeq = seq
		r.lastSnapGen = gen
		break
	}
	if hadSnapshots && !loaded {
		// Every snapshot is corrupt. Full-log replay can still recover the
		// state, but only if segment 1 survived the GC.
		if len(dirSt.segments) == 0 || dirSt.segments[0] != 1 {
			return fmt.Errorf("%w: every snapshot is unusable and the log does not reach back to segment 1", ErrCorrupt)
		}
		r.logger.Warn("wal: all snapshots unusable; replaying the full log")
	}

	// Collect the segments to replay and verify they are contiguous from
	// baseSeq+1: a gap means a segment vanished and the state cannot be
	// reconstructed.
	var replay []uint64
	for _, seq := range dirSt.segments {
		if seq > baseSeq {
			replay = append(replay, seq)
		}
	}
	want := baseSeq + 1
	for _, seq := range replay {
		if seq != want {
			return fmt.Errorf("%w: segment %d missing (found %d)", ErrCorrupt, want, seq)
		}
		want++
	}

	for i, seq := range replay {
		final := i == len(replay)-1
		if err := r.replaySegment(seq, final, maxAudit); err != nil {
			return err
		}
		r.recovery.SegmentsReplayed++
	}

	// Position the append head. With no segments at all, start a fresh one
	// after the snapshot base.
	if len(replay) > 0 {
		r.segSeq = replay[len(replay)-1]
	} else {
		r.segSeq = baseSeq + 1
	}
	name := filepath.Join(r.dir, segmentName(r.segSeq))
	seg, err := r.fsys.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open active segment: %w", err)
	}
	r.seg = seg
	if fi, err := r.fsys.Stat(name); err == nil {
		r.segBytes = fi.Size()
	}
	if len(replay) == 0 {
		// Make the fresh segment's directory entry durable immediately, so a
		// crash before the first append still leaves a contiguous log.
		if err := syncDir(r.fsys, r.dir); err != nil {
			return fmt.Errorf("wal: sync data dir: %w", err)
		}
	}
	return nil
}

// replaySegment applies every record of one segment to the store. final
// marks the last segment, the only place a torn record is legal: it is
// truncated away. Replay is idempotent — records already reflected in the
// snapshot re-apply as no-ops.
func (r *Repository) replaySegment(seq uint64, final bool, maxAudit int) error {
	name := filepath.Join(r.dir, segmentName(seq))
	buf, err := readAll(r.fsys, name)
	if err != nil {
		return fmt.Errorf("wal: read segment %d: %w", seq, err)
	}
	off := 0
	for {
		rec, next, err := decodeRecord(buf, off)
		if err == io.EOF {
			return nil
		}
		if errors.Is(err, ErrTorn) {
			if !final {
				// A torn record can only be the last thing ever written. Mid-log
				// it means the file was damaged after the fact.
				return fmt.Errorf("%w: segment %d: torn record mid-log at offset %d: %v", ErrCorrupt, seq, off, err)
			}
			r.logger.Warn("wal: truncating torn tail", "segment", seq, "offset", off, "err", err)
			if terr := r.truncateSegment(name, int64(off)); terr != nil {
				return fmt.Errorf("wal: truncate torn tail of segment %d: %w", seq, terr)
			}
			r.recovery.TornTailTruncated = true
			return nil
		}
		if err != nil {
			return fmt.Errorf("segment %d, offset %d: %w", seq, off, err)
		}
		if err := r.applyRecord(rec, maxAudit); err != nil {
			return fmt.Errorf("wal: replay segment %d, offset %d: %w", seq, off, err)
		}
		r.recovery.RecordsReplayed++
		off = next
	}
}

// truncateSegment shears the file at name to size and syncs it.
func (r *Repository) truncateSegment(name string, size int64) error {
	f, err := r.fsys.OpenFile(name, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return err
	}
	return f.Sync()
}

// applyRecord replays one record into the store (or the audit buffer).
func (r *Repository) applyRecord(rec Record, maxAudit int) error {
	if rec.Kind == KindAudit {
		r.auditReplay = append(r.auditReplay, rec.Data)
		if len(r.auditReplay) > maxAudit {
			r.auditReplay = r.auditReplay[len(r.auditReplay)-maxAudit:]
		}
		return nil
	}
	return ApplyRecord(r.st, rec)
}

// ApplyRecord replays one mutation record into st exactly as it committed:
// a KindBatch applies atomically as one store generation, and sub-ops
// already present in st no-op out, so replay is idempotent. KindAudit is a
// no-op here — the audit trail is node-local state, not replicated data.
// Shared by crash recovery and the replication follower, so a streamed
// record applies precisely the way the leader's own recovery would apply it.
func ApplyRecord(st *store.Store, rec Record) error {
	switch rec.Kind {
	case KindAdd:
		st.AddAll(rec.Triples)
	case KindRemove:
		for _, t := range rec.Triples {
			st.Remove(t)
		}
	case KindReplace:
		if _, err := st.Replace(rec.Triples[0], rec.Triples[1]); err != nil {
			return err
		}
	case KindClear:
		st.Clear()
	case KindAudit:
	case KindBatch:
		ops := make([]store.Op, 0, len(rec.Ops))
		for _, sub := range rec.Ops {
			kind, ok := storeKindOf(sub.Kind)
			if !ok {
				return fmt.Errorf("%w: batch sub-op kind %d", ErrCorrupt, sub.Kind)
			}
			ops = append(ops, store.Op{Kind: kind, Triples: sub.Triples})
		}
		if _, err := st.ApplyBatch(ops); err != nil {
			return err
		}
	default:
		return fmt.Errorf("%w: unknown record kind %d", ErrCorrupt, rec.Kind)
	}
	return nil
}

// storeKindOf is the inverse of opKindOf: record kind → store op kind.
func storeKindOf(k Kind) (store.OpKind, bool) {
	switch k {
	case KindAdd:
		return store.OpAdd, true
	case KindRemove:
		return store.OpRemove, true
	case KindReplace:
		return store.OpReplace, true
	case KindClear:
		return store.OpClear, true
	}
	return 0, false
}

// Info returns what recovery reconstructed.
func (r *Repository) Info() RecoveryInfo { return r.recovery }

// Status is the durability state block surfaced by /healthz: snapshot
// provenance, live segment count, and how the last recovery went. It is a
// point-in-time read, cheap enough for a health probe.
type Status struct {
	// LastSnapshotSeq / LastSnapshotGen identify the most recent usable
	// snapshot (written this run, or loaded at recovery). Zero = none yet.
	LastSnapshotSeq uint64 `json:"last_snapshot_seq"`
	LastSnapshotGen uint64 `json:"last_snapshot_generation"`
	// Segments counts live WAL segment files on disk.
	Segments int `json:"segments"`
	// RecoverySeconds is the wall time the last crash recovery took.
	RecoverySeconds float64 `json:"recovery_seconds"`
	// RecordsReplayed counts WAL records replayed during that recovery.
	RecordsReplayed int `json:"records_replayed"`
	// TornTailTruncated reports whether recovery cut away a torn final record.
	TornTailTruncated bool `json:"torn_tail_truncated,omitempty"`
	// Broken reports the log has failed stop (an fsync error): the store is
	// effectively read-only until restart.
	Broken bool `json:"broken,omitempty"`
}

// WALStatus reports the repository's current durability state.
func (r *Repository) WALStatus() Status {
	st := Status{
		RecoverySeconds:   r.recovery.Duration.Seconds(),
		RecordsReplayed:   r.recovery.RecordsReplayed,
		TornTailTruncated: r.recovery.TornTailTruncated,
	}
	r.statusMu.Lock()
	st.LastSnapshotSeq = r.lastSnapSeq
	st.LastSnapshotGen = r.lastSnapGen
	r.statusMu.Unlock()
	r.mu.Lock()
	st.Broken = r.broken != nil
	r.mu.Unlock()
	if dirSt, err := listDir(r.fsys, r.dir); err == nil {
		st.Segments = len(dirSt.segments)
	}
	return st
}

// AuditReplay returns the audit payloads recovered from the log, oldest
// first, so the caller can restore its audit trail.
func (r *Repository) AuditReplay() [][]byte { return r.auditReplay }

// commitGroup is the store's group commit hook: journal every logical commit
// of the group before the store publishes any of it. It runs under the store
// writer lock, so append order is exactly apply order; an error here aborts
// the whole group and no caller sees an ack. Each single-op commit becomes
// one plain record; an atomic multi-op batch becomes one KindBatch record,
// so torn-tail truncation can only ever drop whole commits. The group pays
// one segment write and — under FsyncAlways — one fsync, however many
// concurrent mutations it carries: that is the whole point.
//
// Each commit's request context (when present) carries its trace, so the
// durability cost shows up as wal.append / wal.fsync spans per mutation.
func (r *Repository) commitGroup(groups [][]store.Op) error {
	frames := make([][]byte, 0, len(groups))
	spans := make([]*obs.Span, 0, len(groups))
	finish := func(err error) {
		for _, sp := range spans {
			if err != nil {
				sp.Fail(err)
			}
			sp.End()
		}
	}
	fsyncCtx := context.Background()
	for i, ops := range groups {
		ctx := context.Background()
		if len(ops) > 0 && ops[0].Ctx != nil {
			ctx = ops[0].Ctx
		}
		if i == 0 {
			fsyncCtx = ctx
		}
		_, sp := obs.StartSpan(ctx, "wal.append")
		spans = append(spans, sp)
		frame, err := encodeGroup(ops, sp)
		if err != nil {
			finish(err)
			return err
		}
		sp.Add("bytes", int64(len(frame)))
		frames = append(frames, frame)
	}
	err := r.appendFrames(fsyncCtx, frames, r.policy == FsyncAlways)
	finish(err)
	return err
}

// encodeGroup renders one logical commit as one WAL frame: a plain record
// for a single op, a KindBatch record for an atomic multi-op batch.
func encodeGroup(ops []store.Op, sp *obs.Span) ([]byte, error) {
	if len(ops) == 0 {
		return nil, fmt.Errorf("wal: empty commit group")
	}
	if len(ops) == 1 {
		op := ops[0]
		kind, ok := opKindOf(op.Kind)
		if !ok {
			return nil, fmt.Errorf("wal: unloggable op kind %v", op.Kind)
		}
		sp.SetAttr("kind", kind.String())
		sp.Add("triples", int64(len(op.Triples)))
		return encodeRecord(Record{Kind: kind, Gen: op.Gen, Triples: op.Triples})
	}
	subs := make([]SubOp, 0, len(ops))
	triples := 0
	for _, op := range ops {
		kind, ok := opKindOf(op.Kind)
		if !ok {
			return nil, fmt.Errorf("wal: unloggable op kind %v", op.Kind)
		}
		subs = append(subs, SubOp{Kind: kind, Triples: op.Triples})
		triples += len(op.Triples)
	}
	sp.SetAttr("kind", KindBatch.String())
	sp.Add("ops", int64(len(subs)))
	sp.Add("triples", int64(triples))
	return encodeRecord(Record{Kind: KindBatch, Gen: ops[0].Gen, Ops: subs})
}

// AppendAudit journals an opaque audit payload. Audit entries are never
// individually fsynced: under FsyncAlways the next mutation record's fsync
// flushes them, and an audit entry always precedes the mutation it describes
// — so any acknowledged mutation's audit trail is durable with it.
func (r *Repository) AppendAudit(data []byte) error {
	frame, err := encodeRecord(Record{Kind: KindAudit, Data: data})
	if err != nil {
		return err
	}
	return r.append(context.Background(), frame, false)
}

// append writes one frame to the active segment, optionally fsyncing.
//
// Failure handling is deliberately asymmetric. A failed *write* is repaired
// by truncating back to the last committed offset — the frame never happened.
// A failed *fsync* is fail-stop: the kernel may have dropped dirty pages we
// can no longer re-write (the "fsyncgate" lesson), so the log is marked
// broken and every later append refuses until the process restarts and
// recovery re-establishes a trustworthy tail.
func (r *Repository) append(ctx context.Context, frame []byte, syncNow bool) error {
	return r.appendFrames(ctx, [][]byte{frame}, syncNow)
}

// appendFrames writes a group of frames to the active segment as one
// contiguous write, optionally fsyncing once afterwards. The write is
// all-or-nothing: on failure the segment is truncated back to the last
// committed offset, so a group never half-lands.
func (r *Repository) appendFrames(ctx context.Context, frames [][]byte, syncNow bool) error {
	buf := frames[0]
	if len(frames) > 1 {
		total := 0
		for _, f := range frames {
			total += len(f)
		}
		buf = make([]byte, 0, total)
		for _, f := range frames {
			buf = append(buf, f...)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.broken != nil {
		return fmt.Errorf("wal: log broken by earlier error: %w", r.broken)
	}
	if r.closed {
		return errClosed
	}
	if _, err := r.seg.Write(buf); err != nil {
		// Repair the torn frames so the in-memory offset stays truthful. If
		// even that fails, the tail is untrustworthy: fail stop.
		name := filepath.Join(r.dir, segmentName(r.segSeq))
		if terr := r.truncateSegment(name, r.segBytes); terr != nil {
			r.broken = fmt.Errorf("write failed (%v) and truncate-repair failed: %w", err, terr)
		}
		return fmt.Errorf("wal: append: %w", err)
	}
	r.segBytes += int64(len(buf))
	r.dirty = true
	if syncNow {
		if err := r.syncCtxLocked(ctx); err != nil {
			return err
		}
	}
	// Advance the replication head and wake any long-polling streamers. Only
	// after a successful write (and fsync, when demanded): a record a
	// follower can see is always one the leader would survive a crash with.
	r.headSeq += uint64(len(frames))
	close(r.watch)
	r.watch = make(chan struct{})
	r.mAppends.Add(float64(len(frames)))
	r.mBytes.Add(float64(len(buf)))
	r.recordsSinceSnap += len(frames)
	if r.snapshotEvery > 0 && r.recordsSinceSnap >= r.snapshotEvery {
		select {
		case r.snapCh <- struct{}{}:
		default:
		}
	}
	return nil
}

// syncLocked fsyncs the active segment; a failure breaks the log (fail-stop).
func (r *Repository) syncLocked() error {
	return r.syncCtxLocked(context.Background())
}

// syncCtxLocked is syncLocked with a request context: when ctx carries a
// trace (FsyncAlways on the mutation path), the fsync cost gets its own span.
func (r *Repository) syncCtxLocked(ctx context.Context) error {
	if !r.dirty {
		return nil
	}
	_, sp := obs.StartSpan(ctx, "wal.fsync")
	start := time.Now()
	if err := r.seg.Sync(); err != nil {
		r.broken = fmt.Errorf("fsync failed: %w", err)
		sp.Fail(err)
		sp.End()
		return fmt.Errorf("wal: fsync: %w", err)
	}
	sp.End()
	r.mFsync.ObserveSince(start)
	r.dirty = false
	return nil
}

// Sync flushes any unsynced appends to stable storage.
func (r *Repository) Sync() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.broken != nil {
		return fmt.Errorf("wal: log broken by earlier error: %w", r.broken)
	}
	if r.closed {
		return errClosed
	}
	return r.syncLocked()
}

// flushLoop services the FsyncInterval policy.
func (r *Repository) flushLoop(interval time.Duration) {
	defer r.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-r.stopCh:
			return
		case <-t.C:
			r.mu.Lock()
			if !r.closed && r.broken == nil {
				if err := r.syncLocked(); err != nil {
					r.logger.Error("wal: interval fsync failed; log is now fail-stop", "err", err)
				}
			}
			r.mu.Unlock()
		}
	}
}

// snapshotLoop services automatic snapshot triggers.
func (r *Repository) snapshotLoop() {
	defer r.wg.Done()
	for {
		select {
		case <-r.stopCh:
			return
		case <-r.snapCh:
			if err := r.Snapshot(); err != nil {
				r.logger.Error("wal: background snapshot failed", "err", err)
			}
		}
	}
}

// Snapshot checkpoints the current store state and garbage-collects
// superseded files. The sequence is rotate-then-capture: the log rotates to a
// fresh segment first, then the state is captured, so every record that is
// not in the snapshot lives in a segment after it. Mutations that land
// between rotation and capture appear in both — harmless, because replay is
// idempotent.
func (r *Repository) Snapshot() error {
	r.snapMu.Lock()
	defer r.snapMu.Unlock()
	start := time.Now()

	// Rotate under the append lock.
	r.mu.Lock()
	if r.broken != nil {
		err := r.broken
		r.mu.Unlock()
		return fmt.Errorf("wal: log broken by earlier error: %w", err)
	}
	if r.closed {
		r.mu.Unlock()
		return errClosed
	}
	if err := r.syncLocked(); err != nil {
		r.mu.Unlock()
		return err
	}
	oldSeq := r.segSeq
	newName := filepath.Join(r.dir, segmentName(oldSeq+1))
	seg, err := r.fsys.OpenFile(newName, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		r.mu.Unlock()
		return fmt.Errorf("wal: rotate: %w", err)
	}
	if err := syncDir(r.fsys, r.dir); err != nil {
		seg.Close()
		r.fsys.Remove(newName)
		r.mu.Unlock()
		return fmt.Errorf("wal: rotate dir sync: %w", err)
	}
	old := r.seg
	r.seg = seg
	r.segSeq = oldSeq + 1
	r.segBytes = 0
	r.dirty = false
	r.recordsSinceSnap = 0
	r.segStarts[r.segSeq] = r.headSeq + 1
	r.mu.Unlock()
	if err := old.Close(); err != nil {
		r.logger.Warn("wal: closing rotated segment", "seq", oldSeq, "err", err)
	}

	// Capture outside the append lock: mutations continue into the new
	// segment while the snapshot is written.
	gen := r.st.Generation()
	triples := r.st.Triples()
	size, err := writeSnapshot(r.fsys, r.dir, oldSeq, gen, triples)
	if err != nil {
		return err
	}
	r.mSnaps.Inc()
	r.mSnapDur.ObserveSince(start)
	r.mSnapTrip.Set(float64(len(triples)))
	r.mSnapSize.Set(float64(size))
	r.statusMu.Lock()
	r.lastSnapSeq = oldSeq
	r.lastSnapGen = gen
	r.statusMu.Unlock()
	r.logger.Info("wal: snapshot written", "seq", oldSeq, "triples", len(triples),
		"bytes", size, "duration", time.Since(start))

	r.gc()
	return nil
}

// gc deletes superseded files: all but the two newest snapshots, and every
// segment already covered by the older kept snapshot. Keeping one predecessor
// snapshot (and the segments after it) lets recovery fall back if the newest
// snapshot turns out corrupt.
//
// A non-zero retention floor (SetRetainSeq) additionally pins every segment
// holding record sequences at or after the floor — the replication leader
// keeps the floor at the slowest active follower's acknowledged position, so
// GC can never delete a segment between a follower's acked seq and the head.
// Because segment record ranges are ascending, the pinned set is always a
// suffix of the log: the streamable window stays contiguous.
func (r *Repository) gc() {
	dirSt, err := listDir(r.fsys, r.dir)
	if err != nil {
		r.logger.Warn("wal: gc list", "err", err)
		return
	}
	if len(dirSt.snapshots) < 2 {
		return
	}
	keepFrom := dirSt.snapshots[len(dirSt.snapshots)-2]
	for _, seq := range dirSt.snapshots[:len(dirSt.snapshots)-2] {
		if err := r.fsys.Remove(filepath.Join(r.dir, snapshotName(seq))); err != nil && !errors.Is(err, fs.ErrNotExist) {
			r.logger.Warn("wal: gc snapshot", "seq", seq, "err", err)
		}
	}

	r.mu.Lock()
	retain := r.retainSeq
	head := r.headSeq
	starts := make(map[uint64]uint64, len(r.segStarts))
	for seg, start := range r.segStarts {
		starts[seg] = start
	}
	r.mu.Unlock()
	// Last record seq per streamable segment: next segment's start - 1, and
	// the head for the newest.
	ordered := make([]uint64, 0, len(starts))
	for seg := range starts {
		ordered = append(ordered, seg)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	ends := make(map[uint64]uint64, len(ordered))
	for i, seg := range ordered {
		if i+1 < len(ordered) {
			ends[seg] = starts[ordered[i+1]] - 1
		} else {
			ends[seg] = head
		}
	}

	var deleted []uint64
	for _, seq := range dirSt.segments {
		if seq > keepFrom {
			continue
		}
		if retain > 0 {
			if end, ok := ends[seq]; ok && end >= retain {
				r.logger.Info("wal: gc pinned segment below retention floor",
					"segment", seq, "end_seq", end, "retain_seq", retain)
				continue
			}
		}
		if err := r.fsys.Remove(filepath.Join(r.dir, segmentName(seq))); err != nil && !errors.Is(err, fs.ErrNotExist) {
			r.logger.Warn("wal: gc segment", "seq", seq, "err", err)
		} else {
			deleted = append(deleted, seq)
		}
	}
	if len(deleted) > 0 {
		r.mu.Lock()
		for _, seq := range deleted {
			delete(r.segStarts, seq)
		}
		r.minSeq = r.minSeqLocked()
		r.mu.Unlock()
	}
}

// Close stops the background goroutines, flushes the log and closes the
// active segment. The commit hook stays installed and refuses further
// mutations — after Close the store is read-only by construction.
func (r *Repository) Close() error {
	r.stopOnce.Do(func() { close(r.stopCh) })
	r.wg.Wait()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	var first error
	if r.broken == nil && r.policy != FsyncOff && r.dirty {
		start := time.Now()
		if err := r.seg.Sync(); err != nil {
			first = fmt.Errorf("wal: close fsync: %w", err)
		} else {
			r.mFsync.ObserveSince(start)
			r.dirty = false
		}
	}
	if err := r.seg.Close(); err != nil && first == nil {
		first = fmt.Errorf("wal: close segment: %w", err)
	}
	return first
}
