package wal

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
)

// Group-commit durability coverage: an atomic batch is one KindBatch frame
// (one append, one fsync), a failed group fsync fails every op in the group
// and leaves the store untouched, and torn-tail truncation can only ever
// drop whole batches — never half of one.

func TestBatchRecordRoundTrip(t *testing.T) {
	want := Record{Kind: KindBatch, Gen: 21, Ops: []SubOp{
		{Kind: KindAdd, Triples: []rdf.Triple{triple(1), triple(2)}},
		{Kind: KindRemove, Triples: []rdf.Triple{triple(3)}},
		{Kind: KindReplace, Triples: []rdf.Triple{triple(2), triple(4)}},
		{Kind: KindClear},
	}}
	frame, err := encodeRecord(want)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, next, err := decodeRecord(frame, 0)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if next != len(frame) {
		t.Errorf("next offset = %d, want %d", next, len(frame))
	}
	if got.Kind != KindBatch || got.Gen != want.Gen || len(got.Ops) != len(want.Ops) {
		t.Fatalf("decoded %+v, want %+v", got, want)
	}
	for i, sub := range want.Ops {
		if got.Ops[i].Kind != sub.Kind || len(got.Ops[i].Triples) != len(sub.Triples) {
			t.Fatalf("sub-op %d: got %+v, want %+v", i, got.Ops[i], sub)
		}
		for j := range sub.Triples {
			if got.Ops[i].Triples[j].String() != sub.Triples[j].String() {
				t.Errorf("sub-op %d triple %d: %s != %s", i, j, got.Ops[i].Triples[j], sub.Triples[j])
			}
		}
	}

	// A flipped bit anywhere in the batch payload is caught by the frame CRC.
	bad := append([]byte(nil), frame...)
	bad[len(bad)/2] ^= 0x04
	if _, _, err := decodeRecord(bad, 0); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bit flip in batch frame: got %v, want ErrCorrupt", err)
	}

	if _, err := encodeRecord(Record{Kind: KindBatch}); err == nil {
		t.Error("empty batch record encoded, want error")
	}
}

// TestBatchPaysOneAppendOneFsync: however many ops an atomic batch carries,
// the log sees exactly one write and one fsync before the ack.
func TestBatchPaysOneAppendOneFsync(t *testing.T) {
	ff := NewFaultFS(nil, FaultConfig{})
	st, repo := openRepo(t, t.TempDir(), Options{FS: ff, Fsync: FsyncAlways})
	defer repo.Close()
	w0, s0 := ff.Counts()

	ops := make([]store.Op, 0, 10)
	for i := 0; i < 10; i++ {
		ops = append(ops, store.Op{Kind: store.OpAdd, Triples: []rdf.Triple{triple(i)}})
	}
	if _, err := st.ApplyBatch(ops); err != nil {
		t.Fatalf("ApplyBatch: %v", err)
	}
	w1, s1 := ff.Counts()
	if w1-w0 != 1 || s1-s0 != 1 {
		t.Errorf("10-op batch cost %d writes and %d fsyncs, want 1 and 1", w1-w0, s1-s0)
	}
}

// TestConcurrentWritersShareFsyncs: under concurrency, the fsync count must
// stay below the op count — groups formed — while every acked op survives a
// reopen.
func TestConcurrentWritersShareFsyncs(t *testing.T) {
	dir := t.TempDir()
	ff := NewFaultFS(nil, FaultConfig{})
	st, repo := openRepo(t, dir, Options{FS: ff, Fsync: FsyncAlways})
	_, s0 := ff.Counts()

	const writers, perWriter = 8, 20
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := st.Apply(store.Op{Kind: store.OpAdd,
					Triples: []rdf.Triple{triple(w*perWriter + i)}}); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := repo.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	const total = writers * perWriter
	_, syncs := ff.Counts()
	if syncs-s0 >= total {
		t.Errorf("%d fsyncs for %d acked ops: group commit never fused", syncs-s0, total)
	}
	gc := st.GroupCommitStats()
	if gc.Ops != total {
		t.Errorf("GroupCommitStats.Ops = %d, want %d", gc.Ops, total)
	}
	t.Logf("%d ops in %d groups, %d fsyncs", gc.Ops, gc.Groups, syncs)

	st2, repo2 := openRepo(t, dir, Options{})
	defer repo2.Close()
	sameState(t, st, st2)
}

// TestFsyncFailureMidGroupFailsWholeBatch: when the group fsync fails, every
// op of the atomic batch reports the persistence error, the in-memory store
// publishes nothing, and the log is fail-stop until reopened.
func TestFsyncFailureMidGroupFailsWholeBatch(t *testing.T) {
	dir := t.TempDir()
	ff := NewFaultFS(nil, FaultConfig{})
	st, repo := openRepo(t, dir, Options{FS: ff, Fsync: FsyncAlways})

	if _, err := st.Apply(store.Op{Kind: store.OpAdd, Triples: []rdf.Triple{triple(0)}}); err != nil {
		t.Fatalf("seed write: %v", err)
	}
	gen := st.Generation()

	// Position a fault on the next fsync, then commit an atomic batch.
	_, syncs := ff.Counts()
	ff.cfg.FailSyncAt = syncs + 1
	_, err := st.ApplyBatch([]store.Op{
		{Kind: store.OpAdd, Triples: []rdf.Triple{triple(1)}},
		{Kind: store.OpRemove, Triples: []rdf.Triple{triple(0)}},
	})
	if !errors.Is(err, store.ErrCommitHook) || !errors.Is(err, ErrInjected) {
		t.Fatalf("batch err = %v, want ErrCommitHook wrapping the injected fsync fault", err)
	}
	if st.Generation() != gen || st.Has(triple(1)) || !st.Has(triple(0)) {
		t.Error("failed group leaked into the published version")
	}

	// Fail-stop: later mutations are refused without touching the disk.
	if _, err := st.Apply(store.Op{Kind: store.OpAdd, Triples: []rdf.Triple{triple(2)}}); err == nil {
		t.Fatal("append after failed fsync was accepted")
	}
	repo.Close()

	// Recovery on a healthy filesystem must come back clean. The unacked
	// batch frame DID reach the file (only the fsync was refused), so the
	// durability contract allows either outcome — but never a torn one: the
	// recovered state is exactly the pre-batch state or exactly the
	// post-batch state, because the batch is a single all-or-nothing frame.
	st2, repo2 := openRepo(t, dir, Options{})
	defer repo2.Close()
	pre := st2.Has(triple(0)) && !st2.Has(triple(1))
	post := !st2.Has(triple(0)) && st2.Has(triple(1))
	if !pre && !post {
		t.Errorf("recovered a half-applied batch: has(0)=%v has(1)=%v",
			st2.Has(triple(0)), st2.Has(triple(1)))
	}
	if err := st2.Validate(); err != nil {
		t.Errorf("recovered state inconsistent: %v", err)
	}
}

// TestTornBatchTailDropsWholeGroup: shearing the final KindBatch frame mid-
// record must truncate the whole batch away on recovery — the store comes
// back as if the batch never happened, not half-applied.
func TestTornBatchTailDropsWholeGroup(t *testing.T) {
	dir := t.TempDir()
	st, repo := openRepo(t, dir, Options{Fsync: FsyncAlways})
	if _, err := st.Apply(store.Op{Kind: store.OpAdd, Triples: []rdf.Triple{triple(0)}}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.ApplyBatch([]store.Op{
		{Kind: store.OpAdd, Triples: []rdf.Triple{triple(1), triple(2)}},
		{Kind: store.OpReplace, Triples: []rdf.Triple{triple(0), triple(3)}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := repo.Close(); err != nil {
		t.Fatal(err)
	}

	// Shear 3 bytes off the segment tail: the KindBatch frame is torn.
	seg := filepath.Join(dir, segmentName(1))
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := TruncateFile(seg, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	st2, repo2 := openRepo(t, dir, Options{})
	defer repo2.Close()
	if !repo2.Info().TornTailTruncated {
		t.Error("recovery did not report the torn tail")
	}
	if !st2.Has(triple(0)) {
		t.Error("commit before the torn batch lost")
	}
	for i, tr := range []rdf.Triple{triple(1), triple(2), triple(3)} {
		if st2.Has(tr) {
			t.Errorf("sub-op triple %d of the torn batch survived: %s", i, tr)
		}
	}
	if st2.Has(triple(0)) && st2.Len() != 1 {
		t.Errorf("recovered %d triples, want exactly the pre-batch state", st2.Len())
	}
}

// TestBatchReplayIsAtomic: a cleanly-persisted batch replays as one commit —
// one generation bump — on recovery.
func TestBatchReplayIsAtomic(t *testing.T) {
	dir := t.TempDir()
	st, repo := openRepo(t, dir, Options{Fsync: FsyncAlways})
	var ops []store.Op
	for i := 0; i < 5; i++ {
		ops = append(ops, store.Op{Kind: store.OpAdd, Triples: []rdf.Triple{triple(i)}})
	}
	if _, err := st.ApplyBatch(ops); err != nil {
		t.Fatal(err)
	}
	if err := repo.Close(); err != nil {
		t.Fatal(err)
	}

	st2, repo2 := openRepo(t, dir, Options{})
	defer repo2.Close()
	sameState(t, st, st2)
	if st2.Generation() != 1 {
		t.Errorf("replayed batch moved the store %d generations, want 1", st2.Generation())
	}
}
