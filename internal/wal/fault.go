package wal

import (
	"errors"
	"io/fs"
	"os"
	"sync"
)

// ErrInjected marks every failure produced by FaultFS, so tests can assert
// a fault was the injected one and not an accident of the environment.
var ErrInjected = errors.New("wal: injected fault")

// FaultConfig positions deterministic faults on the global operation
// counters of a FaultFS. All positions are 1-based; zero disables a fault.
// Counters are shared across every file opened through the FaultFS, which
// makes fault placement reproducible for a fixed workload.
type FaultConfig struct {
	// ShortWriteAt makes the Nth Write persist only the first half of its
	// payload and then report ErrInjected — a torn write.
	ShortWriteAt int
	// FailWriteAt makes the Nth Write fail outright, persisting nothing.
	FailWriteAt int
	// FailSyncAt makes the Nth Sync report ErrInjected after doing nothing.
	FailSyncAt int
	// FailRenameAt makes the Nth Rename fail, leaving the temp file behind.
	FailRenameAt int
}

// FaultFS wraps an FS with deterministic fault injection for chaos tests.
type FaultFS struct {
	inner FS
	cfg   FaultConfig

	mu      sync.Mutex
	writes  int
	syncs   int
	renames int
}

// NewFaultFS wraps inner with the given fault plan.
func NewFaultFS(inner FS, cfg FaultConfig) *FaultFS {
	if inner == nil {
		inner = OSFS()
	}
	return &FaultFS{inner: inner, cfg: cfg}
}

// Counts reports how many writes and syncs have been attempted, so tests
// can position follow-up fault plans.
func (f *FaultFS) Counts() (writes, syncs int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writes, f.syncs
}

func (f *FaultFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: inner, fs: f}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	f.renames++
	fail := f.cfg.FailRenameAt > 0 && f.renames == f.cfg.FailRenameAt
	f.mu.Unlock()
	if fail {
		return ErrInjected
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error                   { return f.inner.Remove(name) }
func (f *FaultFS) ReadDir(name string) ([]fs.DirEntry, error) { return f.inner.ReadDir(name) }
func (f *FaultFS) MkdirAll(path string, perm fs.FileMode) error {
	return f.inner.MkdirAll(path, perm)
}
func (f *FaultFS) Stat(name string) (fs.FileInfo, error) { return f.inner.Stat(name) }

// faultFile interposes the write/sync fault points.
type faultFile struct {
	File
	fs *FaultFS
}

func (ff *faultFile) Write(p []byte) (int, error) {
	ff.fs.mu.Lock()
	ff.fs.writes++
	n := ff.fs.writes
	short := ff.fs.cfg.ShortWriteAt > 0 && n == ff.fs.cfg.ShortWriteAt
	fail := ff.fs.cfg.FailWriteAt > 0 && n == ff.fs.cfg.FailWriteAt
	ff.fs.mu.Unlock()
	if fail {
		return 0, ErrInjected
	}
	if short {
		written, _ := ff.File.Write(p[:len(p)/2])
		return written, ErrInjected
	}
	return ff.File.Write(p)
}

func (ff *faultFile) Sync() error {
	ff.fs.mu.Lock()
	ff.fs.syncs++
	fail := ff.fs.cfg.FailSyncAt > 0 && ff.fs.syncs == ff.fs.cfg.FailSyncAt
	ff.fs.mu.Unlock()
	if fail {
		return ErrInjected
	}
	return ff.File.Sync()
}

// FlipBit flips one bit of the file at path — the chaos tests' model of
// at-rest disk corruption. offset is the byte position; bit selects 0–7.
func FlipBit(path string, offset int64, bit uint) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	buf := make([]byte, 1)
	if _, err := f.ReadAt(buf, offset); err != nil {
		return err
	}
	buf[0] ^= 1 << (bit % 8)
	_, err = f.WriteAt(buf, offset)
	return err
}

// TruncateFile shears the file at path to size bytes — the chaos tests'
// model of a torn final write.
func TruncateFile(path string, size int64) error {
	return os.Truncate(path, size)
}

// FlipBitBytes flips one bit of an in-memory buffer — the chaos tests'
// model of in-transit corruption on a replication stream. offset indexes
// the byte; bit selects 0–7. Out-of-range offsets are a no-op so tests can
// aim at arbitrary positions of variable-length frames.
func FlipBitBytes(buf []byte, offset int, bit uint) {
	if offset < 0 || offset >= len(buf) {
		return
	}
	buf[offset] ^= 1 << (bit % 8)
}
