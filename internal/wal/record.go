package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"strings"

	"repro/internal/ntriples"
	"repro/internal/rdf"
	"repro/internal/store"
)

// Kind discriminates WAL record types. Mutation kinds mirror store.OpKind;
// KindAudit carries an opaque side payload (the G-SACS audit trail) that
// rides the same durability machinery without the wal package knowing its
// schema.
type Kind uint8

const (
	// KindAdd is a batch triple insertion.
	KindAdd Kind = 1
	// KindRemove is a batch triple deletion.
	KindRemove Kind = 2
	// KindReplace atomically swaps Triples[0] for Triples[1].
	KindReplace Kind = 3
	// KindClear empties the store.
	KindClear Kind = 4
	// KindAudit carries an opaque audit payload in Data.
	KindAudit Kind = 5
	// KindBatch is one atomic multi-op commit (a /v1/mutate batch): all of
	// its sub-ops live inside a single frame, so the one-frame atomicity the
	// torn-tail repair already provides makes batch replay all-or-nothing for
	// free — recovery can never resurrect half a batch.
	KindBatch Kind = 6
)

func (k Kind) String() string {
	switch k {
	case KindAdd:
		return "add"
	case KindRemove:
		return "remove"
	case KindReplace:
		return "replace"
	case KindClear:
		return "clear"
	case KindAudit:
		return "audit"
	case KindBatch:
		return "batch"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Record is one WAL entry. Mutation records carry the store generation
// observed when the op was committed, which recovery reports for
// diagnostics.
type Record struct {
	Kind    Kind
	Gen     uint64
	Triples []rdf.Triple // mutation kinds; [old, new] for KindReplace
	Data    []byte       // KindAudit payload
	Ops     []SubOp      // KindBatch sub-ops, in apply order
}

// SubOp is one mutation of a KindBatch record.
type SubOp struct {
	Kind    Kind
	Triples []rdf.Triple
}

// On-disk frame: uint32 LE payload length, uint32 LE CRC32C of the payload,
// then the payload. The payload is kind (1 byte), generation (uvarint),
// item count (uvarint), then count length-prefixed items — N-Triples
// statements for mutation records, one opaque blob for audit records.
const frameHeaderLen = 8

// maxRecordBytes bounds a single record so a corrupt length prefix cannot
// force a giant allocation during recovery.
const maxRecordBytes = 64 << 20

// castagnoli is the CRC32C table (the checksum polynomial used by iSCSI,
// ext4 and most modern WAL implementations; hardware-accelerated on
// amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

var (
	// ErrTorn reports an incomplete final record: the frame claims more
	// bytes than the file holds. Recovery truncates it away.
	ErrTorn = errors.New("wal: torn record at log tail")
	// ErrCorrupt reports a record whose checksum or structure is invalid —
	// recovery refuses rather than load silently-corrupt data.
	ErrCorrupt = errors.New("wal: corrupt record")
)

// opKindOf maps a store op kind to its record kind.
func opKindOf(k store.OpKind) (Kind, bool) {
	switch k {
	case store.OpAdd:
		return KindAdd, true
	case store.OpRemove:
		return KindRemove, true
	case store.OpReplace:
		return KindReplace, true
	case store.OpClear:
		return KindClear, true
	}
	return 0, false
}

// encodeRecord renders the full frame (header + payload) for r.
func encodeRecord(r Record) ([]byte, error) {
	payload := make([]byte, 0, 64)
	payload = append(payload, byte(r.Kind))
	payload = binary.AppendUvarint(payload, r.Gen)
	switch r.Kind {
	case KindAdd, KindRemove, KindReplace, KindClear:
		if r.Kind == KindReplace && len(r.Triples) != 2 {
			return nil, fmt.Errorf("wal: replace record needs [old, new], got %d triples", len(r.Triples))
		}
		payload = binary.AppendUvarint(payload, uint64(len(r.Triples)))
		for _, t := range r.Triples {
			line := t.String()
			payload = binary.AppendUvarint(payload, uint64(len(line)))
			payload = append(payload, line...)
		}
	case KindAudit:
		payload = binary.AppendUvarint(payload, 1)
		payload = binary.AppendUvarint(payload, uint64(len(r.Data)))
		payload = append(payload, r.Data...)
	case KindBatch:
		if len(r.Ops) == 0 {
			return nil, fmt.Errorf("wal: batch record needs at least one sub-op")
		}
		payload = binary.AppendUvarint(payload, uint64(len(r.Ops)))
		for i, sub := range r.Ops {
			blob, err := encodeSubOp(sub)
			if err != nil {
				return nil, fmt.Errorf("wal: batch sub-op %d: %w", i, err)
			}
			payload = binary.AppendUvarint(payload, uint64(len(blob)))
			payload = append(payload, blob...)
		}
	default:
		return nil, fmt.Errorf("wal: cannot encode record kind %d", r.Kind)
	}
	if len(payload) > maxRecordBytes {
		return nil, fmt.Errorf("wal: record of %d bytes exceeds the %d-byte limit", len(payload), maxRecordBytes)
	}
	frame := make([]byte, frameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[frameHeaderLen:], payload)
	return frame, nil
}

// EncodeRecord renders the full on-disk/wire frame (length + CRC32C header
// + payload) for r. Exported for the replication transport, which ships
// frames byte-identical to their disk representation.
func EncodeRecord(r Record) ([]byte, error) { return encodeRecord(r) }

// DecodeRecord decodes one record from buf starting at off, returning the
// record and the offset of the next frame. io.EOF signals a clean end of
// input; ErrTorn an incomplete tail frame; ErrCorrupt a checksum or
// structure violation. A replication follower runs every streamed frame
// through this — the same verification recovery uses — before applying it.
func DecodeRecord(buf []byte, off int) (Record, int, error) { return decodeRecord(buf, off) }

// frameAt verifies the length header and CRC32C of the frame starting at
// off and returns the raw frame bytes (header included) plus the next
// offset — without parsing the payload. The streaming read path uses this
// to slice frames out of segments cheaply; full structural validation
// happens on the receiving side via DecodeRecord.
func frameAt(buf []byte, off int) ([]byte, int, error) {
	rest := buf[off:]
	if len(rest) < frameHeaderLen {
		return nil, off, fmt.Errorf("%w: %d trailing bytes, need %d for a frame header",
			ErrTorn, len(rest), frameHeaderLen)
	}
	n := binary.LittleEndian.Uint32(rest[0:4])
	crc := binary.LittleEndian.Uint32(rest[4:8])
	if n == 0 {
		return nil, off, fmt.Errorf("%w: zero-length frame (zero-fill tail)", ErrTorn)
	}
	if n > maxRecordBytes {
		return nil, off, fmt.Errorf("%w: frame claims %d bytes (limit %d)", ErrCorrupt, n, maxRecordBytes)
	}
	if len(rest) < frameHeaderLen+int(n) {
		return nil, off, fmt.Errorf("%w: frame claims %d bytes, only %d remain",
			ErrTorn, n, len(rest)-frameHeaderLen)
	}
	payload := rest[frameHeaderLen : frameHeaderLen+int(n)]
	if got := crc32.Checksum(payload, castagnoli); got != crc {
		return nil, off, fmt.Errorf("%w: checksum mismatch at offset %d (stored %08x, computed %08x)",
			ErrCorrupt, off, crc, got)
	}
	end := off + frameHeaderLen + int(n)
	return buf[off:end], end, nil
}

// decodeRecord decodes one record from buf starting at off, returning the
// record and the offset of the next frame. io.EOF signals a clean end of
// log; ErrTorn an incomplete tail frame; ErrCorrupt a checksum or structure
// violation.
func decodeRecord(buf []byte, off int) (Record, int, error) {
	if off == len(buf) {
		return Record{}, off, io.EOF
	}
	rest := buf[off:]
	if len(rest) < frameHeaderLen {
		return Record{}, off, fmt.Errorf("%w: %d trailing bytes, need %d for a frame header",
			ErrTorn, len(rest), frameHeaderLen)
	}
	n := binary.LittleEndian.Uint32(rest[0:4])
	crc := binary.LittleEndian.Uint32(rest[4:8])
	if n == 0 {
		// A written frame is never empty; zero-length frames are the
		// zero-fill signature some filesystems leave after a crash.
		return Record{}, off, fmt.Errorf("%w: zero-length frame (zero-fill tail)", ErrTorn)
	}
	if n > maxRecordBytes {
		return Record{}, off, fmt.Errorf("%w: frame claims %d bytes (limit %d)", ErrCorrupt, n, maxRecordBytes)
	}
	if len(rest) < frameHeaderLen+int(n) {
		return Record{}, off, fmt.Errorf("%w: frame claims %d bytes, only %d remain",
			ErrTorn, n, len(rest)-frameHeaderLen)
	}
	payload := rest[frameHeaderLen : frameHeaderLen+int(n)]
	if got := crc32.Checksum(payload, castagnoli); got != crc {
		return Record{}, off, fmt.Errorf("%w: checksum mismatch at offset %d (stored %08x, computed %08x)",
			ErrCorrupt, off, crc, got)
	}
	rec, err := decodePayload(payload)
	if err != nil {
		return Record{}, off, err
	}
	return rec, off + frameHeaderLen + int(n), nil
}

// decodePayload parses a checksum-verified payload. Structural errors are
// still ErrCorrupt: the checksum matched, but the bytes are not a record we
// ever wrote.
func decodePayload(payload []byte) (Record, error) {
	corrupt := func(format string, args ...any) (Record, error) {
		return Record{}, fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
	if len(payload) == 0 {
		return corrupt("empty payload")
	}
	rec := Record{Kind: Kind(payload[0])}
	p := payload[1:]
	gen, used := binary.Uvarint(p)
	if used <= 0 {
		return corrupt("bad generation varint")
	}
	rec.Gen = gen
	p = p[used:]
	count, used := binary.Uvarint(p)
	if used <= 0 {
		return corrupt("bad item count varint")
	}
	p = p[used:]
	if count > uint64(len(p)) {
		return corrupt("item count %d exceeds payload", count)
	}
	items := make([][]byte, 0, count)
	for i := uint64(0); i < count; i++ {
		n, used := binary.Uvarint(p)
		if used <= 0 {
			return corrupt("bad item length varint (item %d)", i)
		}
		p = p[used:]
		if n > uint64(len(p)) {
			return corrupt("item %d claims %d bytes, %d remain", i, n, len(p))
		}
		items = append(items, p[:n])
		p = p[n:]
	}
	if len(p) != 0 {
		return corrupt("%d stray bytes after last item", len(p))
	}
	switch rec.Kind {
	case KindAdd, KindRemove, KindReplace, KindClear:
		if rec.Kind == KindReplace && len(items) != 2 {
			return corrupt("replace record has %d items, want 2", len(items))
		}
		rec.Triples = make([]rdf.Triple, 0, len(items))
		for i, it := range items {
			t, err := parseTripleLine(string(it))
			if err != nil {
				return corrupt("item %d: %v", i, err)
			}
			rec.Triples = append(rec.Triples, t)
		}
	case KindAudit:
		if len(items) != 1 {
			return corrupt("audit record has %d items, want 1", len(items))
		}
		rec.Data = append([]byte(nil), items[0]...)
	case KindBatch:
		if len(items) == 0 {
			return corrupt("batch record has no sub-ops")
		}
		rec.Ops = make([]SubOp, 0, len(items))
		for i, it := range items {
			sub, err := decodeSubOp(it)
			if err != nil {
				return corrupt("batch sub-op %d: %v", i, err)
			}
			rec.Ops = append(rec.Ops, sub)
		}
	default:
		return corrupt("unknown record kind %d", uint8(rec.Kind))
	}
	return rec, nil
}

// encodeSubOp renders one KindBatch item: sub-op kind (1 byte), triple count
// (uvarint), then length-prefixed N-Triples statements.
func encodeSubOp(sub SubOp) ([]byte, error) {
	switch sub.Kind {
	case KindAdd, KindRemove, KindClear:
	case KindReplace:
		if len(sub.Triples) != 2 {
			return nil, fmt.Errorf("replace sub-op needs [old, new], got %d triples", len(sub.Triples))
		}
	default:
		return nil, fmt.Errorf("kind %s cannot appear in a batch", sub.Kind)
	}
	blob := make([]byte, 0, 64)
	blob = append(blob, byte(sub.Kind))
	blob = binary.AppendUvarint(blob, uint64(len(sub.Triples)))
	for _, t := range sub.Triples {
		line := t.String()
		blob = binary.AppendUvarint(blob, uint64(len(line)))
		blob = append(blob, line...)
	}
	return blob, nil
}

func decodeSubOp(blob []byte) (SubOp, error) {
	if len(blob) == 0 {
		return SubOp{}, fmt.Errorf("empty sub-op")
	}
	sub := SubOp{Kind: Kind(blob[0])}
	switch sub.Kind {
	case KindAdd, KindRemove, KindReplace, KindClear:
	default:
		return SubOp{}, fmt.Errorf("kind %d cannot appear in a batch", uint8(sub.Kind))
	}
	p := blob[1:]
	count, used := binary.Uvarint(p)
	if used <= 0 {
		return SubOp{}, fmt.Errorf("bad triple count varint")
	}
	p = p[used:]
	if count > uint64(len(p)) {
		return SubOp{}, fmt.Errorf("triple count %d exceeds sub-op bytes", count)
	}
	if sub.Kind == KindReplace && count != 2 {
		return SubOp{}, fmt.Errorf("replace sub-op has %d triples, want 2", count)
	}
	sub.Triples = make([]rdf.Triple, 0, count)
	for i := uint64(0); i < count; i++ {
		n, used := binary.Uvarint(p)
		if used <= 0 {
			return SubOp{}, fmt.Errorf("bad triple length varint (triple %d)", i)
		}
		p = p[used:]
		if n > uint64(len(p)) {
			return SubOp{}, fmt.Errorf("triple %d claims %d bytes, %d remain", i, n, len(p))
		}
		t, err := parseTripleLine(string(p[:n]))
		if err != nil {
			return SubOp{}, fmt.Errorf("triple %d: %v", i, err)
		}
		sub.Triples = append(sub.Triples, t)
		p = p[n:]
	}
	if len(p) != 0 {
		return SubOp{}, fmt.Errorf("%d stray bytes after last triple", len(p))
	}
	return sub, nil
}

// parseTripleLine parses exactly one N-Triples statement.
func parseTripleLine(line string) (rdf.Triple, error) {
	r := ntriples.NewReader(strings.NewReader(line))
	t, err := r.Read()
	if err != nil {
		return rdf.Triple{}, err
	}
	if _, err := r.Read(); err != io.EOF {
		return rdf.Triple{}, fmt.Errorf("more than one statement in record item")
	}
	return t, nil
}
