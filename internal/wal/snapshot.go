package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/rdf"
)

// File layout inside the data directory:
//
//	wal-<seq>.log    append-only record segments, seq ascending
//	snap-<seq>.snap  full-state snapshots; snap-N covers segments 1..N
//
// A snapshot is written only after the log has rotated past its sequence
// number, so replaying segment N+1 over snap-N is always safe: records the
// snapshot already includes replay idempotently.

const (
	segmentPrefix  = "wal-"
	segmentSuffix  = ".log"
	snapshotPrefix = "snap-"
	snapshotSuffix = ".snap"
	tmpSuffix      = ".tmp"
)

// snapMagic heads every snapshot file; bump the trailing digit on format
// changes.
var snapMagic = []byte("GRDFSNAP1\n")

func segmentName(seq uint64) string {
	return fmt.Sprintf("%s%016d%s", segmentPrefix, seq, segmentSuffix)
}
func snapshotName(seq uint64) string {
	return fmt.Sprintf("%s%016d%s", snapshotPrefix, seq, snapshotSuffix)
}

// parseSeq extracts the sequence number from a segment or snapshot name.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	seq, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// dirState lists the segments and snapshots present in dir, ascending.
type dirState struct {
	segments  []uint64
	snapshots []uint64
}

func listDir(fsys FS, dir string) (dirState, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return dirState{}, err
	}
	var st dirState
	for _, e := range entries {
		if e.IsDir() || strings.HasSuffix(e.Name(), tmpSuffix) {
			continue
		}
		if seq, ok := parseSeq(e.Name(), segmentPrefix, segmentSuffix); ok {
			st.segments = append(st.segments, seq)
		} else if seq, ok := parseSeq(e.Name(), snapshotPrefix, snapshotSuffix); ok {
			st.snapshots = append(st.snapshots, seq)
		}
	}
	sort.Slice(st.segments, func(i, j int) bool { return st.segments[i] < st.segments[j] })
	sort.Slice(st.snapshots, func(i, j int) bool { return st.snapshots[i] < st.snapshots[j] })
	return st, nil
}

// EncodeSnapshotBytes renders the self-verifying snapshot representation:
// magic, uvarint generation, uvarint triple count, length-prefixed
// N-Triples lines, CRC32C footer. The same bytes serve as the on-disk
// snapshot file and the /v1/wal/snapshot transfer body, so a bootstrap
// transfer corrupted in transit fails the identical integrity checks a
// damaged file would at recovery.
func EncodeSnapshotBytes(gen uint64, triples []rdf.Triple) []byte {
	var body bytes.Buffer
	body.Write(snapMagic)
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		body.Write(scratch[:binary.PutUvarint(scratch[:], v)])
	}
	putUvarint(gen)
	putUvarint(uint64(len(triples)))
	for _, t := range triples {
		line := t.String()
		putUvarint(uint64(len(line)))
		body.WriteString(line)
	}
	var footer [4]byte
	binary.LittleEndian.PutUint32(footer[:], crc32.Checksum(body.Bytes(), castagnoli))
	body.Write(footer[:])
	return body.Bytes()
}

// DecodeSnapshotBytes verifies and parses an EncodeSnapshotBytes blob.
// Any integrity violation wraps ErrCorrupt.
func DecodeSnapshotBytes(buf []byte) (gen uint64, triples []rdf.Triple, err error) {
	corrupt := func(format string, args ...any) (uint64, []rdf.Triple, error) {
		return 0, nil, fmt.Errorf("%w: snapshot: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
	if len(buf) < len(snapMagic)+4 {
		return corrupt("body of %d bytes is too short", len(buf))
	}
	if !bytes.Equal(buf[:len(snapMagic)], snapMagic) {
		return corrupt("bad magic")
	}
	body, footer := buf[:len(buf)-4], buf[len(buf)-4:]
	if got := crc32.Checksum(body, castagnoli); got != binary.LittleEndian.Uint32(footer) {
		return corrupt("footer checksum mismatch (stored %08x, computed %08x)",
			binary.LittleEndian.Uint32(footer), got)
	}
	p := body[len(snapMagic):]
	gen, used := binary.Uvarint(p)
	if used <= 0 {
		return corrupt("bad generation varint")
	}
	p = p[used:]
	count, used := binary.Uvarint(p)
	if used <= 0 {
		return corrupt("bad triple count varint")
	}
	p = p[used:]
	if count > uint64(len(p)) {
		return corrupt("triple count %d exceeds body", count)
	}
	triples = make([]rdf.Triple, 0, count)
	for i := uint64(0); i < count; i++ {
		n, used := binary.Uvarint(p)
		if used <= 0 {
			return corrupt("bad line length varint (triple %d)", i)
		}
		p = p[used:]
		if n > uint64(len(p)) {
			return corrupt("triple %d claims %d bytes, %d remain", i, n, len(p))
		}
		t, err := parseTripleLine(string(p[:n]))
		if err != nil {
			return corrupt("triple %d: %v", i, err)
		}
		triples = append(triples, t)
		p = p[n:]
	}
	if len(p) != 0 {
		return corrupt("%d stray bytes after last triple", len(p))
	}
	return gen, triples, nil
}

// writeSnapshot persists the full triple set atomically: temp file, fsync,
// rename into place, parent-directory fsync. The file ends with a CRC32C
// footer over everything before it, so a half-written or bit-flipped
// snapshot is detected at load time. Returns the snapshot's byte size.
func writeSnapshot(fsys FS, dir string, seq, gen uint64, triples []rdf.Triple) (int64, error) {
	body := bytes.NewBuffer(EncodeSnapshotBytes(gen, triples))

	final := filepath.Join(dir, snapshotName(seq))
	tmp := final + tmpSuffix
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, fmt.Errorf("wal: snapshot temp: %w", err)
	}
	if _, err := f.Write(body.Bytes()); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return 0, fmt.Errorf("wal: snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return 0, fmt.Errorf("wal: snapshot fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return 0, fmt.Errorf("wal: snapshot close: %w", err)
	}
	if err := fsys.Rename(tmp, final); err != nil {
		fsys.Remove(tmp)
		return 0, fmt.Errorf("wal: snapshot rename: %w", err)
	}
	if err := syncDir(fsys, dir); err != nil {
		return 0, fmt.Errorf("wal: snapshot dir sync: %w", err)
	}
	return int64(body.Len()), nil
}

// loadSnapshot reads and verifies snap-<seq>. Any integrity violation
// returns an error wrapping ErrCorrupt; callers may fall back to an older
// snapshot (the GC retains one predecessor for exactly that reason).
func loadSnapshot(fsys FS, dir string, seq uint64) (gen uint64, triples []rdf.Triple, err error) {
	buf, err := readAll(fsys, filepath.Join(dir, snapshotName(seq)))
	if err != nil {
		return 0, nil, err
	}
	gen, triples, err = DecodeSnapshotBytes(buf)
	if err != nil {
		return 0, nil, fmt.Errorf("snapshot %d: %w", seq, err)
	}
	return gen, triples, nil
}

// segmentSize stats one segment; 0 when it cannot be statted.
func segmentSize(fsys FS, dir string, seq uint64) int64 {
	fi, err := fsys.Stat(filepath.Join(dir, segmentName(seq)))
	if err != nil {
		return 0
	}
	return fi.Size()
}
