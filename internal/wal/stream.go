package wal

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
)

// Replication support: the repository numbers every appended record with a
// process-lifetime sequence number so a follower can stream the log tail
// over HTTP (`/v1/wal/stream?from=seq`) and resume exactly where it left
// off. Sequence numbers are an incarnation-local coordinate system — they
// are rebuilt at recovery from the live segment files and are NOT stable
// across leader restarts. That is deliberate: a follower detects a leader
// restart through epoch fencing (see internal/repl) and re-bootstraps from
// a snapshot rather than trusting seq continuity across incarnations.

// ErrCompacted reports that the requested records have been garbage-
// collected into a snapshot: the caller must bootstrap from a snapshot
// instead of streaming.
var ErrCompacted = errors.New("wal: requested records compacted into a snapshot")

// indexSegments walks every live segment ascending and assigns each its
// first record sequence number, establishing the streamable window. Called
// once at the end of recovery, before the repository serves appends.
//
// A segment that does not frame-walk cleanly (historical damage covered by
// a snapshot) is excluded along with everything before it: sequence
// numbers must be contiguous within the window, and an unreadable segment
// breaks the chain. Such segments are still GC-eligible under the normal
// snapshot rule.
func (r *Repository) indexSegments() error {
	dirSt, err := listDir(r.fsys, r.dir)
	if err != nil {
		return fmt.Errorf("wal: index segments: %w", err)
	}
	starts := make(map[uint64]uint64, len(dirSt.segments))
	cursor := uint64(1)
	for _, seq := range dirSt.segments {
		n, err := r.countSegmentRecords(seq)
		if err != nil {
			// Restart the streamable window after the damaged segment.
			r.logger.Warn("wal: segment not streamable; excluded from replication window",
				"segment", seq, "err", err)
			starts = make(map[uint64]uint64)
			continue
		}
		starts[seq] = cursor
		cursor += uint64(n)
	}
	r.mu.Lock()
	r.segStarts = starts
	r.headSeq = cursor - 1
	r.minSeq = r.minSeqLocked()
	r.mu.Unlock()
	return nil
}

// countSegmentRecords frame-walks one segment, verifying CRCs but not
// parsing payloads, and returns the record count.
func (r *Repository) countSegmentRecords(seq uint64) (int, error) {
	buf, err := readAll(r.fsys, filepath.Join(r.dir, segmentName(seq)))
	if err != nil {
		return 0, err
	}
	n, off := 0, 0
	for off < len(buf) {
		_, next, err := frameAt(buf, off)
		if err != nil {
			return 0, err
		}
		n++
		off = next
	}
	return n, nil
}

// minSeqLocked computes the oldest streamable sequence number. Caller
// holds r.mu. With an empty window nothing before headSeq+1 is streamable.
func (r *Repository) minSeqLocked() uint64 {
	min := uint64(0)
	for _, start := range r.segStarts {
		if min == 0 || start < min {
			min = start
		}
	}
	if min == 0 {
		return r.headSeq + 1
	}
	return min
}

// HeadSeq returns the sequence number of the most recently appended record
// (0 before the first append of this incarnation).
func (r *Repository) HeadSeq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.headSeq
}

// MinSeq returns the oldest record sequence still streamable from disk.
// A stream request below it must fall back to a snapshot (ErrCompacted).
func (r *Repository) MinSeq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.minSeq
}

// SetRetainSeq installs the GC retention floor: no segment holding records
// at or after seq is deleted, however many snapshots have superseded it.
// The replication leader plumbs the slowest active follower's acknowledged
// position (or the -wal-retain-min-seq override) through here so a
// follower mid-stream never finds its next record compacted away. Zero
// clears the floor.
func (r *Repository) SetRetainSeq(seq uint64) {
	r.mu.Lock()
	r.retainSeq = seq
	r.mu.Unlock()
}

// RetainSeq reports the current GC retention floor (0 = none).
func (r *Repository) RetainSeq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.retainSeq
}

// Watch returns a channel closed at the next record append — the long-poll
// primitive behind /v1/wal/stream. Each append replaces the channel, so a
// caller re-arms by calling Watch again after the close.
func (r *Repository) Watch() <-chan struct{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.watch
}

// ReadRecords returns raw frames for records [from, from+len(frames)) in
// order, accumulating whole frames until maxBytes is reached (always at
// least one when any record is available). An empty result means from is
// past the head: the caller should long-poll on Watch. from below MinSeq —
// or a segment deleted by a concurrent GC — reports ErrCompacted.
//
// Frames are returned exactly as they sit on disk (length + CRC32C header
// included), so the receiver re-verifies integrity with the same decoder
// recovery uses; the sender never parses payloads.
func (r *Repository) ReadRecords(from uint64, maxBytes int) ([][]byte, error) {
	if from == 0 {
		return nil, fmt.Errorf("wal: record sequences start at 1")
	}
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	r.mu.Lock()
	head := r.headSeq
	min := r.minSeq
	starts := make(map[uint64]uint64, len(r.segStarts))
	for seg, start := range r.segStarts {
		starts[seg] = start
	}
	r.mu.Unlock()
	if from < min {
		return nil, fmt.Errorf("%w: seq %d < min retained %d", ErrCompacted, from, min)
	}
	if from > head {
		return nil, nil
	}

	segs := make([]uint64, 0, len(starts))
	for seg := range starts {
		segs = append(segs, seg)
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	// Locate the segment whose range contains from.
	idx := 0
	for i, seg := range segs {
		if starts[seg] <= from {
			idx = i
		}
	}

	var frames [][]byte
	total := 0
	next := from
	for _, seg := range segs[idx:] {
		buf, err := readAll(r.fsys, filepath.Join(r.dir, segmentName(seg)))
		if err != nil {
			// GC raced the read and deleted the segment under us.
			return nil, fmt.Errorf("%w: segment %d unreadable: %v", ErrCompacted, seg, err)
		}
		seq := starts[seg]
		off := 0
		for off < len(buf) && next <= head {
			frame, nextOff, err := frameAt(buf, off)
			if err != nil {
				if seq > head {
					// A torn tail from an append in flight: everything at or
					// below head was complete when we captured it, so this
					// frame is beyond the window we promised.
					break
				}
				return nil, fmt.Errorf("wal: segment %d, offset %d: %w", seg, off, err)
			}
			if seq >= from {
				if total > 0 && total+len(frame) > maxBytes {
					return frames, nil
				}
				frames = append(frames, frame)
				total += len(frame)
				next = seq + 1
			}
			seq++
			off = nextOff
		}
		if next > head {
			break
		}
	}
	return frames, nil
}
