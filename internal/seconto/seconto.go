// Package seconto implements the security ontology of Section 7 of the
// paper: Subjects (roles), Policies with Actions, Conditions, Resources and
// PolicyDecisions, including the property-access conditions that give GRDF
// its fine-grained (sub-object) access control — the capability the paper
// contrasts with GeoXACML's object-level grants. Policies are plain RDF
// (List 8) and round-trip through the same stores and serializers as the
// data they protect; that is what lets one security framework keep working
// when data models change or sources are aggregated.
package seconto

import (
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/rdf"
	"repro/internal/store"
)

// NS is the security ontology namespace.
const NS = rdf.SecOntoNS

// Classes.
const (
	Subject        rdf.IRI = NS + "Subject"
	Policy         rdf.IRI = NS + "Policy"
	Action         rdf.IRI = NS + "Action"
	Condition      rdf.IRI = NS + "Condition"
	ConditionValue rdf.IRI = NS + "ConditionValue"
	PolicyDecision rdf.IRI = NS + "PolicyDecision"
	Resource       rdf.IRI = NS + "Resource"
)

// Properties.
const (
	HasPolicy         rdf.IRI = NS + "hasPolicy"
	HasAction         rdf.IRI = NS + "hasAction"
	HasCondition      rdf.IRI = NS + "hasCondition"
	HasPolicyDecision rdf.IRI = NS + "hasPolicyDecision"
	HasResource       rdf.IRI = NS + "hasResource"
	CondValDefinition rdf.IRI = NS + "condValDefinition"
	HasPropertyAccess rdf.IRI = NS + "hasPropertyAccess"
	HasSpatialScope   rdf.IRI = NS + "hasSpatialScope"
	HasPriority       rdf.IRI = NS + "hasPriority"
)

// Individuals: actions and decisions.
const (
	ActionView   rdf.IRI = NS + "View"
	ActionModify rdf.IRI = NS + "Modify"
	ActionDelete rdf.IRI = NS + "Delete"
	Permit       rdf.IRI = NS + "Permit"
	Deny         rdf.IRI = NS + "Deny"
)

// Ontology builds the security ontology graph (classes, properties, the
// built-in action and decision individuals).
func Ontology() *rdf.Graph {
	g := rdf.NewGraph()
	for _, c := range []rdf.IRI{Subject, Policy, Action, Condition, ConditionValue, PolicyDecision, Resource} {
		g.Add(rdf.T(c, rdf.RDFType, rdf.OWLClass))
	}
	g.Add(rdf.T(ConditionValue, rdf.RDFSSubClassOf, Condition))
	props := []struct {
		p, dom, rng rdf.IRI
	}{
		{HasPolicy, Subject, Policy},
		{HasAction, Policy, Action},
		{HasCondition, Policy, Condition},
		{HasPolicyDecision, Policy, PolicyDecision},
		{HasResource, Policy, ""},
		{CondValDefinition, ConditionValue, ""},
		{HasPropertyAccess, "", ""},
		{HasSpatialScope, Condition, ""},
	}
	for _, pr := range props {
		g.Add(rdf.T(pr.p, rdf.RDFType, rdf.OWLObjectProperty))
		if pr.dom != "" {
			g.Add(rdf.T(pr.p, rdf.RDFSDomain, pr.dom))
		}
		if pr.rng != "" {
			g.Add(rdf.T(pr.p, rdf.RDFSRange, pr.rng))
		}
	}
	g.Add(rdf.T(HasPriority, rdf.RDFType, rdf.OWLDatatypeProperty))
	g.Add(rdf.T(HasPriority, rdf.RDFSRange, rdf.XSDInteger))
	for _, a := range []rdf.IRI{ActionView, ActionModify, ActionDelete} {
		g.Add(rdf.T(a, rdf.RDFType, Action))
	}
	for _, d := range []rdf.IRI{Permit, Deny} {
		g.Add(rdf.T(d, rdf.RDFType, PolicyDecision))
	}
	return g
}

// Rule is the in-memory form of one policy.
type Rule struct {
	// ID is the policy IRI.
	ID rdf.IRI
	// Subject is the role/subject the policy applies to.
	Subject rdf.IRI
	// Action is the governed action (View, Modify, Delete).
	Action rdf.IRI
	// Resource is a class or individual the policy covers.
	Resource rdf.IRI
	// Permit is true for Permit decisions, false for Deny.
	Permit bool
	// Properties restricts a Permit to these properties ("this is a very
	// flexible way to have fine-grained control over resources and allow
	// access to them either fully or partially"). Empty means full access.
	// On a Deny, Properties lists the denied properties (empty = all).
	Properties []rdf.IRI
	// SpatialScope, when non-nil, limits the policy to resources whose
	// geometry lies within the envelope.
	SpatialScope *geom.Envelope
	// Priority breaks ties between conflicting policies; higher wins. The
	// paper notes "if the combination of policies from participating systems
	// is inconsistent, additional rules may be needed to resolve conflicts".
	Priority int
}

// FullAccess reports whether the rule permits every property.
func (r Rule) FullAccess() bool { return r.Permit && len(r.Properties) == 0 }

// Set is an ordered collection of rules.
type Set struct {
	Rules []Rule
}

// ForSubject returns the rules applying to the subject, in priority order
// (highest first, stable otherwise).
func (s *Set) ForSubject(subject rdf.IRI) []Rule {
	var out []Rule
	for _, r := range s.Rules {
		if r.Subject == subject {
			out = append(out, r)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Priority > out[j].Priority })
	return out
}

// Subjects returns the distinct subjects with at least one rule, sorted.
func (s *Set) Subjects() []rdf.IRI {
	seen := map[rdf.IRI]struct{}{}
	var out []rdf.IRI
	for _, r := range s.Rules {
		if _, dup := seen[r.Subject]; !dup {
			seen[r.Subject] = struct{}{}
			out = append(out, r.Subject)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ToGraph serializes the rule set as RDF in the List 8 layout.
func (s *Set) ToGraph() *rdf.Graph {
	g := rdf.NewGraph()
	for _, r := range s.Rules {
		g.Add(rdf.T(r.Subject, rdf.RDFType, Subject))
		g.Add(rdf.T(r.Subject, HasPolicy, r.ID))
		g.Add(rdf.T(r.ID, rdf.RDFType, Policy))
		g.Add(rdf.T(r.ID, HasAction, r.Action))
		g.Add(rdf.T(r.ID, HasResource, r.Resource))
		if r.Permit {
			g.Add(rdf.T(r.ID, HasPolicyDecision, Permit))
		} else {
			g.Add(rdf.T(r.ID, HasPolicyDecision, Deny))
		}
		if r.Priority != 0 {
			g.Add(rdf.T(r.ID, HasPriority, rdf.NewInteger(int64(r.Priority))))
		}
		if len(r.Properties) > 0 || r.SpatialScope != nil {
			cond := rdf.IRI(string(r.ID) + "/cond")
			g.Add(rdf.T(r.ID, HasCondition, cond))
			g.Add(rdf.T(cond, rdf.RDFType, ConditionValue))
			def := rdf.IRI(string(r.ID) + "/cond/def")
			g.Add(rdf.T(cond, CondValDefinition, def))
			for _, p := range r.Properties {
				g.Add(rdf.T(def, HasPropertyAccess, p))
			}
			if r.SpatialScope != nil {
				scope := rdf.IRI(string(r.ID) + "/cond/scope")
				g.Add(rdf.T(def, HasSpatialScope, scope))
				ll, ur := r.SpatialScope.Corners()
				g.Add(rdf.T(scope, rdf.RDFType, rdf.IRI(rdf.GRDFNS+"Envelope")))
				g.Add(rdf.T(scope, rdf.IRI(rdf.GRDFNS+"lowerCorner"),
					rdf.NewString(geom.FormatCoordinates([]geom.Coord{ll}))))
				g.Add(rdf.T(scope, rdf.IRI(rdf.GRDFNS+"upperCorner"),
					rdf.NewString(geom.FormatCoordinates([]geom.Coord{ur}))))
			}
		}
	}
	return g
}

// Parse extracts the rule set from an RDF store laid out as in List 8.
func Parse(st *store.Store) (*Set, error) {
	set := &Set{}
	seenPolicy := map[rdf.IRI]bool{}
	var links []rdf.Triple
	st.ForEachMatch(nil, HasPolicy, nil, func(t rdf.Triple) bool {
		links = append(links, t)
		return true
	})
	sort.Slice(links, func(i, j int) bool {
		if links[i].Subject.String() != links[j].Subject.String() {
			return links[i].Subject.String() < links[j].Subject.String()
		}
		return links[i].Object.String() < links[j].Object.String()
	})
	for _, link := range links {
		subj, ok := link.Subject.(rdf.IRI)
		if !ok {
			continue
		}
		pol, ok := link.Object.(rdf.IRI)
		if !ok {
			return nil, fmt.Errorf("seconto: policy of %s is not an IRI", subj)
		}
		if seenPolicy[pol] {
			continue
		}
		seenPolicy[pol] = true
		rule, err := parsePolicy(st, subj, pol)
		if err != nil {
			return nil, err
		}
		set.Rules = append(set.Rules, rule)
	}
	return set, nil
}

func parsePolicy(st *store.Store, subj, pol rdf.IRI) (Rule, error) {
	r := Rule{ID: pol, Subject: subj}
	if a, ok := st.FirstObject(pol, HasAction); ok {
		if iri, ok := a.(rdf.IRI); ok {
			r.Action = iri
		}
	}
	if r.Action == "" {
		return r, fmt.Errorf("seconto: policy %s has no action", pol)
	}
	if res, ok := st.FirstObject(pol, HasResource); ok {
		if iri, ok := res.(rdf.IRI); ok {
			r.Resource = iri
		}
	}
	if r.Resource == "" {
		return r, fmt.Errorf("seconto: policy %s has no resource", pol)
	}
	dec, ok := st.FirstObject(pol, HasPolicyDecision)
	if !ok {
		return r, fmt.Errorf("seconto: policy %s has no decision", pol)
	}
	switch {
	case dec.Equal(Permit):
		r.Permit = true
	case dec.Equal(Deny):
		r.Permit = false
	default:
		return r, fmt.Errorf("seconto: policy %s has unknown decision %s", pol, dec)
	}
	if p, ok := st.FirstObject(pol, HasPriority); ok {
		if lit, ok := p.(rdf.Literal); ok {
			if n, err := lit.Int(); err == nil {
				r.Priority = int(n)
			}
		}
	}
	// Conditions: property access lists and spatial scope.
	for _, cond := range st.Objects(pol, HasCondition) {
		defs := st.Objects(cond, CondValDefinition)
		// allow the definition to live directly on the condition node too
		defs = append(defs, cond)
		for _, def := range defs {
			for _, p := range st.Objects(def, HasPropertyAccess) {
				if iri, ok := p.(rdf.IRI); ok {
					r.Properties = append(r.Properties, iri)
				}
			}
			for _, sc := range st.Objects(def, HasSpatialScope) {
				env, err := parseEnvelope(st, sc)
				if err != nil {
					return r, fmt.Errorf("seconto: policy %s: %w", pol, err)
				}
				r.SpatialScope = &env
			}
		}
	}
	sort.Slice(r.Properties, func(i, j int) bool { return r.Properties[i] < r.Properties[j] })
	return r, nil
}

func parseEnvelope(st *store.Store, node rdf.Term) (geom.Envelope, error) {
	lo, okL := st.FirstObject(node, rdf.IRI(rdf.GRDFNS+"lowerCorner"))
	hi, okU := st.FirstObject(node, rdf.IRI(rdf.GRDFNS+"upperCorner"))
	if !okL || !okU {
		return geom.Envelope{}, fmt.Errorf("spatial scope %s missing corners", node)
	}
	loLit, okL := lo.(rdf.Literal)
	hiLit, okU := hi.(rdf.Literal)
	if !okL || !okU {
		return geom.Envelope{}, fmt.Errorf("spatial scope %s corners not literals", node)
	}
	lc, err := geom.ParseCoordinates(loLit.Value)
	if err != nil {
		return geom.Envelope{}, err
	}
	uc, err := geom.ParseCoordinates(hiLit.Value)
	if err != nil {
		return geom.Envelope{}, err
	}
	return geom.EnvelopeOf(lc[0], uc[0]), nil
}
