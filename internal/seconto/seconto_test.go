package seconto

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/rdf"
	"repro/internal/rdfxml"
	"repro/internal/store"
)

func mainRepRule() Rule {
	return Rule{
		ID:         rdf.IRI(NS + "MainRepPolicy1"),
		Subject:    rdf.IRI(NS + "MainRep"),
		Action:     ActionView,
		Resource:   rdf.IRI(rdf.AppNS + "ChemSite"),
		Permit:     true,
		Properties: []rdf.IRI{rdf.IRI(rdf.GRDFNS + "boundedBy")},
	}
}

func TestOntologyShape(t *testing.T) {
	g := Ontology()
	if !g.Has(rdf.T(Policy, rdf.RDFType, rdf.OWLClass)) {
		t.Error("Policy class missing")
	}
	if !g.Has(rdf.T(Permit, rdf.RDFType, PolicyDecision)) {
		t.Error("Permit individual missing")
	}
	if !g.Has(rdf.T(HasPolicy, rdf.RDFSDomain, Subject)) {
		t.Error("hasPolicy domain missing")
	}
}

func TestRoundTripRuleSet(t *testing.T) {
	scope := geom.EnvelopeOf(geom.Coord{X: 0, Y: 0}, geom.Coord{X: 100, Y: 100})
	in := &Set{Rules: []Rule{
		mainRepRule(),
		{
			ID:       rdf.IRI(NS + "HazmatPolicy1"),
			Subject:  rdf.IRI(NS + "Hazmat"),
			Action:   ActionView,
			Resource: rdf.IRI(rdf.AppNS + "ChemSite"),
			Permit:   true,
			Properties: []rdf.IRI{
				rdf.IRI(rdf.GRDFNS + "boundedBy"),
				rdf.IRI(rdf.AppNS + "hasChemName"),
			},
			SpatialScope: &scope,
			Priority:     5,
		},
		{
			ID:       rdf.IRI(NS + "PublicDeny"),
			Subject:  rdf.IRI(NS + "Public"),
			Action:   ActionView,
			Resource: rdf.IRI(rdf.AppNS + "ChemSite"),
			Permit:   false,
		},
	}}
	st := store.FromGraph(in.ToGraph())
	out, err := Parse(st)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(out.Rules) != 3 {
		t.Fatalf("rules = %d", len(out.Rules))
	}
	byID := map[rdf.IRI]Rule{}
	for _, r := range out.Rules {
		byID[r.ID] = r
	}
	mr := byID[rdf.IRI(NS+"MainRepPolicy1")]
	if !mr.Permit || len(mr.Properties) != 1 || mr.Properties[0] != rdf.IRI(rdf.GRDFNS+"boundedBy") {
		t.Errorf("MainRep rule = %+v", mr)
	}
	if mr.FullAccess() {
		t.Error("property-restricted rule reported full access")
	}
	hz := byID[rdf.IRI(NS+"HazmatPolicy1")]
	if hz.Priority != 5 || hz.SpatialScope == nil || hz.SpatialScope.MaxX != 100 {
		t.Errorf("Hazmat rule = %+v", hz)
	}
	if len(hz.Properties) != 2 {
		t.Errorf("Hazmat properties = %v", hz.Properties)
	}
	pd := byID[rdf.IRI(NS+"PublicDeny")]
	if pd.Permit || pd.FullAccess() {
		t.Errorf("PublicDeny rule = %+v", pd)
	}
}

func TestForSubjectPriorityOrder(t *testing.T) {
	s := &Set{Rules: []Rule{
		{ID: "p1", Subject: rdf.IRI(NS + "R"), Action: ActionView, Resource: "r", Permit: true, Priority: 1},
		{ID: "p2", Subject: rdf.IRI(NS + "R"), Action: ActionView, Resource: "r", Permit: false, Priority: 9},
		{ID: "p3", Subject: rdf.IRI(NS + "Other"), Action: ActionView, Resource: "r", Permit: true},
	}}
	got := s.ForSubject(rdf.IRI(NS + "R"))
	if len(got) != 2 || got[0].ID != "p2" {
		t.Errorf("ForSubject = %+v", got)
	}
	if subs := s.Subjects(); len(subs) != 2 {
		t.Errorf("Subjects = %v", subs)
	}
}

func TestParseList8XML(t *testing.T) {
	// The paper's List 8 as corrected RDF/XML.
	doc := `<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
         xmlns:seconto="http://grdf.org/ontology/seconto#">
  <seconto:Subject rdf:about="http://grdf.org/ontology/seconto#MainRep">
    <seconto:hasPolicy rdf:resource="http://grdf.org/ontology/seconto#MainRepPolicy1"/>
  </seconto:Subject>
  <seconto:Policy rdf:about="http://grdf.org/ontology/seconto#MainRepPolicy1">
    <seconto:hasAction rdf:resource="http://grdf.org/ontology/seconto#View"/>
    <seconto:hasCondition rdf:resource="http://grdf.org/ontology/seconto#CondSites"/>
    <seconto:hasPolicyDecision rdf:resource="http://grdf.org/ontology/seconto#Permit"/>
    <seconto:hasResource rdf:resource="http://grdf.org/app#ChemSite"/>
  </seconto:Policy>
  <seconto:ConditionValue rdf:about="http://grdf.org/ontology/seconto#CondSites">
    <seconto:condValDefinition rdf:parseType="Resource">
      <seconto:hasPropertyAccess rdf:resource="http://grdf.org/ontology/grdf#boundedBy"/>
    </seconto:condValDefinition>
  </seconto:ConditionValue>
</rdf:RDF>`
	g, err := rdfxml.ParseString(doc)
	if err != nil {
		t.Fatalf("rdfxml: %v", err)
	}
	set, err := Parse(store.FromGraph(g))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(set.Rules) != 1 {
		t.Fatalf("rules = %d", len(set.Rules))
	}
	r := set.Rules[0]
	want := mainRepRule()
	if r.Subject != want.Subject || r.Action != want.Action ||
		r.Resource != want.Resource || !r.Permit {
		t.Errorf("rule = %+v", r)
	}
	if len(r.Properties) != 1 || r.Properties[0] != rdf.IRI(rdf.GRDFNS+"boundedBy") {
		t.Errorf("properties = %v", r.Properties)
	}
}

func TestParseMalformedPolicies(t *testing.T) {
	mk := func(mutilate func(*Set)) *store.Store {
		s := &Set{Rules: []Rule{mainRepRule()}}
		mutilate(s)
		return store.FromGraph(s.ToGraph())
	}
	// missing action
	st := mk(func(s *Set) {})
	st.RemoveMatching(nil, HasAction, nil)
	if _, err := Parse(st); err == nil {
		t.Error("policy without action parsed")
	}
	st = mk(func(s *Set) {})
	st.RemoveMatching(nil, HasPolicyDecision, nil)
	if _, err := Parse(st); err == nil {
		t.Error("policy without decision parsed")
	}
	st = mk(func(s *Set) {})
	st.RemoveMatching(nil, HasResource, nil)
	if _, err := Parse(st); err == nil {
		t.Error("policy without resource parsed")
	}
}

func TestDetectConflicts(t *testing.T) {
	role := rdf.IRI(NS + "R")
	res := rdf.IRI(rdf.AppNS + "ChemSite")
	p := rdf.IRI(rdf.AppNS + "hasSiteName")
	q := rdf.IRI(rdf.AppNS + "hasChemCode")

	cases := []struct {
		name  string
		rules []Rule
		want  int
	}{
		{"full permit vs full deny", []Rule{
			{ID: "p1", Subject: role, Action: ActionView, Resource: res, Permit: true},
			{ID: "d1", Subject: role, Action: ActionView, Resource: res, Permit: false},
		}, 1},
		{"partial scopes overlapping", []Rule{
			{ID: "p1", Subject: role, Action: ActionView, Resource: res, Permit: true, Properties: []rdf.IRI{p, q}},
			{ID: "d1", Subject: role, Action: ActionView, Resource: res, Permit: false, Properties: []rdf.IRI{q}},
		}, 1},
		{"disjoint property scopes", []Rule{
			{ID: "p1", Subject: role, Action: ActionView, Resource: res, Permit: true, Properties: []rdf.IRI{p}},
			{ID: "d1", Subject: role, Action: ActionView, Resource: res, Permit: false, Properties: []rdf.IRI{q}},
		}, 0},
		{"different priorities already resolved", []Rule{
			{ID: "p1", Subject: role, Action: ActionView, Resource: res, Permit: true, Priority: 2},
			{ID: "d1", Subject: role, Action: ActionView, Resource: res, Permit: false, Priority: 1},
		}, 0},
		{"different subjects", []Rule{
			{ID: "p1", Subject: role, Action: ActionView, Resource: res, Permit: true},
			{ID: "d1", Subject: rdf.IRI(NS + "Other"), Action: ActionView, Resource: res, Permit: false},
		}, 0},
		{"different actions", []Rule{
			{ID: "p1", Subject: role, Action: ActionView, Resource: res, Permit: true},
			{ID: "d1", Subject: role, Action: ActionModify, Resource: res, Permit: false},
		}, 0},
	}
	for _, c := range cases {
		s := &Set{Rules: c.rules}
		got := s.DetectConflicts()
		if len(got) != c.want {
			t.Errorf("%s: conflicts = %d, want %d (%v)", c.name, len(got), c.want, got)
		}
		if c.want > 0 && got[0].String() == "" {
			t.Errorf("%s: empty conflict string", c.name)
		}
	}
}

func TestMergeAndResolve(t *testing.T) {
	role := rdf.IRI(NS + "R")
	res := rdf.IRI(rdf.AppNS + "ChemSite")
	// two "servers" with clashing policies
	serverA := &Set{Rules: []Rule{
		{ID: NS + "aPermit", Subject: role, Action: ActionView, Resource: res, Permit: true},
	}}
	serverB := &Set{Rules: []Rule{
		{ID: NS + "bDeny", Subject: role, Action: ActionView, Resource: res, Permit: false},
	}}
	merged := Merge(serverA, serverB, nil)
	if len(merged.Rules) != 2 {
		t.Fatalf("merged rules = %d", len(merged.Rules))
	}
	conflicts := merged.DetectConflicts()
	if len(conflicts) != 1 {
		t.Fatalf("conflicts = %v", conflicts)
	}

	denyWins := merged.Resolve(DenyWins)
	if len(denyWins.DetectConflicts()) != 0 {
		t.Error("DenyWins left conflicts")
	}
	var deny, permit Rule
	for _, r := range denyWins.Rules {
		if r.Permit {
			permit = r
		} else {
			deny = r
		}
	}
	if deny.Priority <= permit.Priority {
		t.Errorf("DenyWins priorities: deny=%d permit=%d", deny.Priority, permit.Priority)
	}

	permitWins := merged.Resolve(PermitWins)
	if len(permitWins.DetectConflicts()) != 0 {
		t.Error("PermitWins left conflicts")
	}
	for _, r := range permitWins.Rules {
		if r.Permit && r.Priority == 0 {
			t.Error("PermitWins did not raise the permit")
		}
	}
	// original set untouched
	if merged.Rules[0].Priority != 0 || merged.Rules[1].Priority != 0 {
		t.Error("Resolve mutated its input")
	}
}
