package seconto

import (
	"fmt"
	"sort"

	"repro/internal/rdf"
)

// Conflict detection. Section 7: "In the case of multiple geospatial data
// servers, each node may enforce its own set of policies … If the
// combination of policies from participating systems is inconsistent,
// additional rules may be needed to resolve conflicts." Merge combines
// per-server policy sets; DetectConflicts finds the places where the
// combined set is ambiguous (same subject, action and resource, opposite
// decisions, equal priority), and Resolve applies a chosen strategy by
// synthesizing the "additional rules" — priority bumps — that disambiguate.

// Conflict reports one ambiguous policy pair.
type Conflict struct {
	Subject  rdf.IRI
	Action   rdf.IRI
	Resource rdf.IRI
	// Permit and Deny are the clashing policy IDs.
	Permit rdf.IRI
	Deny   rdf.IRI
	// Overlap describes the contested properties: empty means whole-resource.
	Overlap []rdf.IRI
}

func (c Conflict) String() string {
	return fmt.Sprintf("conflict: %s/%s on %s: %s permits what %s denies",
		c.Subject.LocalName(), c.Action.LocalName(), c.Resource.LocalName(),
		c.Permit.LocalName(), c.Deny.LocalName())
}

// Merge concatenates policy sets from multiple servers into one.
func Merge(sets ...*Set) *Set {
	out := &Set{}
	for _, s := range sets {
		if s != nil {
			out.Rules = append(out.Rules, s.Rules...)
		}
	}
	return out
}

// DetectConflicts finds permit/deny pairs with the same subject, action and
// resource at equal priority whose property scopes overlap. (Pairs at
// different priorities are already resolved by the decision engine.)
func (s *Set) DetectConflicts() []Conflict {
	var out []Conflict
	for i, a := range s.Rules {
		if !a.Permit {
			continue
		}
		for j, b := range s.Rules {
			if i == j || b.Permit {
				continue
			}
			if a.Subject != b.Subject || a.Action != b.Action || a.Resource != b.Resource {
				continue
			}
			if a.Priority != b.Priority {
				continue
			}
			overlap, contested := propertyOverlap(a.Properties, b.Properties)
			if !contested {
				continue
			}
			out = append(out, Conflict{
				Subject: a.Subject, Action: a.Action, Resource: a.Resource,
				Permit: a.ID, Deny: b.ID, Overlap: overlap,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Permit != out[j].Permit {
			return out[i].Permit < out[j].Permit
		}
		return out[i].Deny < out[j].Deny
	})
	return out
}

// propertyOverlap reports the contested properties between a permit scope
// and a deny scope. Empty scope = whole resource.
func propertyOverlap(permit, deny []rdf.IRI) (overlap []rdf.IRI, contested bool) {
	switch {
	case len(permit) == 0 && len(deny) == 0:
		return nil, true // full permit vs full deny
	case len(permit) == 0:
		return append([]rdf.IRI(nil), deny...), true // full permit vs partial deny
	case len(deny) == 0:
		return append([]rdf.IRI(nil), permit...), true // partial permit vs full deny
	}
	denySet := map[rdf.IRI]bool{}
	for _, p := range deny {
		denySet[p] = true
	}
	for _, p := range permit {
		if denySet[p] {
			overlap = append(overlap, p)
		}
	}
	sort.Slice(overlap, func(i, j int) bool { return overlap[i] < overlap[j] })
	return overlap, len(overlap) > 0
}

// Strategy selects how Resolve disambiguates conflicts.
type Strategy uint8

const (
	// DenyWins raises each conflicting deny rule above its permit.
	DenyWins Strategy = iota
	// PermitWins raises each conflicting permit rule above its deny.
	PermitWins
)

// Resolve returns a copy of the set with priorities adjusted so that
// DetectConflicts on the result is empty. The input set is unchanged.
func (s *Set) Resolve(strategy Strategy) *Set {
	out := &Set{Rules: append([]Rule(nil), s.Rules...)}
	for {
		conflicts := out.DetectConflicts()
		if len(conflicts) == 0 {
			return out
		}
		for _, c := range conflicts {
			var winner rdf.IRI
			if strategy == DenyWins {
				winner = c.Deny
			} else {
				winner = c.Permit
			}
			for i := range out.Rules {
				if out.Rules[i].ID == winner {
					out.Rules[i].Priority++
				}
			}
		}
	}
}
