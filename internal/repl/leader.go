package repl

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/wal"
)

// LeaderOptions configures NewLeader. Zero values select the defaults
// noted on each field.
type LeaderOptions struct {
	// PollTimeout bounds how long a caught-up stream request parks waiting
	// for the next append before answering 204 (default 10s).
	PollTimeout time.Duration
	// MaxBatchBytes bounds the frame payload of one stream response
	// (default 1 MiB; a single oversized record still ships alone).
	MaxBatchBytes int
	// FollowerTTL expires a follower's retention claim after this long
	// without a request, so a dead follower cannot pin segments forever
	// (default 30s).
	FollowerTTL time.Duration
	// RetainMinSeq is a manual retention floor (the -wal-retain-min-seq
	// flag); the effective floor is the minimum of this and every active
	// follower's position. Zero = no manual floor.
	RetainMinSeq uint64
	// Metrics, when non-nil, receives the leader's instruments.
	Metrics *obs.Registry
	// Logger receives stream diagnostics (nil = discard).
	Logger *slog.Logger
}

// followerPos is one follower's replication claim: the next sequence it
// needs and when it last asked.
type followerPos struct {
	next uint64
	seen time.Time
}

// Leader serves the repository's WAL and snapshots to followers. One
// Leader wraps one open wal.Repository and its store; its epoch is minted
// at construction, so recreating the Leader (a process restart) fences all
// existing followers onto the snapshot path.
type Leader struct {
	st     *store.Store
	repo   *wal.Repository
	epoch  string
	opts   LeaderOptions
	logger *slog.Logger

	mu        sync.Mutex
	followers map[string]followerPos

	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	mStreams   *obs.Counter
	mRecords   *obs.Counter
	mSnapshots *obs.Counter
}

// NewLeader wraps st and repo for serving. The repository must be the one
// journalling st's mutations — the leader reads frames straight from its
// segments.
func NewLeader(st *store.Store, repo *wal.Repository, opts LeaderOptions) *Leader {
	if opts.PollTimeout <= 0 {
		opts.PollTimeout = 10 * time.Second
	}
	if opts.MaxBatchBytes <= 0 {
		opts.MaxBatchBytes = 1 << 20
	}
	if opts.FollowerTTL <= 0 {
		opts.FollowerTTL = 30 * time.Second
	}
	if opts.Logger == nil {
		opts.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	l := &Leader{
		st:        st,
		repo:      repo,
		epoch:     NewEpoch(),
		opts:      opts,
		logger:    opts.Logger,
		followers: make(map[string]followerPos),
		stopCh:    make(chan struct{}),
	}
	reg := opts.Metrics
	l.mStreams = reg.Counter("grdf_repl_streams_served_total", "WAL stream responses served to followers.")
	l.mRecords = reg.Counter("grdf_repl_stream_records_total", "WAL records shipped to followers.")
	l.mSnapshots = reg.Counter("grdf_repl_snapshots_served_total", "Bootstrap snapshot transfers served to followers.")
	reg.GaugeFunc("grdf_repl_followers", "Followers with an unexpired replication claim.", func() float64 {
		l.mu.Lock()
		defer l.mu.Unlock()
		return float64(len(l.followers))
	})
	reg.GaugeFunc("grdf_repl_retain_seq", "Effective WAL GC retention floor.", func() float64 {
		return float64(repo.RetainSeq())
	})
	l.updateRetention()
	// Refresh the retention floor on a timer too: a follower that dies
	// stops refreshing its claim, and without this its pinned segments
	// would survive until some other follower's request re-ran the expiry.
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		t := time.NewTicker(l.opts.FollowerTTL / 2)
		defer t.Stop()
		for {
			select {
			case <-l.stopCh:
				return
			case <-t.C:
				l.updateRetention()
			}
		}
	}()
	return l
}

// Close stops the retention-refresh goroutine. The leader serves no
// further role after Close; its repository remains usable.
func (l *Leader) Close() {
	l.stopOnce.Do(func() { close(l.stopCh) })
	l.wg.Wait()
}

// Epoch returns the leader's incarnation token.
func (l *Leader) Epoch() string { return l.epoch }

// observeFollower records a follower's claim at nextSeq and refreshes the
// repository's GC retention floor. Empty ids (a follower that declined to
// identify itself) get no retention claim.
func (l *Leader) observeFollower(id string, nextSeq uint64) {
	if id == "" {
		return
	}
	l.mu.Lock()
	l.followers[id] = followerPos{next: nextSeq, seen: time.Now()}
	l.mu.Unlock()
	l.updateRetention()
}

// updateRetention recomputes the retention floor: the minimum of the
// manual floor and every unexpired follower's next needed sequence.
func (l *Leader) updateRetention() {
	now := time.Now()
	floor := l.opts.RetainMinSeq
	l.mu.Lock()
	for id, pos := range l.followers {
		if now.Sub(pos.seen) > l.opts.FollowerTTL {
			delete(l.followers, id)
			continue
		}
		if floor == 0 || pos.next < floor {
			floor = pos.next
		}
	}
	l.mu.Unlock()
	l.repo.SetRetainSeq(floor)
}

// ServeStream handles GET /v1/wal/stream?from=seq[&epoch=e][&follower=id]:
// long-polls until records at or after from exist, then ships them as raw
// CRC-framed bytes.
func (l *Leader) ServeStream(w http.ResponseWriter, r *http.Request) {
	_, sp := obs.StartSpan(r.Context(), "repl.stream")
	defer sp.End()

	q := r.URL.Query()
	from, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if err != nil || from == 0 {
		sp.Fail(fmt.Errorf("bad from parameter"))
		http.Error(w, `{"error":"from must be a record sequence >= 1","code":"bad_request"}`, http.StatusBadRequest)
		return
	}
	if e := q.Get("epoch"); e != "" && e != l.epoch {
		// The follower replicated a previous incarnation: its sequence
		// coordinates are meaningless here. Fence it onto the snapshot path.
		sp.SetAttr("fenced", "true")
		w.Header().Set(HeaderEpoch, l.epoch)
		http.Error(w, `{"error":"leader epoch changed; re-bootstrap from snapshot","code":"epoch_fenced"}`, http.StatusConflict)
		return
	}
	l.observeFollower(q.Get("follower"), from)
	sp.Add("from", int64(from))

	// A follower may request a shorter long-poll bound than our default so
	// its caught-up proofs refresh inside its own lag budget.
	poll := l.opts.PollTimeout
	if ms, err := strconv.Atoi(q.Get("poll_ms")); err == nil && ms > 0 {
		if d := time.Duration(ms) * time.Millisecond; d < poll {
			poll = d
		}
	}
	deadline := time.NewTimer(poll)
	defer deadline.Stop()
	for {
		// Arm the watch before reading: an append landing between the read
		// and the select still closes this channel, so no wakeup is lost.
		watch := l.repo.Watch()
		frames, err := l.repo.ReadRecords(from, l.opts.MaxBatchBytes)
		switch {
		case errors.Is(err, wal.ErrCompacted):
			w.Header().Set(HeaderEpoch, l.epoch)
			http.Error(w, `{"error":"requested records compacted; re-bootstrap from snapshot","code":"compacted"}`, http.StatusGone)
			return
		case err != nil:
			sp.Fail(err)
			l.logger.Error("repl: stream read failed", "from", from, "err", err)
			http.Error(w, `{"error":"stream read failed","code":"internal"}`, http.StatusInternalServerError)
			return
		}
		if len(frames) > 0 {
			l.setHeadHeaders(w)
			w.Header().Set("Content-Type", "application/octet-stream")
			w.WriteHeader(http.StatusOK)
			for _, frame := range frames {
				if _, err := w.Write(frame); err != nil {
					sp.Fail(err)
					return
				}
			}
			l.mStreams.Inc()
			l.mRecords.Add(float64(len(frames)))
			sp.Add("records", int64(len(frames)))
			return
		}
		select {
		case <-watch:
			continue
		case <-deadline.C:
			l.setHeadHeaders(w)
			w.WriteHeader(http.StatusNoContent)
			l.mStreams.Inc()
			sp.SetAttr("caught_up", "true")
			return
		case <-r.Context().Done():
			return
		}
	}
}

// ServeSnapshot handles GET /v1/wal/snapshot[?follower=id]: a consistent
// full-state transfer for bootstrap or post-compaction catch-up.
//
// Consistency protocol: read the WAL head first, then barrier the store,
// then capture the view. Every record at or below the head read in step
// one is published in the captured view (its commit preceded the barrier);
// records appended during the window appear in both the snapshot and the
// follower's subsequent stream, where they re-apply idempotently — the
// same overlap contract the repository's own rotate-then-capture uses.
func (l *Leader) ServeSnapshot(w http.ResponseWriter, r *http.Request) {
	_, sp := obs.StartSpan(r.Context(), "repl.snapshot")
	defer sp.End()

	nextSeq := l.repo.HeadSeq() + 1
	l.st.Barrier()
	view := l.st.View()
	gen := view.Generation()
	body := wal.EncodeSnapshotBytes(gen, view.Triples())

	l.observeFollower(r.URL.Query().Get("follower"), nextSeq)
	w.Header().Set(HeaderEpoch, l.epoch)
	w.Header().Set(HeaderNextSeq, strconv.FormatUint(nextSeq, 10))
	w.Header().Set(HeaderGeneration, strconv.FormatUint(gen, 10))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	if _, err := w.Write(body); err != nil {
		sp.Fail(err)
		return
	}
	l.mSnapshots.Inc()
	sp.Add("bytes", int64(len(body)))
	sp.Add("generation", int64(gen))
	l.logger.Info("repl: snapshot served", "bytes", len(body), "generation", gen, "next_seq", nextSeq)
}

// setHeadHeaders stamps the leader's current position onto a stream
// response so the follower can measure its own lag.
func (l *Leader) setHeadHeaders(w http.ResponseWriter) {
	w.Header().Set(HeaderEpoch, l.epoch)
	w.Header().Set(HeaderHeadSeq, strconv.FormatUint(l.repo.HeadSeq(), 10))
	w.Header().Set(HeaderHeadGen, strconv.FormatUint(l.st.Generation(), 10))
}
