package repl

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/federation"
	"repro/internal/store"
)

// TestReconnectDelayHonorsRetryAfter pins the pause policy: plain failures
// follow the exponential backoff, a leader's Retry-After hint stretches it
// (capped at maxShedDelay), and a hint shorter than the backoff is ignored.
func TestReconnectDelayHonorsRetryAfter(t *testing.T) {
	f, err := NewFollower(store.New(), FollowerOptions{
		LeaderURL: "http://leader",
		Retry: federation.RetryConfig{
			BaseDelay: 10 * time.Millisecond,
			MaxDelay:  100 * time.Millisecond,
			Jitter:    0.000001,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	plain := errors.New("transport reset")
	if d := f.reconnectDelay(plain, 1, true); d < 9*time.Millisecond || d > 10*time.Millisecond {
		t.Errorf("plain delay = %v, want ≈BaseDelay", d)
	}
	shed := &federation.StatusError{Status: 429, RetryAfter: 2 * time.Second}
	if d := f.reconnectDelay(shed, 1, true); d != 2*time.Second {
		t.Errorf("shed delay = %v, want the 2s Retry-After hint", d)
	}
	monster := &federation.StatusError{Status: 429, RetryAfter: 10 * time.Minute}
	if d := f.reconnectDelay(monster, 1, true); d != maxShedDelay {
		t.Errorf("oversized hint delay = %v, want capped at %v", d, maxShedDelay)
	}
	tiny := &federation.StatusError{Status: 429, RetryAfter: time.Millisecond}
	if d := f.reconnectDelay(tiny, 5, true); d < 9*time.Millisecond {
		t.Errorf("tiny hint delay = %v, want the larger computed backoff", d)
	}
	// Budget exhausted: the trickle cap applies before the hint comparison.
	if d := f.reconnectDelay(plain, 1, false); d < 99*time.Millisecond {
		t.Errorf("budget-exhausted delay = %v, want ≈MaxDelay trickle", d)
	}
}

// TestFollowerCountsLeaderSheds: a leader refusing the snapshot with 429 is
// recorded as a leader shed in Status(), distinct from generic reconnects.
func TestFollowerCountsLeaderSheds(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer srv.Close()

	f, _, cancel := startFollower(t, FollowerOptions{LeaderURL: srv.URL})
	waitFor(t, 2*time.Second, "leader shed counted", func() bool {
		return f.Status().LeaderSheds >= 1
	})
	cancel()
	st := f.Status()
	if st.LeaderSheds < 1 || st.Reconnects < st.LeaderSheds {
		t.Errorf("status = %+v, want LeaderSheds >= 1 and counted among reconnects", st)
	}
	if st.Bootstrapped {
		t.Error("follower claims bootstrap despite pure 429s")
	}
	if hits.Load() == 0 {
		t.Fatal("test server never hit")
	}
}
