// Package repl implements WAL-shipping replication for the G-SACS
// repository: a leader serves its write-ahead log and snapshots over HTTP,
// and followers replay them into their own MVCC stores to serve read-only
// queries. The paper's architecture keeps one authoritative secured
// ontology (Fig. 3); replication scales the *consumer* side of that design
// — emergency responders and analysts fan out across read replicas — while
// every byte they serve still originates from the single authoritative
// write path.
//
// Wire protocol (all under /v1/wal/ on the leader):
//
//	GET /v1/wal/stream?from=<seq>&epoch=<epoch>&follower=<id>
//	  200  body = concatenated raw WAL frames (disk representation,
//	       CRC32C-framed), starting at record <from>
//	  204  caught up: no records past from-1 within the long-poll window
//	  409  epoch mismatch — the leader restarted; re-bootstrap
//	  410  compacted — <from> predates the retained log; re-bootstrap
//	GET /v1/wal/snapshot?follower=<id>
//	  200  body = wal.EncodeSnapshotBytes state transfer
//
// Record sequence numbers are leader-incarnation-local. Every response
// carries the leader's epoch — a random token minted at leader start — and
// a follower pins the epoch it bootstrapped under. On mismatch the
// follower discards its state and re-bootstraps from a snapshot: that is
// the generation fencing that makes a leader restart safe without
// cross-incarnation sequence durability.
package repl

import (
	"crypto/rand"
	"encoding/hex"
)

// Wire header names shared by leader and follower.
const (
	// HeaderEpoch carries the leader's incarnation token on every response;
	// followers send their pinned epoch as the "epoch" query parameter.
	HeaderEpoch = "X-Repl-Epoch"
	// HeaderHeadSeq is the leader's newest record sequence at response time.
	HeaderHeadSeq = "X-Repl-Head-Seq"
	// HeaderHeadGen is the leader's store generation at response time.
	HeaderHeadGen = "X-Repl-Head-Gen"
	// HeaderNextSeq, on a snapshot response, is the sequence the follower
	// must stream from after loading the snapshot body.
	HeaderNextSeq = "X-Repl-Next-Seq"
	// HeaderGeneration, on a snapshot response, is the leader store
	// generation the snapshot captures.
	HeaderGeneration = "X-Repl-Generation"
)

// NewEpoch mints a leader incarnation token: 16 random hex characters.
func NewEpoch() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; fall back to a
		// fixed-but-valid token rather than panicking the server.
		return "epoch-rand-failed"
	}
	return hex.EncodeToString(b[:])
}
