package repl

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rdf"
	"repro/internal/store"
	"repro/internal/wal"
)

// corruptingProxy forwards requests to a leader and, while armed, flips
// one bit in the middle of every 200 stream body — the in-transit
// counterpart of the FaultFS at-rest bit flips.
type corruptingProxy struct {
	target string
	armed  atomic.Bool
	flips  atomic.Int64
}

func (p *corruptingProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	resp, err := http.Get(p.target + r.URL.Path + "?" + r.URL.RawQuery)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	if p.armed.Load() && resp.StatusCode == http.StatusOK &&
		strings.HasSuffix(r.URL.Path, "/stream") && len(body) > 0 {
		wal.FlipBitBytes(body, len(body)/2, 2)
		p.flips.Add(1)
	}
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.Header().Del("Content-Length") // body length may be unchanged, but be safe
	w.WriteHeader(resp.StatusCode)
	w.Write(body)
}

// TestStreamCorruptionRefusedAndResumed: a bit flipped in transit must be
// refused (CRC), counted, and retried from the last good sequence — and an
// atomic batch corrupted mid-stream must never half-apply, even while the
// corruption persists across several retries.
func TestStreamCorruptionRefusedAndResumed(t *testing.T) {
	node := newLeaderNode(t, t.TempDir(), LeaderOptions{PollTimeout: 100 * time.Millisecond})
	for i := 0; i < 10; i++ {
		node.st.Add(triple(i))
	}
	srv := startLeaderServer(t, func() *Leader { return node.leader })

	proxy := &corruptingProxy{target: srv.URL}
	proxySrv := httptest.NewServer(proxy)
	defer proxySrv.Close()

	f, fst, _ := startFollower(t, FollowerOptions{LeaderURL: proxySrv.URL, MaxLag: 5 * time.Second})
	waitFor(t, 5*time.Second, "clean convergence", func() bool { return converged(node.st, fst) })

	// A pair that must only ever appear atomically on the follower.
	pairA, pairB := triple(500), triple(501)
	sawPartial := atomic.Bool{}
	stopWatch := make(chan struct{})
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		for {
			select {
			case <-stopWatch:
				return
			default:
			}
			v := fst.View()
			if v.Has(pairA) != v.Has(pairB) {
				sawPartial.Store(true)
			}
		}
	}()

	// Corrupt every stream response while the batch ships.
	proxy.armed.Store(true)
	if _, err := node.st.ApplyBatch([]store.Op{
		{Kind: store.OpAdd, Triples: []rdf.Triple{pairA}},
		{Kind: store.OpAdd, Triples: []rdf.Triple{pairB}},
	}); err != nil {
		t.Fatal(err)
	}

	// The follower must refuse the corrupt record — repeatedly — without
	// applying anything from those responses.
	waitFor(t, 10*time.Second, "corrupt records refused", func() bool {
		return f.Status().CorruptRecords >= 2
	})
	if fv := fst.View(); fv.Has(pairA) || fv.Has(pairB) {
		// Refusal means the corrupt batch never applied, not even once.
		t.Fatal("follower applied a record from a corrupted response")
	}

	// Heal the stream: the follower resumes from its last good sequence and
	// converges with the batch intact.
	proxy.armed.Store(false)
	waitFor(t, 10*time.Second, "post-corruption convergence", func() bool { return converged(node.st, fst) })
	close(stopWatch)
	<-watchDone

	if sawPartial.Load() {
		t.Fatal("follower exposed half an atomic batch")
	}
	st := f.Status()
	if st.CorruptRecords < 2 {
		t.Fatalf("corrupt records = %d, want >= 2", st.CorruptRecords)
	}
	if st.SnapshotTransfers != 1 {
		t.Fatalf("snapshot transfers = %d, want 1: corruption must resume the stream, not re-bootstrap", st.SnapshotTransfers)
	}
	if got := proxy.flips.Load(); got < 2 {
		t.Fatalf("proxy flipped %d bodies, want >= 2", got)
	}
}

// TestSnapshotCorruptionRefused: a bit flipped in a snapshot transfer
// fails the snapshot's own CRC footer; the follower keeps retrying and
// bootstraps successfully once the corruption clears.
func TestSnapshotCorruptionRefused(t *testing.T) {
	node := newLeaderNode(t, t.TempDir(), LeaderOptions{})
	for i := 0; i < 10; i++ {
		node.st.Add(triple(i))
	}
	srv := startLeaderServer(t, func() *Leader { return node.leader })

	var corruptSnaps atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/wal/stream", func(w http.ResponseWriter, r *http.Request) {
		node.leader.ServeStream(w, r)
	})
	mux.HandleFunc("/v1/wal/snapshot", func(w http.ResponseWriter, r *http.Request) {
		resp, err := http.Get(srv.URL + "/v1/wal/snapshot?" + r.URL.RawQuery)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if corruptSnaps.Add(1) <= 2 {
			wal.FlipBitBytes(body, len(body)/3, 5)
		}
		for k, vs := range resp.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		w.Write(body)
	})
	proxySrv := httptest.NewServer(mux)
	defer proxySrv.Close()

	f, fst, _ := startFollower(t, FollowerOptions{LeaderURL: proxySrv.URL})
	waitFor(t, 10*time.Second, "bootstrap past corrupted snapshots", func() bool { return converged(node.st, fst) })
	if st := f.Status(); st.CorruptRecords < 2 {
		t.Fatalf("corrupt counter = %d, want >= 2 refused snapshot bodies", st.CorruptRecords)
	}
}
