package repl

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"repro/internal/federation"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/wal"
)

// Sentinel outcomes of one stream exchange that demand a re-bootstrap
// rather than a plain reconnect.
var (
	// errEpochFenced: the leader restarted; our sequence coordinates are
	// from a dead incarnation.
	errEpochFenced = errors.New("repl: leader epoch changed")
	// errCompactedRemote: the leader GC'd past our position (we were
	// partitioned longer than the retention window).
	errCompactedRemote = errors.New("repl: leader compacted past our position")
)

// maxTransferBytes bounds any single snapshot or stream body read.
const maxTransferBytes = 256 << 20

// FollowerOptions configures NewFollower.
type FollowerOptions struct {
	// LeaderURL is the leader's base URL (scheme://host:port). Required.
	LeaderURL string
	// FollowerID identifies this follower to the leader's retention
	// tracking (default: a random token).
	FollowerID string
	// Client performs the HTTP requests (default: a client with no global
	// timeout — long-polls are bounded per-request by context).
	Client *http.Client
	// MaxLag is the staleness bound behind readiness: the follower reports
	// unready when it has not confirmed being caught up within this window
	// (0 = never gate on lag).
	MaxLag time.Duration
	// Retry paces reconnects after transport failures, sharing the
	// federation backoff/budget policy.
	Retry federation.RetryConfig
	// OnBootstrap runs after every completed snapshot load (initial and
	// post-fencing), so the server can rebuild derived state — the G-SACS
	// reasoner's inferences — over the fresh triple set.
	OnBootstrap func()
	// Metrics, when non-nil, receives the follower's instruments.
	Metrics *obs.Registry
	// Logger receives replication diagnostics (nil = discard).
	Logger *slog.Logger
}

// FollowerStatus is the point-in-time replication state surfaced by
// /healthz on a follower.
type FollowerStatus struct {
	LeaderURL         string  `json:"leader_url"`
	Epoch             string  `json:"epoch,omitempty"`
	Bootstrapped      bool    `json:"bootstrapped"`
	Ready             bool    `json:"ready"`
	AppliedSeq        uint64  `json:"applied_seq"`
	LeaderHeadSeq     uint64  `json:"leader_head_seq"`
	AppliedGeneration uint64  `json:"applied_generation"`
	LeaderGeneration  uint64  `json:"leader_generation"`
	LagSeconds        float64 `json:"lag_seconds"`
	MaxLagSeconds     float64 `json:"max_lag_seconds,omitempty"`
	Reconnects        uint64  `json:"reconnects"`
	SnapshotTransfers uint64  `json:"snapshot_transfers"`
	CorruptRecords    uint64  `json:"corrupt_records,omitempty"`
	// LeaderSheds counts replication attempts the leader refused with 429:
	// the leader is shedding load and this follower is part of it. A rising
	// count with Ready=true means replication is riding out leader overload,
	// not a fault.
	LeaderSheds uint64 `json:"leader_sheds,omitempty"`
}

// State collapses the follower lifecycle into one label — "ready",
// "lagging" (bootstrapped but past the lag bound) or "bootstrapping" — the
// form /healthz and the cluster rollup report.
func (s FollowerStatus) State() string {
	switch {
	case s.Ready:
		return "ready"
	case s.Bootstrapped:
		return "lagging"
	default:
		return "bootstrapping"
	}
}

// Follower replicates a leader's WAL into st: bootstrap from a snapshot,
// then stream and apply records, re-bootstrapping whenever the leader
// fences it (restart) or compacts past it. Run drives the loop; the rest
// of the server reads the store as usual — every applied record publishes
// through the store's normal MVCC commit path.
type Follower struct {
	st     *store.Store
	opts   FollowerOptions
	client *http.Client
	logger *slog.Logger
	id     string

	mu               sync.Mutex
	epoch            string // pinned leader incarnation ("" before bootstrap)
	bootstrapped     bool
	appliedSeq       uint64    // last record sequence applied this epoch
	leaderHeadSeq    uint64    // leader head from the last response
	appliedLeaderGen uint64    // leader store generation our state reflects
	leaderGen        uint64    // leader store generation from the last response
	lastCaughtUp     time.Time // last confirmation that appliedSeq == leader head
	started          time.Time
	reconnects       uint64
	snapshots        uint64
	corrupt          uint64
	leaderSheds      uint64

	budget *federation.RetryBudget

	mApplied    *obs.Counter
	mReconnects *obs.Counter
	mSnapshots  *obs.Counter
	mCorrupt    *obs.Counter
	mSheds      *obs.Counter
}

// NewFollower builds a follower replicating into st. st should start empty;
// bootstrap atomically replaces its contents regardless.
func NewFollower(st *store.Store, opts FollowerOptions) (*Follower, error) {
	if opts.LeaderURL == "" {
		return nil, errors.New("repl: FollowerOptions.LeaderURL is required")
	}
	if opts.FollowerID == "" {
		opts.FollowerID = NewEpoch()
	}
	if opts.Client == nil {
		opts.Client = &http.Client{}
	}
	if opts.Logger == nil {
		opts.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	f := &Follower{
		st:      st,
		opts:    opts,
		client:  opts.Client,
		logger:  opts.Logger,
		id:      opts.FollowerID,
		started: time.Now(),
		budget:  federation.NewRetryBudget(opts.Retry),
	}
	reg := opts.Metrics
	f.mApplied = reg.Counter("grdf_repl_applied_records_total", "WAL records applied from the leader stream.")
	f.mReconnects = reg.Counter("grdf_repl_reconnects_total", "Stream reconnects after transport or stream errors.")
	f.mSnapshots = reg.Counter("grdf_repl_snapshot_transfers_total", "Bootstrap snapshot transfers performed.")
	f.mCorrupt = reg.Counter("grdf_repl_corrupt_records_total", "Stream records refused for failing CRC or structural checks.")
	f.mSheds = reg.Counter("grdf_repl_leader_sheds_total", "Replication attempts the leader refused with 429 (leader load shedding).")
	reg.GaugeFunc("grdf_repl_lag_seconds", "Seconds since this follower last confirmed being caught up.", f.LagSeconds)
	reg.GaugeFunc("grdf_repl_applied_generation", "Leader store generation this follower's state reflects.", func() float64 {
		f.mu.Lock()
		defer f.mu.Unlock()
		return float64(f.appliedLeaderGen)
	})
	return f, nil
}

// Run drives the replication loop until ctx is cancelled: bootstrap,
// stream, apply, reconnect with backoff, re-bootstrap on fencing.
func (f *Follower) Run(ctx context.Context) {
	retryN := 0
	for ctx.Err() == nil {
		var err error
		if !f.isBootstrapped() {
			err = f.bootstrap(ctx)
		} else {
			err = f.streamOnce(ctx)
		}
		if err == nil {
			retryN = 0
			f.budget.Deposit()
			continue
		}
		if ctx.Err() != nil {
			return
		}
		if errors.Is(err, errEpochFenced) || errors.Is(err, errCompactedRemote) {
			f.logger.Warn("repl: follower fenced; discarding state and re-bootstrapping", "err", err)
			f.mu.Lock()
			f.bootstrapped = false
			f.mu.Unlock()
			continue
		}
		if federation.IsShed(err) {
			f.mSheds.Inc()
			f.mu.Lock()
			f.leaderSheds++
			f.mu.Unlock()
		}
		f.mReconnects.Inc()
		f.mu.Lock()
		f.reconnects++
		f.mu.Unlock()
		retryN++
		delay := f.reconnectDelay(err, retryN, f.budget.Withdraw())
		f.logger.Warn("repl: stream attempt failed; backing off",
			"attempt", retryN, "delay", delay, "err", err)
		select {
		case <-ctx.Done():
			return
		case <-time.After(delay):
		}
	}
}

// maxShedDelay caps how long a leader's Retry-After hint can stretch a
// reconnect pause — the hint is advice from an overloaded machine, and a
// replica that naps for minutes trades overload for staleness.
const maxShedDelay = 30 * time.Second

// reconnectDelay picks the pause before the next attempt: the retry policy's
// capped exponential backoff (the budget-exhausted trickle when budgetOK is
// false), stretched to the leader's Retry-After hint when it shed us — the
// leader knows its own drain time better than our exponent does.
func (f *Follower) reconnectDelay(err error, retryN int, budgetOK bool) time.Duration {
	n := retryN
	if !budgetOK {
		// Retry budget exhausted: the leader is persistently unreachable.
		// Fall back to the capped delay so a dead leader sees trickle
		// probes, not a reconnect storm.
		n = 1 << 10
	}
	delay := f.opts.Retry.Backoff(n)
	if hint := federation.RetryAfterHint(err); hint > delay {
		delay = hint
		if delay > maxShedDelay {
			delay = maxShedDelay
		}
	}
	return delay
}

func (f *Follower) isBootstrapped() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.bootstrapped
}

// bootstrap performs a snapshot transfer and atomically replaces the
// store's contents with it — one Clear+Add batch, one MVCC publish, so
// concurrent readers flip from old state to new state without ever
// observing an empty store.
func (f *Follower) bootstrap(ctx context.Context) error {
	reqCtx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	u := fmt.Sprintf("%s/v1/wal/snapshot?follower=%s", f.opts.LeaderURL, url.QueryEscape(f.id))
	req, err := http.NewRequestWithContext(reqCtx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return fmt.Errorf("repl: snapshot transfer: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return refusedError(resp, "snapshot transfer refused")
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxTransferBytes+1))
	if err != nil {
		return fmt.Errorf("repl: snapshot body: %w", err)
	}
	if len(body) > maxTransferBytes {
		return fmt.Errorf("repl: snapshot body exceeds %d bytes", maxTransferBytes)
	}
	gen, triples, err := wal.DecodeSnapshotBytes(body)
	if err != nil {
		// In-transit corruption fails the same CRC the on-disk format uses.
		f.mCorrupt.Inc()
		f.mu.Lock()
		f.corrupt++
		f.mu.Unlock()
		return fmt.Errorf("repl: snapshot rejected: %w", err)
	}
	epoch := resp.Header.Get(HeaderEpoch)
	if epoch == "" {
		return errors.New("repl: snapshot response missing epoch header")
	}
	nextSeq, err := strconv.ParseUint(resp.Header.Get(HeaderNextSeq), 10, 64)
	if err != nil || nextSeq == 0 {
		return fmt.Errorf("repl: snapshot response has bad %s header", HeaderNextSeq)
	}

	ops := []store.Op{{Kind: store.OpClear}, {Kind: store.OpAdd, Triples: triples}}
	if _, err := f.st.ApplyBatch(ops); err != nil {
		return fmt.Errorf("repl: snapshot load: %w", err)
	}

	f.mu.Lock()
	f.epoch = epoch
	f.bootstrapped = true
	f.appliedSeq = nextSeq - 1
	f.leaderHeadSeq = nextSeq - 1
	f.appliedLeaderGen = gen
	f.leaderGen = gen
	f.lastCaughtUp = time.Now()
	f.snapshots++
	f.mu.Unlock()
	f.mSnapshots.Inc()
	f.logger.Info("repl: bootstrapped from snapshot",
		"triples", len(triples), "generation", gen, "next_seq", nextSeq, "epoch", epoch)
	if f.opts.OnBootstrap != nil {
		f.opts.OnBootstrap()
	}
	return nil
}

// streamOnce performs one long-poll exchange and applies whatever arrives.
func (f *Follower) streamOnce(ctx context.Context) error {
	f.mu.Lock()
	from := f.appliedSeq + 1
	epoch := f.epoch
	f.mu.Unlock()
	poll := f.pollInterval()

	reqCtx, cancel := context.WithTimeout(ctx, poll+15*time.Second)
	defer cancel()
	u := fmt.Sprintf("%s/v1/wal/stream?from=%d&epoch=%s&follower=%s&poll_ms=%d",
		f.opts.LeaderURL, from, url.QueryEscape(epoch), url.QueryEscape(f.id), poll.Milliseconds())
	req, err := http.NewRequestWithContext(reqCtx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return fmt.Errorf("repl: stream request: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		body, err := io.ReadAll(io.LimitReader(resp.Body, maxTransferBytes+1))
		if err != nil {
			return fmt.Errorf("repl: stream body: %w", err)
		}
		if len(body) > maxTransferBytes {
			return fmt.Errorf("repl: stream body exceeds %d bytes", maxTransferBytes)
		}
		return f.applyFrames(ctx, from, body, resp.Header)
	case http.StatusNoContent:
		f.noteHead(resp.Header)
		return nil
	case http.StatusConflict:
		return errEpochFenced
	case http.StatusGone:
		return errCompactedRemote
	default:
		return refusedError(resp, "stream refused")
	}
}

// refusedError wraps a non-200 leader answer, carrying its Retry-After hint
// (integer seconds) so the reconnect pause can honor it.
func refusedError(resp *http.Response, msg string) *federation.StatusError {
	se := &federation.StatusError{Status: resp.StatusCode, Msg: msg}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			se.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return se
}

// applyFrames decodes and applies a stream body record by record. Every
// frame re-runs the full CRC and structural verification; a record that
// fails is refused loudly and the good prefix is kept — the next request
// resumes from the last good sequence. A KindBatch record applies through
// the store's atomic batch path, so a partial batch can never publish.
func (f *Follower) applyFrames(ctx context.Context, from uint64, body []byte, hdr http.Header) error {
	seq := from
	off := 0
	for off < len(body) {
		rec, next, err := wal.DecodeRecord(body, off)
		if err == io.EOF {
			break
		}
		if err != nil {
			f.mCorrupt.Inc()
			f.mu.Lock()
			f.corrupt++
			f.mu.Unlock()
			f.logger.Error("repl: corrupt record on stream; refusing, will resume from last good seq",
				"seq", seq, "offset", off, "resume_from", seq, "err", err)
			return fmt.Errorf("repl: corrupt stream record at seq %d: %w", seq, err)
		}
		_, sp := obs.StartSpan(ctx, "repl.apply")
		sp.SetAttr("kind", rec.Kind.String())
		sp.Add("seq", int64(seq))
		if err := wal.ApplyRecord(f.st, rec); err != nil {
			sp.Fail(err)
			sp.End()
			return fmt.Errorf("repl: apply record seq %d: %w", seq, err)
		}
		sp.End()
		f.mApplied.Inc()
		f.mu.Lock()
		f.appliedSeq = seq
		if rec.Kind != wal.KindAudit && rec.Gen+1 > f.appliedLeaderGen {
			// A record's Gen stamp is the leader generation it committed
			// against; after applying it our state reflects Gen+1.
			f.appliedLeaderGen = rec.Gen + 1
		}
		f.mu.Unlock()
		seq++
		off = next
	}
	f.noteHead(hdr)
	return nil
}

// noteHead records the leader position headers and refreshes the
// caught-up timestamp when we have applied everything the leader had.
func (f *Follower) noteHead(hdr http.Header) {
	head, err1 := strconv.ParseUint(hdr.Get(HeaderHeadSeq), 10, 64)
	gen, err2 := strconv.ParseUint(hdr.Get(HeaderHeadGen), 10, 64)
	f.mu.Lock()
	defer f.mu.Unlock()
	if err1 == nil {
		f.leaderHeadSeq = head
		if f.appliedSeq >= head {
			f.lastCaughtUp = time.Now()
		}
	}
	if err2 == nil {
		f.leaderGen = gen
		if f.appliedSeq >= head && err1 == nil {
			// Caught up: our state reflects the leader's current generation
			// even if some records no-oped without a Gen stamp advance.
			f.appliedLeaderGen = gen
		}
	}
}

// pollInterval is the long-poll bound requested from the leader: half the
// lag budget, so a healthy idle follower refreshes its caught-up proof
// well inside MaxLag.
func (f *Follower) pollInterval() time.Duration {
	if f.opts.MaxLag > 0 {
		p := f.opts.MaxLag / 2
		if p < 50*time.Millisecond {
			p = 50 * time.Millisecond
		}
		if p > 10*time.Second {
			p = 10 * time.Second
		}
		return p
	}
	return 5 * time.Second
}

// LagSeconds reports how long it has been since this follower last proved
// itself caught up with the leader. Grows without bound while the leader
// is unreachable — exactly the signal the readiness gate needs.
func (f *Follower) LagSeconds() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lagSecondsLocked()
}

func (f *Follower) lagSecondsLocked() float64 {
	if f.lastCaughtUp.IsZero() {
		return time.Since(f.started).Seconds()
	}
	return time.Since(f.lastCaughtUp).Seconds()
}

// Ready reports whether this follower should serve reads: bootstrapped and
// within the configured lag bound.
func (f *Follower) Ready() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.readyLocked()
}

func (f *Follower) readyLocked() bool {
	if !f.bootstrapped {
		return false
	}
	if f.opts.MaxLag <= 0 {
		return true
	}
	return f.lagSecondsLocked() <= f.opts.MaxLag.Seconds()
}

// Status returns the replication state block surfaced by /healthz.
func (f *Follower) Status() FollowerStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	return FollowerStatus{
		LeaderURL:         f.opts.LeaderURL,
		Epoch:             f.epoch,
		Bootstrapped:      f.bootstrapped,
		Ready:             f.readyLocked(),
		AppliedSeq:        f.appliedSeq,
		LeaderHeadSeq:     f.leaderHeadSeq,
		AppliedGeneration: f.appliedLeaderGen,
		LeaderGeneration:  f.leaderGen,
		LagSeconds:        f.lagSecondsLocked(),
		MaxLagSeconds:     f.opts.MaxLag.Seconds(),
		Reconnects:        f.reconnects,
		SnapshotTransfers: f.snapshots,
		CorruptRecords:    f.corrupt,
		LeaderSheds:       f.leaderSheds,
	}
}
