package repl

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rdf"
	"repro/internal/store"
	"repro/internal/wal"
)

func triple(i int) rdf.Triple {
	return rdf.T(
		rdf.IRI(fmt.Sprintf("http://example.org/s%d", i)),
		rdf.IRI("http://example.org/p"),
		rdf.Literal{Value: fmt.Sprintf("v%d", i), Datatype: rdf.XSDString},
	)
}

// leaderNode bundles a leader's store, repository and Leader for tests.
type leaderNode struct {
	st     *store.Store
	repo   *wal.Repository
	leader *Leader
}

func newLeaderNode(t *testing.T, dir string, opts LeaderOptions) *leaderNode {
	t.Helper()
	st := store.New()
	repo, err := wal.Open(st, wal.Options{Dir: dir, Fsync: wal.FsyncOff})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	if opts.PollTimeout == 0 {
		opts.PollTimeout = 250 * time.Millisecond
	}
	ld := NewLeader(st, repo, opts)
	t.Cleanup(func() { ld.Close(); repo.Close() })
	return &leaderNode{st: st, repo: repo, leader: ld}
}

// startLeaderServer serves whatever Leader get() currently returns, so
// tests can swap incarnations under a stable URL (a leader restart).
func startLeaderServer(t *testing.T, get func() *Leader) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/wal/stream", func(w http.ResponseWriter, r *http.Request) { get().ServeStream(w, r) })
	mux.HandleFunc("/v1/wal/snapshot", func(w http.ResponseWriter, r *http.Request) { get().ServeSnapshot(w, r) })
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func startFollower(t *testing.T, opts FollowerOptions) (*Follower, *store.Store, context.CancelFunc) {
	t.Helper()
	st := store.New()
	if opts.Retry.BaseDelay == 0 {
		opts.Retry.BaseDelay = 10 * time.Millisecond
	}
	f, err := NewFollower(st, opts)
	if err != nil {
		t.Fatalf("NewFollower: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); f.Run(ctx) }()
	t.Cleanup(func() { cancel(); <-done })
	return f, st, cancel
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func converged(leader, follower *store.Store) bool {
	if leader.Len() != follower.Len() {
		return false
	}
	fv := follower.View()
	for _, tr := range leader.Triples() {
		if !fv.Has(tr) {
			return false
		}
	}
	return true
}

// TestReplicateAndCatchUp: bootstrap from snapshot, stream the live tail,
// stay caught up through single ops and atomic batches.
func TestReplicateAndCatchUp(t *testing.T) {
	node := newLeaderNode(t, t.TempDir(), LeaderOptions{})
	for i := 0; i < 20; i++ {
		node.st.Add(triple(i))
	}
	srv := startLeaderServer(t, func() *Leader { return node.leader })

	f, fst, _ := startFollower(t, FollowerOptions{LeaderURL: srv.URL, MaxLag: 2 * time.Second})
	waitFor(t, 5*time.Second, "initial convergence", func() bool { return converged(node.st, fst) })

	if !f.Ready() {
		t.Fatalf("follower not ready after catch-up: %+v", f.Status())
	}
	if st := f.Status(); st.SnapshotTransfers != 1 {
		t.Fatalf("snapshot transfers = %d, want 1", st.SnapshotTransfers)
	}

	// Live tail: single ops and an atomic batch, including a remove.
	for i := 20; i < 25; i++ {
		node.st.Add(triple(i))
	}
	node.st.Remove(triple(0))
	if _, err := node.st.ApplyBatch([]store.Op{
		{Kind: store.OpAdd, Triples: []rdf.Triple{triple(100)}},
		{Kind: store.OpAdd, Triples: []rdf.Triple{triple(101)}},
	}); err != nil {
		t.Fatalf("ApplyBatch: %v", err)
	}
	waitFor(t, 5*time.Second, "tail convergence", func() bool { return converged(node.st, fst) })

	waitFor(t, 5*time.Second, "generation catch-up", func() bool {
		return f.Status().AppliedGeneration == node.st.Generation()
	})
	if st := f.Status(); st.AppliedSeq != node.repo.HeadSeq() {
		t.Fatalf("applied seq %d, leader head %d", st.AppliedSeq, node.repo.HeadSeq())
	}
}

// TestEpochFencingRebootstrap: a leader restart mints a new epoch; the
// follower must detect the fence, discard, re-bootstrap from snapshot, and
// converge on the new incarnation — including records the old incarnation
// never shipped.
func TestEpochFencingRebootstrap(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "leader")
	node1 := newLeaderNode(t, dir, LeaderOptions{})
	for i := 0; i < 10; i++ {
		node1.st.Add(triple(i))
	}
	var cur atomic.Pointer[Leader]
	cur.Store(node1.leader)
	srv := startLeaderServer(t, func() *Leader { return cur.Load() })

	f, fst, _ := startFollower(t, FollowerOptions{LeaderURL: srv.URL, MaxLag: 2 * time.Second})
	waitFor(t, 5*time.Second, "convergence on first incarnation", func() bool { return converged(node1.st, fst) })
	epoch1 := f.Status().Epoch

	// Restart: close the old incarnation, recover a new one from the same
	// directory, and swap it in under the same URL.
	node1.leader.Close()
	if err := node1.repo.Close(); err != nil {
		t.Fatal(err)
	}
	st2 := store.New()
	repo2, err := wal.Open(st2, wal.Options{Dir: dir, Fsync: wal.FsyncOff})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer repo2.Close()
	leader2 := NewLeader(st2, repo2, LeaderOptions{PollTimeout: 250 * time.Millisecond})
	defer leader2.Close()
	st2.Add(triple(999)) // a record only the new incarnation has
	cur.Store(leader2)

	waitFor(t, 10*time.Second, "convergence on new incarnation", func() bool { return converged(st2, fst) })
	st := f.Status()
	if st.Epoch == epoch1 {
		t.Fatalf("follower kept epoch %s across leader restart", epoch1)
	}
	if st.SnapshotTransfers < 2 {
		t.Fatalf("snapshot transfers = %d, want >= 2 (re-bootstrap)", st.SnapshotTransfers)
	}
}

// TestCompactionRebootstrap: a follower partitioned past the leader's
// retention window gets 410 and must recover via snapshot, not stream.
func TestCompactionRebootstrap(t *testing.T) {
	// Tiny TTL so the parked follower's retention claim expires quickly.
	node := newLeaderNode(t, t.TempDir(), LeaderOptions{FollowerTTL: 100 * time.Millisecond})
	for i := 0; i < 5; i++ {
		node.st.Add(triple(i))
	}
	srv := startLeaderServer(t, func() *Leader { return node.leader })

	f, fst, cancel := startFollower(t, FollowerOptions{LeaderURL: srv.URL, MaxLag: 2 * time.Second})
	waitFor(t, 5*time.Second, "initial convergence", func() bool { return converged(node.st, fst) })
	cancel() // partition the follower

	// Let the follower's retention claim expire, then compact past it.
	waitFor(t, 5*time.Second, "retention claim expiry", func() bool { return node.repo.RetainSeq() == 0 })
	for i := 5; i < 15; i++ {
		node.st.Add(triple(i))
		if err := node.repo.Snapshot(); err != nil {
			t.Fatal(err)
		}
	}
	if node.repo.MinSeq() <= 1 {
		t.Fatalf("leader never compacted (min seq %d); test is vacuous", node.repo.MinSeq())
	}

	// Rejoin: the follower's next stream request predates the window.
	ctx, cancel2 := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); f.Run(ctx) }()
	defer func() { cancel2(); <-done }()
	waitFor(t, 10*time.Second, "post-compaction convergence", func() bool { return converged(node.st, fst) })
	if st := f.Status(); st.SnapshotTransfers < 2 {
		t.Fatalf("snapshot transfers = %d, want >= 2 (compaction fallback)", st.SnapshotTransfers)
	}
}

// TestReadinessLagGate: readiness follows the lag bound — true while
// caught up, false once the leader is unreachable longer than MaxLag,
// true again after recovery.
func TestReadinessLagGate(t *testing.T) {
	node := newLeaderNode(t, t.TempDir(), LeaderOptions{PollTimeout: 50 * time.Millisecond})
	node.st.Add(triple(1))

	var broken atomic.Bool
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/wal/stream", func(w http.ResponseWriter, r *http.Request) {
		if broken.Load() {
			http.Error(w, "injected outage", http.StatusServiceUnavailable)
			return
		}
		node.leader.ServeStream(w, r)
	})
	mux.HandleFunc("/v1/wal/snapshot", func(w http.ResponseWriter, r *http.Request) {
		if broken.Load() {
			http.Error(w, "injected outage", http.StatusServiceUnavailable)
			return
		}
		node.leader.ServeSnapshot(w, r)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	const maxLag = 400 * time.Millisecond
	f, fst, _ := startFollower(t, FollowerOptions{LeaderURL: srv.URL, MaxLag: maxLag})
	waitFor(t, 5*time.Second, "convergence", func() bool { return converged(node.st, fst) })
	waitFor(t, 5*time.Second, "ready", f.Ready)

	broken.Store(true)
	waitFor(t, 5*time.Second, "readiness to drop after lag exceeds bound", func() bool { return !f.Ready() })
	if st := f.Status(); st.LagSeconds <= maxLag.Seconds() {
		t.Fatalf("unready but lag %.3fs <= bound %.3fs", st.LagSeconds, maxLag.Seconds())
	}

	broken.Store(false)
	waitFor(t, 10*time.Second, "readiness to recover", f.Ready)
}

// TestConcurrentReadsDuringBootstrap: a reader polling the follower store
// through a bootstrap must never observe the intermediate empty state —
// the Clear+Add loads as one atomic publish.
func TestConcurrentReadsDuringBootstrap(t *testing.T) {
	node := newLeaderNode(t, t.TempDir(), LeaderOptions{})
	for i := 0; i < 50; i++ {
		node.st.Add(triple(i))
	}
	srv := startLeaderServer(t, func() *Leader { return node.leader })

	fst := store.New()
	// Pre-load stale state so the bootstrap has something to replace.
	fst.Add(triple(1000))
	f, err := NewFollower(fst, FollowerOptions{LeaderURL: srv.URL})
	if err != nil {
		t.Fatal(err)
	}

	var sawEmpty atomic.Bool
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if fst.Len() == 0 {
				sawEmpty.Store(true)
			}
		}
	}()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); f.Run(ctx) }()
	waitFor(t, 5*time.Second, "bootstrap", func() bool { return converged(node.st, fst) })
	cancel()
	<-done
	close(stop)
	wg.Wait()
	if sawEmpty.Load() {
		t.Fatal("a reader observed an empty store mid-bootstrap; the swap is not atomic")
	}
}
