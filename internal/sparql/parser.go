package sparql

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/rdf"
)

type parser struct {
	toks     []tok
	pos      int
	prefixes *rdf.Prefixes
}

// ParseQuery parses a SPARQL query. defaults may preload prefix bindings
// (nil means the common GRDF prefixes).
func ParseQuery(src string, defaults *rdf.Prefixes) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, prefixes: rdf.NewPrefixes()}
	if defaults == nil {
		defaults = rdf.CommonPrefixes()
	}
	defaults.Each(func(prefix, ns string) { p.prefixes.Bind(prefix, ns) })
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	q.Prefixes = p.prefixes
	q.Fingerprint, q.CanonicalForm = FingerprintQuery(q)
	return q, nil
}

func (p *parser) cur() tok  { return p.toks[p.pos] }
func (p *parser) advance()  { p.pos++ }
func (p *parser) peek() tok { return p.toks[p.pos] }

func (p *parser) errf(format string, args ...any) error {
	t := p.cur()
	return &ParseError{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expectPunct(text string) error {
	if p.cur().kind != tPunct || p.cur().text != text {
		return p.errf("expected %q, got %q", text, p.cur().text)
	}
	p.advance()
	return nil
}

func (p *parser) isPunct(text string) bool {
	return p.cur().kind == tPunct && p.cur().text == text
}

func (p *parser) isKeyword(kw string) bool {
	return p.cur().kind == tKeyword && p.cur().text == kw
}

func (p *parser) parseQuery() (*Query, error) {
	// Prologue
	for {
		switch {
		case p.isKeyword("PREFIX"):
			p.advance()
			if p.cur().kind != tPName || !strings.HasSuffix(p.cur().text, ":") {
				return nil, p.errf("expected prefix label")
			}
			label := strings.TrimSuffix(p.cur().text, ":")
			p.advance()
			if p.cur().kind != tIRI {
				return nil, p.errf("expected namespace IRI")
			}
			p.prefixes.Bind(label, p.cur().text)
			p.advance()
		case p.isKeyword("BASE"):
			p.advance()
			if p.cur().kind != tIRI {
				return nil, p.errf("expected base IRI")
			}
			p.advance()
		default:
			goto body
		}
	}
body:
	q := &Query{Limit: -1}
	switch {
	case p.isKeyword("SELECT"):
		p.advance()
		q.Kind = Select
		if p.isKeyword("DISTINCT") || p.isKeyword("REDUCED") {
			q.Distinct = p.cur().text == "DISTINCT"
			p.advance()
		}
		if p.isPunct("*") {
			p.advance()
		} else {
			for {
				if p.cur().kind == tVar {
					q.Vars = append(q.Vars, Variable(p.cur().text))
					p.advance()
					continue
				}
				if p.isPunct("(") {
					agg, err := p.parseAggregate()
					if err != nil {
						return nil, err
					}
					q.Aggregates = append(q.Aggregates, agg)
					continue
				}
				break
			}
			if len(q.Vars) == 0 && len(q.Aggregates) == 0 {
				return nil, p.errf("SELECT requires '*', variables or aggregates")
			}
		}
		if p.isKeyword("WHERE") {
			p.advance()
		}
		g, err := p.parseGroup()
		if err != nil {
			return nil, err
		}
		q.Where = g
	case p.isKeyword("ASK"):
		p.advance()
		q.Kind = Ask
		if p.isKeyword("WHERE") {
			p.advance()
		}
		g, err := p.parseGroup()
		if err != nil {
			return nil, err
		}
		q.Where = g
	case p.isKeyword("CONSTRUCT"):
		p.advance()
		q.Kind = Construct
		if err := p.expectPunct("{"); err != nil {
			return nil, err
		}
		tmpl, err := p.parseTriplesBlock()
		if err != nil {
			return nil, err
		}
		q.Template = tmpl
		if err := p.expectPunct("}"); err != nil {
			return nil, err
		}
		if !p.isKeyword("WHERE") {
			return nil, p.errf("CONSTRUCT requires WHERE")
		}
		p.advance()
		g, err := p.parseGroup()
		if err != nil {
			return nil, err
		}
		q.Where = g
	case p.isKeyword("DESCRIBE"):
		p.advance()
		q.Kind = Describe
		for {
			t := p.cur()
			switch {
			case t.kind == tVar:
				q.DescribeTargets = append(q.DescribeTargets, Variable(t.text))
				p.advance()
				continue
			case t.kind == tIRI:
				q.DescribeTargets = append(q.DescribeTargets, rdf.IRI(t.text))
				p.advance()
				continue
			case t.kind == tPName:
				iri, err := p.prefixes.Expand(t.text)
				if err != nil {
					return nil, p.errf("%v", err)
				}
				q.DescribeTargets = append(q.DescribeTargets, iri)
				p.advance()
				continue
			}
			break
		}
		if len(q.DescribeTargets) == 0 {
			return nil, p.errf("DESCRIBE requires targets")
		}
		if p.isKeyword("WHERE") {
			p.advance()
			g, err := p.parseGroup()
			if err != nil {
				return nil, err
			}
			q.Where = g
		} else if p.isPunct("{") {
			g, err := p.parseGroup()
			if err != nil {
				return nil, err
			}
			q.Where = g
		} else {
			q.Where = &GroupPattern{}
		}
	default:
		return nil, p.errf("expected SELECT, ASK, CONSTRUCT or DESCRIBE, got %q", p.cur().text)
	}

	// Solution modifiers
	if p.isKeyword("GROUP") {
		p.advance()
		if !p.isKeyword("BY") {
			return nil, p.errf("expected BY after GROUP")
		}
		p.advance()
		for p.cur().kind == tVar {
			q.GroupBy = append(q.GroupBy, Variable(p.cur().text))
			p.advance()
		}
		if len(q.GroupBy) == 0 {
			return nil, p.errf("GROUP BY requires variables")
		}
	}
	if p.isKeyword("ORDER") {
		p.advance()
		if !p.isKeyword("BY") {
			return nil, p.errf("expected BY after ORDER")
		}
		p.advance()
		for {
			switch {
			case p.isKeyword("ASC"), p.isKeyword("DESC"):
				desc := p.cur().text == "DESC"
				p.advance()
				if err := p.expectPunct("("); err != nil {
					return nil, err
				}
				e, err := p.parseExpression()
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				q.OrderBy = append(q.OrderBy, OrderKey{Expr: e, Desc: desc})
			case p.cur().kind == tVar:
				q.OrderBy = append(q.OrderBy, OrderKey{Expr: ExprVar{Var: Variable(p.cur().text)}})
				p.advance()
			default:
				if len(q.OrderBy) == 0 {
					return nil, p.errf("expected ORDER BY criterion")
				}
				goto limits
			}
		}
	}
limits:
	for {
		switch {
		case p.isKeyword("LIMIT"):
			p.advance()
			n, err := p.parseInt()
			if err != nil {
				return nil, err
			}
			q.Limit = n
		case p.isKeyword("OFFSET"):
			p.advance()
			n, err := p.parseInt()
			if err != nil {
				return nil, err
			}
			q.Offset = n
		default:
			if p.cur().kind != tEOF {
				return nil, p.errf("unexpected trailing token %q", p.cur().text)
			}
			return q, nil
		}
	}
}

// parseAggregate parses "( AGG ( [DISTINCT] expr|* ) AS ?v )"; the current
// token is the opening parenthesis.
func (p *parser) parseAggregate() (Aggregate, error) {
	var agg Aggregate
	if err := p.expectPunct("("); err != nil {
		return agg, err
	}
	switch {
	case p.isKeyword("COUNT"):
		agg.Func = AggCount
	case p.isKeyword("SUM"):
		agg.Func = AggSum
	case p.isKeyword("MIN"):
		agg.Func = AggMin
	case p.isKeyword("MAX"):
		agg.Func = AggMax
	case p.isKeyword("AVG"):
		agg.Func = AggAvg
	default:
		return agg, p.errf("expected aggregate function, got %q", p.cur().text)
	}
	p.advance()
	if err := p.expectPunct("("); err != nil {
		return agg, err
	}
	if p.isKeyword("DISTINCT") {
		agg.Distinct = true
		p.advance()
	}
	if p.isPunct("*") {
		if agg.Func != AggCount {
			return agg, p.errf("'*' is only valid in COUNT")
		}
		p.advance()
	} else {
		e, err := p.parseExpression()
		if err != nil {
			return agg, err
		}
		agg.Arg = e
	}
	if err := p.expectPunct(")"); err != nil {
		return agg, err
	}
	if !p.isKeyword("AS") {
		return agg, p.errf("expected AS in aggregate projection")
	}
	p.advance()
	if p.cur().kind != tVar {
		return agg, p.errf("expected variable after AS")
	}
	agg.As = Variable(p.cur().text)
	p.advance()
	if err := p.expectPunct(")"); err != nil {
		return agg, err
	}
	return agg, nil
}

func (p *parser) parseInt() (int, error) {
	if p.cur().kind != tNumber {
		return 0, p.errf("expected integer")
	}
	n, err := strconv.Atoi(p.cur().text)
	if err != nil {
		return 0, p.errf("bad integer %q", p.cur().text)
	}
	p.advance()
	return n, nil
}

// parseGroup parses '{' ... '}'.
func (p *parser) parseGroup() (*GroupPattern, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	g := &GroupPattern{}
	for {
		switch {
		case p.isPunct("}"):
			p.advance()
			return g, nil
		case p.isKeyword("FILTER"):
			p.advance()
			e, err := p.parseConstraint()
			if err != nil {
				return nil, err
			}
			g.Elements = append(g.Elements, &Filter{Expr: e})
			if p.isPunct(".") {
				p.advance()
			}
		case p.isKeyword("BIND"):
			p.advance()
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			expr, err := p.parseExpression()
			if err != nil {
				return nil, err
			}
			if !p.isKeyword("AS") {
				return nil, p.errf("expected AS in BIND")
			}
			p.advance()
			if p.cur().kind != tVar {
				return nil, p.errf("expected variable after AS")
			}
			v := Variable(p.cur().text)
			p.advance()
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			g.Elements = append(g.Elements, &Bind{Expr: expr, Var: v})
			if p.isPunct(".") {
				p.advance()
			}
		case p.isKeyword("GRAPH"):
			p.advance()
			var name rdf.Term
			switch t := p.cur(); {
			case t.kind == tVar:
				name = Variable(t.text)
				p.advance()
			case t.kind == tIRI:
				name = rdf.IRI(t.text)
				p.advance()
			case t.kind == tPName:
				iri, err := p.prefixes.Expand(t.text)
				if err != nil {
					return nil, p.errf("%v", err)
				}
				name = iri
				p.advance()
			default:
				return nil, p.errf("expected graph name after GRAPH")
			}
			sub, err := p.parseGroup()
			if err != nil {
				return nil, err
			}
			g.Elements = append(g.Elements, &GraphPattern{Name: name, Group: sub})
			if p.isPunct(".") {
				p.advance()
			}
		case p.isKeyword("VALUES"):
			p.advance()
			vals, err := p.parseValues()
			if err != nil {
				return nil, err
			}
			g.Elements = append(g.Elements, vals)
			if p.isPunct(".") {
				p.advance()
			}
		case p.isKeyword("OPTIONAL"):
			p.advance()
			sub, err := p.parseGroup()
			if err != nil {
				return nil, err
			}
			g.Elements = append(g.Elements, &Optional{Group: sub})
			if p.isPunct(".") {
				p.advance()
			}
		case p.isPunct("{"):
			sub, err := p.parseGroup()
			if err != nil {
				return nil, err
			}
			// UNION chain?
			if p.isKeyword("UNION") {
				u := &Union{Left: sub}
				for p.isKeyword("UNION") {
					p.advance()
					right, err := p.parseGroup()
					if err != nil {
						return nil, err
					}
					if u.Right == nil {
						u.Right = right
					} else {
						u = &Union{Left: &GroupPattern{Elements: []PatternElement{u}}, Right: right}
					}
				}
				g.Elements = append(g.Elements, u)
			} else {
				g.Elements = append(g.Elements, &SubGroup{Group: sub})
			}
			if p.isPunct(".") {
				p.advance()
			}
		default:
			tps, err := p.parseTriplesBlock()
			if err != nil {
				return nil, err
			}
			if len(tps) == 0 {
				return nil, p.errf("unexpected token %q in group", p.cur().text)
			}
			g.Elements = append(g.Elements, &BGP{Patterns: tps})
		}
	}
}

// parseValues parses the body of a VALUES clause after the keyword:
// "?x { term… }" or "( ?x ?y ) { ( term… )… }". UNDEF leaves a cell nil.
func (p *parser) parseValues() (*Values, error) {
	v := &Values{}
	multi := false
	switch {
	case p.cur().kind == tVar:
		v.Vars = []Variable{Variable(p.cur().text)}
		p.advance()
	case p.isPunct("("):
		multi = true
		p.advance()
		for p.cur().kind == tVar {
			v.Vars = append(v.Vars, Variable(p.cur().text))
			p.advance()
		}
		if len(v.Vars) == 0 {
			return nil, p.errf("VALUES needs variables")
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	default:
		return nil, p.errf("expected variable(s) after VALUES")
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	for !p.isPunct("}") {
		var row []rdf.Term
		if multi {
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			for !p.isPunct(")") {
				cell, err := p.parseValuesCell()
				if err != nil {
					return nil, err
				}
				row = append(row, cell)
			}
			p.advance() // ')'
		} else {
			cell, err := p.parseValuesCell()
			if err != nil {
				return nil, err
			}
			row = []rdf.Term{cell}
		}
		if len(row) != len(v.Vars) {
			return nil, p.errf("VALUES row has %d cells for %d variables", len(row), len(v.Vars))
		}
		v.Rows = append(v.Rows, row)
	}
	p.advance() // '}'
	return v, nil
}

// parseValuesCell parses one VALUES cell: a term or UNDEF (nil).
func (p *parser) parseValuesCell() (rdf.Term, error) {
	if p.isKeyword("UNDEF") {
		p.advance()
		return nil, nil
	}
	t, err := p.parseTermNoVarCheck(true)
	if err != nil {
		return nil, err
	}
	if _, isVar := t.(Variable); isVar {
		return nil, p.errf("variables are not allowed in VALUES data")
	}
	return t, nil
}

// parseConstraint parses a FILTER constraint: '(' expr ')', EXISTS / NOT
// EXISTS, or a function call.
func (p *parser) parseConstraint() (Expression, error) {
	if p.isKeyword("EXISTS") || p.isKeyword("NOT") {
		return p.parseExists()
	}
	if p.isPunct("(") {
		p.advance()
		e, err := p.parseExpression()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	// builtin or custom function call
	return p.parsePrimaryExpr()
}

// parseExists parses EXISTS { … } or NOT EXISTS { … }.
func (p *parser) parseExists() (Expression, error) {
	negate := false
	if p.isKeyword("NOT") {
		negate = true
		p.advance()
	}
	if !p.isKeyword("EXISTS") {
		return nil, p.errf("expected EXISTS")
	}
	p.advance()
	g, err := p.parseGroup()
	if err != nil {
		return nil, err
	}
	return ExprExists{Group: g, Negate: negate}, nil
}

// parseTriplesBlock parses triple patterns until '}' , FILTER, OPTIONAL,
// '{' or EOF.
func (p *parser) parseTriplesBlock() ([]TriplePattern, error) {
	var out []TriplePattern
	for {
		if p.isPunct("}") || p.isKeyword("FILTER") || p.isKeyword("OPTIONAL") ||
			p.isKeyword("BIND") || p.isKeyword("VALUES") || p.isKeyword("GRAPH") ||
			p.isPunct("{") || p.cur().kind == tEOF {
			return out, nil
		}
		subj, err := p.parseTermNoVarCheck(false)
		if err != nil {
			return nil, err
		}
		// predicate-object list
		for {
			path, err := p.parsePathAlt()
			if err != nil {
				return nil, err
			}
			for {
				obj, err := p.parseTermNoVarCheck(true)
				if err != nil {
					return nil, err
				}
				out = append(out, TriplePattern{Subject: subj, Predicate: path, Object: obj})
				if p.isPunct(",") {
					p.advance()
					continue
				}
				break
			}
			if p.isPunct(";") {
				p.advance()
				// allow dangling ';' before '.' or '}'
				if p.isPunct(".") || p.isPunct("}") {
					break
				}
				continue
			}
			break
		}
		if p.isPunct(".") {
			p.advance()
			continue
		}
		return out, nil
	}
}

// parseTermNoVarCheck parses a subject/object term.
func (p *parser) parseTermNoVarCheck(allowLiteral bool) (rdf.Term, error) {
	t := p.cur()
	switch t.kind {
	case tVar:
		p.advance()
		return Variable(t.text), nil
	case tIRI:
		p.advance()
		return rdf.IRI(t.text), nil
	case tPName:
		iri, err := p.prefixes.Expand(t.text)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		p.advance()
		return iri, nil
	case tString:
		if !allowLiteral {
			return nil, p.errf("literal not allowed in subject position")
		}
		p.advance()
		val := t.text
		switch {
		case p.cur().kind == tLang:
			lang := p.cur().text
			p.advance()
			return rdf.NewLangString(val, lang), nil
		case p.isPunct("^^"):
			p.advance()
			dt := p.cur()
			switch dt.kind {
			case tIRI:
				p.advance()
				return rdf.Literal{Value: val, Datatype: rdf.IRI(dt.text)}, nil
			case tPName:
				iri, err := p.prefixes.Expand(dt.text)
				if err != nil {
					return nil, p.errf("%v", err)
				}
				p.advance()
				return rdf.Literal{Value: val, Datatype: iri}, nil
			default:
				return nil, p.errf("expected datatype IRI")
			}
		}
		return rdf.NewString(val), nil
	case tNumber:
		if !allowLiteral {
			return nil, p.errf("literal not allowed in subject position")
		}
		p.advance()
		return numericLiteral(t.text), nil
	case tBoolean:
		if !allowLiteral {
			return nil, p.errf("literal not allowed in subject position")
		}
		p.advance()
		return rdf.NewBoolean(t.text == "true"), nil
	}
	return nil, p.errf("bad term %q", t.text)
}

func numericLiteral(text string) rdf.Literal {
	switch {
	case strings.ContainsAny(text, "eE"):
		return rdf.Literal{Value: text, Datatype: rdf.XSDDouble}
	case strings.Contains(text, "."):
		return rdf.Literal{Value: text, Datatype: rdf.XSDDecimal}
	default:
		return rdf.Literal{Value: text, Datatype: rdf.XSDInteger}
	}
}

// --- property paths ----------------------------------------------------------

func (p *parser) parsePathAlt() (PathExpr, error) {
	left, err := p.parsePathSeq()
	if err != nil {
		return nil, err
	}
	for p.isPunct("|") {
		p.advance()
		right, err := p.parsePathSeq()
		if err != nil {
			return nil, err
		}
		left = Alt{Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parsePathSeq() (PathExpr, error) {
	left, err := p.parsePathEltOrInverse()
	if err != nil {
		return nil, err
	}
	for p.isPunct("/") {
		p.advance()
		right, err := p.parsePathEltOrInverse()
		if err != nil {
			return nil, err
		}
		left = Seq{Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parsePathEltOrInverse() (PathExpr, error) {
	if p.isPunct("^") {
		p.advance()
		inner, err := p.parsePathElt()
		if err != nil {
			return nil, err
		}
		return Inverse{Path: inner}, nil
	}
	return p.parsePathElt()
}

func (p *parser) parsePathElt() (PathExpr, error) {
	prim, err := p.parsePathPrimary()
	if err != nil {
		return nil, err
	}
	switch {
	case p.isPunct("*"):
		p.advance()
		return Repeat{Path: prim, Min: 0, Max: -1}, nil
	case p.isPunct("+"):
		p.advance()
		return Repeat{Path: prim, Min: 1, Max: -1}, nil
	case p.isPunct("?"):
		p.advance()
		return Repeat{Path: prim, Min: 0, Max: 1}, nil
	}
	return prim, nil
}

func (p *parser) parsePathPrimary() (PathExpr, error) {
	t := p.cur()
	switch {
	case t.kind == tIRI:
		p.advance()
		return Link{IRI: rdf.IRI(t.text)}, nil
	case t.kind == tPName:
		iri, err := p.prefixes.Expand(t.text)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		p.advance()
		return Link{IRI: iri}, nil
	case t.kind == tKeyword && t.text == "A":
		p.advance()
		return Link{IRI: rdf.RDFType}, nil
	case t.kind == tVar:
		p.advance()
		return VarPath{Var: Variable(t.text)}, nil
	case p.isPunct("("):
		p.advance()
		inner, err := p.parsePathAlt()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	return nil, p.errf("bad path element %q", t.text)
}

// --- expressions -------------------------------------------------------------

func (p *parser) parseExpression() (Expression, error) { return p.parseOr() }

func (p *parser) parseOr() (Expression, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isPunct("||") {
		p.advance()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = ExprBinary{Op: "||", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expression, error) {
	left, err := p.parseRelational()
	if err != nil {
		return nil, err
	}
	for p.isPunct("&&") {
		p.advance()
		right, err := p.parseRelational()
		if err != nil {
			return nil, err
		}
		left = ExprBinary{Op: "&&", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseRelational() (Expression, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"=", "!=", "<=", ">=", "<", ">"} {
		if p.isPunct(op) {
			p.advance()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return ExprBinary{Op: op, Left: left, Right: right}, nil
		}
	}
	// IN / NOT IN desugar to equality disjunction/conjunction.
	negate := false
	if p.isKeyword("NOT") {
		nxt := p.toks[p.pos+1]
		if nxt.kind == tKeyword && nxt.text == "IN" {
			negate = true
			p.advance()
		} else {
			return left, nil
		}
	}
	if p.isKeyword("IN") {
		p.advance()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var expr Expression
		for {
			item, err := p.parseExpression()
			if err != nil {
				return nil, err
			}
			var cmp Expression = ExprBinary{Op: "=", Left: left, Right: item}
			if negate {
				cmp = ExprBinary{Op: "!=", Left: left, Right: item}
			}
			if expr == nil {
				expr = cmp
			} else if negate {
				expr = ExprBinary{Op: "&&", Left: expr, Right: cmp}
			} else {
				expr = ExprBinary{Op: "||", Left: expr, Right: cmp}
			}
			if p.isPunct(",") {
				p.advance()
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if expr == nil {
			return nil, p.errf("empty IN list")
		}
		return expr, nil
	}
	return left, nil
}

func (p *parser) parseAdditive() (Expression, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.isPunct("+") || p.isPunct("-") {
		op := p.cur().text
		p.advance()
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = ExprBinary{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseMultiplicative() (Expression, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.isPunct("*") || p.isPunct("/") {
		op := p.cur().text
		p.advance()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = ExprBinary{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Expression, error) {
	if p.isPunct("!") || p.isPunct("-") {
		op := p.cur().text
		p.advance()
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return ExprUnary{Op: op, Expr: inner}, nil
	}
	return p.parsePrimaryExpr()
}

func (p *parser) parsePrimaryExpr() (Expression, error) {
	t := p.cur()
	switch {
	case p.isPunct("("):
		p.advance()
		e, err := p.parseExpression()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tVar:
		p.advance()
		return ExprVar{Var: Variable(t.text)}, nil
	case t.kind == tKeyword && builtinFuncs[t.text]:
		name := t.text
		p.advance()
		args, err := p.parseArgList()
		if err != nil {
			return nil, err
		}
		return ExprCall{Name: name, Args: args}, nil
	case t.kind == tIRI, t.kind == tPName:
		var iri rdf.IRI
		if t.kind == tIRI {
			iri = rdf.IRI(t.text)
		} else {
			var err error
			iri, err = p.prefixes.Expand(t.text)
			if err != nil {
				return nil, p.errf("%v", err)
			}
		}
		p.advance()
		if p.isPunct("(") { // custom function call
			args, err := p.parseArgList()
			if err != nil {
				return nil, err
			}
			return ExprCall{IRI: iri, Args: args}, nil
		}
		return ExprConst{Term: iri}, nil
	case t.kind == tString:
		term, err := p.parseTermNoVarCheck(true)
		if err != nil {
			return nil, err
		}
		return ExprConst{Term: term}, nil
	case t.kind == tNumber:
		p.advance()
		return ExprConst{Term: numericLiteral(t.text)}, nil
	case t.kind == tBoolean:
		p.advance()
		return ExprConst{Term: rdf.NewBoolean(t.text == "true")}, nil
	}
	return nil, p.errf("bad expression token %q", t.text)
}

func (p *parser) parseArgList() ([]Expression, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var args []Expression
	if p.isPunct(")") {
		p.advance()
		return args, nil
	}
	for {
		e, err := p.parseExpression()
		if err != nil {
			return nil, err
		}
		args = append(args, e)
		if p.isPunct(",") {
			p.advance()
			continue
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return args, nil
	}
}
