package sparql

import (
	"math/rand"
	"strings"
	"testing"
)

func mustFingerprint(t *testing.T, src string) (uint64, string) {
	t.Helper()
	q, err := ParseQuery(src, nil)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	if q.Fingerprint == 0 {
		t.Fatalf("parse %q: zero fingerprint", src)
	}
	return q.Fingerprint, q.CanonicalForm
}

func TestFingerprintConstantsCollide(t *testing.T) {
	// Same shape, different constants — every pair must share a fingerprint.
	cases := [][2]string{
		{
			`SELECT ?s WHERE { ?s <http://ex/p> "alpha" . }`,
			`SELECT ?s WHERE { ?s <http://ex/p> "omega" . }`,
		},
		{
			`SELECT ?s WHERE { ?s <http://ex/p> 5 . FILTER(?x > 10) }`,
			`SELECT ?s WHERE { ?s <http://ex/p> 99 . FILTER(?x > 2000) }`,
		},
		{
			`SELECT ?o WHERE { <http://ex/a> <http://ex/p> ?o . } LIMIT 5`,
			`SELECT ?o WHERE { <http://ex/b> <http://ex/p> ?o . } LIMIT 500`,
		},
	}
	for i, c := range cases {
		fa, forma := mustFingerprint(t, c[0])
		fb, formb := mustFingerprint(t, c[1])
		if fa != fb {
			t.Errorf("case %d: fingerprints differ:\n  %s -> %016x %s\n  %s -> %016x %s",
				i, c[0], fa, forma, c[1], fb, formb)
		}
	}
}

func TestFingerprintShapesDiffer(t *testing.T) {
	// Structurally different queries must not share a fingerprint.
	shapes := []string{
		`SELECT ?s WHERE { ?s <http://ex/p> "x" . }`,
		`SELECT ?s WHERE { ?s <http://ex/q> "x" . }`,                       // different predicate
		`SELECT ?s WHERE { ?s <http://ex/p> ?o . }`,                        // constant became a variable
		`SELECT ?s WHERE { ?s <http://ex/p> "x" . ?s <http://ex/q> ?o . }`, // extra pattern
		`SELECT DISTINCT ?s WHERE { ?s <http://ex/p> "x" . }`,              // DISTINCT
		`ASK { ?s <http://ex/p> "x" . }`,                                   // different form
		`SELECT ?s WHERE { ?s <http://ex/p> "x" . } LIMIT 10`,              // LIMIT present
		`SELECT ?s WHERE { ?s <http://ex/p> "x" . FILTER(?s != ?s) }`,      // filter added
		`SELECT ?s WHERE { ?s <http://ex/p> "x" . } ORDER BY ?s`,           // order added
		`SELECT ?s WHERE { OPTIONAL { ?s <http://ex/p> "x" . } }`,          // optional wrapper
		`SELECT ?s WHERE { ?s <http://ex/p>/<http://ex/q> "x" . }`,         // path shape
		`SELECT (COUNT(*) AS ?n) WHERE { ?s <http://ex/p> "x" . }`,         // aggregate
		`SELECT ?s WHERE { ?s <http://ex/p> 4 . }`,                         // literal datatype differs from "x"
	}
	seen := make(map[uint64]string, len(shapes))
	for _, src := range shapes {
		fp, form := mustFingerprint(t, src)
		if prev, dup := seen[fp]; dup {
			t.Errorf("shape collision %016x:\n  %s\n  %s\n  canonical: %s", fp, prev, src, form)
		}
		seen[fp] = src
	}
}

func TestFingerprintVariableNamesIrrelevant(t *testing.T) {
	a := `SELECT ?site ?inv WHERE { ?site <http://ex/has> ?inv . ?inv <http://ex/amount> ?amt . FILTER(?amt > 7) }`
	b := `SELECT ?x ?y WHERE { ?x <http://ex/has> ?y . ?y <http://ex/amount> ?z . FILTER(?z > 7) }`
	fa, _ := mustFingerprint(t, a)
	fb, _ := mustFingerprint(t, b)
	if fa != fb {
		t.Errorf("variable renaming changed the fingerprint: %016x vs %016x", fa, fb)
	}
	// But a genuinely different variable *structure* (join broken) must not
	// collide.
	c := `SELECT ?x ?y WHERE { ?x <http://ex/has> ?y . ?w <http://ex/amount> ?z . FILTER(?z > 7) }`
	fc, _ := mustFingerprint(t, c)
	if fa == fc {
		t.Errorf("broken join collided with the joined shape: %016x", fa)
	}
}

func TestFingerprintBGPOrderIrrelevant(t *testing.T) {
	patterns := []string{
		`?s <http://ex/type> <http://ex/Chemical> .`,
		`?s <http://ex/stored> ?site .`,
		`?site <http://ex/inside> ?region .`,
		`?region <http://ex/name> "plume" .`,
	}
	rng := rand.New(rand.NewSource(42))
	base := ""
	for trial := 0; trial < 20; trial++ {
		perm := rng.Perm(len(patterns))
		var sb strings.Builder
		sb.WriteString("SELECT ?s WHERE { ")
		for _, i := range perm {
			sb.WriteString(patterns[i])
			sb.WriteString(" ")
		}
		sb.WriteString("}")
		_, form := mustFingerprint(t, sb.String())
		if trial == 0 {
			base = form
		} else if form != base {
			t.Fatalf("permutation %v changed the canonical form:\n  %s\nvs base\n  %s", perm, form, base)
		}
	}
}

func TestCanonicalFormRedacts(t *testing.T) {
	src := `SELECT ?s WHERE { ?s <http://ex/name> "secret-value-42" . ?s <http://ex/code> 12345 . }`
	_, form := mustFingerprint(t, src)
	for _, leak := range []string{"secret-value-42", "12345"} {
		if strings.Contains(form, leak) {
			t.Errorf("canonical form leaks constant %q: %s", leak, form)
		}
	}
	if !strings.Contains(form, "$lit:") {
		t.Errorf("canonical form missing typed literal placeholder: %s", form)
	}
}

func TestFingerprintStableAcrossParses(t *testing.T) {
	src := `SELECT ?s ?o WHERE { ?s <http://ex/p> ?o . OPTIONAL { ?o <http://ex/q> "v" . } } ORDER BY ?s LIMIT 3`
	fp0, form0 := mustFingerprint(t, src)
	for i := 0; i < 5; i++ {
		fp, form := mustFingerprint(t, src)
		if fp != fp0 || form != form0 {
			t.Fatalf("reparse %d drifted: %016x %q vs %016x %q", i, fp, form, fp0, form0)
		}
	}
}

func TestEvalStatsSink(t *testing.T) {
	var got []EvalStats
	eng := fixture(t).SetStatsSink(func(s EvalStats) { got = append(got, s) })
	q := `SELECT ?s ?o WHERE { ?s <http://e/name> ?o . }`
	res, err := eng.Query(q)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("stats sink called %d times, want 1", len(got))
	}
	s := got[0]
	parsed, _ := ParseQuery(q, nil)
	if s.Fingerprint != parsed.Fingerprint {
		t.Errorf("sink fingerprint %016x != parsed %016x", s.Fingerprint, parsed.Fingerprint)
	}
	if s.Failed || s.Steps == 0 || s.Solutions != int64(len(res.Bindings)) {
		t.Errorf("unexpected stats: %+v", s)
	}
	if s.CanonicalForm == "" {
		t.Error("canonical form missing from stats")
	}
}

func TestCanonicalFormShape(t *testing.T) {
	q, err := ParseQuery(`SELECT ?who WHERE { ?who <http://ex/role> "admin" . } LIMIT 10`, nil)
	if err != nil {
		t.Fatal(err)
	}
	form := q.CanonicalForm
	for _, want := range []string{"SELECT ?v0", "<http://ex/role>", "$lit:", "LIMIT $n"} {
		if !strings.Contains(form, want) {
			t.Errorf("canonical form %q missing %q", form, want)
		}
	}
	if strings.Contains(form, "admin") || strings.Contains(form, "who") {
		t.Errorf("canonical form %q retains raw names/constants", form)
	}
}
