package sparql

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

type tokKind uint8

const (
	tEOF    tokKind = iota
	tIRI            // <...>
	tPName          // prefix:local (or prefix: / :local)
	tVar            // ?x or $x
	tString         // quoted literal (unescaped value)
	tLang           // @en
	tNumber
	tBoolean
	tKeyword // SELECT, WHERE, FILTER, ... (upper-cased) and 'a'
	tPunct   // { } ( ) . ; , * / | ^ + ? ! = != < <= > >= && || ^^ -
)

type tok struct {
	kind tokKind
	text string
	line int
	col  int
}

// ParseError is a SPARQL syntax error.
type ParseError struct {
	Line, Col int
	Msg       string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("sparql: %d:%d: %s", e.Line, e.Col, e.Msg)
}

var keywords = map[string]bool{
	"SELECT": true, "ASK": true, "CONSTRUCT": true, "WHERE": true,
	"FILTER": true, "OPTIONAL": true, "UNION": true, "PREFIX": true,
	"BASE": true, "DISTINCT": true, "REDUCED": true, "ORDER": true,
	"BY": true, "ASC": true, "DESC": true, "LIMIT": true, "OFFSET": true,
	"A": true, "TRUE": true, "FALSE": true, "NOT": true, "IN": true,
	"GROUP": true, "AS": true, "HAVING": true, "BIND": true,
	"EXISTS": true, "VALUES": true, "UNDEF": true,
	"GRAPH": true, "DESCRIBE": true,
	"COUNT": true, "SUM": true, "MIN": true, "MAX": true, "AVG": true,
}

// builtinFuncs are callable in expressions.
var builtinFuncs = map[string]bool{
	"BOUND": true, "STR": true, "LANG": true, "DATATYPE": true,
	"ISIRI": true, "ISURI": true, "ISBLANK": true, "ISLITERAL": true,
	"ISNUMERIC": true, "REGEX": true, "CONTAINS": true, "STRSTARTS": true,
	"STRENDS": true, "STRLEN": true, "UCASE": true, "LCASE": true,
	"ABS": true, "CEIL": true, "FLOOR": true, "ROUND": true,
	"SAMETERM": true, "LANGMATCHES": true, "COALESCE": true, "IF": true,
	"XSDINTEGER": true, "XSDDOUBLE": true,
}

type sqlexer struct {
	src       string
	pos, line int
	col       int
	toks      []tok
}

// lex tokenizes the whole query up front (queries are small).
func lex(src string) ([]tok, error) {
	l := &sqlexer{src: src, line: 1, col: 1}
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, t)
		if t.kind == tEOF {
			return l.toks, nil
		}
	}
}

func (l *sqlexer) errf(format string, args ...any) error {
	return &ParseError{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *sqlexer) advance(n int) {
	for i := 0; i < n && l.pos < len(l.src); i++ {
		if l.src[l.pos] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.pos++
	}
}

func (l *sqlexer) skip() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\r' || c == '\n' {
			l.advance(1)
		} else if c == '#' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance(1)
			}
		} else {
			return
		}
	}
}

func (l *sqlexer) at(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *sqlexer) next() (tok, error) {
	l.skip()
	line, col := l.line, l.col
	mk := func(k tokKind, text string) tok { return tok{kind: k, text: text, line: line, col: col} }
	if l.pos >= len(l.src) {
		return mk(tEOF, ""), nil
	}
	c := l.src[l.pos]
	switch c {
	case '<':
		// IRI ref or comparison. IRIs contain no spaces; '<' followed by
		// space, '=' or digit-start means comparator.
		if n := l.at(1); n == '=' {
			l.advance(2)
			return mk(tPunct, "<="), nil
		}
		end := strings.IndexAny(l.src[l.pos+1:], "> \t\n")
		if end >= 0 && l.src[l.pos+1+end] == '>' {
			text := l.src[l.pos+1 : l.pos+1+end]
			l.advance(end + 2)
			return mk(tIRI, text), nil
		}
		l.advance(1)
		return mk(tPunct, "<"), nil
	case '>':
		if l.at(1) == '=' {
			l.advance(2)
			return mk(tPunct, ">="), nil
		}
		l.advance(1)
		return mk(tPunct, ">"), nil
	case '?', '$':
		end := l.pos + 1
		for end < len(l.src) && isVarChar(l.src[end]) {
			end++
		}
		if end == l.pos+1 {
			// bare '?' is the path modifier
			l.advance(1)
			return mk(tPunct, "?"), nil
		}
		name := l.src[l.pos+1 : end]
		l.advance(end - l.pos)
		return mk(tVar, name), nil
	case '"', '\'':
		return l.lexString(mk)
	case '@':
		end := l.pos + 1
		for end < len(l.src) && (isAlnum(l.src[end]) || l.src[end] == '-') {
			end++
		}
		tag := l.src[l.pos+1 : end]
		if tag == "" {
			return tok{}, l.errf("empty language tag")
		}
		l.advance(end - l.pos)
		return mk(tLang, tag), nil
	case '|':
		if l.at(1) == '|' {
			l.advance(2)
			return mk(tPunct, "||"), nil
		}
		l.advance(1)
		return mk(tPunct, "|"), nil
	case '{', '}', '(', ')', '.', ';', ',', '*', '/', '+', '-':
		l.advance(1)
		return mk(tPunct, string(c)), nil
	case '^':
		if l.at(1) == '^' {
			l.advance(2)
			return mk(tPunct, "^^"), nil
		}
		l.advance(1)
		return mk(tPunct, "^"), nil
	case '!':
		if l.at(1) == '=' {
			l.advance(2)
			return mk(tPunct, "!="), nil
		}
		l.advance(1)
		return mk(tPunct, "!"), nil
	case '=':
		l.advance(1)
		return mk(tPunct, "="), nil
	case '&':
		if l.at(1) == '&' {
			l.advance(2)
			return mk(tPunct, "&&"), nil
		}
		return tok{}, l.errf("stray '&'")
	}
	if c >= '0' && c <= '9' {
		return l.lexNumber(mk)
	}
	// word: keyword, boolean, function name, or prefixed name
	end := l.pos
	for end < len(l.src) {
		ch := l.src[end]
		if isAlnum(ch) || ch == '_' || ch == '-' || ch == ':' || ch == '.' || ch >= utf8.RuneSelf {
			if ch >= utf8.RuneSelf {
				r, size := utf8.DecodeRuneInString(l.src[end:])
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
					break
				}
				end += size
				continue
			}
			end++
			continue
		}
		break
	}
	if end == l.pos {
		return tok{}, l.errf("unexpected character %q", c)
	}
	word := l.src[l.pos:end]
	for strings.HasSuffix(word, ".") {
		word = word[:len(word)-1]
	}
	if word == "" {
		return tok{}, l.errf("unexpected character %q", c)
	}
	l.advance(len(word))
	if strings.Contains(word, ":") {
		return mk(tPName, word), nil
	}
	up := strings.ToUpper(word)
	switch {
	case word == "a":
		return mk(tKeyword, "A"), nil
	case up == "TRUE" || up == "FALSE":
		return mk(tBoolean, strings.ToLower(up)), nil
	case keywords[up] || builtinFuncs[up]:
		return mk(tKeyword, up), nil
	}
	return tok{}, l.errf("unexpected token %q", word)
}

func (l *sqlexer) lexNumber(mk func(tokKind, string) tok) (tok, error) {
	end := l.pos
	for end < len(l.src) && l.src[end] >= '0' && l.src[end] <= '9' {
		end++
	}
	if end < len(l.src) && l.src[end] == '.' && end+1 < len(l.src) && l.src[end+1] >= '0' && l.src[end+1] <= '9' {
		end++
		for end < len(l.src) && l.src[end] >= '0' && l.src[end] <= '9' {
			end++
		}
	}
	if end < len(l.src) && (l.src[end] == 'e' || l.src[end] == 'E') {
		mark := end
		end++
		if end < len(l.src) && (l.src[end] == '+' || l.src[end] == '-') {
			end++
		}
		digits := 0
		for end < len(l.src) && l.src[end] >= '0' && l.src[end] <= '9' {
			end++
			digits++
		}
		if digits == 0 {
			end = mark
		}
	}
	text := l.src[l.pos:end]
	l.advance(len(text))
	return mk(tNumber, text), nil
}

func (l *sqlexer) lexString(mk func(tokKind, string) tok) (tok, error) {
	quote := l.src[l.pos]
	l.advance(1)
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case quote:
			l.advance(1)
			return mk(tString, sb.String()), nil
		case '\\':
			if l.pos+1 >= len(l.src) {
				return tok{}, l.errf("dangling escape")
			}
			esc := l.src[l.pos+1]
			switch esc {
			case 't':
				sb.WriteByte('\t')
			case 'n':
				sb.WriteByte('\n')
			case 'r':
				sb.WriteByte('\r')
			case '"', '\'', '\\':
				sb.WriteByte(esc)
			default:
				return tok{}, l.errf("unknown escape \\%c", esc)
			}
			l.advance(2)
		case '\n':
			return tok{}, l.errf("newline in string literal")
		default:
			sb.WriteByte(c)
			l.advance(1)
		}
	}
	return tok{}, l.errf("unterminated string literal")
}

func isAlnum(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

func isVarChar(c byte) bool { return isAlnum(c) || c == '_' }
