package sparql

import (
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
	"repro/internal/turtle"
)

// fixture builds a small feature dataset used across the tests.
func fixture(t *testing.T) *Engine {
	t.Helper()
	doc := `
@prefix ex: <http://e/> .
ex:stream1 a grdf:Feature ;
    ex:name "Rowlett Creek" ;
    ex:length 12.5 ;
    ex:flowsInto ex:stream2 .
ex:stream2 a grdf:Feature ;
    ex:name "Trinity River" ;
    ex:length 710 ;
    ex:flowsInto ex:gulf .
ex:gulf a grdf:Feature ;
    ex:name "Gulf of Mexico" .
ex:site1 a ex:ChemSite ;
    ex:name "North Texas Energy" ;
    ex:nearTo ex:stream1 ;
    ex:risk 4 .
ex:site2 a ex:ChemSite ;
    ex:name "Collin Chemicals" ;
    ex:risk 2 .
ex:stream1 rdfs:label "creek"@en .
`
	g, err := turtle.ParseString(doc)
	if err != nil {
		t.Fatalf("fixture: %v", err)
	}
	return NewEngine(store.FromGraph(g))
}

func sel(t *testing.T, e *Engine, q string) *Result {
	t.Helper()
	res, err := e.Query(q)
	if err != nil {
		t.Fatalf("Query(%s): %v", q, err)
	}
	return res
}

func TestSelectBasic(t *testing.T) {
	e := fixture(t)
	res := sel(t, e, `PREFIX ex: <http://e/> SELECT ?s WHERE { ?s a grdf:Feature }`)
	if len(res.Bindings) != 3 {
		t.Fatalf("got %d rows, want 3", len(res.Bindings))
	}
}

func TestSelectJoin(t *testing.T) {
	e := fixture(t)
	res := sel(t, e, `PREFIX ex: <http://e/>
SELECT ?name WHERE { ?site a ex:ChemSite . ?site ex:nearTo ?st . ?st ex:name ?name }`)
	if len(res.Bindings) != 1 {
		t.Fatalf("rows = %d", len(res.Bindings))
	}
	if got := res.Bindings[0][Variable("name")]; !got.Equal(rdf.NewString("Rowlett Creek")) {
		t.Errorf("name = %v", got)
	}
}

func TestSelectStar(t *testing.T) {
	e := fixture(t)
	res := sel(t, e, `PREFIX ex: <http://e/> SELECT * WHERE { ex:site1 ex:risk ?r }`)
	if len(res.Vars) != 1 || res.Vars[0] != "r" {
		t.Errorf("vars = %v", res.Vars)
	}
}

func TestFilterComparison(t *testing.T) {
	e := fixture(t)
	res := sel(t, e, `PREFIX ex: <http://e/>
SELECT ?s WHERE { ?s ex:risk ?r . FILTER(?r > 3) }`)
	if len(res.Bindings) != 1 {
		t.Fatalf("rows = %d", len(res.Bindings))
	}
	if got := res.Bindings[0][Variable("s")]; !got.Equal(rdf.IRI("http://e/site1")) {
		t.Errorf("s = %v", got)
	}
}

func TestFilterLogicAndFunctions(t *testing.T) {
	e := fixture(t)
	cases := []struct {
		q    string
		rows int
	}{
		{`PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:risk ?r . FILTER(?r > 1 && ?r < 3) }`, 1},
		{`PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:risk ?r . FILTER(?r = 4 || ?r = 2) }`, 2},
		{`PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:risk ?r . FILTER(!(?r = 4)) }`, 1},
		{`PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:name ?n . FILTER(CONTAINS(?n, "Creek")) }`, 1},
		{`PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:name ?n . FILTER(STRSTARTS(?n, "North")) }`, 1},
		{`PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:name ?n . FILTER(REGEX(?n, "^t", "i")) }`, 1},
		{`PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:name ?n . FILTER(STRLEN(?n) = 13) }`, 2},
		{`PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:risk ?r . FILTER(?r + 1 = 5) }`, 1},
		{`PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:risk ?r . FILTER(ISNUMERIC(?r)) }`, 2},
		{`PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:name ?n . FILTER(ISLITERAL(?n) && ISIRI(?s)) }`, 5},
		{`SELECT ?s WHERE { ?s rdfs:label ?l . FILTER(LANG(?l) = "en") }`, 1},
		{`SELECT ?s WHERE { ?s rdfs:label ?l . FILTER(LANGMATCHES(LANG(?l), "*")) }`, 1},
	}
	for _, c := range cases {
		res := sel(t, e, c.q)
		if len(res.Bindings) != c.rows {
			t.Errorf("%s\n rows = %d, want %d", c.q, len(res.Bindings), c.rows)
		}
	}
}

func TestOptional(t *testing.T) {
	e := fixture(t)
	res := sel(t, e, `PREFIX ex: <http://e/>
SELECT ?site ?st WHERE { ?site a ex:ChemSite . OPTIONAL { ?site ex:nearTo ?st } }`)
	if len(res.Bindings) != 2 {
		t.Fatalf("rows = %d", len(res.Bindings))
	}
	boundCount := 0
	for _, b := range res.Bindings {
		if _, ok := b[Variable("st")]; ok {
			boundCount++
		}
	}
	if boundCount != 1 {
		t.Errorf("bound st rows = %d, want 1", boundCount)
	}
}

func TestOptionalWithBoundFilter(t *testing.T) {
	e := fixture(t)
	res := sel(t, e, `PREFIX ex: <http://e/>
SELECT ?site WHERE { ?site a ex:ChemSite . OPTIONAL { ?site ex:nearTo ?st } FILTER(!BOUND(?st)) }`)
	if len(res.Bindings) != 1 {
		t.Fatalf("rows = %d", len(res.Bindings))
	}
	if got := res.Bindings[0][Variable("site")]; !got.Equal(rdf.IRI("http://e/site2")) {
		t.Errorf("site = %v", got)
	}
}

func TestUnion(t *testing.T) {
	e := fixture(t)
	res := sel(t, e, `PREFIX ex: <http://e/>
SELECT ?x WHERE { { ?x a ex:ChemSite } UNION { ?x a grdf:Feature } }`)
	if len(res.Bindings) != 5 {
		t.Fatalf("rows = %d, want 5", len(res.Bindings))
	}
}

func TestDistinctOrderLimitOffset(t *testing.T) {
	e := fixture(t)
	res := sel(t, e, `PREFIX ex: <http://e/>
SELECT DISTINCT ?r WHERE { ?s ex:risk ?r } ORDER BY DESC(?r)`)
	if len(res.Bindings) != 2 {
		t.Fatalf("rows = %d", len(res.Bindings))
	}
	if !res.Bindings[0][Variable("r")].Equal(rdf.NewInteger(4)) {
		t.Errorf("first = %v", res.Bindings[0][Variable("r")])
	}

	res = sel(t, e, `PREFIX ex: <http://e/>
SELECT ?n WHERE { ?s ex:name ?n } ORDER BY ?n LIMIT 2 OFFSET 1`)
	if len(res.Bindings) != 2 {
		t.Fatalf("rows = %d", len(res.Bindings))
	}
	if !res.Bindings[0][Variable("n")].Equal(rdf.NewString("Gulf of Mexico")) {
		t.Errorf("offset row = %v", res.Bindings[0][Variable("n")])
	}
}

func TestAsk(t *testing.T) {
	e := fixture(t)
	res := sel(t, e, `PREFIX ex: <http://e/> ASK { ex:site1 ex:risk 4 }`)
	if !res.Bool {
		t.Error("ASK = false, want true")
	}
	res = sel(t, e, `PREFIX ex: <http://e/> ASK { ex:site1 ex:risk 5 }`)
	if res.Bool {
		t.Error("ASK = true, want false")
	}
}

func TestConstruct(t *testing.T) {
	e := fixture(t)
	res := sel(t, e, `PREFIX ex: <http://e/>
CONSTRUCT { ?s ex:riskyName ?n } WHERE { ?s ex:risk ?r . ?s ex:name ?n . FILTER(?r > 3) }`)
	if res.Graph.Len() != 1 {
		t.Fatalf("graph len = %d:\n%s", res.Graph.Len(), res.Graph)
	}
	if !res.Graph.Has(rdf.T(rdf.IRI("http://e/site1"), rdf.IRI("http://e/riskyName"), rdf.NewString("North Texas Energy"))) {
		t.Errorf("constructed graph wrong:\n%s", res.Graph)
	}
}

func TestPropertyPathSeq(t *testing.T) {
	e := fixture(t)
	res := sel(t, e, `PREFIX ex: <http://e/>
SELECT ?n WHERE { ex:stream1 ex:flowsInto/ex:name ?n }`)
	if len(res.Bindings) != 1 || !res.Bindings[0][Variable("n")].Equal(rdf.NewString("Trinity River")) {
		t.Errorf("seq path = %v", res.Bindings)
	}
}

func TestPropertyPathPlusStar(t *testing.T) {
	e := fixture(t)
	res := sel(t, e, `PREFIX ex: <http://e/>
SELECT ?x WHERE { ex:stream1 ex:flowsInto+ ?x }`)
	if len(res.Bindings) != 2 {
		t.Fatalf("plus path rows = %d, want 2", len(res.Bindings))
	}
	res = sel(t, e, `PREFIX ex: <http://e/>
SELECT ?x WHERE { ex:stream1 ex:flowsInto* ?x }`)
	if len(res.Bindings) != 3 { // includes stream1 itself
		t.Fatalf("star path rows = %d, want 3", len(res.Bindings))
	}
}

func TestPropertyPathInverseAlt(t *testing.T) {
	e := fixture(t)
	res := sel(t, e, `PREFIX ex: <http://e/>
SELECT ?x WHERE { ex:stream2 ^ex:flowsInto ?x }`)
	if len(res.Bindings) != 1 || !res.Bindings[0][Variable("x")].Equal(rdf.IRI("http://e/stream1")) {
		t.Errorf("inverse path = %v", res.Bindings)
	}
	res = sel(t, e, `PREFIX ex: <http://e/>
SELECT ?x WHERE { ex:site1 (ex:nearTo|ex:risk) ?x }`)
	if len(res.Bindings) != 2 {
		t.Errorf("alt path rows = %d", len(res.Bindings))
	}
}

func TestPredicateVariable(t *testing.T) {
	e := fixture(t)
	res := sel(t, e, `PREFIX ex: <http://e/>
SELECT ?p ?o WHERE { ex:gulf ?p ?o }`)
	if len(res.Bindings) != 2 {
		t.Errorf("rows = %d", len(res.Bindings))
	}
}

func TestCustomFunction(t *testing.T) {
	e := fixture(t)
	e.RegisterFunc(rdf.IRI(rdf.GRDFNS+"alwaysTrue"), func(args []rdf.Term) (rdf.Term, error) {
		return rdf.NewBoolean(true), nil
	})
	res := sel(t, e, `PREFIX ex: <http://e/>
SELECT ?s WHERE { ?s a ex:ChemSite . FILTER(grdf:alwaysTrue(?s)) }`)
	if len(res.Bindings) != 2 {
		t.Errorf("rows = %d", len(res.Bindings))
	}
}

func TestUnknownCustomFunctionEliminates(t *testing.T) {
	e := fixture(t)
	res := sel(t, e, `PREFIX ex: <http://e/>
SELECT ?s WHERE { ?s a ex:ChemSite . FILTER(grdf:noSuchFn(?s)) }`)
	if len(res.Bindings) != 0 {
		t.Errorf("rows = %d, want 0 (errors eliminate solutions)", len(res.Bindings))
	}
}

func TestSubGroup(t *testing.T) {
	e := fixture(t)
	res := sel(t, e, `PREFIX ex: <http://e/>
SELECT ?s WHERE { { ?s a ex:ChemSite . ?s ex:risk ?r } FILTER(?r = 2) }`)
	if len(res.Bindings) != 1 {
		t.Errorf("rows = %d", len(res.Bindings))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT`,
		`SELECT ?s`,
		`SELECT ?s WHERE { ?s ?p }`,
		`SELECT ?s WHERE { ?s ?p ?o`,
		`FROB ?s WHERE { ?s ?p ?o }`,
		`SELECT ?s WHERE { ?s ?p ?o } ORDER`,
		`SELECT ?s WHERE { ?s ?p ?o } LIMIT x`,
		`SELECT ?s WHERE { "lit" ?p ?o }`,
		`SELECT ?s WHERE { ?s unknown:p ?o }`,
		`SELECT ?s WHERE { ?s ?p ?o } extra`,
		`SELECT ?s WHERE { FILTER() }`,
	}
	for _, q := range bad {
		if _, err := ParseQuery(q, nil); err == nil {
			t.Errorf("no error for %q", q)
		}
	}
}

func TestParseErrorPosition(t *testing.T) {
	_, err := ParseQuery("SELECT ?s WHERE {\n ?s ?p }", nil)
	if err == nil {
		t.Fatal("expected error")
	}
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Line != 2 {
		t.Errorf("Line = %d: %v", pe.Line, err)
	}
	if !strings.Contains(pe.Error(), "sparql:") {
		t.Errorf("Error() = %q", pe.Error())
	}
}

func TestEmptyGroupMatchesOnce(t *testing.T) {
	e := fixture(t)
	res := sel(t, e, `ASK {}`)
	if !res.Bool {
		t.Error("ASK {} should be true")
	}
}

func TestFilterTypeErrorEliminates(t *testing.T) {
	e := fixture(t)
	// Comparing a string to an integer is a type error: row eliminated, not
	// a query failure.
	res := sel(t, e, `PREFIX ex: <http://e/>
SELECT ?s WHERE { ?s ex:name ?n . FILTER(?n > 3) }`)
	if len(res.Bindings) != 0 {
		t.Errorf("rows = %d", len(res.Bindings))
	}
}

func TestOrderByMixedTypes(t *testing.T) {
	e := fixture(t)
	res := sel(t, e, `PREFIX ex: <http://e/>
SELECT ?o WHERE { ex:site1 ?p ?o } ORDER BY ?o`)
	if len(res.Bindings) != 4 {
		t.Fatalf("rows = %d", len(res.Bindings))
	}
	// IRIs sort before literals
	if res.Bindings[0][Variable("o")].Kind() != rdf.KindIRI {
		t.Errorf("first = %v", res.Bindings[0][Variable("o")])
	}
}

func TestAggregates(t *testing.T) {
	e := fixture(t)
	cases := []struct {
		q     string
		check func(*Result) bool
		desc  string
	}{
		{
			`PREFIX ex: <http://e/> SELECT (COUNT(*) AS ?n) WHERE { ?s a ex:ChemSite }`,
			func(r *Result) bool {
				return len(r.Bindings) == 1 && r.Bindings[0]["n"].Equal(rdf.NewInteger(2))
			},
			"COUNT(*)",
		},
		{
			`PREFIX ex: <http://e/> SELECT (COUNT(?s) AS ?n) WHERE { ?s ex:risk ?r }`,
			func(r *Result) bool { return r.Bindings[0]["n"].Equal(rdf.NewInteger(2)) },
			"COUNT(?s)",
		},
		{
			`PREFIX ex: <http://e/> SELECT (SUM(?r) AS ?total) WHERE { ?s ex:risk ?r }`,
			func(r *Result) bool { return r.Bindings[0]["total"].Equal(rdf.NewInteger(6)) },
			"SUM",
		},
		{
			`PREFIX ex: <http://e/> SELECT (AVG(?r) AS ?avg) WHERE { ?s ex:risk ?r }`,
			func(r *Result) bool { return r.Bindings[0]["avg"].Equal(rdf.NewDouble(3)) },
			"AVG",
		},
		{
			`PREFIX ex: <http://e/> SELECT (MIN(?r) AS ?lo) (MAX(?r) AS ?hi) WHERE { ?s ex:risk ?r }`,
			func(r *Result) bool {
				b := r.Bindings[0]
				lo, _ := b["lo"].(rdf.Literal).Int()
				hi, _ := b["hi"].(rdf.Literal).Int()
				return lo == 2 && hi == 4
			},
			"MIN/MAX",
		},
		{
			`PREFIX ex: <http://e/> SELECT (COUNT(DISTINCT ?t) AS ?n) WHERE { ?s a ?t }`,
			func(r *Result) bool { return r.Bindings[0]["n"].Equal(rdf.NewInteger(2)) },
			"COUNT DISTINCT",
		},
		{
			`PREFIX ex: <http://e/> SELECT (COUNT(*) AS ?n) WHERE { ?s a ex:Nothing }`,
			func(r *Result) bool {
				return len(r.Bindings) == 1 && r.Bindings[0]["n"].Equal(rdf.NewInteger(0))
			},
			"COUNT over empty",
		},
	}
	for _, c := range cases {
		res := sel(t, e, c.q)
		if !c.check(res) {
			t.Errorf("%s: bindings = %v", c.desc, res.Bindings)
		}
	}
}

func TestGroupBy(t *testing.T) {
	e := fixture(t)
	res := sel(t, e, `PREFIX ex: <http://e/>
SELECT ?t (COUNT(?s) AS ?n) WHERE { ?s a ?t } GROUP BY ?t ORDER BY DESC(?n)`)
	if len(res.Bindings) != 2 {
		t.Fatalf("groups = %d: %v", len(res.Bindings), res.Bindings)
	}
	if !res.Bindings[0]["n"].Equal(rdf.NewInteger(3)) { // 3 features
		t.Errorf("largest group = %v", res.Bindings[0])
	}
	if res.Vars[0] != "t" || res.Vars[1] != "n" {
		t.Errorf("vars = %v", res.Vars)
	}
}

func TestAggregateParseErrors(t *testing.T) {
	bad := []string{
		`SELECT (COUNT(?x) ?n) WHERE { ?s ?p ?x }`,   // missing AS
		`SELECT (FROB(?x) AS ?n) WHERE { ?s ?p ?x }`, // unknown agg
		`SELECT (SUM(*) AS ?n) WHERE { ?s ?p ?x }`,   // * outside COUNT
		`SELECT ?x WHERE { ?s ?p ?x } GROUP BY`,      // empty group by
	}
	for _, q := range bad {
		if _, err := ParseQuery(q, nil); err == nil {
			t.Errorf("no error for %q", q)
		}
	}
}

func TestBind(t *testing.T) {
	e := fixture(t)
	res := sel(t, e, `PREFIX ex: <http://e/>
SELECT ?s ?double WHERE { ?s ex:risk ?r . BIND(?r * 2 AS ?double) } ORDER BY ?double`)
	if len(res.Bindings) != 2 {
		t.Fatalf("rows = %d", len(res.Bindings))
	}
	if !res.Bindings[0]["double"].Equal(rdf.NewInteger(4)) ||
		!res.Bindings[1]["double"].Equal(rdf.NewInteger(8)) {
		t.Errorf("bindings = %v", res.Bindings)
	}
	// BIND feeding a later FILTER
	res = sel(t, e, `PREFIX ex: <http://e/>
SELECT ?s WHERE { ?s ex:risk ?r . BIND(?r * 2 AS ?d) FILTER(?d > 5) }`)
	if len(res.Bindings) != 1 {
		t.Errorf("filtered rows = %d", len(res.Bindings))
	}
	// BIND of an erroring expression leaves the var unbound, row survives
	res = sel(t, e, `PREFIX ex: <http://e/>
SELECT ?s ?bad WHERE { ?s ex:name ?n . BIND(?n * 2 AS ?bad) }`)
	if len(res.Bindings) != 5 {
		t.Fatalf("rows = %d", len(res.Bindings))
	}
	for _, b := range res.Bindings {
		if _, ok := b["bad"]; ok {
			t.Error("errored BIND bound a value")
		}
	}
	// string helper through BIND
	res = sel(t, e, `PREFIX ex: <http://e/>
SELECT ?up WHERE { ex:site2 ex:name ?n . BIND(UCASE(?n) AS ?up) }`)
	if len(res.Bindings) != 1 || !res.Bindings[0]["up"].Equal(rdf.NewString("COLLIN CHEMICALS")) {
		t.Errorf("UCASE bind = %v", res.Bindings)
	}
}

func TestBindParseErrors(t *testing.T) {
	for _, q := range []string{
		`SELECT ?s WHERE { BIND(1 ?x) }`,
		`SELECT ?s WHERE { BIND(1 AS x) }`,
		`SELECT ?s WHERE { BIND 1 AS ?x }`,
	} {
		if _, err := ParseQuery(q, nil); err == nil {
			t.Errorf("no error for %q", q)
		}
	}
}

func TestValuesSingleVar(t *testing.T) {
	e := fixture(t)
	res := sel(t, e, `PREFIX ex: <http://e/>
SELECT ?s ?n WHERE { VALUES ?s { ex:site1 ex:site2 } ?s ex:name ?n } ORDER BY ?n`)
	if len(res.Bindings) != 2 {
		t.Fatalf("rows = %d", len(res.Bindings))
	}
	if !res.Bindings[0]["n"].Equal(rdf.NewString("Collin Chemicals")) {
		t.Errorf("first = %v", res.Bindings[0])
	}
}

func TestValuesMultiVarAndUndef(t *testing.T) {
	e := fixture(t)
	res := sel(t, e, `PREFIX ex: <http://e/>
SELECT ?s ?r WHERE { VALUES (?s ?r) { (ex:site1 4) (ex:site2 UNDEF) } ?s ex:risk ?r } ORDER BY ?r`)
	if len(res.Bindings) != 2 {
		t.Fatalf("rows = %d: %v", len(res.Bindings), res.Bindings)
	}
	// row 1 fixes r=4 and joins; row 2 leaves r free and binds from data (2)
	if !res.Bindings[0]["r"].Equal(rdf.NewInteger(2)) || !res.Bindings[1]["r"].Equal(rdf.NewInteger(4)) {
		t.Errorf("bindings = %v", res.Bindings)
	}
	// a VALUES row that conflicts with data eliminates
	res = sel(t, e, `PREFIX ex: <http://e/>
SELECT ?s WHERE { VALUES (?s ?r) { (ex:site1 99) } ?s ex:risk ?r }`)
	if len(res.Bindings) != 0 {
		t.Errorf("conflicting VALUES joined: %v", res.Bindings)
	}
}

func TestValuesAfterPatterns(t *testing.T) {
	e := fixture(t)
	res := sel(t, e, `PREFIX ex: <http://e/>
SELECT ?s WHERE { ?s a ex:ChemSite . VALUES ?s { ex:site1 } }`)
	if len(res.Bindings) != 1 || !res.Bindings[0]["s"].Equal(rdf.IRI("http://e/site1")) {
		t.Errorf("post-pattern VALUES = %v", res.Bindings)
	}
}

func TestExistsNotExists(t *testing.T) {
	e := fixture(t)
	res := sel(t, e, `PREFIX ex: <http://e/>
SELECT ?s WHERE { ?s a ex:ChemSite . FILTER EXISTS { ?s ex:nearTo ?st } }`)
	if len(res.Bindings) != 1 || !res.Bindings[0]["s"].Equal(rdf.IRI("http://e/site1")) {
		t.Errorf("EXISTS = %v", res.Bindings)
	}
	res = sel(t, e, `PREFIX ex: <http://e/>
SELECT ?s WHERE { ?s a ex:ChemSite . FILTER NOT EXISTS { ?s ex:nearTo ?st } }`)
	if len(res.Bindings) != 1 || !res.Bindings[0]["s"].Equal(rdf.IRI("http://e/site2")) {
		t.Errorf("NOT EXISTS = %v", res.Bindings)
	}
}

func TestValuesParseErrors(t *testing.T) {
	bad := []string{
		`SELECT ?s WHERE { VALUES { ex:x } }`,
		`SELECT ?s WHERE { VALUES (?a ?b) { (1) } }`,
		`SELECT ?s WHERE { VALUES ?s { ?t } }`,
		`SELECT ?s WHERE { FILTER NOT { ?s ?p ?o } }`,
	}
	for _, q := range bad {
		if _, err := ParseQuery(q, nil); err == nil {
			t.Errorf("no error for %q", q)
		}
	}
}

func TestDescribe(t *testing.T) {
	e := fixture(t)
	res := sel(t, e, `PREFIX ex: <http://e/> DESCRIBE ex:site1`)
	if res.Kind != Describe {
		t.Fatalf("kind = %v", res.Kind)
	}
	if !res.Graph.Has(rdf.T(rdf.IRI("http://e/site1"), rdf.IRI("http://e/name"), rdf.NewString("North Texas Energy"))) {
		t.Errorf("description incomplete:\n%s", res.Graph)
	}
	// DESCRIBE with WHERE and a variable target
	res = sel(t, e, `PREFIX ex: <http://e/>
DESCRIBE ?s WHERE { ?s ex:risk ?r . FILTER(?r > 3) }`)
	if res.Graph.Len() == 0 {
		t.Fatal("empty description")
	}
	if len(res.Graph.Match(rdf.IRI("http://e/site2"), nil, nil)) != 0 {
		t.Error("unrelated resource described")
	}
	// unknown resource yields an empty graph, not an error
	res = sel(t, e, `DESCRIBE <http://e/nothing>`)
	if res.Graph.Len() != 0 {
		t.Errorf("ghost description: %s", res.Graph)
	}
}

func TestDescribeFollowsBlankNodes(t *testing.T) {
	g, err := turtle.ParseString(`
@prefix ex: <http://e/> .
ex:site ex:bounds [ ex:min "0,0" ; ex:max "9,9" ] .
`)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(store.FromGraph(g))
	res := sel(t, e, `PREFIX ex: <http://e/> DESCRIBE ex:site`)
	if res.Graph.Len() != 3 {
		t.Errorf("blank closure missing:\n%s", res.Graph)
	}
}

func TestGraphPattern(t *testing.T) {
	ds := store.NewDataset()
	hydro, _ := ds.Graph(rdf.IRI("http://g/hydro"), true)
	chem, _ := ds.Graph(rdf.IRI("http://g/chem"), true)
	g1, _ := turtle.ParseString(`@prefix ex: <http://e/> . ex:stream ex:name "Creek" .`)
	g2, _ := turtle.ParseString(`@prefix ex: <http://e/> . ex:site ex:name "Plant" .`)
	hydro.AddGraph(g1)
	chem.AddGraph(g2)
	ds.Default().AddGraph(rdf.GraphOf(rdf.T(rdf.IRI("http://e/root"), rdf.IRI("http://e/name"), rdf.NewString("Root"))))

	e := NewDatasetEngine(ds)
	// named graph by IRI
	res := sel(t, e, `PREFIX ex: <http://e/>
SELECT ?n WHERE { GRAPH <http://g/hydro> { ?s ex:name ?n } }`)
	if len(res.Bindings) != 1 || !res.Bindings[0]["n"].Equal(rdf.NewString("Creek")) {
		t.Errorf("named graph = %v", res.Bindings)
	}
	// graph variable enumerates named graphs (not the default graph)
	res = sel(t, e, `PREFIX ex: <http://e/>
SELECT ?g ?n WHERE { GRAPH ?g { ?s ex:name ?n } } ORDER BY ?n`)
	if len(res.Bindings) != 2 {
		t.Fatalf("rows = %d: %v", len(res.Bindings), res.Bindings)
	}
	if !res.Bindings[0]["g"].Equal(rdf.IRI("http://g/hydro")) {
		t.Errorf("graph binding = %v", res.Bindings[0])
	}
	// default graph patterns still see only the default graph
	res = sel(t, e, `PREFIX ex: <http://e/> SELECT ?n WHERE { ?s ex:name ?n }`)
	if len(res.Bindings) != 1 || !res.Bindings[0]["n"].Equal(rdf.NewString("Root")) {
		t.Errorf("default graph = %v", res.Bindings)
	}
	// missing named graph: no solutions
	res = sel(t, e, `PREFIX ex: <http://e/>
SELECT ?n WHERE { GRAPH <http://g/none> { ?s ex:name ?n } }`)
	if len(res.Bindings) != 0 {
		t.Errorf("ghost graph rows = %v", res.Bindings)
	}
	// cross-graph join: bind in one graph, test membership in another
	res = sel(t, e, `PREFIX ex: <http://e/>
ASK { GRAPH <http://g/hydro> { ?s ex:name "Creek" } GRAPH <http://g/chem> { ?p ex:name "Plant" } }`)
	if !res.Bool {
		t.Error("cross-graph conjunction failed")
	}
}

func TestGraphWithoutDatasetErrors(t *testing.T) {
	e := fixture(t)
	if _, err := e.Query(`SELECT ?s WHERE { GRAPH <http://g/x> { ?s ?p ?o } }`); err == nil {
		t.Error("GRAPH on store-backed engine succeeded")
	}
}

// TestASTStringForms exercises the Stringer implementations used in error
// messages and debugging output.
func TestASTStringForms(t *testing.T) {
	v := Variable("x")
	if v.String() != "?x" || v.Kind() != rdf.KindIRI || !v.Equal(Variable("x")) || v.Equal(Variable("y")) {
		t.Error("Variable methods wrong")
	}
	if Select.String() != "SELECT" || Ask.String() != "ASK" ||
		Construct.String() != "CONSTRUCT" || Describe.String() != "DESCRIBE" {
		t.Error("QueryKind strings wrong")
	}
	tp := TriplePattern{Subject: v, Predicate: Link{IRI: "http://e/p"}, Object: rdf.NewString("o")}
	if tp.String() != `?x <http://e/p> "o" .` {
		t.Errorf("TriplePattern = %q", tp.String())
	}
	paths := []struct {
		p    PathExpr
		want string
	}{
		{Link{IRI: "http://e/p"}, "<http://e/p>"},
		{VarPath{Var: "p"}, "?p"},
		{Inverse{Path: Link{IRI: "http://e/p"}}, "^<http://e/p>"},
		{Seq{Left: Link{IRI: "http://e/a"}, Right: Link{IRI: "http://e/b"}}, "<http://e/a>/<http://e/b>"},
		{Alt{Left: Link{IRI: "http://e/a"}, Right: Link{IRI: "http://e/b"}}, "<http://e/a>|<http://e/b>"},
		{Repeat{Path: Link{IRI: "http://e/p"}, Min: 0, Max: -1}, "(<http://e/p>)*"},
		{Repeat{Path: Link{IRI: "http://e/p"}, Min: 1, Max: -1}, "(<http://e/p>)+"},
		{Repeat{Path: Link{IRI: "http://e/p"}, Min: 0, Max: 1}, "(<http://e/p>)?"},
	}
	for _, c := range paths {
		if c.p.String() != c.want {
			t.Errorf("path String = %q, want %q", c.p.String(), c.want)
		}
	}
	exprs := []struct {
		e    Expression
		want string
	}{
		{ExprVar{Var: "x"}, "?x"},
		{ExprConst{Term: rdf.NewInteger(4)}, `"4"^^<http://www.w3.org/2001/XMLSchema#integer>`},
		{ExprUnary{Op: "!", Expr: ExprVar{Var: "x"}}, "!?x"},
		{ExprBinary{Op: "&&", Left: ExprVar{Var: "a"}, Right: ExprVar{Var: "b"}}, "(?a && ?b)"},
		{ExprCall{Name: "STR", Args: []Expression{ExprVar{Var: "x"}}}, "STR(?x)"},
		{ExprCall{IRI: "http://e/f", Args: nil}, "<http://e/f>()"},
		{ExprExists{}, "EXISTS {…}"},
		{ExprExists{Negate: true}, "NOT EXISTS {…}"},
	}
	for _, c := range exprs {
		if c.e.String() != c.want {
			t.Errorf("expr String = %q, want %q", c.e.String(), c.want)
		}
	}
	agg := Aggregate{Func: AggCount, Distinct: true, Arg: ExprVar{Var: "x"}, As: "n"}
	if agg.String() != "(COUNT(DISTINCT ?x) AS ?n)" {
		t.Errorf("agg String = %q", agg.String())
	}
	star := Aggregate{Func: AggCount, As: "n"}
	if star.String() != "(COUNT(*) AS ?n)" {
		t.Errorf("agg star String = %q", star.String())
	}
}

// More built-in function coverage.
func TestMoreBuiltins(t *testing.T) {
	e := fixture(t)
	cases := []struct {
		q    string
		rows int
	}{
		{`PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:length ?l . FILTER(CEIL(?l) = 13) }`, 1},
		{`PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:length ?l . FILTER(FLOOR(?l) = 12) }`, 1},
		{`PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:length ?l . FILTER(ROUND(?l) = 13) }`, 1},
		{`PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:risk ?r . FILTER(ABS(0 - ?r) = 4) }`, 1},
		{`PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:name ?n . FILTER(LCASE(?n) = "gulf of mexico") }`, 1},
		{`PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:name ?n . FILTER(STRENDS(?n, "River")) }`, 1},
		{`PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:risk ?r . FILTER(SAMETERM(?r, 4)) }`, 1},
		{`PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:risk ?r . FILTER(COALESCE(?missing, ?r) = 4) }`, 1},
		{`PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:risk ?r . FILTER(IF(?r > 3, true, false)) }`, 1},
		{`PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:risk ?r . FILTER(DATATYPE(?r) = xsd:integer) }`, 2},
		{`PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:risk ?r . FILTER(ISBLANK(?s)) }`, 0},
		{`PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:risk ?r . FILTER(STR(?s) = "http://e/site1") }`, 1},
		{`PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:name ?n . FILTER(XSDINTEGER("3") = 3) }`, 5},
		{`PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:risk ?r . FILTER(XSDDOUBLE(STR(?r)) = 4.0) }`, 1},
		{`PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:risk ?r . FILTER(-?r < 0) }`, 2},
		{`PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:risk ?r . FILTER(?r - 2 = 2 && ?r / 2 = 2) }`, 1},
	}
	for _, c := range cases {
		res := sel(t, e, c.q)
		if len(res.Bindings) != c.rows {
			t.Errorf("%s\nrows = %d, want %d", c.q, len(res.Bindings), c.rows)
		}
	}
}

func TestInOperator(t *testing.T) {
	e := fixture(t)
	res := sel(t, e, `PREFIX ex: <http://e/>
SELECT ?s WHERE { ?s ex:risk ?r . FILTER(?r IN (2, 9)) }`)
	if len(res.Bindings) != 1 || !res.Bindings[0]["s"].Equal(rdf.IRI("http://e/site2")) {
		t.Errorf("IN = %v", res.Bindings)
	}
	res = sel(t, e, `PREFIX ex: <http://e/>
SELECT ?s WHERE { ?s ex:risk ?r . FILTER(?r NOT IN (2, 9)) }`)
	if len(res.Bindings) != 1 || !res.Bindings[0]["s"].Equal(rdf.IRI("http://e/site1")) {
		t.Errorf("NOT IN = %v", res.Bindings)
	}
	res = sel(t, e, `PREFIX ex: <http://e/>
SELECT ?s WHERE { ?s a ?t . FILTER(?s IN (ex:gulf, ex:site1)) }`)
	if len(res.Bindings) != 2 {
		t.Errorf("IRI IN = %v", res.Bindings)
	}
	if _, err := ParseQuery(`SELECT ?s WHERE { ?s ?p ?o . FILTER(?o IN ()) }`, nil); err == nil {
		t.Error("empty IN accepted")
	}
}
