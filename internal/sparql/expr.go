package sparql

import (
	"context"
	"errors"
	"fmt"
	"math"
	"regexp"
	"strings"

	"repro/internal/rdf"
)

// errUnbound signals evaluation over an unbound variable; per SPARQL it
// eliminates the solution in FILTER context.
var errUnbound = errors.New("sparql: unbound variable in expression")

// evalExpr evaluates an expression under a binding.
func (e *Engine) evalExpr(ctx context.Context, expr Expression, b Binding) (rdf.Term, error) {
	switch v := expr.(type) {
	case ExprConst:
		return v.Term, nil

	case ExprVar:
		t, ok := b[v.Var]
		if !ok {
			return nil, errUnbound
		}
		return t, nil

	case ExprUnary:
		inner, err := e.evalExpr(ctx, v.Expr, b)
		if err != nil {
			return nil, err
		}
		switch v.Op {
		case "!":
			ok, err := effectiveBool(inner)
			if err != nil {
				return nil, err
			}
			return rdf.NewBoolean(!ok), nil
		case "-":
			lit, ok := inner.(rdf.Literal)
			if !ok || !lit.IsNumeric() {
				return nil, fmt.Errorf("sparql: unary minus on non-numeric %s", inner)
			}
			f, err := lit.Float()
			if err != nil {
				return nil, err
			}
			return rdf.NewDouble(-f), nil
		}
		return nil, fmt.Errorf("sparql: unknown unary op %q", v.Op)

	case ExprBinary:
		return e.evalBinary(ctx, v, b)

	case ExprCall:
		return e.evalCall(ctx, v, b)

	case ExprExists:
		sols, err := e.evalGroup(ctx, v.Group, []Binding{b})
		if err != nil {
			return nil, err
		}
		found := len(sols) > 0
		if v.Negate {
			found = !found
		}
		return rdf.NewBoolean(found), nil
	}
	return nil, fmt.Errorf("sparql: unknown expression %T", expr)
}

func (e *Engine) evalBinary(ctx context.Context, v ExprBinary, b Binding) (rdf.Term, error) {
	// Short-circuit logical operators; SPARQL's three-valued logic lets one
	// errored side be recovered by the other.
	switch v.Op {
	case "&&", "||":
		lt, lerr := e.evalExpr(ctx, v.Left, b)
		var lval bool
		if lerr == nil {
			lval, lerr = effectiveBool(lt)
		}
		rt, rerr := e.evalExpr(ctx, v.Right, b)
		var rval bool
		if rerr == nil {
			rval, rerr = effectiveBool(rt)
		}
		if v.Op == "&&" {
			switch {
			case lerr == nil && rerr == nil:
				return rdf.NewBoolean(lval && rval), nil
			case lerr == nil && !lval, rerr == nil && !rval:
				return rdf.NewBoolean(false), nil
			default:
				return nil, firstErr(lerr, rerr)
			}
		}
		switch {
		case lerr == nil && rerr == nil:
			return rdf.NewBoolean(lval || rval), nil
		case lerr == nil && lval, rerr == nil && rval:
			return rdf.NewBoolean(true), nil
		default:
			return nil, firstErr(lerr, rerr)
		}
	}

	lt, err := e.evalExpr(ctx, v.Left, b)
	if err != nil {
		return nil, err
	}
	rt, err := e.evalExpr(ctx, v.Right, b)
	if err != nil {
		return nil, err
	}

	switch v.Op {
	case "=", "!=":
		eq, err := termsEqual(lt, rt)
		if err != nil {
			return nil, err
		}
		if v.Op == "!=" {
			eq = !eq
		}
		return rdf.NewBoolean(eq), nil
	case "<", "<=", ">", ">=":
		ll, lok := lt.(rdf.Literal)
		rl, rok := rt.(rdf.Literal)
		if !lok || !rok {
			return nil, fmt.Errorf("sparql: ordering comparison on non-literals %s %s", lt, rt)
		}
		cmp, ok := rdf.CompareLiterals(ll, rl)
		if !ok {
			return nil, fmt.Errorf("sparql: incomparable literals %s %s", ll, rl)
		}
		var res bool
		switch v.Op {
		case "<":
			res = cmp < 0
		case "<=":
			res = cmp <= 0
		case ">":
			res = cmp > 0
		case ">=":
			res = cmp >= 0
		}
		return rdf.NewBoolean(res), nil
	case "+", "-", "*", "/":
		lf, rf, err := numericPair(lt, rt)
		if err != nil {
			return nil, err
		}
		var out float64
		switch v.Op {
		case "+":
			out = lf + rf
		case "-":
			out = lf - rf
		case "*":
			out = lf * rf
		case "/":
			if rf == 0 {
				return nil, fmt.Errorf("sparql: division by zero")
			}
			out = lf / rf
		}
		if out == math.Trunc(out) && math.Abs(out) < 1e15 &&
			isIntegerLit(lt) && isIntegerLit(rt) && v.Op != "/" {
			return rdf.NewInteger(int64(out)), nil
		}
		return rdf.NewDouble(out), nil
	}
	return nil, fmt.Errorf("sparql: unknown binary op %q", v.Op)
}

func isIntegerLit(t rdf.Term) bool {
	l, ok := t.(rdf.Literal)
	if !ok {
		return false
	}
	_, err := l.Int()
	return err == nil
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return errors.New("sparql: logic error")
}

// termsEqual implements SPARQL '=' semantics: value comparison for literals
// of comparable types, term identity otherwise.
func termsEqual(a, b rdf.Term) (bool, error) {
	la, aok := a.(rdf.Literal)
	lb, bok := b.(rdf.Literal)
	if aok && bok {
		if cmp, ok := rdf.CompareLiterals(la, lb); ok {
			return cmp == 0, nil
		}
		if la.Datatype == lb.Datatype && la.Lang == lb.Lang {
			return la.Value == lb.Value, nil
		}
		return false, fmt.Errorf("sparql: incomparable literals %s %s", la, lb)
	}
	if aok != bok {
		return false, nil
	}
	return a.Equal(b), nil
}

func numericPair(a, b rdf.Term) (float64, float64, error) {
	la, aok := a.(rdf.Literal)
	lb, bok := b.(rdf.Literal)
	if !aok || !bok || !la.IsNumeric() || !lb.IsNumeric() {
		return 0, 0, fmt.Errorf("sparql: arithmetic on non-numeric operands %s %s", a, b)
	}
	fa, err := la.Float()
	if err != nil {
		return 0, 0, err
	}
	fb, err := lb.Float()
	if err != nil {
		return 0, 0, err
	}
	return fa, fb, nil
}

// effectiveBool computes the SPARQL effective boolean value.
func effectiveBool(t rdf.Term) (bool, error) {
	l, ok := t.(rdf.Literal)
	if !ok {
		return false, fmt.Errorf("sparql: no boolean value for %s", t)
	}
	switch {
	case l.Datatype == rdf.XSDBoolean:
		return l.Bool()
	case l.IsNumeric():
		f, err := l.Float()
		if err != nil {
			return false, nil // invalid lexical form => false
		}
		return f != 0, nil
	case l.Datatype == rdf.XSDString || l.Lang != "":
		return l.Value != "", nil
	}
	return false, fmt.Errorf("sparql: no boolean value for %s", t)
}

func (e *Engine) evalCall(ctx context.Context, c ExprCall, b Binding) (rdf.Term, error) {
	// Custom extension function.
	if c.IRI != "" {
		fn, ok := e.funcs[c.IRI]
		if !ok {
			return nil, fmt.Errorf("sparql: unknown function %s", c.IRI)
		}
		args := make([]rdf.Term, len(c.Args))
		for i, a := range c.Args {
			v, err := e.evalExpr(ctx, a, b)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		return fn(args)
	}

	// BOUND takes a variable without evaluating it.
	if c.Name == "BOUND" {
		if len(c.Args) != 1 {
			return nil, fmt.Errorf("sparql: BOUND takes 1 argument")
		}
		ev, ok := c.Args[0].(ExprVar)
		if !ok {
			return nil, fmt.Errorf("sparql: BOUND argument must be a variable")
		}
		_, bound := b[ev.Var]
		return rdf.NewBoolean(bound), nil
	}

	// COALESCE returns the first argument that evaluates without error.
	if c.Name == "COALESCE" {
		for _, a := range c.Args {
			if v, err := e.evalExpr(ctx, a, b); err == nil {
				return v, nil
			}
		}
		return nil, fmt.Errorf("sparql: COALESCE has no valid argument")
	}

	// IF evaluates lazily.
	if c.Name == "IF" {
		if len(c.Args) != 3 {
			return nil, fmt.Errorf("sparql: IF takes 3 arguments")
		}
		cond, err := e.evalExpr(ctx, c.Args[0], b)
		if err != nil {
			return nil, err
		}
		ok, err := effectiveBool(cond)
		if err != nil {
			return nil, err
		}
		if ok {
			return e.evalExpr(ctx, c.Args[1], b)
		}
		return e.evalExpr(ctx, c.Args[2], b)
	}

	args := make([]rdf.Term, len(c.Args))
	for i, a := range c.Args {
		v, err := e.evalExpr(ctx, a, b)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("sparql: %s takes %d argument(s)", c.Name, n)
		}
		return nil
	}
	str := func(t rdf.Term) (string, error) {
		switch v := t.(type) {
		case rdf.Literal:
			return v.Value, nil
		case rdf.IRI:
			return string(v), nil
		}
		return "", fmt.Errorf("sparql: %s is not string-valued", t)
	}

	switch c.Name {
	case "STR":
		if err := need(1); err != nil {
			return nil, err
		}
		s, err := str(args[0])
		if err != nil {
			return nil, err
		}
		return rdf.NewString(s), nil
	case "LANG":
		if err := need(1); err != nil {
			return nil, err
		}
		l, ok := args[0].(rdf.Literal)
		if !ok {
			return nil, fmt.Errorf("sparql: LANG on non-literal")
		}
		return rdf.NewString(l.Lang), nil
	case "LANGMATCHES":
		if err := need(2); err != nil {
			return nil, err
		}
		tag, err1 := str(args[0])
		rng, err2 := str(args[1])
		if err1 != nil || err2 != nil {
			return nil, firstErr(err1, err2)
		}
		if rng == "*" {
			return rdf.NewBoolean(tag != ""), nil
		}
		return rdf.NewBoolean(strings.EqualFold(tag, rng) ||
			strings.HasPrefix(strings.ToLower(tag), strings.ToLower(rng)+"-")), nil
	case "DATATYPE":
		if err := need(1); err != nil {
			return nil, err
		}
		l, ok := args[0].(rdf.Literal)
		if !ok {
			return nil, fmt.Errorf("sparql: DATATYPE on non-literal")
		}
		if l.Lang != "" {
			return rdf.RDFLangString, nil
		}
		return l.Datatype, nil
	case "ISIRI", "ISURI":
		if err := need(1); err != nil {
			return nil, err
		}
		_, ok := args[0].(rdf.IRI)
		return rdf.NewBoolean(ok), nil
	case "ISBLANK":
		if err := need(1); err != nil {
			return nil, err
		}
		return rdf.NewBoolean(args[0].Kind() == rdf.KindBlank), nil
	case "ISLITERAL":
		if err := need(1); err != nil {
			return nil, err
		}
		return rdf.NewBoolean(args[0].Kind() == rdf.KindLiteral), nil
	case "ISNUMERIC":
		if err := need(1); err != nil {
			return nil, err
		}
		l, ok := args[0].(rdf.Literal)
		return rdf.NewBoolean(ok && l.IsNumeric()), nil
	case "SAMETERM":
		if err := need(2); err != nil {
			return nil, err
		}
		return rdf.NewBoolean(args[0].Equal(args[1])), nil
	case "REGEX":
		if len(args) != 2 && len(args) != 3 {
			return nil, fmt.Errorf("sparql: REGEX takes 2 or 3 arguments")
		}
		text, err1 := str(args[0])
		pat, err2 := str(args[1])
		if err1 != nil || err2 != nil {
			return nil, firstErr(err1, err2)
		}
		if len(args) == 3 {
			flags, _ := str(args[2])
			if strings.Contains(flags, "i") {
				pat = "(?i)" + pat
			}
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			return nil, fmt.Errorf("sparql: bad REGEX pattern: %w", err)
		}
		return rdf.NewBoolean(re.MatchString(text)), nil
	case "CONTAINS", "STRSTARTS", "STRENDS":
		if err := need(2); err != nil {
			return nil, err
		}
		a, err1 := str(args[0])
		s, err2 := str(args[1])
		if err1 != nil || err2 != nil {
			return nil, firstErr(err1, err2)
		}
		var res bool
		switch c.Name {
		case "CONTAINS":
			res = strings.Contains(a, s)
		case "STRSTARTS":
			res = strings.HasPrefix(a, s)
		case "STRENDS":
			res = strings.HasSuffix(a, s)
		}
		return rdf.NewBoolean(res), nil
	case "STRLEN":
		if err := need(1); err != nil {
			return nil, err
		}
		s, err := str(args[0])
		if err != nil {
			return nil, err
		}
		return rdf.NewInteger(int64(len([]rune(s)))), nil
	case "UCASE", "LCASE":
		if err := need(1); err != nil {
			return nil, err
		}
		s, err := str(args[0])
		if err != nil {
			return nil, err
		}
		if c.Name == "UCASE" {
			return rdf.NewString(strings.ToUpper(s)), nil
		}
		return rdf.NewString(strings.ToLower(s)), nil
	case "ABS", "CEIL", "FLOOR", "ROUND":
		if err := need(1); err != nil {
			return nil, err
		}
		l, ok := args[0].(rdf.Literal)
		if !ok || !l.IsNumeric() {
			return nil, fmt.Errorf("sparql: %s on non-numeric", c.Name)
		}
		f, err := l.Float()
		if err != nil {
			return nil, err
		}
		switch c.Name {
		case "ABS":
			f = math.Abs(f)
		case "CEIL":
			f = math.Ceil(f)
		case "FLOOR":
			f = math.Floor(f)
		case "ROUND":
			f = math.Round(f)
		}
		if l.Datatype == rdf.XSDInteger {
			return rdf.NewInteger(int64(f)), nil
		}
		return rdf.NewDouble(f), nil
	case "XSDINTEGER":
		if err := need(1); err != nil {
			return nil, err
		}
		s, err := str(args[0])
		if err != nil {
			return nil, err
		}
		return rdf.Literal{Value: strings.TrimSpace(s), Datatype: rdf.XSDInteger}, nil
	case "XSDDOUBLE":
		if err := need(1); err != nil {
			return nil, err
		}
		s, err := str(args[0])
		if err != nil {
			return nil, err
		}
		return rdf.Literal{Value: strings.TrimSpace(s), Datatype: rdf.XSDDouble}, nil
	}
	return nil, fmt.Errorf("sparql: unimplemented function %s", c.Name)
}
