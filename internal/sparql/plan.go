package sparql

import (
	"fmt"
	"strings"

	"repro/internal/rdf"
	"repro/internal/store"
)

// This file implements the selectivity-driven BGP planner. Before a basic
// graph pattern is joined, its triple patterns are greedily reordered so the
// cheapest remaining pattern (by estimated result cardinality against the
// store's per-position counters) runs next, and patterns connected to
// already-bound variables are strongly preferred over Cartesian products.
// The estimates come from store.EstimateIDs, which is O(1) per pattern, so
// planning cost is negligible next to evaluation.

// Cost-model tuning constants.
const (
	// boundVarShrink divides a pattern's estimate once per position holding
	// an already-bound variable: a bound position acts like an extra
	// constant, but we don't know its value at plan time, so we assume it
	// cuts the candidate set by this factor.
	boundVarShrink = 4.0
	// cartesianPenalty multiplies the cost of a pattern that shares no
	// variable with the bound set — executing it would form a Cartesian
	// product with everything joined so far.
	cartesianPenalty = 1000.0
	// pathCostFactor scales the store size into the cost of a composite
	// property path (sequences, alternations, closures), whose evaluation
	// may touch a large fraction of the graph; they are scheduled late so
	// their endpoints arrive as bound as possible.
	pathCostFactor = 10.0
)

// PlanStep is one scheduled triple pattern.
type PlanStep struct {
	// Pattern is the triple pattern to execute at this position.
	Pattern TriplePattern
	// Index is the pattern's position in the original BGP (0-based).
	Index int
	// Estimate is the planner's cost estimate at selection time.
	Estimate float64
}

// Plan is a selectivity-ordered execution schedule for one BGP.
type Plan struct {
	Steps []PlanStep
	// Reordered reports whether the schedule deviates from textual order.
	Reordered bool
}

// Patterns returns the scheduled patterns in execution order.
func (p Plan) Patterns() []TriplePattern {
	out := make([]TriplePattern, len(p.Steps))
	for i, s := range p.Steps {
		out[i] = s.Pattern
	}
	return out
}

// Explain renders the plan in EXPLAIN style, one line per step with the
// original pattern index and the cost estimate that selected it.
func (p Plan) Explain() string {
	var sb strings.Builder
	if p.Reordered {
		sb.WriteString("BGP plan (reordered):\n")
	} else {
		sb.WriteString("BGP plan (textual order):\n")
	}
	for i, s := range p.Steps {
		fmt.Fprintf(&sb, "  %d. [pattern %d, est %.4g] %s\n", i+1, s.Index, s.Estimate, s.Pattern)
	}
	return sb.String()
}

// patternVars appends the variables of tp (subject, path, object) to out.
func patternVars(tp TriplePattern, out map[Variable]struct{}) {
	if v, ok := tp.Subject.(Variable); ok {
		out[v] = struct{}{}
	}
	pathVars(tp.Predicate, out)
	if v, ok := tp.Object.(Variable); ok {
		out[v] = struct{}{}
	}
}

func pathVars(p PathExpr, out map[Variable]struct{}) {
	switch pe := p.(type) {
	case VarPath:
		out[pe.Var] = struct{}{}
	case Inverse:
		pathVars(pe.Path, out)
	case Seq:
		pathVars(pe.Left, out)
		pathVars(pe.Right, out)
	case Alt:
		pathVars(pe.Left, out)
		pathVars(pe.Right, out)
	case Repeat:
		pathVars(pe.Path, out)
	}
}

// isCompositePath reports whether the pattern's predicate needs the
// term-level path evaluator (anything but a plain IRI link or a predicate
// variable).
func isCompositePath(p PathExpr) bool {
	switch p.(type) {
	case Link, VarPath:
		return false
	default:
		return true
	}
}

// sharesVar reports whether the pattern mentions any variable in bound.
func sharesVar(tp TriplePattern, bound map[Variable]struct{}) bool {
	vars := make(map[Variable]struct{}, 3)
	patternVars(tp, vars)
	for v := range vars {
		if _, ok := bound[v]; ok {
			return true
		}
	}
	return false
}

// hasVar reports whether the pattern mentions any variable at all.
func hasVar(tp TriplePattern) bool {
	vars := make(map[Variable]struct{}, 3)
	patternVars(tp, vars)
	return len(vars) > 0
}

// estimatePattern computes the cost of running tp next, given the set of
// variables bound by previously scheduled patterns.
func estimatePattern(st store.Reader, tp TriplePattern, bound map[Variable]struct{}) float64 {
	var cost float64
	if isCompositePath(tp.Predicate) {
		// Closures and sequences can traverse a large share of the graph;
		// their true cost is unknowable in O(1), so treat them as heavy.
		cost = float64(st.Len())*pathCostFactor + 1
	} else {
		// Resolve constant positions to dictionary IDs; a constant that was
		// never interned matches nothing, which makes the pattern maximally
		// selective — scheduling it first short-circuits the whole BGP.
		var sid, pid, oid store.ID
		lookup := func(t rdf.Term) (store.ID, bool) {
			id, ok := st.LookupID(t)
			if !ok {
				return store.NoID, false
			}
			return id, true
		}
		if _, isVar := tp.Subject.(Variable); !isVar {
			id, ok := lookup(tp.Subject)
			if !ok {
				return 0
			}
			sid = id
		}
		if link, ok := tp.Predicate.(Link); ok {
			id, ok := lookup(link.IRI)
			if !ok {
				return 0
			}
			pid = id
		}
		if _, isVar := tp.Object.(Variable); !isVar {
			id, ok := lookup(tp.Object)
			if !ok {
				return 0
			}
			oid = id
		}
		cost = float64(st.EstimateIDs(sid, pid, oid))
		// Bound variables act as constants whose value we don't know yet:
		// assume each shrinks the match set.
		shrink := func(t rdf.Term) {
			if v, ok := t.(Variable); ok {
				if _, b := bound[v]; b {
					cost /= boundVarShrink
				}
			}
		}
		shrink(tp.Subject)
		if vp, ok := tp.Predicate.(VarPath); ok {
			shrink(vp.Var)
		}
		shrink(tp.Object)
	}
	if len(bound) > 0 && hasVar(tp) && !sharesVar(tp, bound) {
		cost = cost*cartesianPenalty + cartesianPenalty
	}
	return cost
}

// PlanBGP schedules the patterns of one BGP greedily by estimated cost.
// bound holds variables already bound by the enclosing group (may be nil).
// Ties keep textual order, so a store with uniform statistics degrades to
// the old behavior rather than an arbitrary shuffle.
func PlanBGP(st store.Reader, patterns []TriplePattern, bound map[Variable]struct{}) Plan {
	n := len(patterns)
	plan := Plan{Steps: make([]PlanStep, 0, n)}
	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = i
	}
	boundNow := make(map[Variable]struct{}, len(bound)+2*n)
	for v := range bound {
		boundNow[v] = struct{}{}
	}
	for len(remaining) > 0 {
		bestPos := 0
		bestCost := estimatePattern(st, patterns[remaining[0]], boundNow)
		for pos := 1; pos < len(remaining); pos++ {
			c := estimatePattern(st, patterns[remaining[pos]], boundNow)
			if c < bestCost {
				bestCost, bestPos = c, pos
			}
		}
		idx := remaining[bestPos]
		plan.Steps = append(plan.Steps, PlanStep{Pattern: patterns[idx], Index: idx, Estimate: bestCost})
		patternVars(patterns[idx], boundNow)
		remaining = append(remaining[:bestPos], remaining[bestPos+1:]...)
	}
	for i, s := range plan.Steps {
		if s.Index != i {
			plan.Reordered = true
			break
		}
	}
	return plan
}

// Explain parses src and returns the EXPLAIN rendering of every BGP plan in
// the query, in pattern-tree order. It does not evaluate the query.
func (e *Engine) Explain(src string) (string, error) {
	q, err := ParseQuery(src, nil)
	if err != nil {
		return "", err
	}
	e = e.pinned()
	var sb strings.Builder
	e.explainGroup(q.Where, make(map[Variable]struct{}), &sb)
	if sb.Len() == 0 {
		return "no basic graph patterns\n", nil
	}
	return sb.String(), nil
}

// explainGroup walks the group tree planning each BGP with the variables
// that earlier elements of the same group would have bound.
func (e *Engine) explainGroup(g *GroupPattern, bound map[Variable]struct{}, sb *strings.Builder) {
	for _, el := range g.Elements {
		switch v := el.(type) {
		case *BGP:
			plan := PlanBGP(e.store, v.Patterns, bound)
			sb.WriteString(plan.Explain())
			for _, tp := range v.Patterns {
				patternVars(tp, bound)
			}
		case *Optional:
			e.explainGroup(v.Group, bound, sb)
		case *Union:
			e.explainGroup(v.Left, bound, sb)
			e.explainGroup(v.Right, bound, sb)
		case *SubGroup:
			e.explainGroup(v.Group, bound, sb)
		case *GraphPattern:
			e.explainGroup(v.Group, bound, sb)
		case *Bind:
			bound[v.Var] = struct{}{}
		case *Values:
			for _, vv := range v.Vars {
				bound[vv] = struct{}{}
			}
		}
	}
}
