package sparql

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"repro/internal/rdf"
)

// This file implements query fingerprinting: a stable 64-bit identity for a
// query's *shape*, computed once at parse time. Two queries share a
// fingerprint when they differ only in constants, variable names or the
// textual order of triple patterns inside a BGP — the equivalence classes a
// workload profile wants to aggregate over. The canonical form doubles as
// the redacted example query surfaced by /v1/queries: every literal and
// non-predicate IRI is already replaced by a typed placeholder, so no data
// values leak into observability output.
//
// Canonicalization rules:
//
//   - Constants become typed placeholders: IRIs in subject/object position
//     render as $iri, blank nodes as $blank, literals as $lit:<datatype>
//     (language tags collapse into rdf:langString), LIMIT/OFFSET values as
//     $n, VALUES rows as $rows. Predicate-position IRIs (including every
//     step of a property path) and function names are preserved: they define
//     the shape.
//   - Variables are renamed positionally: ?v0, ?v1, … in order of first
//     appearance in the canonical rendering.
//   - The patterns of each BGP are sorted by a name-free shape key before
//     variables are numbered, so permuting patterns inside a BGP does not
//     change the fingerprint. (Permutations of identically-shaped patterns
//     that share variables differently can still diverge; full graph
//     canonicalization is not worth its cost here.)

// varMark delimits an unnumbered variable reference in the intermediate
// rendering; variable names never contain NUL.
const varMark = "\x00"

// FingerprintQuery computes the canonical form of q and its FNV-64a hash.
// ParseQuery calls it once per parse and stores both on the Query.
func FingerprintQuery(q *Query) (uint64, string) {
	form := CanonicalForm(q)
	h := fnv.New64a()
	h.Write([]byte(form))
	return h.Sum64(), form
}

// CanonicalForm renders q's normalized shape (see the file comment for the
// rules). The result is deterministic for a given parsed query.
func CanonicalForm(q *Query) string {
	var c canonWriter
	c.query(q)
	return numberVars(c.sb.String())
}

// canonWriter renders AST nodes into the intermediate canonical string.
// With anonVars set, variables render as a bare "?" — the name-free shape
// key used to order BGP patterns before numbering.
type canonWriter struct {
	sb       strings.Builder
	anonVars bool
}

func (c *canonWriter) str(s string) { c.sb.WriteString(s) }

func (c *canonWriter) variable(v Variable) {
	if c.anonVars {
		c.str("?")
		return
	}
	c.str(varMark)
	c.str(string(v))
	c.str(varMark)
}

func (c *canonWriter) query(q *Query) {
	c.str(q.Kind.String())
	if q.Distinct {
		c.str(" DISTINCT")
	}
	switch q.Kind {
	case Select:
		if len(q.Vars) == 0 && len(q.Aggregates) == 0 {
			c.str(" *")
		}
		for _, v := range q.Vars {
			c.str(" ")
			c.variable(v)
		}
		for _, a := range q.Aggregates {
			c.str(" (")
			c.str(string(a.Func))
			if a.Distinct {
				c.str(" DISTINCT")
			}
			c.str("(")
			if a.Arg != nil {
				c.expr(a.Arg)
			} else {
				c.str("*")
			}
			c.str(") AS ")
			c.variable(a.As)
			c.str(")")
		}
	case Construct:
		c.str(" ")
		c.patterns(q.Template)
	case Describe:
		for _, t := range q.DescribeTargets {
			c.str(" ")
			c.term(t)
		}
	}
	if q.Where != nil {
		c.str(" WHERE ")
		c.group(q.Where)
	}
	for i, v := range q.GroupBy {
		if i == 0 {
			c.str(" GROUP BY")
		}
		c.str(" ")
		c.variable(v)
	}
	for i, k := range q.OrderBy {
		if i == 0 {
			c.str(" ORDER BY")
		}
		c.str(" ")
		c.expr(k.Expr)
		if k.Desc {
			c.str(" DESC")
		}
	}
	if q.Limit >= 0 {
		c.str(" LIMIT $n")
	}
	if q.Offset > 0 {
		c.str(" OFFSET $n")
	}
}

func (c *canonWriter) group(g *GroupPattern) {
	c.str("{")
	for i, el := range g.Elements {
		if i > 0 {
			c.str(" ")
		}
		switch v := el.(type) {
		case *BGP:
			c.patterns(v.Patterns)
		case *Filter:
			c.str("FILTER(")
			c.expr(v.Expr)
			c.str(")")
		case *Optional:
			c.str("OPTIONAL")
			c.group(v.Group)
		case *Union:
			c.str("UNION(")
			c.group(v.Left)
			c.str(",")
			c.group(v.Right)
			c.str(")")
		case *Bind:
			c.str("BIND(")
			c.expr(v.Expr)
			c.str(" AS ")
			c.variable(v.Var)
			c.str(")")
		case *Values:
			c.str("VALUES(")
			for j, vv := range v.Vars {
				if j > 0 {
					c.str(" ")
				}
				c.variable(vv)
			}
			c.str(") $rows")
		case *GraphPattern:
			c.str("GRAPH ")
			c.term(v.Name)
			c.group(v.Group)
		case *SubGroup:
			c.group(v.Group)
		}
	}
	c.str("}")
}

// patterns renders a BGP's triple patterns, ordered by their name-free shape
// key (ties keep textual order, so the sort is total and stable).
func (c *canonWriter) patterns(ps []TriplePattern) {
	order := make([]int, len(ps))
	for i := range order {
		order[i] = i
	}
	if !c.anonVars {
		keys := make([]string, len(ps))
		for i, tp := range ps {
			keys[i] = patternShapeKey(tp)
		}
		sort.SliceStable(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })
	}
	c.str("BGP[")
	for i, idx := range order {
		if i > 0 {
			c.str(" ")
		}
		c.pattern(ps[idx])
	}
	c.str("]")
}

// patternShapeKey renders one pattern with anonymous variables: the sort key
// that makes BGP order canonical without depending on variable names.
func patternShapeKey(tp TriplePattern) string {
	k := canonWriter{anonVars: true}
	k.pattern(tp)
	return k.sb.String()
}

func (c *canonWriter) pattern(tp TriplePattern) {
	c.term(tp.Subject)
	c.str(" ")
	c.path(tp.Predicate)
	c.str(" ")
	c.term(tp.Object)
	c.str(".")
}

// term renders a subject/object position: variables by reference, constants
// as typed placeholders.
func (c *canonWriter) term(t rdf.Term) {
	if v, ok := t.(Variable); ok {
		c.variable(v)
		return
	}
	switch tt := t.(type) {
	case rdf.Literal:
		c.str("$lit:")
		c.str(string(tt.Datatype))
	case rdf.BlankNode:
		c.str("$blank")
	default:
		c.str("$iri")
	}
}

// path renders a predicate-position path. Path IRIs are preserved — the
// predicate is the backbone of a query's shape.
func (c *canonWriter) path(p PathExpr) {
	switch pe := p.(type) {
	case Link:
		c.str(pe.IRI.String())
	case VarPath:
		c.variable(pe.Var)
	case Inverse:
		c.str("^")
		c.path(pe.Path)
	case Seq:
		c.str("(")
		c.path(pe.Left)
		c.str("/")
		c.path(pe.Right)
		c.str(")")
	case Alt:
		c.str("(")
		c.path(pe.Left)
		c.str("|")
		c.path(pe.Right)
		c.str(")")
	case Repeat:
		c.str("(")
		c.path(pe.Path)
		c.str(fmt.Sprintf("){%d,%d}", pe.Min, pe.Max))
	}
}

func (c *canonWriter) expr(e Expression) {
	switch ex := e.(type) {
	case ExprVar:
		c.variable(ex.Var)
	case ExprConst:
		c.term(ex.Term)
	case ExprUnary:
		c.str(ex.Op)
		c.expr(ex.Expr)
	case ExprBinary:
		c.str("(")
		c.expr(ex.Left)
		c.str(" ")
		c.str(ex.Op)
		c.str(" ")
		c.expr(ex.Right)
		c.str(")")
	case ExprExists:
		if ex.Negate {
			c.str("NOT ")
		}
		c.str("EXISTS")
		c.group(ex.Group)
	case ExprCall:
		if ex.Name != "" {
			c.str(ex.Name)
		} else {
			c.str(ex.IRI.String())
		}
		c.str("(")
		for i, a := range ex.Args {
			if i > 0 {
				c.str(",")
			}
			c.expr(a)
		}
		c.str(")")
	}
}

// numberVars rewrites the intermediate rendering's NUL-delimited variable
// references into positional names (?v0, ?v1, …) assigned in order of first
// appearance.
func numberVars(s string) string {
	if !strings.Contains(s, varMark) {
		return s
	}
	var out strings.Builder
	out.Grow(len(s))
	names := make(map[string]int)
	for {
		i := strings.IndexByte(s, 0)
		if i < 0 {
			out.WriteString(s)
			break
		}
		out.WriteString(s[:i])
		rest := s[i+1:]
		j := strings.IndexByte(rest, 0)
		if j < 0 { // unterminated mark: cannot happen, but stay total
			out.WriteString(rest)
			break
		}
		name := rest[:j]
		n, ok := names[name]
		if !ok {
			n = len(names)
			names[name] = n
		}
		fmt.Fprintf(&out, "?v%d", n)
		s = rest[j+1:]
	}
	return out.String()
}
