package sparql

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/rdf"
	"repro/internal/store"
)

const planNS = "http://plan.example/"

func planIRI(s string) rdf.IRI { return rdf.IRI(planNS + s) }

// planFixture builds a store with controlled cardinalities: nSites subjects
// typed Site each linked to one record, of which nCoded records carry the
// code literal "X9".
func planFixture(nSites, nCoded int) *store.Store {
	st := store.New()
	for i := 0; i < nSites; i++ {
		site := planIRI(fmt.Sprintf("site%d", i))
		rec := planIRI(fmt.Sprintf("rec%d", i))
		st.Add(rdf.T(site, rdf.RDFType, planIRI("Site")))
		st.Add(rdf.T(site, planIRI("hasRecord"), rec))
		if i < nCoded {
			st.Add(rdf.T(rec, planIRI("code"), rdf.NewString("X9")))
		}
	}
	return st
}

func TestPlanBGPSelectivityOrdering(t *testing.T) {
	st := planFixture(100, 5)
	patterns := []TriplePattern{
		{Subject: Variable("s"), Predicate: Link{IRI: rdf.RDFType}, Object: planIRI("Site")},
		{Subject: Variable("s"), Predicate: Link{IRI: planIRI("hasRecord")}, Object: Variable("r")},
		{Subject: Variable("r"), Predicate: Link{IRI: planIRI("code")}, Object: rdf.NewString("X9")},
	}
	plan := PlanBGP(st, patterns, nil)
	if !plan.Reordered {
		t.Fatal("expected plan to reorder: code pattern is far more selective")
	}
	// The code pattern (5 matches) must run first; the hasRecord chain
	// pattern shares ?r so it beats the disconnected type pattern.
	if got := []int{plan.Steps[0].Index, plan.Steps[1].Index, plan.Steps[2].Index}; got[0] != 2 || got[1] != 1 || got[2] != 0 {
		t.Fatalf("plan order = %v, want [2 1 0]\n%s", got, plan.Explain())
	}
}

func TestPlanBGPMissingConstantRunsFirst(t *testing.T) {
	st := planFixture(50, 5)
	patterns := []TriplePattern{
		{Subject: Variable("s"), Predicate: Link{IRI: rdf.RDFType}, Object: planIRI("Site")},
		{Subject: Variable("s"), Predicate: Link{IRI: planIRI("neverSeen")}, Object: Variable("x")},
	}
	plan := PlanBGP(st, patterns, nil)
	if plan.Steps[0].Index != 1 || plan.Steps[0].Estimate != 0 {
		t.Fatalf("uninterned-constant pattern should be scheduled first with estimate 0:\n%s", plan.Explain())
	}
}

func TestPlanBGPTiesKeepTextualOrder(t *testing.T) {
	st := planFixture(10, 10)
	// Two patterns with identical shape and cardinality must stay in order.
	patterns := []TriplePattern{
		{Subject: Variable("a"), Predicate: Link{IRI: planIRI("hasRecord")}, Object: Variable("b")},
		{Subject: Variable("b"), Predicate: Link{IRI: planIRI("hasRecord")}, Object: Variable("c")},
	}
	plan := PlanBGP(st, patterns, nil)
	if plan.Steps[0].Index != 0 {
		t.Fatalf("tie should keep textual order:\n%s", plan.Explain())
	}
}

func TestPlanBGPBoundVarsShrinkEstimates(t *testing.T) {
	st := planFixture(100, 5)
	tp := TriplePattern{Subject: Variable("s"), Predicate: Link{IRI: planIRI("hasRecord")}, Object: Variable("r")}
	free := estimatePattern(st, tp, nil)
	bound := estimatePattern(st, tp, map[Variable]struct{}{"s": {}})
	if bound >= free {
		t.Fatalf("bound-subject estimate %.1f should be below free estimate %.1f", bound, free)
	}
}

func TestExplainRendersPlan(t *testing.T) {
	st := planFixture(20, 2)
	e := NewEngine(st)
	out, err := e.Explain(fmt.Sprintf(
		`SELECT ?s WHERE { ?s a <%sSite> . ?s <%shasRecord> ?r . ?r <%scode> "X9" }`,
		planNS, planNS, planNS))
	if err != nil {
		t.Fatal(err)
	}
	if want := "BGP plan (reordered):"; !contains(out, want) {
		t.Fatalf("Explain output missing %q:\n%s", want, out)
	}
	if !contains(out, "[pattern 2") {
		t.Fatalf("Explain output should schedule the code pattern first:\n%s", out)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestEvalCtxPreCanceled(t *testing.T) {
	st := planFixture(10, 2)
	e := NewEngine(st)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.QueryCtx(ctx, fmt.Sprintf(`SELECT ?s WHERE { ?s a <%sSite> }`, planNS))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestCancellationMidBGPReturnsPromptly(t *testing.T) {
	// A store big enough that the deliberately Cartesian query below runs
	// for a long time under the static order; cancellation must cut it
	// short between join steps.
	st := store.New()
	for i := 0; i < 800; i++ {
		st.Add(rdf.T(planIRI(fmt.Sprintf("a%d", i)), planIRI("p"), planIRI(fmt.Sprintf("b%d", i))))
		st.Add(rdf.T(planIRI(fmt.Sprintf("c%d", i)), planIRI("q"), planIRI(fmt.Sprintf("d%d", i))))
	}
	e := NewEngine(st).SetPlanning(false)
	q := fmt.Sprintf(`SELECT ?a ?c ?e WHERE { ?a <%sp> ?b . ?c <%sq> ?d . ?e <%sp> ?f }`,
		planNS, planNS, planNS)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := e.QueryCtx(ctx, q)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %s, want prompt return", elapsed)
	}
}

func TestEvalCtxDeadline(t *testing.T) {
	st := planFixture(10, 2)
	e := NewEngine(st)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := e.QueryCtx(ctx, fmt.Sprintf(`SELECT ?s WHERE { ?s a <%sSite> }`, planNS))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestZeroLengthPathBindsUninternedTerm pins the dictionary-encoding edge
// case: a zero-length closure relates a term to itself even when the term
// was never stored, so the binding cannot live in ID space.
func TestZeroLengthPathBindsUninternedTerm(t *testing.T) {
	st := planFixture(3, 1)
	e := NewEngine(st)
	ghost := planIRI("neverStored")
	res, err := e.Query(fmt.Sprintf(`PREFIX pl: <%s> SELECT ?x WHERE { <%s> pl:p* ?x }`, planNS, string(ghost)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bindings) != 1 || !res.Bindings[0][Variable("x")].Equal(ghost) {
		t.Fatalf("zero-length path over unstored subject = %v, want [{x: %s}]", res.Bindings, ghost)
	}
}

func TestRepeatedVariableInPattern(t *testing.T) {
	st := store.New()
	st.Add(rdf.T(planIRI("n1"), planIRI("loop"), planIRI("n1")))
	st.Add(rdf.T(planIRI("n1"), planIRI("loop"), planIRI("n2")))
	e := NewEngine(st)
	res, err := e.Query(fmt.Sprintf(`SELECT ?x WHERE { ?x <%sloop> ?x }`, planNS))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bindings) != 1 || !res.Bindings[0][Variable("x")].Equal(planIRI("n1")) {
		t.Fatalf("self-loop query = %v, want exactly n1", res.Bindings)
	}
}
