// Package sparql implements a SPARQL 1.1 subset sufficient for every query
// the GRDF system issues: SELECT / ASK / CONSTRUCT forms, basic graph
// patterns, FILTER with the standard operator and built-in function set,
// OPTIONAL, UNION, property paths (^, /, |, +, *, ?), DISTINCT, ORDER BY,
// LIMIT and OFFSET. Custom filter functions (the grdf: spatial predicates)
// are registered per Engine.
package sparql

import (
	"fmt"
	"strings"

	"repro/internal/rdf"
)

// Variable is a SPARQL variable (?x). It implements rdf.Term so it can sit in
// triple-pattern positions, but it never appears in stored data.
type Variable string

// Kind implements rdf.Term; variables masquerade as IRIs for kind purposes
// but never reach a store.
func (Variable) Kind() rdf.TermKind { return rdf.KindIRI }

// String renders the variable in SPARQL syntax.
func (v Variable) String() string { return "?" + string(v) }

// Equal implements rdf.Term.
func (v Variable) Equal(o rdf.Term) bool {
	w, ok := o.(Variable)
	return ok && v == w
}

// QueryKind distinguishes the query forms.
type QueryKind uint8

const (
	// Select projects variable bindings.
	Select QueryKind = iota
	// Ask reports whether the pattern has any solution.
	Ask
	// Construct instantiates a template graph per solution.
	Construct
	// Describe returns the description graphs of the target resources.
	Describe
)

func (k QueryKind) String() string {
	switch k {
	case Select:
		return "SELECT"
	case Ask:
		return "ASK"
	case Construct:
		return "CONSTRUCT"
	case Describe:
		return "DESCRIBE"
	}
	return fmt.Sprintf("QueryKind(%d)", uint8(k))
}

// Query is a parsed SPARQL query.
type Query struct {
	Kind     QueryKind
	Vars     []Variable // SELECT projection; empty means '*'
	Distinct bool
	Template []TriplePattern // CONSTRUCT template
	Where    *GroupPattern
	OrderBy  []OrderKey
	Limit    int // -1 when absent
	Offset   int
	Prefixes *rdf.Prefixes
	// Aggregates holds (AGG(expr) AS ?v) projections; when non-empty (or
	// GroupBy is set) the query evaluates with grouping.
	Aggregates []Aggregate
	// GroupBy lists the GROUP BY variables.
	GroupBy []Variable
	// DescribeTargets lists the DESCRIBE targets (IRIs and/or variables).
	DescribeTargets []rdf.Term
	// Fingerprint is the FNV-64a hash of CanonicalForm, computed at parse
	// time: the stable identity of the query's shape (see fingerprint.go).
	Fingerprint uint64
	// CanonicalForm is the normalized rendering hashed into Fingerprint —
	// constants replaced by typed placeholders, variables renamed
	// positionally, BGP patterns order-normalized. It doubles as the
	// redacted example query in workload introspection output.
	CanonicalForm string
}

// OrderKey is one ORDER BY criterion.
type OrderKey struct {
	Expr Expression
	Desc bool
}

// TriplePattern is a triple whose positions may be variables; the predicate
// position may additionally be a property path.
type TriplePattern struct {
	Subject   rdf.Term // IRI, BlankNode, Literal(no) or Variable
	Predicate PathExpr // Link(iri), Variable or composite path
	Object    rdf.Term
}

func (tp TriplePattern) String() string {
	return fmt.Sprintf("%s %s %s .", tp.Subject, tp.Predicate, tp.Object)
}

// PatternElement is one element of a group graph pattern.
type PatternElement interface{ patternElement() }

// BGP is a basic graph pattern: a conjunction of triple patterns.
type BGP struct {
	Patterns []TriplePattern
}

func (*BGP) patternElement() {}

// Filter constrains solutions with a boolean expression.
type Filter struct {
	Expr Expression
}

func (*Filter) patternElement() {}

// Optional left-joins a nested group.
type Optional struct {
	Group *GroupPattern
}

func (*Optional) patternElement() {}

// Union takes the union of solutions of its branches.
type Union struct {
	Left, Right *GroupPattern
}

func (*Union) patternElement() {}

// Bind evaluates an expression and binds its value to a variable
// (BIND(expr AS ?v)).
type Bind struct {
	Expr Expression
	Var  Variable
}

func (*Bind) patternElement() {}

// Values inlines a table of bindings (VALUES ?x { ... } or
// VALUES (?x ?y) { (..) (..) }). A nil cell is UNDEF.
type Values struct {
	Vars []Variable
	Rows [][]rdf.Term
}

func (*Values) patternElement() {}

// GraphPattern evaluates a nested group against a named graph
// (GRAPH <iri> { … } or GRAPH ?g { … }); requires a dataset-backed engine.
type GraphPattern struct {
	Name  rdf.Term // IRI or Variable
	Group *GroupPattern
}

func (*GraphPattern) patternElement() {}

// SubGroup nests a group (braces inside braces).
type SubGroup struct {
	Group *GroupPattern
}

func (*SubGroup) patternElement() {}

// GroupPattern is an ordered list of pattern elements.
type GroupPattern struct {
	Elements []PatternElement
}

// PathExpr is a property-path expression appearing in predicate position.
type PathExpr interface {
	fmt.Stringer
	pathExpr()
}

// Link is a single IRI step.
type Link struct{ IRI rdf.IRI }

func (Link) pathExpr()        {}
func (l Link) String() string { return l.IRI.String() }

// VarPath is a variable in predicate position (not a composite path).
type VarPath struct{ Var Variable }

func (VarPath) pathExpr()        {}
func (v VarPath) String() string { return v.Var.String() }

// Inverse reverses a path (^p).
type Inverse struct{ Path PathExpr }

func (Inverse) pathExpr()        {}
func (i Inverse) String() string { return "^" + i.Path.String() }

// Seq composes paths in sequence (p1/p2).
type Seq struct{ Left, Right PathExpr }

func (Seq) pathExpr()        {}
func (s Seq) String() string { return s.Left.String() + "/" + s.Right.String() }

// Alt is path alternation (p1|p2).
type Alt struct{ Left, Right PathExpr }

func (Alt) pathExpr()        {}
func (a Alt) String() string { return a.Left.String() + "|" + a.Right.String() }

// Repeat applies a repetition modifier to a path.
type Repeat struct {
	Path PathExpr
	Min  int // 0 for * and ?, 1 for +
	Max  int // -1 for unbounded (* and +), 1 for ?
}

func (Repeat) pathExpr() {}
func (r Repeat) String() string {
	suffix := "*"
	switch {
	case r.Min == 1 && r.Max == -1:
		suffix = "+"
	case r.Min == 0 && r.Max == 1:
		suffix = "?"
	}
	return "(" + r.Path.String() + ")" + suffix
}

// Expression is a FILTER / ORDER BY expression node.
type Expression interface {
	fmt.Stringer
	expression()
}

// ExprVar references a variable's bound value.
type ExprVar struct{ Var Variable }

func (ExprVar) expression()      {}
func (e ExprVar) String() string { return e.Var.String() }

// ExprConst is a constant term (literal or IRI).
type ExprConst struct{ Term rdf.Term }

func (ExprConst) expression()      {}
func (e ExprConst) String() string { return e.Term.String() }

// ExprUnary applies '!' or unary '-'.
type ExprUnary struct {
	Op   string
	Expr Expression
}

func (ExprUnary) expression()      {}
func (e ExprUnary) String() string { return e.Op + e.Expr.String() }

// ExprBinary applies a binary operator: || && = != < <= > >= + - * /.
type ExprBinary struct {
	Op          string
	Left, Right Expression
}

func (ExprBinary) expression() {}
func (e ExprBinary) String() string {
	return "(" + e.Left.String() + " " + e.Op + " " + e.Right.String() + ")"
}

// ExprExists evaluates a nested pattern under the current binding
// (FILTER EXISTS / FILTER NOT EXISTS).
type ExprExists struct {
	Group  *GroupPattern
	Negate bool
}

func (ExprExists) expression() {}
func (e ExprExists) String() string {
	if e.Negate {
		return "NOT EXISTS {…}"
	}
	return "EXISTS {…}"
}

// ExprCall invokes a built-in (by upper-case name) or a custom function
// (by IRI).
type ExprCall struct {
	Name string  // upper-cased builtin name, empty when IRI is set
	IRI  rdf.IRI // custom function identifier
	Args []Expression
}

func (ExprCall) expression() {}
func (e ExprCall) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	name := e.Name
	if name == "" {
		name = e.IRI.String()
	}
	return name + "(" + strings.Join(parts, ", ") + ")"
}
