// Property-style tests for the selectivity planner. These live in an
// external test package because they exercise planned vs unplanned
// evaluation over datagen scenarios, and datagen imports grdf which imports
// sparql — an internal test file would close that cycle.
package sparql_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/sparql"
)

// multiset renders a result as a sorted list of canonical row strings, so
// two results compare equal iff they contain the same solutions with the
// same multiplicities, regardless of order.
func multiset(res *sparql.Result) []string {
	rows := make([]string, 0, len(res.Bindings))
	for _, b := range res.Bindings {
		var sb strings.Builder
		for _, v := range res.Vars {
			sb.WriteString(string(v))
			sb.WriteByte('=')
			if t, ok := b[v]; ok {
				sb.WriteString(t.String())
			}
			sb.WriteByte('\x1f')
		}
		rows = append(rows, sb.String())
	}
	sort.Strings(rows)
	return rows
}

// TestPlannedMatchesUnplanned checks that reordering basic graph patterns by
// selectivity never changes the answer: for a spread of generated datasets
// and query shapes, the planned engine and the static-order engine must
// return identical solution multisets.
func TestPlannedMatchesUnplanned(t *testing.T) {
	queries := []struct {
		name string
		src  string
	}{
		{"chain-with-code", `SELECT ?site ?name ?chem WHERE {
			?site a app:ChemSite .
			?site app:hasSiteName ?name .
			?site app:hasChemicalInfo ?info .
			?info app:chemical ?rec .
			?rec app:hasChemName ?chem .
			?rec app:hasChemCode "017CL" .
		}`},
		{"optional-filter", `SELECT ?site ?name ?temp WHERE {
			?site a app:ChemSite .
			?site app:hasSiteName ?name .
			OPTIONAL { ?site app:nearWeatherStation ?st . ?st app:hasTemperature ?temp }
			FILTER(STRLEN(?name) > 0)
		}`},
		{"path-plus", `SELECT ?a ?b WHERE {
			?a a app:HydroStream .
			?a app:flowsInto+ ?b .
		}`},
		{"path-star-join", `SELECT ?a ?end WHERE {
			?a app:flowsInto ?mid .
			?mid app:flowsInto* ?end .
		}`},
		{"union", `SELECT ?x WHERE {
			{ ?x a app:ChemSite } UNION { ?x a app:HydroStream }
		}`},
		{"var-predicate", `SELECT ?p WHERE {
			?s a app:ChemSite .
			?s ?p ?o .
		}`},
	}
	for _, seed := range []int64{3, 17} {
		for _, sites := range []int{8, 25} {
			sc := datagen.NewScenario(datagen.ScenarioConfig{Seed: seed, Sites: sites})
			planned := sparql.NewEngine(sc.Merged)
			static := sparql.NewEngine(sc.Merged).SetPlanning(false)
			for _, q := range queries {
				t.Run(fmt.Sprintf("%s/seed%d/sites%d", q.name, seed, sites), func(t *testing.T) {
					pres, err := planned.Query(q.src)
					if err != nil {
						t.Fatalf("planned: %v", err)
					}
					sres, err := static.Query(q.src)
					if err != nil {
						t.Fatalf("static: %v", err)
					}
					pm, sm := multiset(pres), multiset(sres)
					if len(pm) != len(sm) {
						t.Fatalf("solution counts differ: planned %d, static %d", len(pm), len(sm))
					}
					for i := range pm {
						if pm[i] != sm[i] {
							t.Fatalf("row %d differs:\nplanned: %q\nstatic:  %q", i, pm[i], sm[i])
						}
					}
				})
			}
		}
	}
}

// TestExplainOverScenario smoke-tests EXPLAIN output against generated data:
// the selective chemical-code pattern must be scheduled ahead of the broad
// rdf:type pattern.
func TestExplainOverScenario(t *testing.T) {
	sc := datagen.NewScenario(datagen.ScenarioConfig{Seed: 53, Sites: 40})
	out, err := sparql.NewEngine(sc.Merged).Explain(`SELECT ?site WHERE {
		?site a app:ChemSite .
		?site app:hasChemicalInfo ?info .
		?info app:chemical ?rec .
		?rec app:hasChemCode "017CL" .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "BGP plan (reordered):") {
		t.Fatalf("expected a reordered plan, got:\n%s", out)
	}
	codeLine := strings.Index(out, "hasChemCode")
	typeLine := strings.Index(out, "ChemSite")
	if codeLine == -1 || typeLine == -1 || codeLine > typeLine {
		t.Fatalf("code pattern should be planned before the type pattern:\n%s", out)
	}
}
