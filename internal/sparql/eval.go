package sparql

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/store"
)

// CustomFunc is an extension filter function callable by IRI, e.g. the
// grdf: spatial predicates registered by the grdf package. Arguments arrive
// fully evaluated; the function returns a term (usually xsd:boolean).
type CustomFunc func(args []rdf.Term) (rdf.Term, error)

// Engine evaluates parsed queries against a store (and, when constructed
// with NewDatasetEngine, the named graphs of a dataset via GRAPH patterns).
//
// The engine reads through store.Reader, and every evaluation pins one
// immutable StoreView at entry (see pinned): the planner's estimates, the
// join loops and the result materialization all observe the same store
// version, lock-free, however many mutations commit while the query runs.
type Engine struct {
	store    store.Reader
	dataset  *store.Dataset
	funcs    map[rdf.IRI]CustomFunc
	met      *engineMetrics
	planning bool
	// statsSink, when set, receives one EvalStats summary per EvalCtx call
	// (see SetStatsSink).
	statsSink func(EvalStats)
	// stats accumulates the in-flight evaluation's per-step numbers; the
	// pointer survives the pinned() and forGraph() copies so every BGP of
	// one evaluation lands in the same accumulator.
	stats *evalStepStats
}

// EvalStats summarizes one query evaluation for workload introspection: the
// parse-time fingerprint next to what the join executor actually did.
type EvalStats struct {
	// Fingerprint and CanonicalForm identify the query shape (see
	// fingerprint.go).
	Fingerprint   uint64
	CanonicalForm string
	Kind          QueryKind
	// Reordered reports whether any BGP plan deviated from textual order.
	Reordered bool
	// Steps counts executed BGP join steps.
	Steps int
	// RowsScanned and RowsOut total the index entries scanned and the
	// solutions surviving each join step.
	RowsScanned int64
	RowsOut     int64
	// MaxMisestimate is the worst per-step ratio between the planner's
	// cardinality estimate and the step's actual output rows (both floored
	// at 1; 0 when no planned step ran). A large value marks a query shape
	// the planner misjudges.
	MaxMisestimate float64
	// Solutions is the result size (bindings, template triples, or 1 for a
	// decided ASK); Failed marks an evaluation error.
	Solutions int64
	Failed    bool
}

// evalStepStats is the mutable accumulator behind EvalStats. Evaluation is
// single-goroutine, so plain fields suffice.
type evalStepStats struct {
	reordered   bool
	steps       int
	rowsScanned int64
	rowsOut     int64
	maxMis      float64
}

// noteStep folds one executed BGP step into the accumulator. est is the
// planner's estimate (-1 when planning was off).
func (s *evalStepStats) noteStep(est float64, scanned, out int) {
	s.steps++
	s.rowsScanned += int64(scanned)
	s.rowsOut += int64(out)
	if est >= 0 {
		e, a := est, float64(out)
		if e < 1 {
			e = 1
		}
		if a < 1 {
			a = 1
		}
		ratio := e / a
		if a > e {
			ratio = a / e
		}
		if ratio > s.maxMis {
			s.maxMis = ratio
		}
	}
}

// SetStatsSink registers fn to receive one EvalStats summary at the end of
// every EvalCtx call (parse failures never reach it: without a parsed query
// there is no fingerprint). Returns e for chaining.
func (e *Engine) SetStatsSink(fn func(EvalStats)) *Engine {
	e.statsSink = fn
	return e
}

// engineMetrics holds the evaluator's per-phase instrumentation: the
// GeoSPARQL benchmarking literature is unambiguous that engines need
// parse-vs-eval phase timing to locate their bottlenecks, so the two phases
// are observed separately.
type engineMetrics struct {
	reg          *obs.Registry
	parse        *obs.Histogram
	eval         *obs.Histogram
	solutions    *obs.Counter
	errors       *obs.Counter
	plans        *obs.Counter
	planReorders *obs.Counter
}

// Instrument exports parse/eval phase timings, per-kind query counts,
// solution counts and planner activity into reg (nil is a no-op). Returns e
// for chaining. Call before serving queries.
func (e *Engine) Instrument(reg *obs.Registry) *Engine {
	if reg == nil {
		return e
	}
	e.met = &engineMetrics{
		reg: reg,
		parse: reg.Histogram("grdf_sparql_parse_duration_seconds",
			"SPARQL parse phase latency.", nil),
		eval: reg.Histogram("grdf_sparql_eval_duration_seconds",
			"SPARQL evaluation phase latency.", nil),
		solutions: reg.Counter("grdf_sparql_solutions_total",
			"Solutions (bindings or template triples) produced."),
		errors: reg.Counter("grdf_sparql_errors_total",
			"Queries that failed to parse or evaluate."),
		plans: reg.Counter("grdf_sparql_plans_total",
			"BGPs scheduled by the selectivity planner."),
		planReorders: reg.Counter("grdf_sparql_plan_reorders_total",
			"BGP plans that deviated from textual pattern order."),
	}
	return e
}

// NewEngine returns an engine over s with selectivity planning enabled.
func NewEngine(s *store.Store) *Engine {
	return &Engine{store: s, funcs: make(map[rdf.IRI]CustomFunc), planning: true}
}

// NewDatasetEngine returns an engine whose default graph is ds.Default() and
// whose GRAPH patterns address the dataset's named graphs.
func NewDatasetEngine(ds *store.Dataset) *Engine {
	return &Engine{store: ds.Default(), dataset: ds, funcs: make(map[rdf.IRI]CustomFunc), planning: true}
}

// SetPlanning toggles the selectivity planner. When off, BGPs join in the
// legacy static order (constants before variables); evaluation is otherwise
// identical, which is what the planner benchmarks rely on. Returns e.
func (e *Engine) SetPlanning(on bool) *Engine {
	e.planning = on
	return e
}

// forGraph derives an engine over one named graph, sharing functions and the
// dataset. The graph is pinned the same way the default graph was.
func (e *Engine) forGraph(st *store.Store) *Engine {
	// Metrics stay with the outer engine: nested GRAPH evaluation is part of
	// the same query, so timing it separately would double-count.
	return &Engine{store: st.View(), dataset: e.dataset, funcs: e.funcs, planning: e.planning, stats: e.stats}
}

// pinned returns a shallow engine copy whose store is pinned to the current
// version (one atomic load). A query evaluated through the pinned engine
// sees a single consistent revision end to end — concurrent commits neither
// block it nor leak into its results.
func (e *Engine) pinned() *Engine {
	ne := *e
	ne.store = e.store.View()
	return &ne
}

// RegisterFunc installs a custom filter function under the given IRI.
func (e *Engine) RegisterFunc(iri rdf.IRI, fn CustomFunc) { e.funcs[iri] = fn }

// Binding maps variables to terms. A nil entry never occurs; unbound
// variables are simply absent.
type Binding map[Variable]rdf.Term

func (b Binding) clone() Binding {
	c := make(Binding, len(b)+2)
	for k, v := range b {
		c[k] = v
	}
	return c
}

// key produces a deduplication key over the given variables.
func (b Binding) key(vars []Variable) string {
	var sb strings.Builder
	for _, v := range vars {
		if t, ok := b[v]; ok {
			sb.WriteString(t.String())
		}
		sb.WriteByte('\x00')
	}
	return sb.String()
}

// Result carries the outcome of a query.
type Result struct {
	Kind     QueryKind
	Vars     []Variable // SELECT projection (resolved, in order)
	Bindings []Binding  // SELECT solutions
	Bool     bool       // ASK outcome
	Graph    *rdf.Graph // CONSTRUCT output
}

// Query parses and evaluates src in one step with a background context.
func (e *Engine) Query(src string) (*Result, error) {
	return e.QueryCtx(context.Background(), src)
}

// QueryCtx parses and evaluates src under ctx. Cancellation and deadlines
// are honored between join steps; the error is ctx.Err() when the context
// ends first.
func (e *Engine) QueryCtx(ctx context.Context, src string) (*Result, error) {
	var start time.Time
	if e.met != nil {
		start = time.Now()
	}
	q, err := ParseQuery(src, nil)
	if e.met != nil {
		e.met.parse.ObserveSince(start)
	}
	if err != nil {
		if e.met != nil {
			e.met.errors.Inc()
		}
		return nil, err
	}
	return e.EvalCtx(ctx, q)
}

// Eval evaluates a parsed query with a background context.
func (e *Engine) Eval(q *Query) (*Result, error) {
	return e.EvalCtx(context.Background(), q)
}

// EvalCtx evaluates a parsed query under ctx, recording phase timing and
// solution counts when the engine is instrumented. On a traced context the
// whole evaluation runs under a sparql.eval span that parents the per-stage
// BGP spans, and the eval histogram's bucket gains the trace as an exemplar.
func (e *Engine) EvalCtx(ctx context.Context, q *Query) (*Result, error) {
	if e.statsSink == nil {
		return e.evalSpanned(ctx, q)
	}
	// Give this evaluation its own accumulator (the engine may be shared),
	// then summarize into the sink whatever the outcome.
	ec := *e
	ec.stats = &evalStepStats{}
	res, err := ec.evalSpanned(ctx, q)
	st := EvalStats{
		Fingerprint:    q.Fingerprint,
		CanonicalForm:  q.CanonicalForm,
		Kind:           q.Kind,
		Reordered:      ec.stats.reordered,
		Steps:          ec.stats.steps,
		RowsScanned:    ec.stats.rowsScanned,
		RowsOut:        ec.stats.rowsOut,
		MaxMisestimate: ec.stats.maxMis,
		Failed:         err != nil,
	}
	if res != nil {
		switch res.Kind {
		case Ask:
			st.Solutions = 1
		case Construct, Describe:
			st.Solutions = int64(res.Graph.Len())
		default:
			st.Solutions = int64(len(res.Bindings))
		}
	}
	e.statsSink(st)
	return res, err
}

// evalSpanned is EvalCtx minus the stats sink: the sparql.eval span, phase
// timing and solution accounting around the raw evaluation.
func (e *Engine) evalSpanned(ctx context.Context, q *Query) (*Result, error) {
	ctx, sp := obs.StartSpan(ctx, "sparql.eval")
	sp.SetAttr("kind", q.Kind.String())
	if e.met == nil {
		res, err := e.eval(ctx, q)
		if err != nil {
			sp.Fail(err)
		}
		sp.End()
		return res, err
	}
	start := time.Now()
	res, err := e.eval(ctx, q)
	e.met.eval.ObserveWithExemplar(time.Since(start).Seconds(), obs.TraceID(ctx))
	e.met.reg.Counter("grdf_sparql_queries_total",
		"Queries evaluated by kind.", "kind", q.Kind.String()).Inc()
	if err != nil {
		e.met.errors.Inc()
		sp.Fail(err)
		sp.End()
		return nil, err
	}
	switch res.Kind {
	case Ask:
		e.met.solutions.Inc()
		sp.Add("solutions", 1)
	case Construct, Describe:
		e.met.solutions.Add(float64(res.Graph.Len()))
		sp.Add("solutions", int64(res.Graph.Len()))
	default:
		e.met.solutions.Add(float64(len(res.Bindings)))
		sp.Add("solutions", int64(len(res.Bindings)))
	}
	sp.End()
	return res, nil
}

// eval is the un-instrumented evaluation path. It runs entirely against one
// pinned store version.
func (e *Engine) eval(ctx context.Context, q *Query) (*Result, error) {
	e = e.pinned()
	seed := []Binding{{}}
	sols, err := e.evalGroup(ctx, q.Where, seed)
	if err != nil {
		return nil, err
	}

	switch q.Kind {
	case Ask:
		return &Result{Kind: Ask, Bool: len(sols) > 0}, nil

	case Construct:
		g := rdf.NewGraph()
		for _, b := range sols {
			for _, tp := range q.Template {
				t, ok := instantiate(tp, b)
				if ok {
					g.Add(t)
				}
			}
		}
		return &Result{Kind: Construct, Graph: g}, nil

	case Describe:
		g := rdf.NewGraph()
		seen := map[string]struct{}{}
		describe := func(res rdf.Term) {
			if res == nil || res.Kind() == rdf.KindLiteral {
				return
			}
			k := res.String()
			if _, dup := seen[k]; dup {
				return
			}
			seen[k] = struct{}{}
			e.describeInto(g, res, map[string]struct{}{})
		}
		for _, target := range q.DescribeTargets {
			if v, isVar := target.(Variable); isVar {
				for _, b := range sols {
					if t, ok := b[v]; ok {
						describe(t)
					}
				}
			} else {
				describe(target)
			}
		}
		return &Result{Kind: Describe, Graph: g}, nil

	default: // Select
		vars := q.Vars
		if q.hasAggregates() {
			grouped, err := e.evalAggregates(ctx, q, sols)
			if err != nil {
				return nil, err
			}
			sols = grouped
			// Projection: the plain vars (which must be grouped) followed by
			// the aggregate aliases, in declaration order.
			vars = append([]Variable{}, q.Vars...)
			for _, a := range q.Aggregates {
				vars = append(vars, a.As)
			}
		}
		if len(vars) == 0 {
			vars = collectVars(q.Where)
		}
		if len(q.OrderBy) > 0 {
			if err := e.sortSolutions(ctx, sols, q.OrderBy); err != nil {
				return nil, err
			}
		}
		if q.Distinct {
			seen := map[string]struct{}{}
			var out []Binding
			for _, b := range sols {
				k := b.key(vars)
				if _, dup := seen[k]; dup {
					continue
				}
				seen[k] = struct{}{}
				out = append(out, b)
			}
			sols = out
		}
		if q.Offset > 0 {
			if q.Offset >= len(sols) {
				sols = nil
			} else {
				sols = sols[q.Offset:]
			}
		}
		if q.Limit >= 0 && q.Limit < len(sols) {
			sols = sols[:q.Limit]
		}
		// Project.
		projected := make([]Binding, len(sols))
		for i, b := range sols {
			pb := make(Binding, len(vars))
			for _, v := range vars {
				if t, ok := b[v]; ok {
					pb[v] = t
				}
			}
			projected[i] = pb
		}
		return &Result{Kind: Select, Vars: vars, Bindings: projected}, nil
	}
}

func instantiate(tp TriplePattern, b Binding) (rdf.Triple, bool) {
	s := resolveTerm(tp.Subject, b)
	var p rdf.Term
	switch pe := tp.Predicate.(type) {
	case Link:
		p = pe.IRI
	case VarPath:
		p = resolveTerm(pe.Var, b)
	default:
		return rdf.Triple{}, false
	}
	o := resolveTerm(tp.Object, b)
	if s == nil || p == nil || o == nil {
		return rdf.Triple{}, false
	}
	t := rdf.T(s, p, o)
	return t, t.Valid()
}

func resolveTerm(t rdf.Term, b Binding) rdf.Term {
	if v, ok := t.(Variable); ok {
		bound, ok := b[v]
		if !ok {
			return nil
		}
		return bound
	}
	return t
}

func collectVars(g *GroupPattern) []Variable {
	seen := map[Variable]struct{}{}
	var out []Variable
	var walkGroup func(*GroupPattern)
	note := func(t rdf.Term) {
		if v, ok := t.(Variable); ok {
			if _, dup := seen[v]; !dup {
				seen[v] = struct{}{}
				out = append(out, v)
			}
		}
	}
	var notePath func(PathExpr)
	notePath = func(p PathExpr) {
		switch pe := p.(type) {
		case VarPath:
			note(pe.Var)
		case Inverse:
			notePath(pe.Path)
		case Seq:
			notePath(pe.Left)
			notePath(pe.Right)
		case Alt:
			notePath(pe.Left)
			notePath(pe.Right)
		case Repeat:
			notePath(pe.Path)
		}
	}
	walkGroup = func(g *GroupPattern) {
		for _, el := range g.Elements {
			switch v := el.(type) {
			case *BGP:
				for _, tp := range v.Patterns {
					note(tp.Subject)
					notePath(tp.Predicate)
					note(tp.Object)
				}
			case *Optional:
				walkGroup(v.Group)
			case *Union:
				walkGroup(v.Left)
				walkGroup(v.Right)
			case *SubGroup:
				walkGroup(v.Group)
			case *Bind:
				note(v.Var)
			case *Values:
				for _, vv := range v.Vars {
					note(vv)
				}
			}
		}
	}
	walkGroup(g)
	return out
}

func (e *Engine) evalGroup(ctx context.Context, g *GroupPattern, in []Binding) ([]Binding, error) {
	cur := in
	for _, el := range g.Elements {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var err error
		switch v := el.(type) {
		case *BGP:
			cur, err = e.evalBGP(ctx, v, cur)
		case *Filter:
			cur, err = e.evalFilter(ctx, v, cur)
		case *Optional:
			cur, err = e.evalOptional(ctx, v, cur)
		case *Union:
			cur, err = e.evalUnion(ctx, v, cur)
		case *SubGroup:
			cur, err = e.evalGroup(ctx, v.Group, cur)
		case *GraphPattern:
			cur, err = e.evalGraphPattern(ctx, v, cur)
		case *Values:
			var next []Binding
			for _, b := range cur {
				for _, row := range v.Rows {
					nb := b.clone()
					ok := true
					for i, cell := range row {
						if cell == nil {
							continue // UNDEF leaves the variable as-is
						}
						if !bindVar(nb, v.Vars[i], cell) {
							ok = false
							break
						}
					}
					if ok {
						next = append(next, nb)
					}
				}
			}
			cur = next
		case *Bind:
			var next []Binding
			for _, b := range cur {
				val, evalErr := e.evalExpr(ctx, v.Expr, b)
				if evalErr != nil {
					// expression error leaves the variable unbound
					next = append(next, b)
					continue
				}
				if prev, bound := b[v.Var]; bound {
					if !prev.Equal(val) {
						continue // re-binding to a different value eliminates
					}
					next = append(next, b)
					continue
				}
				nb := b.clone()
				nb[v.Var] = val
				next = append(next, nb)
			}
			cur = next
		default:
			err = fmt.Errorf("sparql: unknown pattern element %T", el)
		}
		if err != nil {
			return nil, err
		}
		if len(cur) == 0 {
			return nil, nil
		}
	}
	return cur, nil
}

// idSol is an intermediate BGP solution. Variables bound before the BGP stay
// in base (shared, never mutated); variables bound during the join live in
// ids as dictionary IDs, or in terms for the rare values with no dictionary
// entry (zero-length property paths can bind terms the store never saw).
type idSol struct {
	base  Binding
	ids   map[Variable]store.ID
	terms map[Variable]rdf.Term
}

func (s *idSol) clone() *idSol {
	c := &idSol{base: s.base}
	if len(s.ids) > 0 {
		c.ids = make(map[Variable]store.ID, len(s.ids)+2)
		for k, v := range s.ids {
			c.ids[k] = v
		}
	}
	if len(s.terms) > 0 {
		c.terms = make(map[Variable]rdf.Term, len(s.terms))
		for k, v := range s.terms {
			c.terms[k] = v
		}
	}
	return c
}

func (s *idSol) setID(v Variable, id store.ID) {
	if s.ids == nil {
		s.ids = make(map[Variable]store.ID, 3)
	}
	s.ids[v] = id
}

func (s *idSol) setTerm(v Variable, t rdf.Term) {
	if s.terms == nil {
		s.terms = make(map[Variable]rdf.Term, 1)
	}
	s.terms[v] = t
}

// term resolves v to its bound term, consulting ids (via the store
// dictionary), the overflow terms and the base binding.
func (e *Engine) solTerm(s *idSol, v Variable) (rdf.Term, bool) {
	if id, ok := s.ids[v]; ok {
		return e.store.TermOf(id), true
	}
	if t, ok := s.terms[v]; ok {
		return t, true
	}
	t, ok := s.base[v]
	return t, ok
}

// cancelCheckEvery bounds how many produced matches may pass between two
// context checks inside a single pattern scan (power of two).
const cancelCheckEvery = 256

// evalBGP joins the triple patterns against the store in ID space. The join
// order comes from the selectivity planner (or the legacy static order when
// planning is off); terms are materialized once, at BGP output. On a traced
// context every join stage gets a sparql.bgp.step span carrying the planner's
// cost estimate next to the actual row counts — the raw material of
// EXPLAIN ANALYZE.
func (e *Engine) evalBGP(ctx context.Context, bgp *BGP, in []Binding) ([]Binding, error) {
	if len(bgp.Patterns) == 0 {
		return in, nil
	}
	var steps []PlanStep
	if e.planning {
		bound := make(map[Variable]struct{})
		if len(in) > 0 {
			for v := range in[0] {
				bound[v] = struct{}{}
			}
		}
		plan := PlanBGP(e.store, bgp.Patterns, bound)
		steps = plan.Steps
		if e.met != nil {
			e.met.plans.Inc()
			if plan.Reordered {
				e.met.planReorders.Inc()
			}
		}
		if e.stats != nil && plan.Reordered {
			e.stats.reordered = true
		}
	} else {
		ordered := orderPatterns(bgp.Patterns)
		steps = make([]PlanStep, len(ordered))
		for i, tp := range ordered {
			// No planner ran: there is no cost estimate to compare against.
			steps[i] = PlanStep{Pattern: tp, Index: i, Estimate: -1}
		}
	}

	sols := make([]*idSol, len(in))
	for i, b := range in {
		sols[i] = &idSol{base: b}
	}
	for stage, ps := range steps {
		tp := ps.Pattern
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		_, sp := obs.StartSpan(ctx, "sparql.bgp.step")
		sp.SetAttr("pattern", tp.String())
		sp.SetAttr("stage", strconv.Itoa(stage))
		sp.SetAttr("pattern_index", strconv.Itoa(ps.Index))
		if ps.Estimate >= 0 {
			sp.SetAttr("estimate", strconv.FormatFloat(ps.Estimate, 'g', 4, 64))
		}
		sp.Add("rows_in", int64(len(sols)))
		var err error
		var scanned int
		if isCompositePath(tp.Predicate) {
			sols, scanned, err = e.stepPath(ctx, tp, sols)
		} else {
			sols, scanned, err = e.stepSimple(ctx, tp, sols)
		}
		sp.Add("rows_scanned", int64(scanned))
		sp.Add("rows_out", int64(len(sols)))
		if e.stats != nil && err == nil {
			e.stats.noteStep(ps.Estimate, scanned, len(sols))
		}
		if err != nil {
			sp.Fail(err)
			sp.End()
			return nil, err
		}
		sp.End()
		if len(sols) == 0 {
			return nil, nil
		}
	}

	// Materialize: one dictionary view resolves every ID bound above (the
	// view is taken after the joins, so it covers all of them).
	view := e.store.DictView()
	out := make([]Binding, len(sols))
	for i, s := range sols {
		b := s.base.clone()
		for v, id := range s.ids {
			b[v] = view.Term(id)
		}
		for v, t := range s.terms {
			b[v] = t
		}
		out[i] = b
	}
	return out, nil
}

// slot describes one position of a simple triple pattern after constant
// resolution.
type slot struct {
	isVar bool
	v     Variable
	id    store.ID // constant's dictionary ID when !isVar
}

// stepSimple extends every solution with the store matches of a simple
// pattern (plain IRI link or predicate variable), entirely in ID space. The
// second return value counts index entries scanned, for the stage span.
func (e *Engine) stepSimple(ctx context.Context, tp TriplePattern, sols []*idSol) ([]*idSol, int, error) {
	var slots [3]slot
	terms := [3]rdf.Term{tp.Subject, nil, tp.Object}
	switch pe := tp.Predicate.(type) {
	case Link:
		terms[1] = pe.IRI
	case VarPath:
		terms[1] = pe.Var
	}
	for i, t := range terms {
		if v, ok := t.(Variable); ok {
			slots[i] = slot{isVar: true, v: v}
			continue
		}
		id, ok := e.store.LookupID(t)
		if !ok {
			// The constant was never interned: nothing can match, and the
			// BGP is conjunctive, so the whole join is empty.
			return nil, 0, nil
		}
		slots[i] = slot{id: id}
	}

	var out []*idSol
	produced := 0
	for _, s := range sols {
		if err := ctx.Err(); err != nil {
			return nil, produced, err
		}
		var probe [3]store.ID
		var free [3]Variable // variables to bind, by position (empty = fixed)
		nFree := 0
		dead := false
		for i, sl := range slots {
			if !sl.isVar {
				probe[i] = sl.id
				continue
			}
			if id, ok := s.ids[sl.v]; ok {
				probe[i] = id
				continue
			}
			if _, ok := s.terms[sl.v]; ok {
				// Bound to a term outside the dictionary: no stored triple
				// can contain it, so this solution fails the pattern.
				dead = true
				break
			}
			if t, ok := s.base[sl.v]; ok {
				id, ok := e.store.LookupID(t)
				if !ok {
					dead = true
					break
				}
				s.setID(sl.v, id) // cache for later patterns
				probe[i] = id
				continue
			}
			free[i] = sl.v
			nFree++
		}
		if dead {
			continue
		}
		if nFree == 0 {
			// Fully bound: pure existence check, no new bindings.
			if e.store.HasIDs(probe[0], probe[1], probe[2]) {
				out = append(out, s)
			}
			continue
		}
		var stepErr error
		e.store.ForEachMatchIDs(probe[0], probe[1], probe[2], func(ms, mp, mo store.ID) bool {
			produced++
			if produced%cancelCheckEvery == 0 {
				if err := ctx.Err(); err != nil {
					stepErr = err
					return false
				}
			}
			got := [3]store.ID{ms, mp, mo}
			// Assign free positions, enforcing equality when one variable
			// occupies several positions (e.g. "?x ?p ?x").
			var assigned [3]struct {
				v  Variable
				id store.ID
			}
			n := 0
			for i := 0; i < 3; i++ {
				if free[i] == "" {
					continue
				}
				ok := true
				for j := 0; j < n; j++ {
					if assigned[j].v == free[i] {
						ok = assigned[j].id == got[i]
						break
					}
				}
				if !ok {
					return true
				}
				assigned[n].v, assigned[n].id = free[i], got[i]
				n++
			}
			ns := s.clone()
			for j := 0; j < n; j++ {
				ns.setID(assigned[j].v, assigned[j].id)
			}
			out = append(out, ns)
			return true
		})
		if stepErr != nil {
			return nil, produced, stepErr
		}
	}
	return out, produced, nil
}

// stepPath extends every solution through a composite property path. Paths
// run at the term level: closures with Min==0 can relate terms the store
// has never interned, so endpoint values may land in the solution's term
// overflow map rather than the ID map.
func (e *Engine) stepPath(ctx context.Context, tp TriplePattern, sols []*idSol) ([]*idSol, int, error) {
	var out []*idSol
	scanned := 0
	for _, s := range sols {
		if err := ctx.Err(); err != nil {
			return nil, scanned, err
		}
		subj := e.resolvePatternTerm(s, tp.Subject)
		obj := e.resolvePatternTerm(s, tp.Object)
		pairs, err := e.evalPath(ctx, tp.Predicate, subj, obj)
		if err != nil {
			return nil, scanned, err
		}
		scanned += len(pairs)
		for _, pr := range pairs {
			ns := s.clone()
			if !e.bindSolTerm(ns, tp.Subject, pr[0]) || !e.bindSolTerm(ns, tp.Object, pr[1]) {
				continue
			}
			out = append(out, ns)
		}
	}
	return out, scanned, nil
}

// resolvePatternTerm turns a pattern position into a concrete term for the
// path evaluator: constants pass through, bound variables resolve, unbound
// variables become nil (wildcard).
func (e *Engine) resolvePatternTerm(s *idSol, pt rdf.Term) rdf.Term {
	v, isVar := pt.(Variable)
	if !isVar {
		return pt
	}
	if t, ok := e.solTerm(s, v); ok {
		return t
	}
	return nil
}

// bindSolTerm unifies a pattern position with a concrete term produced by
// the path evaluator, storing new variable bindings as IDs when the term is
// interned and as overflow terms otherwise.
func (e *Engine) bindSolTerm(s *idSol, pt rdf.Term, ct rdf.Term) bool {
	v, isVar := pt.(Variable)
	if !isVar {
		return pt.Equal(ct)
	}
	if prev, ok := e.solTerm(s, v); ok {
		return prev.Equal(ct)
	}
	if id, ok := e.store.LookupID(ct); ok {
		s.setID(v, id)
	} else {
		s.setTerm(v, ct)
	}
	return true
}

// orderPatterns sorts patterns by a static selectivity estimate: constants
// beat variables, subjects beat objects beat predicates. Retained as the
// planner-off baseline (see SetPlanning).
func orderPatterns(ps []TriplePattern) []TriplePattern {
	out := make([]TriplePattern, len(ps))
	copy(out, ps)
	score := func(tp TriplePattern) int {
		s := 0
		if _, isVar := tp.Subject.(Variable); !isVar {
			s += 4
		}
		if _, ok := tp.Predicate.(Link); ok {
			s += 2
		}
		if _, isVar := tp.Object.(Variable); !isVar {
			s += 3
		}
		return s
	}
	sort.SliceStable(out, func(i, j int) bool { return score(out[i]) > score(out[j]) })
	return out
}

// bindTerm unifies pattern term pt with concrete term ct under binding b.
func bindTerm(b Binding, pt rdf.Term, ct rdf.Term) bool {
	v, isVar := pt.(Variable)
	if !isVar {
		return pt.Equal(ct)
	}
	return bindVar(b, v, ct)
}

func bindVar(b Binding, v Variable, ct rdf.Term) bool {
	if prev, ok := b[v]; ok {
		return prev.Equal(ct)
	}
	b[v] = ct
	return true
}

type pair [2]rdf.Term

// evalPath returns all (subject, object) pairs connected by path, with
// either endpoint optionally fixed.
func (e *Engine) evalPath(ctx context.Context, p PathExpr, subj, obj rdf.Term) ([]pair, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	switch pe := p.(type) {
	case Link:
		var out []pair
		e.store.ForEachMatch(subj, pe.IRI, obj, func(t rdf.Triple) bool {
			out = append(out, pair{t.Subject, t.Object})
			return true
		})
		return out, nil
	case VarPath:
		return nil, fmt.Errorf("sparql: variable inside composite path")
	case Inverse:
		pairs, err := e.evalPath(ctx, pe.Path, obj, subj)
		if err != nil {
			return nil, err
		}
		out := make([]pair, len(pairs))
		for i, pr := range pairs {
			out[i] = pair{pr[1], pr[0]}
		}
		return out, nil
	case Seq:
		left, err := e.evalPath(ctx, pe.Left, subj, nil)
		if err != nil {
			return nil, err
		}
		var out []pair
		seen := map[pair]struct{}{}
		for _, l := range left {
			// middle node l[1] must be a valid subject
			if l[1].Kind() == rdf.KindLiteral {
				continue
			}
			rights, err := e.evalPath(ctx, pe.Right, l[1], obj)
			if err != nil {
				return nil, err
			}
			for _, r := range rights {
				pr := pair{l[0], r[1]}
				if _, dup := seen[pr]; !dup {
					seen[pr] = struct{}{}
					out = append(out, pr)
				}
			}
		}
		return out, nil
	case Alt:
		left, err := e.evalPath(ctx, pe.Left, subj, obj)
		if err != nil {
			return nil, err
		}
		right, err := e.evalPath(ctx, pe.Right, subj, obj)
		if err != nil {
			return nil, err
		}
		seen := map[pair]struct{}{}
		var out []pair
		for _, pr := range append(left, right...) {
			if _, dup := seen[pr]; !dup {
				seen[pr] = struct{}{}
				out = append(out, pr)
			}
		}
		return out, nil
	case Repeat:
		return e.evalRepeat(ctx, pe, subj, obj)
	}
	return nil, fmt.Errorf("sparql: unknown path %T", p)
}

// evalRepeat handles *, + and ? closures with breadth-first expansion,
// checking the context once per BFS level.
func (e *Engine) evalRepeat(ctx context.Context, r Repeat, subj, obj rdf.Term) ([]pair, error) {
	starts, err := e.repeatStarts(r, subj)
	if err != nil {
		return nil, err
	}
	var out []pair
	emit := func(s, o rdf.Term) {
		if obj == nil || obj.Equal(o) {
			out = append(out, pair{s, o})
		}
	}
	for _, start := range starts {
		reached := map[string]rdf.Term{}
		frontier := []rdf.Term{start}
		depth := 0
		if r.Min == 0 {
			emit(start, start)
		}
		for len(frontier) > 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			depth++
			if r.Max >= 0 && depth > r.Max {
				break
			}
			var next []rdf.Term
			for _, node := range frontier {
				if node.Kind() == rdf.KindLiteral {
					continue
				}
				steps, err := e.evalPath(ctx, r.Path, node, nil)
				if err != nil {
					return nil, err
				}
				for _, st := range steps {
					key := st[1].String()
					if _, dup := reached[key]; dup {
						continue
					}
					reached[key] = st[1]
					next = append(next, st[1])
					if depth >= r.Min {
						emit(start, st[1])
					}
				}
			}
			frontier = next
		}
	}
	return out, nil
}

// repeatStarts determines the starting set for a repetition: the fixed
// subject if bound, else every node in the store.
func (e *Engine) repeatStarts(r Repeat, subj rdf.Term) ([]rdf.Term, error) {
	if subj != nil {
		return []rdf.Term{subj}, nil
	}
	seen := map[string]struct{}{}
	var out []rdf.Term
	e.store.ForEachMatch(nil, nil, nil, func(t rdf.Triple) bool {
		for _, term := range []rdf.Term{t.Subject, t.Object} {
			k := term.String()
			if _, dup := seen[k]; !dup {
				seen[k] = struct{}{}
				out = append(out, term)
			}
		}
		return true
	})
	return out, nil
}

func (e *Engine) evalFilter(ctx context.Context, f *Filter, in []Binding) ([]Binding, error) {
	var out []Binding
	for _, b := range in {
		v, err := e.evalExpr(ctx, f.Expr, b)
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return nil, ctxErr
			}
			continue // expression error => solution eliminated (SPARQL semantics)
		}
		ok, err := effectiveBool(v)
		if err == nil && ok {
			out = append(out, b)
		}
	}
	return out, nil
}

func (e *Engine) evalOptional(ctx context.Context, o *Optional, in []Binding) ([]Binding, error) {
	var out []Binding
	for _, b := range in {
		ext, err := e.evalGroup(ctx, o.Group, []Binding{b})
		if err != nil {
			return nil, err
		}
		if len(ext) == 0 {
			out = append(out, b)
		} else {
			out = append(out, ext...)
		}
	}
	return out, nil
}

func (e *Engine) evalUnion(ctx context.Context, u *Union, in []Binding) ([]Binding, error) {
	left, err := e.evalGroup(ctx, u.Left, in)
	if err != nil {
		return nil, err
	}
	right, err := e.evalGroup(ctx, u.Right, in)
	if err != nil {
		return nil, err
	}
	return append(left, right...), nil
}

func (e *Engine) sortSolutions(ctx context.Context, sols []Binding, keys []OrderKey) error {
	type cached struct {
		vals []rdf.Term
		errs []bool
	}
	cache := make([]cached, len(sols))
	for i, b := range sols {
		c := cached{vals: make([]rdf.Term, len(keys)), errs: make([]bool, len(keys))}
		for j, k := range keys {
			v, err := e.evalExpr(ctx, k.Expr, b)
			if err != nil {
				c.errs[j] = true
			} else {
				c.vals[j] = v
			}
		}
		cache[i] = c
	}
	idx := make([]int, len(sols))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		for j, k := range keys {
			cmp := compareTerms(cache[idx[a]].vals[j], cache[idx[b]].vals[j],
				cache[idx[a]].errs[j], cache[idx[b]].errs[j])
			if cmp == 0 {
				continue
			}
			if k.Desc {
				return cmp > 0
			}
			return cmp < 0
		}
		return false
	})
	sorted := make([]Binding, len(sols))
	for i, j := range idx {
		sorted[i] = sols[j]
	}
	copy(sols, sorted)
	return nil
}

// compareTerms orders terms for ORDER BY: unbound/error < blank < IRI < literal.
func compareTerms(a, b rdf.Term, aErr, bErr bool) int {
	rank := func(t rdf.Term, e bool) int {
		switch {
		case e || t == nil:
			return 0
		case t.Kind() == rdf.KindBlank:
			return 1
		case t.Kind() == rdf.KindIRI:
			return 2
		default:
			return 3
		}
	}
	ra, rb := rank(a, aErr), rank(b, bErr)
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	if ra == 0 {
		return 0
	}
	if ra == 3 {
		la, lb := a.(rdf.Literal), b.(rdf.Literal)
		if cmp, ok := rdf.CompareLiterals(la, lb); ok {
			return cmp
		}
	}
	return strings.Compare(a.String(), b.String())
}

// evalGraphPattern evaluates GRAPH <name> { … } against the dataset's named
// graphs.
func (e *Engine) evalGraphPattern(ctx context.Context, gp *GraphPattern, in []Binding) ([]Binding, error) {
	if e.dataset == nil {
		return nil, fmt.Errorf("sparql: GRAPH requires a dataset-backed engine")
	}
	var out []Binding
	for _, b := range in {
		name := gp.Name
		if v, isVar := name.(Variable); isVar {
			if bound, ok := b[v]; ok {
				name = bound
			}
		}
		if iri, ok := name.(rdf.IRI); ok {
			st, exists := e.dataset.Graph(iri, false)
			if !exists {
				continue
			}
			sols, err := e.forGraph(st).evalGroup(ctx, gp.Group, []Binding{b})
			if err != nil {
				return nil, err
			}
			out = append(out, sols...)
			continue
		}
		// unbound variable: try every named graph, binding the name
		v := gp.Name.(Variable)
		for _, gname := range e.dataset.GraphNames() {
			st, _ := e.dataset.Graph(gname, false)
			nb := b.clone()
			if !bindVar(nb, v, gname) {
				continue
			}
			sols, err := e.forGraph(st).evalGroup(ctx, gp.Group, []Binding{nb})
			if err != nil {
				return nil, err
			}
			out = append(out, sols...)
		}
	}
	return out, nil
}

// describeInto copies the subject's triples (with blank-node closure) into g.
func (e *Engine) describeInto(g *rdf.Graph, res rdf.Term, visited map[string]struct{}) {
	k := res.String()
	if _, dup := visited[k]; dup {
		return
	}
	visited[k] = struct{}{}
	e.store.ForEachMatch(res, nil, nil, func(t rdf.Triple) bool {
		g.Add(t)
		return true
	})
	// follow blank-node objects so the description is self-contained
	for _, t := range g.Match(res, nil, nil) {
		if t.Object.Kind() == rdf.KindBlank {
			e.describeInto(g, t.Object, visited)
		}
	}
}
