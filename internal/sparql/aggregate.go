package sparql

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/rdf"
)

// Aggregate support: SELECT (COUNT(?x) AS ?n) … GROUP BY ?g, with COUNT,
// SUM, MIN, MAX and AVG (optionally DISTINCT), plus COUNT(*). The
// middleware uses these for the paper's "aggregate list of chemicals from
// these sites".

// AggFunc names an aggregate function.
type AggFunc string

// Supported aggregate functions.
const (
	AggCount AggFunc = "COUNT"
	AggSum   AggFunc = "SUM"
	AggMin   AggFunc = "MIN"
	AggMax   AggFunc = "MAX"
	AggAvg   AggFunc = "AVG"
)

// Aggregate is one projected aggregate expression.
type Aggregate struct {
	Func     AggFunc
	Arg      Expression // nil for COUNT(*)
	Distinct bool
	As       Variable
}

func (a Aggregate) String() string {
	arg := "*"
	if a.Arg != nil {
		arg = a.Arg.String()
	}
	d := ""
	if a.Distinct {
		d = "DISTINCT "
	}
	return fmt.Sprintf("(%s(%s%s) AS %s)", a.Func, d, arg, a.As)
}

// hasAggregates reports whether the query needs grouped evaluation.
func (q *Query) hasAggregates() bool {
	return len(q.Aggregates) > 0 || len(q.GroupBy) > 0
}

// evalAggregates groups the raw solutions and computes each aggregate,
// producing one binding per group.
func (e *Engine) evalAggregates(ctx context.Context, q *Query, sols []Binding) ([]Binding, error) {
	type group struct {
		key  string
		rep  Binding // representative bindings for GROUP BY vars
		rows []Binding
	}
	groups := map[string]*group{}
	var order []string
	for _, b := range sols {
		var sb strings.Builder
		for _, v := range q.GroupBy {
			if t, ok := b[v]; ok {
				sb.WriteString(t.String())
			}
			sb.WriteByte('\x00')
		}
		k := sb.String()
		g, ok := groups[k]
		if !ok {
			rep := Binding{}
			for _, v := range q.GroupBy {
				if t, okv := b[v]; okv {
					rep[v] = t
				}
			}
			g = &group{key: k, rep: rep}
			groups[k] = g
			order = append(order, k)
		}
		g.rows = append(g.rows, b)
	}
	// With no GROUP BY and no solutions there is still one (empty) group for
	// COUNT to report 0 over.
	if len(q.GroupBy) == 0 && len(order) == 0 {
		groups[""] = &group{key: "", rep: Binding{}}
		order = append(order, "")
	}
	sort.Strings(order)

	var out []Binding
	for _, k := range order {
		g := groups[k]
		b := g.rep.clone()
		for _, agg := range q.Aggregates {
			val, err := e.computeAggregate(ctx, agg, g.rows)
			if err != nil {
				return nil, err
			}
			if val != nil {
				b[agg.As] = val
			}
		}
		out = append(out, b)
	}
	return out, nil
}

func (e *Engine) computeAggregate(ctx context.Context, agg Aggregate, rows []Binding) (rdf.Term, error) {
	// Collect the argument values (skipping rows where evaluation errors,
	// per SPARQL aggregate semantics).
	var vals []rdf.Term
	if agg.Arg == nil { // COUNT(*)
		return rdf.NewInteger(int64(len(rows))), nil
	}
	for _, row := range rows {
		v, err := e.evalExpr(ctx, agg.Arg, row)
		if err != nil {
			continue
		}
		vals = append(vals, v)
	}
	if agg.Distinct {
		seen := map[string]struct{}{}
		var uniq []rdf.Term
		for _, v := range vals {
			k := v.String()
			if _, dup := seen[k]; !dup {
				seen[k] = struct{}{}
				uniq = append(uniq, v)
			}
		}
		vals = uniq
	}

	switch agg.Func {
	case AggCount:
		return rdf.NewInteger(int64(len(vals))), nil
	case AggSum, AggAvg:
		sum := 0.0
		n := 0
		allInt := true
		for _, v := range vals {
			l, ok := v.(rdf.Literal)
			if !ok || !l.IsNumeric() {
				continue
			}
			f, err := l.Float()
			if err != nil {
				continue
			}
			if _, err := l.Int(); err != nil {
				allInt = false
			}
			sum += f
			n++
		}
		if agg.Func == AggAvg {
			if n == 0 {
				return nil, nil
			}
			return rdf.NewDouble(sum / float64(n)), nil
		}
		if allInt {
			return rdf.NewInteger(int64(sum)), nil
		}
		return rdf.NewDouble(sum), nil
	case AggMin, AggMax:
		var best *rdf.Literal
		for _, v := range vals {
			l, ok := v.(rdf.Literal)
			if !ok {
				continue
			}
			if best == nil {
				b := l
				best = &b
				continue
			}
			cmp, ok := rdf.CompareLiterals(l, *best)
			if !ok {
				continue
			}
			if (agg.Func == AggMin && cmp < 0) || (agg.Func == AggMax && cmp > 0) {
				b := l
				best = &b
			}
		}
		if best == nil {
			return nil, nil
		}
		return *best, nil
	}
	return nil, fmt.Errorf("sparql: unknown aggregate %s", agg.Func)
}
