package gsacs

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"

	"repro/internal/datagen"
	"repro/internal/grdf"
	"repro/internal/rdf"
	"repro/internal/seconto"
	"repro/internal/store"
)

func scenarioEngine(t *testing.T, cacheSize int) (*Engine, *datagen.Scenario) {
	t.Helper()
	sc := datagen.NewScenario(datagen.ScenarioConfig{Seed: 9, Sites: 6})
	reasoner := NewOWLReasoner(sc.Merged, grdf.Ontology(), seconto.Ontology())
	e := New(sc.Policies, sc.Merged, Options{Reasoner: reasoner, CacheSize: cacheSize})
	return e, sc
}

func TestDecideMainRepairSiteExtentOnly(t *testing.T) {
	e, sc := scenarioEngine(t, 0)
	site := sc.Chemical.Sites[0].IRI
	acc := e.Decide(datagen.RoleMainRepair, seconto.ActionView, site)
	if !acc.Allowed || acc.Full {
		t.Fatalf("access = %+v", acc)
	}
	boundedBy := rdf.IRI(grdf.NS + "boundedBy")
	if !acc.PropertyVisible(boundedBy, e.Reasoner()) {
		t.Error("boundedBy not visible")
	}
	for _, hidden := range []rdf.IRI{datagen.HasSiteName, datagen.HasChemicalInfo, datagen.HasContactPhone} {
		if acc.PropertyVisible(hidden, e.Reasoner()) {
			t.Errorf("%s visible to main repair", hidden.LocalName())
		}
	}
}

func TestDecideMainRepairStreamsFull(t *testing.T) {
	e, sc := scenarioEngine(t, 0)
	stream := sc.Hydrology.Streams[0].IRI
	acc := e.Decide(datagen.RoleMainRepair, seconto.ActionView, stream)
	if !acc.Allowed || !acc.Full {
		t.Fatalf("access = %+v", acc)
	}
}

func TestDecideDefaultDeny(t *testing.T) {
	e, sc := scenarioEngine(t, 0)
	site := sc.Chemical.Sites[0].IRI
	acc := e.Decide(rdf.IRI(seconto.NS+"Nobody"), seconto.ActionView, site)
	if acc.Allowed {
		t.Errorf("unknown role allowed: %+v", acc)
	}
	// wrong action
	acc = e.Decide(datagen.RoleMainRepair, seconto.ActionModify, site)
	if acc.Allowed {
		t.Errorf("modify allowed for view-only role: %+v", acc)
	}
}

func TestDecideEmergencyFullViaReasoning(t *testing.T) {
	e, sc := scenarioEngine(t, 0)
	// The EmergencyAll policy targets grdf:Feature; only reasoning connects
	// app:ChemSite ⊑ grdf:Feature.
	site := sc.Chemical.Sites[0].IRI
	acc := e.Decide(datagen.RoleEmergency, seconto.ActionView, site)
	if !acc.Allowed || !acc.Full {
		t.Fatalf("access = %+v", acc)
	}
	stream := sc.Hydrology.Streams[0].IRI
	acc = e.Decide(datagen.RoleEmergency, seconto.ActionView, stream)
	if !acc.Allowed || !acc.Full {
		t.Fatalf("stream access = %+v", acc)
	}
}

func TestDecideWithoutReasonerMissesSubclasses(t *testing.T) {
	sc := datagen.NewScenario(datagen.ScenarioConfig{Seed: 9, Sites: 4})
	e := New(sc.Policies, sc.Merged, Options{}) // nil reasoner
	site := sc.Chemical.Sites[0].IRI
	// grdf:Feature policy still matches because NewFeature asserts the
	// direct subclass edge, which nilReasoner follows one level.
	acc := e.Decide(datagen.RoleEmergency, seconto.ActionView, site)
	if !acc.Allowed {
		t.Fatalf("access = %+v", acc)
	}
}

func TestFilterResourceMainRepair(t *testing.T) {
	e, sc := scenarioEngine(t, 0)
	site := sc.Chemical.Sites[0].IRI
	acc := e.Decide(datagen.RoleMainRepair, seconto.ActionView, site)
	triples := e.FilterResource(site, acc)
	if len(triples) == 0 {
		t.Fatal("no triples")
	}
	view := store.New()
	view.AddAll(triples)
	// extent must decode from the filtered view alone
	env, ok := grdf.EnvelopeOfFeature(view, site)
	if !ok || env.Area() == 0 {
		t.Errorf("envelope not reconstructible: %+v %t", env, ok)
	}
	// nothing else leaks
	for _, tr := range triples {
		pred := tr.Predicate.(rdf.IRI)
		switch {
		case pred == rdf.RDFType,
			strings.HasPrefix(string(pred), grdf.NS):
		default:
			t.Errorf("leaked predicate %s", pred)
		}
	}
	if view.Count(nil, datagen.HasChemName, nil) != 0 {
		t.Error("chemical names leaked to main repair")
	}
}

func TestViewHazmatSeesNamesNotCodes(t *testing.T) {
	e, _ := scenarioEngine(t, 0)
	view := e.View(datagen.RoleHazmat, seconto.ActionView)
	if view.Count(nil, datagen.HasChemName, nil) == 0 {
		t.Error("hazmat cannot see chemical names")
	}
	if n := view.Count(nil, datagen.HasChemCode, nil); n != 0 {
		t.Errorf("hazmat sees %d chemical codes", n)
	}
	if n := view.Count(nil, datagen.HasQuantityKg, nil); n != 0 {
		t.Errorf("hazmat sees %d quantities", n)
	}
	if n := view.Count(nil, datagen.HasContactPhone, nil); n != 0 {
		t.Errorf("hazmat sees %d contacts", n)
	}
	if view.Count(nil, datagen.HasStreamName, nil) == 0 {
		t.Error("hazmat cannot see stream layer")
	}
}

func TestViewEmergencySeesEverything(t *testing.T) {
	e, sc := scenarioEngine(t, 0)
	view := e.View(datagen.RoleEmergency, seconto.ActionView)
	for _, pred := range []rdf.IRI{
		datagen.HasChemName, datagen.HasChemCode, datagen.HasQuantityKg,
		datagen.HasContactPhone, datagen.HasSiteName, datagen.HasStreamName,
	} {
		if view.Count(nil, pred, nil) != sc.Merged.Count(nil, pred, nil) {
			t.Errorf("emergency view missing %s triples", pred.LocalName())
		}
	}
}

func TestViewMonotonicity(t *testing.T) {
	// Every triple in a role's view must exist in the source store, and the
	// main-repair view must be a subset of hazmat's site properties plus
	// hydro, which is a subset of emergency's.
	e, sc := scenarioEngine(t, 0)
	mr := e.View(datagen.RoleMainRepair, seconto.ActionView)
	hz := e.View(datagen.RoleHazmat, seconto.ActionView)
	em := e.View(datagen.RoleEmergency, seconto.ActionView)
	for _, tr := range mr.Triples() {
		if !sc.Merged.Has(tr) {
			t.Errorf("fabricated triple %s", tr)
		}
	}
	if !(mr.Len() < hz.Len() && hz.Len() < em.Len()) {
		t.Errorf("view sizes not monotone: %d %d %d", mr.Len(), hz.Len(), em.Len())
	}
}

func TestQueryOverFilteredView(t *testing.T) {
	e, _ := scenarioEngine(t, 0)
	q := `SELECT ?name WHERE { ?s app:hasChemName ?name }`
	res, err := e.Query(datagen.RoleMainRepair, seconto.ActionView, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bindings) != 0 {
		t.Errorf("main repair query saw %d chemical names", len(res.Bindings))
	}
	res, err = e.Query(datagen.RoleHazmat, seconto.ActionView, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bindings) == 0 {
		t.Error("hazmat query saw no chemical names")
	}
}

func TestDenyOverridesAndPriority(t *testing.T) {
	data := store.New()
	res := rdf.IRI("http://e/r")
	cls := rdf.IRI("http://e/C")
	data.Add(rdf.T(res, rdf.RDFType, cls))
	data.Add(rdf.T(res, rdf.IRI("http://e/p"), rdf.NewString("v")))

	role := rdf.IRI(seconto.NS + "R")
	// equal priority: deny overrides
	set := &seconto.Set{Rules: []seconto.Rule{
		{ID: "permit", Subject: role, Action: seconto.ActionView, Resource: cls, Permit: true},
		{ID: "deny", Subject: role, Action: seconto.ActionView, Resource: cls, Permit: false},
	}}
	e := New(set, data, Options{})
	if acc := e.Decide(role, seconto.ActionView, res); acc.Allowed {
		t.Errorf("deny did not override: %+v", acc)
	}
	// higher-priority permit wins over lower-priority deny
	set = &seconto.Set{Rules: []seconto.Rule{
		{ID: "deny", Subject: role, Action: seconto.ActionView, Resource: cls, Permit: false, Priority: 1},
		{ID: "permit", Subject: role, Action: seconto.ActionView, Resource: cls, Permit: true, Priority: 5},
	}}
	e = New(set, data, Options{})
	if acc := e.Decide(role, seconto.ActionView, res); !acc.Allowed || !acc.Full {
		t.Errorf("high-priority permit lost: %+v", acc)
	}
	// property-level deny carves out of a full permit
	set = &seconto.Set{Rules: []seconto.Rule{
		{ID: "permit", Subject: role, Action: seconto.ActionView, Resource: cls, Permit: true, Priority: 1},
		{ID: "denyP", Subject: role, Action: seconto.ActionView, Resource: cls, Permit: false,
			Properties: []rdf.IRI{rdf.IRI("http://e/p")}, Priority: 5},
	}}
	e = New(set, data, Options{})
	acc := e.Decide(role, seconto.ActionView, res)
	if !acc.Allowed || !acc.Full {
		t.Fatalf("access = %+v", acc)
	}
	if acc.PropertyVisible(rdf.IRI("http://e/p"), e.Reasoner()) {
		t.Error("denied property still visible")
	}
	if !acc.PropertyVisible(rdf.IRI("http://e/q"), e.Reasoner()) {
		t.Error("unrelated property hidden")
	}
}

func TestSpatialScopePolicy(t *testing.T) {
	sc := datagen.NewScenario(datagen.ScenarioConfig{Seed: 9, Sites: 6})
	// Scope: tiny box around the first site only.
	siteBounds := sc.Chemical.Sites[0].Bounds
	scope := siteBounds
	scope.MinX -= 10
	scope.MinY -= 10
	scope.MaxX += 10
	scope.MaxY += 10
	role := rdf.IRI(seconto.NS + "FieldTeam")
	set := &seconto.Set{Rules: []seconto.Rule{{
		ID: seconto.NS + "ScopedPermit", Subject: role,
		Action: seconto.ActionView, Resource: datagen.ChemSite, Permit: true,
		SpatialScope: &scope,
	}}}
	e := New(set, sc.Merged, Options{})
	if acc := e.Decide(role, seconto.ActionView, sc.Chemical.Sites[0].IRI); !acc.Allowed {
		t.Error("in-scope site denied")
	}
	denied := 0
	for _, s := range sc.Chemical.Sites[1:] {
		if acc := e.Decide(role, seconto.ActionView, s.IRI); !acc.Allowed {
			denied++
		}
	}
	if denied != len(sc.Chemical.Sites)-1 {
		t.Errorf("out-of-scope denied = %d / %d", denied, len(sc.Chemical.Sites)-1)
	}
}

func TestQueryCacheBasics(t *testing.T) {
	c := NewQueryCache(2)
	s1, s2, s3 := store.New(), store.New(), store.New()
	c.Put("a", 1, s1)
	c.Put("b", 1, s2)
	if got, ok := c.Get("a", 1); !ok || got != s1 {
		t.Error("Get(a) failed")
	}
	// insert third: evicts LRU ("b", since "a" was just used)
	c.Put("c", 1, s3)
	if _, ok := c.Get("b", 1); ok {
		t.Error("LRU not evicted")
	}
	if _, ok := c.Get("a", 1); !ok {
		t.Error("recently used entry evicted")
	}
	// generation mismatch invalidates
	if _, ok := c.Get("a", 2); ok {
		t.Error("stale entry served")
	}
	if c.Len() != 1 { // "a" dropped by stale read; "c" remains
		t.Errorf("Len = %d", c.Len())
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 2 {
		t.Errorf("stats = %d/%d", hits, misses)
	}
	c.Clear()
	if c.Len() != 0 {
		t.Error("Clear failed")
	}
}

func TestEngineViewCachingAndInvalidation(t *testing.T) {
	e, sc := scenarioEngine(t, 8)
	v1 := e.View(datagen.RoleHazmat, seconto.ActionView)
	v2 := e.View(datagen.RoleHazmat, seconto.ActionView)
	if v1 != v2 {
		t.Error("second View not served from cache")
	}
	hits, _ := e.Cache().Stats()
	if hits == 0 {
		t.Error("no cache hits recorded")
	}
	// mutate data: cache must invalidate
	newSite := rdf.IRI(rdf.AppNS + "chem/siteNEW")
	grdf.NewFeature(sc.Merged, newSite, datagen.ChemSite)
	sc.Merged.Add(rdf.T(newSite, datagen.HasSiteName, rdf.NewString("Fresh Plant")))
	v3 := e.View(datagen.RoleHazmat, seconto.ActionView)
	if v3 == v2 {
		t.Error("stale view served after mutation")
	}
	if !v3.Has(rdf.T(newSite, datagen.HasSiteName, rdf.NewString("Fresh Plant"))) {
		t.Error("new site missing from refreshed view")
	}
}

func TestOntoRepository(t *testing.T) {
	repo := NewOntoRepository()
	repo.Register("grdf", grdf.Ontology())
	repo.Register("seconto", seconto.Ontology())
	if names := repo.Names(); len(names) != 2 || names[0] != "grdf" {
		t.Errorf("Names = %v", names)
	}
	if _, err := repo.Get("grdf"); err != nil {
		t.Error(err)
	}
	if _, err := repo.Get("nope"); err == nil {
		t.Error("missing ontology found")
	}
	combined := repo.Combined()
	if combined.Len() < grdf.Ontology().Len() {
		t.Errorf("Combined len = %d", combined.Len())
	}
	if len(repo.Graphs()) != 2 {
		t.Error("Graphs() wrong")
	}
}

func TestServerEndpoints(t *testing.T) {
	e, sc := scenarioEngine(t, 4)
	repo := NewOntoRepository()
	repo.Register("grdf", grdf.Ontology())
	srv := httptest.NewServer(NewServer(e, repo))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 64*1024)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, `"ok"`) {
		t.Errorf("healthz = %d %s", code, body)
	}
	if code, body := get("/roles"); code != 200 || !strings.Contains(body, "MainRep") {
		t.Errorf("roles = %d %s", code, body)
	}
	if code, body := get("/ontologies"); code != 200 || !strings.Contains(body, "grdf") {
		t.Errorf("ontologies = %d %s", code, body)
	}

	// main repair view: no chemical names
	code, body := get("/view?role=MainRep")
	if code != 200 {
		t.Fatalf("view = %d", code)
	}
	if strings.Contains(body, "Sulfuric") {
		t.Error("chemical data leaked in main repair view")
	}
	if !strings.Contains(body, "lowerCorner") {
		t.Error("extent missing from main repair view")
	}

	// resource endpoint: denied for unknown role
	site := url.QueryEscape(string(sc.Chemical.Sites[0].IRI))
	if code, _ := get("/resource?role=Nobody&iri=" + site); code != 403 {
		t.Errorf("resource for unknown role = %d", code)
	}
	if code, _ := get("/resource?role=MainRep&iri=" + site); code != 200 {
		t.Errorf("resource for MainRep = %d", code)
	}
	if code, _ := get("/resource?role=MainRep"); code != 400 {
		t.Errorf("resource without iri = %d", code)
	}

	// query endpoint
	code, body = get("/query?role=Hazmat&q=" + urlQueryEscape(`SELECT ?n WHERE { ?s app:hasChemName ?n }`))
	if code != 200 {
		t.Fatalf("query = %d %s", code, body)
	}
	var parsed map[string]any
	if err := json.Unmarshal([]byte(body), &parsed); err != nil {
		t.Fatalf("query response not JSON: %v", err)
	}
	rows, _ := parsed["results"].([]any)
	if len(rows) == 0 {
		t.Error("hazmat query returned no rows")
	}
	if code, _ := get("/query?role=Hazmat&q=NOT+SPARQL"); code != 400 {
		t.Errorf("bad query = %d", code)
	}
	if code, _ := get("/view"); code != 400 {
		t.Errorf("view without role = %d", code)
	}
}

func urlQueryEscape(s string) string {
	r := strings.NewReplacer(" ", "+", "?", "%3F", "{", "%7B", "}", "%7D", "#", "%23")
	return r.Replace(s)
}

func TestAuditTrail(t *testing.T) {
	e, sc := scenarioEngine(t, 0)
	if e.AuditTrail() != nil {
		t.Error("audit enabled by default")
	}
	e.EnableAudit(3)
	site := sc.Chemical.Sites[0].IRI
	e.Decide(datagen.RoleMainRepair, seconto.ActionView, site)
	e.Decide(rdf.IRI(seconto.NS+"Nobody"), seconto.ActionView, site)
	trail := e.AuditTrail()
	if len(trail) != 2 {
		t.Fatalf("trail = %d entries", len(trail))
	}
	if !trail[0].Allowed || trail[0].Subject != datagen.RoleMainRepair {
		t.Errorf("entry 0 = %+v", trail[0])
	}
	if trail[1].Allowed {
		t.Errorf("entry 1 = %+v", trail[1])
	}
	if len(trail[0].Policies) == 0 {
		t.Error("matched policies not recorded")
	}
	// Ring wraps: capacity 3, add 3 more.
	for i := 0; i < 3; i++ {
		e.Decide(datagen.RoleHazmat, seconto.ActionView, site)
	}
	trail = e.AuditTrail()
	if len(trail) != 3 {
		t.Fatalf("wrapped trail = %d", len(trail))
	}
	if trail[0].Seq >= trail[1].Seq || trail[2].Subject != datagen.RoleHazmat {
		t.Errorf("ring order wrong: %+v", trail)
	}
}

func TestConcurrentViewsAndWrites(t *testing.T) {
	sc := datagen.NewScenario(datagen.ScenarioConfig{Seed: 9, Sites: 6})
	admin := rdf.IRI(seconto.NS + "Admin")
	sc.Policies.Rules = append(sc.Policies.Rules, seconto.Rule{
		ID: seconto.NS + "AdminModify", Subject: admin,
		Action: seconto.ActionModify, Resource: datagen.ChemSite, Permit: true,
	})
	e := New(sc.Policies, sc.Merged, Options{CacheSize: 8})
	e.EnableAudit(64)
	site := sc.Chemical.Sites[0].IRI

	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				e.View(datagen.RoleHazmat, seconto.ActionView)
				e.Decide(datagen.RoleMainRepair, seconto.ActionView, site)
			}
		}()
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				tr := rdf.T(site, datagen.HasSiteName,
					rdf.NewString(fmt.Sprintf("Name-%d-%d", w, i)))
				if err := e.Insert(admin, tr); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := e.Data().Validate(); err != nil {
		t.Errorf("store inconsistent after concurrency: %v", err)
	}
	if len(e.AuditTrail()) == 0 {
		t.Error("no audit entries recorded")
	}
}

func TestServerAuditEndpoint(t *testing.T) {
	e, sc := scenarioEngine(t, 4)
	e.EnableAudit(16)
	srv := httptest.NewServer(NewServer(e, nil))
	defer srv.Close()

	// generate some decisions
	e.Decide(datagen.RoleMainRepair, seconto.ActionView, sc.Chemical.Sites[0].IRI)
	resp, err := srv.Client().Get(srv.URL + "/audit")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var parsed struct {
		Entries []struct {
			Subject string `json:"subject"`
			Allowed bool   `json:"allowed"`
		} `json:"entries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&parsed); err != nil {
		t.Fatal(err)
	}
	if len(parsed.Entries) == 0 {
		t.Fatal("no audit entries over HTTP")
	}
	if !strings.Contains(parsed.Entries[0].Subject, "MainRep") {
		t.Errorf("entry = %+v", parsed.Entries[0])
	}
}
