package gsacs

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strings"

	"repro/internal/ntriples"
	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/seconto"
	"repro/internal/sparql"
	"repro/internal/turtle"
)

// Server is the G-SACS front-end of Fig. 3: "provides the front-end
// interface to accept client requests and respond back. This module only
// defines communication points and hides the internal details of the system
// from clients."
//
// Every request flows through the obs middleware: it gets a trace ID
// (echoed in the X-Trace-Id response header and attached to every log line
// for the request), a per-route latency observation, and a status-code
// counter. The registry is scraped at /metrics.
type Server struct {
	engine  *Engine
	repo    *OntoRepository
	mux     *http.ServeMux
	handler http.Handler
	metrics *obs.Registry
	logger  *slog.Logger
}

// ServerOption customizes NewServer.
type ServerOption func(*Server)

// WithMetrics wires a registry into the HTTP middleware and mounts its
// Prometheus exposition at /metrics.
func WithMetrics(reg *obs.Registry) ServerOption {
	return func(s *Server) { s.metrics = reg }
}

// WithLogger enables structured per-request logging.
func WithLogger(l *slog.Logger) ServerOption {
	return func(s *Server) { s.logger = l }
}

// WithPprof mounts net/http/pprof profile endpoints under /debug/pprof/.
func WithPprof() ServerOption {
	return func(s *Server) {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

// routes are the fixed mux patterns, reused as bounded metric label values.
var routes = []string{
	"/healthz", "/roles", "/view", "/resource", "/query",
	"/ontologies", "/insert", "/delete", "/audit", "/metrics",
}

// routeLabel maps a request path to a bounded label value so unknown paths
// cannot explode metric cardinality.
func routeLabel(r *http.Request) string {
	for _, known := range routes {
		if r.URL.Path == known {
			return known
		}
	}
	if strings.HasPrefix(r.URL.Path, "/debug/pprof/") {
		return "/debug/pprof/"
	}
	return "other"
}

// NewServer builds the HTTP front-end over an engine and an ontology
// repository (repo may be nil). If the engine carries a metrics registry
// and no WithMetrics option is given, the engine's registry is used.
func NewServer(engine *Engine, repo *OntoRepository, opts ...ServerOption) *Server {
	s := &Server{engine: engine, repo: repo, mux: http.NewServeMux()}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/roles", s.handleRoles)
	s.mux.HandleFunc("/view", s.handleView)
	s.mux.HandleFunc("/resource", s.handleResource)
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/ontologies", s.handleOntologies)
	s.mux.HandleFunc("/insert", s.handleMutate(true))
	s.mux.HandleFunc("/delete", s.handleMutate(false))
	s.mux.HandleFunc("/audit", s.handleAudit)
	for _, o := range opts {
		o(s)
	}
	if s.metrics == nil {
		s.metrics = engine.Metrics()
	}
	if s.metrics != nil {
		s.mux.Handle("/metrics", s.metrics.Handler())
	}
	s.handler = obs.Middleware(obs.MiddlewareConfig{
		Registry: s.metrics,
		Logger:   s.logger,
		Route:    routeLabel,
	}, s.mux)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// writeJSON encodes v, logging (rather than silently discarding) encode
// failures — by then the status line is gone, so logging is all that's left.
func (s *Server) writeJSON(w http.ResponseWriter, r *http.Request, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		obs.Logger(r.Context()).Warn("encode response", "path", r.URL.Path, "err", err.Error())
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{
		"status":     "ok",
		"triples":    s.engine.Data().Len(),
		"generation": s.engine.Data().Generation(),
	}
	if c := s.engine.Cache(); c != nil {
		body["cache"] = c.Snapshot()
	}
	if st := s.engine.AuditStats(); st.Capacity > 0 {
		body["audit"] = st
	}
	s.writeJSON(w, r, body)
}

func (s *Server) handleRoles(w http.ResponseWriter, r *http.Request) {
	subjects := s.engine.Policies().Subjects()
	out := make([]string, len(subjects))
	for i, sub := range subjects {
		out[i] = string(sub)
	}
	s.writeJSON(w, r, map[string]any{"roles": out})
}

func (s *Server) handleOntologies(w http.ResponseWriter, r *http.Request) {
	names := []string{}
	if s.repo != nil {
		names = s.repo.Names()
	}
	s.writeJSON(w, r, map[string]any{"ontologies": names})
}

// resolveRole accepts a full IRI or a local name under the seconto namespace.
func resolveRole(raw string) (rdf.IRI, error) {
	if raw == "" {
		return "", fmt.Errorf("missing role parameter")
	}
	if strings.Contains(raw, "://") {
		return rdf.IRI(raw), nil
	}
	return rdf.IRI(seconto.NS + raw), nil
}

func (s *Server) handleView(w http.ResponseWriter, r *http.Request) {
	role, err := resolveRole(r.URL.Query().Get("role"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	view := s.engine.View(role, seconto.ActionView)
	switch r.URL.Query().Get("format") {
	case "ntriples":
		w.Header().Set("Content-Type", "application/n-triples")
		if err := ntriples.Write(w, view.Graph()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	default:
		w.Header().Set("Content-Type", "text/turtle")
		if err := turtle.Write(w, view.Graph(), nil); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
}

func (s *Server) handleResource(w http.ResponseWriter, r *http.Request) {
	role, err := resolveRole(r.URL.Query().Get("role"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	iri := r.URL.Query().Get("iri")
	if iri == "" {
		http.Error(w, "missing iri parameter", http.StatusBadRequest)
		return
	}
	res := rdf.IRI(iri)
	acc := s.engine.Decide(role, seconto.ActionView, res)
	if !acc.Allowed {
		http.Error(w, "access denied", http.StatusForbidden)
		return
	}
	g := rdf.NewGraph()
	for _, t := range s.engine.FilterResource(res, acc) {
		g.Add(t)
	}
	w.Header().Set("Content-Type", "text/turtle")
	if err := turtle.Write(w, g, nil); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	role, err := resolveRole(r.URL.Query().Get("role"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	res, err := s.engine.Query(role, seconto.ActionView, q)
	if err != nil {
		obs.Logger(r.Context()).Warn("query failed",
			"role", string(role), "err", err.Error())
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	obs.Logger(r.Context()).Info("query served",
		"role", string(role), "kind", res.Kind.String(), "solutions", len(res.Bindings))
	s.writeJSON(w, r, resultJSON(res))
}

// handleAudit dumps the decision audit trail (empty when auditing is off),
// prefixed with the ring's occupancy/loss stats.
func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	trail := s.engine.AuditTrail()
	type row struct {
		Seq      uint64   `json:"seq"`
		Subject  string   `json:"subject"`
		Action   string   `json:"action"`
		Resource string   `json:"resource"`
		Allowed  bool     `json:"allowed"`
		Full     bool     `json:"full"`
		Policies []string `json:"policies"`
	}
	rows := make([]row, len(trail))
	for i, e := range trail {
		pols := make([]string, len(e.Policies))
		for j, p := range e.Policies {
			pols[j] = string(p)
		}
		rows[i] = row{
			Seq: e.Seq, Subject: string(e.Subject), Action: string(e.Action),
			Resource: e.Resource, Allowed: e.Allowed, Full: e.Full, Policies: pols,
		}
	}
	s.writeJSON(w, r, map[string]any{"stats": s.engine.AuditStats(), "entries": rows})
}

// handleMutate serves POST /insert and /delete: the request body is one or
// more N-Triples statements, applied through the write-authorization path.
func (s *Server) handleMutate(insert bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		role, err := resolveRole(r.URL.Query().Get("role"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		g, err := ntriples.NewReader(r.Body).ReadAll()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		applied := 0
		for _, t := range g.Triples() {
			if insert {
				err = s.engine.Insert(role, t)
			} else {
				err = s.engine.Delete(role, t)
			}
			if err != nil {
				var denied *ErrDenied
				status := http.StatusBadRequest
				if errors.As(err, &denied) {
					status = http.StatusForbidden
				}
				http.Error(w, fmt.Sprintf("%v (applied %d before failure)", err, applied), status)
				return
			}
			applied++
		}
		s.writeJSON(w, r, map[string]any{"applied": applied})
	}
}

// resultJSON renders a SPARQL result in a SPARQL-JSON-like shape.
func resultJSON(res *sparql.Result) map[string]any {
	switch res.Kind {
	case sparql.Ask:
		return map[string]any{"boolean": res.Bool}
	case sparql.Construct, sparql.Describe:
		return map[string]any{"triples": ntriples.Format(res.Graph)}
	default:
		vars := make([]string, len(res.Vars))
		for i, v := range res.Vars {
			vars[i] = string(v)
		}
		rows := make([]map[string]string, len(res.Bindings))
		for i, b := range res.Bindings {
			row := map[string]string{}
			for v, t := range b {
				row[string(v)] = t.String()
			}
			rows[i] = row
		}
		return map[string]any{"head": map[string]any{"vars": vars}, "results": rows}
	}
}
