package gsacs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/admission"
	"repro/internal/federation"
	"repro/internal/ntriples"
	"repro/internal/obs"
	"repro/internal/obs/prof"
	"repro/internal/obs/workload"
	"repro/internal/rdf"
	"repro/internal/repl"
	"repro/internal/seconto"
	"repro/internal/sparql"
	"repro/internal/store"
	"repro/internal/turtle"
)

// Server is the G-SACS front-end of Fig. 3: "provides the front-end
// interface to accept client requests and respond back. This module only
// defines communication points and hides the internal details of the system
// from clients."
//
// The HTTP surface is versioned under /v1/ (see the README's "HTTP API v1"
// section); the original unversioned paths remain as thin aliases to the
// same handlers. Errors are returned as a uniform JSON envelope
// {"error": ..., "code": ..., "trace_id": ...}.
//
// Every request flows through the obs middleware: it gets a trace ID
// (echoed in the X-Trace-Id response header and attached to every log line
// for the request), a per-route latency observation, and a status-code
// counter. The registry is scraped at /metrics.
type Server struct {
	engine       *Engine
	repo         *OntoRepository
	fed          *federation.Federator
	mux          *http.ServeMux
	handler      http.Handler
	metrics      *obs.Registry
	logger       *slog.Logger
	queryTimeout time.Duration
	maxBodyBytes int64
	// ready gates every route except /healthz and /metrics while the durable
	// state is still being recovered (nil = always ready).
	ready func() bool
	// tracer, when set, records a span tree per request and serves it at
	// /v1/traces (see WithTracer).
	tracer *obs.Tracer
	// walStatus, when set, contributes the durability block to /healthz
	// (see WithWALStatus).
	walStatus func() any
	// slo, when set, receives every request's (route, latency, status) and
	// serves the objective report at /v1/slo (see WithSLO).
	slo *obs.SLOEngine
	// replLeader, when set, mounts the WAL replication endpoints
	// (/v1/wal/stream, /v1/wal/snapshot) served by the returned leader; a
	// nil return answers 503 while durable recovery is still running
	// (see WithReplLeader).
	replLeader func() *repl.Leader
	// replStatus, when set, marks this server a read replica: /healthz
	// carries the replication block and readiness follows the follower's
	// lag gate (see WithReplStatus).
	replStatus func() repl.FollowerStatus
	// leaderURL, when set, answers every mutation with 421 and a Location
	// header pointing at the leader (see WithMutationRedirect).
	leaderURL string
	// admission, when set, gates the query/view/mutate routes behind the
	// adaptive concurrency limiter — over-capacity requests answer 429
	// with Retry-After instead of queueing without bound (see
	// WithAdmission).
	admission *admission.Controller
	// priorityHeader names the request header clients use to tag a
	// priority tier ("high" / "normal" / "low"); empty disables the
	// header.
	priorityHeader string
	// highRoles maps resolved role IRIs onto the High admission tier —
	// the paper's emergency-response roles, whose queries must outlive
	// best-effort traffic under shed.
	highRoles map[rdf.IRI]bool
	// workload, when set, serves the per-fingerprint query stats at
	// /v1/queries and attributes admission sheds to fingerprints (see
	// WithWorkload).
	workload *workload.Table
	// profiler, when set, serves the burn-triggered capture ring at
	// /v1/profiles (see WithProfiler).
	profiler *prof.Profiler
	// cluster, when set, serves the fleet rollup at /v1/cluster (see
	// WithCluster).
	cluster *clusterRollup
}

// ServerOption customizes NewServer.
type ServerOption func(*Server)

// WithMetrics wires a registry into the HTTP middleware and mounts its
// Prometheus exposition at /metrics.
func WithMetrics(reg *obs.Registry) ServerOption {
	return func(s *Server) { s.metrics = reg }
}

// WithLogger enables structured per-request logging.
func WithLogger(l *slog.Logger) ServerOption {
	return func(s *Server) { s.logger = l }
}

// WithPprof mounts net/http/pprof profile endpoints under /debug/pprof/.
func WithPprof() ServerOption {
	return func(s *Server) {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

// WithQueryTimeout bounds the evaluation of each /query request; a query
// exceeding the deadline is cancelled and answered with 504 and code
// "timeout". Zero disables the bound.
func WithQueryTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.queryTimeout = d }
}

// WithFederator routes /v1/query through a multi-source federator instead
// of the local engine alone. Federated responses carry a "degraded" flag
// and a per-source "sources" status block; a request fails outright only
// when every source does.
func WithFederator(f *federation.Federator) ServerOption {
	return func(s *Server) { s.fed = f }
}

// WithMaxBodyBytes bounds request bodies on the mutating endpoints
// (/insert, /delete, /update); an oversized body is answered with 413 and
// code "body_too_large". Zero disables the bound.
func WithMaxBodyBytes(n int64) ServerOption {
	return func(s *Server) { s.maxBodyBytes = n }
}

// WithReadiness installs a readiness probe. While it returns false, every
// route except /healthz and /metrics answers 503 with code "recovering",
// and /healthz reports the recovering status without touching the engine —
// the server can therefore start listening immediately and recover its
// durable state in the background.
func WithReadiness(ready func() bool) ServerOption {
	return func(s *Server) { s.ready = ready }
}

// WithTracer records a hierarchical span tree for every request (root span
// in the middleware, child spans in the decision engine, query cache, SPARQL
// join executor, federation fan-out and WAL) and mounts the inspection
// surface: /v1/traces lists recent traces, /v1/traces/{id} renders one tree.
func WithTracer(t *obs.Tracer) ServerOption {
	return func(s *Server) { s.tracer = t }
}

// WithWALStatus contributes a durability block to /healthz — typically
// wal.Repository.WALStatus wrapped in a closure. The function must be safe
// to call concurrently and may return nil while the repository is still
// being opened.
func WithWALStatus(status func() any) ServerOption {
	return func(s *Server) { s.walStatus = status }
}

// WithSLO tracks every request against service-level objectives: the
// middleware feeds the engine one observation per request, /v1/slo serves
// the windowed quantile / burn-rate report, and grdf_slo_* gauges are
// registered on the server's metrics registry.
func WithSLO(e *obs.SLOEngine) ServerOption {
	return func(s *Server) { s.slo = e }
}

// WithReplLeader mounts the WAL-shipping endpoints — GET /v1/wal/stream
// (long-poll record stream) and GET /v1/wal/snapshot (bootstrap state
// transfer) — on whatever leader get() currently returns. A nil return
// (durable recovery still running, so the repository is not yet open)
// answers 503 "recovering". Both routes are excluded from SLO accounting:
// a caught-up stream request parks on purpose for the whole poll window.
func WithReplLeader(get func() *repl.Leader) ServerOption {
	return func(s *Server) { s.replLeader = get }
}

// WithReplStatus marks this server a read replica fed by status(): /healthz
// gains a "replication" block, and readiness is gated on the follower's
// state — 503 "recovering" before the bootstrap snapshot lands, 503
// "lagging" whenever replication lag exceeds the configured bound, so a
// load balancer health-checking /healthz routes around a stale replica.
func WithReplStatus(status func() repl.FollowerStatus) ServerOption {
	return func(s *Server) { s.replStatus = status }
}

// WithMutationRedirect rejects every mutation (/insert, /delete, /update,
// /v1/mutate) with 421 "not_leader" and a Location header addressed to the
// leader — a follower's store is a replica; writing to it would fork
// history. Clients retry the same request against the Location target.
func WithMutationRedirect(leaderURL string) ServerOption {
	return func(s *Server) { s.leaderURL = leaderURL }
}

// AdmissionConfig wires a Controller into the server.
type AdmissionConfig struct {
	// Controller is the adaptive limiter (required).
	Controller *admission.Controller
	// PriorityHeader names the header clients use to tag a request's tier
	// ("high" / "normal" / "low"; see admission.ParsePriority). Empty
	// disables client-supplied priorities.
	PriorityHeader string
	// HighPriorityRoles are role names (local names or full IRIs) whose
	// queries ride the High tier regardless of headers — default
	// EmergencyResponse, per the paper's Sec 7.1 scenario. Mutations are
	// always High: losing a write costs more than delaying a read.
	HighPriorityRoles []string
}

// WithAdmission puts the adaptive admission controller between the
// readiness gate and the handlers: every query/view/mutate request must win
// a concurrency slot (possibly after a short bounded queue wait) or is
// answered 429 "overloaded" with a Retry-After estimate. Control-plane
// routes — /healthz, /metrics, /v1/slo, /v1/traces, the WAL replication
// endpoints — bypass the gate: the signals used to diagnose an overload
// must stay readable during one.
func WithAdmission(cfg AdmissionConfig) ServerOption {
	return func(s *Server) {
		s.admission = cfg.Controller
		s.priorityHeader = cfg.PriorityHeader
		roles := cfg.HighPriorityRoles
		if len(roles) == 0 {
			roles = []string{"EmergencyResponse"}
		}
		s.highRoles = make(map[rdf.IRI]bool, len(roles))
		for _, r := range roles {
			if iri, err := resolveRole(r); err == nil {
				s.highRoles[iri] = true
			}
		}
	}
}

// WithWorkload attaches the per-fingerprint workload stats table: the
// engine folds every evaluated query into it, the admission gate attributes
// sheds to fingerprints, and GET /v1/queries serves the heavy-hitter view
// (top-K by count, or one fingerprint's detail via ?fp=<hex>).
func WithWorkload(t *workload.Table) ServerOption {
	return func(s *Server) {
		s.workload = t
		s.engine.SetWorkload(t)
	}
}

// WithProfiler mounts the burn-triggered capture ring at /v1/profiles: the
// listing reports capture metadata, ?id=N&kind=cpu|heap serves raw pprof
// bytes for `go tool pprof`. The route bypasses the readiness gate — the
// profile of a collapse must stay fetchable while the server refuses work.
func WithProfiler(p *prof.Profiler) ServerOption {
	return func(s *Server) { s.profiler = p }
}

// routes are the fixed mux patterns, reused as bounded metric label values.
// The /v1/ names are canonical; the bare names are legacy aliases.
var routes = []string{
	"/v1/roles", "/v1/view", "/v1/resource", "/v1/query",
	"/v1/ontologies", "/v1/insert", "/v1/delete", "/v1/update", "/v1/mutate",
	"/v1/store", "/v1/audit", "/v1/traces", "/v1/slo",
	"/v1/queries", "/v1/profiles", "/v1/cluster",
	"/v1/wal/stream", "/v1/wal/snapshot",
	"/healthz", "/roles", "/view", "/resource", "/query",
	"/ontologies", "/insert", "/delete", "/update", "/audit", "/metrics",
}

// routeLabel maps a request path to a bounded label value so unknown paths
// cannot explode metric cardinality.
func routeLabel(r *http.Request) string {
	for _, known := range routes {
		if r.URL.Path == known {
			return known
		}
	}
	if strings.HasPrefix(r.URL.Path, "/v1/traces/") {
		return "/v1/traces/{id}"
	}
	if strings.HasPrefix(r.URL.Path, "/debug/pprof/") {
		return "/debug/pprof/"
	}
	return "other"
}

// NewServer builds the HTTP front-end over an engine and an ontology
// repository (repo may be nil). If the engine carries a metrics registry
// and no WithMetrics option is given, the engine's registry is used.
func NewServer(engine *Engine, repo *OntoRepository, opts ...ServerOption) *Server {
	s := &Server{engine: engine, repo: repo, mux: http.NewServeMux()}
	// Versioned API plus legacy aliases: both paths hit the same handler,
	// so behavior cannot drift between them.
	readRoute := func(path string, h http.HandlerFunc) {
		guarded := s.readOnly(h)
		s.mux.HandleFunc("/v1"+path, guarded)
		s.mux.HandleFunc(path, guarded)
	}
	readRoute("/roles", s.handleRoles)
	readRoute("/view", s.handleView)
	readRoute("/resource", s.handleResource)
	readRoute("/query", s.handleQuery)
	readRoute("/ontologies", s.handleOntologies)
	readRoute("/audit", s.handleAudit)
	s.mux.HandleFunc("/v1/insert", s.handleMutate(true))
	s.mux.HandleFunc("/insert", s.handleMutate(true))
	s.mux.HandleFunc("/v1/delete", s.handleMutate(false))
	s.mux.HandleFunc("/delete", s.handleMutate(false))
	s.mux.HandleFunc("/v1/update", s.handleUpdate)
	s.mux.HandleFunc("/update", s.handleUpdate)
	s.mux.HandleFunc("/v1/mutate", s.handleMutateBatch)
	s.mux.HandleFunc("/v1/store", s.readOnly(s.handleStoreStats))
	s.mux.HandleFunc("/healthz", s.readOnly(s.handleHealth))
	for _, o := range opts {
		o(s)
	}
	if s.metrics == nil {
		s.metrics = engine.Metrics()
	}
	if s.metrics != nil {
		s.mux.Handle("/metrics", s.metrics.Handler())
	}
	if s.tracer != nil {
		s.mux.HandleFunc("/v1/traces", s.readOnly(s.handleTraces))
		s.mux.HandleFunc("/v1/traces/", s.readOnly(s.handleTrace))
	}
	if s.slo != nil {
		s.mux.HandleFunc("/v1/slo", s.readOnly(s.handleSLO))
		s.slo.Instrument(s.metrics)
	}
	if s.replLeader != nil {
		s.mux.HandleFunc("/v1/wal/stream", s.handleWALStream)
		s.mux.HandleFunc("/v1/wal/snapshot", s.handleWALSnapshot)
	}
	if s.workload != nil {
		s.mux.HandleFunc("/v1/queries", s.readOnly(s.handleQueries))
	}
	if s.profiler != nil {
		s.mux.HandleFunc("/v1/profiles", s.readOnly(s.handleProfiles))
	}
	if s.cluster != nil {
		s.mux.HandleFunc("/v1/cluster", s.readOnly(s.handleCluster))
	}
	s.handler = obs.Middleware(obs.MiddlewareConfig{
		Registry: s.metrics,
		Logger:   s.logger,
		Route:    routeLabel,
		Tracer:   s.tracer,
		SLO:      s.slo,
		// A caught-up follower's stream request parks for the whole poll
		// window by design; feeding that into the latency objectives would
		// page on healthy behavior.
		SLOSkip: func(route string) bool { return strings.HasPrefix(route, "/v1/wal/") },
		Panic: func(w http.ResponseWriter, r *http.Request, v any) {
			s.writeError(w, r, http.StatusInternalServerError, "internal",
				"internal server error")
		},
	}, s.readinessGate(s.admissionGate(s.mux)))
	return s
}

// admissionClass maps a request path onto its admission pool; ok is false
// for routes that bypass admission entirely (health, metrics, SLO and trace
// inspection, WAL replication — the overload-diagnosis surface).
func admissionClass(path string) (admission.Class, bool) {
	switch path {
	case "/v1/query", "/query", "/v1/resource", "/resource":
		return admission.ClassQuery, true
	case "/v1/view", "/view":
		return admission.ClassView, true
	case "/v1/insert", "/insert", "/v1/delete", "/delete",
		"/v1/update", "/update", "/v1/mutate":
		return admission.ClassMutate, true
	}
	return 0, false
}

// requestPriority classifies one request's admission tier: an explicit
// priority header wins, then mutations and the configured high-priority
// roles (EmergencyResponse by default) ride High, and everything else is
// Normal. The header wins even downward — a client may deliberately
// downgrade its own traffic (a bulk loader tagging itself "low").
func (s *Server) requestPriority(r *http.Request, class admission.Class) admission.Priority {
	if s.priorityHeader != "" {
		if p, ok := admission.ParsePriority(r.Header.Get(s.priorityHeader)); ok {
			return p
		}
	}
	if class == admission.ClassMutate {
		return admission.High
	}
	if raw := r.URL.Query().Get("role"); raw != "" {
		if iri, err := resolveRole(raw); err == nil && s.highRoles[iri] {
			return admission.High
		}
	}
	return admission.Normal
}

// admissionGate asks the controller for a slot before any handler runs.
// A shed answers 429 with the uniform error envelope and a Retry-After
// estimate; the obs middleware upstream still records the request (status
// and latency), so shed traffic stays visible in metrics and the SLO
// engine without burning the error budget (429 < 500).
func (s *Server) admissionGate(next http.Handler) http.Handler {
	if s.admission == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		class, gated := admissionClass(r.URL.Path)
		if !gated {
			next.ServeHTTP(w, r)
			return
		}
		pri := s.requestPriority(r, class)
		release, err := s.admission.Admit(r.Context(), class, pri)
		if err != nil {
			var shed *admission.ShedError
			if errors.As(err, &shed) {
				w.Header().Set("Retry-After",
					strconv.Itoa(int(math.Ceil(shed.RetryAfter.Seconds()))))
				s.writeError(w, r, http.StatusTooManyRequests, "overloaded",
					err.Error())
				// The shed request never reaches the engine, but the query
				// shape that drove the server into shedding is exactly the one
				// worth seeing in /v1/queries — attribute it by fingerprint.
				s.recordShed(r, class)
				return
			}
			// The client's context ended while it waited in queue; there is
			// nobody left to answer, but the status line keeps the books
			// straight.
			s.writeError(w, r, http.StatusServiceUnavailable, "canceled",
				"client gave up while queued for admission")
			return
		}
		defer release()
		next.ServeHTTP(w, r)
	})
}

// readinessGate holds every route except /healthz and /metrics behind the
// readiness probes: listening starts before recovery finishes, but no request
// reaches an engine whose state is still being rebuilt. On a read replica the
// gate also tracks the follower: unbootstrapped answers "recovering", and a
// replica whose replication lag exceeds its bound answers "lagging" — stale
// reads are refused rather than silently served.
func (s *Server) readinessGate(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/healthz", r.URL.Path == "/metrics":
		// The diagnosis surface for a stuck recovery or a collapsed replica
		// is the profiler: pprof endpoints and the capture ring stay
		// reachable while the data plane refuses work.
		case r.URL.Path == "/v1/profiles",
			strings.HasPrefix(r.URL.Path, "/debug/pprof/"):
		default:
			if s.ready != nil && !s.ready() {
				s.writeError(w, r, http.StatusServiceUnavailable, "recovering",
					"durable state is being recovered; retry shortly")
				return
			}
			if s.replStatus != nil {
				if rs := s.replStatus(); !rs.Ready {
					if !rs.Bootstrapped {
						s.writeError(w, r, http.StatusServiceUnavailable, "recovering",
							"replica is bootstrapping from the leader snapshot; retry shortly")
					} else {
						s.writeError(w, r, http.StatusServiceUnavailable, "lagging",
							fmt.Sprintf("replication lag %.2fs exceeds the %.2fs bound; use another replica",
								rs.LagSeconds, rs.MaxLagSeconds))
					}
					return
				}
			}
		}
		next.ServeHTTP(w, r)
	})
}

// handleWALStream serves the follower record stream once the leader exists;
// during durable recovery the repository is still replaying, so there is
// nothing to stream from yet.
func (s *Server) handleWALStream(w http.ResponseWriter, r *http.Request) {
	ld := s.replLeader()
	if ld == nil {
		s.writeError(w, r, http.StatusServiceUnavailable, "recovering",
			"replication leader is still recovering; retry shortly")
		return
	}
	ld.ServeStream(w, r)
}

// handleWALSnapshot serves the bootstrap state transfer, with the same
// recovery window as the stream.
func (s *Server) handleWALSnapshot(w http.ResponseWriter, r *http.Request) {
	ld := s.replLeader()
	if ld == nil {
		s.writeError(w, r, http.StatusServiceUnavailable, "recovering",
			"replication leader is still recovering; retry shortly")
		return
	}
	ld.ServeSnapshot(w, r)
}

// notLeader intercepts mutations on a read replica: 421 "not_leader" with a
// Location header naming the leader, so a well-behaved client re-issues the
// identical request there instead of forking the replica's history.
func (s *Server) notLeader(w http.ResponseWriter, r *http.Request) bool {
	if s.leaderURL == "" {
		return false
	}
	w.Header().Set("Location", strings.TrimSuffix(s.leaderURL, "/")+r.URL.RequestURI())
	s.writeError(w, r, http.StatusMisdirectedRequest, "not_leader",
		"this server is a read replica; send mutations to the leader")
	return true
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// readOnly rejects any method other than GET, HEAD and POST with 405 and an
// Allow header — the read endpoints accept POST for large query bodies but
// must not be mistaken for mutation routes.
func (s *Server) readOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet, http.MethodHead, http.MethodPost:
			h(w, r)
		default:
			w.Header().Set("Allow", "GET, HEAD, POST")
			s.writeError(w, r, http.StatusMethodNotAllowed, "method_not_allowed",
				fmt.Sprintf("method %s not allowed", r.Method))
		}
	}
}

// writeJSON encodes v, logging (rather than silently discarding) encode
// failures — by then the status line is gone, so logging is all that's left.
func (s *Server) writeJSON(w http.ResponseWriter, r *http.Request, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		obs.Logger(r.Context()).Warn("encode response", "path", r.URL.Path, "err", err.Error())
	}
}

// errorEnvelope is the uniform error body of the v1 API.
type errorEnvelope struct {
	Error   string `json:"error"`
	Code    string `json:"code"`
	TraceID string `json:"trace_id"`
}

// writeError emits the JSON error envelope with the request's trace ID, so a
// client-side error report can be correlated with the server logs.
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	env := errorEnvelope{Error: msg, Code: code, TraceID: obs.TraceID(r.Context())}
	if err := json.NewEncoder(w).Encode(env); err != nil {
		obs.Logger(r.Context()).Warn("encode error response", "path", r.URL.Path, "err", err.Error())
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	// While recovery runs, another goroutine is mutating the engine (store
	// load, reasoner swap); report the phase without touching any of it.
	if s.ready != nil && !s.ready() {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		if err := json.NewEncoder(w).Encode(map[string]any{"status": "recovering"}); err != nil {
			obs.Logger(r.Context()).Warn("encode response", "path", r.URL.Path, "err", err.Error())
		}
		return
	}
	body := map[string]any{
		"status":     "ok",
		"triples":    s.engine.Data().Len(),
		"generation": s.engine.Data().Generation(),
	}
	if c := s.engine.Cache(); c != nil {
		body["cache"] = c.Snapshot()
	}
	if st := s.engine.AuditStats(); st.Capacity > 0 {
		body["audit"] = st
	}
	if s.walStatus != nil {
		if ws := s.walStatus(); ws != nil {
			body["wal"] = ws
		}
	}
	// Saturation signals: the resources that exhaust first under load, so
	// an external load generator can distinguish "saturated" from "broken".
	body["saturation"] = obs.ReadSaturation(s.metrics)
	if s.admission != nil {
		body["admission"] = s.admission.Status()
	}
	if s.replStatus != nil {
		rs := s.replStatus()
		body["replication"] = rs
		if !rs.Ready {
			// The replica still answers /healthz with the full picture, but
			// the status line and code tell a probe to stop routing reads here.
			if rs.Bootstrapped {
				body["status"] = "lagging"
			} else {
				body["status"] = "recovering"
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
		}
	}
	s.writeJSON(w, r, body)
}

// handleSLO serves the engine's sliding-window objective report: per-window
// latency quantiles, error rates and burn rates, overall and per route.
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, r, s.slo.Status())
}

// handleTraces lists the tracer's retained traces, newest first. The limit
// parameter bounds the listing (default 50).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	limit, err := positiveIntParam(r, "limit", 50)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	traces := s.tracer.Traces(limit)
	if traces == nil {
		traces = []obs.TraceSummary{}
	}
	s.writeJSON(w, r, map[string]any{
		"traces":   traces,
		"capacity": s.tracer.Capacity(),
	})
}

// spanNode is one span with its children nested — the tree shape of
// /v1/traces/{id}.
type spanNode struct {
	obs.SpanData
	Children []*spanNode `json:"children,omitempty"`
}

// spanTree reconstructs the span tree from the flat completion-order list.
// Spans whose parent is not in the trace (the root's remote parent on a
// federation peer, or a parent still open when the trace was cut) become
// roots.
func spanTree(spans []obs.SpanData) []*spanNode {
	nodes := make(map[string]*spanNode, len(spans))
	for _, sd := range spans {
		nodes[sd.SpanID] = &spanNode{SpanData: sd}
	}
	var roots []*spanNode
	for _, sd := range spans {
		n := nodes[sd.SpanID]
		if p, ok := nodes[sd.ParentID]; ok && sd.ParentID != sd.SpanID {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	// Children complete before their parents, so completion order lists the
	// leaves first; sort every level by start time for a readable tree.
	var sortLevel func(ns []*spanNode)
	sortLevel = func(ns []*spanNode) {
		sort.Slice(ns, func(i, j int) bool { return ns[i].Start.Before(ns[j].Start) })
		for _, n := range ns {
			sortLevel(n.Children)
		}
	}
	sortLevel(roots)
	return roots
}

// handleTrace renders one retained trace as a span tree.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/traces/")
	if id == "" || strings.Contains(id, "/") {
		s.writeError(w, r, http.StatusBadRequest, "bad_request", "trace id required")
		return
	}
	td, ok := s.tracer.Trace(id)
	if !ok {
		s.writeError(w, r, http.StatusNotFound, "not_found",
			"trace not retained (evicted from the ring buffer, or never recorded)")
		return
	}
	s.writeJSON(w, r, map[string]any{
		"trace_id":      td.TraceID,
		"root":          td.Root,
		"start":         td.Start,
		"duration_us":   td.DurationUS,
		"failed":        td.Failed,
		"dropped_spans": td.DroppedSpans,
		"tree":          spanTree(td.Spans),
	})
}

func (s *Server) handleRoles(w http.ResponseWriter, r *http.Request) {
	subjects := s.engine.Policies().Subjects()
	out := make([]string, len(subjects))
	for i, sub := range subjects {
		out[i] = string(sub)
	}
	s.writeJSON(w, r, map[string]any{"roles": out})
}

func (s *Server) handleOntologies(w http.ResponseWriter, r *http.Request) {
	names := []string{}
	if s.repo != nil {
		names = s.repo.Names()
	}
	s.writeJSON(w, r, map[string]any{"ontologies": names})
}

// resolveRole accepts a full IRI or a local name under the seconto namespace.
func resolveRole(raw string) (rdf.IRI, error) {
	if raw == "" {
		return "", fmt.Errorf("missing role parameter")
	}
	if strings.Contains(raw, "://") {
		return rdf.IRI(raw), nil
	}
	return rdf.IRI(seconto.NS + raw), nil
}

func (s *Server) handleView(w http.ResponseWriter, r *http.Request) {
	role, err := resolveRole(r.URL.Query().Get("role"))
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	view := s.engine.View(role, seconto.ActionView)
	switch r.URL.Query().Get("format") {
	case "ntriples":
		w.Header().Set("Content-Type", "application/n-triples")
		if err := ntriples.Write(w, view.Graph()); err != nil {
			s.writeError(w, r, http.StatusInternalServerError, "internal", err.Error())
		}
	default:
		w.Header().Set("Content-Type", "text/turtle")
		if err := turtle.Write(w, view.Graph(), nil); err != nil {
			s.writeError(w, r, http.StatusInternalServerError, "internal", err.Error())
		}
	}
}

func (s *Server) handleResource(w http.ResponseWriter, r *http.Request) {
	role, err := resolveRole(r.URL.Query().Get("role"))
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	iri := r.URL.Query().Get("iri")
	if iri == "" {
		s.writeError(w, r, http.StatusBadRequest, "bad_request", "missing iri parameter")
		return
	}
	res := rdf.IRI(iri)
	acc, err := s.engine.DecideCtx(r.Context(), role, seconto.ActionView, res)
	if err != nil {
		s.writeError(w, r, http.StatusServiceUnavailable, "canceled", err.Error())
		return
	}
	if !acc.Allowed {
		s.writeError(w, r, http.StatusForbidden, "forbidden", "access denied")
		return
	}
	g := rdf.NewGraph()
	for _, t := range s.engine.FilterResource(res, acc) {
		g.Add(t)
	}
	w.Header().Set("Content-Type", "text/turtle")
	if err := turtle.Write(w, g, nil); err != nil {
		s.writeError(w, r, http.StatusInternalServerError, "internal", err.Error())
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	role, err := resolveRole(r.URL.Query().Get("role"))
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		s.writeError(w, r, http.StatusBadRequest, "bad_request", "missing q parameter")
		return
	}
	explain := r.URL.Query().Get("explain")
	if explain == "1" || explain == "true" {
		plan, err := s.engine.ExplainQuery(role, seconto.ActionView, q)
		if err != nil {
			s.writeError(w, r, http.StatusBadRequest, "query_error", err.Error())
			return
		}
		s.writeJSON(w, r, map[string]any{"plan": plan})
		return
	}
	ctx := r.Context()
	if s.queryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.queryTimeout)
		defer cancel()
	}
	if explain == "analyze" {
		s.handleExplainAnalyze(w, r, ctx, role, q)
		return
	}
	if s.fed != nil {
		s.handleFederatedQuery(w, r, ctx, role, q)
		return
	}
	res, err := s.engine.QueryCtx(ctx, role, seconto.ActionView, q)
	if err != nil {
		obs.Logger(r.Context()).Warn("query failed",
			"role", string(role), "err", err.Error())
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			s.writeError(w, r, http.StatusGatewayTimeout, "timeout",
				fmt.Sprintf("query exceeded the %s evaluation deadline", s.queryTimeout))
		case errors.Is(err, context.Canceled):
			s.writeError(w, r, http.StatusServiceUnavailable, "canceled", "query canceled")
		default:
			s.writeError(w, r, http.StatusBadRequest, "query_error", err.Error())
		}
		return
	}
	obs.Logger(r.Context()).Info("query served",
		"role", string(role), "kind", res.Kind.String(), "solutions", len(res.Bindings))
	s.writeJSON(w, r, resultJSON(res))
}

// handleFederatedQuery fans the query out through the federator and renders
// the merged result with the degradation envelope: "degraded" is true when
// at least one source did not contribute, and "sources" reports what
// happened at each. Only a total failure (every source down, or the
// request deadline) is an error.
func (s *Server) handleFederatedQuery(w http.ResponseWriter, r *http.Request, ctx context.Context, role rdf.IRI, q string) {
	resp := s.fed.Query(ctx, role, seconto.ActionView, q)
	if resp.Err != nil {
		obs.Logger(r.Context()).Warn("federated query failed",
			"role", string(role), "err", resp.Err.Error())
		switch {
		case errors.Is(resp.Err, context.DeadlineExceeded):
			s.writeError(w, r, http.StatusGatewayTimeout, "timeout",
				fmt.Sprintf("federated query exceeded the %s deadline", s.queryTimeout))
		case errors.Is(resp.Err, context.Canceled):
			s.writeError(w, r, http.StatusServiceUnavailable, "canceled", "query canceled")
		default:
			s.writeError(w, r, http.StatusBadGateway, "all_sources_failed", resp.Err.Error())
		}
		return
	}
	body := federatedResultJSON(resp.Result)
	body["degraded"] = resp.Degraded
	body["sources"] = resp.Sources
	if resp.Degraded {
		obs.Logger(r.Context()).Warn("federated query degraded",
			"role", string(role), "sources", fmt.Sprintf("%+v", resp.Sources))
		// A partial answer is a quality incident for this query shape; the
		// local engine never saw the query, so attribute it here.
		if s.workload != nil {
			if pq, perr := sparql.ParseQuery(q, nil); perr == nil {
				s.workload.RecordDegraded(pq.Fingerprint, pq.CanonicalForm, pq.Kind.String())
			}
		}
	}
	s.writeJSON(w, r, body)
}

// analyzeStage is one executed BGP join step of an EXPLAIN ANALYZE response:
// the planner's estimate next to what actually happened.
type analyzeStage struct {
	// Stage is the execution position within its BGP (join order).
	Stage int `json:"stage"`
	// PatternIndex is the pattern's position in the query text.
	PatternIndex int    `json:"pattern_index"`
	Pattern      string `json:"pattern"`
	// Estimate is the planner's cardinality estimate; -1 when the planner was
	// off and no estimate exists.
	Estimate    float64 `json:"estimate"`
	RowsIn      int64   `json:"rows_in"`
	RowsScanned int64   `json:"rows_scanned"`
	RowsOut     int64   `json:"rows_out"`
	DurationUS  int64   `json:"duration_us"`
}

// handleExplainAnalyze answers ?explain=analyze: the query actually runs, and
// the response reports per-stage actual timings and est-vs-actual
// cardinalities harvested from the sparql.bgp.step spans, plus the result
// summary. On an untraced request (no tracer configured) a detached trace
// supplies the span accumulator, so the endpoint works either way.
func (s *Server) handleExplainAnalyze(w http.ResponseWriter, r *http.Request, ctx context.Context, role rdf.IRI, q string) {
	at := obs.ActiveTrace(ctx)
	var root *obs.Span
	if at == nil {
		ctx, root = obs.StartDetachedTrace(ctx, "explain.analyze")
		at = obs.ActiveTrace(ctx)
	}
	// On a traced request the accumulator already holds earlier spans
	// (middleware, decision engine); only spans completed past this mark
	// belong to the analyzed query.
	mark := len(at.Completed())
	start := time.Now()
	res, err := s.engine.QueryCtx(ctx, role, seconto.ActionView, q)
	elapsed := time.Since(start)
	root.End()
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			s.writeError(w, r, http.StatusGatewayTimeout, "timeout",
				fmt.Sprintf("query exceeded the %s evaluation deadline", s.queryTimeout))
		case errors.Is(err, context.Canceled):
			s.writeError(w, r, http.StatusServiceUnavailable, "canceled", "query canceled")
		default:
			s.writeError(w, r, http.StatusBadRequest, "query_error", err.Error())
		}
		return
	}
	var stages []analyzeStage
	for _, sd := range at.Completed()[mark:] {
		if sd.Name != "sparql.bgp.step" {
			continue
		}
		st := analyzeStage{
			Pattern:     sd.Attrs["pattern"],
			Estimate:    -1,
			RowsIn:      sd.Counters["rows_in"],
			RowsScanned: sd.Counters["rows_scanned"],
			RowsOut:     sd.Counters["rows_out"],
			DurationUS:  sd.DurationUS,
		}
		st.Stage, _ = strconv.Atoi(sd.Attrs["stage"])
		st.PatternIndex, _ = strconv.Atoi(sd.Attrs["pattern_index"])
		if raw := sd.Attrs["estimate"]; raw != "" {
			if est, perr := strconv.ParseFloat(raw, 64); perr == nil {
				st.Estimate = est
			}
		}
		stages = append(stages, st)
	}
	if stages == nil {
		stages = []analyzeStage{}
	}
	body := map[string]any{
		"stages":    stages,
		"total_us":  elapsed.Microseconds(),
		"kind":      res.Kind.String(),
		"solutions": len(res.Bindings),
		"trace_id":  obs.TraceID(ctx),
	}
	s.writeJSON(w, r, body)
}

// federatedResultJSON renders a merged federation result in the same shape
// resultJSON gives a local one, so federated and single-engine responses
// differ only by the added degradation envelope.
func federatedResultJSON(res *federation.Result) map[string]any {
	switch res.Kind {
	case federation.KindAsk:
		return map[string]any{"boolean": res.Boolean}
	case federation.KindGraph:
		return map[string]any{"triples": strings.Join(res.Triples, "\n")}
	default:
		vars := res.Vars
		if vars == nil {
			vars = []string{}
		}
		rows := res.Rows
		if rows == nil {
			rows = []map[string]string{}
		}
		return map[string]any{"head": map[string]any{"vars": vars}, "results": rows}
	}
}

// handleAudit dumps the decision audit trail (empty when auditing is off),
// prefixed with the ring's occupancy/loss stats. limit and offset paginate
// over the trail in-order; total always reports the full trail length.
func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	limit, err := positiveIntParam(r, "limit", -1)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	offset, err := positiveIntParam(r, "offset", 0)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	trail := s.engine.AuditTrail()
	total := len(trail)
	if offset >= len(trail) {
		trail = nil
	} else {
		trail = trail[offset:]
	}
	if limit >= 0 && limit < len(trail) {
		trail = trail[:limit]
	}
	type row struct {
		Seq      uint64   `json:"seq"`
		Subject  string   `json:"subject"`
		Action   string   `json:"action"`
		Resource string   `json:"resource"`
		Allowed  bool     `json:"allowed"`
		Full     bool     `json:"full"`
		Policies []string `json:"policies"`
	}
	rows := make([]row, len(trail))
	for i, e := range trail {
		pols := make([]string, len(e.Policies))
		for j, p := range e.Policies {
			pols[j] = string(p)
		}
		rows[i] = row{
			Seq: e.Seq, Subject: string(e.Subject), Action: string(e.Action),
			Resource: e.Resource, Allowed: e.Allowed, Full: e.Full, Policies: pols,
		}
	}
	s.writeJSON(w, r, map[string]any{
		"stats": s.engine.AuditStats(), "entries": rows,
		"total": total, "offset": offset,
	})
}

// positiveIntParam parses a non-negative integer query parameter, returning
// def when absent.
func positiveIntParam(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("%s must be a non-negative integer", name)
	}
	return n, nil
}

// handleMutate serves POST /insert and /delete: the request body is one or
// more N-Triples statements, applied through the write-authorization path.
func (s *Server) handleMutate(insert bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.notLeader(w, r) {
			return
		}
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", "POST")
			s.writeError(w, r, http.StatusMethodNotAllowed, "method_not_allowed", "POST required")
			return
		}
		role, err := resolveRole(r.URL.Query().Get("role"))
		if err != nil {
			s.writeError(w, r, http.StatusBadRequest, "bad_request", err.Error())
			return
		}
		body := r.Body
		if s.maxBodyBytes > 0 {
			body = http.MaxBytesReader(w, r.Body, s.maxBodyBytes)
		}
		g, err := ntriples.NewReader(body).ReadAll()
		if err != nil {
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				s.writeError(w, r, http.StatusRequestEntityTooLarge, "body_too_large",
					fmt.Sprintf("request body exceeds the %d-byte limit", tooLarge.Limit))
				return
			}
			s.writeError(w, r, http.StatusBadRequest, "bad_request", err.Error())
			return
		}
		ts := g.Triples()
		if len(ts) == 0 {
			s.writeJSON(w, r, map[string]any{"applied": 0, "changed": 0})
			return
		}
		// The whole body is one batch op: all statements land atomically as a
		// single store generation (and one WAL group-commit entry), or none do.
		kind := store.OpRemove
		if insert {
			kind = store.OpAdd
		}
		ns, err := s.engine.MutateCtx(r.Context(), role, []MutationOp{{Kind: kind, Triples: ts}})
		if err != nil {
			s.writeMutationError(w, r, err)
			return
		}
		s.writeJSON(w, r, map[string]any{"applied": len(ts), "changed": ns[0]})
	}
}

// mutateOpRequest is one element of the POST /v1/mutate body. Insert and
// delete ops carry one or more N-Triples statements in "triples"; update ops
// carry exactly one statement in each of "old" and "new".
type mutateOpRequest struct {
	Op      string `json:"op"`
	Triples string `json:"triples,omitempty"`
	Old     string `json:"old,omitempty"`
	New     string `json:"new,omitempty"`
}

// handleMutateBatch serves POST /v1/mutate: a JSON array of mutation ops
// applied atomically — authorization runs per op up front, then the batch
// commits as exactly one store generation and one WAL group-commit entry.
// Any failure (denial, missing update target, durability refusal) aborts the
// whole batch and names the offending op in the error envelope.
func (s *Server) handleMutateBatch(w http.ResponseWriter, r *http.Request) {
	if s.notLeader(w, r) {
		return
	}
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		s.writeError(w, r, http.StatusMethodNotAllowed, "method_not_allowed", "POST required")
		return
	}
	role, err := resolveRole(r.URL.Query().Get("role"))
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	body := r.Body
	if s.maxBodyBytes > 0 {
		body = http.MaxBytesReader(w, r.Body, s.maxBodyBytes)
	}
	var reqs []mutateOpRequest
	if err := json.NewDecoder(body).Decode(&reqs); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.writeError(w, r, http.StatusRequestEntityTooLarge, "body_too_large",
				fmt.Sprintf("request body exceeds the %d-byte limit", tooLarge.Limit))
			return
		}
		s.writeError(w, r, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("body must be a JSON array of ops: %v", err))
		return
	}
	if len(reqs) == 0 {
		s.writeJSON(w, r, map[string]any{"applied": 0, "changed": 0, "results": []int{}})
		return
	}
	muts := make([]MutationOp, len(reqs))
	for i, req := range reqs {
		m, err := parseMutateOp(req)
		if err != nil {
			s.writeError(w, r, http.StatusBadRequest, "bad_request",
				fmt.Sprintf("op %d: %v", i, err))
			return
		}
		muts[i] = m
	}
	ns, err := s.engine.MutateCtx(r.Context(), role, muts)
	if err != nil {
		s.writeMutationError(w, r, err)
		return
	}
	changed := 0
	for _, n := range ns {
		changed += n
	}
	s.writeJSON(w, r, map[string]any{
		"applied":    len(muts),
		"changed":    changed,
		"results":    ns,
		"generation": s.engine.Data().Generation(),
	})
}

// parseMutateOp shapes one JSON op into an engine MutationOp.
func parseMutateOp(req mutateOpRequest) (MutationOp, error) {
	parse := func(field, src string) ([]rdf.Triple, error) {
		g, err := ntriples.NewReader(strings.NewReader(src)).ReadAll()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", field, err)
		}
		return g.Triples(), nil
	}
	one := func(field, src string) (rdf.Triple, error) {
		ts, err := parse(field, src)
		if err != nil {
			return rdf.Triple{}, err
		}
		if len(ts) != 1 {
			return rdf.Triple{}, fmt.Errorf("%s must hold exactly one statement, got %d", field, len(ts))
		}
		return ts[0], nil
	}
	switch req.Op {
	case "insert", "delete":
		ts, err := parse("triples", req.Triples)
		if err != nil {
			return MutationOp{}, err
		}
		if len(ts) == 0 {
			return MutationOp{}, fmt.Errorf("%s op carries no statements in \"triples\"", req.Op)
		}
		kind := store.OpAdd
		if req.Op == "delete" {
			kind = store.OpRemove
		}
		return MutationOp{Kind: kind, Triples: ts}, nil
	case "update":
		old, err := one("old", req.Old)
		if err != nil {
			return MutationOp{}, err
		}
		newT, err := one("new", req.New)
		if err != nil {
			return MutationOp{}, err
		}
		if !old.Subject.Equal(newT.Subject) || !old.Predicate.Equal(newT.Predicate) {
			return MutationOp{}, errors.New("old and new statements must share subject and predicate")
		}
		return MutationOp{Kind: store.OpReplace, Triples: []rdf.Triple{old, newT}}, nil
	default:
		return MutationOp{}, fmt.Errorf("unknown op %q (want insert, delete or update)", req.Op)
	}
}

// handleStoreStats serves GET /v1/store: a snapshot of the MVCC store —
// current generation and published-view epoch, triple and dictionary
// cardinalities, and the group-commit batcher's size histogram.
func (s *Server) handleStoreStats(w http.ResponseWriter, r *http.Request) {
	st := s.engine.Data()
	view := st.View()
	stats := view.Stats()
	gc := st.GroupCommitStats()
	hist := make(map[string]uint64, len(store.BatchBucketLabels))
	for i, label := range store.BatchBucketLabels {
		hist[label] = gc.Hist[i]
	}
	mean := 0.0
	if gc.Groups > 0 {
		mean = float64(gc.Ops) / float64(gc.Groups)
	}
	s.writeJSON(w, r, map[string]any{
		"generation": view.Generation(),
		"epoch":      view.Epoch(),
		"triples":    stats.Triples,
		"cardinalities": map[string]int{
			"subjects":   stats.Subjects,
			"predicates": stats.Predicates,
			"objects":    stats.Objects,
		},
		"dict_terms": stats.DictTerms,
		"group_commit": map[string]any{
			"groups":          gc.Groups,
			"ops":             gc.Ops,
			"max_batch":       gc.MaxBatch,
			"mean_batch":      mean,
			"batch_size_hist": hist,
		},
	})
}

// writeMutationError maps a mutation failure onto the v1 error envelope:
// authorization denials are 403 "forbidden", a missing update target is 404
// "not_found", a durability-layer refusal is 500 "not_persisted" (the
// mutation did NOT happen), and anything else is a 400 "bad_request".
func (s *Server) writeMutationError(w http.ResponseWriter, r *http.Request, err error) {
	var denied *ErrDenied
	switch {
	case errors.As(err, &denied):
		s.writeError(w, r, http.StatusForbidden, "forbidden", err.Error())
	case errors.Is(err, ErrNotFound):
		s.writeError(w, r, http.StatusNotFound, "not_found", err.Error())
	case errors.Is(err, store.ErrCommitHook):
		s.writeError(w, r, http.StatusInternalServerError, "not_persisted", err.Error())
	default:
		s.writeError(w, r, http.StatusBadRequest, "bad_request", err.Error())
	}
}

// handleUpdate serves POST /update: the body is exactly two N-Triples
// statements — the triple to replace, then its replacement — sharing subject
// and predicate. The swap runs through the write-authorization path and is
// applied atomically (readers never observe the triple absent).
func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if s.notLeader(w, r) {
		return
	}
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		s.writeError(w, r, http.StatusMethodNotAllowed, "method_not_allowed", "POST required")
		return
	}
	role, err := resolveRole(r.URL.Query().Get("role"))
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	body := r.Body
	if s.maxBodyBytes > 0 {
		body = http.MaxBytesReader(w, r.Body, s.maxBodyBytes)
	}
	// Read statements in order: the graph abstraction would lose the
	// old-before-new ordering the endpoint is defined by.
	reader := ntriples.NewReader(body)
	var ts []rdf.Triple
	for {
		t, err := reader.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				s.writeError(w, r, http.StatusRequestEntityTooLarge, "body_too_large",
					fmt.Sprintf("request body exceeds the %d-byte limit", tooLarge.Limit))
				return
			}
			s.writeError(w, r, http.StatusBadRequest, "bad_request", err.Error())
			return
		}
		ts = append(ts, t)
		if len(ts) > 2 {
			s.writeError(w, r, http.StatusBadRequest, "bad_request",
				"update body must hold exactly two statements (old, new)")
			return
		}
	}
	if len(ts) != 2 {
		s.writeError(w, r, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("update body must hold exactly two statements (old, new), got %d", len(ts)))
		return
	}
	old, new := ts[0], ts[1]
	if !old.Subject.Equal(new.Subject) || !old.Predicate.Equal(new.Predicate) {
		s.writeError(w, r, http.StatusBadRequest, "bad_request",
			"old and new statements must share subject and predicate")
		return
	}
	if _, ok := old.Predicate.(rdf.IRI); !ok {
		s.writeError(w, r, http.StatusBadRequest, "bad_request", "predicate must be an IRI")
		return
	}
	// A single-op batch: the MustExist replace makes the swap atomic and turns
	// a missing old triple into 404 instead of a silent no-op.
	if _, err := s.engine.MutateCtx(r.Context(), role,
		[]MutationOp{{Kind: store.OpReplace, Triples: []rdf.Triple{old, new}}}); err != nil {
		s.writeMutationError(w, r, err)
		return
	}
	s.writeJSON(w, r, map[string]any{"applied": 1})
}

// resultJSON renders a SPARQL result in a SPARQL-JSON-like shape.
func resultJSON(res *sparql.Result) map[string]any {
	switch res.Kind {
	case sparql.Ask:
		return map[string]any{"boolean": res.Bool}
	case sparql.Construct, sparql.Describe:
		return map[string]any{"triples": ntriples.Format(res.Graph)}
	default:
		vars := make([]string, len(res.Vars))
		for i, v := range res.Vars {
			vars[i] = string(v)
		}
		rows := make([]map[string]string, len(res.Bindings))
		for i, b := range res.Bindings {
			row := map[string]string{}
			for v, t := range b {
				row[string(v)] = t.String()
			}
			rows[i] = row
		}
		return map[string]any{"head": map[string]any{"vars": vars}, "results": rows}
	}
}
