package gsacs

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/ntriples"
	"repro/internal/rdf"
	"repro/internal/seconto"
	"repro/internal/sparql"
	"repro/internal/turtle"
)

// Server is the G-SACS front-end of Fig. 3: "provides the front-end
// interface to accept client requests and respond back. This module only
// defines communication points and hides the internal details of the system
// from clients."
type Server struct {
	engine *Engine
	repo   *OntoRepository
	mux    *http.ServeMux
}

// NewServer builds the HTTP front-end over an engine and an ontology
// repository (repo may be nil).
func NewServer(engine *Engine, repo *OntoRepository) *Server {
	s := &Server{engine: engine, repo: repo, mux: http.NewServeMux()}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/roles", s.handleRoles)
	s.mux.HandleFunc("/view", s.handleView)
	s.mux.HandleFunc("/resource", s.handleResource)
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/ontologies", s.handleOntologies)
	s.mux.HandleFunc("/insert", s.handleMutate(true))
	s.mux.HandleFunc("/delete", s.handleMutate(false))
	s.mux.HandleFunc("/audit", s.handleAudit)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status":  "ok",
		"triples": s.engine.Data().Len(),
	})
}

func (s *Server) handleRoles(w http.ResponseWriter, _ *http.Request) {
	subjects := s.engine.Policies().Subjects()
	out := make([]string, len(subjects))
	for i, sub := range subjects {
		out[i] = string(sub)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"roles": out})
}

func (s *Server) handleOntologies(w http.ResponseWriter, _ *http.Request) {
	names := []string{}
	if s.repo != nil {
		names = s.repo.Names()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"ontologies": names})
}

// resolveRole accepts a full IRI or a local name under the seconto namespace.
func resolveRole(raw string) (rdf.IRI, error) {
	if raw == "" {
		return "", fmt.Errorf("missing role parameter")
	}
	if strings.Contains(raw, "://") {
		return rdf.IRI(raw), nil
	}
	return rdf.IRI(seconto.NS + raw), nil
}

func (s *Server) handleView(w http.ResponseWriter, r *http.Request) {
	role, err := resolveRole(r.URL.Query().Get("role"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	view := s.engine.View(role, seconto.ActionView)
	switch r.URL.Query().Get("format") {
	case "ntriples":
		w.Header().Set("Content-Type", "application/n-triples")
		if err := ntriples.Write(w, view.Graph()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	default:
		w.Header().Set("Content-Type", "text/turtle")
		if err := turtle.Write(w, view.Graph(), nil); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
}

func (s *Server) handleResource(w http.ResponseWriter, r *http.Request) {
	role, err := resolveRole(r.URL.Query().Get("role"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	iri := r.URL.Query().Get("iri")
	if iri == "" {
		http.Error(w, "missing iri parameter", http.StatusBadRequest)
		return
	}
	res := rdf.IRI(iri)
	acc := s.engine.Decide(role, seconto.ActionView, res)
	if !acc.Allowed {
		http.Error(w, "access denied", http.StatusForbidden)
		return
	}
	g := rdf.NewGraph()
	for _, t := range s.engine.FilterResource(res, acc) {
		g.Add(t)
	}
	w.Header().Set("Content-Type", "text/turtle")
	if err := turtle.Write(w, g, nil); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	role, err := resolveRole(r.URL.Query().Get("role"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	res, err := s.engine.Query(role, seconto.ActionView, q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resultJSON(res))
}

// handleAudit dumps the decision audit trail (empty when auditing is off).
func (s *Server) handleAudit(w http.ResponseWriter, _ *http.Request) {
	trail := s.engine.AuditTrail()
	type row struct {
		Seq      uint64   `json:"seq"`
		Subject  string   `json:"subject"`
		Action   string   `json:"action"`
		Resource string   `json:"resource"`
		Allowed  bool     `json:"allowed"`
		Full     bool     `json:"full"`
		Policies []string `json:"policies"`
	}
	rows := make([]row, len(trail))
	for i, e := range trail {
		pols := make([]string, len(e.Policies))
		for j, p := range e.Policies {
			pols[j] = string(p)
		}
		rows[i] = row{
			Seq: e.Seq, Subject: string(e.Subject), Action: string(e.Action),
			Resource: e.Resource, Allowed: e.Allowed, Full: e.Full, Policies: pols,
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"entries": rows})
}

// handleMutate serves POST /insert and /delete: the request body is one or
// more N-Triples statements, applied through the write-authorization path.
func (s *Server) handleMutate(insert bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		role, err := resolveRole(r.URL.Query().Get("role"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		g, err := ntriples.NewReader(r.Body).ReadAll()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		applied := 0
		for _, t := range g.Triples() {
			if insert {
				err = s.engine.Insert(role, t)
			} else {
				err = s.engine.Delete(role, t)
			}
			if err != nil {
				var denied *ErrDenied
				status := http.StatusBadRequest
				if errors.As(err, &denied) {
					status = http.StatusForbidden
				}
				http.Error(w, fmt.Sprintf("%v (applied %d before failure)", err, applied), status)
				return
			}
			applied++
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"applied": applied})
	}
}

// resultJSON renders a SPARQL result in a SPARQL-JSON-like shape.
func resultJSON(res *sparql.Result) map[string]any {
	switch res.Kind {
	case sparql.Ask:
		return map[string]any{"boolean": res.Bool}
	case sparql.Construct, sparql.Describe:
		return map[string]any{"triples": ntriples.Format(res.Graph)}
	default:
		vars := make([]string, len(res.Vars))
		for i, v := range res.Vars {
			vars[i] = string(v)
		}
		rows := make([]map[string]string, len(res.Bindings))
		for i, b := range res.Bindings {
			row := map[string]string{}
			for v, t := range b {
				row[string(v)] = t.String()
			}
			rows[i] = row
		}
		return map[string]any{"head": map[string]any{"vars": vars}, "results": rows}
	}
}
