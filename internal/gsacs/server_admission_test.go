package gsacs

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/obs"
)

// admissionServer builds a server whose query pool holds exactly one slot
// and cannot queue or adapt — the deterministic overload fixture.
func admissionServer(t *testing.T) (*httptest.Server, *admission.Controller, *obs.Registry) {
	t.Helper()
	e, _ := scenarioEngine(t, 4)
	reg := obs.NewRegistry()
	ctrl := admission.NewController(admission.Config{
		InitialLimit: 1,
		MinLimit:     1,
		MaxLimit:     1,
		MaxQueue:     admission.NoQueue,
		AdjustEvery:  time.Hour,
		Metrics:      reg,
	})
	srv := httptest.NewServer(NewServer(e, nil,
		WithMetrics(reg),
		WithAdmission(AdmissionConfig{Controller: ctrl, PriorityHeader: "X-Priority"})))
	t.Cleanup(srv.Close)
	return srv, ctrl, reg
}

func TestAdmissionShedEnvelope(t *testing.T) {
	srv, ctrl, _ := admissionServer(t)

	// Occupy the only query slot directly, then observe a live request shed.
	release, err := ctrl.Admit(context.Background(), admission.ClassQuery, admission.Normal)
	if err != nil {
		t.Fatalf("priming admit: %v", err)
	}
	resp, body := doReq(t, srv, http.MethodGet, "/v1/query?role=Hazmat&q=SELECT%20?s%20WHERE%20%7B%3Fs%20a%20app%3AChemSite%7D")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d body %s, want 429", resp.StatusCode, body)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("429 without Retry-After header")
	}
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want integer seconds >= 1", ra)
	}
	var env struct {
		Error   string `json:"error"`
		Code    string `json:"code"`
		TraceID string `json:"trace_id"`
	}
	if err := json.Unmarshal([]byte(body), &env); err != nil {
		t.Fatalf("shed body is not the uniform envelope: %v (%s)", err, body)
	}
	if env.Code != "overloaded" {
		t.Fatalf("code = %q, want overloaded", env.Code)
	}
	if env.Error == "" || env.TraceID == "" {
		t.Fatalf("envelope missing error/trace_id: %+v", env)
	}

	// Capacity returns with the slot.
	release()
	resp, body = doReq(t, srv, http.MethodGet, "/v1/roles")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release status = %d body %s", resp.StatusCode, body)
	}
}

func TestAdmissionShedVisibleInMetricsAndHealth(t *testing.T) {
	srv, ctrl, _ := admissionServer(t)
	release, err := ctrl.Admit(context.Background(), admission.ClassQuery, admission.Normal)
	if err != nil {
		t.Fatalf("priming admit: %v", err)
	}
	defer release()
	if resp, _ := doReq(t, srv, http.MethodGet, "/v1/resource?role=Hazmat&iri=x"); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("resource status = %d, want 429", resp.StatusCode)
	}

	resp, body := doReq(t, srv, http.MethodGet, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if !strings.Contains(body, "grdf_admission_shed_total") {
		t.Fatal("grdf_admission_shed_total missing from exposition")
	}
	if !strings.Contains(body, "grdf_admission_limit") {
		t.Fatal("grdf_admission_limit missing from exposition")
	}

	resp, body = doReq(t, srv, http.MethodGet, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status %d", resp.StatusCode)
	}
	var health struct {
		Admission *admission.Status `json:"admission"`
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatalf("healthz JSON: %v", err)
	}
	if health.Admission == nil {
		t.Fatal("healthz missing admission block")
	}
	if health.Admission.TotalShed == 0 {
		t.Fatal("healthz admission block shows zero sheds after one")
	}
}

// TestAdmissionBypassRoutes: the overload-diagnosis surface must stay
// readable while the data plane sheds.
func TestAdmissionBypassRoutes(t *testing.T) {
	srv, ctrl, _ := admissionServer(t)
	for _, class := range []admission.Class{admission.ClassQuery, admission.ClassView, admission.ClassMutate} {
		release, err := ctrl.Admit(context.Background(), class, admission.Normal)
		if err != nil {
			t.Fatalf("priming admit %s: %v", class, err)
		}
		defer release()
	}
	for _, path := range []string{"/healthz", "/metrics", "/v1/roles", "/v1/store"} {
		resp, body := doReq(t, srv, http.MethodGet, path)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s status = %d body %s, want 200 under full pools", path, resp.StatusCode, body)
		}
	}
	// The gated routes, by contrast, shed.
	for _, path := range []string{"/v1/query?role=Hazmat&q=x", "/v1/view?role=MainRep"} {
		resp, _ := doReq(t, srv, http.MethodGet, path)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Errorf("%s status = %d, want 429", path, resp.StatusCode)
		}
	}
}

func TestRequestPriorityMapping(t *testing.T) {
	e, _ := scenarioEngine(t, 0)
	s := NewServer(e, nil, WithAdmission(AdmissionConfig{
		Controller:     admission.NewController(admission.Config{}),
		PriorityHeader: "X-Priority",
	}))

	req := func(path string, hdr string) *http.Request {
		r := httptest.NewRequest(http.MethodGet, path, nil)
		if hdr != "" {
			r.Header.Set("X-Priority", hdr)
		}
		return r
	}
	cases := []struct {
		name  string
		r     *http.Request
		class admission.Class
		want  admission.Priority
	}{
		{"plain query", req("/v1/query?role=Hazmat&q=x", ""), admission.ClassQuery, admission.Normal},
		{"emergency role rides high", req("/v1/query?role=EmergencyResponse&q=x", ""), admission.ClassQuery, admission.High},
		{"mutation rides high", req("/v1/insert?role=SiteAdmin", ""), admission.ClassMutate, admission.High},
		{"header low wins", req("/v1/query?role=EmergencyResponse&q=x", "low"), admission.ClassQuery, admission.BestEffort},
		{"header high wins", req("/v1/view?role=MainRep", "high"), admission.ClassView, admission.High},
		{"unknown header falls through", req("/v1/insert?role=SiteAdmin", "frobnicate"), admission.ClassMutate, admission.High},
	}
	for _, tc := range cases {
		if got := s.requestPriority(tc.r, tc.class); got != tc.want {
			t.Errorf("%s: priority = %s, want %s", tc.name, got, tc.want)
		}
	}
}

func TestAdmissionClassMapping(t *testing.T) {
	cases := []struct {
		path  string
		class admission.Class
		gated bool
	}{
		{"/v1/query", admission.ClassQuery, true},
		{"/query", admission.ClassQuery, true},
		{"/v1/resource", admission.ClassQuery, true},
		{"/v1/view", admission.ClassView, true},
		{"/v1/insert", admission.ClassMutate, true},
		{"/v1/delete", admission.ClassMutate, true},
		{"/v1/update", admission.ClassMutate, true},
		{"/v1/mutate", admission.ClassMutate, true},
		{"/healthz", 0, false},
		{"/metrics", 0, false},
		{"/v1/slo", 0, false},
		{"/v1/traces", 0, false},
		{"/v1/wal/stream", 0, false},
		{"/v1/roles", 0, false},
	}
	for _, tc := range cases {
		class, gated := admissionClass(tc.path)
		if gated != tc.gated || (gated && class != tc.class) {
			t.Errorf("admissionClass(%q) = (%s, %v), want (%s, %v)", tc.path, class, gated, tc.class, tc.gated)
		}
	}
}
