package gsacs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// fetchSLO polls /v1/slo until the fast window has seen at least n
// requests — the middleware records its observation in a defer, which can
// race the client's next request.
func fetchSLO(t *testing.T, srv *httptest.Server, n uint64) obs.SLOStatus {
	t.Helper()
	var st obs.SLOStatus
	for attempt := 0; attempt < 100; attempt++ {
		resp, body := doReq(t, srv, http.MethodGet, "/v1/slo")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/v1/slo status %d body %s", resp.StatusCode, body)
		}
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatalf("bad /v1/slo JSON: %v (%s)", err, body)
		}
		if st.Fast.Count >= n {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("/v1/slo never reached %d fast-window requests: %+v", n, st)
	return st
}

// TestServerSLOEndpoint drives traffic through a WithSLO server and checks
// the windowed report: counts, quantiles, per-route blocks, verdicts, and
// the grdf_slo_* exposition on /metrics.
func TestServerSLOEndpoint(t *testing.T) {
	e, _ := scenarioEngine(t, 4)
	slo := obs.NewSLOEngine(obs.SLOConfig{
		LatencyTarget:      5 * time.Second, // generous: CI must pass
		AvailabilityTarget: 0.5,
	})
	srv := httptest.NewServer(NewServer(e, nil,
		WithMetrics(obs.NewRegistry()), WithSLO(slo)))
	defer srv.Close()

	const reqs = 10
	for i := 0; i < reqs; i++ {
		resp, body := doReq(t, srv, http.MethodGet, "/v1/roles")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("roles status %d body %s", resp.StatusCode, body)
		}
	}
	st := fetchSLO(t, srv, reqs)
	if st.Fast.Count < reqs || st.Slow.Count < reqs {
		t.Fatalf("windows undercounted: fast=%d slow=%d", st.Fast.Count, st.Slow.Count)
	}
	if st.Fast.P50Ms < 0 || st.Fast.P99Ms < st.Fast.P50Ms {
		t.Fatalf("implausible quantiles: %+v", st.Fast)
	}
	if st.LatencyTargetMs != 5000 || st.LatencyQuantile != 0.99 {
		t.Fatalf("config echo wrong: %+v", st)
	}
	if !st.LatencyOK || !st.AvailabilityOK {
		t.Fatalf("healthy traffic must pass: %+v", st)
	}
	var haveRoute bool
	for _, rt := range st.Routes {
		if rt.Route == "/v1/roles" && rt.Fast.Count >= reqs {
			haveRoute = true
		}
	}
	if !haveRoute {
		t.Fatalf("no per-route block for /v1/roles: %+v", st.Routes)
	}

	resp, metrics := doReq(t, srv, http.MethodGet, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	for _, want := range []string{
		"grdf_slo_latency_seconds", "grdf_slo_burn_rate",
		"grdf_slo_latency_breached 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestServerSLOAbsentWithoutOption: no WithSLO, no /v1/slo route.
func TestServerSLOAbsentWithoutOption(t *testing.T) {
	e, _ := scenarioEngine(t, 0)
	srv := httptest.NewServer(NewServer(e, nil))
	defer srv.Close()
	resp, _ := doReq(t, srv, http.MethodGet, "/v1/slo")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/v1/slo without WithSLO: status %d, want 404", resp.StatusCode)
	}
}

// TestServerHealthzSaturation: /healthz always carries the saturation block
// with live runtime numbers.
func TestServerHealthzSaturation(t *testing.T) {
	e, _ := scenarioEngine(t, 0)
	srv := httptest.NewServer(NewServer(e, nil, WithMetrics(obs.NewRegistry())))
	defer srv.Close()
	var body struct {
		Status     string          `json:"status"`
		Saturation *obs.Saturation `json:"saturation"`
	}
	_, raw := doReq(t, srv, http.MethodGet, "/healthz")
	if err := json.Unmarshal([]byte(raw), &body); err != nil {
		t.Fatal(err)
	}
	if body.Saturation == nil {
		t.Fatalf("healthz missing saturation block: %s", raw)
	}
	sat := body.Saturation
	if sat.Goroutines < 1 || sat.HeapAllocBytes == 0 || sat.GOMAXPROCS < 1 {
		t.Fatalf("implausible saturation: %+v", sat)
	}
	if sat.InFlightHTTP < 1 {
		// The /healthz request itself is in flight while sampled.
		t.Fatalf("in_flight_http = %v, want >= 1", sat.InFlightHTTP)
	}
}

// TestServerTracesLimit exercises the /v1/traces bounds: with more traces
// retained than the default limit, the bare listing returns exactly 50
// newest-first, and ?limit=5 returns 5.
func TestServerTracesLimit(t *testing.T) {
	e, _ := scenarioEngine(t, 0)
	srv := httptest.NewServer(NewServer(e, nil, WithTracer(obs.NewTracer(128))))
	defer srv.Close()

	const total = 60
	for i := 0; i < total; i++ {
		if resp, _ := doReq(t, srv, http.MethodGet, "/v1/roles"); resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d failed: %d", i, resp.StatusCode)
		}
	}
	type listing struct {
		Traces []obs.TraceSummary `json:"traces"`
	}
	fetch := func(path string) listing {
		t.Helper()
		var l listing
		resp, body := doReq(t, srv, http.MethodGet, path)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status %d", path, resp.StatusCode)
		}
		if err := json.Unmarshal([]byte(body), &l); err != nil {
			t.Fatal(err)
		}
		return l
	}
	// Spans publish in a middleware defer; poll until the default listing
	// is full.
	var l listing
	for attempt := 0; attempt < 100; attempt++ {
		if l = fetch("/v1/traces"); len(l.Traces) == 50 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(l.Traces) != 50 {
		t.Fatalf("default listing = %d traces, want 50", len(l.Traces))
	}
	for i := 1; i < len(l.Traces); i++ {
		if l.Traces[i].Start.After(l.Traces[i-1].Start) {
			t.Fatalf("listing not newest-first at %d: %v after %v",
				i, l.Traces[i].Start, l.Traces[i-1].Start)
		}
	}
	if got := len(fetch("/v1/traces?limit=5").Traces); got != 5 {
		t.Fatalf("limit=5 returned %d traces", got)
	}
	resp, _ := doReq(t, srv, http.MethodGet, "/v1/traces?limit=bogus")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus limit: status %d, want 400", resp.StatusCode)
	}
}
