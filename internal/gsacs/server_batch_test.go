package gsacs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/rdf"
)

// Coverage for the batched mutation API: /v1/mutate applies a heterogeneous
// op list as ONE atomic commit — one store generation, all-or-nothing — and
// /v1/store exposes the MVCC and group-commit vitals the load harness asserts
// against.

type mutateResponse struct {
	Applied    int    `json:"applied"`
	Changed    int    `json:"changed"`
	Results    []int  `json:"results"`
	Generation uint64 `json:"generation"`
}

// postMutate POSTs a JSON op list to /v1/mutate and returns the response.
func postMutate(t *testing.T, srv *httptest.Server, role, body string) (*http.Response, string) {
	t.Helper()
	resp, err := srv.Client().Post(srv.URL+"/v1/mutate?role="+role, "application/json",
		strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 32*1024)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp, sb.String()
}

func TestServerMutateBatchHappyPath(t *testing.T) {
	e, sc, _, _ := writeScenario(t)
	srv := httptest.NewServer(NewServer(e, nil))
	defer srv.Close()
	site := sc.Chemical.Sites[0].IRI
	name, ok := e.Data().FirstObject(site, datagen.HasSiteName)
	if !ok {
		t.Fatal("scenario site has no name")
	}
	genBefore := e.Data().Generation()

	tag1 := rdf.T(site, datagen.HasSiteName, rdf.NewString("annex-a"))
	tag2 := rdf.T(site, datagen.HasSiteName, rdf.NewString("annex-b"))
	oldT := rdf.T(site, datagen.HasSiteName, name)
	newT := rdf.T(site, datagen.HasSiteName, rdf.NewString("renamed"))
	body := fmt.Sprintf(`[
		{"op":"insert","triples":%q},
		{"op":"update","old":%q,"new":%q},
		{"op":"delete","triples":%q}
	]`, tag1.String()+"\n"+tag2.String(), oldT.String(), newT.String(), tag2.String())

	resp, raw := postMutate(t, srv, "Admin", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch = %d %s", resp.StatusCode, raw)
	}
	var out mutateResponse
	if err := json.Unmarshal([]byte(raw), &out); err != nil {
		t.Fatalf("decode %q: %v", raw, err)
	}
	if out.Applied != 3 || out.Changed != 4 {
		t.Errorf("applied=%d changed=%d, want 3 and 4; body %s", out.Applied, out.Changed, raw)
	}
	if len(out.Results) != 3 || out.Results[0] != 2 || out.Results[1] != 1 || out.Results[2] != 1 {
		t.Errorf("results = %v, want [2 1 1]", out.Results)
	}
	// The whole batch is one commit: exactly one generation bump, reported in
	// the response so a client can fence later reads.
	if out.Generation != genBefore+1 || e.Data().Generation() != genBefore+1 {
		t.Errorf("generation %d -> (%d reported, %d actual), want one bump",
			genBefore, out.Generation, e.Data().Generation())
	}
	data := e.Data()
	if !data.Has(tag1) || data.Has(tag2) || !data.Has(newT) || data.Has(oldT) {
		t.Error("batch left the wrong final state")
	}
}

// TestServerMutateBatchAtomicOnDenial: a mid-batch authorization failure must
// answer 403 and leave NOTHING applied — including the ops before the denied
// one.
func TestServerMutateBatchAtomicOnDenial(t *testing.T) {
	e, sc, _, _ := writeScenario(t)
	srv := httptest.NewServer(NewServer(e, nil))
	defer srv.Close()
	site := sc.Chemical.Sites[0].IRI
	genBefore := e.Data().Generation()

	allowed := rdf.T(site, datagen.HasSiteName, rdf.NewString("sneaky-prefix"))
	// SiteEditor holds Modify on site names but no Delete rights.
	name, _ := e.Data().FirstObject(site, datagen.HasSiteName)
	denied := rdf.T(site, datagen.HasSiteName, name)
	body := fmt.Sprintf(`[
		{"op":"insert","triples":%q},
		{"op":"delete","triples":%q}
	]`, allowed.String(), denied.String())

	resp, raw := postMutate(t, srv, "SiteEditor", body)
	wantEnvelope(t, resp, raw, "forbidden", http.StatusForbidden)
	if !strings.Contains(raw, "op 1") {
		t.Errorf("error does not name the failing op index: %s", raw)
	}
	if e.Data().Has(allowed) || e.Data().Generation() != genBefore {
		t.Error("denied batch partially applied")
	}
}

// TestServerMutateBatchUpdateAbsent: an update inside a batch has MustExist
// semantics — 404, atomically.
func TestServerMutateBatchUpdateAbsent(t *testing.T) {
	e, sc, _, _ := writeScenario(t)
	srv := httptest.NewServer(NewServer(e, nil))
	defer srv.Close()
	site := sc.Chemical.Sites[0].IRI
	genBefore := e.Data().Generation()

	ins := rdf.T(site, datagen.HasSiteName, rdf.NewString("before-miss"))
	oldT := rdf.T(site, datagen.HasSiteName, rdf.NewString("never-existed"))
	newT := rdf.T(site, datagen.HasSiteName, rdf.NewString("whatever"))
	body := fmt.Sprintf(`[
		{"op":"insert","triples":%q},
		{"op":"update","old":%q,"new":%q}
	]`, ins.String(), oldT.String(), newT.String())

	resp, raw := postMutate(t, srv, "Admin", body)
	wantEnvelope(t, resp, raw, "not_found", http.StatusNotFound)
	if e.Data().Has(ins) || e.Data().Generation() != genBefore {
		t.Error("batch with missing update target partially applied")
	}
}

func TestServerMutateBatchBadRequests(t *testing.T) {
	e, sc, _, _ := writeScenario(t)
	srv := httptest.NewServer(NewServer(e, nil))
	defer srv.Close()
	site := sc.Chemical.Sites[0].IRI
	tr := rdf.T(site, datagen.HasSiteName, rdf.NewString("x"))
	before := e.Data().Len()

	cases := map[string]string{
		"not json":          `this is not json`,
		"object not array":  `{"op":"insert"}`,
		"unknown op":        fmt.Sprintf(`[{"op":"upsert","triples":%q}]`, tr.String()),
		"insert no triples": `[{"op":"insert","triples":""}]`,
		"bad n-triples":     `[{"op":"insert","triples":"not n-triples"}]`,
		"update two olds":   fmt.Sprintf(`[{"op":"update","old":%q,"new":%q}]`, tr.String()+"\n"+rdf.T(site, datagen.HasSiteName, rdf.NewString("y")).String(), tr.String()),
		"update no new":     fmt.Sprintf(`[{"op":"update","old":%q}]`, tr.String()),
		"empty batch":       `[]`,
	}
	for name, body := range cases {
		resp, raw := postMutate(t, srv, "Admin", body)
		if name == "empty batch" {
			// An empty list is a well-formed no-op, not an error.
			if resp.StatusCode != http.StatusOK {
				t.Errorf("%s: status %d, want 200; body %s", name, resp.StatusCode, raw)
			}
			continue
		}
		wantEnvelope(t, resp, raw, "bad_request", http.StatusBadRequest)
	}
	if e.Data().Len() != before {
		t.Errorf("rejected batches changed the store: %d -> %d", before, e.Data().Len())
	}

	// Method gate.
	resp, err := srv.Client().Get(srv.URL + "/v1/mutate?role=Admin")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/mutate = %d, want 405", resp.StatusCode)
	}
}

func TestServerStoreStats(t *testing.T) {
	e, sc, _, _ := writeScenario(t)
	srv := httptest.NewServer(NewServer(e, nil))
	defer srv.Close()

	// Drive one batch through so the group-commit counters are non-zero.
	site := sc.Chemical.Sites[0].IRI
	tr := rdf.T(site, datagen.HasSiteName, rdf.NewString("stats-probe"))
	resp, raw := postMutate(t, srv, "Admin",
		fmt.Sprintf(`[{"op":"insert","triples":%q},{"op":"delete","triples":%q}]`, tr.String(), tr.String()))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed batch = %d %s", resp.StatusCode, raw)
	}

	resp, err := srv.Client().Get(srv.URL + "/v1/store")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/store = %d", resp.StatusCode)
	}
	var out struct {
		Generation    uint64 `json:"generation"`
		Epoch         uint64 `json:"epoch"`
		Triples       int    `json:"triples"`
		Cardinalities struct {
			Subjects   int `json:"subjects"`
			Predicates int `json:"predicates"`
			Objects    int `json:"objects"`
		} `json:"cardinalities"`
		DictTerms   int `json:"dict_terms"`
		GroupCommit struct {
			Groups        uint64            `json:"groups"`
			Ops           uint64            `json:"ops"`
			MaxBatch      uint64            `json:"max_batch"`
			MeanBatch     float64           `json:"mean_batch"`
			BatchSizeHist map[string]uint64 `json:"batch_size_hist"`
		} `json:"group_commit"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode /v1/store: %v", err)
	}
	data := e.Data()
	if out.Triples != data.Len() || out.Generation != data.Generation() || out.Epoch != data.Epoch() {
		t.Errorf("stats disagree with the store: %+v vs len=%d gen=%d epoch=%d",
			out, data.Len(), data.Generation(), data.Epoch())
	}
	if out.Cardinalities.Subjects <= 0 || out.Cardinalities.Predicates <= 0 || out.Cardinalities.Objects <= 0 {
		t.Errorf("cardinalities not populated: %+v", out.Cardinalities)
	}
	if out.DictTerms <= 0 {
		t.Errorf("dict_terms = %d, want > 0", out.DictTerms)
	}
	if out.GroupCommit.Groups < 1 || out.GroupCommit.Ops < 2 || out.GroupCommit.MeanBatch <= 0 {
		t.Errorf("group_commit block not populated: %+v", out.GroupCommit)
	}
	var histSum uint64
	for _, c := range out.GroupCommit.BatchSizeHist {
		histSum += c
	}
	if histSum != out.GroupCommit.Groups {
		t.Errorf("batch_size_hist sums to %d, want %d groups", histSum, out.GroupCommit.Groups)
	}

	// Read-only guard: non-read methods are refused.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/store", nil)
	delResp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE /v1/store = %d, want 405", delResp.StatusCode)
	}
}
