package gsacs

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/repl"
)

// TestMutationRedirect: every mutation route on a read replica answers 421
// "not_leader" with a Location header the client can retry against, and
// reads keep working.
func TestMutationRedirect(t *testing.T) {
	srv, _, _ := v1TestServer(t, WithMutationRedirect("http://leader:8080/"))

	for _, path := range []string{"/v1/insert?role=Writer", "/insert?role=Writer",
		"/v1/delete?role=Writer", "/v1/update?role=Writer", "/v1/mutate?role=Writer"} {
		resp, err := srv.Client().Post(srv.URL+path, "application/n-triples", strings.NewReader(""))
		if err != nil {
			t.Fatal(err)
		}
		var env errorEnvelope
		json.NewDecoder(resp.Body).Decode(&env)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMisdirectedRequest {
			t.Fatalf("%s: status %d, want 421", path, resp.StatusCode)
		}
		if env.Code != "not_leader" {
			t.Fatalf("%s: code %q, want not_leader", path, env.Code)
		}
		want := "http://leader:8080" + path
		if loc := resp.Header.Get("Location"); loc != want {
			t.Fatalf("%s: Location %q, want %q", path, loc, want)
		}
	}

	// Reads are unaffected.
	resp, _ := doReq(t, srv, http.MethodGet, "/v1/roles")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read on replica: status %d", resp.StatusCode)
	}
}

// TestReplicaReadinessGate: requests follow the follower status — served
// while ready, 503 "lagging" once the lag bound is exceeded, 503
// "recovering" before bootstrap — and /healthz always answers, carrying the
// replication block and the same status.
func TestReplicaReadinessGate(t *testing.T) {
	var st atomic.Pointer[repl.FollowerStatus]
	set := func(s repl.FollowerStatus) { st.Store(&s) }
	set(repl.FollowerStatus{Bootstrapped: true, Ready: true})
	srv, _, _ := v1TestServer(t, WithReplStatus(func() repl.FollowerStatus { return *st.Load() }))

	codeOf := func(path string) (int, string, map[string]any) {
		resp, body := doReq(t, srv, http.MethodGet, path)
		var m map[string]any
		json.Unmarshal([]byte(body), &m)
		code, _ := m["code"].(string)
		return resp.StatusCode, code, m
	}

	if status, _, _ := codeOf("/v1/roles"); status != http.StatusOK {
		t.Fatalf("ready replica refused reads: %d", status)
	}

	set(repl.FollowerStatus{Bootstrapped: true, Ready: false, LagSeconds: 9.5, MaxLagSeconds: 5})
	if status, code, _ := codeOf("/v1/roles"); status != http.StatusServiceUnavailable || code != "lagging" {
		t.Fatalf("lagging replica: status %d code %q, want 503 lagging", status, code)
	}
	status, _, health := codeOf("/healthz")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("lagging /healthz status %d, want 503", status)
	}
	if health["status"] != "lagging" {
		t.Fatalf("lagging /healthz status field %v", health["status"])
	}
	if _, ok := health["replication"]; !ok {
		t.Fatal("/healthz missing replication block")
	}

	set(repl.FollowerStatus{Bootstrapped: false, Ready: false})
	if status, code, _ := codeOf("/v1/roles"); status != http.StatusServiceUnavailable || code != "recovering" {
		t.Fatalf("bootstrapping replica: status %d code %q, want 503 recovering", status, code)
	}

	set(repl.FollowerStatus{Bootstrapped: true, Ready: true})
	if status, _, _ := codeOf("/v1/roles"); status != http.StatusOK {
		t.Fatalf("recovered replica still refused: %d", status)
	}
}

// TestWALRoutesRecoveringUntilLeaderExists: the replication endpoints are
// mounted with WithReplLeader but answer 503 until the leader pointer is
// populated (durable recovery still running).
func TestWALRoutesRecoveringUntilLeaderExists(t *testing.T) {
	var leader atomic.Pointer[repl.Leader]
	srv, _, _ := v1TestServer(t, WithReplLeader(leader.Load))
	for _, path := range []string{"/v1/wal/stream?from=1", "/v1/wal/snapshot"} {
		resp, body := doReq(t, srv, http.MethodGet, path)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s before recovery: status %d body %s", path, resp.StatusCode, body)
		}
	}
}
