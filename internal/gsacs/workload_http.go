package gsacs

import (
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/admission"
	"repro/internal/obs/prof"
	"repro/internal/obs/workload"
	"repro/internal/sparql"
)

// handleQueries serves the workload introspection surface at /v1/queries:
// the heavy-hitter table of query fingerprints with per-shape latency
// quantiles, row totals, plan-drift bands and outcome counts. ?limit bounds
// the listing (default 20); ?fp=<16-hex> returns one fingerprint's detail.
func (s *Server) handleQueries(w http.ResponseWriter, r *http.Request) {
	if raw := r.URL.Query().Get("fp"); raw != "" {
		fp, err := strconv.ParseUint(raw, 16, 64)
		if err != nil {
			s.writeError(w, r, http.StatusBadRequest, "bad_request",
				"fp must be the 16-digit hex fingerprint from the listing")
			return
		}
		snap, ok := s.workload.Get(fp)
		if !ok {
			s.writeError(w, r, http.StatusNotFound, "not_found",
				"fingerprint not tracked (never seen, or displaced by the top-K bound)")
			return
		}
		s.writeJSON(w, r, snap)
		return
	}
	limit, err := positiveIntParam(r, "limit", 20)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	queries := s.workload.TopK(limit)
	if queries == nil {
		queries = []workload.Snapshot{}
	}
	s.writeJSON(w, r, map[string]any{
		"queries":      queries,
		"fingerprints": s.workload.Len(),
		"capacity":     s.workload.Capacity(),
	})
}

// handleProfiles serves the continuous-profiling ring at /v1/profiles: the
// listing reports capture metadata newest first; ?id=N&kind=cpu|heap
// downloads one capture's raw gzipped pprof bytes for `go tool pprof`.
func (s *Server) handleProfiles(w http.ResponseWriter, r *http.Request) {
	if raw := r.URL.Query().Get("id"); raw != "" {
		id, err := strconv.Atoi(raw)
		if err != nil || id <= 0 {
			s.writeError(w, r, http.StatusBadRequest, "bad_request",
				"id must be a positive capture id from the listing")
			return
		}
		c, ok := s.profiler.Get(id)
		if !ok {
			s.writeError(w, r, http.StatusNotFound, "not_found",
				"capture not retained (evicted from the ring, or never taken)")
			return
		}
		kind := r.URL.Query().Get("kind")
		var payload []byte
		switch kind {
		case "", "cpu":
			kind, payload = "cpu", c.CPU
		case "heap":
			payload = c.Heap
		default:
			s.writeError(w, r, http.StatusBadRequest, "bad_request",
				"kind must be cpu or heap")
			return
		}
		if len(payload) == 0 {
			// A capture can lose its CPU half when another profiler held the
			// runtime's single CPU-profile slot during the window.
			s.writeError(w, r, http.StatusNotFound, "not_found",
				fmt.Sprintf("capture %d has no %s payload", id, kind))
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Disposition",
			fmt.Sprintf(`attachment; filename="grdf-%s-%d.pb.gz"`, kind, id))
		_, _ = w.Write(payload)
		return
	}
	profiles := s.profiler.List()
	if profiles == nil {
		profiles = []prof.Meta{}
	}
	s.writeJSON(w, r, map[string]any{
		"profiles": profiles,
		"capacity": s.profiler.Ring(),
	})
}

// recordShed attributes an admission-shed request to its query fingerprint.
// Only query-class requests carry a parseable shape; parsing here is cheap
// relative to the 429 round-trip and never touches the engine.
func (s *Server) recordShed(r *http.Request, class admission.Class) {
	if s.workload == nil || class != admission.ClassQuery {
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		return
	}
	pq, err := sparql.ParseQuery(q, nil)
	if err != nil {
		return
	}
	s.workload.RecordShed(pq.Fingerprint, pq.CanonicalForm, pq.Kind.String())
}
