package gsacs

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/store"
)

// HTTP error-path coverage for the mutation endpoints: every failure mode
// must answer the uniform {"error","code","trace_id"} envelope with the
// right status, and the store must be untouched.

type errEnvelope struct {
	Error   string `json:"error"`
	Code    string `json:"code"`
	TraceID string `json:"trace_id"`
}

// postNT POSTs an N-Triples body and decodes the error envelope (when the
// status is an error).
func postNT(t *testing.T, srv *httptest.Server, path, body string) (*http.Response, string) {
	t.Helper()
	resp, err := srv.Client().Post(srv.URL+path, "application/n-triples", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 32*1024)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp, sb.String()
}

// wantEnvelope asserts a well-formed error envelope with the given code.
func wantEnvelope(t *testing.T, resp *http.Response, body, code string, status int) {
	t.Helper()
	if resp.StatusCode != status {
		t.Fatalf("status = %d, want %d; body: %s", resp.StatusCode, status, body)
	}
	var env errEnvelope
	if err := json.Unmarshal([]byte(body), &env); err != nil {
		t.Fatalf("error body is not the JSON envelope: %v\n%s", err, body)
	}
	if env.Code != code || env.Error == "" || env.TraceID == "" {
		t.Fatalf("envelope = %+v, want code %q with non-empty error and trace_id", env, code)
	}
	if hdr := resp.Header.Get("X-Trace-Id"); hdr != "" && hdr != env.TraceID {
		t.Errorf("trace_id %q does not match X-Trace-Id header %q", env.TraceID, hdr)
	}
}

func TestServerInsertUnauthorized(t *testing.T) {
	e, sc, _, _ := writeScenario(t)
	srv := httptest.NewServer(NewServer(e, nil))
	defer srv.Close()
	site := sc.Chemical.Sites[0].IRI
	tr := rdf.T(site, datagen.HasSiteName, rdf.NewString("intruder"))

	resp, body := postNT(t, srv, "/v1/insert?role=Nobody", tr.String())
	wantEnvelope(t, resp, body, "forbidden", http.StatusForbidden)
	if e.Data().Has(tr) {
		t.Error("unauthorized insert landed in the store")
	}
}

func TestServerDeleteUnauthorized(t *testing.T) {
	// The editor role holds Modify on site names but no Delete rights at all.
	e, sc, _, _ := writeScenario(t)
	srv := httptest.NewServer(NewServer(e, nil))
	defer srv.Close()
	site := sc.Chemical.Sites[0].IRI
	name, ok := e.Data().FirstObject(site, datagen.HasSiteName)
	if !ok {
		t.Fatal("scenario site has no name")
	}
	tr := rdf.T(site, datagen.HasSiteName, name)

	resp, body := postNT(t, srv, "/v1/delete?role=SiteEditor", tr.String())
	wantEnvelope(t, resp, body, "forbidden", http.StatusForbidden)
	if !e.Data().Has(tr) {
		t.Error("unauthorized delete removed the triple")
	}
}

func TestServerMutateInvalidBodies(t *testing.T) {
	e, _, _, _ := writeScenario(t)
	srv := httptest.NewServer(NewServer(e, nil))
	defer srv.Close()
	before := e.Data().Len()

	// Unparseable N-Triples.
	resp, body := postNT(t, srv, "/v1/insert?role=Admin", "this is not n-triples")
	wantEnvelope(t, resp, body, "bad_request", http.StatusBadRequest)

	// Missing role parameter.
	resp, body = postNT(t, srv, "/v1/insert", "<http://x/s> <http://x/p> \"v\" .")
	wantEnvelope(t, resp, body, "bad_request", http.StatusBadRequest)

	// GET on a mutation route.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/insert?role=Admin", nil)
	getResp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/insert = %d, want 405", getResp.StatusCode)
	}
	if allow := getResp.Header.Get("Allow"); allow != "POST" {
		t.Errorf("Allow = %q, want POST", allow)
	}

	if e.Data().Len() != before {
		t.Errorf("store changed by rejected mutations: %d -> %d", before, e.Data().Len())
	}
}

func TestServerUpdateErrorPaths(t *testing.T) {
	e, sc, _, _ := writeScenario(t)
	srv := httptest.NewServer(NewServer(e, nil))
	defer srv.Close()
	site := sc.Chemical.Sites[0].IRI

	// Update of a triple that is not in the store: 404 not_found.
	oldT := rdf.T(site, datagen.HasSiteName, rdf.NewString("never-existed"))
	newT := rdf.T(site, datagen.HasSiteName, rdf.NewString("whatever"))
	resp, body := postNT(t, srv, "/v1/update?role=Admin", oldT.String()+"\n"+newT.String())
	wantEnvelope(t, resp, body, "not_found", http.StatusNotFound)

	// One statement only.
	resp, body = postNT(t, srv, "/v1/update?role=Admin", oldT.String())
	wantEnvelope(t, resp, body, "bad_request", http.StatusBadRequest)

	// Three statements.
	resp, body = postNT(t, srv, "/v1/update?role=Admin",
		oldT.String()+"\n"+newT.String()+"\n"+newT.String())
	wantEnvelope(t, resp, body, "bad_request", http.StatusBadRequest)

	// Old and new disagree on the subject.
	other := rdf.T(rdf.IRI("http://x/other"), datagen.HasSiteName, rdf.NewString("x"))
	resp, body = postNT(t, srv, "/v1/update?role=Admin", oldT.String()+"\n"+other.String())
	wantEnvelope(t, resp, body, "bad_request", http.StatusBadRequest)

	// Unauthorized role on an existing triple: 403 before any 404.
	name, ok := e.Data().FirstObject(site, datagen.HasSiteName)
	if !ok {
		t.Fatal("scenario site has no name")
	}
	cur := rdf.T(site, datagen.HasSiteName, name)
	repl := rdf.T(site, datagen.HasSiteName, rdf.NewString("hijack"))
	resp, body = postNT(t, srv, "/v1/update?role=Nobody", cur.String()+"\n"+repl.String())
	wantEnvelope(t, resp, body, "forbidden", http.StatusForbidden)

	// The happy path still works and answers {"applied":1}.
	resp, body = postNT(t, srv, "/v1/update?role=Admin", cur.String()+"\n"+repl.String())
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"applied":1`) {
		t.Fatalf("authorized update = %d %s", resp.StatusCode, body)
	}
	if !e.Data().Has(repl) || e.Data().Has(cur) {
		t.Error("update did not swap the triple")
	}
}

// TestServerMutateNotPersisted: a commit-hook refusal (the durable layer
// saying no) must surface as 500 "not_persisted", and the store must not
// contain the triple.
func TestServerMutateNotPersisted(t *testing.T) {
	e, sc, _, _ := writeScenario(t)
	e.Data().SetCommitHook(func(store.Op) error {
		return errors.New("disk on fire")
	})
	srv := httptest.NewServer(NewServer(e, nil))
	defer srv.Close()
	site := sc.Chemical.Sites[0].IRI
	tr := rdf.T(site, datagen.HasSiteName, rdf.NewString("doomed"))

	resp, body := postNT(t, srv, "/v1/insert?role=Admin", tr.String())
	wantEnvelope(t, resp, body, "not_persisted", http.StatusInternalServerError)
	if e.Data().Has(tr) {
		t.Error("refused mutation landed in the store")
	}
}

// TestServerReadinessGate: while recovery is in progress every route except
// /healthz and /metrics answers 503 "recovering"; once the readiness probe
// flips, traffic flows.
func TestServerReadinessGate(t *testing.T) {
	e, sc, _, _ := writeScenario(t)
	ready := false
	srv := httptest.NewServer(NewServer(e, nil,
		WithMetrics(obs.NewRegistry()),
		WithReadiness(func() bool { return ready })))
	defer srv.Close()

	for _, path := range []string{"/roles", "/v1/view?role=MainRep", "/v1/query?role=Hazmat&q=x"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var env errEnvelope
		json.NewDecoder(resp.Body).Decode(&env)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable || env.Code != "recovering" {
			t.Errorf("GET %s while recovering = %d code=%q, want 503 recovering", path, resp.StatusCode, env.Code)
		}
	}

	// Mutations are refused too — nothing may be acked before the log is open.
	tr := rdf.T(sc.Chemical.Sites[0].IRI, datagen.HasSiteName, rdf.NewString("early"))
	resp, body := postNT(t, srv, "/v1/insert?role=Admin", tr.String())
	wantEnvelope(t, resp, body, "recovering", http.StatusServiceUnavailable)

	// /healthz reports the recovering state without touching the engine.
	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
	}
	json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || health.Status != "recovering" {
		t.Errorf("/healthz while recovering = %d %q", resp.StatusCode, health.Status)
	}

	// /metrics stays reachable for scrapes during recovery.
	resp, err = srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/metrics while recovering = %d, want 200", resp.StatusCode)
	}

	ready = true
	resp, err = srv.Client().Get(srv.URL + "/roles")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /roles after ready = %d, want 200", resp.StatusCode)
	}
}
