// Package gsacs implements the Geospatial Security Access Control System of
// Section 8 / Fig. 3 of the paper: a front-end interface (Server), the
// Decision Engine that determines "what level of permission is warranted for
// a particular user", a Query Cache ("having a caching mechanism that stores
// the queries and corresponding answers would provide a significant
// performance boost"), a plug-and-play Reasoning Engine interface, and the
// Onto Repository holding GRDF and the security ontologies.
//
// The distinguishing capability — the one the paper holds against GeoXACML —
// is property-level filtering: a role can be granted just the grdf:boundedBy
// extent of a chemical site while its chemical inventory stays hidden.
package gsacs

import (
	"context"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/geom"
	"repro/internal/grdf"
	"repro/internal/obs"
	"repro/internal/obs/workload"
	"repro/internal/owl"
	"repro/internal/rdf"
	"repro/internal/seconto"
	"repro/internal/store"
)

// Reasoner is the plug-and-play reasoning interface of Fig. 3: "any OWL
// reasoning engine could be plugged into the system to meet the need."
// The owl package's Reasoner satisfies it.
type Reasoner interface {
	// IsSubClassOf reports sub ⊑ super (reflexive).
	IsSubClassOf(sub, super rdf.Term) bool
	// IsSubPropertyOf reports sub ⊑ super for properties (reflexive).
	IsSubPropertyOf(sub, super rdf.Term) bool
	// TypesOf returns the (materialized) types of an individual.
	TypesOf(ind rdf.Term) []rdf.Term
}

// nilReasoner answers structurally (no inference) when no reasoner is
// plugged in.
type nilReasoner struct{ data *store.Store }

func (n nilReasoner) IsSubClassOf(sub, super rdf.Term) bool {
	return sub.Equal(super) || n.data.Has(rdf.T(sub, rdf.RDFSSubClassOf, super))
}
func (n nilReasoner) IsSubPropertyOf(sub, super rdf.Term) bool {
	return sub.Equal(super) || n.data.Has(rdf.T(sub, rdf.RDFSSubPropertyOf, super))
}
func (n nilReasoner) TypesOf(ind rdf.Term) []rdf.Term {
	return n.data.Objects(ind, rdf.RDFType)
}

// Engine wires policies, data and a reasoner together.
type Engine struct {
	policies *seconto.Set
	data     *store.Store
	// reasoner is swapped atomically: a read replica rebuilds it over the
	// fresh triple set after every bootstrap, concurrently with decisions
	// already in flight.
	reasoner atomic.Pointer[Reasoner]
	cache    *QueryCache
	audit    *auditLog

	// auditPersist, when set, journals every audit entry durably (see
	// SetAuditPersist).
	auditPersist     func([]byte) error
	mAuditPersistErr *obs.Counter

	// metrics is the observability registry (nil disables; every handle
	// derived from it is nil-safe).
	metrics  *obs.Registry
	mAllowed *obs.Counter
	mDenied  *obs.Counter

	// workload, when set, receives one observation per evaluated query —
	// fingerprint, latency, rows, plan drift (see SetWorkload).
	workload *workload.Table
}

// SetWorkload attaches the per-fingerprint workload stats table: every
// QueryCtx evaluation is summarized into it through the SPARQL engine's
// stats sink. Call before serving queries (nil detaches).
func (e *Engine) SetWorkload(t *workload.Table) { e.workload = t }

// Workload returns the attached stats table (nil when detached).
func (e *Engine) Workload() *workload.Table { return e.workload }

// Options configures New.
type Options struct {
	// Reasoner plugs in an inference engine; nil uses direct assertions only.
	Reasoner Reasoner
	// CacheSize bounds the query cache (entries); 0 disables caching.
	CacheSize int
	// Metrics receives decision, cache and query instrumentation; nil
	// disables it.
	Metrics *obs.Registry
}

// New builds an engine over a policy set and a data store.
func New(policies *seconto.Set, data *store.Store, opts Options) *Engine {
	e := &Engine{policies: policies, data: data, metrics: opts.Metrics}
	e.SetReasoner(opts.Reasoner)
	if opts.CacheSize > 0 {
		e.cache = NewQueryCache(opts.CacheSize)
		if e.metrics != nil {
			e.cache.instrument(e.metrics)
		}
	}
	e.mAllowed = e.metrics.Counter("grdf_decisions_total",
		"Access decisions by outcome.", "outcome", "allowed")
	e.mDenied = e.metrics.Counter("grdf_decisions_total",
		"Access decisions by outcome.", "outcome", "denied")
	return e
}

// Metrics returns the engine's registry (nil when observability is off).
func (e *Engine) Metrics() *obs.Registry { return e.metrics }

// SetReasoner swaps the inference engine (nil restores direct assertions
// only). Crash recovery and replication both need it: the server builds the
// engine over an empty store, fills it (durable recovery, or a replica's
// snapshot bootstrap), and only then materializes the reasoner over the
// loaded triples. The swap is atomic — a replica re-bootstraps while
// serving, so a decision in flight keeps the reasoner it started with and
// the next decision sees the new one.
func (e *Engine) SetReasoner(r Reasoner) {
	if r == nil {
		r = nilReasoner{data: e.data}
	}
	e.reasoner.Store(&r)
}

// Reasoner returns the current inference engine. Callers that make several
// reasoner calls for one decision read it once, so the decision is judged
// by a single consistent reasoner even if a bootstrap swaps it mid-flight.
func (e *Engine) Reasoner() Reasoner { return *e.reasoner.Load() }

// Data exposes the underlying (unfiltered) store — for administrative paths
// only.
func (e *Engine) Data() *store.Store { return e.data }

// Policies exposes the rule set.
func (e *Engine) Policies() *seconto.Set { return e.policies }

// Cache returns the engine's query cache (nil when disabled).
func (e *Engine) Cache() *QueryCache { return e.cache }

// Access is the decision for one (subject, action, resource) triple — the
// Decision Engine's output.
type Access struct {
	// Allowed is false when the resource is completely hidden.
	Allowed bool
	// Full grants every property.
	Full bool
	// Properties are the visible properties when !Full.
	Properties map[rdf.IRI]bool
	// denied records property-level denies that survive a Full grant.
	denied map[rdf.IRI]bool
	// Matched lists the policies that fired, for audit.
	Matched []rdf.IRI
}

// PropertyVisible reports whether the access allows viewing property p,
// honouring subproperty entailment through the reasoner.
func (a Access) PropertyVisible(p rdf.IRI, r Reasoner) bool {
	if !a.Allowed {
		return false
	}
	if a.denied != nil {
		for d := range a.denied {
			if r.IsSubPropertyOf(p, d) {
				return false
			}
		}
	}
	if a.Full {
		return true
	}
	for allowed := range a.Properties {
		if r.IsSubPropertyOf(p, allowed) {
			return true
		}
	}
	return false
}

// Decide runs the decision procedure for subject performing action on
// resource. Policies match when their Resource equals the resource, equals
// one of its types, or is a superclass of one of its types (this is where
// reasoning pays off: a policy over grdf:Feature covers every domain
// subclass). Spatially-scoped policies additionally require the resource's
// geometry to lie within the scope. Conflicts resolve by priority; at equal
// priority deny overrides permit.
func (e *Engine) Decide(subject, action rdf.IRI, resource rdf.Term) Access {
	var start time.Time
	if e.metrics != nil {
		start = time.Now()
	}
	acc := e.decide(subject, action, resource)
	e.recordAudit(subject, action, resource, acc)
	if e.metrics != nil {
		if acc.Allowed {
			e.mAllowed.Inc()
		} else {
			e.mDenied.Inc()
		}
		e.metrics.Histogram("grdf_decision_duration_seconds",
			"Decision-engine latency by role.", nil,
			"role", subject.LocalName()).ObserveSince(start)
	}
	return acc
}

// DecideCtx is the context-first form of Decide: it refuses to start once
// ctx is done, returning ctx.Err(). The decision itself is in-memory and
// fast, so no further checks happen mid-decision. On a traced context the
// decision gets a gsacs.decide span carrying role, outcome and how many
// policies fired.
func (e *Engine) DecideCtx(ctx context.Context, subject, action rdf.IRI, resource rdf.Term) (Access, error) {
	if err := ctx.Err(); err != nil {
		return Access{}, err
	}
	_, sp := obs.StartSpan(ctx, "gsacs.decide")
	sp.SetAttr("role", subject.LocalName())
	sp.SetAttr("action", action.LocalName())
	acc := e.Decide(subject, action, resource)
	if acc.Allowed {
		sp.SetAttr("outcome", "allowed")
	} else {
		sp.SetAttr("outcome", "denied")
	}
	sp.Add("policies_matched", int64(len(acc.Matched)))
	sp.End()
	return acc, nil
}

// decide is the un-instrumented decision procedure.
func (e *Engine) decide(subject, action rdf.IRI, resource rdf.Term) Access {
	rules := e.policies.ForSubject(subject)
	var applicable []seconto.Rule
	for _, r := range rules {
		if r.Action != action {
			continue
		}
		if !e.resourceMatches(r.Resource, resource) {
			continue
		}
		if r.SpatialScope != nil && !e.withinScope(resource, *r.SpatialScope) {
			continue
		}
		applicable = append(applicable, r)
	}
	if len(applicable) == 0 {
		return Access{} // default deny (closed world)
	}
	// Fold from lowest to highest priority so later rules override. Within
	// one priority class permits apply before denies (deny overrides).
	sort.SliceStable(applicable, func(i, j int) bool {
		if applicable[i].Priority != applicable[j].Priority {
			return applicable[i].Priority < applicable[j].Priority
		}
		return applicable[i].Permit && !applicable[j].Permit
	})
	acc := Access{Properties: map[rdf.IRI]bool{}, denied: map[rdf.IRI]bool{}}
	for _, r := range applicable {
		acc.Matched = append(acc.Matched, r.ID)
		switch {
		case r.Permit && len(r.Properties) == 0:
			acc.Full = true
			acc.denied = map[rdf.IRI]bool{}
		case r.Permit:
			for _, p := range r.Properties {
				acc.Properties[p] = true
				delete(acc.denied, p)
			}
		case !r.Permit && len(r.Properties) == 0:
			acc.Full = false
			acc.Properties = map[rdf.IRI]bool{}
			acc.denied = map[rdf.IRI]bool{}
			acc.Matched = acc.Matched[:0]
			acc.Matched = append(acc.Matched, r.ID)
		default: // deny specific properties
			for _, p := range r.Properties {
				delete(acc.Properties, p)
				acc.denied[p] = true
			}
		}
	}
	acc.Allowed = acc.Full || len(acc.Properties) > 0
	return acc
}

// resourceMatches checks policy resource coverage of a concrete resource.
func (e *Engine) resourceMatches(policyRes rdf.IRI, resource rdf.Term) bool {
	if policyRes.Equal(resource) {
		return true
	}
	reasoner := e.Reasoner()
	for _, ty := range reasoner.TypesOf(resource) {
		if reasoner.IsSubClassOf(ty, policyRes) {
			return true
		}
	}
	// Also check direct data types when the reasoner is external to data.
	for _, ty := range e.data.Objects(resource, rdf.RDFType) {
		if reasoner.IsSubClassOf(ty, policyRes) {
			return true
		}
	}
	return false
}

func (e *Engine) withinScope(resource rdf.Term, scope geom.Envelope) bool {
	g, _, err := grdf.GeometryOf(e.data, resource)
	if err != nil {
		return false
	}
	return geom.Within(g, scope)
}

// NewOWLReasoner materializes the given ontologies plus the data and returns
// an owl.Reasoner ready to plug into Options.Reasoner.
func NewOWLReasoner(data *store.Store, ontologies ...*rdf.Graph) *owl.Reasoner {
	r := owl.NewReasoner()
	for _, g := range ontologies {
		r.AddGraph(g)
	}
	r.AddAll(data.Triples())
	return r
}
