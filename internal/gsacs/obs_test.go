package gsacs

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/datagen"
	"repro/internal/obs"
	"repro/internal/seconto"
	"repro/internal/store"
)

// metricsEngine builds a scenario engine with an observability registry
// attached, mirroring how cmd/gsacs-server wires it.
func metricsEngine(t *testing.T, cacheSize int) (*Engine, *obs.Registry) {
	t.Helper()
	sc := datagen.NewScenario(datagen.ScenarioConfig{Seed: 9, Sites: 6})
	reg := obs.NewRegistry()
	e := New(sc.Policies, sc.Merged, Options{CacheSize: cacheSize, Metrics: reg})
	return e, reg
}

func TestAuditRingWraparoundConcurrent(t *testing.T) {
	e, reg := metricsEngine(t, 0)
	const capacity = 8
	e.EnableAudit(capacity)

	// Hammer Decide from many goroutines: the ring must stay consistent and
	// account for every overwritten entry. Run under -race in CI.
	const workers = 8
	const perWorker = 50
	site := datagen.ChemSite
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				e.Decide(datagen.RoleHazmat, seconto.ActionView, site)
			}
		}()
	}
	wg.Wait()

	st := e.AuditStats()
	total := uint64(workers * perWorker)
	if st.Recorded != total {
		t.Errorf("Recorded = %d, want %d", st.Recorded, total)
	}
	if st.Depth != capacity || st.Capacity != capacity {
		t.Errorf("Depth/Capacity = %d/%d, want %d/%d", st.Depth, st.Capacity, capacity, capacity)
	}
	if want := total - capacity; st.Overwritten != want {
		t.Errorf("Overwritten = %d, want %d", st.Overwritten, want)
	}

	// The snapshot holds exactly the last `capacity` sequence numbers,
	// oldest first.
	trail := e.AuditTrail()
	if len(trail) != capacity {
		t.Fatalf("trail len = %d", len(trail))
	}
	for i, entry := range trail {
		if want := total - uint64(capacity) + uint64(i) + 1; entry.Seq != want {
			t.Errorf("trail[%d].Seq = %d, want %d", i, entry.Seq, want)
		}
	}

	// The exported counter agrees with the ring's own accounting.
	if got := reg.Counter("grdf_audit_overwritten_total", "").Value(); uint64(got) != st.Overwritten {
		t.Errorf("metric overwritten = %v, stats %d", got, st.Overwritten)
	}
}

func TestAuditStatsBeforeWraparound(t *testing.T) {
	e, _ := metricsEngine(t, 0)
	e.EnableAudit(16)
	for i := 0; i < 5; i++ {
		e.Decide(datagen.RoleHazmat, seconto.ActionView, datagen.ChemSite)
	}
	st := e.AuditStats()
	if st.Depth != 5 || st.Overwritten != 0 || st.Recorded != 5 {
		t.Errorf("stats = %+v", st)
	}
	// Disabled auditing reports zeros.
	e2, _ := metricsEngine(t, 0)
	if st := e2.AuditStats(); st != (AuditStats{}) {
		t.Errorf("disabled stats = %+v", st)
	}
}

func TestQueryCacheStaleInvalidationStats(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewQueryCache(2)
	c.instrument(reg)

	s1, s2, s3 := store.New(), store.New(), store.New()
	c.Put("view", 1, s1)
	if _, ok := c.Get("view", 1); !ok {
		t.Fatal("warm get failed")
	}
	// Generation moved: the lookup must drop the entry and classify the miss
	// as a stale invalidation, not a cold miss.
	if _, ok := c.Get("view", 2); ok {
		t.Fatal("stale entry served")
	}
	// Cold miss for an unknown key.
	if _, ok := c.Get("absent", 2); ok {
		t.Fatal("phantom entry")
	}
	// Capacity pressure: two puts over capacity 2 evict one.
	c.Put("a", 2, s1)
	c.Put("b", 2, s2)
	c.Put("c", 2, s3)

	st := c.Snapshot()
	if st.Hits != 1 || st.Misses != 2 || st.StaleInvalidations != 1 || st.Evictions != 1 {
		t.Errorf("snapshot = %+v", st)
	}
	if st.Entries != 2 || st.Capacity != 2 {
		t.Errorf("occupancy = %+v", st)
	}

	for name, want := range map[string]float64{
		"grdf_cache_hits_total":                1,
		"grdf_cache_misses_total":              2,
		"grdf_cache_stale_invalidations_total": 1,
		"grdf_cache_evictions_total":           1,
	} {
		if got := reg.Counter(name, "").Value(); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "grdf_cache_entries 2") {
		t.Errorf("entries gauge missing:\n%s", sb.String())
	}
}

func TestEngineDecisionMetrics(t *testing.T) {
	e, reg := metricsEngine(t, 4)
	sc := datagen.NewScenario(datagen.ScenarioConfig{Seed: 9, Sites: 6})
	site := sc.Chemical.Sites[0].IRI

	allowed := e.Decide(datagen.RoleHazmat, seconto.ActionView, site)
	if !allowed.Allowed {
		t.Fatal("expected hazmat access")
	}
	e.Decide(datagen.RoleMainRepair, seconto.ActionDelete, site) // no delete policy

	if got := reg.Counter("grdf_decisions_total", "", "outcome", "allowed").Value(); got != 1 {
		t.Errorf("allowed = %v", got)
	}
	if got := reg.Counter("grdf_decisions_total", "", "outcome", "denied").Value(); got != 1 {
		t.Errorf("denied = %v", got)
	}
	if got := reg.Histogram("grdf_decision_duration_seconds", "", nil,
		"role", "Hazmat").Count(); got != 1 {
		t.Errorf("per-role decision observations = %v", got)
	}

	// View twice: one cache miss then one hit, visible through the registry.
	e.View(datagen.RoleHazmat, seconto.ActionView)
	e.View(datagen.RoleHazmat, seconto.ActionView)
	if got := reg.Counter("grdf_cache_hits_total", "").Value(); got != 1 {
		t.Errorf("cache hits = %v", got)
	}
	if got := reg.Counter("grdf_cache_misses_total", "").Value(); got != 1 {
		t.Errorf("cache misses = %v", got)
	}

	// Query through the instrumented engine records SPARQL phase metrics.
	if _, err := e.Query(datagen.RoleHazmat, seconto.ActionView,
		"SELECT ?s WHERE { ?s a <"+string(datagen.ChemSite)+"> }"); err != nil {
		t.Fatal(err)
	}
	if got := reg.Histogram("grdf_sparql_eval_duration_seconds", "", nil).Count(); got != 1 {
		t.Errorf("eval observations = %v", got)
	}
	if got := reg.Counter("grdf_sparql_queries_total", "", "kind", "SELECT").Value(); got != 1 {
		t.Errorf("queries by kind = %v", got)
	}
}
