package gsacs

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/federation"
	"repro/internal/grdf"
	"repro/internal/obs"
	"repro/internal/seconto"
)

// fedEnvelope is the degraded-response shape of a federated /v1/query.
type fedEnvelope struct {
	Head     struct{ Vars []string }   `json:"head"`
	Results  []map[string]string       `json:"results"`
	Degraded bool                      `json:"degraded"`
	Sources  []federation.SourceStatus `json:"sources"`
	Error    string                    `json:"error"`
	Code     string                    `json:"code"`
}

const fedTestQuery = `SELECT ?site ?name WHERE {
  ?site a app:ChemSite .
  ?site app:hasSiteName ?name .
}`

// TestServerFederatedQueryDegraded is the acceptance chaos path end to end
// over HTTP: two sources, one forced to 100% errors. The /v1/query answer
// must carry the healthy source's solutions, degraded=true, a per-source
// status block — and the down source's breaker must open within its
// threshold.
func TestServerFederatedQueryDegraded(t *testing.T) {
	e, _ := scenarioEngine(t, 8)
	downEngine, _ := scenarioEngine(t, 0)
	down := federation.NewFaultySource(
		federation.NewLocalSource("down", downEngine),
		federation.FaultConfig{Seed: 3, ErrorRate: 1.0})

	const threshold = 3
	fed, err := federation.New(federation.Config{
		SourceTimeout: time.Second,
		Retry:         federation.RetryConfig{MaxAttempts: 2, BaseDelay: time.Millisecond},
		Breaker:       federation.BreakerConfig{Threshold: threshold, Cooldown: time.Minute},
	},
		federation.NewLocalSource("local", e), down)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(e, nil, WithFederator(fed)))
	defer srv.Close()

	// Baseline: what the healthy engine alone answers.
	res, err := e.QueryCtx(context.Background(), datagen.RoleEmergency, seconto.ActionView, fedTestQuery)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(res.Bindings)
	if wantRows == 0 {
		t.Fatal("baseline query returned no rows; test is vacuous")
	}

	path := "/v1/query?role=EmergencyResponse&q=" + url.QueryEscape(fedTestQuery)
	for i := 0; i < threshold+2; i++ {
		resp, body := doReq(t, srv, http.MethodGet, path)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d body %s", i, resp.StatusCode, body)
		}
		var env fedEnvelope
		if err := json.Unmarshal([]byte(body), &env); err != nil {
			t.Fatalf("request %d: bad JSON: %v", i, err)
		}
		if !env.Degraded {
			t.Fatalf("request %d: degraded = false with a 100%%-error source", i)
		}
		if len(env.Results) != wantRows {
			t.Fatalf("request %d: %d rows, want the healthy source's %d", i, len(env.Results), wantRows)
		}
		if len(env.Sources) != 2 {
			t.Fatalf("request %d: sources block %+v, want 2 entries", i, env.Sources)
		}
		for _, st := range env.Sources {
			switch st.Source {
			case "local":
				if st.State != federation.StateOK {
					t.Errorf("request %d: local state %s, want ok", i, st.State)
				}
			case "down":
				if i >= threshold && st.State != federation.StateOpen {
					t.Errorf("request %d: down state %s, want open after %d failures",
						i, st.State, threshold)
				}
			}
		}
	}
	if st, ok := fed.BreakerState("down"); !ok || st != federation.Open {
		t.Errorf("down breaker = %v (known %v), want open", st, ok)
	}
}

// TestServerFederatedAllSourcesFailed checks the one hard-failure case:
// every source down answers 502 with the uniform error envelope.
func TestServerFederatedAllSourcesFailed(t *testing.T) {
	e, _ := scenarioEngine(t, 0)
	down := federation.NewFaultySource(
		federation.NewLocalSource("down", e),
		federation.FaultConfig{Seed: 3, ErrorRate: 1.0})
	fed, err := federation.New(federation.Config{
		Retry: federation.RetryConfig{MaxAttempts: 1},
	}, down)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(e, nil, WithFederator(fed)))
	defer srv.Close()

	resp, body := doReq(t, srv, http.MethodGet,
		"/v1/query?role=EmergencyResponse&q="+url.QueryEscape(fedTestQuery))
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status = %d body %s, want 502", resp.StatusCode, body)
	}
	var env fedEnvelope
	if err := json.Unmarshal([]byte(body), &env); err != nil {
		t.Fatal(err)
	}
	if env.Code != "all_sources_failed" || env.Error == "" {
		t.Errorf("envelope = %+v, want code all_sources_failed", env)
	}
	if resp.Header.Get("X-Trace-Id") == "" {
		t.Error("missing trace id on federated failure")
	}
}

// TestServerPanicRecovery registers a panicking handler on the server mux
// and verifies the middleware converts the panic into the uniform 500
// envelope, counts it, and leaves the server serving.
func TestServerPanicRecovery(t *testing.T) {
	reg := obs.NewRegistry()
	e, _ := scenarioEngine(t, 0)
	s := NewServer(e, nil, WithMetrics(reg))
	s.mux.HandleFunc("/boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	srv := httptest.NewServer(s)
	defer srv.Close()

	resp, body := doReq(t, srv, http.MethodGet, "/boom")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	var env struct {
		Error   string `json:"error"`
		Code    string `json:"code"`
		TraceID string `json:"trace_id"`
	}
	if err := json.Unmarshal([]byte(body), &env); err != nil {
		t.Fatalf("panic response is not the JSON envelope: %v (%q)", err, body)
	}
	if env.Code != "internal" || env.TraceID == "" {
		t.Errorf("envelope = %+v, want code internal with a trace id", env)
	}
	// The process and listener survived: a normal request still works.
	resp, _ = doReq(t, srv, http.MethodGet, "/roles")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("server dead after panic: /roles = %d", resp.StatusCode)
	}
	// And the panic was counted.
	_, metrics := doReq(t, srv, http.MethodGet, "/metrics")
	if !strings.Contains(metrics, "grdf_http_panics_total 1") {
		t.Error("grdf_http_panics_total not incremented")
	}
}

// TestServerMaxBodyBytes verifies the mutating endpoints reject oversized
// bodies with 413 and the standard envelope, while small bodies pass.
func TestServerMaxBodyBytes(t *testing.T) {
	e, _ := scenarioEngine(t, 0)
	srv := httptest.NewServer(NewServer(e, nil, WithMaxBodyBytes(256)))
	defer srv.Close()

	small := `<http://example.org/x> <http://example.org/p> "v" .` + "\n"
	big := strings.Repeat("# padding comment line\n", 40) + small

	post := func(body string) (*http.Response, string) {
		t.Helper()
		resp, err := srv.Client().Post(
			srv.URL+"/v1/insert?role=EmergencyResponse", "application/n-triples",
			strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp, sb.String()
	}

	resp, body := post(big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d body %s, want 413", resp.StatusCode, body)
	}
	var env struct {
		Code string `json:"code"`
	}
	if err := json.Unmarshal([]byte(body), &env); err != nil || env.Code != "body_too_large" {
		t.Errorf("oversized body envelope = %q (err %v), want code body_too_large", body, err)
	}
	// A body under the cap is processed normally (403/200 depending on the
	// role's write policy — anything but 413 shows the limiter let it by).
	resp, _ = post(small)
	if resp.StatusCode == http.StatusRequestEntityTooLarge {
		t.Error("small body rejected as too large")
	}
}

// TestOntoRepositoryCombinedCache verifies Combined is cached between
// mutations and invalidated by Register.
func TestOntoRepositoryCombinedCache(t *testing.T) {
	repo := NewOntoRepository()
	repo.Register("grdf", grdf.Ontology())
	gen0 := repo.Generation()

	first := repo.Combined()
	if first.Len() == 0 {
		t.Fatal("combined store empty")
	}
	if second := repo.Combined(); second != first {
		t.Error("Combined rebuilt with no intervening Register")
	}
	repo.Register("seconto", seconto.Ontology())
	if repo.Generation() == gen0 {
		t.Error("Register did not bump the generation")
	}
	third := repo.Combined()
	if third == first {
		t.Error("Combined cache not invalidated by Register")
	}
	if third.Len() <= first.Len() {
		t.Errorf("combined after second Register has %d triples, want > %d",
			third.Len(), first.Len())
	}
}

// TestOntoRepositoryCombinedConcurrent races Register against Combined and
// readers; run under -race this guards the cache's locking.
func TestOntoRepositoryCombinedConcurrent(t *testing.T) {
	repo := NewOntoRepository()
	repo.Register("grdf", grdf.Ontology())
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				name := []string{"grdf", "seconto", "extra", "other"}[i%4]
				repo.Register(name, seconto.Ontology())
			}
		}(g)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if st := repo.Combined(); st.Len() == 0 {
					t.Error("combined store empty mid-run")
					return
				}
				_ = repo.Names()
				_, _ = repo.Get("grdf")
			}
		}()
	}
	wg.Wait()
	// Final state must reflect the last registrations exactly once each.
	final := repo.Combined()
	if final != repo.Combined() {
		t.Error("cache unstable after writers stopped")
	}
}
