package gsacs

import (
	"errors"
	"testing"

	"repro/internal/datagen"
	"repro/internal/rdf"
	"repro/internal/seconto"
)

// writeScenario: a role with Modify rights on site names only, and an admin
// with full Modify/Delete.
func writeScenario(t *testing.T) (*Engine, *datagen.Scenario, rdf.IRI, rdf.IRI) {
	t.Helper()
	sc := datagen.NewScenario(datagen.ScenarioConfig{Seed: 3, Sites: 4})
	editor := rdf.IRI(seconto.NS + "SiteEditor")
	admin := rdf.IRI(seconto.NS + "Admin")
	sc.Policies.Rules = append(sc.Policies.Rules,
		seconto.Rule{
			ID: seconto.NS + "EditorModify", Subject: editor,
			Action: seconto.ActionModify, Resource: datagen.ChemSite, Permit: true,
			Properties: []rdf.IRI{datagen.HasSiteName},
		},
		seconto.Rule{
			ID: seconto.NS + "AdminModify", Subject: admin,
			Action: seconto.ActionModify, Resource: datagen.ChemSite, Permit: true,
		},
		seconto.Rule{
			ID: seconto.NS + "AdminDelete", Subject: admin,
			Action: seconto.ActionDelete, Resource: datagen.ChemSite, Permit: true,
		},
	)
	e := New(sc.Policies, sc.Merged, Options{})
	return e, sc, editor, admin
}

func TestInsertPropertyScoped(t *testing.T) {
	e, sc, editor, _ := writeScenario(t)
	site := sc.Chemical.Sites[0].IRI

	// allowed property
	if err := e.Insert(editor, rdf.T(site, datagen.HasSiteName, rdf.NewString("Renamed Plant"))); err != nil {
		t.Fatalf("allowed insert rejected: %v", err)
	}
	if !e.Data().Has(rdf.T(site, datagen.HasSiteName, rdf.NewString("Renamed Plant"))) {
		t.Error("insert did not land")
	}

	// denied property
	err := e.Insert(editor, rdf.T(site, datagen.HasContactPhone, rdf.NewString("000")))
	var denied *ErrDenied
	if !errors.As(err, &denied) {
		t.Fatalf("expected ErrDenied, got %v", err)
	}
	if denied.Property != datagen.HasContactPhone {
		t.Errorf("denied property = %v", denied.Property)
	}
	if e.Data().Has(rdf.T(site, datagen.HasContactPhone, rdf.NewString("000"))) {
		t.Error("denied insert landed")
	}

	// rdf:type writes need full access
	if err := e.Insert(editor, rdf.T(site, rdf.RDFType, rdf.IRI(rdf.AppNS+"Evil"))); err == nil {
		t.Error("type rewrite allowed for property-scoped role")
	}
}

func TestInsertNoPolicy(t *testing.T) {
	e, sc, _, _ := writeScenario(t)
	nobody := rdf.IRI(seconto.NS + "Nobody")
	err := e.Insert(nobody, rdf.T(sc.Chemical.Sites[0].IRI, datagen.HasSiteName, rdf.NewString("x")))
	if err == nil {
		t.Error("unauthorized insert allowed")
	}
	if err.Error() == "" {
		t.Error("empty error text")
	}
}

func TestDeleteAndUpdate(t *testing.T) {
	e, sc, editor, admin := writeScenario(t)
	site := sc.Chemical.Sites[1].IRI
	name, _ := e.Data().FirstObject(site, datagen.HasSiteName)

	// editor may not delete (no Delete policy)
	if err := e.Delete(editor, rdf.T(site, datagen.HasSiteName, name)); err == nil {
		t.Error("delete without Delete policy allowed")
	}
	// admin may
	if err := e.Delete(admin, rdf.T(site, datagen.HasSiteName, name)); err != nil {
		t.Fatalf("admin delete rejected: %v", err)
	}
	if _, ok := e.Data().FirstObject(site, datagen.HasSiteName); ok {
		t.Error("delete did not land")
	}

	// update through the editor on its allowed property
	site2 := sc.Chemical.Sites[2].IRI
	old, _ := e.Data().FirstObject(site2, datagen.HasSiteName)
	if err := e.Update(editor, site2, datagen.HasSiteName, old, rdf.NewString("Updated Name")); err != nil {
		t.Fatalf("update rejected: %v", err)
	}
	if v, _ := e.Data().FirstObject(site2, datagen.HasSiteName); !v.Equal(rdf.NewString("Updated Name")) {
		t.Errorf("update result = %v", v)
	}
	// update of a non-existent triple fails
	if err := e.Update(editor, site2, datagen.HasSiteName, rdf.NewString("never"), rdf.NewString("x")); err == nil {
		t.Error("update of absent triple succeeded")
	}
	// update on a denied property fails
	if err := e.Update(editor, site2, datagen.HasContactPhone, rdf.NewString("a"), rdf.NewString("b")); err == nil {
		t.Error("update on denied property succeeded")
	}
}

func TestInsertInvalidatesCachedViews(t *testing.T) {
	sc := datagen.NewScenario(datagen.ScenarioConfig{Seed: 3, Sites: 4})
	admin := rdf.IRI(seconto.NS + "Admin")
	sc.Policies.Rules = append(sc.Policies.Rules,
		seconto.Rule{
			ID: seconto.NS + "AdminModify", Subject: admin,
			Action: seconto.ActionModify, Resource: datagen.ChemSite, Permit: true,
		})
	e := New(sc.Policies, sc.Merged, Options{CacheSize: 4})
	v1 := e.View(datagen.RoleHazmat, seconto.ActionView)
	site := sc.Chemical.Sites[0].IRI
	if err := e.Insert(admin, rdf.T(site, datagen.HasSiteName, rdf.NewString("New Wing"))); err != nil {
		t.Fatal(err)
	}
	v2 := e.View(datagen.RoleHazmat, seconto.ActionView)
	if v1 == v2 {
		t.Error("cached view survived a write")
	}
	if !v2.Has(rdf.T(site, datagen.HasSiteName, rdf.NewString("New Wing"))) {
		t.Error("write missing from fresh view")
	}
}

func TestInsertRejectsInvalidTriple(t *testing.T) {
	e, _, _, admin := writeScenario(t)
	bad := rdf.Triple{Subject: rdf.NewString("lit"), Predicate: datagen.HasSiteName, Object: rdf.NewString("x")}
	if err := e.Insert(admin, bad); err == nil {
		t.Error("invalid triple accepted")
	}
}
