package gsacs

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/federation"
	"repro/internal/obs/workload"
	"repro/internal/repl"
)

// ClusterPeer names one fleet member the rollup polls.
type ClusterPeer struct {
	// Name labels the peer in the rollup (defaults to its base URL).
	Name string
	// Base is the peer's base URL, e.g. "http://replica-1:8080".
	Base string
}

// ClusterConfig wires the /v1/cluster fleet rollup.
type ClusterConfig struct {
	// SelfName labels this node's own block (default "self").
	SelfName string
	// Peers are the fleet members to poll.
	Peers []ClusterPeer
	// Client is shared across peers; nil gets a pooled default per peer.
	Client *http.Client
	// Timeout bounds the whole fan-out (default 3s): a hung peer must not
	// hang the rollup.
	Timeout time.Duration
	// TopK bounds both the per-peer fingerprint fetch and the merged
	// fleet-wide heavy-hitter list (default 10).
	TopK int
}

// clusterRollup is the server-side state behind /v1/cluster.
type clusterRollup struct {
	selfName string
	sources  []*federation.RemoteSource
	timeout  time.Duration
	topK     int
}

// WithCluster mounts GET /v1/cluster on a router/leader node: a fan-out —
// over the federation client machinery, so trace propagation, body bounds
// and error envelopes are shared with query federation — to every peer's
// /v1/slo, /v1/queries and /healthz, merged into one fleet view: per-peer
// health / SLO / replication blocks plus a fleet-wide heavy-hitter list
// summing per-fingerprint counts across nodes. Fingerprints are computed
// from the canonical query form, so the same shape hashes identically on
// every node and the merge is a plain sum.
func WithCluster(cfg ClusterConfig) ServerOption {
	return func(s *Server) {
		cr := &clusterRollup{
			selfName: cfg.SelfName,
			timeout:  cfg.Timeout,
			topK:     cfg.TopK,
		}
		if cr.selfName == "" {
			cr.selfName = "self"
		}
		if cr.timeout <= 0 {
			cr.timeout = 3 * time.Second
		}
		if cr.topK <= 0 {
			cr.topK = 10
		}
		for _, p := range cfg.Peers {
			name := p.Name
			if name == "" {
				name = p.Base
			}
			cr.sources = append(cr.sources,
				federation.NewRemoteSource(name, p.Base, cfg.Client))
		}
		s.cluster = cr
	}
}

// clusterPeerReport is one peer's slice of the rollup.
type clusterPeerReport struct {
	Name string `json:"name"`
	Base string `json:"base"`
	// OK means every probe answered and the peer reports status "ok".
	OK bool `json:"ok"`
	// Status is the peer's /healthz status line ("ok", "lagging",
	// "recovering"; "unreachable" when no probe answered).
	Status string `json:"status"`
	// Errors lists failed probes ("healthz: ...") — a peer can be partially
	// readable (e.g. workload introspection disabled ⇒ /v1/queries 404).
	Errors []string `json:"errors,omitempty"`
	// Replication is the follower state ("ready" / "lagging" /
	// "bootstrapping") when the peer is a replica.
	Replication string  `json:"replication,omitempty"`
	LagSeconds  float64 `json:"lag_seconds,omitempty"`
	// AvailabilityOK / LatencyOK mirror the peer's SLO verdicts; absent when
	// its /v1/slo was unreadable.
	AvailabilityOK *bool `json:"availability_ok,omitempty"`
	LatencyOK      *bool `json:"latency_ok,omitempty"`
	// TopQueries are the peer's heaviest fingerprints.
	TopQueries []workload.Snapshot `json:"top_queries,omitempty"`
}

// fetchPeer runs the three probes against one peer. Probe failures degrade
// the report instead of failing it: the rollup's job is precisely to stay
// useful when part of the fleet is not.
func (c *clusterRollup) fetchPeer(ctx context.Context, src *federation.RemoteSource) clusterPeerReport {
	rep := clusterPeerReport{Name: src.Name(), Base: src.Base(), Status: "unreachable"}
	fail := func(probe string, err error) {
		rep.Errors = append(rep.Errors, fmt.Sprintf("%s: %v", probe, err))
	}

	var health struct {
		Status      string               `json:"status"`
		Replication *repl.FollowerStatus `json:"replication"`
	}
	if err := src.FetchJSON(ctx, "/healthz", &health); err != nil {
		fail("healthz", err)
	} else {
		rep.Status = health.Status
		if health.Replication != nil {
			rep.Replication = health.Replication.State()
			rep.LagSeconds = health.Replication.LagSeconds
		}
	}

	var slo struct {
		AvailabilityOK bool `json:"availability_ok"`
		LatencyOK      bool `json:"latency_ok"`
	}
	if err := src.FetchJSON(ctx, "/v1/slo", &slo); err != nil {
		fail("slo", err)
	} else {
		rep.AvailabilityOK, rep.LatencyOK = &slo.AvailabilityOK, &slo.LatencyOK
	}

	var queries struct {
		Queries []workload.Snapshot `json:"queries"`
	}
	path := fmt.Sprintf("/v1/queries?limit=%d", c.topK)
	if err := src.FetchJSON(ctx, path, &queries); err != nil {
		fail("queries", err)
	} else {
		rep.TopQueries = queries.Queries
	}

	rep.OK = len(rep.Errors) == 0 && rep.Status == "ok"
	return rep
}

// mergeTopQueries folds per-node snapshot lists into the fleet-wide
// heavy-hitter list: counts, row totals and outcome counters sum; latency
// maxima and drift take the worst node's value (quantiles do not merge
// without the sketches, so per-shape quantiles stay per-node).
func mergeTopQueries(lists [][]workload.Snapshot, k int) []workload.Snapshot {
	byFP := map[string]*workload.Snapshot{}
	for _, list := range lists {
		for _, snap := range list {
			acc, ok := byFP[snap.Fingerprint]
			if !ok {
				cp := snap
				byFP[snap.Fingerprint] = &cp
				continue
			}
			acc.Count += snap.Count
			acc.CountError += snap.CountError
			acc.Errors += snap.Errors
			acc.Shed += snap.Shed
			acc.Degraded += snap.Degraded
			acc.Reorders += snap.Reorders
			acc.RowsScan += snap.RowsScan
			acc.RowsOut += snap.RowsOut
			acc.DriftCount += snap.DriftCount
			if snap.MaxMs > acc.MaxMs {
				acc.MaxMs = snap.MaxMs
			}
			if snap.P99Ms > acc.P99Ms {
				acc.P99Ms = snap.P99Ms
			}
			if snap.P90Ms > acc.P90Ms {
				acc.P90Ms = snap.P90Ms
			}
			if snap.P50Ms > acc.P50Ms {
				acc.P50Ms = snap.P50Ms
			}
			if snap.MaxMisestimate > acc.MaxMisestimate {
				acc.MaxMisestimate = snap.MaxMisestimate
				acc.DriftBand = snap.DriftBand
			}
			if snap.LastSeen.After(acc.LastSeen) {
				acc.LastSeen = snap.LastSeen
				if snap.LastTraceID != "" {
					acc.LastTraceID = snap.LastTraceID
				}
			}
		}
	}
	out := make([]workload.Snapshot, 0, len(byFP))
	for _, acc := range byFP {
		out = append(out, *acc)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// handleCluster serves the fleet rollup: the local node's block assembled
// in-process, every peer polled concurrently, and the merged heavy-hitter
// list on top.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	c := s.cluster

	self := map[string]any{"name": c.selfName, "status": "ok"}
	lists := make([][]workload.Snapshot, 0, len(c.sources)+1)
	if s.workload != nil {
		top := s.workload.TopK(c.topK)
		self["top_queries"] = top
		lists = append(lists, top)
	}
	selfAvailable := true
	if s.slo != nil {
		st := s.slo.Status()
		self["availability_ok"] = st.AvailabilityOK
		self["latency_ok"] = st.LatencyOK
		selfAvailable = st.AvailabilityOK
	}
	if s.admission != nil {
		self["admission"] = s.admission.Status()
	}

	ctx, cancel := context.WithTimeout(r.Context(), c.timeout)
	defer cancel()
	peers := make([]clusterPeerReport, len(c.sources))
	var wg sync.WaitGroup
	for i, src := range c.sources {
		wg.Add(1)
		go func(i int, src *federation.RemoteSource) {
			defer wg.Done()
			peers[i] = c.fetchPeer(ctx, src)
		}(i, src)
	}
	wg.Wait()

	peersOK := 0
	availabilityOK := selfAvailable
	for _, p := range peers {
		if p.OK {
			peersOK++
		}
		if p.AvailabilityOK != nil && !*p.AvailabilityOK {
			availabilityOK = false
		}
		lists = append(lists, p.TopQueries)
	}
	status := "ok"
	if peersOK < len(peers) || !availabilityOK {
		status = "degraded"
	}

	s.writeJSON(w, r, map[string]any{
		"self":  self,
		"peers": peers,
		"fleet": map[string]any{
			"status":          status,
			"peers_total":     len(peers),
			"peers_ok":        peersOK,
			"availability_ok": availabilityOK,
			"top_queries":     mergeTopQueries(lists, c.topK),
		},
	})
}
