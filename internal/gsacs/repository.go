package gsacs

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/rdf"
	"repro/internal/store"
)

// OntoRepository is Fig. 3's "database of ontologies needed to perform the
// reasoning. For instance, GRDF would reside in this repository."
//
// The merged view (Combined) is cached: rebuilding it on every call made
// each reasoner bootstrap O(total ontology size) even when nothing had
// changed. A generation counter bumped by Register invalidates the cache.
type OntoRepository struct {
	mu    sync.RWMutex
	ontos map[string]*rdf.Graph

	gen         uint64       // bumped on every Register
	combined    *store.Store // cached merge, valid while combinedGen == gen
	combinedGen uint64
}

// NewOntoRepository returns an empty repository.
func NewOntoRepository() *OntoRepository {
	return &OntoRepository{ontos: make(map[string]*rdf.Graph)}
}

// Register stores an ontology under a name, replacing any previous version
// and invalidating the cached merged store.
func (r *OntoRepository) Register(name string, g *rdf.Graph) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ontos[name] = g
	r.gen++
}

// Get returns the named ontology.
func (r *OntoRepository) Get(name string) (*rdf.Graph, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	g, ok := r.ontos[name]
	if !ok {
		return nil, fmt.Errorf("gsacs: ontology %q not in repository", name)
	}
	return g, nil
}

// Names lists the registered ontology names, sorted.
func (r *OntoRepository) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.ontos))
	for n := range r.ontos {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Combined merges every registered ontology into one store, ready to feed
// the reasoning engine. The store is cached and shared between callers
// until the next Register, so treat it as read-only; mutating consumers
// should work on Combined().Snapshot().
func (r *OntoRepository) Combined() *store.Store {
	r.mu.RLock()
	if r.combined != nil && r.combinedGen == r.gen {
		st := r.combined
		r.mu.RUnlock()
		return st
	}
	r.mu.RUnlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.combined != nil && r.combinedGen == r.gen {
		return r.combined
	}
	st := store.New()
	for _, g := range r.ontos {
		st.AddGraph(g)
	}
	r.combined = st
	r.combinedGen = r.gen
	return st
}

// Generation reports the repository's mutation counter; it changes exactly
// when a Register invalidates the combined cache.
func (r *OntoRepository) Generation() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.gen
}

// Graphs returns the registered ontologies in name order.
func (r *OntoRepository) Graphs() []*rdf.Graph {
	names := r.Names()
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*rdf.Graph, 0, len(names))
	for _, n := range names {
		out = append(out, r.ontos[n])
	}
	return out
}
