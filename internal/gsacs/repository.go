package gsacs

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/rdf"
	"repro/internal/store"
)

// OntoRepository is Fig. 3's "database of ontologies needed to perform the
// reasoning. For instance, GRDF would reside in this repository."
type OntoRepository struct {
	mu    sync.RWMutex
	ontos map[string]*rdf.Graph
}

// NewOntoRepository returns an empty repository.
func NewOntoRepository() *OntoRepository {
	return &OntoRepository{ontos: make(map[string]*rdf.Graph)}
}

// Register stores an ontology under a name, replacing any previous version.
func (r *OntoRepository) Register(name string, g *rdf.Graph) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ontos[name] = g
}

// Get returns the named ontology.
func (r *OntoRepository) Get(name string) (*rdf.Graph, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	g, ok := r.ontos[name]
	if !ok {
		return nil, fmt.Errorf("gsacs: ontology %q not in repository", name)
	}
	return g, nil
}

// Names lists the registered ontology names, sorted.
func (r *OntoRepository) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.ontos))
	for n := range r.ontos {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Combined merges every registered ontology into one store, ready to feed
// the reasoning engine.
func (r *OntoRepository) Combined() *store.Store {
	r.mu.RLock()
	defer r.mu.RUnlock()
	st := store.New()
	for _, g := range r.ontos {
		st.AddGraph(g)
	}
	return st
}

// Graphs returns the registered ontologies in name order.
func (r *OntoRepository) Graphs() []*rdf.Graph {
	names := r.Names()
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*rdf.Graph, 0, len(names))
	for _, n := range names {
		out = append(out, r.ontos[n])
	}
	return out
}
