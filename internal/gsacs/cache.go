package gsacs

import (
	"container/list"
	"sync"

	"repro/internal/obs"
	"repro/internal/store"
)

// QueryCache is the Fig. 3 performance optimizer: "in many systems, the same
// queries tend to occur frequently and as a result, having a caching
// mechanism that stores the queries and corresponding answers would provide
// a significant performance boost."
//
// Entries are keyed by a request key plus the data store's generation
// counter, so any mutation of the underlying data invalidates every cached
// answer at lookup time without an explicit flush. Eviction is LRU.
//
// The cache distinguishes the two miss causes operators need to tell apart:
// cold misses (key never seen / evicted) versus stale invalidations (key
// present but computed at an older data generation). A cache with a high
// stale rate needs fewer writers, not more capacity.
type QueryCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List
	entries  map[string]*list.Element

	hits      uint64
	misses    uint64
	evictions uint64
	stale     uint64

	// Metric handles (nil-safe no-ops until instrument is called).
	mHits      *obs.Counter
	mMisses    *obs.Counter
	mEvictions *obs.Counter
	mStale     *obs.Counter
}

type cacheEntry struct {
	key        string
	generation uint64
	view       *store.Store
}

// NewQueryCache returns a cache bounded to capacity entries (minimum 1).
func NewQueryCache(capacity int) *QueryCache {
	if capacity < 1 {
		capacity = 1
	}
	return &QueryCache{
		capacity: capacity,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// instrument exports the cache's counters into reg. Call before concurrent
// use (the engine does this at construction).
func (c *QueryCache) instrument(reg *obs.Registry) {
	c.mHits = reg.Counter("grdf_cache_hits_total", "Query cache hits.")
	c.mMisses = reg.Counter("grdf_cache_misses_total",
		"Query cache misses (cold and stale combined).")
	c.mEvictions = reg.Counter("grdf_cache_evictions_total",
		"Entries evicted by LRU capacity pressure.")
	c.mStale = reg.Counter("grdf_cache_stale_invalidations_total",
		"Entries dropped at lookup because the data generation moved.")
	reg.GaugeFunc("grdf_cache_entries", "Entries currently cached.",
		func() float64 { return float64(c.Len()) })
}

// Get returns the cached view for key when present and computed at the
// given data generation; stale entries are dropped.
func (c *QueryCache) Get(key string, generation uint64) (*store.Store, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		c.mMisses.Inc()
		return nil, false
	}
	ent := el.Value.(*cacheEntry)
	if ent.generation != generation {
		// Data changed since this answer was computed: invalidate.
		c.ll.Remove(el)
		delete(c.entries, key)
		c.misses++
		c.stale++
		c.mMisses.Inc()
		c.mStale.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	c.mHits.Inc()
	return ent.view, true
}

// Put stores a view computed at the given generation.
func (c *QueryCache) Put(key string, generation uint64, view *store.Store) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		ent := el.Value.(*cacheEntry)
		ent.generation = generation
		ent.view = view
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&cacheEntry{key: key, generation: generation, view: view})
	c.entries[key] = el
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
		c.mEvictions.Inc()
	}
}

// Len returns the number of cached entries.
func (c *QueryCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns (hits, misses) so far.
func (c *QueryCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// CacheStats is a full accounting snapshot of the cache.
type CacheStats struct {
	Hits               uint64 `json:"hits"`
	Misses             uint64 `json:"misses"`
	Evictions          uint64 `json:"evictions"`
	StaleInvalidations uint64 `json:"stale_invalidations"`
	Entries            int    `json:"entries"`
	Capacity           int    `json:"capacity"`
}

// Snapshot returns every counter at once — the /healthz payload and the
// E8 experiment both read this.
func (c *QueryCache) Snapshot() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:               c.hits,
		Misses:             c.misses,
		Evictions:          c.evictions,
		StaleInvalidations: c.stale,
		Entries:            c.ll.Len(),
		Capacity:           c.capacity,
	}
}

// Clear drops every entry.
func (c *QueryCache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.entries = make(map[string]*list.Element)
}
