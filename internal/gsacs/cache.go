package gsacs

import (
	"container/list"
	"sync"

	"repro/internal/store"
)

// QueryCache is the Fig. 3 performance optimizer: "in many systems, the same
// queries tend to occur frequently and as a result, having a caching
// mechanism that stores the queries and corresponding answers would provide
// a significant performance boost."
//
// Entries are keyed by a request key plus the data store's generation
// counter, so any mutation of the underlying data invalidates every cached
// answer at lookup time without an explicit flush. Eviction is LRU.
type QueryCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List
	entries  map[string]*list.Element

	hits   uint64
	misses uint64
}

type cacheEntry struct {
	key        string
	generation uint64
	view       *store.Store
}

// NewQueryCache returns a cache bounded to capacity entries (minimum 1).
func NewQueryCache(capacity int) *QueryCache {
	if capacity < 1 {
		capacity = 1
	}
	return &QueryCache{
		capacity: capacity,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// Get returns the cached view for key when present and computed at the
// given data generation; stale entries are dropped.
func (c *QueryCache) Get(key string, generation uint64) (*store.Store, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	ent := el.Value.(*cacheEntry)
	if ent.generation != generation {
		// Data changed since this answer was computed: invalidate.
		c.ll.Remove(el)
		delete(c.entries, key)
		c.misses++
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return ent.view, true
}

// Put stores a view computed at the given generation.
func (c *QueryCache) Put(key string, generation uint64, view *store.Store) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		ent := el.Value.(*cacheEntry)
		ent.generation = generation
		ent.view = view
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&cacheEntry{key: key, generation: generation, view: view})
	c.entries[key] = el
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// Len returns the number of cached entries.
func (c *QueryCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns (hits, misses) so far.
func (c *QueryCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Clear drops every entry.
func (c *QueryCache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.entries = make(map[string]*list.Element)
}
