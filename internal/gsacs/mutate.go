package gsacs

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/seconto"
	"repro/internal/store"
)

// ErrNotFound is returned (wrapped) by Update when the triple to replace is
// not in the store.
var ErrNotFound = errors.New("triple not present")

// Write-path enforcement. The paper's action individuals include Modify and
// Delete alongside View; these entry points run the same decision procedure
// before mutating the store, so write policies compose with the
// property-level condition language.

// ErrDenied is returned (wrapped) when a mutation is not authorized.
type ErrDenied struct {
	Subject  rdf.IRI
	Action   rdf.IRI
	Resource rdf.Term
	Property rdf.IRI
}

func (e *ErrDenied) Error() string {
	if e.Property != "" {
		return fmt.Sprintf("gsacs: %s denied %s on %s (property %s)",
			e.Subject.LocalName(), e.Action.LocalName(), e.Resource, e.Property.LocalName())
	}
	return fmt.Sprintf("gsacs: %s denied %s on %s",
		e.Subject.LocalName(), e.Action.LocalName(), e.Resource)
}

// authorizeTriple checks that subject may perform action on the triple's
// resource and property.
func (e *Engine) authorizeTriple(subject, action rdf.IRI, t rdf.Triple) error {
	acc := e.Decide(subject, action, t.Subject)
	if !acc.Allowed {
		return &ErrDenied{Subject: subject, Action: action, Resource: t.Subject}
	}
	pred, ok := t.Predicate.(rdf.IRI)
	if !ok {
		return fmt.Errorf("gsacs: predicate %s is not an IRI", t.Predicate)
	}
	// rdf:type writes count as structural modifications: they require full
	// access, never just a property grant.
	if pred == rdf.RDFType {
		if !acc.Full {
			return &ErrDenied{Subject: subject, Action: action, Resource: t.Subject, Property: pred}
		}
		return nil
	}
	if !acc.PropertyVisible(pred, e.Reasoner()) {
		return &ErrDenied{Subject: subject, Action: action, Resource: t.Subject, Property: pred}
	}
	return nil
}

// Insert adds a triple on behalf of subject after a Modify decision. The
// mutation is acknowledged only once the store's commit hook (the WAL, when
// the repository is durable) has accepted it.
func (e *Engine) Insert(subject rdf.IRI, t rdf.Triple) error {
	return e.InsertCtx(context.Background(), subject, t)
}

// InsertCtx is Insert with the request context: the mutation runs under a
// gsacs.mutate span and the context rides the store op into the commit hook,
// so WAL append/fsync cost lands on the request's trace.
func (e *Engine) InsertCtx(ctx context.Context, subject rdf.IRI, t rdf.Triple) error {
	ctx, sp := e.mutateSpan(ctx, "insert", subject)
	defer sp.End()
	if !t.Valid() {
		err := fmt.Errorf("gsacs: invalid triple %v", t)
		sp.Fail(err)
		return err
	}
	if err := e.authorizeTriple(subject, seconto.ActionModify, t); err != nil {
		sp.Fail(err)
		return err
	}
	if _, err := e.data.Apply(store.Op{Kind: store.OpAdd, Triples: []rdf.Triple{t}, Ctx: ctx}); err != nil {
		err = fmt.Errorf("gsacs: insert not persisted: %w", err)
		sp.Fail(err)
		return err
	}
	return nil
}

// Delete removes a triple on behalf of subject after a Delete decision.
func (e *Engine) Delete(subject rdf.IRI, t rdf.Triple) error {
	return e.DeleteCtx(context.Background(), subject, t)
}

// DeleteCtx is Delete with the request context (see InsertCtx).
func (e *Engine) DeleteCtx(ctx context.Context, subject rdf.IRI, t rdf.Triple) error {
	ctx, sp := e.mutateSpan(ctx, "delete", subject)
	defer sp.End()
	if err := e.authorizeTriple(subject, seconto.ActionDelete, t); err != nil {
		sp.Fail(err)
		return err
	}
	if _, err := e.data.Apply(store.Op{Kind: store.OpRemove, Triples: []rdf.Triple{t}, Ctx: ctx}); err != nil {
		err = fmt.Errorf("gsacs: delete not persisted: %w", err)
		sp.Fail(err)
		return err
	}
	return nil
}

// Update replaces the object of (resource, property, old) with new on behalf
// of subject; it requires Modify on the property. The swap is a single
// store.Replace op: concurrent readers never see the triple missing, the
// query cache is invalidated exactly once, and the WAL records one replace
// record instead of a remove/add pair.
func (e *Engine) Update(subject rdf.IRI, resource rdf.Term, property rdf.IRI, oldObj, newObj rdf.Term) error {
	return e.UpdateCtx(context.Background(), subject, resource, property, oldObj, newObj)
}

// UpdateCtx is Update with the request context (see InsertCtx).
func (e *Engine) UpdateCtx(ctx context.Context, subject rdf.IRI, resource rdf.Term, property rdf.IRI, oldObj, newObj rdf.Term) error {
	ctx, sp := e.mutateSpan(ctx, "update", subject)
	defer sp.End()
	t := rdf.T(resource, property, oldObj)
	if err := e.authorizeTriple(subject, seconto.ActionModify, t); err != nil {
		sp.Fail(err)
		return err
	}
	nt := rdf.T(resource, property, newObj)
	if !nt.Valid() {
		err := fmt.Errorf("gsacs: invalid replacement triple %v", nt)
		sp.Fail(err)
		return err
	}
	n, err := e.data.Apply(store.Op{Kind: store.OpReplace, Triples: []rdf.Triple{t, nt}, Ctx: ctx})
	if err != nil {
		err = fmt.Errorf("gsacs: update not persisted: %w", err)
		sp.Fail(err)
		return err
	}
	if n == 0 {
		err = fmt.Errorf("gsacs: %w: %s", ErrNotFound, t)
		sp.Fail(err)
		return err
	}
	return nil
}

// MutationOp is one element of an atomic batch mutation: an insert or delete
// of one or more triples, or an update carrying exactly [old, new]. It is the
// engine-level unit behind POST /v1/mutate.
type MutationOp struct {
	Kind    store.OpKind
	Triples []rdf.Triple
}

// BatchOpError attributes a batch-mutation failure to the op that caused it.
// Unwrap exposes the cause so errors.Is/As see ErrDenied, ErrNotFound and
// store.ErrCommitHook through it.
type BatchOpError struct {
	Index int
	Err   error
}

func (e *BatchOpError) Error() string { return fmt.Sprintf("op %d: %v", e.Index, e.Err) }
func (e *BatchOpError) Unwrap() error { return e.Err }

// MutateCtx applies a batch of mutations atomically on behalf of subject:
// every op is authorized and validated up front, then the whole batch lands
// as one store generation and one WAL group-commit entry — or not at all.
// The returned slice holds the number of triples each op effectively changed.
//
// Updates use the store's MustExist replace, so a missing old triple aborts
// the batch with ErrNotFound instead of silently no-opping. Any failure is
// wrapped in *BatchOpError naming the offending op.
func (e *Engine) MutateCtx(ctx context.Context, subject rdf.IRI, muts []MutationOp) ([]int, error) {
	ctx, sp := e.mutateSpan(ctx, "mutate", subject)
	defer sp.End()
	sp.SetAttr("ops", fmt.Sprintf("%d", len(muts)))
	if len(muts) == 0 {
		return nil, nil
	}
	ops := make([]store.Op, len(muts))
	for i, m := range muts {
		op, err := e.authorizeOp(ctx, subject, m)
		if err != nil {
			berr := &BatchOpError{Index: i, Err: err}
			sp.Fail(berr)
			return nil, berr
		}
		ops[i] = op
	}
	ns, err := e.data.ApplyBatch(ops)
	if err != nil {
		var be *store.BatchError
		switch {
		case errors.As(err, &be):
			cause := be.Err
			if errors.Is(cause, store.ErrAbsent) {
				cause = fmt.Errorf("gsacs: %w: %s", ErrNotFound, ops[be.Index].Triples[0])
			}
			err = &BatchOpError{Index: be.Index, Err: cause}
		case errors.Is(err, store.ErrCommitHook):
			err = fmt.Errorf("gsacs: batch not persisted: %w", err)
		}
		sp.Fail(err)
		return nil, err
	}
	return ns, nil
}

// authorizeOp runs the per-triple decision procedure for one batch op and
// shapes it into the store.Op the batch will carry.
func (e *Engine) authorizeOp(ctx context.Context, subject rdf.IRI, m MutationOp) (store.Op, error) {
	op := store.Op{Kind: m.Kind, Triples: m.Triples, Ctx: ctx}
	switch m.Kind {
	case store.OpAdd:
		if len(m.Triples) == 0 {
			return op, fmt.Errorf("gsacs: insert op carries no triples")
		}
		for _, t := range m.Triples {
			if !t.Valid() {
				return op, fmt.Errorf("gsacs: invalid triple %v", t)
			}
			if err := e.authorizeTriple(subject, seconto.ActionModify, t); err != nil {
				return op, err
			}
		}
	case store.OpRemove:
		if len(m.Triples) == 0 {
			return op, fmt.Errorf("gsacs: delete op carries no triples")
		}
		for _, t := range m.Triples {
			if err := e.authorizeTriple(subject, seconto.ActionDelete, t); err != nil {
				return op, err
			}
		}
	case store.OpReplace:
		if len(m.Triples) != 2 {
			return op, fmt.Errorf("gsacs: update op needs exactly [old, new], got %d triples", len(m.Triples))
		}
		if err := e.authorizeTriple(subject, seconto.ActionModify, m.Triples[0]); err != nil {
			return op, err
		}
		if !m.Triples[1].Valid() {
			return op, fmt.Errorf("gsacs: invalid replacement triple %v", m.Triples[1])
		}
		if err := e.authorizeTriple(subject, seconto.ActionModify, m.Triples[1]); err != nil {
			return op, err
		}
		op.MustExist = true
	default:
		return op, fmt.Errorf("gsacs: unsupported mutation kind %d", m.Kind)
	}
	return op, nil
}

// mutateSpan opens the gsacs.mutate span shared by the write entry points.
func (e *Engine) mutateSpan(ctx context.Context, op string, subject rdf.IRI) (context.Context, *obs.Span) {
	ctx, sp := obs.StartSpan(ctx, "gsacs.mutate")
	sp.SetAttr("op", op)
	sp.SetAttr("role", subject.LocalName())
	return ctx, sp
}
