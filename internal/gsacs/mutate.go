package gsacs

import (
	"errors"
	"fmt"

	"repro/internal/rdf"
	"repro/internal/seconto"
	"repro/internal/store"
)

// ErrNotFound is returned (wrapped) by Update when the triple to replace is
// not in the store.
var ErrNotFound = errors.New("triple not present")

// Write-path enforcement. The paper's action individuals include Modify and
// Delete alongside View; these entry points run the same decision procedure
// before mutating the store, so write policies compose with the
// property-level condition language.

// ErrDenied is returned (wrapped) when a mutation is not authorized.
type ErrDenied struct {
	Subject  rdf.IRI
	Action   rdf.IRI
	Resource rdf.Term
	Property rdf.IRI
}

func (e *ErrDenied) Error() string {
	if e.Property != "" {
		return fmt.Sprintf("gsacs: %s denied %s on %s (property %s)",
			e.Subject.LocalName(), e.Action.LocalName(), e.Resource, e.Property.LocalName())
	}
	return fmt.Sprintf("gsacs: %s denied %s on %s",
		e.Subject.LocalName(), e.Action.LocalName(), e.Resource)
}

// authorizeTriple checks that subject may perform action on the triple's
// resource and property.
func (e *Engine) authorizeTriple(subject, action rdf.IRI, t rdf.Triple) error {
	acc := e.Decide(subject, action, t.Subject)
	if !acc.Allowed {
		return &ErrDenied{Subject: subject, Action: action, Resource: t.Subject}
	}
	pred, ok := t.Predicate.(rdf.IRI)
	if !ok {
		return fmt.Errorf("gsacs: predicate %s is not an IRI", t.Predicate)
	}
	// rdf:type writes count as structural modifications: they require full
	// access, never just a property grant.
	if pred == rdf.RDFType {
		if !acc.Full {
			return &ErrDenied{Subject: subject, Action: action, Resource: t.Subject, Property: pred}
		}
		return nil
	}
	if !acc.PropertyVisible(pred, e.reasoner) {
		return &ErrDenied{Subject: subject, Action: action, Resource: t.Subject, Property: pred}
	}
	return nil
}

// Insert adds a triple on behalf of subject after a Modify decision. The
// mutation is acknowledged only once the store's commit hook (the WAL, when
// the repository is durable) has accepted it.
func (e *Engine) Insert(subject rdf.IRI, t rdf.Triple) error {
	if !t.Valid() {
		return fmt.Errorf("gsacs: invalid triple %v", t)
	}
	if err := e.authorizeTriple(subject, seconto.ActionModify, t); err != nil {
		return err
	}
	if _, err := e.data.Apply(store.Op{Kind: store.OpAdd, Triples: []rdf.Triple{t}}); err != nil {
		return fmt.Errorf("gsacs: insert not persisted: %w", err)
	}
	return nil
}

// Delete removes a triple on behalf of subject after a Delete decision.
func (e *Engine) Delete(subject rdf.IRI, t rdf.Triple) error {
	if err := e.authorizeTriple(subject, seconto.ActionDelete, t); err != nil {
		return err
	}
	if _, err := e.data.Apply(store.Op{Kind: store.OpRemove, Triples: []rdf.Triple{t}}); err != nil {
		return fmt.Errorf("gsacs: delete not persisted: %w", err)
	}
	return nil
}

// Update replaces the object of (resource, property, old) with new on behalf
// of subject; it requires Modify on the property. The swap is a single
// store.Replace op: concurrent readers never see the triple missing, the
// query cache is invalidated exactly once, and the WAL records one replace
// record instead of a remove/add pair.
func (e *Engine) Update(subject rdf.IRI, resource rdf.Term, property rdf.IRI, oldObj, newObj rdf.Term) error {
	t := rdf.T(resource, property, oldObj)
	if err := e.authorizeTriple(subject, seconto.ActionModify, t); err != nil {
		return err
	}
	nt := rdf.T(resource, property, newObj)
	if !nt.Valid() {
		return fmt.Errorf("gsacs: invalid replacement triple %v", nt)
	}
	changed, err := e.data.Replace(t, nt)
	if err != nil {
		return fmt.Errorf("gsacs: update not persisted: %w", err)
	}
	if !changed {
		return fmt.Errorf("gsacs: %w: %s", ErrNotFound, t)
	}
	return nil
}
