package gsacs

import (
	"sync"

	"repro/internal/rdf"
)

// Audit trail: security middleware must account for its decisions. The
// engine records every Decide outcome into a bounded ring buffer that
// operators can drain; the paper's "emergency response" style of
// administrative oversight needs exactly this record of who saw what.

// AuditEntry records one authorization decision.
type AuditEntry struct {
	// Seq is a monotonically increasing sequence number.
	Seq uint64
	// Subject, Action, Resource identify the request.
	Subject  rdf.IRI
	Action   rdf.IRI
	Resource string
	// Allowed and Full summarize the outcome.
	Allowed bool
	Full    bool
	// Policies lists the policy IRIs that fired.
	Policies []rdf.IRI
}

// auditLog is a fixed-capacity ring buffer.
type auditLog struct {
	mu      sync.Mutex
	seq     uint64
	entries []AuditEntry
	next    int
	full    bool
}

func newAuditLog(capacity int) *auditLog {
	if capacity < 1 {
		capacity = 1
	}
	return &auditLog{entries: make([]AuditEntry, capacity)}
}

func (l *auditLog) record(e AuditEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	e.Seq = l.seq
	l.entries[l.next] = e
	l.next = (l.next + 1) % len(l.entries)
	if l.next == 0 {
		l.full = true
	}
}

// snapshot returns entries oldest-first.
func (l *auditLog) snapshot() []AuditEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []AuditEntry
	if l.full {
		out = append(out, l.entries[l.next:]...)
	}
	out = append(out, l.entries[:l.next]...)
	cp := make([]AuditEntry, len(out))
	copy(cp, out)
	return cp
}

// EnableAudit turns on decision auditing with the given ring capacity.
// Calling it again resizes (and clears) the log.
func (e *Engine) EnableAudit(capacity int) {
	e.audit = newAuditLog(capacity)
}

// AuditTrail returns the recorded decisions, oldest first. Nil when auditing
// is disabled.
func (e *Engine) AuditTrail() []AuditEntry {
	if e.audit == nil {
		return nil
	}
	return e.audit.snapshot()
}

// recordAudit is called by Decide when auditing is enabled.
func (e *Engine) recordAudit(subject, action rdf.IRI, resource rdf.Term, acc Access) {
	if e.audit == nil {
		return
	}
	e.audit.record(AuditEntry{
		Subject:  subject,
		Action:   action,
		Resource: resource.String(),
		Allowed:  acc.Allowed,
		Full:     acc.Full,
		Policies: append([]rdf.IRI(nil), acc.Matched...),
	})
}
