package gsacs

import (
	"encoding/json"
	"sync"

	"repro/internal/obs"
	"repro/internal/rdf"
)

// Audit trail: security middleware must account for its decisions. The
// engine records every Decide outcome into a bounded ring buffer that
// operators can drain; the paper's "emergency response" style of
// administrative oversight needs exactly this record of who saw what.
//
// Because the ring is bounded, a busy server can overwrite entries before
// anyone drains them. The log counts those overwrites so operators can tell
// a complete trail from a truncated one (and size the ring accordingly).

// AuditEntry records one authorization decision.
type AuditEntry struct {
	// Seq is a monotonically increasing sequence number.
	Seq uint64
	// Subject, Action, Resource identify the request.
	Subject  rdf.IRI
	Action   rdf.IRI
	Resource string
	// Allowed and Full summarize the outcome.
	Allowed bool
	Full    bool
	// Policies lists the policy IRIs that fired.
	Policies []rdf.IRI
}

// AuditStats summarizes the ring buffer's occupancy and loss.
type AuditStats struct {
	// Depth is the number of entries currently held.
	Depth int `json:"depth"`
	// Capacity is the ring size.
	Capacity int `json:"capacity"`
	// Recorded is the total number of decisions ever recorded.
	Recorded uint64 `json:"recorded"`
	// Overwritten counts entries lost to ring wraparound.
	Overwritten uint64 `json:"overwritten"`
}

// auditLog is a fixed-capacity ring buffer.
type auditLog struct {
	mu          sync.Mutex
	seq         uint64
	entries     []AuditEntry
	next        int
	full        bool
	overwritten uint64

	mOverwritten *obs.Counter
}

func newAuditLog(capacity int) *auditLog {
	if capacity < 1 {
		capacity = 1
	}
	return &auditLog{entries: make([]AuditEntry, capacity)}
}

func (l *auditLog) record(e AuditEntry) AuditEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	e.Seq = l.seq
	if l.full {
		// The slot being claimed still holds the oldest unread entry.
		l.overwritten++
		l.mOverwritten.Inc()
	}
	l.entries[l.next] = e
	l.next = (l.next + 1) % len(l.entries)
	if l.next == 0 {
		l.full = true
	}
	return e
}

// snapshot returns entries oldest-first.
func (l *auditLog) snapshot() []AuditEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []AuditEntry
	if l.full {
		out = append(out, l.entries[l.next:]...)
	}
	out = append(out, l.entries[:l.next]...)
	cp := make([]AuditEntry, len(out))
	copy(cp, out)
	return cp
}

// stats reports occupancy without copying entries.
func (l *auditLog) stats() AuditStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	depth := l.next
	if l.full {
		depth = len(l.entries)
	}
	return AuditStats{
		Depth:       depth,
		Capacity:    len(l.entries),
		Recorded:    l.seq,
		Overwritten: l.overwritten,
	}
}

// EnableAudit turns on decision auditing with the given ring capacity.
// Calling it again resizes (and clears) the log.
func (e *Engine) EnableAudit(capacity int) {
	e.audit = newAuditLog(capacity)
	if e.metrics != nil {
		log := e.audit
		log.mOverwritten = e.metrics.Counter("grdf_audit_overwritten_total",
			"Audit entries lost to ring-buffer wraparound.")
		e.metrics.GaugeFunc("grdf_audit_entries", "Audit entries currently buffered.",
			func() float64 { return float64(log.stats().Depth) })
	}
}

// AuditTrail returns the recorded decisions, oldest first. Nil when auditing
// is disabled.
func (e *Engine) AuditTrail() []AuditEntry {
	if e.audit == nil {
		return nil
	}
	return e.audit.snapshot()
}

// AuditStats reports ring occupancy and overwrite loss; the zero value when
// auditing is disabled.
func (e *Engine) AuditStats() AuditStats {
	if e.audit == nil {
		return AuditStats{}
	}
	return e.audit.stats()
}

// SetAuditPersist journals every audit entry through fn as a JSON blob —
// the durable repository's AppendAudit slots in here, making the audit
// trail survive restarts alongside the data it accounts for. Install it
// before the engine serves traffic. Persist failures are counted
// (grdf_audit_persist_errors_total) but do not fail the decision: the
// authorization outcome must not depend on audit I/O.
func (e *Engine) SetAuditPersist(fn func([]byte) error) {
	e.auditPersist = fn
	e.mAuditPersistErr = e.metrics.Counter("grdf_audit_persist_errors_total",
		"Audit entries that could not be journaled durably.")
}

// RestoreAudit refills the audit ring from persisted JSON payloads, oldest
// first, typically with the repository's AuditReplay after recovery.
// Undecodable payloads are skipped (the trail is best-effort diagnostics;
// the WAL's checksums already guarantee the bytes are as written). Entries
// are NOT re-journaled. Call EnableAudit first.
func (e *Engine) RestoreAudit(payloads [][]byte) int {
	if e.audit == nil {
		return 0
	}
	n := 0
	for _, p := range payloads {
		var entry AuditEntry
		if err := json.Unmarshal(p, &entry); err != nil {
			continue
		}
		e.audit.record(entry)
		n++
	}
	return n
}

// recordAudit is called by Decide when auditing is enabled.
func (e *Engine) recordAudit(subject, action rdf.IRI, resource rdf.Term, acc Access) {
	if e.audit == nil {
		return
	}
	stored := e.audit.record(AuditEntry{
		Subject:  subject,
		Action:   action,
		Resource: resource.String(),
		Allowed:  acc.Allowed,
		Full:     acc.Full,
		Policies: append([]rdf.IRI(nil), acc.Matched...),
	})
	if e.auditPersist == nil {
		return
	}
	blob, err := json.Marshal(stored)
	if err == nil {
		err = e.auditPersist(blob)
	}
	if err != nil {
		e.mAuditPersistErr.Inc()
	}
}
