package gsacs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"repro/internal/federation"
	"repro/internal/obs"
)

// traceNode mirrors the nested tree shape of /v1/traces/{id}.
type traceNode struct {
	SpanID   string            `json:"span_id"`
	ParentID string            `json:"parent_id"`
	Name     string            `json:"name"`
	Duration int64             `json:"duration_us"`
	Attrs    map[string]string `json:"attrs"`
	Counters map[string]int64  `json:"counters"`
	Failed   bool              `json:"failed"`
	Children []traceNode       `json:"children"`
}

// traceBody is the /v1/traces/{id} envelope.
type traceBody struct {
	TraceID    string      `json:"trace_id"`
	Root       string      `json:"root"`
	DurationUS int64       `json:"duration_us"`
	Tree       []traceNode `json:"tree"`
}

// findSpans walks the tree collecting every node with the given name.
func findSpans(nodes []traceNode, name string) []traceNode {
	var out []traceNode
	for _, n := range nodes {
		if n.Name == name {
			out = append(out, n)
		}
		out = append(out, findSpans(n.Children, name)...)
	}
	return out
}

// fetchTrace polls /v1/traces/{id} until the trace is published (the root
// span ends in a middleware defer, which can race the client's next request).
func fetchTrace(t *testing.T, srv *httptest.Server, id string) traceBody {
	t.Helper()
	var tb traceBody
	for attempt := 0; attempt < 50; attempt++ {
		resp, body := doReq(t, srv, http.MethodGet, "/v1/traces/"+id)
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal([]byte(body), &tb); err != nil {
				t.Fatalf("bad trace JSON: %v (%s)", err, body)
			}
			return tb
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("trace %s never appeared", id)
	return tb
}

// TestServerFederatedTraceTree is the acceptance path: a federated query over
// a healthy peer, the local engine, and a SIGKILL'd peer (closed listener)
// must yield one trace whose tree parents a fed.source span per member under
// fed.fanout under the HTTP root — with the dead peer present as a FAILED
// span, not a hole.
func TestServerFederatedTraceTree(t *testing.T) {
	peerEngine, _ := scenarioEngine(t, 0)
	peer := httptest.NewServer(NewServer(peerEngine, nil))
	defer peer.Close()

	// A listener bound then closed: connecting gets connection-refused, the
	// HTTP-level equivalent of a peer killed hard.
	deadLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + deadLn.Addr().String()
	deadLn.Close()

	e, _ := scenarioEngine(t, 0)
	fed, err := federation.New(federation.Config{
		SourceTimeout:  time.Second,
		Retry:          federation.RetryConfig{MaxAttempts: 2, BaseDelay: time.Millisecond},
		DisableBreaker: true,
	},
		federation.NewLocalSource("local", e),
		federation.NewRemoteSource("peer", peer.URL, nil),
		federation.NewRemoteSource("dead", deadURL, nil))
	if err != nil {
		t.Fatal(err)
	}
	tracer := obs.NewTracer(64)
	srv := httptest.NewServer(NewServer(e, nil, WithFederator(fed), WithTracer(tracer)))
	defer srv.Close()

	resp, body := doReq(t, srv, http.MethodGet,
		"/v1/query?role=EmergencyResponse&q="+url.QueryEscape(fedTestQuery))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d body %s", resp.StatusCode, body)
	}
	traceID := resp.Header.Get("X-Trace-Id")
	if traceID == "" {
		t.Fatal("no X-Trace-Id on the response")
	}

	tb := fetchTrace(t, srv, traceID)
	if tb.Root != "http /v1/query" || len(tb.Tree) != 1 {
		t.Fatalf("trace = root %q, %d top-level spans; want one http /v1/query root",
			tb.Root, len(tb.Tree))
	}
	root := tb.Tree[0]
	fanouts := findSpans([]traceNode{root}, "fed.fanout")
	if len(fanouts) != 1 {
		t.Fatalf("fed.fanout spans = %d, want 1", len(fanouts))
	}
	if fanouts[0].ParentID != root.SpanID {
		t.Error("fed.fanout not parented under the HTTP root")
	}
	sources := findSpans(fanouts, "fed.source")
	if len(sources) != 3 {
		t.Fatalf("fed.source spans = %d, want 3 (local, peer, dead)", len(sources))
	}
	byName := map[string]traceNode{}
	for _, s := range sources {
		if s.ParentID != fanouts[0].SpanID {
			t.Errorf("fed.source %q parented under %q, want the fanout span",
				s.Attrs["source"], s.ParentID)
		}
		byName[s.Attrs["source"]] = s
	}
	dead, ok := byName["dead"]
	if !ok {
		t.Fatal("dead peer has no fed.source span — failure left a hole in the tree")
	}
	if !dead.Failed {
		t.Errorf("dead peer span = %+v, want failed", dead)
	}
	if dead.Attrs["state"] != federation.StateError {
		t.Errorf("dead peer state attr = %q, want error", dead.Attrs["state"])
	}
	if dead.Counters["retries"] == 0 {
		t.Error("dead peer recorded no retries despite MaxAttempts 2")
	}
	for _, name := range []string{"local", "peer"} {
		s, ok := byName[name]
		if !ok || s.Failed {
			t.Errorf("source %s span = %+v, want present and healthy", name, s)
		}
	}
	// The local member evaluates in-process, so its query/eval spans hang
	// below its fed.source span in the same tree.
	for _, name := range []string{"gsacs.query", "sparql.eval"} {
		if n := findSpans([]traceNode{root}, name); len(n) == 0 {
			t.Errorf("no %s spans under the federated trace", name)
		}
	}

	// The listing surfaces the same trace.
	resp, body = doReq(t, srv, http.MethodGet, "/v1/traces?limit=100")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/traces status %d", resp.StatusCode)
	}
	var listing struct {
		Traces   []obs.TraceSummary `json:"traces"`
		Capacity int                `json:"capacity"`
	}
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatal(err)
	}
	if listing.Capacity != 64 {
		t.Errorf("capacity = %d, want 64", listing.Capacity)
	}
	found := false
	for _, s := range listing.Traces {
		if s.TraceID == traceID {
			found = true
			if s.Spans < 5 {
				t.Errorf("listing reports %d spans for the federated trace", s.Spans)
			}
		}
	}
	if !found {
		t.Error("federated trace missing from /v1/traces listing")
	}
}

// TestServerTraceNotFound: unknown IDs get the uniform 404 envelope.
func TestServerTraceNotFound(t *testing.T) {
	e, _ := scenarioEngine(t, 0)
	srv := httptest.NewServer(NewServer(e, nil, WithTracer(obs.NewTracer(4))))
	defer srv.Close()
	resp, body := doReq(t, srv, http.MethodGet, "/v1/traces/ffffffffffffffff")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d body %s, want 404", resp.StatusCode, body)
	}
	var env struct {
		Code string `json:"code"`
	}
	if err := json.Unmarshal([]byte(body), &env); err != nil || env.Code != "not_found" {
		t.Errorf("envelope = %s (err %v), want code not_found", body, err)
	}
}

// analyzeBody is the ?explain=analyze response shape.
type analyzeBody struct {
	Stages []struct {
		Stage        int     `json:"stage"`
		PatternIndex int     `json:"pattern_index"`
		Pattern      string  `json:"pattern"`
		Estimate     float64 `json:"estimate"`
		RowsIn       int64   `json:"rows_in"`
		RowsScanned  int64   `json:"rows_scanned"`
		RowsOut      int64   `json:"rows_out"`
		DurationUS   int64   `json:"duration_us"`
	} `json:"stages"`
	TotalUS   int64  `json:"total_us"`
	Kind      string `json:"kind"`
	Solutions int    `json:"solutions"`
	TraceID   string `json:"trace_id"`
}

// TestServerExplainAnalyze runs ?explain=analyze with and without a tracer:
// both must report per-stage actual timings and est-vs-actual cardinalities,
// because the handler falls back to a detached trace when the server has no
// tracer at all.
func TestServerExplainAnalyze(t *testing.T) {
	for _, withTracer := range []bool{false, true} {
		name := "detached"
		var opts []ServerOption
		if withTracer {
			name = "traced"
			opts = append(opts, WithTracer(obs.NewTracer(16)))
		}
		t.Run(name, func(t *testing.T) {
			e, _ := scenarioEngine(t, 0)
			srv := httptest.NewServer(NewServer(e, nil, opts...))
			defer srv.Close()

			resp, body := doReq(t, srv, http.MethodGet,
				"/v1/query?role=EmergencyResponse&explain=analyze&q="+url.QueryEscape(fedTestQuery))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d body %s", resp.StatusCode, body)
			}
			var ab analyzeBody
			if err := json.Unmarshal([]byte(body), &ab); err != nil {
				t.Fatalf("bad JSON: %v (%s)", err, body)
			}
			if len(ab.Stages) != 2 {
				t.Fatalf("stages = %d, want 2 (the query has two patterns): %s", len(ab.Stages), body)
			}
			if ab.Kind != "SELECT" || ab.Solutions == 0 || ab.TotalUS <= 0 {
				t.Errorf("summary = kind %q solutions %d total %d", ab.Kind, ab.Solutions, ab.TotalUS)
			}
			for i, st := range ab.Stages {
				if st.Stage != i {
					t.Errorf("stage %d reports execution position %d", i, st.Stage)
				}
				if st.Pattern == "" || st.DurationUS <= 0 {
					t.Errorf("stage %d = %+v, want pattern text and a positive duration", i, st)
				}
				if st.Estimate < 0 {
					t.Errorf("stage %d has no planner estimate (%v) with planning on", i, st.Estimate)
				}
				if st.RowsScanned == 0 {
					t.Errorf("stage %d scanned no rows", i)
				}
			}
			if got := ab.Stages[0].RowsIn; got != 1 {
				t.Errorf("first stage rows_in = %d, want the single empty binding", got)
			}
			if got := int(ab.Stages[len(ab.Stages)-1].RowsOut); got != ab.Solutions {
				t.Errorf("last stage rows_out %d != solutions %d", got, ab.Solutions)
			}
		})
	}
}

// TestServerHealthzWAL: the durability block rides on /healthz when a status
// source is wired, and is absent while the source answers nil (recovery
// window) or is not configured.
func TestServerHealthzWAL(t *testing.T) {
	e, _ := scenarioEngine(t, 0)
	var status any = map[string]any{"segments": 2, "last_snapshot_generation": 7}
	srv := httptest.NewServer(NewServer(e, nil, WithWALStatus(func() any { return status })))
	defer srv.Close()

	var body struct {
		Status string `json:"status"`
		WAL    *struct {
			Segments float64 `json:"segments"`
			Gen      float64 `json:"last_snapshot_generation"`
		} `json:"wal"`
	}
	_, raw := doReq(t, srv, http.MethodGet, "/healthz")
	if err := json.Unmarshal([]byte(raw), &body); err != nil {
		t.Fatal(err)
	}
	if body.WAL == nil || body.WAL.Segments != 2 || body.WAL.Gen != 7 {
		t.Fatalf("healthz wal block = %s", raw)
	}

	status = nil // the pre-recovery window
	body.WAL = nil
	_, raw = doReq(t, srv, http.MethodGet, "/healthz")
	if err := json.Unmarshal([]byte(raw), &body); err != nil {
		t.Fatal(err)
	}
	if body.WAL != nil {
		t.Fatalf("wal block present while the status source answers nil: %s", raw)
	}

	plain := httptest.NewServer(NewServer(e, nil))
	defer plain.Close()
	_, raw = doReq(t, plain, http.MethodGet, "/healthz")
	body.WAL = nil
	if err := json.Unmarshal([]byte(raw), &body); err != nil {
		t.Fatal(err)
	}
	if body.WAL != nil {
		t.Fatalf("wal block present without WithWALStatus: %s", raw)
	}
}
