package gsacs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/grdf"
	"repro/internal/seconto"
)

func v1TestServer(t *testing.T, opts ...ServerOption) (*httptest.Server, *Engine, *datagen.Scenario) {
	t.Helper()
	e, sc := scenarioEngine(t, 4)
	repo := NewOntoRepository()
	repo.Register("grdf", grdf.Ontology())
	srv := httptest.NewServer(NewServer(e, repo, opts...))
	t.Cleanup(srv.Close)
	return srv, e, sc
}

func doReq(t *testing.T, srv *httptest.Server, method, path string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(method, srv.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 64*1024)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp, sb.String()
}

// TestServerV1Aliases verifies the /v1/ canonical routes answer identically
// to their legacy unversioned aliases: same handler, same body.
func TestServerV1Aliases(t *testing.T) {
	srv, _, _ := v1TestServer(t)
	paths := []string{
		"/roles",
		"/ontologies",
		"/view?role=MainRep",
		"/audit",
	}
	for _, p := range paths {
		legacyResp, legacyBody := doReq(t, srv, http.MethodGet, p)
		v1Resp, v1Body := doReq(t, srv, http.MethodGet, "/v1"+p)
		if legacyResp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d", p, legacyResp.StatusCode)
		}
		if v1Resp.StatusCode != legacyResp.StatusCode || v1Body != legacyBody {
			t.Errorf("GET /v1%s diverges from legacy alias: %d vs %d", p,
				v1Resp.StatusCode, legacyResp.StatusCode)
		}
	}

	// Query solution order is not deterministic across evaluations, so the
	// alias check compares row multisets rather than raw bodies.
	qp := "/query?role=Hazmat&q=" + url.QueryEscape(`SELECT ?n WHERE { ?s app:hasChemName ?n }`)
	rows := func(body string) []string {
		var parsed struct {
			Results []map[string]string `json:"results"`
		}
		if err := json.Unmarshal([]byte(body), &parsed); err != nil {
			t.Fatalf("query body: %v", err)
		}
		out := make([]string, len(parsed.Results))
		for i, r := range parsed.Results {
			out[i] = r["n"]
		}
		sort.Strings(out)
		return out
	}
	legacyResp, legacyBody := doReq(t, srv, http.MethodGet, qp)
	v1Resp, v1Body := doReq(t, srv, http.MethodGet, "/v1"+qp)
	if legacyResp.StatusCode != http.StatusOK || v1Resp.StatusCode != http.StatusOK {
		t.Fatalf("query alias status = %d vs %d", legacyResp.StatusCode, v1Resp.StatusCode)
	}
	lr, vr := rows(legacyBody), rows(v1Body)
	if len(lr) == 0 || len(lr) != len(vr) {
		t.Fatalf("query alias rows = %d vs %d", len(lr), len(vr))
	}
	for i := range lr {
		if lr[i] != vr[i] {
			t.Fatalf("query alias row %d: %q vs %q", i, lr[i], vr[i])
		}
	}
}

// TestServerErrorEnvelope checks the uniform error body: every error carries
// {"error", "code", "trace_id"} and the trace ID matches the X-Trace-Id
// response header so clients can report correlatable failures.
func TestServerErrorEnvelope(t *testing.T) {
	srv, _, _ := v1TestServer(t)
	resp, body := doReq(t, srv, http.MethodGet, "/v1/view")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("view without role = %d", resp.StatusCode)
	}
	var env struct {
		Error   string `json:"error"`
		Code    string `json:"code"`
		TraceID string `json:"trace_id"`
	}
	if err := json.Unmarshal([]byte(body), &env); err != nil {
		t.Fatalf("error body is not the JSON envelope: %v\n%s", err, body)
	}
	if env.Error == "" || env.Code != "bad_request" || env.TraceID == "" {
		t.Fatalf("envelope = %+v", env)
	}
	if hdr := resp.Header.Get("X-Trace-Id"); hdr != "" && hdr != env.TraceID {
		t.Errorf("trace_id %q does not match X-Trace-Id header %q", env.TraceID, hdr)
	}

	// Unknown roles on /resource surface as forbidden, same envelope.
	resp, body = doReq(t, srv, http.MethodGet, "/v1/resource?role=Nobody&iri=http%3A%2F%2Fx%2Fy")
	if resp.StatusCode != http.StatusForbidden || !strings.Contains(body, `"forbidden"`) {
		t.Errorf("resource for unknown role = %d %s", resp.StatusCode, body)
	}
}

// TestServerMethodNotAllowed checks that read endpoints reject mutation verbs
// with 405, an Allow header, and the error envelope.
func TestServerMethodNotAllowed(t *testing.T) {
	srv, _, _ := v1TestServer(t)
	for _, p := range []string{"/v1/roles", "/roles", "/v1/query", "/v1/audit", "/healthz"} {
		resp, body := doReq(t, srv, http.MethodDelete, p)
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("DELETE %s = %d", p, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != "GET, HEAD, POST" {
			t.Errorf("DELETE %s Allow = %q", p, allow)
		}
		if !strings.Contains(body, `"method_not_allowed"`) {
			t.Errorf("DELETE %s body = %s", p, body)
		}
	}
	resp, body := doReq(t, srv, http.MethodPut, "/v1/insert")
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != "POST" ||
		!strings.Contains(body, `"method_not_allowed"`) {
		t.Errorf("PUT /v1/insert = %d Allow=%q %s", resp.StatusCode, resp.Header.Get("Allow"), body)
	}
}

// TestServerAuditPagination drives limit/offset over a known trail.
func TestServerAuditPagination(t *testing.T) {
	srv, e, sc := v1TestServer(t)
	e.EnableAudit(64)
	site := sc.Chemical.Sites[0].IRI
	for i := 0; i < 5; i++ {
		e.Decide(datagen.RoleHazmat, seconto.ActionView, site)
	}

	type auditResp struct {
		Entries []map[string]any `json:"entries"`
		Total   int              `json:"total"`
		Offset  int              `json:"offset"`
	}
	fetch := func(q string) auditResp {
		t.Helper()
		resp, body := doReq(t, srv, http.MethodGet, "/v1/audit"+q)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("audit%s = %d %s", q, resp.StatusCode, body)
		}
		var out auditResp
		if err := json.Unmarshal([]byte(body), &out); err != nil {
			t.Fatalf("audit%s body: %v", q, err)
		}
		return out
	}

	all := fetch("")
	if all.Total != 5 || len(all.Entries) != 5 || all.Offset != 0 {
		t.Fatalf("unpaginated audit = total %d, %d entries, offset %d",
			all.Total, len(all.Entries), all.Offset)
	}
	page := fetch("?limit=2&offset=1")
	if page.Total != 5 || len(page.Entries) != 2 || page.Offset != 1 {
		t.Fatalf("page = total %d, %d entries, offset %d", page.Total, len(page.Entries), page.Offset)
	}
	if page.Entries[0]["seq"] != all.Entries[1]["seq"] {
		t.Errorf("offset=1 page starts at seq %v, want %v", page.Entries[0]["seq"], all.Entries[1]["seq"])
	}
	if tail := fetch("?offset=99"); tail.Total != 5 || len(tail.Entries) != 0 {
		t.Errorf("past-the-end page = total %d, %d entries", tail.Total, len(tail.Entries))
	}
	if resp, body := doReq(t, srv, http.MethodGet, "/v1/audit?limit=-3"); resp.StatusCode != http.StatusBadRequest ||
		!strings.Contains(body, `"bad_request"`) {
		t.Errorf("negative limit = %d %s", resp.StatusCode, body)
	}
}

// TestServerQueryTimeout checks the -query-timeout wiring: an immediately
// expiring deadline turns into 504 with code "timeout".
func TestServerQueryTimeout(t *testing.T) {
	srv, _, _ := v1TestServer(t, WithQueryTimeout(time.Nanosecond))
	q := url.QueryEscape(`SELECT ?n WHERE { ?s app:hasChemName ?n }`)
	resp, body := doReq(t, srv, http.MethodGet, "/v1/query?role=Hazmat&q="+q)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("query under 1ns deadline = %d %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, `"timeout"`) || !strings.Contains(body, "deadline") {
		t.Errorf("timeout body = %s", body)
	}
}

// TestServerQueryExplain checks explain=1 returns the planner rendering
// without evaluating the query.
func TestServerQueryExplain(t *testing.T) {
	srv, _, _ := v1TestServer(t)
	q := url.QueryEscape(`SELECT ?s ?n WHERE { ?s a app:ChemSite . ?s app:hasSiteName ?n }`)
	resp, body := doReq(t, srv, http.MethodGet, "/v1/query?role=MainRep&explain=1&q="+q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain = %d %s", resp.StatusCode, body)
	}
	var out struct {
		Plan string `json:"plan"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.Plan, "BGP plan") {
		t.Errorf("plan = %q", out.Plan)
	}
	if resp, _ := doReq(t, srv, http.MethodGet, "/v1/query?role=MainRep&explain=1&q=NOT+SPARQL"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("explain of bad query = %d", resp.StatusCode)
	}
}
