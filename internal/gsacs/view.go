package gsacs

import (
	"context"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/workload"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/store"

	"repro/internal/grdf"
)

// FilterResource returns the triples of resource visible to the access
// decision. rdf:type triples ride along whenever the resource is visible at
// all (a consumer must know what kind of thing it is looking at); other
// predicates pass the property filter. Objects of visible properties that
// are structural nodes (geometry/envelope blank nodes, condition values…)
// are included transitively so the result is self-contained.
func (e *Engine) FilterResource(resource rdf.Term, acc Access) []rdf.Triple {
	if !acc.Allowed {
		return nil
	}
	var out []rdf.Triple
	seen := map[rdf.Triple]struct{}{}
	add := func(t rdf.Triple) {
		if _, dup := seen[t]; !dup {
			seen[t] = struct{}{}
			out = append(out, t)
		}
	}
	var include func(node rdf.Term)
	include = func(node rdf.Term) {
		for _, t := range e.data.DescribeResource(node) {
			add(t)
			if e.isStructuralNode(t.Object) {
				include(t.Object)
			}
		}
	}
	for _, t := range e.data.DescribeResource(resource) {
		pred := t.Predicate.(rdf.IRI)
		if pred == rdf.RDFType {
			add(t)
			continue
		}
		if !acc.PropertyVisible(pred, e.Reasoner()) {
			continue
		}
		add(t)
		// Pull in structural object nodes (envelopes, geometry trees) so the
		// filtered view decodes on its own.
		if e.isStructuralNode(t.Object) {
			include(t.Object)
		}
	}
	return out
}

// isStructuralNode reports whether node is a subsidiary description node —
// a blank node, or an IRI whose types all live in the GRDF namespaces
// (geometry, envelopes, time positions). Such nodes travel with the property
// that references them; application-typed resources (chemical inventories,
// linked features) are governed by their own policies instead.
func (e *Engine) isStructuralNode(node rdf.Term) bool {
	switch node.Kind() {
	case rdf.KindBlank:
		return true
	case rdf.KindLiteral:
		return false
	}
	types := e.data.Objects(node, rdf.RDFType)
	if len(types) == 0 {
		return false
	}
	for _, ty := range types {
		iri, ok := ty.(rdf.IRI)
		if !ok {
			return false
		}
		ns := iri.Namespace()
		if ns != grdf.NS && ns != grdf.TemporalNS {
			return false
		}
	}
	return true
}

// View assembles the layered, policy-filtered view for a subject over every
// resource governed by its policies — the paper's middleware step: "before
// presenting the layered view, middleware needs to eliminate data that
// violates security with respect to this role."
func (e *Engine) View(subject, action rdf.IRI) *store.Store {
	return e.ViewCtx(context.Background(), subject, action)
}

// ViewCtx is View with the request context: on a traced context the cache
// probe and (on a miss) the view build run under a gsacs.view span whose
// counters distinguish hit from miss.
func (e *Engine) ViewCtx(ctx context.Context, subject, action rdf.IRI) *store.Store {
	_, sp := obs.StartSpan(ctx, "gsacs.view")
	defer sp.End()
	sp.SetAttr("role", subject.LocalName())
	if e.cache != nil {
		if cached, ok := e.cache.Get(viewKey(subject, action), e.data.Generation()); ok {
			sp.Add("cache_hit", 1)
			return cached
		}
		sp.Add("cache_miss", 1)
	}
	view := e.buildView(subject, action)
	sp.Add("view_triples", int64(view.Len()))
	if e.cache != nil {
		e.cache.Put(viewKey(subject, action), e.data.Generation(), view)
	}
	return view
}

func (e *Engine) buildView(subject, action rdf.IRI) *store.Store {
	view := store.New()
	for _, res := range e.governedResources() {
		acc := e.Decide(subject, action, res)
		if !acc.Allowed {
			continue
		}
		view.AddAll(e.FilterResource(res, acc))
	}
	return view
}

// governedResources enumerates every subject in the data store that has an
// rdf:type (candidate resources), sorted for determinism.
func (e *Engine) governedResources() []rdf.Term {
	seen := map[string]struct{}{}
	var out []rdf.Term
	e.data.ForEachMatch(nil, rdf.RDFType, nil, func(t rdf.Triple) bool {
		k := t.Subject.String()
		if _, dup := seen[k]; !dup {
			seen[k] = struct{}{}
			out = append(out, t.Subject)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// Query runs a SPARQL query against the subject's filtered view — the
// G-SACS front-end operation. Spatial filter functions are available. The
// view (and thus the query result) reflects the role's permissions only.
func (e *Engine) Query(subject, action rdf.IRI, query string) (*sparql.Result, error) {
	return e.QueryCtx(context.Background(), subject, action, query)
}

// QueryCtx is the context-first form of Query: evaluation honors ctx
// cancellation and deadlines between join steps. On a traced context the
// request runs under a gsacs.query span parenting the view (cache) span and
// the SPARQL evaluation spans.
func (e *Engine) QueryCtx(ctx context.Context, subject, action rdf.IRI, query string) (*sparql.Result, error) {
	ctx, sp := obs.StartSpan(ctx, "gsacs.query")
	defer sp.End()
	sp.SetAttr("role", subject.LocalName())
	view := e.ViewCtx(ctx, subject, action)
	eng := sparql.NewEngine(view).Instrument(e.metrics)
	grdf.RegisterSpatialFuncs(eng, view)
	if wl := e.workload; wl != nil {
		// The sink fires exactly once, at evaluation end, so the elapsed
		// time from here covers view assembly plus evaluation — the latency
		// a client of this shape experiences.
		start := time.Now()
		eng.SetStatsSink(func(st sparql.EvalStats) {
			wl.Observe(workload.Observation{
				Fingerprint:    st.Fingerprint,
				Canonical:      st.CanonicalForm,
				Kind:           st.Kind.String(),
				Latency:        time.Since(start),
				RowsScanned:    st.RowsScanned,
				RowsOut:        st.RowsOut,
				Reordered:      st.Reordered,
				MaxMisestimate: st.MaxMisestimate,
				Err:            st.Failed,
				TraceID:        obs.TraceID(ctx),
			})
		})
	}
	res, err := eng.QueryCtx(ctx, query)
	if err != nil {
		sp.Fail(err)
	}
	return res, err
}

// ExplainQuery plans query against the subject's filtered view and returns
// the EXPLAIN rendering of each BGP without evaluating it.
func (e *Engine) ExplainQuery(subject, action rdf.IRI, query string) (string, error) {
	view := e.View(subject, action)
	return sparql.NewEngine(view).Explain(query)
}

func viewKey(subject, action rdf.IRI) string {
	return string(subject) + "\x00" + string(action)
}
