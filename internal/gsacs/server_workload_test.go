package gsacs

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/obs"
	"repro/internal/obs/prof"
	"repro/internal/obs/workload"
)

// queriesBody is the /v1/queries listing shape.
type queriesBody struct {
	Queries      []workload.Snapshot `json:"queries"`
	Fingerprints int                 `json:"fingerprints"`
	Capacity     int                 `json:"capacity"`
}

func fetchQueries(t *testing.T, srv *httptest.Server, path string) queriesBody {
	t.Helper()
	resp, body := doReq(t, srv, http.MethodGet, path)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d body %s", path, resp.StatusCode, body)
	}
	var qb queriesBody
	if err := json.Unmarshal([]byte(body), &qb); err != nil {
		t.Fatalf("decode %s: %v (%s)", path, err, body)
	}
	return qb
}

// TestServerWorkloadEndpoint drives repeated queries of two shapes through a
// WithWorkload server and checks the /v1/queries rollup: both fingerprints
// tracked, counts by shape, sane latency quantiles, redacted examples, and
// the single-fingerprint detail view.
func TestServerWorkloadEndpoint(t *testing.T) {
	e, _ := scenarioEngine(t, 0)
	wl := workload.New(workload.Config{Capacity: 64})
	srv := httptest.NewServer(NewServer(e, nil, WithWorkload(wl)))
	defer srv.Close()

	// Two shapes: same except for the literal constant, so shape B's two
	// variants must collide into one fingerprint.
	shapeA := `SELECT ?s WHERE { ?s a app:ChemSite }`
	shapeB1 := `SELECT ?n WHERE { ?s app:hasChemName ?n . FILTER(?n = "Chlorine") }`
	shapeB2 := `SELECT ?n WHERE { ?s app:hasChemName ?n . FILTER(?n = "Ammonia") }`
	for i := 0; i < 3; i++ {
		for _, q := range []string{shapeA, shapeB1, shapeB2} {
			resp, body := doReq(t, srv, http.MethodGet,
				"/v1/query?role=Hazmat&q="+url.QueryEscape(q))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("query %q = %d body %s", q, resp.StatusCode, body)
			}
		}
	}

	qb := fetchQueries(t, srv, "/v1/queries")
	if qb.Fingerprints != 2 || len(qb.Queries) != 2 {
		t.Fatalf("fingerprints = %d, queries = %d, want 2 shapes", qb.Fingerprints, len(qb.Queries))
	}
	if qb.Capacity != 64 {
		t.Fatalf("capacity = %d, want 64", qb.Capacity)
	}
	// Shape B ran 6 times (two constants, one fingerprint), shape A ran 3.
	top := qb.Queries[0]
	if top.Count != 6 || qb.Queries[1].Count != 3 {
		t.Fatalf("counts = %d,%d, want 6,3", top.Count, qb.Queries[1].Count)
	}
	if top.Kind != "SELECT" {
		t.Fatalf("kind = %q", top.Kind)
	}
	if strings.Contains(top.Example, "Chlorine") || strings.Contains(top.Example, "Ammonia") {
		t.Fatalf("example leaks literal constants: %s", top.Example)
	}
	if top.P50Ms <= 0 || top.P99Ms < top.P50Ms || top.MaxMs < top.P99Ms {
		t.Fatalf("nonsense quantiles: p50=%v p99=%v max=%v", top.P50Ms, top.P99Ms, top.MaxMs)
	}
	if top.RowsOut == 0 {
		t.Fatal("rows_out = 0 after solutions were returned")
	}

	// Detail view round-trips through the listing's hex fingerprint.
	resp, body := doReq(t, srv, http.MethodGet, "/v1/queries?fp="+top.Fingerprint)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("detail = %d body %s", resp.StatusCode, body)
	}
	var detail workload.Snapshot
	if err := json.Unmarshal([]byte(body), &detail); err != nil {
		t.Fatal(err)
	}
	if detail.Fingerprint != top.Fingerprint || detail.Count < top.Count {
		t.Fatalf("detail diverges from listing: %+v vs %+v", detail, top)
	}
	if resp, _ := doReq(t, srv, http.MethodGet, "/v1/queries?fp=ffffffffffffffff"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown fp = %d, want 404", resp.StatusCode)
	}

	// ?limit bounds the listing without losing the totals.
	qb = fetchQueries(t, srv, "/v1/queries?limit=1")
	if len(qb.Queries) != 1 || qb.Fingerprints != 2 {
		t.Fatalf("limit=1: queries=%d fingerprints=%d", len(qb.Queries), qb.Fingerprints)
	}
}

// TestServerWorkloadRecordsShed verifies satellite (b): a request rejected by
// the admission gate never reaches the engine, yet its fingerprint appears in
// /v1/queries with the shed counter — the heavy hitter that caused the
// shedding stays attributable.
func TestServerWorkloadRecordsShed(t *testing.T) {
	e, _ := scenarioEngine(t, 4)
	wl := workload.New(workload.Config{Capacity: 64})
	ctrl := admission.NewController(admission.Config{
		InitialLimit: 1, MinLimit: 1, MaxLimit: 1,
		MaxQueue:    admission.NoQueue,
		AdjustEvery: time.Hour,
	})
	srv := httptest.NewServer(NewServer(e, nil,
		WithWorkload(wl),
		WithAdmission(AdmissionConfig{Controller: ctrl})))
	defer srv.Close()

	release, err := ctrl.Admit(context.Background(), admission.ClassQuery, admission.Normal)
	if err != nil {
		t.Fatalf("priming admit: %v", err)
	}
	q := `SELECT ?s WHERE { ?s a app:ChemSite }`
	resp, _ := doReq(t, srv, http.MethodGet, "/v1/query?role=Hazmat&q="+url.QueryEscape(q))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	release()

	qb := fetchQueries(t, srv, "/v1/queries")
	if len(qb.Queries) != 1 {
		t.Fatalf("queries = %d, want the shed fingerprint", len(qb.Queries))
	}
	shed := qb.Queries[0]
	if shed.Shed != 1 || shed.Count != 0 {
		t.Fatalf("shed=%d count=%d, want 1,0 (never evaluated)", shed.Shed, shed.Count)
	}
	if shed.Example == "" || shed.Kind != "SELECT" {
		t.Fatalf("shed entry missing shape context: %+v", shed)
	}

	// The same shape evaluated after capacity returns merges into the entry.
	if resp, body := doReq(t, srv, http.MethodGet, "/v1/query?role=Hazmat&q="+url.QueryEscape(q)); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release query = %d body %s", resp.StatusCode, body)
	}
	qb = fetchQueries(t, srv, "/v1/queries")
	if got := qb.Queries[0]; got.Shed != 1 || got.Count != 1 {
		t.Fatalf("after evaluation: shed=%d count=%d, want 1,1", got.Shed, got.Count)
	}
}

// TestServerProfilesEndpoint checks /v1/profiles end to end: a triggered
// capture appears in the listing with its reason, and both pprof payloads
// download as gzip (0x1f8b) bytes.
func TestServerProfilesEndpoint(t *testing.T) {
	e, _ := scenarioEngine(t, 0)
	p := prof.New(prof.Config{Ring: 4, CPUWindow: 50 * time.Millisecond})
	srv := httptest.NewServer(NewServer(e, nil, WithProfiler(p)))
	defer srv.Close()

	if !p.Trigger("manual") {
		t.Fatal("trigger suppressed on idle profiler")
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(p.List()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("capture never landed")
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, body := doReq(t, srv, http.MethodGet, "/v1/profiles")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list = %d body %s", resp.StatusCode, body)
	}
	var listing struct {
		Profiles []prof.Meta `json:"profiles"`
		Capacity int         `json:"capacity"`
	}
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatal(err)
	}
	if listing.Capacity != 4 || len(listing.Profiles) != 1 {
		t.Fatalf("capacity=%d profiles=%d", listing.Capacity, len(listing.Profiles))
	}
	meta := listing.Profiles[0]
	if meta.Reason != "manual" || meta.HeapBytes == 0 {
		t.Fatalf("capture meta: %+v", meta)
	}

	for _, kind := range []string{"cpu", "heap"} {
		resp, raw := doReq(t, srv, http.MethodGet,
			"/v1/profiles?id=1&kind="+kind)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s download = %d", kind, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
			t.Fatalf("%s content-type = %q", kind, ct)
		}
		if len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
			t.Fatalf("%s payload is not gzipped pprof (leading bytes %x)", kind, raw[:min(4, len(raw))])
		}
	}
	if resp, _ := doReq(t, srv, http.MethodGet, "/v1/profiles?id=99"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id = %d, want 404", resp.StatusCode)
	}
}

// TestProfilesBypassReadinessGate verifies satellite (a): while the server
// reports unready, the data plane answers 503 but the profiling surface —
// /v1/profiles and /debug/pprof/ — stays reachable. Diagnosing a stuck
// recovery needs exactly those endpoints.
func TestProfilesBypassReadinessGate(t *testing.T) {
	e, _ := scenarioEngine(t, 0)
	p := prof.New(prof.Config{Ring: 2, CPUWindow: 50 * time.Millisecond})
	srv := httptest.NewServer(NewServer(e, nil,
		WithProfiler(p), WithPprof(),
		WithReadiness(func() bool { return false })))
	defer srv.Close()

	if resp, _ := doReq(t, srv, http.MethodGet, "/v1/roles"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("data plane = %d, want 503 while unready", resp.StatusCode)
	}
	if resp, body := doReq(t, srv, http.MethodGet, "/v1/profiles"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/profiles = %d body %s, want 200 while unready", resp.StatusCode, body)
	}
	if resp, _ := doReq(t, srv, http.MethodGet, "/debug/pprof/cmdline"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline = %d, want 200 while unready", resp.StatusCode)
	}
}

// TestServerClusterRollup builds two peer servers (each with its own
// workload table and SLO engine), drives distinct-but-overlapping query
// shapes through them, and checks the router's /v1/cluster: per-peer blocks
// with SLO verdicts, and a fleet top-K whose per-fingerprint counts sum
// across nodes — fingerprints are canonical, so the same shape merges.
func TestServerClusterRollup(t *testing.T) {
	peer := func() (*httptest.Server, *workload.Table) {
		e, _ := scenarioEngine(t, 0)
		wl := workload.New(workload.Config{Capacity: 64})
		slo := obs.NewSLOEngine(obs.SLOConfig{
			LatencyTarget:      5 * time.Second,
			AvailabilityTarget: 0.5,
		})
		srv := httptest.NewServer(NewServer(e, nil,
			WithMetrics(obs.NewRegistry()), WithWorkload(wl), WithSLO(slo)))
		t.Cleanup(srv.Close)
		return srv, wl
	}
	peerA, _ := peer()
	peerB, _ := peer()

	shared := `SELECT ?s WHERE { ?s a app:ChemSite }`
	onlyB := `SELECT ?n WHERE { ?s app:hasChemName ?n }`
	run := func(srv *httptest.Server, q string, n int) {
		for i := 0; i < n; i++ {
			if resp, body := doReq(t, srv, http.MethodGet,
				"/v1/query?role=Hazmat&q="+url.QueryEscape(q)); resp.StatusCode != http.StatusOK {
				t.Fatalf("peer query = %d body %s", resp.StatusCode, body)
			}
		}
	}
	run(peerA, shared, 2)
	run(peerB, shared, 3)
	run(peerB, onlyB, 1)

	e, _ := scenarioEngine(t, 0)
	router := httptest.NewServer(NewServer(e, nil,
		WithCluster(ClusterConfig{
			SelfName: "router",
			Peers: []ClusterPeer{
				{Name: "peer-a", Base: peerA.URL},
				{Name: "peer-b", Base: peerB.URL},
			},
		})))
	defer router.Close()

	resp, body := doReq(t, router, http.MethodGet, "/v1/cluster")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster = %d body %s", resp.StatusCode, body)
	}
	var rollup struct {
		Self  map[string]any      `json:"self"`
		Peers []clusterPeerReport `json:"peers"`
		Fleet struct {
			Status         string              `json:"status"`
			PeersTotal     int                 `json:"peers_total"`
			PeersOK        int                 `json:"peers_ok"`
			AvailabilityOK bool                `json:"availability_ok"`
			TopQueries     []workload.Snapshot `json:"top_queries"`
		} `json:"fleet"`
	}
	if err := json.Unmarshal([]byte(body), &rollup); err != nil {
		t.Fatalf("decode cluster: %v (%s)", err, body)
	}
	if rollup.Self["name"] != "router" {
		t.Fatalf("self block: %+v", rollup.Self)
	}
	if rollup.Fleet.PeersTotal != 2 || rollup.Fleet.PeersOK != 2 || rollup.Fleet.Status != "ok" {
		t.Fatalf("fleet verdict: %+v (peer errors: %+v, %+v)",
			rollup.Fleet, rollup.Peers[0].Errors, rollup.Peers[1].Errors)
	}
	if !rollup.Fleet.AvailabilityOK {
		t.Fatal("availability_ok = false on a healthy fleet")
	}
	for _, p := range rollup.Peers {
		if !p.OK || p.Status != "ok" {
			t.Fatalf("peer %s not ok: %+v", p.Name, p)
		}
		if p.AvailabilityOK == nil || !*p.AvailabilityOK {
			t.Fatalf("peer %s missing SLO verdict: %+v", p.Name, p)
		}
		if len(p.TopQueries) == 0 {
			t.Fatalf("peer %s has no top queries", p.Name)
		}
	}
	// The shared shape ran 2+3 times; the merge must sum the counts under
	// one fingerprint and rank it first.
	if len(rollup.Fleet.TopQueries) != 2 {
		t.Fatalf("fleet top-K = %d shapes, want 2", len(rollup.Fleet.TopQueries))
	}
	if top := rollup.Fleet.TopQueries[0]; top.Count != 5 {
		t.Fatalf("merged count = %d, want 5 (2 from peer-a + 3 from peer-b)", top.Count)
	}
	if second := rollup.Fleet.TopQueries[1]; second.Count != 1 {
		t.Fatalf("second shape count = %d, want 1", second.Count)
	}

	// A dead peer degrades the rollup instead of failing it.
	peerB.Close()
	resp, body = doReq(t, router, http.MethodGet, "/v1/cluster")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster with dead peer = %d", resp.StatusCode)
	}
	if err := json.Unmarshal([]byte(body), &rollup); err != nil {
		t.Fatal(err)
	}
	if rollup.Fleet.PeersOK != 1 || rollup.Fleet.Status != "degraded" {
		t.Fatalf("dead-peer fleet verdict: %+v", rollup.Fleet)
	}
}
