// Package rdf implements the RDF 1.1 data model used by every other layer of
// the GRDF system: IRIs, literals, blank nodes, triples and in-memory graphs,
// together with namespace management and the well-known vocabularies
// (RDF, RDFS, OWL, XSD) plus the GRDF and SecOnto vocabularies the paper
// defines.
//
// All term types are small comparable values so that triples can be used
// directly as map keys; the store package relies on this property for its
// indexes.
package rdf

import (
	"fmt"
	"strings"
)

// TermKind discriminates the three RDF term categories.
type TermKind uint8

const (
	// KindIRI identifies an IRI term.
	KindIRI TermKind = iota
	// KindBlank identifies a blank node.
	KindBlank
	// KindLiteral identifies a literal (plain, typed or language-tagged).
	KindLiteral
)

func (k TermKind) String() string {
	switch k {
	case KindIRI:
		return "iri"
	case KindBlank:
		return "blank"
	case KindLiteral:
		return "literal"
	default:
		return fmt.Sprintf("TermKind(%d)", uint8(k))
	}
}

// Term is an RDF term: an IRI, a blank node, or a literal.
//
// Every implementation in this package is a comparable value type, so Terms
// may be compared with == when both sides were produced by this package, and
// structs containing Terms may serve as map keys.
type Term interface {
	// Kind reports the term category.
	Kind() TermKind
	// String renders the term in N-Triples syntax
	// (e.g. <http://…>, _:b1, "chat"@en, "1"^^<…integer>).
	String() string
	// Equal reports whether the receiver denotes the same RDF term as o.
	Equal(o Term) bool
}

// IRI is an absolute IRI reference. The zero IRI ("") is invalid and is used
// by the matching layers as a wildcard-free sentinel.
type IRI string

// Kind implements Term.
func (IRI) Kind() TermKind { return KindIRI }

// String renders the IRI in N-Triples angle-bracket form.
func (i IRI) String() string { return "<" + string(i) + ">" }

// Equal implements Term.
func (i IRI) Equal(o Term) bool {
	j, ok := o.(IRI)
	return ok && i == j
}

// LocalName returns the fragment after the last '#' or '/', which is how the
// GRDF listings in the paper abbreviate terms (e.g. "#hasEdgeOf" → "hasEdgeOf").
func (i IRI) LocalName() string {
	s := string(i)
	if idx := strings.LastIndexAny(s, "#/"); idx >= 0 && idx+1 < len(s) {
		return s[idx+1:]
	}
	return s
}

// Namespace returns the IRI up to and including the last '#' or '/'.
func (i IRI) Namespace() string {
	s := string(i)
	if idx := strings.LastIndexAny(s, "#/"); idx >= 0 {
		return s[:idx+1]
	}
	return ""
}

// BlankNode is a blank node with a document-scoped label.
type BlankNode string

// Kind implements Term.
func (BlankNode) Kind() TermKind { return KindBlank }

// String renders the node in N-Triples form (_:label).
func (b BlankNode) String() string { return "_:" + string(b) }

// Equal implements Term.
func (b BlankNode) Equal(o Term) bool {
	c, ok := o.(BlankNode)
	return ok && b == c
}

// Literal is an RDF 1.1 literal. Every literal has a datatype; plain string
// literals carry XSDString, language-tagged literals carry RDFLangString and
// a non-empty Lang.
type Literal struct {
	// Value is the lexical form.
	Value string
	// Datatype is the datatype IRI. Never empty for a well-formed literal.
	Datatype IRI
	// Lang is the language tag (lower-cased); non-empty only when Datatype
	// is rdf:langString.
	Lang string
}

// Kind implements Term.
func (Literal) Kind() TermKind { return KindLiteral }

// String renders the literal in N-Triples syntax with escaping.
func (l Literal) String() string {
	var sb strings.Builder
	sb.WriteByte('"')
	sb.WriteString(EscapeLiteral(l.Value))
	sb.WriteByte('"')
	if l.Lang != "" {
		sb.WriteByte('@')
		sb.WriteString(l.Lang)
	} else if l.Datatype != "" && l.Datatype != XSDString {
		sb.WriteString("^^")
		sb.WriteString(l.Datatype.String())
	}
	return sb.String()
}

// Equal implements Term.
func (l Literal) Equal(o Term) bool {
	m, ok := o.(Literal)
	return ok && l == m
}

// HashTerm returns a stable 64-bit FNV-1a hash of a term, mixing the term
// kind with its lexical content. The store's dictionary uses it to pick a
// lock stripe; it is not a cryptographic hash.
func HashTerm(t Term) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
	}
	h ^= uint64(t.Kind())
	h *= prime64
	switch v := t.(type) {
	case IRI:
		mix(string(v))
	case BlankNode:
		mix(string(v))
	case Literal:
		mix(v.Value)
		h ^= 0xff
		h *= prime64
		mix(string(v.Datatype))
		h ^= 0xff
		h *= prime64
		mix(v.Lang)
	default:
		mix(t.String())
	}
	return h
}

// EscapeLiteral escapes a literal's lexical form for N-Triples/Turtle output.
func EscapeLiteral(s string) string {
	var sb strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		case '\r':
			sb.WriteString(`\r`)
		case '\t':
			sb.WriteString(`\t`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// Triple is an RDF statement. Subject must be an IRI or BlankNode, Predicate
// an IRI, Object any term; NewTriple enforces this, while the composite
// literal form is available for trusted construction sites.
type Triple struct {
	Subject   Term
	Predicate Term
	Object    Term
}

// NewTriple validates term positions and returns the triple.
func NewTriple(s, p, o Term) (Triple, error) {
	if s == nil || p == nil || o == nil {
		return Triple{}, fmt.Errorf("rdf: nil term in triple (%v %v %v)", s, p, o)
	}
	if s.Kind() == KindLiteral {
		return Triple{}, fmt.Errorf("rdf: literal %s cannot be a subject", s)
	}
	if p.Kind() != KindIRI {
		return Triple{}, fmt.Errorf("rdf: predicate %s must be an IRI", p)
	}
	return Triple{Subject: s, Predicate: p, Object: o}, nil
}

// T builds a triple without validation; intended for compile-time-known terms.
func T(s, p, o Term) Triple { return Triple{Subject: s, Predicate: p, Object: o} }

// String renders the triple as an N-Triples statement (without trailing newline).
func (t Triple) String() string {
	return t.Subject.String() + " " + t.Predicate.String() + " " + t.Object.String() + " ."
}

// Valid reports whether the triple satisfies RDF positional constraints.
func (t Triple) Valid() bool {
	return t.Subject != nil && t.Predicate != nil && t.Object != nil &&
		t.Subject.Kind() != KindLiteral && t.Predicate.Kind() == KindIRI
}

// Quad is a triple within a named graph; Graph == nil denotes the default graph.
type Quad struct {
	Triple
	Graph Term // IRI or BlankNode, nil for the default graph
}

// String renders the quad in N-Quads syntax.
func (q Quad) String() string {
	if q.Graph == nil {
		return q.Triple.String()
	}
	return q.Subject.String() + " " + q.Predicate.String() + " " + q.Object.String() + " " + q.Graph.String() + " ."
}
