package rdf

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Typed-literal constructors. These produce canonical lexical forms so that
// value-equal literals compare equal with ==.

// NewString returns a plain xsd:string literal.
func NewString(v string) Literal { return Literal{Value: v, Datatype: XSDString} }

// NewLangString returns an rdf:langString literal with the tag lower-cased.
func NewLangString(v, lang string) Literal {
	return Literal{Value: v, Datatype: RDFLangString, Lang: strings.ToLower(lang)}
}

// NewInteger returns an xsd:integer literal.
func NewInteger(v int64) Literal {
	return Literal{Value: strconv.FormatInt(v, 10), Datatype: XSDInteger}
}

// NewDouble returns an xsd:double literal in the shortest round-trippable form.
func NewDouble(v float64) Literal {
	return Literal{Value: strconv.FormatFloat(v, 'g', -1, 64), Datatype: XSDDouble}
}

// NewDecimal returns an xsd:decimal literal.
func NewDecimal(v float64) Literal {
	return Literal{Value: strconv.FormatFloat(v, 'f', -1, 64), Datatype: XSDDecimal}
}

// NewBoolean returns an xsd:boolean literal.
func NewBoolean(v bool) Literal {
	return Literal{Value: strconv.FormatBool(v), Datatype: XSDBoolean}
}

// NewDateTime returns an xsd:dateTime literal in RFC 3339 form.
func NewDateTime(t time.Time) Literal {
	return Literal{Value: t.Format(time.RFC3339), Datatype: XSDDateTime}
}

// NewNonNegativeInteger returns an xsd:nonNegativeInteger literal, the type
// OWL cardinality restrictions use (Lists 3 and 5 in the paper).
func NewNonNegativeInteger(v uint64) Literal {
	return Literal{Value: strconv.FormatUint(v, 10), Datatype: XSDNonNegativeInteger}
}

// IsNumeric reports whether the literal's datatype is one of the XSD numeric
// types understood by the SPARQL filter evaluator.
func (l Literal) IsNumeric() bool {
	switch l.Datatype {
	case XSDInteger, XSDDecimal, XSDDouble, XSDFloat, XSDInt, XSDLong,
		XSDNonNegativeInteger, XSDPositiveInteger, XSDShort, XSDByte,
		XSDUnsignedInt, XSDUnsignedLong:
		return true
	}
	return false
}

// Float returns the numeric value of a numeric literal.
func (l Literal) Float() (float64, error) {
	if !l.IsNumeric() {
		return 0, fmt.Errorf("rdf: literal %s is not numeric", l)
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(l.Value), 64)
	if err != nil {
		return 0, fmt.Errorf("rdf: bad numeric lexical form %q: %w", l.Value, err)
	}
	return f, nil
}

// Int returns the integer value of an integer-family literal.
func (l Literal) Int() (int64, error) {
	switch l.Datatype {
	case XSDInteger, XSDInt, XSDLong, XSDNonNegativeInteger, XSDPositiveInteger,
		XSDShort, XSDByte, XSDUnsignedInt, XSDUnsignedLong:
		n, err := strconv.ParseInt(strings.TrimSpace(l.Value), 10, 64)
		if err != nil {
			return 0, fmt.Errorf("rdf: bad integer lexical form %q: %w", l.Value, err)
		}
		return n, nil
	}
	return 0, fmt.Errorf("rdf: literal %s is not an integer", l)
}

// Bool returns the boolean value of an xsd:boolean literal.
func (l Literal) Bool() (bool, error) {
	if l.Datatype != XSDBoolean {
		return false, fmt.Errorf("rdf: literal %s is not xsd:boolean", l)
	}
	switch strings.TrimSpace(l.Value) {
	case "true", "1":
		return true, nil
	case "false", "0":
		return false, nil
	}
	return false, fmt.Errorf("rdf: bad boolean lexical form %q", l.Value)
}

// Time returns the time value of an xsd:dateTime or xsd:date literal.
func (l Literal) Time() (time.Time, error) {
	v := strings.TrimSpace(l.Value)
	switch l.Datatype {
	case XSDDateTime:
		for _, layout := range []string{time.RFC3339, "2006-01-02T15:04:05"} {
			if t, err := time.Parse(layout, v); err == nil {
				return t, nil
			}
		}
		return time.Time{}, fmt.Errorf("rdf: bad dateTime lexical form %q", l.Value)
	case XSDDate:
		t, err := time.Parse("2006-01-02", v)
		if err != nil {
			return time.Time{}, fmt.Errorf("rdf: bad date lexical form %q: %w", l.Value, err)
		}
		return t, nil
	}
	return time.Time{}, fmt.Errorf("rdf: literal %s is not a date/dateTime", l)
}

// CompareLiterals orders two literals for SPARQL ORDER BY and filter
// comparisons: numerics by value, booleans false<true, date/times
// chronologically, strings lexically. It returns (cmp, ok); ok is false when
// the literals are not comparable (different value spaces).
func CompareLiterals(a, b Literal) (int, bool) {
	if a.IsNumeric() && b.IsNumeric() {
		x, errX := a.Float()
		y, errY := b.Float()
		if errX != nil || errY != nil {
			return 0, false
		}
		switch {
		case x < y:
			return -1, true
		case x > y:
			return 1, true
		}
		return 0, true
	}
	if a.Datatype == XSDBoolean && b.Datatype == XSDBoolean {
		x, errX := a.Bool()
		y, errY := b.Bool()
		if errX != nil || errY != nil {
			return 0, false
		}
		switch {
		case !x && y:
			return -1, true
		case x && !y:
			return 1, true
		}
		return 0, true
	}
	if (a.Datatype == XSDDateTime || a.Datatype == XSDDate) &&
		(b.Datatype == XSDDateTime || b.Datatype == XSDDate) {
		x, errX := a.Time()
		y, errY := b.Time()
		if errX != nil || errY != nil {
			return 0, false
		}
		switch {
		case x.Before(y):
			return -1, true
		case x.After(y):
			return 1, true
		}
		return 0, true
	}
	if (a.Datatype == XSDString || a.Datatype == RDFLangString) &&
		(b.Datatype == XSDString || b.Datatype == RDFLangString) {
		return strings.Compare(a.Value, b.Value), true
	}
	return 0, false
}
