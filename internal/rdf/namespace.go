package rdf

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Prefixes maps prefix labels (without the trailing colon) to namespace IRIs.
// It is used by the Turtle/RDF-XML codecs and the SPARQL parser to expand
// prefixed names, and by the serializers to compact IRIs.
type Prefixes struct {
	mu      sync.RWMutex
	forward map[string]string // prefix -> namespace
	reverse map[string]string // namespace -> prefix
}

// NewPrefixes returns an empty prefix table.
func NewPrefixes() *Prefixes {
	return &Prefixes{
		forward: make(map[string]string),
		reverse: make(map[string]string),
	}
}

// CommonPrefixes returns a table preloaded with the namespaces every GRDF
// document uses (rdf, rdfs, owl, xsd, grdf, temporal, seconto, gml, app).
func CommonPrefixes() *Prefixes {
	p := NewPrefixes()
	p.Bind("rdf", RDFNS)
	p.Bind("rdfs", RDFSNS)
	p.Bind("owl", OWLNS)
	p.Bind("xsd", XSDNS)
	p.Bind("grdf", GRDFNS)
	p.Bind("temporal", GRDFTemporalNS)
	p.Bind("seconto", SecOntoNS)
	p.Bind("gml", GMLNS+"#")
	p.Bind("app", AppNS)
	return p
}

// Bind associates prefix with namespace, replacing any earlier binding.
func (p *Prefixes) Bind(prefix, namespace string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if old, ok := p.forward[prefix]; ok {
		delete(p.reverse, old)
	}
	p.forward[prefix] = namespace
	p.reverse[namespace] = prefix
}

// Expand resolves a prefixed name ("grdf:Feature") to a full IRI. It returns
// an error for unknown prefixes or names without a colon.
func (p *Prefixes) Expand(qname string) (IRI, error) {
	idx := strings.Index(qname, ":")
	if idx < 0 {
		return "", fmt.Errorf("rdf: %q is not a prefixed name", qname)
	}
	prefix, local := qname[:idx], qname[idx+1:]
	p.mu.RLock()
	ns, ok := p.forward[prefix]
	p.mu.RUnlock()
	if !ok {
		return "", fmt.Errorf("rdf: unknown prefix %q in %q", prefix, qname)
	}
	return IRI(ns + local), nil
}

// Namespace returns the namespace bound to prefix, if any.
func (p *Prefixes) Namespace(prefix string) (string, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	ns, ok := p.forward[prefix]
	return ns, ok
}

// Compact renders an IRI as a prefixed name when a binding covers it,
// otherwise returns the angle-bracketed absolute form.
func (p *Prefixes) Compact(iri IRI) string {
	s := string(iri)
	p.mu.RLock()
	defer p.mu.RUnlock()
	best, bestPrefix := "", ""
	for ns, prefix := range p.reverse {
		if strings.HasPrefix(s, ns) && len(ns) > len(best) {
			local := s[len(ns):]
			if validLocalPart(local) {
				best, bestPrefix = ns, prefix
			}
		}
	}
	if best == "" {
		return iri.String()
	}
	return bestPrefix + ":" + s[len(best):]
}

// Each calls fn for every binding in deterministic (prefix-sorted) order.
func (p *Prefixes) Each(fn func(prefix, namespace string)) {
	p.mu.RLock()
	keys := make([]string, 0, len(p.forward))
	for k := range p.forward {
		keys = append(keys, k)
	}
	vals := make(map[string]string, len(p.forward))
	for k, v := range p.forward {
		vals[k] = v
	}
	p.mu.RUnlock()
	sort.Strings(keys)
	for _, k := range keys {
		fn(k, vals[k])
	}
}

// Clone returns an independent copy of the table.
func (p *Prefixes) Clone() *Prefixes {
	q := NewPrefixes()
	p.Each(func(prefix, ns string) { q.Bind(prefix, ns) })
	return q
}

// validLocalPart reports whether s can appear as the local part of a Turtle
// prefixed name without escaping. We accept letters, digits, '_', '-', '.'
// (not leading/trailing dot).
func validLocalPart(s string) bool {
	if s == "" {
		return true
	}
	if s[0] == '.' || s[len(s)-1] == '.' {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '-', r == '.':
		default:
			return false
		}
	}
	return true
}
