package rdf

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestIRIString(t *testing.T) {
	i := IRI("http://grdf.org/ontology/grdf#Feature")
	if got, want := i.String(), "<http://grdf.org/ontology/grdf#Feature>"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if i.Kind() != KindIRI {
		t.Errorf("Kind() = %v, want KindIRI", i.Kind())
	}
}

func TestIRILocalNameAndNamespace(t *testing.T) {
	cases := []struct {
		iri   IRI
		local string
		ns    string
	}{
		{IRI(GRDFNS + "Feature"), "Feature", GRDFNS},
		{IRI("http://example.org/a/b"), "b", "http://example.org/a/"},
		{IRI("urn:nothing"), "urn:nothing", ""},
	}
	for _, c := range cases {
		if got := c.iri.LocalName(); got != c.local {
			t.Errorf("LocalName(%s) = %q, want %q", c.iri, got, c.local)
		}
		if got := c.iri.Namespace(); got != c.ns {
			t.Errorf("Namespace(%s) = %q, want %q", c.iri, got, c.ns)
		}
	}
}

func TestBlankNode(t *testing.T) {
	b := BlankNode("b1")
	if b.String() != "_:b1" {
		t.Errorf("String() = %q", b.String())
	}
	if b.Kind() != KindBlank {
		t.Errorf("Kind() = %v", b.Kind())
	}
	if b.Equal(IRI("b1")) {
		t.Error("blank node must not equal IRI with same text")
	}
}

func TestNewBlankNodeUnique(t *testing.T) {
	seen := map[BlankNode]bool{}
	for i := 0; i < 1000; i++ {
		b := NewBlankNode()
		if seen[b] {
			t.Fatalf("duplicate blank node %s", b)
		}
		seen[b] = true
	}
}

func TestLiteralString(t *testing.T) {
	cases := []struct {
		lit  Literal
		want string
	}{
		{NewString("hello"), `"hello"`},
		{NewLangString("chat", "EN"), `"chat"@en`},
		{NewInteger(42), `"42"^^<http://www.w3.org/2001/XMLSchema#integer>`},
		{NewBoolean(true), `"true"^^<http://www.w3.org/2001/XMLSchema#boolean>`},
		{NewString("line1\nline2\t\"q\""), `"line1\nline2\t\"q\""`},
	}
	for _, c := range cases {
		if got := c.lit.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestLiteralAccessors(t *testing.T) {
	if v, err := NewInteger(-7).Int(); err != nil || v != -7 {
		t.Errorf("Int() = %d, %v", v, err)
	}
	if v, err := NewDouble(2.5).Float(); err != nil || v != 2.5 {
		t.Errorf("Float() = %g, %v", v, err)
	}
	if v, err := NewBoolean(false).Bool(); err != nil || v {
		t.Errorf("Bool() = %t, %v", v, err)
	}
	when := time.Date(2008, 4, 7, 12, 0, 0, 0, time.UTC)
	if v, err := NewDateTime(when).Time(); err != nil || !v.Equal(when) {
		t.Errorf("Time() = %v, %v", v, err)
	}
	if _, err := NewString("x").Int(); err == nil {
		t.Error("Int() on string literal should fail")
	}
	if _, err := NewString("x").Float(); err == nil {
		t.Error("Float() on string literal should fail")
	}
	if _, err := NewInteger(1).Bool(); err == nil {
		t.Error("Bool() on integer literal should fail")
	}
}

func TestLiteralNumericKinds(t *testing.T) {
	if !NewNonNegativeInteger(2).IsNumeric() {
		t.Error("nonNegativeInteger should be numeric")
	}
	if NewString("2").IsNumeric() {
		t.Error("string should not be numeric")
	}
	if v, err := NewNonNegativeInteger(2).Int(); err != nil || v != 2 {
		t.Errorf("Int() = %d, %v", v, err)
	}
}

func TestCompareLiterals(t *testing.T) {
	cases := []struct {
		a, b Literal
		cmp  int
		ok   bool
	}{
		{NewInteger(1), NewDouble(2), -1, true},
		{NewInteger(3), NewInteger(3), 0, true},
		{NewDouble(4), NewInteger(3), 1, true},
		{NewBoolean(false), NewBoolean(true), -1, true},
		{NewString("a"), NewString("b"), -1, true},
		{NewString("1"), NewInteger(1), 0, false},
		{NewDateTime(time.Unix(100, 0)), NewDateTime(time.Unix(200, 0)), -1, true},
	}
	for _, c := range cases {
		cmp, ok := CompareLiterals(c.a, c.b)
		if ok != c.ok || (ok && cmp != c.cmp) {
			t.Errorf("CompareLiterals(%s, %s) = %d, %t; want %d, %t", c.a, c.b, cmp, ok, c.cmp, c.ok)
		}
	}
}

func TestNewTripleValidation(t *testing.T) {
	s := IRI("http://e/s")
	p := IRI("http://e/p")
	o := NewString("v")
	if _, err := NewTriple(s, p, o); err != nil {
		t.Errorf("valid triple rejected: %v", err)
	}
	if _, err := NewTriple(o, p, s); err == nil {
		t.Error("literal subject accepted")
	}
	if _, err := NewTriple(s, BlankNode("b"), o); err == nil {
		t.Error("blank predicate accepted")
	}
	if _, err := NewTriple(nil, p, o); err == nil {
		t.Error("nil subject accepted")
	}
}

func TestTripleString(t *testing.T) {
	tr := T(IRI("http://e/s"), IRI("http://e/p"), NewString("v"))
	want := `<http://e/s> <http://e/p> "v" .`
	if tr.String() != want {
		t.Errorf("String() = %q, want %q", tr.String(), want)
	}
}

func TestQuadString(t *testing.T) {
	q := Quad{Triple: T(IRI("http://e/s"), IRI("http://e/p"), IRI("http://e/o"))}
	if !strings.HasSuffix(q.String(), "<http://e/o> .") {
		t.Errorf("default-graph quad = %q", q.String())
	}
	q.Graph = IRI("http://e/g")
	if !strings.Contains(q.String(), "<http://e/g> .") {
		t.Errorf("named-graph quad = %q", q.String())
	}
}

func TestPrefixesExpandCompact(t *testing.T) {
	p := CommonPrefixes()
	iri, err := p.Expand("grdf:Feature")
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if iri != IRI(GRDFNS+"Feature") {
		t.Errorf("Expand = %s", iri)
	}
	if got := p.Compact(iri); got != "grdf:Feature" {
		t.Errorf("Compact = %q", got)
	}
	if _, err := p.Expand("nope:X"); err == nil {
		t.Error("unknown prefix accepted")
	}
	if _, err := p.Expand("noColon"); err == nil {
		t.Error("name without colon accepted")
	}
	// IRI not covered by a binding stays absolute.
	if got := p.Compact(IRI("http://unbound.example/x")); got != "<http://unbound.example/x>" {
		t.Errorf("Compact(unbound) = %q", got)
	}
}

func TestPrefixesRebindAndClone(t *testing.T) {
	p := NewPrefixes()
	p.Bind("ex", "http://a/")
	p.Bind("ex", "http://b/")
	if got := p.Compact(IRI("http://a/x")); got != "<http://a/x>" {
		t.Errorf("stale reverse binding survived: %q", got)
	}
	q := p.Clone()
	q.Bind("zz", "http://c/")
	if _, ok := p.Namespace("zz"); ok {
		t.Error("Clone is not independent")
	}
}

func TestGraphBasicOps(t *testing.T) {
	g := NewGraph()
	a := T(IRI("http://e/s"), IRI("http://e/p"), NewString("1"))
	b := T(IRI("http://e/s"), IRI("http://e/p"), NewString("2"))
	if !g.Add(a) || !g.Add(b) {
		t.Fatal("Add returned false for new triples")
	}
	if g.Add(a) {
		t.Error("duplicate Add returned true")
	}
	if g.Len() != 2 {
		t.Errorf("Len = %d", g.Len())
	}
	if !g.Has(a) {
		t.Error("Has(a) = false")
	}
	if len(g.Match(IRI("http://e/s"), nil, nil)) != 2 {
		t.Error("Match subject wildcard failed")
	}
	if !g.Remove(a) || g.Remove(a) {
		t.Error("Remove semantics wrong")
	}
	if g.Len() != 1 {
		t.Errorf("Len after remove = %d", g.Len())
	}
}

func TestGraphAddRejectsInvalid(t *testing.T) {
	g := NewGraph()
	if g.Add(Triple{Subject: NewString("s"), Predicate: IRI("http://e/p"), Object: IRI("http://e/o")}) {
		t.Error("graph accepted literal subject")
	}
	if g.Len() != 0 {
		t.Errorf("Len = %d", g.Len())
	}
}

func TestGraphObjectsSubjects(t *testing.T) {
	g := NewGraph()
	s, p := IRI("http://e/s"), IRI("http://e/p")
	g.Add(T(s, p, NewString("1")))
	g.Add(T(s, p, NewString("2")))
	g.Add(T(s, p, NewString("1"))) // duplicate
	if got := g.Objects(s, p); len(got) != 2 {
		t.Errorf("Objects = %v", got)
	}
	if o, ok := g.FirstObject(s, p); !ok || !o.Equal(NewString("1")) {
		t.Errorf("FirstObject = %v, %t", o, ok)
	}
	if got := g.Subjects(p, NewString("2")); len(got) != 1 || !got[0].Equal(s) {
		t.Errorf("Subjects = %v", got)
	}
}

func TestGraphCloneEqualDiff(t *testing.T) {
	g := GraphOf(
		T(IRI("http://e/a"), RDFType, IRI(GRDFNS+"Feature")),
		T(IRI("http://e/b"), RDFType, IRI(GRDFNS+"Feature")),
	)
	h := g.Clone()
	if !g.Equal(h) {
		t.Error("clone not equal")
	}
	h.Add(T(IRI("http://e/c"), RDFType, IRI(GRDFNS+"Feature")))
	if g.Equal(h) {
		t.Error("unequal graphs reported equal")
	}
	if d := h.Diff(g); len(d) != 1 {
		t.Errorf("Diff = %v", d)
	}
}

func TestGraphListRoundTrip(t *testing.T) {
	g := NewGraph()
	items := []Term{IRI("http://e/1"), NewString("two"), NewInteger(3)}
	head := g.List(items)
	got, err := g.ReadList(head)
	if err != nil {
		t.Fatalf("ReadList: %v", err)
	}
	if len(got) != len(items) {
		t.Fatalf("ReadList len = %d", len(got))
	}
	for i := range items {
		if !got[i].Equal(items[i]) {
			t.Errorf("item %d = %v, want %v", i, got[i], items[i])
		}
	}
	if head := g.List(nil); !head.Equal(RDFNil) {
		t.Errorf("empty list head = %v", head)
	}
	if empty, err := g.ReadList(RDFNil); err != nil || len(empty) != 0 {
		t.Errorf("ReadList(nil) = %v, %v", empty, err)
	}
}

func TestGraphReadListErrors(t *testing.T) {
	g := NewGraph()
	b := BlankNode("cell")
	g.Add(T(b, RDFFirst, NewString("x")))
	// missing rdf:rest
	if _, err := g.ReadList(b); err == nil {
		t.Error("missing rdf:rest not detected")
	}
	g.Add(T(b, RDFRest, b)) // cycle
	if _, err := g.ReadList(b); err == nil {
		t.Error("cycle not detected")
	}
}

// Property: escaping never loses information for round-trippable content and
// literal String() is parseable-shaped (starts/ends correctly).
func TestQuickLiteralStringShape(t *testing.T) {
	f := func(v string) bool {
		s := NewString(v).String()
		return strings.HasPrefix(s, `"`) && strings.Contains(s, `"`) &&
			!strings.Contains(EscapeLiteral(v), "\n")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: graph Add/Has/Remove behave like a set.
func TestQuickGraphSetSemantics(t *testing.T) {
	f := func(keys []uint8) bool {
		g := NewGraph()
		ref := map[Triple]bool{}
		for _, k := range keys {
			tr := T(IRI("http://e/s"), IRI("http://e/p"), NewInteger(int64(k%16)))
			if k%3 == 0 {
				g.Remove(tr)
				delete(ref, tr)
			} else {
				g.Add(tr)
				ref[tr] = true
			}
		}
		if g.Len() != len(ref) {
			return false
		}
		for tr := range ref {
			if !g.Has(tr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGraphAddAllTriplesString(t *testing.T) {
	g := GraphOf(
		T(IRI("http://e/a"), IRI("http://e/p"), NewString("1")),
	)
	h := GraphOf(
		T(IRI("http://e/a"), IRI("http://e/p"), NewString("1")), // dup
		T(IRI("http://e/b"), IRI("http://e/p"), NewString("2")),
	)
	if n := g.AddAll(h); n != 1 {
		t.Errorf("AddAll = %d, want 1", n)
	}
	if len(g.Triples()) != 2 {
		t.Errorf("Triples = %d", len(g.Triples()))
	}
	s := g.String()
	if !strings.Contains(s, "http://e/b") || strings.Count(s, "\n") != 1 {
		t.Errorf("String = %q", s)
	}
}

func TestTermKindString(t *testing.T) {
	if KindIRI.String() != "iri" || KindBlank.String() != "blank" || KindLiteral.String() != "literal" {
		t.Error("TermKind strings wrong")
	}
	if TermKind(9).String() == "" {
		t.Error("unknown kind empty")
	}
}

func TestNewDecimalAndTimeVariants(t *testing.T) {
	d := NewDecimal(2.5)
	if d.Datatype != XSDDecimal || d.Value != "2.5" {
		t.Errorf("NewDecimal = %+v", d)
	}
	// dateTime without zone
	l := Literal{Value: "2008-04-07T12:00:00", Datatype: XSDDateTime}
	if _, err := l.Time(); err != nil {
		t.Errorf("zoneless dateTime rejected: %v", err)
	}
	// xsd:date
	d2 := Literal{Value: "2008-04-07", Datatype: XSDDate}
	when, err := d2.Time()
	if err != nil || when.Year() != 2008 {
		t.Errorf("date = %v, %v", when, err)
	}
	// bad forms
	for _, bad := range []Literal{
		{Value: "not a date", Datatype: XSDDateTime},
		{Value: "also bad", Datatype: XSDDate},
		{Value: "2008", Datatype: XSDString},
	} {
		if _, err := bad.Time(); err == nil {
			t.Errorf("bad time accepted: %+v", bad)
		}
	}
}

func TestCompactRejectsBadLocalParts(t *testing.T) {
	p := NewPrefixes()
	p.Bind("ex", "http://e/")
	// local parts with slashes or leading dots stay absolute
	for _, iri := range []IRI{"http://e/a/b", "http://e/.dot", "http://e/dot."} {
		if got := p.Compact(iri); !strings.HasPrefix(got, "<") {
			t.Errorf("Compact(%s) = %q, want absolute", iri, got)
		}
	}
	if got := p.Compact(IRI("http://e/")); got != "ex:" {
		t.Errorf("empty local = %q", got)
	}
}
