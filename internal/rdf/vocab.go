package rdf

// Well-known namespace prefixes.
const (
	RDFNS  = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
	RDFSNS = "http://www.w3.org/2000/01/rdf-schema#"
	OWLNS  = "http://www.w3.org/2002/07/owl#"
	XSDNS  = "http://www.w3.org/2001/XMLSchema#"

	// GRDFNS is the namespace of the GRDF ontology. The paper anchors its
	// listings at a localhost URI; we use a stable project URI instead.
	GRDFNS = "http://grdf.org/ontology/grdf#"
	// GRDFTemporalNS holds the temporal sub-ontology (List 3 references a
	// separate "temporal#" namespace for hasTimePosition).
	GRDFTemporalNS = "http://grdf.org/ontology/temporal#"
	// SecOntoNS is the security ontology namespace of Section 7 / List 8.
	SecOntoNS = "http://grdf.org/ontology/seconto#"
	// GMLNS is the GML 3.1.1 namespace.
	GMLNS = "http://www.opengis.net/gml"
	// AppNS is the example application namespace used by Lists 6–7.
	AppNS = "http://grdf.org/app#"
)

// RDF vocabulary.
const (
	RDFType       IRI = RDFNS + "type"
	RDFProperty   IRI = RDFNS + "Property"
	RDFFirst      IRI = RDFNS + "first"
	RDFRest       IRI = RDFNS + "rest"
	RDFNil        IRI = RDFNS + "nil"
	RDFLangString IRI = RDFNS + "langString"
	RDFXMLLiteral IRI = RDFNS + "XMLLiteral"
	RDFStatement  IRI = RDFNS + "Statement"
	RDFSubject    IRI = RDFNS + "subject"
	RDFPredicate  IRI = RDFNS + "predicate"
	RDFObject     IRI = RDFNS + "object"
	RDFValue      IRI = RDFNS + "value"
)

// RDFS vocabulary.
const (
	RDFSClass         IRI = RDFSNS + "Class"
	RDFSSubClassOf    IRI = RDFSNS + "subClassOf"
	RDFSSubPropertyOf IRI = RDFSNS + "subPropertyOf"
	RDFSDomain        IRI = RDFSNS + "domain"
	RDFSRange         IRI = RDFSNS + "range"
	RDFSLabel         IRI = RDFSNS + "label"
	RDFSComment       IRI = RDFSNS + "comment"
	RDFSResource      IRI = RDFSNS + "Resource"
	RDFSLiteral       IRI = RDFSNS + "Literal"
	RDFSDatatype      IRI = RDFSNS + "Datatype"
	RDFSMember        IRI = RDFSNS + "member"
	RDFSSeeAlso       IRI = RDFSNS + "seeAlso"
	RDFSIsDefinedBy   IRI = RDFSNS + "isDefinedBy"
)

// OWL vocabulary (the OWL-DL subset GRDF uses).
const (
	OWLClass              IRI = OWLNS + "Class"
	OWLObjectProperty     IRI = OWLNS + "ObjectProperty"
	OWLDatatypeProperty   IRI = OWLNS + "DatatypeProperty"
	OWLAnnotationProperty IRI = OWLNS + "AnnotationProperty"
	OWLOntology           IRI = OWLNS + "Ontology"
	OWLRestriction        IRI = OWLNS + "Restriction"
	OWLOnProperty         IRI = OWLNS + "onProperty"
	OWLCardinality        IRI = OWLNS + "cardinality"
	OWLMinCardinality     IRI = OWLNS + "minCardinality"
	OWLMaxCardinality     IRI = OWLNS + "maxCardinality"
	OWLSomeValuesFrom     IRI = OWLNS + "someValuesFrom"
	OWLAllValuesFrom      IRI = OWLNS + "allValuesFrom"
	OWLHasValue           IRI = OWLNS + "hasValue"
	OWLEquivalentClass    IRI = OWLNS + "equivalentClass"
	OWLEquivalentProperty IRI = OWLNS + "equivalentProperty"
	OWLSameAs             IRI = OWLNS + "sameAs"
	OWLDifferentFrom      IRI = OWLNS + "differentFrom"
	OWLDisjointWith       IRI = OWLNS + "disjointWith"
	OWLInverseOf          IRI = OWLNS + "inverseOf"
	OWLTransitiveProperty IRI = OWLNS + "TransitiveProperty"
	OWLSymmetricProperty  IRI = OWLNS + "SymmetricProperty"
	OWLFunctionalProperty IRI = OWLNS + "FunctionalProperty"
	OWLInverseFunctional  IRI = OWLNS + "InverseFunctionalProperty"
	OWLThing              IRI = OWLNS + "Thing"
	OWLNothing            IRI = OWLNS + "Nothing"
	OWLUnionOf            IRI = OWLNS + "unionOf"
	OWLIntersectionOf     IRI = OWLNS + "intersectionOf"
	OWLComplementOf       IRI = OWLNS + "complementOf"
	OWLOneOf              IRI = OWLNS + "oneOf"
	OWLImports            IRI = OWLNS + "imports"
	OWLVersionInfo        IRI = OWLNS + "versionInfo"
	OWLNamedIndividual    IRI = OWLNS + "NamedIndividual"
	OWLAllDifferent       IRI = OWLNS + "AllDifferent"
	OWLDistinctMembers    IRI = OWLNS + "distinctMembers"
)

// XSD datatypes.
const (
	XSDString             IRI = XSDNS + "string"
	XSDBoolean            IRI = XSDNS + "boolean"
	XSDInteger            IRI = XSDNS + "integer"
	XSDInt                IRI = XSDNS + "int"
	XSDLong               IRI = XSDNS + "long"
	XSDShort              IRI = XSDNS + "short"
	XSDByte               IRI = XSDNS + "byte"
	XSDDecimal            IRI = XSDNS + "decimal"
	XSDDouble             IRI = XSDNS + "double"
	XSDFloat              IRI = XSDNS + "float"
	XSDDate               IRI = XSDNS + "date"
	XSDDateTime           IRI = XSDNS + "dateTime"
	XSDTime               IRI = XSDNS + "time"
	XSDAnyURI             IRI = XSDNS + "anyURI"
	XSDNonNegativeInteger IRI = XSDNS + "nonNegativeInteger"
	XSDPositiveInteger    IRI = XSDNS + "positiveInteger"
	XSDUnsignedInt        IRI = XSDNS + "unsignedInt"
	XSDUnsignedLong       IRI = XSDNS + "unsignedLong"
)
