package rdf

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Graph is a simple unindexed set of triples with value semantics, useful for
// building small documents (ontology fragments, query results) before loading
// them into the indexed store. Iteration order over Triples() is insertion
// order, which keeps serializer output stable.
type Graph struct {
	triples []Triple
	present map[Triple]struct{}
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{present: make(map[Triple]struct{})}
}

// GraphOf builds a graph from the given triples (duplicates collapsed).
func GraphOf(ts ...Triple) *Graph {
	g := NewGraph()
	for _, t := range ts {
		g.Add(t)
	}
	return g
}

// Add inserts t; it reports whether the triple was new.
func (g *Graph) Add(t Triple) bool {
	if !t.Valid() {
		return false
	}
	if _, ok := g.present[t]; ok {
		return false
	}
	g.present[t] = struct{}{}
	g.triples = append(g.triples, t)
	return true
}

// AddAll inserts every triple of h into g and returns the count of new triples.
func (g *Graph) AddAll(h *Graph) int {
	n := 0
	for _, t := range h.triples {
		if g.Add(t) {
			n++
		}
	}
	return n
}

// Remove deletes t; it reports whether the triple was present.
func (g *Graph) Remove(t Triple) bool {
	if _, ok := g.present[t]; !ok {
		return false
	}
	delete(g.present, t)
	for i, u := range g.triples {
		if u == t {
			g.triples = append(g.triples[:i], g.triples[i+1:]...)
			break
		}
	}
	return true
}

// Has reports whether t is in the graph.
func (g *Graph) Has(t Triple) bool {
	_, ok := g.present[t]
	return ok
}

// Len returns the number of triples.
func (g *Graph) Len() int { return len(g.triples) }

// Triples returns the triples in insertion order. The slice is shared; do not
// mutate it.
func (g *Graph) Triples() []Triple { return g.triples }

// Match returns all triples matching the pattern; nil terms are wildcards.
func (g *Graph) Match(s, p, o Term) []Triple {
	var out []Triple
	for _, t := range g.triples {
		if (s == nil || t.Subject.Equal(s)) &&
			(p == nil || t.Predicate.Equal(p)) &&
			(o == nil || t.Object.Equal(o)) {
			out = append(out, t)
		}
	}
	return out
}

// Objects returns the distinct objects of triples (s, p, *) in insertion order.
func (g *Graph) Objects(s, p Term) []Term {
	var out []Term
	seen := map[string]struct{}{}
	for _, t := range g.Match(s, p, nil) {
		k := t.Object.String()
		if _, dup := seen[k]; !dup {
			seen[k] = struct{}{}
			out = append(out, t.Object)
		}
	}
	return out
}

// FirstObject returns the object of the first triple matching (s, p, *).
func (g *Graph) FirstObject(s, p Term) (Term, bool) {
	for _, t := range g.triples {
		if t.Subject.Equal(s) && t.Predicate.Equal(p) {
			return t.Object, true
		}
	}
	return nil, false
}

// Subjects returns the distinct subjects of triples (*, p, o).
func (g *Graph) Subjects(p, o Term) []Term {
	var out []Term
	seen := map[string]struct{}{}
	for _, t := range g.Match(nil, p, o) {
		k := t.Subject.String()
		if _, dup := seen[k]; !dup {
			seen[k] = struct{}{}
			out = append(out, t.Subject)
		}
	}
	return out
}

// Clone returns an independent copy of the graph.
func (g *Graph) Clone() *Graph {
	h := NewGraph()
	for _, t := range g.triples {
		h.Add(t)
	}
	return h
}

// Equal reports whether both graphs contain exactly the same triple set
// (ground comparison; blank-node isomorphism is not attempted).
func (g *Graph) Equal(h *Graph) bool {
	if g.Len() != h.Len() {
		return false
	}
	for t := range g.present {
		if !h.Has(t) {
			return false
		}
	}
	return true
}

// Diff returns the triples present in g but not h.
func (g *Graph) Diff(h *Graph) []Triple {
	var out []Triple
	for _, t := range g.triples {
		if !h.Has(t) {
			out = append(out, t)
		}
	}
	return out
}

// String renders the graph as sorted N-Triples, handy in tests and error
// messages.
func (g *Graph) String() string {
	lines := make([]string, 0, len(g.triples))
	for _, t := range g.triples {
		lines = append(lines, t.String())
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// blankCounter feeds NewBlankNode with process-unique labels.
var blankCounter atomic.Uint64

// NewBlankNode returns a fresh blank node with a process-unique label.
func NewBlankNode() BlankNode {
	return BlankNode(fmt.Sprintf("b%d", blankCounter.Add(1)))
}

// List encodes a Go slice of terms as an RDF collection (rdf:first/rdf:rest)
// rooted at the returned head term, adding the cell triples to g. An empty
// slice yields rdf:nil.
func (g *Graph) List(items []Term) Term {
	if len(items) == 0 {
		return RDFNil
	}
	head := Term(NewBlankNode())
	cur := head
	for i, it := range items {
		g.Add(T(cur, RDFFirst, it))
		if i == len(items)-1 {
			g.Add(T(cur, RDFRest, RDFNil))
		} else {
			next := Term(NewBlankNode())
			g.Add(T(cur, RDFRest, next))
			cur = next
		}
	}
	return head
}

// ReadList decodes the RDF collection rooted at head. It stops (returning
// what it has plus an error) on malformed cells or cycles.
func (g *Graph) ReadList(head Term) ([]Term, error) {
	var out []Term
	seen := map[string]struct{}{}
	cur := head
	for {
		if cur.Equal(RDFNil) {
			return out, nil
		}
		key := cur.String()
		if _, dup := seen[key]; dup {
			return out, fmt.Errorf("rdf: cyclic list at %s", key)
		}
		seen[key] = struct{}{}
		first, ok := g.FirstObject(cur, RDFFirst)
		if !ok {
			return out, fmt.Errorf("rdf: list cell %s missing rdf:first", key)
		}
		out = append(out, first)
		rest, ok := g.FirstObject(cur, RDFRest)
		if !ok {
			return out, fmt.Errorf("rdf: list cell %s missing rdf:rest", key)
		}
		cur = rest
	}
}
