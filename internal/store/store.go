// Package store provides the indexed, concurrency-safe triple store that
// backs every GRDF dataset in the system: the ontology repository of the
// G-SACS architecture (Fig. 3 of the paper), the hydrology and chemical data
// stores of the Section 7.1 scenario, and the working set of the OWL
// reasoner.
//
// The store keeps three hash indexes (SPO, POS, OSP) so that any triple
// pattern with at least one bound position resolves without a full scan.
// Readers take a read lock and may run concurrently; writers are serialized.
// Snapshot() produces an immutable copy for long-running consumers such as
// the query cache.
package store

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/rdf"
)

// index is a two-level nested hash index terminating in a term set.
type index map[rdf.Term]map[rdf.Term]map[rdf.Term]struct{}

func (ix index) add(a, b, c rdf.Term) bool {
	m1, ok := ix[a]
	if !ok {
		m1 = make(map[rdf.Term]map[rdf.Term]struct{})
		ix[a] = m1
	}
	m2, ok := m1[b]
	if !ok {
		m2 = make(map[rdf.Term]struct{})
		m1[b] = m2
	}
	if _, dup := m2[c]; dup {
		return false
	}
	m2[c] = struct{}{}
	return true
}

func (ix index) remove(a, b, c rdf.Term) bool {
	m1, ok := ix[a]
	if !ok {
		return false
	}
	m2, ok := m1[b]
	if !ok {
		return false
	}
	if _, ok := m2[c]; !ok {
		return false
	}
	delete(m2, c)
	if len(m2) == 0 {
		delete(m1, b)
		if len(m1) == 0 {
			delete(ix, a)
		}
	}
	return true
}

// Store is an indexed triple store. The zero value is not usable; call New.
type Store struct {
	mu   sync.RWMutex
	spo  index
	pos  index
	osp  index
	size int
	// generation increments on every successful mutation; the query cache
	// uses it for O(1) invalidation checks.
	generation uint64

	// mLockHold, when set by Instrument, samples write-lock hold times.
	// holdTick picks every lockSampleEvery-th mutation so the hot path pays
	// one atomic increment, not a clock read, per write.
	mLockHold *obs.Histogram
	holdTick  atomic.Uint64
}

// lockSampleEvery is the write-lock sampling period (power of two).
const lockSampleEvery = 16

// Instrument exports the store's vitals into reg: triple count and
// generation as callback gauges (zero hot-path cost) plus a sampled
// write-lock hold-time histogram. Call before concurrent use.
func (s *Store) Instrument(reg *obs.Registry) *Store {
	if reg == nil {
		return s
	}
	reg.GaugeFunc("grdf_store_triples", "Triples in the data store.",
		func() float64 { return float64(s.Len()) })
	reg.GaugeFunc("grdf_store_generation",
		"Mutation generation counter (cache invalidation epoch).",
		func() float64 { return float64(s.Generation()) })
	s.mLockHold = reg.Histogram("grdf_store_write_lock_hold_seconds",
		"Write-lock hold time, sampled every 16th mutation.", nil)
	return s
}

// beginHold starts timing this write-lock hold when it falls on the
// sampling grid; returns the zero time otherwise. Call with the write lock
// held.
func (s *Store) beginHold() time.Time {
	if s.mLockHold == nil {
		return time.Time{}
	}
	if s.holdTick.Add(1)%lockSampleEvery != 0 {
		return time.Time{}
	}
	return time.Now()
}

// endHold records a sampled hold begun by beginHold.
func (s *Store) endHold(start time.Time) {
	if !start.IsZero() {
		s.mLockHold.ObserveSince(start)
	}
}

// New returns an empty store.
func New() *Store {
	return &Store{
		spo: make(index),
		pos: make(index),
		osp: make(index),
	}
}

// FromGraph loads all triples of g into a fresh store.
func FromGraph(g *rdf.Graph) *Store {
	s := New()
	s.AddGraph(g)
	return s
}

// Add inserts t, reporting whether it was new. Invalid triples are rejected.
func (s *Store) Add(t rdf.Triple) bool {
	if !t.Valid() {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.endHold(s.beginHold())
	return s.addLocked(t)
}

func (s *Store) addLocked(t rdf.Triple) bool {
	if !s.spo.add(t.Subject, t.Predicate, t.Object) {
		return false
	}
	s.pos.add(t.Predicate, t.Object, t.Subject)
	s.osp.add(t.Object, t.Subject, t.Predicate)
	s.size++
	s.generation++
	return true
}

// AddAll inserts the given triples, returning how many were new.
func (s *Store) AddAll(ts []rdf.Triple) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.endHold(s.beginHold())
	n := 0
	for _, t := range ts {
		if !t.Valid() {
			continue
		}
		if s.addLocked(t) {
			n++
		}
	}
	return n
}

// AddGraph inserts every triple of g, returning how many were new.
func (s *Store) AddGraph(g *rdf.Graph) int { return s.AddAll(g.Triples()) }

// Remove deletes t, reporting whether it was present.
func (s *Store) Remove(t rdf.Triple) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.endHold(s.beginHold())
	if !s.spo.remove(t.Subject, t.Predicate, t.Object) {
		return false
	}
	s.pos.remove(t.Predicate, t.Object, t.Subject)
	s.osp.remove(t.Object, t.Subject, t.Predicate)
	s.size--
	s.generation++
	return true
}

// RemoveMatching deletes all triples matching the pattern (nil = wildcard)
// and returns how many were removed.
func (s *Store) RemoveMatching(sub, pred, obj rdf.Term) int {
	victims := s.Match(sub, pred, obj)
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.endHold(s.beginHold())
	n := 0
	for _, t := range victims {
		if s.spo.remove(t.Subject, t.Predicate, t.Object) {
			s.pos.remove(t.Predicate, t.Object, t.Subject)
			s.osp.remove(t.Object, t.Subject, t.Predicate)
			s.size--
			s.generation++
			n++
		}
	}
	return n
}

// Has reports whether t is in the store.
func (s *Store) Has(t rdf.Triple) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m1, ok := s.spo[t.Subject]
	if !ok {
		return false
	}
	m2, ok := m1[t.Predicate]
	if !ok {
		return false
	}
	_, ok = m2[t.Object]
	return ok
}

// Len returns the number of triples.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.size
}

// Generation returns a counter that increases on every mutation.
func (s *Store) Generation() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.generation
}

// Match returns all triples matching the pattern; nil positions are
// wildcards. The result is a fresh slice safe for the caller to keep.
func (s *Store) Match(sub, pred, obj rdf.Term) []rdf.Triple {
	var out []rdf.Triple
	s.ForEachMatch(sub, pred, obj, func(t rdf.Triple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// Count returns the number of triples matching the pattern without
// materializing them.
func (s *Store) Count(sub, pred, obj rdf.Term) int {
	n := 0
	s.ForEachMatch(sub, pred, obj, func(rdf.Triple) bool { n++; return true })
	return n
}

// ForEachMatch streams matching triples to fn under a read lock; fn returning
// false stops iteration early. fn must not mutate the store (it would
// deadlock); collect first if mutation is needed.
func (s *Store) ForEachMatch(sub, pred, obj rdf.Term, fn func(rdf.Triple) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()

	emit := func(t rdf.Triple) bool { return fn(t) }

	switch {
	case sub != nil && pred != nil && obj != nil:
		if m1, ok := s.spo[sub]; ok {
			if m2, ok := m1[pred]; ok {
				if _, ok := m2[obj]; ok {
					emit(rdf.T(sub, pred, obj))
				}
			}
		}
	case sub != nil && pred != nil:
		if m1, ok := s.spo[sub]; ok {
			for o := range m1[pred] {
				if !emit(rdf.T(sub, pred, o)) {
					return
				}
			}
		}
	case sub != nil && obj != nil:
		if m1, ok := s.osp[obj]; ok {
			for p := range m1[sub] {
				if !emit(rdf.T(sub, p, obj)) {
					return
				}
			}
		}
	case pred != nil && obj != nil:
		if m1, ok := s.pos[pred]; ok {
			for su := range m1[obj] {
				if !emit(rdf.T(su, pred, obj)) {
					return
				}
			}
		}
	case sub != nil:
		if m1, ok := s.spo[sub]; ok {
			for p, objs := range m1 {
				for o := range objs {
					if !emit(rdf.T(sub, p, o)) {
						return
					}
				}
			}
		}
	case pred != nil:
		if m1, ok := s.pos[pred]; ok {
			for o, subs := range m1 {
				for su := range subs {
					if !emit(rdf.T(su, pred, o)) {
						return
					}
				}
			}
		}
	case obj != nil:
		if m1, ok := s.osp[obj]; ok {
			for su, preds := range m1 {
				for p := range preds {
					if !emit(rdf.T(su, p, obj)) {
						return
					}
				}
			}
		}
	default:
		for su, m1 := range s.spo {
			for p, objs := range m1 {
				for o := range objs {
					if !emit(rdf.T(su, p, o)) {
						return
					}
				}
			}
		}
	}
}

// Objects returns the distinct objects of triples (sub, pred, *).
func (s *Store) Objects(sub, pred rdf.Term) []rdf.Term {
	var out []rdf.Term
	s.ForEachMatch(sub, pred, nil, func(t rdf.Triple) bool {
		out = append(out, t.Object)
		return true
	})
	return out
}

// FirstObject returns one object of (sub, pred, *), if any. When several
// objects exist the choice is unspecified.
func (s *Store) FirstObject(sub, pred rdf.Term) (rdf.Term, bool) {
	var got rdf.Term
	s.ForEachMatch(sub, pred, nil, func(t rdf.Triple) bool {
		got = t.Object
		return false
	})
	return got, got != nil
}

// Subjects returns the distinct subjects of triples (*, pred, obj).
func (s *Store) Subjects(pred, obj rdf.Term) []rdf.Term {
	var out []rdf.Term
	s.ForEachMatch(nil, pred, obj, func(t rdf.Triple) bool {
		out = append(out, t.Subject)
		return true
	})
	return out
}

// SubjectsOfType returns all subjects with rdf:type class.
func (s *Store) SubjectsOfType(class rdf.Term) []rdf.Term {
	return s.Subjects(rdf.RDFType, class)
}

// Triples returns every triple (fresh slice).
func (s *Store) Triples() []rdf.Triple { return s.Match(nil, nil, nil) }

// Graph copies the whole store into an rdf.Graph.
func (s *Store) Graph() *rdf.Graph {
	g := rdf.NewGraph()
	for _, t := range s.Triples() {
		g.Add(t)
	}
	return g
}

// Snapshot returns an independent copy of the store. Mutating either side
// does not affect the other.
func (s *Store) Snapshot() *Store {
	out := New()
	out.AddAll(s.Triples())
	return out
}

// Clear removes every triple.
func (s *Store) Clear() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.spo = make(index)
	s.pos = make(index)
	s.osp = make(index)
	s.size = 0
	s.generation++
}

// Stats summarizes the store for diagnostics and the experiment reports.
type Stats struct {
	Triples    int
	Subjects   int
	Predicates int
	Objects    int
}

// Stats computes summary statistics.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Triples:    s.size,
		Subjects:   len(s.spo),
		Predicates: len(s.pos),
		Objects:    len(s.osp),
	}
}

// String renders the store as sorted N-Triples (for tests and debugging).
func (s *Store) String() string {
	ts := s.Triples()
	lines := make([]string, len(ts))
	for i, t := range ts {
		lines[i] = t.String()
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// DescribeResource returns all triples with sub as subject, in a stable
// predicate-sorted order — used by the G-SACS result assembler.
func (s *Store) DescribeResource(sub rdf.Term) []rdf.Triple {
	ts := s.Match(sub, nil, nil)
	sort.Slice(ts, func(i, j int) bool {
		pi, pj := ts[i].Predicate.String(), ts[j].Predicate.String()
		if pi != pj {
			return pi < pj
		}
		return ts[i].Object.String() < ts[j].Object.String()
	})
	return ts
}

// Validate checks internal index consistency; it is exercised by tests and
// the property-based suite. It returns an error describing the first
// inconsistency found.
func (s *Store) Validate() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for su, m1 := range s.spo {
		for p, objs := range m1 {
			for o := range objs {
				n++
				if _, ok := s.pos[p][o][su]; !ok {
					return fmt.Errorf("store: POS missing %s %s %s", su, p, o)
				}
				if _, ok := s.osp[o][su][p]; !ok {
					return fmt.Errorf("store: OSP missing %s %s %s", su, p, o)
				}
			}
		}
	}
	if n != s.size {
		return fmt.Errorf("store: size %d != indexed %d", s.size, n)
	}
	return nil
}
