// Package store provides the indexed, concurrency-safe triple store that
// backs every GRDF dataset in the system: the ontology repository of the
// G-SACS architecture (Fig. 3 of the paper), the hydrology and chemical data
// stores of the Section 7.1 scenario, and the working set of the OWL
// reasoner.
//
// Storage is dictionary-encoded: every term is interned into a lock-striped
// Dict (term ⇄ dense uint32 ID) and the three persistent indexes (SPO, POS,
// OSP) hold ID triples, so that any triple pattern with at least one bound
// position resolves without a full scan and joins can run entirely in ID
// space. Per-branch cardinality counts ride along with the indexes and feed
// the SPARQL planner's selectivity estimates in O(1).
//
// Concurrency is MVCC: the current revision is an immutable version
// published through one atomic pointer. Readers acquire it with a single
// atomic load (View) and never block — not on writers, not on each other —
// while writers path-copy the persistent indexes to build the next version.
// Mutations funnel through a group-commit batcher: concurrent Apply calls
// enqueue, one caller becomes the leader, drains the queue, runs the commit
// hook once for the whole group (for the WAL hook: one append + one fsync),
// and publishes a single new version. Snapshot() and View() are O(1) and may
// be held indefinitely without stalling anything.
package store

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/rdf"
)

// OpKind identifies the kind of a batch mutation Op.
type OpKind uint8

const (
	// OpAdd inserts a batch of triples.
	OpAdd OpKind = iota + 1
	// OpRemove deletes a batch of triples.
	OpRemove
	// OpReplace atomically swaps Triples[0] for Triples[1] under a single
	// generation bump.
	OpReplace
	// OpClear removes every triple.
	OpClear
)

func (k OpKind) String() string {
	switch k {
	case OpAdd:
		return "add"
	case OpRemove:
		return "remove"
	case OpReplace:
		return "replace"
	case OpClear:
		return "clear"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Op describes one atomic batch mutation. It is both the store's uniform
// mutation request and the unit the write-ahead log persists: the commit
// hook receives exactly this value before the store publishes it.
type Op struct {
	Kind OpKind
	// Triples carries the batch for OpAdd/OpRemove; for OpReplace it holds
	// exactly [old, new]. Empty for OpClear.
	Triples []rdf.Triple
	// Gen is the store generation observed immediately before the op was
	// applied. Apply fills it in; callers leave it zero.
	Gen uint64
	// MustExist makes an OpReplace whose old triple is absent an error
	// (ErrAbsent) instead of a silent no-op. Inside an atomic batch this
	// fails the whole batch before anything is logged or applied — it is how
	// /v1/mutate gives "update" not-found semantics without a racy pre-check.
	MustExist bool
	// Ctx carries the request context of the mutation, if any, so a commit
	// hook can attach observability spans (WAL append/fsync) to the
	// originating trace. Nil means no request context (recovery, tests,
	// internal maintenance); hooks must treat it as context.Background().
	// Carrying a context in a struct is deliberate here, for the same reason
	// http.Request does it: the Op is the request.
	Ctx context.Context
}

// CommitHook observes every mutation before it is acknowledged, while the
// writer lock is held — hook call order is exactly apply order. Returning an
// error aborts the mutation (nothing is applied) and propagates to the
// caller: this is how the WAL layer refuses to acknowledge writes it could
// not make durable. The hook must not mutate the store (it would deadlock).
//
// A per-op hook forces one hook call per mutation and therefore cannot be
// group-committed; durable deployments should install a GroupCommitHook
// instead. Only one of the two may be set.
type CommitHook func(Op) error

// GroupCommitHook observes one commit group before it is acknowledged. Each
// element is one logical commit — a single op for Apply, possibly several
// for ApplyBatch — in exact apply order, no-ops already filtered out. The
// hook runs once per group however many concurrent callers were batched
// together, so a WAL hook pays one append and one fsync per group. An error
// fails every op in the group and nothing is published.
type GroupCommitHook func(groups [][]Op) error

// ErrCommitHook marks mutation failures caused by the commit hook refusing
// the batch (for a WAL hook: the write could not be made durable). Callers
// can errors.Is against it to tell persistence failures from validation
// errors.
var ErrCommitHook = errors.New("commit hook refused mutation")

// ErrAbsent marks a MustExist replace whose old triple was not present.
var ErrAbsent = errors.New("required triple absent")

// lockSampleEvery is the commit-hold sampling period (power of two).
const lockSampleEvery = 16

// defaultMaxBatch bounds how many queued commits one leader drains.
const defaultMaxBatch = 128

// defaultMaxDelay is the default straggler-gathering window. The leader only
// ever waits while other writers are verifiably in flight, so the delay
// costs a serial workload nothing (see lead).
const defaultMaxDelay = 500 * time.Microsecond

// gatherGraceYields is how many consecutive empty-queue scheduler yields the
// leader tolerates before deciding no more writers are coming. Writers woken
// by the previous group need a moment to re-enter submit; on a busy machine
// one yield is usually enough for all of them.
const gatherGraceYields = 8

// commitWaiter is one enqueued commit: a single op (Apply) or an atomic
// multi-op batch (ApplyBatch), plus the slots its results are delivered in.
type commitWaiter struct {
	ops []Op
	// atomic marks an all-or-nothing batch: one generation bump, one WAL
	// record group, any failure rolls back every op.
	atomic bool
	ns     []int
	err    error
	eff    []Op
	done   chan struct{}
}

// batchHist is the group-commit batch-size histogram for /v1/store:
// buckets count groups of size 1, 2–3, 4–7, 8–15, and 16+.
const batchBuckets = 5

// BatchBucketLabels names the GroupCommitStats histogram buckets.
var BatchBucketLabels = [batchBuckets]string{"1", "2-3", "4-7", "8-15", "16+"}

// GroupCommitStats summarizes the commit batcher's behavior since startup.
type GroupCommitStats struct {
	// Groups is the number of published commit groups (== epoch advances
	// attributable to the batcher).
	Groups uint64
	// Ops is the total number of effective ops committed across all groups.
	Ops uint64
	// MaxBatch is the largest group observed.
	MaxBatch uint64
	// Hist counts groups per size bucket (see BatchBucketLabels).
	Hist [batchBuckets]uint64
}

type batchStats struct {
	groups  atomic.Uint64
	ops     atomic.Uint64
	max     atomic.Uint64
	buckets [batchBuckets]atomic.Uint64
}

func (b *batchStats) record(n int) {
	b.groups.Add(1)
	b.ops.Add(uint64(n))
	for {
		cur := b.max.Load()
		if uint64(n) <= cur || b.max.CompareAndSwap(cur, uint64(n)) {
			break
		}
	}
	var bucket int
	switch {
	case n <= 1:
		bucket = 0
	case n <= 3:
		bucket = 1
	case n <= 7:
		bucket = 2
	case n <= 15:
		bucket = 3
	default:
		bucket = 4
	}
	b.buckets[bucket].Add(1)
}

func (b *batchStats) snapshot() GroupCommitStats {
	out := GroupCommitStats{
		Groups:   b.groups.Load(),
		Ops:      b.ops.Load(),
		MaxBatch: b.max.Load(),
	}
	for i := range b.buckets {
		out.Hist[i] = b.buckets[i].Load()
	}
	return out
}

// Store is an indexed triple store. The zero value is not usable; call New.
type Store struct {
	dict *Dict
	// cur is the published version; every read path starts with one atomic
	// load of it and never takes a lock.
	cur atomic.Pointer[version]

	// writeMu serializes version building. Whoever holds it is the commit
	// leader; everyone else's work is either already queued (and will be
	// committed by the leader) or waits to lead the next group.
	writeMu sync.Mutex
	// qmu guards the commit queue. It is only ever held for O(1) append or
	// drain, so enqueueing never waits on an in-flight fsync.
	qmu   sync.Mutex
	queue []*commitWaiter
	// leading (guarded by qmu) is true while some goroutine is the commit
	// leader. The first writer to enqueue onto an idle batcher elects itself;
	// everyone else parks on their waiter's done channel and never touches
	// writeMu, so a closed done wakes them with nothing left to contend on.
	leading bool
	// inflight counts ops that have entered submit and not yet been
	// committed. The leader uses it to tell "more writers are on their way"
	// (keep gathering) from "the queue has genuinely dried up" (commit now).
	inflight atomic.Int64

	hook      CommitHook
	groupHook GroupCommitHook

	maxBatch int
	maxDelay time.Duration

	batches batchStats

	// mLockHold, when set by Instrument, samples commit-leader hold times.
	// holdTick picks every lockSampleEvery-th group so the hot path pays one
	// atomic increment, not a clock read, per commit.
	mLockHold  *obs.Histogram
	mBatchSize *obs.Histogram
	holdTick   atomic.Uint64
}

// Instrument exports the store's vitals into reg: triple count, generation,
// view epoch and dictionary size as callback gauges (zero hot-path cost), a
// sampled commit hold-time histogram, and the group-commit batch-size
// distribution. Call before concurrent use.
func (s *Store) Instrument(reg *obs.Registry) *Store {
	if reg == nil {
		return s
	}
	reg.GaugeFunc("grdf_store_triples", "Triples in the data store.",
		func() float64 { return float64(s.Len()) })
	reg.GaugeFunc("grdf_store_generation",
		"Mutation generation counter (cache invalidation epoch).",
		func() float64 { return float64(s.Generation()) })
	reg.GaugeFunc("grdf_store_epoch",
		"Published MVCC version epoch (one publish per commit group).",
		func() float64 { return float64(s.Epoch()) })
	reg.GaugeFunc("grdf_store_dict_terms",
		"Distinct terms interned in the store dictionary.",
		func() float64 { return float64(s.DictLen()) })
	s.mLockHold = reg.Histogram("grdf_store_write_lock_hold_seconds",
		"Commit-leader hold time, sampled every 16th commit group.", nil)
	s.mBatchSize = reg.Histogram("grdf_store_commit_batch_size",
		"Effective ops per group commit.", []float64{1, 2, 4, 8, 16, 32, 64, 128})
	return s
}

// beginHold starts timing this commit when it falls on the sampling grid;
// returns the zero time otherwise.
func (s *Store) beginHold() time.Time {
	if s.mLockHold == nil {
		return time.Time{}
	}
	if s.holdTick.Add(1)%lockSampleEvery != 0 {
		return time.Time{}
	}
	return time.Now()
}

// endHold records a sampled hold begun by beginHold.
func (s *Store) endHold(start time.Time) {
	if !start.IsZero() {
		s.mLockHold.ObserveSince(start)
	}
}

// New returns an empty store with a fresh dictionary.
func New() *Store { return NewWithDict(NewDict()) }

// NewWithDict returns an empty store interning into dict. Sharing one
// dictionary across stores keeps their ID spaces compatible (Snapshot relies
// on this); the dictionary only grows, so sharing is always safe.
func NewWithDict(dict *Dict) *Store {
	s := &Store{dict: dict, maxBatch: defaultMaxBatch, maxDelay: defaultMaxDelay}
	s.cur.Store(&version{terms: dict.View()})
	return s
}

// FromGraph loads all triples of g into a fresh store.
func FromGraph(g *rdf.Graph) *Store {
	s := New()
	s.AddGraph(g)
	return s
}

// Dict exposes the store's interning dictionary.
func (s *Store) Dict() *Dict { return s.dict }

// DictLen returns the number of terms interned so far.
func (s *Store) DictLen() int { return s.dict.Len() }

// LookupID returns the dictionary ID of t without interning it; ok is false
// when t has never been stored.
func (s *Store) LookupID(t rdf.Term) (ID, bool) { return s.dict.Lookup(t) }

// Intern interns t into the store's dictionary and returns its ID. It does
// not add any triple.
func (s *Store) Intern(t rdf.Term) ID { return s.dict.Intern(t) }

// TermOf resolves a dictionary ID back to its term (nil for NoID).
func (s *Store) TermOf(id ID) rdf.Term { return s.dict.Term(id) }

// DictView captures a lock-free ID→term resolver over the current
// dictionary contents (see Dict.View).
func (s *Store) DictView() DictView { return s.dict.View() }

// View pins the current published version: one atomic load, O(1), never
// blocking. The view stays valid (and consistent) forever; writers keep
// publishing new versions alongside it.
func (s *Store) View() StoreView { return StoreView{v: s.cur.Load(), dict: s.dict} }

// SetCommitHook installs (or, with nil, removes) the per-op mutation hook.
// Install it only while no mutations are in flight — typically right after
// recovery, before the store serves traffic. Clears any group hook.
func (s *Store) SetCommitHook(h CommitHook) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.hook = h
	if h != nil {
		s.groupHook = nil
	}
}

// SetGroupCommitHook installs (or, with nil, removes) the group commit hook.
// Install it only while no mutations are in flight. Clears any per-op hook.
func (s *Store) SetGroupCommitHook(h GroupCommitHook) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.groupHook = h
	if h != nil {
		s.hook = nil
	}
}

// SetCommitBatching bounds the commit batcher: a leader drains at most
// maxBatch queued commits per group (0 restores the default of 128), and a
// leader whose first drain comes up short gathers stragglers for at most
// maxDelay before committing (0 disables gathering; the default is 500µs).
// Gathering time is only ever spent while other writers are verifiably in
// flight, so serial workloads pay nothing.
func (s *Store) SetCommitBatching(maxBatch int, maxDelay time.Duration) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if maxBatch <= 0 {
		maxBatch = defaultMaxBatch
	}
	s.maxBatch = maxBatch
	if maxDelay < 0 {
		maxDelay = 0
	}
	s.maxDelay = maxDelay
}

// GroupCommitStats returns the commit batcher's size distribution.
func (s *Store) GroupCommitStats() GroupCommitStats { return s.batches.snapshot() }

// Apply performs one atomic batch mutation and returns how many triples
// changed. The call may be group-committed together with other concurrent
// mutations: the commit hook then runs once for the whole group, but this
// op keeps its own error result. Invalid triples in an OpAdd batch are
// skipped (matching AddAll); an OpReplace whose old triple is absent returns
// (0, nil) without reaching the hook.
func (s *Store) Apply(op Op) (int, error) {
	w := &commitWaiter{ops: []Op{op}, done: make(chan struct{})}
	s.submit(w)
	n := 0
	if len(w.ns) == 1 {
		n = w.ns[0]
	}
	return n, w.err
}

// ApplyBatch applies ops as one atomic commit: all-or-nothing, one
// generation bump however many ops land, and — through the group hook — one
// WAL record group. The returned slice holds per-op changed-triple counts.
// Any validation failure, MustExist miss, or hook refusal leaves the store
// untouched and reports the failing op via BatchError.
func (s *Store) ApplyBatch(ops []Op) ([]int, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	w := &commitWaiter{ops: ops, atomic: true, done: make(chan struct{})}
	s.submit(w)
	return w.ns, w.err
}

// Barrier blocks until every mutation submitted before the call has been
// committed and published. It rides the group-commit queue as an empty
// waiter: FIFO processing means the barrier's group cannot commit before
// any group enqueued ahead of it. The replication leader uses this to
// order a snapshot capture against the WAL position read just before it.
func (s *Store) Barrier() {
	w := &commitWaiter{done: make(chan struct{})}
	s.submit(w)
}

// BatchError reports which op of an atomic batch failed.
type BatchError struct {
	Index int
	Err   error
}

func (e *BatchError) Error() string { return fmt.Sprintf("op %d: %v", e.Index, e.Err) }

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *BatchError) Unwrap() error { return e.Err }

// submit enqueues w and blocks until some leader (possibly this goroutine)
// has committed it. Queue order is commit order is WAL order.
//
// The first writer to enqueue onto an idle batcher becomes the leader: it
// takes writeMu and commits groups until the queue is empty, then retires.
// Every other writer parks on its done channel — the leader closes it once
// the op is durable — so a committed writer's wake-up path is one channel
// receive, never a lock acquisition behind the next group's fsync.
func (s *Store) submit(w *commitWaiter) {
	s.inflight.Add(1)
	s.qmu.Lock()
	s.queue = append(s.queue, w)
	lead := !s.leading
	if lead {
		s.leading = true
	}
	s.qmu.Unlock()
	if !lead {
		<-w.done
		return
	}
	s.writeMu.Lock()
	for {
		s.lead()
		// Retire only on a verifiably empty queue; the check and the flag
		// clear are one qmu critical section, so a racing enqueuer either
		// sees leading=true (and parks) or finds the flag clear and elects
		// itself. No waiter is ever left behind.
		s.qmu.Lock()
		if len(s.queue) == 0 {
			s.leading = false
			s.qmu.Unlock()
			break
		}
		s.qmu.Unlock()
	}
	s.writeMu.Unlock()
	// The leader's own op was at the head of the first group it drained
	// (retirement guarantees the queue was empty when it enqueued), so done
	// is closed by now; the receive is an invariant check, not a wait.
	<-w.done
}

// drain takes up to max waiters off the queue.
func (s *Store) drain(max int) []*commitWaiter {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	n := len(s.queue)
	if n == 0 {
		return nil
	}
	if n > max {
		n = max
	}
	batch := s.queue[:n:n]
	s.queue = s.queue[n:]
	return batch
}

// lead runs one group commit. Caller holds writeMu.
func (s *Store) lead() {
	batch := s.drain(s.maxBatch)
	if len(batch) == 0 {
		return
	}
	if d := s.maxDelay; d > 0 && len(batch) < s.maxBatch {
		// Gather stragglers before paying the fsync, in the spirit of
		// Postgres's commit_delay/commit_siblings: keep collecting while other
		// writers are demonstrably in flight (inflight counts them), and give
		// just-committed writers a short grace to re-enter before concluding
		// the queue has dried up. A solitary writer exits this loop after a
		// few scheduler yields, so the delay never taxes serial workloads.
		// Only writeMu is held throughout: readers are unaffected and later
		// writers enqueue through qmu without waiting.
		deadline := time.Now().Add(d)
		idle := 0
		for len(batch) < s.maxBatch && idle < gatherGraceYields {
			more := s.drain(s.maxBatch - len(batch))
			if len(more) > 0 {
				batch = append(batch, more...)
				idle = 0
				continue
			}
			if int64(len(batch)) >= s.inflight.Load() {
				idle++
			}
			if !time.Now().Before(deadline) {
				break
			}
			runtime.Gosched()
		}
	}
	start := s.beginHold()
	s.commitGroup(batch)
	s.endHold(start)
	for _, w := range batch {
		close(w.done)
	}
	s.inflight.Add(-int64(len(batch)))
}

// commitGroup validates, logs and applies one group of commits, publishing
// at most one new version. Caller holds writeMu.
func (s *Store) commitGroup(batch []*commitWaiter) {
	base := s.cur.Load()
	b := newBuilder(base, s.dict)
	for _, w := range batch {
		s.prepareWaiter(b, w)
	}
	var groups [][]Op
	nOps := 0
	for _, w := range batch {
		if w.err == nil && len(w.eff) > 0 {
			groups = append(groups, w.eff)
			nOps += len(w.eff)
		}
	}
	if len(groups) > 0 && s.groupHook != nil {
		if err := s.groupHook(groups); err != nil {
			// The group could not be made durable: nothing is published and
			// every op in the group — including ones that individually
			// no-oped against speculative state — reports the failure.
			werr := fmt.Errorf("store: %w: %w", ErrCommitHook, err)
			for _, w := range batch {
				w.err = werr
				w.ns = nil
			}
			return
		}
	}
	if b.dirty {
		s.cur.Store(b.seal(base.epoch + 1))
		s.batches.record(nOps)
		if s.mBatchSize != nil {
			s.mBatchSize.Observe(float64(nOps))
		}
	}
}

// prepareWaiter validates w's ops against the builder and applies them
// speculatively, recording per-op change counts and the effective
// (no-op-filtered) ops for the commit hook. Any failure rolls the builder
// back to its pre-waiter state — rollback is O(1) because the builder's
// indexes are persistent values.
func (s *Store) prepareWaiter(b *builder, w *commitWaiter) {
	save := *b
	ns := make([]int, len(w.ops))
	var eff []Op
	for i := range w.ops {
		n, effOp, err := b.applyOp(w.ops[i])
		if err != nil {
			*b = save
			if w.atomic {
				err = &BatchError{Index: i, Err: err}
			}
			w.err = err
			return
		}
		ns[i] = n
		if effOp.Kind == 0 {
			continue
		}
		if s.hook != nil && !w.atomic {
			// Legacy per-op hook: consult it before acknowledging this op.
			// Hook call order across the group is exactly apply order.
			if err := s.hook(effOp); err != nil {
				*b = save
				w.err = fmt.Errorf("store: %w: %w", ErrCommitHook, err)
				return
			}
		}
		eff = append(eff, effOp)
	}
	if w.atomic && len(eff) > 0 {
		// One logical commit: a single generation bump and a single Gen
		// stamp however many sub-ops the batch carried.
		for i := range eff {
			eff[i].Gen = save.generation
		}
		b.generation = save.generation + 1
		if s.hook != nil {
			// With only a per-op hook available, log the batch op-by-op
			// after full validation. A mid-batch hook failure still rolls
			// the store back whole; durable deployments install the group
			// hook, which logs the batch as one record.
			for _, op := range eff {
				if err := s.hook(op); err != nil {
					*b = save
					w.err = fmt.Errorf("store: %w: %w", ErrCommitHook, err)
					return
				}
			}
		}
	}
	w.ns, w.eff = ns, eff
}

// Add inserts t, reporting whether it was new. Invalid triples are rejected.
// On a store with a commit hook, a hook failure also reports false; use
// Apply when the error matters.
func (s *Store) Add(t rdf.Triple) bool {
	if !t.Valid() {
		return false
	}
	n, _ := s.Apply(Op{Kind: OpAdd, Triples: []rdf.Triple{t}})
	return n > 0
}

// AddAll inserts the given triples, returning how many were new.
func (s *Store) AddAll(ts []rdf.Triple) int {
	n, _ := s.Apply(Op{Kind: OpAdd, Triples: ts})
	return n
}

// AddGraph inserts every triple of g, returning how many were new.
func (s *Store) AddGraph(g *rdf.Graph) int { return s.AddAll(g.Triples()) }

// Remove deletes t, reporting whether it was present.
func (s *Store) Remove(t rdf.Triple) bool {
	n, _ := s.Apply(Op{Kind: OpRemove, Triples: []rdf.Triple{t}})
	return n > 0
}

// Replace atomically swaps old for new under one generation bump, so
// concurrent readers never observe the intermediate "old removed, new not
// yet added" state and the query cache is invalidated exactly once.
// Returns false when old is absent (nothing is changed or logged).
func (s *Store) Replace(old, new rdf.Triple) (bool, error) {
	n, err := s.Apply(Op{Kind: OpReplace, Triples: []rdf.Triple{old, new}})
	return n > 0, err
}

// RemoveMatching deletes all triples matching the pattern (nil = wildcard)
// and returns how many were removed. The victims are materialized as a
// batch remove op so a commit hook sees the concrete triples.
func (s *Store) RemoveMatching(sub, pred, obj rdf.Term) int {
	victims := s.Match(sub, pred, obj)
	if len(victims) == 0 {
		return 0
	}
	n, _ := s.Apply(Op{Kind: OpRemove, Triples: victims})
	return n
}

// Clear removes every triple. Interned terms stay in the dictionary.
func (s *Store) Clear() {
	_, _ = s.Apply(Op{Kind: OpClear})
}

// Has reports whether t is in the store.
func (s *Store) Has(t rdf.Triple) bool { return s.View().Has(t) }

// HasIDs reports whether the fully-bound ID triple is in the store.
func (s *Store) HasIDs(sid, pid, oid ID) bool { return s.cur.Load().spo.has(sid, pid, oid) }

// Len returns the number of triples.
func (s *Store) Len() int { return s.cur.Load().size }

// Generation returns a counter that increases on every mutation.
func (s *Store) Generation() uint64 { return s.cur.Load().generation }

// Epoch returns the number of published versions: one group commit — however
// many concurrent mutations it carried — publishes exactly one.
func (s *Store) Epoch() uint64 { return s.cur.Load().epoch }

// Match returns all triples matching the pattern; nil positions are
// wildcards. The result is a fresh slice safe for the caller to keep.
func (s *Store) Match(sub, pred, obj rdf.Term) []rdf.Triple { return s.View().Match(sub, pred, obj) }

// Count returns the number of triples matching the pattern without
// materializing them.
func (s *Store) Count(sub, pred, obj rdf.Term) int { return s.View().Count(sub, pred, obj) }

// EstimateIDs returns the exact number of triples matching the ID pattern
// (NoID = wildcard) in O(1), using the per-branch cardinality counts.
// This is the planner's selectivity source.
func (s *Store) EstimateIDs(sid, pid, oid ID) int { return s.cur.Load().estimate(sid, pid, oid) }

// ForEachMatch streams matching triples to fn against the current version;
// fn returning false stops iteration early. The iteration is lock-free: fn
// may block or even mutate the store (it will not see its own writes).
func (s *Store) ForEachMatch(sub, pred, obj rdf.Term, fn func(rdf.Triple) bool) {
	s.View().ForEachMatch(sub, pred, obj, fn)
}

// ForEachMatchIDs streams matching ID triples to fn against the current
// version; NoID positions are wildcards and fn returning false stops early.
// This is the evaluator's join primitive: no terms are materialized.
func (s *Store) ForEachMatchIDs(sid, pid, oid ID, fn func(sid, pid, oid ID) bool) {
	s.cur.Load().forEachMatch(sid, pid, oid, fn)
}

// Objects returns the distinct objects of triples (sub, pred, *).
func (s *Store) Objects(sub, pred rdf.Term) []rdf.Term { return s.View().Objects(sub, pred) }

// FirstObject returns one object of (sub, pred, *), if any. When several
// objects exist the choice is unspecified.
func (s *Store) FirstObject(sub, pred rdf.Term) (rdf.Term, bool) {
	return s.View().FirstObject(sub, pred)
}

// Subjects returns the distinct subjects of triples (*, pred, obj).
func (s *Store) Subjects(pred, obj rdf.Term) []rdf.Term { return s.View().Subjects(pred, obj) }

// SubjectsOfType returns all subjects with rdf:type class.
func (s *Store) SubjectsOfType(class rdf.Term) []rdf.Term {
	return s.Subjects(rdf.RDFType, class)
}

// Triples returns every triple (fresh slice).
func (s *Store) Triples() []rdf.Triple { return s.View().Triples() }

// Graph copies the whole store into an rdf.Graph.
func (s *Store) Graph() *rdf.Graph {
	g := rdf.NewGraph()
	for _, t := range s.Triples() {
		g.Add(t)
	}
	return g
}

// Snapshot returns an independent store pinned to the current version.
// Because versions are immutable and updates path-copy, this is O(1):
// both stores share structure until either mutates, and mutating one never
// affects the other. The dictionary is shared (it only grows), so IDs remain
// valid across the snapshot boundary. The snapshot has no commit hook.
func (s *Store) Snapshot() *Store {
	out := NewWithDict(s.dict)
	out.cur.Store(s.cur.Load())
	return out
}

// Stats summarizes the store for diagnostics and the experiment reports.
type Stats struct {
	Triples    int
	Subjects   int
	Predicates int
	Objects    int
	DictTerms  int
}

// Stats computes summary statistics.
func (s *Store) Stats() Stats { return s.View().Stats() }

// String renders the store as sorted N-Triples (for tests and debugging).
func (s *Store) String() string {
	ts := s.Triples()
	lines := make([]string, len(ts))
	for i, t := range ts {
		lines[i] = t.String()
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// DescribeResource returns all triples with sub as subject, in a stable
// predicate-sorted order — used by the G-SACS result assembler.
func (s *Store) DescribeResource(sub rdf.Term) []rdf.Triple {
	return s.View().DescribeResource(sub)
}

// Validate checks internal index consistency; it is exercised by tests and
// the property-based suite. It returns an error describing the first
// inconsistency found.
func (s *Store) Validate() error { return s.View().Validate() }

// ---- builder ---------------------------------------------------------------

// builder accumulates the next version by path-copying from a base version.
// It is only ever touched by the commit leader under writeMu. Because its
// index fields are persistent values, copying the struct snapshots the whole
// builder state — prepareWaiter uses that for O(1) rollback.
type builder struct {
	dict       *Dict
	spo        tindex
	pos        tindex
	osp        tindex
	size       int
	generation uint64
	dirty      bool
}

func newBuilder(base *version, dict *Dict) *builder {
	return &builder{
		dict:       dict,
		spo:        base.spo,
		pos:        base.pos,
		osp:        base.osp,
		size:       base.size,
		generation: base.generation,
	}
}

// seal publishes the builder as an immutable version. The dictionary view is
// captured here — after every term of the version was interned — so the
// version resolves all of its own IDs.
func (b *builder) seal(epoch uint64) *version {
	return &version{
		spo:        b.spo,
		pos:        b.pos,
		osp:        b.osp,
		size:       b.size,
		generation: b.generation,
		epoch:      epoch,
		terms:      b.dict.View(),
	}
}

func (b *builder) lookupTriple(t rdf.Triple) ([3]ID, bool) {
	if t.Subject == nil || t.Predicate == nil || t.Object == nil {
		return [3]ID{}, false
	}
	sid, ok := b.dict.Lookup(t.Subject)
	if !ok {
		return [3]ID{}, false
	}
	pid, ok := b.dict.Lookup(t.Predicate)
	if !ok {
		return [3]ID{}, false
	}
	oid, ok := b.dict.Lookup(t.Object)
	if !ok {
		return [3]ID{}, false
	}
	return [3]ID{sid, pid, oid}, true
}

func (b *builder) has(t rdf.Triple) bool {
	ids, ok := b.lookupTriple(t)
	return ok && b.spo.has(ids[0], ids[1], ids[2])
}

func (b *builder) add(t rdf.Triple) bool {
	sid := b.dict.Intern(t.Subject)
	pid := b.dict.Intern(t.Predicate)
	oid := b.dict.Intern(t.Object)
	nspo, added := b.spo.with(sid, pid, oid)
	if !added {
		return false
	}
	b.spo = nspo
	b.pos, _ = b.pos.with(pid, oid, sid)
	b.osp, _ = b.osp.with(oid, sid, pid)
	b.size++
	b.generation++
	b.dirty = true
	return true
}

func (b *builder) removeIDs(sid, pid, oid ID) bool {
	nspo, removed := b.spo.without(sid, pid, oid)
	if !removed {
		return false
	}
	b.spo = nspo
	b.pos, _ = b.pos.without(pid, oid, sid)
	b.osp, _ = b.osp.without(oid, sid, pid)
	b.size--
	b.generation++
	b.dirty = true
	return true
}

func (b *builder) clear() {
	b.spo = tindex{}
	b.pos = tindex{}
	b.osp = tindex{}
	b.size = 0
	b.generation++
	b.dirty = true
}

// filter returns the subset of ts that would change the builder state:
// present triples when removing, valid absent ones when adding. The input
// slice is never mutated.
func (b *builder) filter(ts []rdf.Triple, present bool) []rdf.Triple {
	eff := make([]rdf.Triple, 0, len(ts))
	for _, t := range ts {
		ids, ok := b.lookupTriple(t)
		has := ok && b.spo.has(ids[0], ids[1], ids[2])
		if present && has {
			eff = append(eff, t)
		} else if !present && t.Valid() && !has {
			eff = append(eff, t)
		}
	}
	return eff
}

// applyOp validates op against the builder and applies it. It returns the
// number of triples changed and the effective op for the commit hook — Kind
// zero when the op was a no-op that must not be logged. Validation failures
// leave the builder untouched.
func (b *builder) applyOp(op Op) (int, Op, error) {
	var none Op
	switch op.Kind {
	case OpAdd:
		// Reduce the batch to triples that will actually land, so the commit
		// hook (and therefore the WAL) never records no-ops.
		op.Triples = b.filter(op.Triples, false)
		if len(op.Triples) == 0 {
			return 0, none, nil
		}
		op.Gen = b.generation
		n := 0
		for _, t := range op.Triples {
			if b.add(t) {
				n++
			}
		}
		return n, op, nil
	case OpRemove:
		op.Triples = b.filter(op.Triples, true)
		if len(op.Triples) == 0 {
			return 0, none, nil
		}
		op.Gen = b.generation
		n := 0
		for _, t := range op.Triples {
			if ids, ok := b.lookupTriple(t); ok && b.removeIDs(ids[0], ids[1], ids[2]) {
				n++
			}
		}
		return n, op, nil
	case OpReplace:
		if len(op.Triples) != 2 {
			return 0, none, fmt.Errorf("store: replace needs [old, new], got %d triples", len(op.Triples))
		}
		if !op.Triples[1].Valid() {
			return 0, none, fmt.Errorf("store: invalid replacement triple %v", op.Triples[1])
		}
		// Probe the old triple before logging: a replace of an absent triple
		// is a no-op (or, with MustExist, an error) and must not reach the
		// WAL.
		if !b.has(op.Triples[0]) {
			if op.MustExist {
				return 0, none, fmt.Errorf("store: %w: %v", ErrAbsent, op.Triples[0])
			}
			return 0, none, nil
		}
		op.Gen = b.generation
		gen := b.generation
		ids, _ := b.lookupTriple(op.Triples[0])
		b.removeIDs(ids[0], ids[1], ids[2])
		b.add(op.Triples[1])
		// A replace is one atomic mutation: readers and the query cache must
		// see exactly one epoch boundary, not a remove and an add.
		b.generation = gen + 1
		return 1, op, nil
	case OpClear:
		if b.size == 0 {
			return 0, none, nil
		}
		op.Gen = b.generation
		b.clear()
		return 0, op, nil
	default:
		return 0, none, fmt.Errorf("store: unknown op kind %d", op.Kind)
	}
}
