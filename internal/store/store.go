// Package store provides the indexed, concurrency-safe triple store that
// backs every GRDF dataset in the system: the ontology repository of the
// G-SACS architecture (Fig. 3 of the paper), the hydrology and chemical data
// stores of the Section 7.1 scenario, and the working set of the OWL
// reasoner.
//
// Storage is dictionary-encoded: every term is interned into a lock-striped
// Dict (term ⇄ dense uint32 ID) and the three hash indexes (SPO, POS, OSP)
// hold ID triples, so that any triple pattern with at least one bound
// position resolves without a full scan and joins can run entirely in ID
// space. Per-position cardinality counters ride along with the indexes and
// feed the SPARQL planner's selectivity estimates in O(1).
//
// Readers take a read lock and may run concurrently; writers are serialized.
// Snapshot() produces an independent copy (sharing the dictionary, which
// only grows) for long-running consumers such as the query cache.
package store

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/rdf"
)

// index is a two-level nested hash index over ID triples terminating in an
// ID set.
type index map[ID]map[ID]map[ID]struct{}

func (ix index) add(a, b, c ID) bool {
	m1, ok := ix[a]
	if !ok {
		m1 = make(map[ID]map[ID]struct{})
		ix[a] = m1
	}
	m2, ok := m1[b]
	if !ok {
		m2 = make(map[ID]struct{})
		m1[b] = m2
	}
	if _, dup := m2[c]; dup {
		return false
	}
	m2[c] = struct{}{}
	return true
}

func (ix index) remove(a, b, c ID) bool {
	m1, ok := ix[a]
	if !ok {
		return false
	}
	m2, ok := m1[b]
	if !ok {
		return false
	}
	if _, ok := m2[c]; !ok {
		return false
	}
	delete(m2, c)
	if len(m2) == 0 {
		delete(m1, b)
		if len(m1) == 0 {
			delete(ix, a)
		}
	}
	return true
}

// OpKind identifies the kind of a batch mutation Op.
type OpKind uint8

const (
	// OpAdd inserts a batch of triples.
	OpAdd OpKind = iota + 1
	// OpRemove deletes a batch of triples.
	OpRemove
	// OpReplace atomically swaps Triples[0] for Triples[1] under a single
	// generation bump.
	OpReplace
	// OpClear removes every triple.
	OpClear
)

func (k OpKind) String() string {
	switch k {
	case OpAdd:
		return "add"
	case OpRemove:
		return "remove"
	case OpReplace:
		return "replace"
	case OpClear:
		return "clear"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Op describes one atomic batch mutation. It is both the store's uniform
// mutation request and the unit the write-ahead log persists: the commit
// hook receives exactly this value before the store applies it.
type Op struct {
	Kind OpKind
	// Triples carries the batch for OpAdd/OpRemove; for OpReplace it holds
	// exactly [old, new]. Empty for OpClear.
	Triples []rdf.Triple
	// Gen is the store generation observed immediately before the op was
	// applied. Apply fills it in; callers leave it zero.
	Gen uint64
	// Ctx carries the request context of the mutation, if any, so a commit
	// hook can attach observability spans (WAL append/fsync) to the
	// originating trace. Nil means no request context (recovery, tests,
	// internal maintenance); hooks must treat it as context.Background().
	// Carrying a context in a struct is deliberate here, for the same reason
	// http.Request does it: the Op is the request.
	Ctx context.Context
}

// CommitHook observes every mutation before it is applied, while the write
// lock is held — hook call order is exactly apply order. Returning an error
// aborts the mutation (nothing is applied) and propagates to the caller:
// this is how the WAL layer refuses to acknowledge writes it could not make
// durable. The hook must not call back into the store (it would deadlock).
type CommitHook func(Op) error

// ErrCommitHook marks mutation failures caused by the commit hook refusing
// the batch (for a WAL hook: the write could not be made durable). Callers
// can errors.Is against it to tell persistence failures from validation
// errors.
var ErrCommitHook = errors.New("commit hook refused mutation")

// Store is an indexed triple store. The zero value is not usable; call New.
type Store struct {
	mu   sync.RWMutex
	dict *Dict
	hook CommitHook
	spo  index
	pos  index
	osp  index
	// Per-position cardinality counters: triples per bound subject /
	// predicate / object. The planner reads these through EstimateIDs.
	subjCard map[ID]int
	predCard map[ID]int
	objCard  map[ID]int
	size     int
	// generation increments on every successful mutation; the query cache
	// uses it for O(1) invalidation checks.
	generation uint64

	// mLockHold, when set by Instrument, samples write-lock hold times.
	// holdTick picks every lockSampleEvery-th mutation so the hot path pays
	// one atomic increment, not a clock read, per write.
	mLockHold *obs.Histogram
	holdTick  atomic.Uint64
}

// lockSampleEvery is the write-lock sampling period (power of two).
const lockSampleEvery = 16

// Instrument exports the store's vitals into reg: triple count, generation
// and dictionary size as callback gauges (zero hot-path cost) plus a sampled
// write-lock hold-time histogram. Call before concurrent use.
func (s *Store) Instrument(reg *obs.Registry) *Store {
	if reg == nil {
		return s
	}
	reg.GaugeFunc("grdf_store_triples", "Triples in the data store.",
		func() float64 { return float64(s.Len()) })
	reg.GaugeFunc("grdf_store_generation",
		"Mutation generation counter (cache invalidation epoch).",
		func() float64 { return float64(s.Generation()) })
	reg.GaugeFunc("grdf_store_dict_terms",
		"Distinct terms interned in the store dictionary.",
		func() float64 { return float64(s.DictLen()) })
	s.mLockHold = reg.Histogram("grdf_store_write_lock_hold_seconds",
		"Write-lock hold time, sampled every 16th mutation.", nil)
	return s
}

// beginHold starts timing this write-lock hold when it falls on the
// sampling grid; returns the zero time otherwise. Call with the write lock
// held.
func (s *Store) beginHold() time.Time {
	if s.mLockHold == nil {
		return time.Time{}
	}
	if s.holdTick.Add(1)%lockSampleEvery != 0 {
		return time.Time{}
	}
	return time.Now()
}

// endHold records a sampled hold begun by beginHold.
func (s *Store) endHold(start time.Time) {
	if !start.IsZero() {
		s.mLockHold.ObserveSince(start)
	}
}

// New returns an empty store with a fresh dictionary.
func New() *Store { return NewWithDict(NewDict()) }

// NewWithDict returns an empty store interning into dict. Sharing one
// dictionary across stores keeps their ID spaces compatible (Snapshot relies
// on this); the dictionary only grows, so sharing is always safe.
func NewWithDict(dict *Dict) *Store {
	return &Store{
		dict:     dict,
		spo:      make(index),
		pos:      make(index),
		osp:      make(index),
		subjCard: make(map[ID]int),
		predCard: make(map[ID]int),
		objCard:  make(map[ID]int),
	}
}

// FromGraph loads all triples of g into a fresh store.
func FromGraph(g *rdf.Graph) *Store {
	s := New()
	s.AddGraph(g)
	return s
}

// Dict exposes the store's interning dictionary.
func (s *Store) Dict() *Dict { return s.dict }

// DictLen returns the number of terms interned so far.
func (s *Store) DictLen() int { return s.dict.Len() }

// LookupID returns the dictionary ID of t without interning it; ok is false
// when t has never been stored.
func (s *Store) LookupID(t rdf.Term) (ID, bool) { return s.dict.Lookup(t) }

// Intern interns t into the store's dictionary and returns its ID. It does
// not add any triple.
func (s *Store) Intern(t rdf.Term) ID { return s.dict.Intern(t) }

// TermOf resolves a dictionary ID back to its term (nil for NoID).
func (s *Store) TermOf(id ID) rdf.Term { return s.dict.Term(id) }

// DictView captures a lock-free ID→term resolver over the current
// dictionary contents (see Dict.View).
func (s *Store) DictView() DictView { return s.dict.View() }

// SetCommitHook installs (or, with nil, removes) the mutation hook. Install
// it only while no mutations are in flight — typically right after recovery,
// before the store serves traffic.
func (s *Store) SetCommitHook(h CommitHook) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hook = h
}

// Apply performs one atomic batch mutation and returns how many triples
// changed. When a commit hook is installed it runs first, under the write
// lock; a hook error aborts the whole batch. Invalid triples in an
// OpAdd batch are skipped (matching AddAll); an OpReplace whose old triple
// is absent returns (0, nil) without invoking the hook.
func (s *Store) Apply(op Op) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.endHold(s.beginHold())
	return s.applyLocked(op)
}

func (s *Store) applyLocked(op Op) (int, error) {
	switch op.Kind {
	case OpAdd:
		// Reduce the batch to triples that will actually land, so the commit
		// hook (and therefore the WAL) never records no-ops.
		op.Triples = s.filterLocked(op.Triples, false)
	case OpRemove:
		op.Triples = s.filterLocked(op.Triples, true)
	case OpClear:
		if s.size == 0 {
			return 0, nil
		}
	case OpReplace:
		if len(op.Triples) != 2 {
			return 0, fmt.Errorf("store: replace needs [old, new], got %d triples", len(op.Triples))
		}
		if !op.Triples[1].Valid() {
			return 0, fmt.Errorf("store: invalid replacement triple %v", op.Triples[1])
		}
		// Probe the old triple before logging: a replace of an absent triple
		// is a no-op and must not reach the WAL.
		ids, ok := s.lookupTriple(op.Triples[0])
		if !ok {
			return 0, nil
		}
		if _, present := s.spo[ids[0]][ids[1]][ids[2]]; !present {
			return 0, nil
		}
	default:
		return 0, fmt.Errorf("store: unknown op kind %d", op.Kind)
	}
	if (op.Kind == OpAdd || op.Kind == OpRemove) && len(op.Triples) == 0 {
		return 0, nil
	}
	if s.hook != nil {
		op.Gen = s.generation
		if err := s.hook(op); err != nil {
			return 0, fmt.Errorf("store: %w: %w", ErrCommitHook, err)
		}
	}
	switch op.Kind {
	case OpAdd:
		n := 0
		for _, t := range op.Triples {
			if !t.Valid() {
				continue
			}
			if s.addLocked(t) {
				n++
			}
		}
		return n, nil
	case OpRemove:
		n := 0
		for _, t := range op.Triples {
			ids, ok := s.lookupTriple(t)
			if !ok {
				continue
			}
			if s.removeLocked(ids[0], ids[1], ids[2]) {
				n++
			}
		}
		return n, nil
	case OpReplace:
		return 1, s.replaceLocked(op.Triples[0], op.Triples[1])
	default: // OpClear
		s.clearLocked()
		return 0, nil
	}
}

// filterLocked returns the subset of ts that would change the store:
// present triples when removing, valid absent ones when adding. The input
// slice is never mutated.
func (s *Store) filterLocked(ts []rdf.Triple, present bool) []rdf.Triple {
	eff := make([]rdf.Triple, 0, len(ts))
	for _, t := range ts {
		ids, ok := s.lookupTriple(t)
		has := ok && func() bool { _, in := s.spo[ids[0]][ids[1]][ids[2]]; return in }()
		if present && has {
			eff = append(eff, t)
		} else if !present && t.Valid() && !has {
			eff = append(eff, t)
		}
	}
	return eff
}

// replaceLocked swaps old for new as one mutation epoch. The caller has
// already verified old is present.
func (s *Store) replaceLocked(old, new rdf.Triple) error {
	gen := s.generation
	ids, _ := s.lookupTriple(old)
	s.removeLocked(ids[0], ids[1], ids[2])
	s.addLocked(new)
	// A replace is one atomic mutation: readers and the query cache must see
	// exactly one epoch boundary, not a remove epoch and an add epoch.
	s.generation = gen + 1
	return nil
}

// Add inserts t, reporting whether it was new. Invalid triples are rejected.
// On a store with a commit hook, a hook failure also reports false; use
// Apply when the error matters.
func (s *Store) Add(t rdf.Triple) bool {
	if !t.Valid() {
		return false
	}
	n, _ := s.Apply(Op{Kind: OpAdd, Triples: []rdf.Triple{t}})
	return n > 0
}

func (s *Store) addLocked(t rdf.Triple) bool {
	sid := s.dict.Intern(t.Subject)
	pid := s.dict.Intern(t.Predicate)
	oid := s.dict.Intern(t.Object)
	if !s.spo.add(sid, pid, oid) {
		return false
	}
	s.pos.add(pid, oid, sid)
	s.osp.add(oid, sid, pid)
	s.subjCard[sid]++
	s.predCard[pid]++
	s.objCard[oid]++
	s.size++
	s.generation++
	return true
}

func (s *Store) removeLocked(sid, pid, oid ID) bool {
	if !s.spo.remove(sid, pid, oid) {
		return false
	}
	s.pos.remove(pid, oid, sid)
	s.osp.remove(oid, sid, pid)
	decCard(s.subjCard, sid)
	decCard(s.predCard, pid)
	decCard(s.objCard, oid)
	s.size--
	s.generation++
	return true
}

func decCard(m map[ID]int, id ID) {
	if n := m[id] - 1; n <= 0 {
		delete(m, id)
	} else {
		m[id] = n
	}
}

// AddAll inserts the given triples, returning how many were new.
func (s *Store) AddAll(ts []rdf.Triple) int {
	n, _ := s.Apply(Op{Kind: OpAdd, Triples: ts})
	return n
}

// AddGraph inserts every triple of g, returning how many were new.
func (s *Store) AddGraph(g *rdf.Graph) int { return s.AddAll(g.Triples()) }

// Remove deletes t, reporting whether it was present.
func (s *Store) Remove(t rdf.Triple) bool {
	n, _ := s.Apply(Op{Kind: OpRemove, Triples: []rdf.Triple{t}})
	return n > 0
}

// Replace atomically swaps old for new under one generation bump, so
// concurrent readers never observe the intermediate "old removed, new not
// yet added" state and the query cache is invalidated exactly once.
// Returns false when old is absent (nothing is changed or logged).
func (s *Store) Replace(old, new rdf.Triple) (bool, error) {
	n, err := s.Apply(Op{Kind: OpReplace, Triples: []rdf.Triple{old, new}})
	return n > 0, err
}

// lookupTriple resolves a triple's terms to IDs without interning.
func (s *Store) lookupTriple(t rdf.Triple) ([3]ID, bool) {
	if t.Subject == nil || t.Predicate == nil || t.Object == nil {
		return [3]ID{}, false
	}
	sid, ok := s.dict.Lookup(t.Subject)
	if !ok {
		return [3]ID{}, false
	}
	pid, ok := s.dict.Lookup(t.Predicate)
	if !ok {
		return [3]ID{}, false
	}
	oid, ok := s.dict.Lookup(t.Object)
	if !ok {
		return [3]ID{}, false
	}
	return [3]ID{sid, pid, oid}, true
}

// RemoveMatching deletes all triples matching the pattern (nil = wildcard)
// and returns how many were removed. The victims are materialized as a
// batch remove op so a commit hook sees the concrete triples.
func (s *Store) RemoveMatching(sub, pred, obj rdf.Term) int {
	victims := s.Match(sub, pred, obj)
	if len(victims) == 0 {
		return 0
	}
	n, _ := s.Apply(Op{Kind: OpRemove, Triples: victims})
	return n
}

// Has reports whether t is in the store.
func (s *Store) Has(t rdf.Triple) bool {
	ids, ok := s.lookupTriple(t)
	if !ok {
		return false
	}
	return s.HasIDs(ids[0], ids[1], ids[2])
}

// HasIDs reports whether the fully-bound ID triple is in the store.
func (s *Store) HasIDs(sid, pid, oid ID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.spo[sid][pid][oid]
	return ok
}

// Len returns the number of triples.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.size
}

// Generation returns a counter that increases on every mutation.
func (s *Store) Generation() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.generation
}

// lookupPattern resolves pattern terms to IDs (nil → NoID wildcard). ok is
// false when a non-nil term is absent from the dictionary, which means the
// pattern cannot match anything.
func (s *Store) lookupPattern(sub, pred, obj rdf.Term) (sid, pid, oid ID, ok bool) {
	if sub != nil {
		if sid, ok = s.dict.Lookup(sub); !ok {
			return 0, 0, 0, false
		}
	}
	if pred != nil {
		if pid, ok = s.dict.Lookup(pred); !ok {
			return 0, 0, 0, false
		}
	}
	if obj != nil {
		if oid, ok = s.dict.Lookup(obj); !ok {
			return 0, 0, 0, false
		}
	}
	return sid, pid, oid, true
}

// Match returns all triples matching the pattern; nil positions are
// wildcards. The result is a fresh slice safe for the caller to keep.
func (s *Store) Match(sub, pred, obj rdf.Term) []rdf.Triple {
	var out []rdf.Triple
	s.ForEachMatch(sub, pred, obj, func(t rdf.Triple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// Count returns the number of triples matching the pattern without
// materializing them.
func (s *Store) Count(sub, pred, obj rdf.Term) int {
	sid, pid, oid, ok := s.lookupPattern(sub, pred, obj)
	if !ok {
		return 0
	}
	n := 0
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.forEachMatchLocked(sid, pid, oid, func(ID, ID, ID) bool { n++; return true })
	return n
}

// EstimateIDs returns the exact number of triples matching the ID pattern
// (NoID = wildcard) in O(1), using the per-position cardinality counters.
// This is the planner's selectivity source.
func (s *Store) EstimateIDs(sid, pid, oid ID) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	switch {
	case sid != NoID && pid != NoID && oid != NoID:
		if _, ok := s.spo[sid][pid][oid]; ok {
			return 1
		}
		return 0
	case sid != NoID && pid != NoID:
		return len(s.spo[sid][pid])
	case pid != NoID && oid != NoID:
		return len(s.pos[pid][oid])
	case sid != NoID && oid != NoID:
		return len(s.osp[oid][sid])
	case sid != NoID:
		return s.subjCard[sid]
	case pid != NoID:
		return s.predCard[pid]
	case oid != NoID:
		return s.objCard[oid]
	default:
		return s.size
	}
}

// ForEachMatch streams matching triples to fn under a read lock; fn returning
// false stops iteration early. fn must not mutate the store (it would
// deadlock); collect first if mutation is needed.
func (s *Store) ForEachMatch(sub, pred, obj rdf.Term, fn func(rdf.Triple) bool) {
	sid, pid, oid, ok := s.lookupPattern(sub, pred, obj)
	if !ok {
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	// Capture the dictionary view under the store lock: every ID reachable
	// from the indexes is interned by now, so the view resolves them all.
	// Taken before the lock, a concurrent add could intern terms the view
	// misses, materializing triples with nil positions.
	view := s.dict.View()
	s.forEachMatchLocked(sid, pid, oid, func(a, b, c ID) bool {
		return fn(rdf.T(view.Term(a), view.Term(b), view.Term(c)))
	})
}

// ForEachMatchIDs streams matching ID triples to fn under a read lock;
// NoID positions are wildcards and fn returning false stops early. This is
// the evaluator's join primitive: no terms are materialized.
func (s *Store) ForEachMatchIDs(sid, pid, oid ID, fn func(sid, pid, oid ID) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.forEachMatchLocked(sid, pid, oid, fn)
}

// forEachMatchLocked dispatches the pattern to the index with the longest
// bound prefix. Callers hold at least a read lock.
func (s *Store) forEachMatchLocked(sid, pid, oid ID, fn func(sid, pid, oid ID) bool) {
	switch {
	case sid != NoID && pid != NoID && oid != NoID:
		if _, ok := s.spo[sid][pid][oid]; ok {
			fn(sid, pid, oid)
		}
	case sid != NoID && pid != NoID:
		for o := range s.spo[sid][pid] {
			if !fn(sid, pid, o) {
				return
			}
		}
	case sid != NoID && oid != NoID:
		for p := range s.osp[oid][sid] {
			if !fn(sid, p, oid) {
				return
			}
		}
	case pid != NoID && oid != NoID:
		for su := range s.pos[pid][oid] {
			if !fn(su, pid, oid) {
				return
			}
		}
	case sid != NoID:
		for p, objs := range s.spo[sid] {
			for o := range objs {
				if !fn(sid, p, o) {
					return
				}
			}
		}
	case pid != NoID:
		for o, subs := range s.pos[pid] {
			for su := range subs {
				if !fn(su, pid, o) {
					return
				}
			}
		}
	case oid != NoID:
		for su, preds := range s.osp[oid] {
			for p := range preds {
				if !fn(su, p, oid) {
					return
				}
			}
		}
	default:
		for su, m1 := range s.spo {
			for p, objs := range m1 {
				for o := range objs {
					if !fn(su, p, o) {
						return
					}
				}
			}
		}
	}
}

// Objects returns the distinct objects of triples (sub, pred, *).
func (s *Store) Objects(sub, pred rdf.Term) []rdf.Term {
	var out []rdf.Term
	s.ForEachMatch(sub, pred, nil, func(t rdf.Triple) bool {
		out = append(out, t.Object)
		return true
	})
	return out
}

// FirstObject returns one object of (sub, pred, *), if any. When several
// objects exist the choice is unspecified.
func (s *Store) FirstObject(sub, pred rdf.Term) (rdf.Term, bool) {
	var got rdf.Term
	s.ForEachMatch(sub, pred, nil, func(t rdf.Triple) bool {
		got = t.Object
		return false
	})
	return got, got != nil
}

// Subjects returns the distinct subjects of triples (*, pred, obj).
func (s *Store) Subjects(pred, obj rdf.Term) []rdf.Term {
	var out []rdf.Term
	s.ForEachMatch(nil, pred, obj, func(t rdf.Triple) bool {
		out = append(out, t.Subject)
		return true
	})
	return out
}

// SubjectsOfType returns all subjects with rdf:type class.
func (s *Store) SubjectsOfType(class rdf.Term) []rdf.Term {
	return s.Subjects(rdf.RDFType, class)
}

// Triples returns every triple (fresh slice).
func (s *Store) Triples() []rdf.Triple { return s.Match(nil, nil, nil) }

// Graph copies the whole store into an rdf.Graph.
func (s *Store) Graph() *rdf.Graph {
	g := rdf.NewGraph()
	for _, t := range s.Triples() {
		g.Add(t)
	}
	return g
}

// Snapshot returns an independent copy of the store. Mutating either side
// does not affect the other. The dictionary is shared (it only grows), so
// IDs remain valid across the snapshot boundary.
func (s *Store) Snapshot() *Store {
	out := NewWithDict(s.dict)
	out.AddAll(s.Triples())
	return out
}

// Clear removes every triple. Interned terms stay in the dictionary.
func (s *Store) Clear() {
	_, _ = s.Apply(Op{Kind: OpClear})
}

func (s *Store) clearLocked() {
	s.spo = make(index)
	s.pos = make(index)
	s.osp = make(index)
	s.subjCard = make(map[ID]int)
	s.predCard = make(map[ID]int)
	s.objCard = make(map[ID]int)
	s.size = 0
	s.generation++
}

// Stats summarizes the store for diagnostics and the experiment reports.
type Stats struct {
	Triples    int
	Subjects   int
	Predicates int
	Objects    int
	DictTerms  int
}

// Stats computes summary statistics.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Triples:    s.size,
		Subjects:   len(s.spo),
		Predicates: len(s.pos),
		Objects:    len(s.osp),
		DictTerms:  s.dict.Len(),
	}
}

// String renders the store as sorted N-Triples (for tests and debugging).
func (s *Store) String() string {
	ts := s.Triples()
	lines := make([]string, len(ts))
	for i, t := range ts {
		lines[i] = t.String()
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// DescribeResource returns all triples with sub as subject, in a stable
// predicate-sorted order — used by the G-SACS result assembler.
func (s *Store) DescribeResource(sub rdf.Term) []rdf.Triple {
	ts := s.Match(sub, nil, nil)
	sort.Slice(ts, func(i, j int) bool {
		pi, pj := ts[i].Predicate.String(), ts[j].Predicate.String()
		if pi != pj {
			return pi < pj
		}
		return ts[i].Object.String() < ts[j].Object.String()
	})
	return ts
}

// Validate checks internal index consistency; it is exercised by tests and
// the property-based suite. It returns an error describing the first
// inconsistency found.
func (s *Store) Validate() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	subjSeen := make(map[ID]int)
	predSeen := make(map[ID]int)
	objSeen := make(map[ID]int)
	for su, m1 := range s.spo {
		for p, objs := range m1 {
			for o := range objs {
				n++
				subjSeen[su]++
				predSeen[p]++
				objSeen[o]++
				if _, ok := s.pos[p][o][su]; !ok {
					return fmt.Errorf("store: POS missing %d %d %d", su, p, o)
				}
				if _, ok := s.osp[o][su][p]; !ok {
					return fmt.Errorf("store: OSP missing %d %d %d", su, p, o)
				}
				if s.dict.Term(su) == nil || s.dict.Term(p) == nil || s.dict.Term(o) == nil {
					return fmt.Errorf("store: dangling dictionary ID in %d %d %d", su, p, o)
				}
			}
		}
	}
	if n != s.size {
		return fmt.Errorf("store: size %d != indexed %d", s.size, n)
	}
	for id, want := range subjSeen {
		if s.subjCard[id] != want {
			return fmt.Errorf("store: subject cardinality %d != %d for id %d", s.subjCard[id], want, id)
		}
	}
	for id, want := range predSeen {
		if s.predCard[id] != want {
			return fmt.Errorf("store: predicate cardinality %d != %d for id %d", s.predCard[id], want, id)
		}
	}
	for id, want := range objSeen {
		if s.objCard[id] != want {
			return fmt.Errorf("store: object cardinality %d != %d for id %d", s.objCard[id], want, id)
		}
	}
	if len(subjSeen) != len(s.subjCard) || len(predSeen) != len(s.predCard) || len(objSeen) != len(s.objCard) {
		return fmt.Errorf("store: stale cardinality entries (subj %d/%d pred %d/%d obj %d/%d)",
			len(s.subjCard), len(subjSeen), len(s.predCard), len(predSeen), len(s.objCard), len(objSeen))
	}
	return nil
}
