package store

import (
	"math/rand"
	"testing"
)

// The persistent HAMT is the foundation every MVCC guarantee rests on: a
// version is immutable exactly as long as With/Without never touch shared
// nodes. These tests drive pmap and tindex against plain-map references
// through long randomized histories and re-verify earlier snapshots after
// every later mutation — a use-after-publish bug shows up as a drifted
// snapshot.

func TestPmapAgainstReferenceMap(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	var m *pmap[int]
	ref := map[ID]int{}

	type snap struct {
		m   *pmap[int]
		ref map[ID]int
	}
	var snaps []snap

	check := func(step int, m *pmap[int], ref map[ID]int) {
		if m.Len() != len(ref) {
			t.Fatalf("step %d: Len = %d, want %d", step, m.Len(), len(ref))
		}
		seen := 0
		m.Range(func(k ID, v int) bool {
			want, ok := ref[k]
			if !ok || want != v {
				t.Fatalf("step %d: Range yielded %d=%d, ref has %d,%v", step, k, v, want, ok)
			}
			seen++
			return true
		})
		if seen != len(ref) {
			t.Fatalf("step %d: Range yielded %d entries, want %d", step, seen, len(ref))
		}
		for k, want := range ref {
			if got, ok := m.Get(k); !ok || got != want {
				t.Fatalf("step %d: Get(%d) = %d,%v, want %d,true", step, k, got, ok, want)
			}
		}
	}

	for step := 0; step < 4000; step++ {
		// Keys cluster in a small space so collisions, overwrites and removes
		// of absent keys all happen; a few high keys exercise deep branches.
		key := ID(rng.Intn(256))
		if rng.Intn(16) == 0 {
			key = ID(rng.Uint32())
		}
		switch rng.Intn(3) {
		case 0, 1:
			val := rng.Intn(1000)
			_, hadRef := ref[key]
			next, added := m.With(key, val)
			if added == hadRef {
				t.Fatalf("step %d: With(%d) added=%v, ref had=%v", step, key, added, hadRef)
			}
			m = next
			ref[key] = val
		case 2:
			_, hadRef := ref[key]
			next, removed := m.Without(key)
			if removed != hadRef {
				t.Fatalf("step %d: Without(%d) removed=%v, ref had=%v", step, key, removed, hadRef)
			}
			m = next
			delete(ref, key)
		}
		if step%500 == 0 {
			refCopy := make(map[ID]int, len(ref))
			for k, v := range ref {
				refCopy[k] = v
			}
			snaps = append(snaps, snap{m, refCopy})
		}
	}
	check(4000, m, ref)

	// Persistence: every snapshot must still agree with the reference map it
	// was taken against, untouched by thousands of later mutations.
	for i, s := range snaps {
		check(i, s.m, s.ref)
	}
}

func TestPmapAbsentKeyLookups(t *testing.T) {
	var m *pmap[string]
	if _, ok := m.Get(7); ok {
		t.Error("Get on nil pmap reported a hit")
	}
	if next, removed := m.Without(7); removed || next.Len() != 0 {
		t.Error("Without on nil pmap claimed a removal")
	}
	m, _ = m.With(7, "a")
	if _, ok := m.Get(8); ok {
		t.Error("Get of absent sibling key reported a hit")
	}
	if next, added := m.With(7, "b"); added || next.Len() != 1 {
		t.Error("overwrite of existing key reported as insertion")
	}
	if got, _ := m.Get(7); got != "a" {
		t.Error("overwrite mutated the original map")
	}
}

func TestTindexAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	var ix tindex
	type key [3]ID
	ref := map[key]bool{}
	var snaps []struct {
		ix  tindex
		ref map[key]bool
	}

	check := func(step int, ix tindex, ref map[key]bool) {
		card := map[ID]int{}
		card2 := map[[2]ID]int{}
		firsts := map[ID]bool{}
		for k := range ref {
			if !ix.has(k[0], k[1], k[2]) {
				t.Fatalf("step %d: has(%v) = false for present key", step, k)
			}
			card[k[0]]++
			card2[[2]ID{k[0], k[1]}]++
			firsts[k[0]] = true
		}
		for a, want := range card {
			if got := ix.card(a); got != want {
				t.Fatalf("step %d: card(%d) = %d, want %d", step, a, got, want)
			}
		}
		for ab, want := range card2 {
			if got := ix.card2(ab[0], ab[1]); got != want {
				t.Fatalf("step %d: card2(%v) = %d, want %d", step, ab, got, want)
			}
		}
		if got := ix.keys(); got != len(firsts) {
			t.Fatalf("step %d: keys() = %d, want %d", step, got, len(firsts))
		}
	}

	for step := 0; step < 3000; step++ {
		k := key{ID(rng.Intn(16)), ID(rng.Intn(16)), ID(rng.Intn(32))}
		if rng.Intn(2) == 0 {
			next, added := ix.with(k[0], k[1], k[2])
			if added == ref[k] {
				t.Fatalf("step %d: with(%v) added=%v, ref had=%v", step, k, added, ref[k])
			}
			ix = next
			ref[k] = true
		} else {
			next, removed := ix.without(k[0], k[1], k[2])
			if removed != ref[k] {
				t.Fatalf("step %d: without(%v) removed=%v, ref had=%v", step, k, removed, ref[k])
			}
			ix = next
			delete(ref, k)
		}
		if ix.has(k[0], k[1], ID(999)) {
			t.Fatalf("step %d: has hit on absent third key", step)
		}
		if step%500 == 0 {
			refCopy := make(map[key]bool, len(ref))
			for kk := range ref {
				refCopy[kk] = true
			}
			snaps = append(snaps, struct {
				ix  tindex
				ref map[key]bool
			}{ix, refCopy})
		}
	}
	check(3000, ix, ref)
	for i, s := range snaps {
		check(i, s.ix, s.ref)
	}
}
