package store

import "math/bits"

// This file implements the persistent (immutable, structurally shared) map
// that backs the MVCC triple indexes. It is a hash-array-mapped-trie
// specialized for dense uint32 dictionary IDs: keys are consumed 5 bits at a
// time starting from the least significant bits, so the sequential IDs the
// dictionary hands out spread evenly across the fanout-32 nodes and the trie
// stays shallow (depth ≤ 7 for the full 32-bit key space).
//
// Updates path-copy: With/Without allocate only the nodes along the root →
// leaf path (≤ 7 nodes) and share everything else with the previous map, so
// publishing a new store version after a mutation is O(log n) allocation
// while every previously captured version stays valid and immutable forever.
// A nil *pmap is the canonical empty map; all methods are nil-safe.

const (
	pmBits   = 5
	pmFanout = 1 << pmBits
	pmMask   = pmFanout - 1
)

// unit is the value type used when a pmap is a set.
type unit = struct{}

// pentry is one slot of a pnode: either a leaf (key, val) or an interior
// subtree (node != nil; key/val are then unused).
type pentry[V any] struct {
	key  ID
	val  V
	node *pnode[V]
}

// pnode is a bitmap-compressed trie node: bit i of bitmap is set iff slot i
// is occupied, and entries holds the occupied slots packed in slot order.
type pnode[V any] struct {
	bitmap  uint32
	entries []pentry[V]
}

// pmap pairs a root node with a cached element count so Len is O(1) — the
// planner's cardinality estimates depend on that.
type pmap[V any] struct {
	root *pnode[V]
	n    int
}

// Len returns the number of entries. Nil-safe.
func (m *pmap[V]) Len() int {
	if m == nil {
		return 0
	}
	return m.n
}

// Get returns the value stored under key.
func (m *pmap[V]) Get(key ID) (V, bool) {
	var zero V
	if m == nil {
		return zero, false
	}
	nd, shift := m.root, uint(0)
	for nd != nil {
		bit := uint32(1) << ((key >> shift) & pmMask)
		if nd.bitmap&bit == 0 {
			return zero, false
		}
		e := &nd.entries[bits.OnesCount32(nd.bitmap&(bit-1))]
		if e.node == nil {
			if e.key == key {
				return e.val, true
			}
			return zero, false
		}
		nd = e.node
		shift += pmBits
	}
	return zero, false
}

// With returns a map with key bound to val, sharing structure with m.
// added reports whether key was absent before.
func (m *pmap[V]) With(key ID, val V) (*pmap[V], bool) {
	var root *pnode[V]
	n := 0
	if m != nil {
		root, n = m.root, m.n
	}
	nr, added := pnodeWith(root, key, val, 0)
	if added {
		n++
	}
	return &pmap[V]{root: nr, n: n}, added
}

// Without returns a map with key removed, sharing structure with m.
// removed reports whether key was present. Removing the last entry returns
// nil (the canonical empty map).
func (m *pmap[V]) Without(key ID) (*pmap[V], bool) {
	if m == nil {
		return nil, false
	}
	nr, removed := pnodeWithout(m.root, key, 0)
	if !removed {
		return m, false
	}
	if m.n == 1 {
		return nil, true
	}
	return &pmap[V]{root: nr, n: m.n - 1}, true
}

// Range calls fn for every entry until fn returns false; the return value
// reports whether iteration ran to completion. Order is unspecified but
// deterministic for a given map value.
func (m *pmap[V]) Range(fn func(ID, V) bool) bool {
	if m == nil {
		return true
	}
	return pnodeRange(m.root, fn)
}

func cloneEntries[V any](es []pentry[V]) []pentry[V] {
	out := make([]pentry[V], len(es))
	copy(out, es)
	return out
}

func pnodeWith[V any](nd *pnode[V], key ID, val V, shift uint) (*pnode[V], bool) {
	bit := uint32(1) << ((key >> shift) & pmMask)
	if nd == nil {
		return &pnode[V]{bitmap: bit, entries: []pentry[V]{{key: key, val: val}}}, true
	}
	idx := bits.OnesCount32(nd.bitmap & (bit - 1))
	if nd.bitmap&bit == 0 {
		ents := make([]pentry[V], len(nd.entries)+1)
		copy(ents, nd.entries[:idx])
		ents[idx] = pentry[V]{key: key, val: val}
		copy(ents[idx+1:], nd.entries[idx:])
		return &pnode[V]{bitmap: nd.bitmap | bit, entries: ents}, true
	}
	e := nd.entries[idx]
	if e.node != nil {
		child, added := pnodeWith(e.node, key, val, shift+pmBits)
		ents := cloneEntries(nd.entries)
		ents[idx].node = child
		return &pnode[V]{bitmap: nd.bitmap, entries: ents}, added
	}
	if e.key == key {
		ents := cloneEntries(nd.entries)
		ents[idx].val = val
		return &pnode[V]{bitmap: nd.bitmap, entries: ents}, false
	}
	// Two distinct keys share this slot: push both one level down. Distinct
	// 32-bit keys must diverge by shift 30, so the recursion terminates.
	ents := cloneEntries(nd.entries)
	ents[idx] = pentry[V]{node: pnodeTwo(e.key, e.val, key, val, shift+pmBits)}
	return &pnode[V]{bitmap: nd.bitmap, entries: ents}, true
}

// pnodeTwo builds the minimal subtree holding two distinct keys starting at
// shift.
func pnodeTwo[V any](k1 ID, v1 V, k2 ID, v2 V, shift uint) *pnode[V] {
	s1 := (k1 >> shift) & pmMask
	s2 := (k2 >> shift) & pmMask
	if s1 == s2 {
		child := pnodeTwo(k1, v1, k2, v2, shift+pmBits)
		return &pnode[V]{bitmap: 1 << s1, entries: []pentry[V]{{node: child}}}
	}
	e1 := pentry[V]{key: k1, val: v1}
	e2 := pentry[V]{key: k2, val: v2}
	if s1 > s2 {
		e1, e2 = e2, e1
	}
	return &pnode[V]{bitmap: 1<<s1 | 1<<s2, entries: []pentry[V]{e1, e2}}
}

func pnodeWithout[V any](nd *pnode[V], key ID, shift uint) (*pnode[V], bool) {
	if nd == nil {
		return nil, false
	}
	bit := uint32(1) << ((key >> shift) & pmMask)
	if nd.bitmap&bit == 0 {
		return nd, false
	}
	idx := bits.OnesCount32(nd.bitmap & (bit - 1))
	e := nd.entries[idx]
	if e.node != nil {
		child, removed := pnodeWithout(e.node, key, shift+pmBits)
		if !removed {
			return nd, false
		}
		if child == nil {
			return pnodeDrop(nd, bit, idx), true
		}
		ents := cloneEntries(nd.entries)
		if len(child.entries) == 1 && child.entries[0].node == nil {
			// Collapse a single-leaf subtree back into a leaf at this level
			// so lookups after heavy deletion stay shallow.
			ents[idx] = child.entries[0]
		} else {
			ents[idx].node = child
		}
		return &pnode[V]{bitmap: nd.bitmap, entries: ents}, true
	}
	if e.key != key {
		return nd, false
	}
	return pnodeDrop(nd, bit, idx), true
}

// pnodeDrop removes entry idx (slot bit) from nd, returning nil when nd
// becomes empty.
func pnodeDrop[V any](nd *pnode[V], bit uint32, idx int) *pnode[V] {
	if len(nd.entries) == 1 {
		return nil
	}
	ents := make([]pentry[V], len(nd.entries)-1)
	copy(ents, nd.entries[:idx])
	copy(ents[idx:], nd.entries[idx+1:])
	return &pnode[V]{bitmap: nd.bitmap &^ bit, entries: ents}
}

func pnodeRange[V any](nd *pnode[V], fn func(ID, V) bool) bool {
	if nd == nil {
		return true
	}
	for i := range nd.entries {
		e := &nd.entries[i]
		if e.node != nil {
			if !pnodeRange(e.node, fn) {
				return false
			}
		} else if !fn(e.key, e.val) {
			return false
		}
	}
	return true
}

// ---- Triple index over pmaps ------------------------------------------------

// l2 is one top-level branch of a triple index: the two inner levels plus
// the number of triples beneath this branch. That count is the per-position
// cardinality (triples per bound subject/predicate/object) the planner reads
// through EstimateIDs in O(1); keeping it inside the immutable branch means
// every pinned version carries its own consistent statistics.
type l2 struct {
	m    *pmap[*pmap[unit]]
	size int
}

// tindex is a persistent three-level triple index (e.g. S→P→O). The zero
// value is the empty index.
type tindex struct {
	m *pmap[*l2]
}

func (ix tindex) has(a, b, c ID) bool {
	br, ok := ix.m.Get(a)
	if !ok {
		return false
	}
	inner, ok := br.m.Get(b)
	if !ok {
		return false
	}
	_, ok = inner.Get(c)
	return ok
}

// card returns the number of triples under top-level key a.
func (ix tindex) card(a ID) int {
	br, ok := ix.m.Get(a)
	if !ok {
		return 0
	}
	return br.size
}

// card2 returns the number of triples under (a, b).
func (ix tindex) card2(a, b ID) int {
	br, ok := ix.m.Get(a)
	if !ok {
		return 0
	}
	inner, _ := br.m.Get(b)
	return inner.Len()
}

// keys returns the number of distinct top-level keys.
func (ix tindex) keys() int { return ix.m.Len() }

// with returns the index with (a, b, c) present; added reports whether the
// triple was new. The receiver is unchanged.
func (ix tindex) with(a, b, c ID) (tindex, bool) {
	var bm *pmap[*pmap[unit]]
	sz := 0
	if br, ok := ix.m.Get(a); ok {
		bm, sz = br.m, br.size
	}
	inner, _ := bm.Get(b)
	ni, added := inner.With(c, unit{})
	if !added {
		return ix, false
	}
	nbm, _ := bm.With(b, ni)
	nm, _ := ix.m.With(a, &l2{m: nbm, size: sz + 1})
	return tindex{m: nm}, true
}

// without returns the index with (a, b, c) removed; removed reports whether
// it was present. Empty branches are dropped so key counts stay exact.
func (ix tindex) without(a, b, c ID) (tindex, bool) {
	br, ok := ix.m.Get(a)
	if !ok {
		return ix, false
	}
	inner, ok := br.m.Get(b)
	if !ok {
		return ix, false
	}
	ni, removed := inner.Without(c)
	if !removed {
		return ix, false
	}
	if br.size == 1 {
		nm, _ := ix.m.Without(a)
		return tindex{m: nm}, true
	}
	var nbm *pmap[*pmap[unit]]
	if ni == nil {
		nbm, _ = br.m.Without(b)
	} else {
		nbm, _ = br.m.With(b, ni)
	}
	nm, _ := ix.m.With(a, &l2{m: nbm, size: br.size - 1})
	return tindex{m: nm}, true
}
