package store

import (
	"fmt"
	"sort"

	"repro/internal/rdf"
)

// version is one immutable MVCC revision of the store: the three persistent
// triple indexes plus the statistics and dictionary view that describe them.
// A version is never mutated after publication — writers build the next
// version by path-copying (see builder) and publish it with one atomic
// pointer store, so any number of readers can hold any number of versions
// for any length of time without blocking anyone.
type version struct {
	spo tindex // subject → predicate → object
	pos tindex // predicate → object → subject
	osp tindex // object → subject → predicate
	// size is the triple count of this version.
	size int
	// generation is the mutation counter at this version; it increases on
	// every effective mutation and is the cache-invalidation epoch.
	generation uint64
	// epoch counts version publications. Because one group commit publishes
	// one version for many enqueued mutations, generation−epoch growth shows
	// how much write amortization the commit batcher achieves.
	epoch uint64
	// terms resolves every ID reachable from the indexes. It is captured
	// after all of the version's terms were interned, so resolution through
	// a pinned version never misses.
	terms DictView
}

// forEachMatch streams ID triples matching the pattern (NoID = wildcard) to
// fn, dispatching to the index with the longest bound prefix. It reads only
// immutable state and therefore needs no locks.
func (v *version) forEachMatch(sid, pid, oid ID, fn func(sid, pid, oid ID) bool) {
	switch {
	case sid != NoID && pid != NoID && oid != NoID:
		if v.spo.has(sid, pid, oid) {
			fn(sid, pid, oid)
		}
	case sid != NoID && pid != NoID:
		if br, ok := v.spo.m.Get(sid); ok {
			if inner, ok := br.m.Get(pid); ok {
				inner.Range(func(o ID, _ unit) bool { return fn(sid, pid, o) })
			}
		}
	case sid != NoID && oid != NoID:
		if br, ok := v.osp.m.Get(oid); ok {
			if inner, ok := br.m.Get(sid); ok {
				inner.Range(func(p ID, _ unit) bool { return fn(sid, p, oid) })
			}
		}
	case pid != NoID && oid != NoID:
		if br, ok := v.pos.m.Get(pid); ok {
			if inner, ok := br.m.Get(oid); ok {
				inner.Range(func(su ID, _ unit) bool { return fn(su, pid, oid) })
			}
		}
	case sid != NoID:
		if br, ok := v.spo.m.Get(sid); ok {
			br.m.Range(func(p ID, objs *pmap[unit]) bool {
				return objs.Range(func(o ID, _ unit) bool { return fn(sid, p, o) })
			})
		}
	case pid != NoID:
		if br, ok := v.pos.m.Get(pid); ok {
			br.m.Range(func(o ID, subs *pmap[unit]) bool {
				return subs.Range(func(su ID, _ unit) bool { return fn(su, pid, o) })
			})
		}
	case oid != NoID:
		if br, ok := v.osp.m.Get(oid); ok {
			br.m.Range(func(su ID, preds *pmap[unit]) bool {
				return preds.Range(func(p ID, _ unit) bool { return fn(su, p, oid) })
			})
		}
	default:
		v.spo.m.Range(func(su ID, br *l2) bool {
			return br.m.Range(func(p ID, objs *pmap[unit]) bool {
				return objs.Range(func(o ID, _ unit) bool { return fn(su, p, o) })
			})
		})
	}
}

// estimate returns the exact number of triples matching the ID pattern in
// O(1) using the per-branch subtree counts.
func (v *version) estimate(sid, pid, oid ID) int {
	switch {
	case sid != NoID && pid != NoID && oid != NoID:
		if v.spo.has(sid, pid, oid) {
			return 1
		}
		return 0
	case sid != NoID && pid != NoID:
		return v.spo.card2(sid, pid)
	case pid != NoID && oid != NoID:
		return v.pos.card2(pid, oid)
	case sid != NoID && oid != NoID:
		return v.osp.card2(oid, sid)
	case sid != NoID:
		return v.spo.card(sid)
	case pid != NoID:
		return v.pos.card(pid)
	case oid != NoID:
		return v.osp.card(oid)
	default:
		return v.size
	}
}

// Reader is the read surface shared by *Store and StoreView. *Store reads
// always see the latest published version; a StoreView is pinned to one
// version forever. The SPARQL planner and executor are written against this
// interface so a whole query evaluates against a single consistent revision.
type Reader interface {
	Len() int
	Generation() uint64
	Has(t rdf.Triple) bool
	HasIDs(sid, pid, oid ID) bool
	EstimateIDs(sid, pid, oid ID) int
	LookupID(t rdf.Term) (ID, bool)
	TermOf(id ID) rdf.Term
	DictView() DictView
	Match(sub, pred, obj rdf.Term) []rdf.Triple
	Count(sub, pred, obj rdf.Term) int
	ForEachMatch(sub, pred, obj rdf.Term, fn func(rdf.Triple) bool)
	ForEachMatchIDs(sid, pid, oid ID, fn func(sid, pid, oid ID) bool)
	Objects(sub, pred rdf.Term) []rdf.Term
	FirstObject(sub, pred rdf.Term) (rdf.Term, bool)
	Subjects(pred, obj rdf.Term) []rdf.Term
	SubjectsOfType(class rdf.Term) []rdf.Term
	Triples() []rdf.Triple
	DescribeResource(sub rdf.Term) []rdf.Triple
	// View pins the reader's current version: for *Store the latest published
	// one, for a StoreView itself. Acquiring a view is one atomic load — O(1),
	// never blocking, and holdable indefinitely without stalling writers.
	View() StoreView
}

// StoreView is a pinned, immutable view of one store version. The zero value
// is an empty view. All methods are lock-free: they read only immutable
// version state, so a view can be held across an arbitrarily long query (or
// forever) while writers keep publishing new versions.
type StoreView struct {
	v    *version
	dict *Dict
}

var emptyVersion = &version{}

func (sv StoreView) ver() *version {
	if sv.v == nil {
		return emptyVersion
	}
	return sv.v
}

// Len returns the number of triples in the pinned version.
func (sv StoreView) Len() int { return sv.ver().size }

// Generation returns the mutation generation of the pinned version.
func (sv StoreView) Generation() uint64 { return sv.ver().generation }

// Epoch returns the publication epoch of the pinned version.
func (sv StoreView) Epoch() uint64 { return sv.ver().epoch }

// View returns the view itself (it is already pinned).
func (sv StoreView) View() StoreView { return sv }

// DictView returns the dictionary view captured with the version.
func (sv StoreView) DictView() DictView { return sv.ver().terms }

// TermOf resolves a dictionary ID through the pinned dictionary view.
func (sv StoreView) TermOf(id ID) rdf.Term { return sv.ver().terms.Term(id) }

// LookupID resolves a term to its dictionary ID without interning. Terms
// interned after the view was pinned may resolve to IDs, but such IDs match
// nothing in the pinned indexes, which is the correct answer for this view.
func (sv StoreView) LookupID(t rdf.Term) (ID, bool) {
	if sv.dict == nil {
		return NoID, false
	}
	return sv.dict.Lookup(t)
}

func (sv StoreView) lookupTriple(t rdf.Triple) ([3]ID, bool) {
	if t.Subject == nil || t.Predicate == nil || t.Object == nil {
		return [3]ID{}, false
	}
	sid, ok := sv.LookupID(t.Subject)
	if !ok {
		return [3]ID{}, false
	}
	pid, ok := sv.LookupID(t.Predicate)
	if !ok {
		return [3]ID{}, false
	}
	oid, ok := sv.LookupID(t.Object)
	if !ok {
		return [3]ID{}, false
	}
	return [3]ID{sid, pid, oid}, true
}

// lookupPattern resolves pattern terms to IDs (nil → NoID wildcard); ok is
// false when a non-nil term is unknown, meaning the pattern cannot match.
func (sv StoreView) lookupPattern(sub, pred, obj rdf.Term) (sid, pid, oid ID, ok bool) {
	if sub != nil {
		if sid, ok = sv.LookupID(sub); !ok {
			return 0, 0, 0, false
		}
	}
	if pred != nil {
		if pid, ok = sv.LookupID(pred); !ok {
			return 0, 0, 0, false
		}
	}
	if obj != nil {
		if oid, ok = sv.LookupID(obj); !ok {
			return 0, 0, 0, false
		}
	}
	return sid, pid, oid, true
}

// Has reports whether t is in the pinned version.
func (sv StoreView) Has(t rdf.Triple) bool {
	ids, ok := sv.lookupTriple(t)
	if !ok {
		return false
	}
	return sv.HasIDs(ids[0], ids[1], ids[2])
}

// HasIDs reports whether the fully-bound ID triple is in the pinned version.
func (sv StoreView) HasIDs(sid, pid, oid ID) bool { return sv.ver().spo.has(sid, pid, oid) }

// EstimateIDs returns the exact number of triples matching the ID pattern
// (NoID = wildcard) in O(1); this is the planner's selectivity source.
func (sv StoreView) EstimateIDs(sid, pid, oid ID) int { return sv.ver().estimate(sid, pid, oid) }

// ForEachMatchIDs streams matching ID triples to fn; NoID positions are
// wildcards and fn returning false stops early. Lock-free: fn may take as
// long as it likes (and may even mutate the owning store — it will not see
// its own writes in this view).
func (sv StoreView) ForEachMatchIDs(sid, pid, oid ID, fn func(sid, pid, oid ID) bool) {
	sv.ver().forEachMatch(sid, pid, oid, fn)
}

// ForEachMatch streams matching triples to fn; fn returning false stops
// early.
func (sv StoreView) ForEachMatch(sub, pred, obj rdf.Term, fn func(rdf.Triple) bool) {
	sid, pid, oid, ok := sv.lookupPattern(sub, pred, obj)
	if !ok {
		return
	}
	v := sv.ver()
	v.forEachMatch(sid, pid, oid, func(a, b, c ID) bool {
		return fn(rdf.T(v.terms.Term(a), v.terms.Term(b), v.terms.Term(c)))
	})
}

// Match returns all triples matching the pattern; nil positions are
// wildcards.
func (sv StoreView) Match(sub, pred, obj rdf.Term) []rdf.Triple {
	var out []rdf.Triple
	sv.ForEachMatch(sub, pred, obj, func(t rdf.Triple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// Count returns the number of triples matching the pattern without
// materializing them.
func (sv StoreView) Count(sub, pred, obj rdf.Term) int {
	sid, pid, oid, ok := sv.lookupPattern(sub, pred, obj)
	if !ok {
		return 0
	}
	n := 0
	sv.ver().forEachMatch(sid, pid, oid, func(ID, ID, ID) bool { n++; return true })
	return n
}

// Objects returns the distinct objects of triples (sub, pred, *).
func (sv StoreView) Objects(sub, pred rdf.Term) []rdf.Term {
	var out []rdf.Term
	sv.ForEachMatch(sub, pred, nil, func(t rdf.Triple) bool {
		out = append(out, t.Object)
		return true
	})
	return out
}

// FirstObject returns one object of (sub, pred, *), if any.
func (sv StoreView) FirstObject(sub, pred rdf.Term) (rdf.Term, bool) {
	var got rdf.Term
	sv.ForEachMatch(sub, pred, nil, func(t rdf.Triple) bool {
		got = t.Object
		return false
	})
	return got, got != nil
}

// Subjects returns the distinct subjects of triples (*, pred, obj).
func (sv StoreView) Subjects(pred, obj rdf.Term) []rdf.Term {
	var out []rdf.Term
	sv.ForEachMatch(nil, pred, obj, func(t rdf.Triple) bool {
		out = append(out, t.Subject)
		return true
	})
	return out
}

// SubjectsOfType returns all subjects with rdf:type class.
func (sv StoreView) SubjectsOfType(class rdf.Term) []rdf.Term {
	return sv.Subjects(rdf.RDFType, class)
}

// Triples returns every triple of the pinned version (fresh slice).
func (sv StoreView) Triples() []rdf.Triple { return sv.Match(nil, nil, nil) }

// DescribeResource returns all triples with sub as subject, in a stable
// predicate-sorted order — used by the G-SACS result assembler.
func (sv StoreView) DescribeResource(sub rdf.Term) []rdf.Triple {
	ts := sv.Match(sub, nil, nil)
	sort.Slice(ts, func(i, j int) bool {
		pi, pj := ts[i].Predicate.String(), ts[j].Predicate.String()
		if pi != pj {
			return pi < pj
		}
		return ts[i].Object.String() < ts[j].Object.String()
	})
	return ts
}

// Stats computes summary statistics for the pinned version.
func (sv StoreView) Stats() Stats {
	v := sv.ver()
	dictTerms := v.terms.Len()
	if sv.dict != nil {
		dictTerms = sv.dict.Len()
	}
	return Stats{
		Triples:    v.size,
		Subjects:   v.spo.keys(),
		Predicates: v.pos.keys(),
		Objects:    v.osp.keys(),
		DictTerms:  dictTerms,
	}
}

// Validate checks index consistency of the pinned version: SPO/POS/OSP
// agreement, per-branch cardinality counts, size, and dictionary resolution.
func (sv StoreView) Validate() error {
	v := sv.ver()
	n := 0
	var err error
	v.forEachMatch(NoID, NoID, NoID, func(su, p, o ID) bool {
		n++
		if !v.pos.has(p, o, su) {
			err = fmt.Errorf("store: POS missing %d %d %d", su, p, o)
			return false
		}
		if !v.osp.has(o, su, p) {
			err = fmt.Errorf("store: OSP missing %d %d %d", su, p, o)
			return false
		}
		if v.terms.Term(su) == nil || v.terms.Term(p) == nil || v.terms.Term(o) == nil {
			err = fmt.Errorf("store: dangling dictionary ID in %d %d %d", su, p, o)
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	if n != v.size {
		return fmt.Errorf("store: size %d != indexed %d", v.size, n)
	}
	for _, ix := range []struct {
		name string
		ix   tindex
	}{{"SPO", v.spo}, {"POS", v.pos}, {"OSP", v.osp}} {
		total := 0
		ok := ix.ix.m.Range(func(key ID, br *l2) bool {
			got := 0
			br.m.Range(func(_ ID, inner *pmap[unit]) bool {
				got += inner.Len()
				return true
			})
			if got != br.size {
				err = fmt.Errorf("store: %s cardinality %d != %d for id %d", ix.name, br.size, got, key)
				return false
			}
			if got == 0 {
				err = fmt.Errorf("store: %s empty branch for id %d", ix.name, key)
				return false
			}
			total += got
			return true
		})
		if !ok {
			return err
		}
		if total != v.size {
			return fmt.Errorf("store: %s total %d != size %d", ix.name, total, v.size)
		}
	}
	return nil
}
