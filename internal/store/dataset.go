package store

import (
	"sort"
	"sync"

	"repro/internal/rdf"
)

// Dataset is a collection of named graphs plus a default graph, mirroring the
// SPARQL dataset model. The Section 7.1 scenario loads the hydrology store
// and the chemical store as two named graphs behind one middleware dataset.
type Dataset struct {
	mu     sync.RWMutex
	def    *Store
	graphs map[rdf.IRI]*Store
}

// NewDataset returns a dataset with an empty default graph.
func NewDataset() *Dataset {
	return &Dataset{def: New(), graphs: make(map[rdf.IRI]*Store)}
}

// Default returns the default graph store.
func (d *Dataset) Default() *Store {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.def
}

// Graph returns the named graph, creating it if create is true. The second
// result reports whether the graph existed (or was created).
func (d *Dataset) Graph(name rdf.IRI, create bool) (*Store, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	g, ok := d.graphs[name]
	if !ok && create {
		g = New()
		d.graphs[name] = g
		ok = true
	}
	return g, ok
}

// SetGraph installs s as the named graph, replacing any previous content.
func (d *Dataset) SetGraph(name rdf.IRI, s *Store) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.graphs[name] = s
}

// DropGraph removes the named graph, reporting whether it existed.
func (d *Dataset) DropGraph(name rdf.IRI) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.graphs[name]
	delete(d.graphs, name)
	return ok
}

// GraphNames returns the names of all named graphs, sorted.
func (d *Dataset) GraphNames() []rdf.IRI {
	d.mu.RLock()
	defer d.mu.RUnlock()
	names := make([]rdf.IRI, 0, len(d.graphs))
	for n := range d.graphs {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	return names
}

// Union merges the default graph and every named graph into a single fresh
// store — the "layered view" the paper's middleware constructs before policy
// filtering.
func (d *Dataset) Union() *Store {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := New()
	out.AddAll(d.def.Triples())
	for _, g := range d.graphs {
		out.AddAll(g.Triples())
	}
	return out
}

// Len returns the total triple count across all graphs.
func (d *Dataset) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n := d.def.Len()
	for _, g := range d.graphs {
		n += g.Len()
	}
	return n
}
