package store

import (
	"sync"

	"repro/internal/rdf"
)

// ID is a dense dictionary identifier for an interned term. IDs start at 1;
// NoID (0) is reserved and doubles as the wildcard in the ID-level match API.
type ID uint32

// NoID is the zero ID: "no term" on writes, wildcard on ID-level reads.
const NoID ID = 0

// dictStripes is the number of lock stripes in a Dict (power of two).
const dictStripes = 64

// Dict is a two-way, lock-striped interning dictionary mapping RDF terms to
// dense uint32 IDs and back. The term→ID direction is sharded by rdf.HashTerm
// so concurrent interning from many goroutines contends on different stripes;
// the ID→term direction is an append-only slice guarded by one RWMutex whose
// hot read path is a single slice-header load (see view).
//
// A Dict only grows: removing a triple from a store does not un-intern its
// terms. That is the standard trade-off of dictionary-encoded stores — IDs
// stay stable for the life of the dictionary, so indexes, caches and query
// plans can hold them without invalidation protocols.
type Dict struct {
	stripes [dictStripes]dictStripe

	mu    sync.RWMutex
	terms []rdf.Term // terms[id-1] is the term for id
}

type dictStripe struct {
	mu  sync.RWMutex
	ids map[rdf.Term]ID
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	d := &Dict{}
	for i := range d.stripes {
		d.stripes[i].ids = make(map[rdf.Term]ID)
	}
	return d
}

func (d *Dict) stripe(t rdf.Term) *dictStripe {
	return &d.stripes[rdf.HashTerm(t)%dictStripes]
}

// Intern returns the ID for t, assigning a fresh one when t is new.
func (d *Dict) Intern(t rdf.Term) ID {
	s := d.stripe(t)
	s.mu.RLock()
	id, ok := s.ids[t]
	s.mu.RUnlock()
	if ok {
		return id
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if id, ok = s.ids[t]; ok { // raced with another interner
		return id
	}
	d.mu.Lock()
	d.terms = append(d.terms, t)
	id = ID(len(d.terms))
	d.mu.Unlock()
	s.ids[t] = id
	return id
}

// Lookup returns the ID for t without interning; ok is false when t has
// never been interned.
func (d *Dict) Lookup(t rdf.Term) (ID, bool) {
	s := d.stripe(t)
	s.mu.RLock()
	id, ok := s.ids[t]
	s.mu.RUnlock()
	return id, ok
}

// Term returns the term for id, or nil for NoID and out-of-range IDs.
func (d *Dict) Term(id ID) rdf.Term {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id == NoID || int(id) > len(d.terms) {
		return nil
	}
	return d.terms[id-1]
}

// Len returns the number of interned terms.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.terms)
}

// View captures a read-only snapshot of the ID→term mapping. The slice is
// append-only and entries are immutable once written, so a view taken at
// time T resolves every ID interned before T without further locking — the
// evaluator grabs one view per BGP and materializes solutions through it.
func (d *Dict) View() DictView {
	d.mu.RLock()
	terms := d.terms
	d.mu.RUnlock()
	return DictView{terms: terms}
}

// DictView is a lock-free resolver over a Dict snapshot (see Dict.View).
type DictView struct {
	terms []rdf.Term
}

// Len returns the number of terms resolvable through the view.
func (v DictView) Len() int { return len(v.terms) }

// Term resolves id, or nil for NoID and IDs interned after the view was
// taken.
func (v DictView) Term(id ID) rdf.Term {
	if id == NoID || int(id) > len(v.terms) {
		return nil
	}
	return v.terms[id-1]
}
