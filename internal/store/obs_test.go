package store

import (
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/rdf"
)

func TestStoreInstrumentation(t *testing.T) {
	reg := obs.NewRegistry()
	s := New().Instrument(reg)

	base := rdf.IRI("http://example.org/")
	p := base + "p"
	for i := 0; i < 40; i++ {
		s.Add(rdf.T(base+rdf.IRI(rune('a'+i%26)), p, rdf.NewString("v")))
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "grdf_store_triples 26") {
		t.Errorf("triple gauge wrong:\n%s", out)
	}
	if !strings.Contains(out, "grdf_store_generation 26") {
		t.Errorf("generation gauge wrong:\n%s", out)
	}
	// 40 mutations at a 1-in-16 sampling rate: at least two holds observed.
	h := reg.Histogram("grdf_store_write_lock_hold_seconds", "", nil)
	if h.Count() < 2 {
		t.Errorf("lock-hold samples = %d", h.Count())
	}

	// Un-instrumented stores skip sampling entirely.
	s2 := New()
	for i := 0; i < 64; i++ {
		s2.Add(rdf.T(base+"x", p, rdf.NewInteger(int64(i))))
	}
	if s2.holdTick.Load() != 0 {
		t.Error("sampling ticked without instrumentation")
	}
}
