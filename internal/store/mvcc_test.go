package store

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rdf"
)

// Tests for the MVCC + group-commit contract: atomic batches move the store
// by exactly one generation, any failure leaves it byte-for-byte untouched,
// pinned views stay frozen while writers churn, and concurrent commits fuse
// into groups so a durable hook runs far fewer times than there are ops.

func mvccTriple(i int) rdf.Triple {
	return rdf.T(
		rdf.IRI(fmt.Sprintf("http://example.org/mvcc/s%d", i)),
		rdf.IRI("http://example.org/mvcc/p"),
		rdf.NewString(fmt.Sprintf("v%d", i)),
	)
}

func TestApplyBatchSingleGeneration(t *testing.T) {
	s := New()
	s.Add(mvccTriple(0))
	gen, epoch := s.Generation(), s.Epoch()

	ns, err := s.ApplyBatch([]Op{
		{Kind: OpAdd, Triples: []rdf.Triple{mvccTriple(1), mvccTriple(2)}},
		{Kind: OpRemove, Triples: []rdf.Triple{mvccTriple(0)}},
		{Kind: OpReplace, Triples: []rdf.Triple{mvccTriple(1), mvccTriple(3)}},
	})
	if err != nil {
		t.Fatalf("ApplyBatch: %v", err)
	}
	if want := []int{2, 1, 1}; len(ns) != 3 || ns[0] != want[0] || ns[1] != want[1] || ns[2] != want[2] {
		t.Errorf("changed counts = %v, want %v", ns, want)
	}
	if got := s.Generation(); got != gen+1 {
		t.Errorf("generation advanced %d -> %d, want exactly one bump", gen, got)
	}
	if got := s.Epoch(); got != epoch+1 {
		t.Errorf("epoch advanced %d -> %d, want exactly one publish", epoch, got)
	}
	if s.Has(mvccTriple(0)) || s.Has(mvccTriple(1)) || !s.Has(mvccTriple(2)) || !s.Has(mvccTriple(3)) {
		t.Errorf("batch applied wrong state: %v", s.Triples())
	}
}

func TestApplyBatchMustExistRollsBackWhole(t *testing.T) {
	s := New()
	s.Add(mvccTriple(0))
	gen, size := s.Generation(), s.Len()

	ns, err := s.ApplyBatch([]Op{
		{Kind: OpAdd, Triples: []rdf.Triple{mvccTriple(1)}},
		{Kind: OpReplace, Triples: []rdf.Triple{mvccTriple(8), mvccTriple(9)}, MustExist: true},
	})
	if !errors.Is(err, ErrAbsent) {
		t.Fatalf("err = %v, want ErrAbsent", err)
	}
	var be *BatchError
	if !errors.As(err, &be) || be.Index != 1 {
		t.Fatalf("err = %v, want BatchError at index 1", err)
	}
	if ns != nil {
		t.Errorf("failed batch returned counts %v", ns)
	}
	if s.Generation() != gen || s.Len() != size || s.Has(mvccTriple(1)) {
		t.Errorf("failed batch leaked state: gen %d->%d, len %d->%d",
			gen, s.Generation(), size, s.Len())
	}
}

func TestGroupHookErrorFailsEveryOp(t *testing.T) {
	s := New()
	s.Add(mvccTriple(0))
	gen := s.Generation()
	boom := errors.New("disk full")
	s.SetGroupCommitHook(func([][]Op) error { return boom })

	if _, err := s.Apply(Op{Kind: OpAdd, Triples: []rdf.Triple{mvccTriple(1)}}); !errors.Is(err, ErrCommitHook) || !errors.Is(err, boom) {
		t.Fatalf("Apply err = %v, want ErrCommitHook wrapping the hook error", err)
	}
	if _, err := s.ApplyBatch([]Op{{Kind: OpRemove, Triples: []rdf.Triple{mvccTriple(0)}}}); !errors.Is(err, ErrCommitHook) {
		t.Fatalf("ApplyBatch err = %v, want ErrCommitHook", err)
	}
	if s.Generation() != gen || s.Has(mvccTriple(1)) || !s.Has(mvccTriple(0)) {
		t.Error("hook-refused mutations leaked into the published version")
	}
}

// TestReadersNeverBlockOnCommitHook pins the headline MVCC property: a writer
// parked inside a slow commit hook (an fsync, say) must not delay readers,
// because reads touch only the last published version.
func TestReadersNeverBlockOnCommitHook(t *testing.T) {
	s := New()
	s.Add(mvccTriple(0))
	entered := make(chan struct{})
	release := make(chan struct{})
	s.SetGroupCommitHook(func([][]Op) error {
		close(entered)
		<-release
		return nil
	})

	done := make(chan struct{})
	go func() {
		s.Apply(Op{Kind: OpAdd, Triples: []rdf.Triple{mvccTriple(1)}})
		close(done)
	}()
	<-entered

	// The writer now holds the commit lock inside the hook. Every read path
	// must still complete promptly against the old version.
	readDone := make(chan struct{})
	go func() {
		v := s.View()
		if !v.Has(mvccTriple(0)) || v.Has(mvccTriple(1)) {
			t.Error("reader saw unpublished state")
		}
		if s.Len() != 1 || len(s.Match(nil, nil, nil)) != 1 {
			t.Error("read path saw unpublished state")
		}
		s.Snapshot()
		close(readDone)
	}()
	select {
	case <-readDone:
	case <-time.After(5 * time.Second):
		t.Fatal("reader blocked behind a writer parked in the commit hook")
	}
	close(release)
	<-done
	if !s.Has(mvccTriple(1)) {
		t.Error("write was lost after hook release")
	}
}

// TestGroupCommitFusesConcurrentWriters: with a hook slow enough that a queue
// forms, concurrent single-op writers must be committed in groups — the hook
// runs per group, so its call count stays well below the op count.
func TestGroupCommitFusesConcurrentWriters(t *testing.T) {
	s := New()
	var hookCalls, hookOps atomic.Int64
	s.SetGroupCommitHook(func(groups [][]Op) error {
		hookCalls.Add(1)
		for _, g := range groups {
			hookOps.Add(int64(len(g)))
		}
		time.Sleep(200 * time.Microsecond) // a stand-in fsync
		return nil
	})

	const writers, perWriter = 8, 30
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := s.Apply(Op{Kind: OpAdd,
					Triples: []rdf.Triple{mvccTriple(w*perWriter + i)}}); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	const total = writers * perWriter
	if s.Len() != total {
		t.Fatalf("store holds %d triples, want %d", s.Len(), total)
	}
	if got := hookOps.Load(); got != total {
		t.Errorf("hook saw %d ops, want %d", got, total)
	}
	if calls := hookCalls.Load(); calls >= total {
		t.Errorf("hook ran %d times for %d ops: no group formed", calls, total)
	}
	st := s.GroupCommitStats()
	if st.Ops != total || st.Groups != uint64(hookCalls.Load()) {
		t.Errorf("GroupCommitStats = %+v, want ops=%d groups=%d", st, total, hookCalls.Load())
	}
	if st.MaxBatch < 2 {
		t.Errorf("MaxBatch = %d, want >= 2 under %d concurrent writers", st.MaxBatch, writers)
	}
	var histSum uint64
	for _, c := range st.Hist {
		histSum += c
	}
	if histSum != st.Groups {
		t.Errorf("histogram sums to %d groups, want %d", histSum, st.Groups)
	}
}

// TestMVCCStress is the -race workhorse: pinned views must stay internally
// consistent and frozen while writers add, remove and batch concurrently.
func TestMVCCStress(t *testing.T) {
	s := New()
	for i := 0; i < 64; i++ {
		s.Add(mvccTriple(i))
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tr := mvccTriple(64 + w*1000 + i%97)
				if i%2 == 0 {
					s.Apply(Op{Kind: OpAdd, Triples: []rdf.Triple{tr}})
				} else {
					s.Apply(Op{Kind: OpRemove, Triples: []rdf.Triple{tr}})
				}
				if i%17 == 0 {
					s.ApplyBatch([]Op{
						{Kind: OpAdd, Triples: []rdf.Triple{mvccTriple(5000 + w)}},
						{Kind: OpRemove, Triples: []rdf.Triple{mvccTriple(5000 + w)}},
					})
				}
			}
		}(w)
	}

	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		v := s.View()
		n := v.Len()
		// The 64 seed triples are never touched by the writers; every pinned
		// view must contain all of them.
		for i := 0; i < 64; i += 7 {
			if !v.Has(mvccTriple(i)) {
				t.Fatal("pinned view lost a stable triple")
			}
		}
		if got := len(v.Triples()); got != n {
			t.Fatalf("view Len() = %d but materialized %d triples: torn read", n, got)
		}
		if v.Len() != n {
			t.Fatal("pinned view changed size under concurrent writers")
		}
	}
	close(stop)
	wg.Wait()
	if err := s.Validate(); err != nil {
		t.Fatalf("final state inconsistent: %v", err)
	}
}
