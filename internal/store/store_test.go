package store

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/rdf"
)

func tr(s, p, o string) rdf.Triple {
	return rdf.T(rdf.IRI("http://e/"+s), rdf.IRI("http://e/"+p), rdf.IRI("http://e/"+o))
}

func TestAddHasRemove(t *testing.T) {
	s := New()
	a := tr("s1", "p1", "o1")
	if !s.Add(a) {
		t.Fatal("Add new = false")
	}
	if s.Add(a) {
		t.Error("Add duplicate = true")
	}
	if !s.Has(a) {
		t.Error("Has = false")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
	if !s.Remove(a) {
		t.Error("Remove = false")
	}
	if s.Remove(a) {
		t.Error("Remove absent = true")
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d", s.Len())
	}
	if err := s.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestAddRejectsInvalid(t *testing.T) {
	s := New()
	if s.Add(rdf.Triple{Subject: rdf.NewString("x"), Predicate: rdf.IRI("http://e/p"), Object: rdf.IRI("http://e/o")}) {
		t.Error("literal subject accepted")
	}
}

func TestMatchAllPatterns(t *testing.T) {
	s := New()
	s.Add(tr("s1", "p1", "o1"))
	s.Add(tr("s1", "p1", "o2"))
	s.Add(tr("s1", "p2", "o1"))
	s.Add(tr("s2", "p1", "o1"))

	cases := []struct {
		sub, pred, obj rdf.Term
		want           int
	}{
		{rdf.IRI("http://e/s1"), rdf.IRI("http://e/p1"), rdf.IRI("http://e/o1"), 1},
		{rdf.IRI("http://e/s1"), rdf.IRI("http://e/p1"), nil, 2},
		{rdf.IRI("http://e/s1"), nil, rdf.IRI("http://e/o1"), 2},
		{nil, rdf.IRI("http://e/p1"), rdf.IRI("http://e/o1"), 2},
		{rdf.IRI("http://e/s1"), nil, nil, 3},
		{nil, rdf.IRI("http://e/p1"), nil, 3},
		{nil, nil, rdf.IRI("http://e/o1"), 3},
		{nil, nil, nil, 4},
		{rdf.IRI("http://e/zz"), nil, nil, 0},
	}
	for i, c := range cases {
		if got := len(s.Match(c.sub, c.pred, c.obj)); got != c.want {
			t.Errorf("case %d: Match = %d, want %d", i, got, c.want)
		}
		if got := s.Count(c.sub, c.pred, c.obj); got != c.want {
			t.Errorf("case %d: Count = %d, want %d", i, got, c.want)
		}
	}
}

func TestForEachMatchEarlyStop(t *testing.T) {
	s := New()
	for i := 0; i < 100; i++ {
		s.Add(tr("s", "p", fmt.Sprintf("o%d", i)))
	}
	n := 0
	s.ForEachMatch(nil, nil, nil, func(rdf.Triple) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestRemoveMatching(t *testing.T) {
	s := New()
	s.Add(tr("s1", "p1", "o1"))
	s.Add(tr("s1", "p1", "o2"))
	s.Add(tr("s2", "p1", "o1"))
	if got := s.RemoveMatching(rdf.IRI("http://e/s1"), nil, nil); got != 2 {
		t.Errorf("RemoveMatching = %d", got)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
	if err := s.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestObjectsSubjectsFirst(t *testing.T) {
	s := New()
	s.Add(tr("s1", "p1", "o1"))
	s.Add(tr("s1", "p1", "o2"))
	if got := s.Objects(rdf.IRI("http://e/s1"), rdf.IRI("http://e/p1")); len(got) != 2 {
		t.Errorf("Objects = %v", got)
	}
	if _, ok := s.FirstObject(rdf.IRI("http://e/s1"), rdf.IRI("http://e/p1")); !ok {
		t.Error("FirstObject not found")
	}
	if _, ok := s.FirstObject(rdf.IRI("http://e/zz"), rdf.IRI("http://e/p1")); ok {
		t.Error("FirstObject found for absent subject")
	}
	if got := s.Subjects(rdf.IRI("http://e/p1"), rdf.IRI("http://e/o1")); len(got) != 1 {
		t.Errorf("Subjects = %v", got)
	}
}

func TestSubjectsOfType(t *testing.T) {
	s := New()
	feature := rdf.IRI(rdf.GRDFNS + "Feature")
	s.Add(rdf.T(rdf.IRI("http://e/a"), rdf.RDFType, feature))
	s.Add(rdf.T(rdf.IRI("http://e/b"), rdf.RDFType, feature))
	if got := s.SubjectsOfType(feature); len(got) != 2 {
		t.Errorf("SubjectsOfType = %v", got)
	}
}

func TestSnapshotIndependence(t *testing.T) {
	s := New()
	s.Add(tr("s1", "p1", "o1"))
	snap := s.Snapshot()
	s.Add(tr("s2", "p2", "o2"))
	if snap.Len() != 1 {
		t.Errorf("snapshot grew: %d", snap.Len())
	}
	snap.Add(tr("s3", "p3", "o3"))
	if s.Len() != 2 {
		t.Errorf("store affected by snapshot mutation: %d", s.Len())
	}
}

func TestGenerationAdvances(t *testing.T) {
	s := New()
	g0 := s.Generation()
	s.Add(tr("s", "p", "o"))
	if s.Generation() == g0 {
		t.Error("generation unchanged after Add")
	}
	g1 := s.Generation()
	s.Add(tr("s", "p", "o")) // duplicate: no mutation
	if s.Generation() != g1 {
		t.Error("generation changed on duplicate Add")
	}
	s.Remove(tr("s", "p", "o"))
	if s.Generation() == g1 {
		t.Error("generation unchanged after Remove")
	}
}

func TestClearAndStats(t *testing.T) {
	s := New()
	s.Add(tr("s1", "p1", "o1"))
	s.Add(tr("s2", "p1", "o1"))
	st := s.Stats()
	if st.Triples != 2 || st.Subjects != 2 || st.Predicates != 1 || st.Objects != 1 {
		t.Errorf("Stats = %+v", st)
	}
	s.Clear()
	if s.Len() != 0 {
		t.Errorf("Len after Clear = %d", s.Len())
	}
	if err := s.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestDescribeResourceSorted(t *testing.T) {
	s := New()
	sub := rdf.IRI("http://e/s")
	s.Add(rdf.T(sub, rdf.IRI("http://e/z"), rdf.NewString("1")))
	s.Add(rdf.T(sub, rdf.IRI("http://e/a"), rdf.NewString("2")))
	s.Add(rdf.T(sub, rdf.IRI("http://e/a"), rdf.NewString("1")))
	d := s.DescribeResource(sub)
	if len(d) != 3 {
		t.Fatalf("Describe len = %d", len(d))
	}
	if d[0].Predicate != rdf.IRI("http://e/a") || d[2].Predicate != rdf.IRI("http://e/z") {
		t.Errorf("not sorted: %v", d)
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Add(tr(fmt.Sprintf("s%d", w), "p", fmt.Sprintf("o%d", i)))
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Count(nil, rdf.IRI("http://e/p"), nil)
			}
		}()
	}
	wg.Wait()
	if s.Len() != 800 {
		t.Errorf("Len = %d, want 800", s.Len())
	}
	if err := s.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestFromGraphAndGraphRoundTrip(t *testing.T) {
	g := rdf.GraphOf(tr("a", "b", "c"), tr("d", "e", "f"))
	s := FromGraph(g)
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	back := s.Graph()
	if !back.Equal(g) {
		t.Error("graph round trip lost triples")
	}
}

// Property: after an arbitrary interleaving of adds and removes the indexes
// stay mutually consistent and Len agrees with Match(nil,nil,nil).
func TestQuickIndexConsistency(t *testing.T) {
	f := func(ops []uint16) bool {
		s := New()
		for _, op := range ops {
			t := tr(
				fmt.Sprintf("s%d", op%7),
				fmt.Sprintf("p%d", (op>>3)%5),
				fmt.Sprintf("o%d", (op>>6)%11),
			)
			if op%2 == 0 {
				s.Add(t)
			} else {
				s.Remove(t)
			}
		}
		if err := s.Validate(); err != nil {
			return false
		}
		return s.Len() == len(s.Match(nil, nil, nil))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDatasetGraphs(t *testing.T) {
	d := NewDataset()
	hydro := rdf.IRI("http://grdf.org/data/hydrology")
	chem := rdf.IRI("http://grdf.org/data/chemical")

	g, ok := d.Graph(hydro, true)
	if !ok || g == nil {
		t.Fatal("create graph failed")
	}
	g.Add(tr("stream1", "p", "o"))

	if _, ok := d.Graph(chem, false); ok {
		t.Error("absent graph reported present")
	}
	cs := New()
	cs.Add(tr("site1", "p", "o"))
	d.SetGraph(chem, cs)

	names := d.GraphNames()
	if len(names) != 2 || names[0] != chem || names[1] != hydro {
		t.Errorf("GraphNames = %v", names)
	}

	d.Default().Add(tr("def", "p", "o"))
	u := d.Union()
	if u.Len() != 3 {
		t.Errorf("Union len = %d", u.Len())
	}
	if d.Len() != 3 {
		t.Errorf("Dataset len = %d", d.Len())
	}

	if !d.DropGraph(chem) || d.DropGraph(chem) {
		t.Error("DropGraph semantics wrong")
	}
}
