package admission

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// testConfig is a small, fast base configuration; tests override fields.
func testConfig() Config {
	return Config{
		InitialLimit:  2,
		MinLimit:      1,
		MaxLimit:      64,
		MaxQueue:      8,
		QueueDeadline: 200 * time.Millisecond,
		LatencyTarget: 50 * time.Millisecond,
		AdjustEvery:   10 * time.Millisecond,
		MinSamples:    3,
	}
}

func mustAdmit(t *testing.T, c *Controller, class Class, pri Priority) func() {
	t.Helper()
	release, err := c.Admit(context.Background(), class, pri)
	if err != nil {
		t.Fatalf("Admit(%s, %s): %v", class, pri, err)
	}
	return release
}

func TestAdmitFastPathAndRelease(t *testing.T) {
	c := NewController(testConfig())
	r1 := mustAdmit(t, c, ClassQuery, Normal)
	r2 := mustAdmit(t, c, ClassQuery, Normal)
	st := c.Status()
	if got := st.Classes[ClassQuery].InFlight; got != 2 {
		t.Fatalf("in-flight = %d, want 2", got)
	}
	// Class pools are independent: the query pool being full must not
	// affect mutate admissions.
	rm := mustAdmit(t, c, ClassMutate, High)
	rm()
	r1()
	r2()
	if got := c.Status().Classes[ClassQuery].InFlight; got != 0 {
		t.Fatalf("in-flight after release = %d, want 0", got)
	}
	if got := c.Status().Classes[ClassQuery].Admitted; got != 2 {
		t.Fatalf("admitted = %d, want 2", got)
	}
}

func TestShedImmediatelyWithQueueDisabled(t *testing.T) {
	cfg := testConfig()
	cfg.InitialLimit = 1
	cfg.MaxQueue = NoQueue
	c := NewController(cfg)
	release := mustAdmit(t, c, ClassQuery, Normal)
	defer release()

	_, err := c.Admit(context.Background(), ClassQuery, Normal)
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("want ShedError, got %v", err)
	}
	if shed.Reason != "queue_full" {
		t.Fatalf("reason = %q, want queue_full", shed.Reason)
	}
	if shed.RetryAfter < time.Second {
		t.Fatalf("RetryAfter = %s, want >= 1s floor", shed.RetryAfter)
	}
	if got := c.Status().Classes[ClassQuery].Shed; got != 1 {
		t.Fatalf("shed count = %d, want 1", got)
	}
}

func TestQueuedRequestGrantedOnRelease(t *testing.T) {
	cfg := testConfig()
	cfg.InitialLimit = 1
	c := NewController(cfg)
	release := mustAdmit(t, c, ClassQuery, Normal)

	got := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		r2, err := c.Admit(context.Background(), ClassQuery, Normal)
		if err == nil {
			r2()
		}
		got <- err
	}()
	// Wait until the second request is actually queued before releasing.
	deadline := time.Now().Add(2 * time.Second)
	for c.Status().Classes[ClassQuery].Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	release()
	wg.Wait()
	if err := <-got; err != nil {
		t.Fatalf("queued request should have been granted, got %v", err)
	}
}

func TestDeadlinePrecheckShedsBeforeQueueing(t *testing.T) {
	cfg := testConfig()
	cfg.InitialLimit = 1
	// Estimated wait for the first queued request is one service time
	// (LatencyTarget before any samples) = 100ms > the 20ms deadline, so
	// the arrival must shed instantly instead of parking to time out.
	cfg.LatencyTarget = 100 * time.Millisecond
	cfg.QueueDeadline = 20 * time.Millisecond
	c := NewController(cfg)
	release := mustAdmit(t, c, ClassQuery, Normal)
	defer release()

	start := time.Now()
	_, err := c.Admit(context.Background(), ClassQuery, Normal)
	elapsed := time.Since(start)
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("want ShedError, got %v", err)
	}
	if shed.Reason != "queue_deadline" {
		t.Fatalf("reason = %q, want queue_deadline", shed.Reason)
	}
	if elapsed > 10*time.Millisecond {
		t.Fatalf("immediate shed took %s — it queued instead", elapsed)
	}
}

func TestQueueDeadlineExpiry(t *testing.T) {
	cfg := testConfig()
	cfg.InitialLimit = 1
	cfg.LatencyTarget = time.Millisecond // keeps the wait estimate under the deadline
	cfg.QueueDeadline = 30 * time.Millisecond
	c := NewController(cfg)
	release := mustAdmit(t, c, ClassQuery, Normal)
	defer release()

	_, err := c.Admit(context.Background(), ClassQuery, Normal)
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("want ShedError, got %v", err)
	}
	if shed.Reason != "queue_deadline" {
		t.Fatalf("reason = %q, want queue_deadline", shed.Reason)
	}
}

func TestHighPriorityEvictsBestEffort(t *testing.T) {
	cfg := testConfig()
	cfg.InitialLimit = 1
	cfg.MaxQueue = 1
	cfg.LatencyTarget = time.Millisecond
	cfg.QueueDeadline = 2 * time.Second
	c := NewController(cfg)
	release := mustAdmit(t, c, ClassQuery, Normal)

	bestEffortErr := make(chan error, 1)
	go func() {
		_, err := c.Admit(context.Background(), ClassQuery, BestEffort)
		bestEffortErr <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for c.Status().Classes[ClassQuery].Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("best-effort request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// The queue is full; a High arrival must displace the BestEffort
	// waiter rather than be refused.
	highDone := make(chan error, 1)
	go func() {
		r, err := c.Admit(context.Background(), ClassQuery, High)
		if err == nil {
			r()
		}
		highDone <- err
	}()

	if err := <-bestEffortErr; err == nil {
		t.Fatal("best-effort waiter should have been evicted")
	} else {
		var shed *ShedError
		if !errors.As(err, &shed) || shed.Reason != "evicted" {
			t.Fatalf("want evicted ShedError, got %v", err)
		}
	}
	release()
	if err := <-highDone; err != nil {
		t.Fatalf("high-priority request should have been granted, got %v", err)
	}

	// The inverse must not hold: a BestEffort arrival cannot evict peers.
	release2 := mustAdmit(t, c, ClassQuery, Normal)
	defer release2()
	queued := make(chan struct{})
	go func() {
		close(queued)
		c.Admit(context.Background(), ClassQuery, Normal) //nolint:errcheck
	}()
	<-queued
	deadline = time.Now().Add(2 * time.Second)
	for c.Status().Classes[ClassQuery].Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("normal request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	_, err := c.Admit(context.Background(), ClassQuery, BestEffort)
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("want ShedError for best-effort arrival on a full queue, got %v", err)
	}
}

func TestContextCancelWhileQueuedIsNotAShed(t *testing.T) {
	cfg := testConfig()
	cfg.InitialLimit = 1
	cfg.LatencyTarget = time.Millisecond
	cfg.QueueDeadline = 5 * time.Second
	c := NewController(cfg)
	release := mustAdmit(t, c, ClassQuery, Normal)
	defer release()

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Admit(ctx, ClassQuery, Normal)
		errCh <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for c.Status().Classes[ClassQuery].Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if got := c.Status().Classes[ClassQuery].Shed; got != 0 {
		t.Fatalf("a client hanging up is not a shed; counted %d", got)
	}
	if got := c.Status().Classes[ClassQuery].Queued; got != 0 {
		t.Fatalf("queued = %d after cancel, want 0", got)
	}
}

func TestSignalBreachForcesBackoff(t *testing.T) {
	var breached atomic.Bool
	cfg := testConfig()
	cfg.InitialLimit = 32
	cfg.AdjustEvery = time.Millisecond
	cfg.Signal = func() Signal { return Signal{FastBurnBreached: breached.Load()} }
	c := NewController(cfg)

	breached.Store(true)
	// Drive adjustments: each release past the period runs one AIMD step.
	for i := 0; i < 20; i++ {
		mustAdmit(t, c, ClassView, Normal)()
		time.Sleep(2 * time.Millisecond)
	}
	st := c.Status().Classes[ClassView]
	if st.Limit >= 32 {
		t.Fatalf("limit = %.1f after sustained fast-burn breach, want < 32", st.Limit)
	}
	if st.Backoffs == 0 {
		t.Fatal("no backoffs recorded")
	}

	// Signal recovers; with demand at the limit the pool must probe back up.
	breached.Store(false)
	floor := st.Limit
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 40; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r, err := c.Admit(context.Background(), ClassView, Normal)
				if err == nil {
					time.Sleep(200 * time.Microsecond)
					r()
				}
			}
		}()
	}
	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()
	if got := c.Status().Classes[ClassView]; got.Limit <= floor {
		t.Fatalf("limit = %.1f did not probe above %.1f after recovery", got.Limit, floor)
	}
}

// TestAIMDConvergence drives the limiter against a simulated backend with a
// hard capacity knee: below 8 concurrent requests service takes ~1ms, above
// it ~25ms (5x the target). The limit must converge into the neighborhood
// of the knee — well below both the initial limit and the offered
// concurrency — while requests keep flowing.
func TestAIMDConvergence(t *testing.T) {
	cfg := testConfig()
	cfg.InitialLimit = 48
	cfg.MaxLimit = 64
	cfg.MinLimit = 1
	cfg.LatencyTarget = 5 * time.Millisecond
	cfg.LatencyQuantile = 0.9
	cfg.AdjustEvery = 15 * time.Millisecond
	cfg.MinSamples = 5
	cfg.BackoffRatio = 0.6
	cfg.ProbeStep = 1
	cfg.MaxQueue = 16
	cfg.QueueDeadline = 100 * time.Millisecond
	c := NewController(cfg)

	const knee = 8
	var inService atomic.Int64
	backend := func() {
		n := inService.Add(1)
		defer inService.Add(-1)
		if n <= knee {
			time.Sleep(time.Millisecond)
		} else {
			time.Sleep(25 * time.Millisecond)
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var served, shed atomic.Uint64
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				release, err := c.Admit(context.Background(), ClassQuery, Normal)
				if err != nil {
					shed.Add(1)
					time.Sleep(time.Millisecond)
					continue
				}
				backend()
				release()
				served.Add(1)
			}
		}()
	}
	time.Sleep(1500 * time.Millisecond)
	close(stop)
	wg.Wait()

	st := c.Status().Classes[ClassQuery]
	if st.Backoffs == 0 {
		t.Fatal("limiter never backed off against a saturated backend")
	}
	if st.Limit >= 32 {
		t.Fatalf("limit = %.1f after convergence, want well below the 32 offered (knee at %d)", st.Limit, knee)
	}
	if served.Load() == 0 {
		t.Fatal("no requests served")
	}
	t.Logf("converged limit=%.1f served=%d shed=%d probes=%d backoffs=%d ewma=%.2fms",
		st.Limit, served.Load(), shed.Load(), st.Probes, st.Backoffs, st.EWMALatencyMs)
}

// TestConcurrentChurn hammers every path — admissions, queueing, eviction,
// deadlines, cancellations — from many goroutines; run under -race it is
// the package's memory-model check. The invariant at the end: nothing is
// left in flight or queued.
func TestConcurrentChurn(t *testing.T) {
	cfg := testConfig()
	cfg.InitialLimit = 4
	cfg.MaxQueue = 8
	cfg.LatencyTarget = 2 * time.Millisecond
	cfg.QueueDeadline = 10 * time.Millisecond
	cfg.AdjustEvery = 5 * time.Millisecond
	cfg.Metrics = obs.NewRegistry()
	cfg.Signal = func() Signal { return Signal{} }
	c := NewController(cfg)

	var wg sync.WaitGroup
	for w := 0; w < 48; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 100; i++ {
				class := Class(rng.Intn(int(numClasses)))
				pri := Priority(rng.Intn(int(numPriorities)))
				ctx := context.Background()
				var cancel context.CancelFunc
				if rng.Intn(4) == 0 {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(3))*time.Millisecond)
				}
				release, err := c.Admit(ctx, class, pri)
				if err == nil {
					time.Sleep(time.Duration(rng.Intn(500)) * time.Microsecond)
					release()
				}
				if cancel != nil {
					cancel()
				}
			}
		}(w)
	}
	wg.Wait()
	for _, cs := range c.Status().Classes {
		if cs.InFlight != 0 || cs.Queued != 0 {
			t.Fatalf("class %s left in_flight=%d queued=%d after churn", cs.Class, cs.InFlight, cs.Queued)
		}
	}
}

func TestParsePriority(t *testing.T) {
	cases := []struct {
		in   string
		want Priority
		ok   bool
	}{
		{"high", High, true},
		{"CRITICAL", High, true},
		{"emergency", High, true},
		{"normal", Normal, true},
		{"default", Normal, true},
		{"low", BestEffort, true},
		{"best-effort", BestEffort, true},
		{"best_effort", BestEffort, true},
		{" High ", High, true},
		{"", Normal, false},
		{"frobnicate", Normal, false},
	}
	for _, tc := range cases {
		got, ok := ParsePriority(tc.in)
		if got != tc.want || ok != tc.ok {
			t.Errorf("ParsePriority(%q) = (%s, %v), want (%s, %v)", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}

func TestMetricsRegistered(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := testConfig()
	cfg.InitialLimit = 1
	cfg.MaxQueue = NoQueue
	cfg.Metrics = reg
	c := NewController(cfg)
	release := mustAdmit(t, c, ClassQuery, Normal)
	if _, err := c.Admit(context.Background(), ClassQuery, BestEffort); err == nil {
		t.Fatal("second admit should shed")
	}
	release()

	found := map[string]bool{}
	for _, m := range reg.Snapshot() {
		found[m.Name] = true
	}
	for _, name := range []string{
		"grdf_admission_limit", "grdf_admission_queued", "grdf_admission_in_flight",
		"grdf_admission_shed_total", "grdf_admission_admitted_total",
		"grdf_admission_queue_wait_seconds",
	} {
		if !found[name] {
			t.Errorf("metric %s not registered", name)
		}
	}
}

func TestDefaultSignalNilInputs(t *testing.T) {
	sig := DefaultSignal(nil, nil)()
	if sig.FastBurnBreached {
		t.Fatal("nil SLO engine must not report a breach")
	}
}
