package admission

import (
	"context"
	"sync"
	"time"

	"repro/internal/obs"
)

// shedReasons are the bounded reason labels of grdf_admission_shed_total.
var shedReasons = [...]string{"queue_deadline", "queue_full", "evicted"}

const (
	reasonDeadline = iota
	reasonQueueFull
	reasonEvicted
)

// waiter is one queued request. ready is buffered and receives exactly one
// value in the waiter's lifetime: true when a slot is granted, false when a
// higher-priority arrival evicts it (shed pre-populated). A waiter that
// abandons the queue (deadline, context) is removed without a send.
type waiter struct {
	pri   Priority
	enq   time.Time
	ready chan bool
	shed  *ShedError
}

// classLimiter is one class's adaptive concurrency pool: the AIMD limit,
// the in-flight count, and the bounded priority wait queue.
//
// Invariant: the queue is non-empty only while the in-flight count is at
// the limit — every released slot and every limit increase drains waiters
// (highest priority first, FIFO within a tier) before new arrivals can take
// the fast path.
type classLimiter struct {
	class Class
	cfg   Config
	sig   *signalCache

	mu       sync.Mutex
	limit    float64
	inflight int
	queues   [numPriorities][]*waiter
	queued   int
	// peak is the maximum concurrent demand (in-flight + queued) since the
	// last adjustment: the probe gate. A limit that demand never reached
	// must not creep upward on an idle class.
	peak int
	// ewma tracks admitted service latency in seconds — the queue-wait
	// estimator's denominator input.
	ewma float64
	// window holds this period's admitted service latencies; its quantile
	// is the AIMD loop's own breach detector. Deliberately NOT the SLO
	// engine's latency: once shedding starts, fast 429s drag the SLO
	// quantile down and would tell the limiter everything is fine.
	window     *obs.LatencySketch
	lastAdjust time.Time
	adjusting  bool

	admitted uint64
	shedN    uint64
	probes   uint64
	backoffs uint64

	mAdmitted  *obs.Counter
	mQueueWait *obs.Histogram
	mShed      [numPriorities][len(shedReasons)]*obs.Counter
}

func newClassLimiter(class Class, cfg Config, sig *signalCache, reg *obs.Registry) *classLimiter {
	l := &classLimiter{
		class:      class,
		cfg:        cfg,
		sig:        sig,
		limit:      float64(cfg.InitialLimit),
		window:     obs.NewLatencySketch(),
		lastAdjust: cfg.now(),
	}
	cls := class.String()
	l.mAdmitted = reg.Counter("grdf_admission_admitted_total",
		"Requests admitted past the concurrency limit, by class.", "class", cls)
	l.mQueueWait = reg.Histogram("grdf_admission_queue_wait_seconds",
		"Time admitted requests spent queued for a slot.", nil, "class", cls)
	for p := range l.mShed {
		for r := range l.mShed[p] {
			l.mShed[p][r] = reg.Counter("grdf_admission_shed_total",
				"Requests refused under overload, by class, priority and reason.",
				"class", cls, "priority", Priority(p).String(), "reason", shedReasons[r])
		}
	}
	reg.GaugeFunc("grdf_admission_limit",
		"Current adaptive concurrency limit per class.", func() float64 {
			l.mu.Lock()
			defer l.mu.Unlock()
			return l.limit
		}, "class", cls)
	reg.GaugeFunc("grdf_admission_in_flight",
		"Requests holding an admission slot per class.", func() float64 {
			l.mu.Lock()
			defer l.mu.Unlock()
			return float64(l.inflight)
		}, "class", cls)
	reg.GaugeFunc("grdf_admission_queued",
		"Requests waiting for an admission slot per class.", func() float64 {
			l.mu.Lock()
			defer l.mu.Unlock()
			return float64(l.queued)
		}, "class", cls)
	return l
}

// admit implements Controller.Admit for one class.
func (l *classLimiter) admit(ctx context.Context, pri Priority) (func(), error) {
	l.mu.Lock()
	if l.queued == 0 && float64(l.inflight) < l.limit {
		l.inflight++
		l.admitted++
		if d := l.inflight + l.queued; d > l.peak {
			l.peak = d
		}
		l.mu.Unlock()
		l.mAdmitted.Inc()
		start := l.cfg.now()
		return func() { l.release(start) }, nil
	}
	// Over the limit. Shed immediately rather than queue when queueing is
	// off, when the wait estimate already blows the deadline (a request
	// that would predictably time out in queue must not occupy a queue
	// slot dying), or when the queue is full of peers we may not evict.
	if l.cfg.MaxQueue == 0 {
		return nil, l.shedLocked(pri, reasonQueueFull)
	}
	if l.estWaitLocked(pri) > l.cfg.QueueDeadline {
		return nil, l.shedLocked(pri, reasonDeadline)
	}
	if l.queued >= l.cfg.MaxQueue && !l.evictLocked(pri) {
		return nil, l.shedLocked(pri, reasonQueueFull)
	}
	w := &waiter{pri: pri, enq: l.cfg.now(), ready: make(chan bool, 1)}
	l.queues[pri] = append(l.queues[pri], w)
	l.queued++
	if d := l.inflight + l.queued; d > l.peak {
		l.peak = d
	}
	l.mu.Unlock()

	timer := time.NewTimer(l.cfg.QueueDeadline)
	defer timer.Stop()
	select {
	case ok := <-w.ready:
		return l.afterWait(w, ok)
	case <-timer.C:
		if err := l.abandonShed(w); err != nil {
			return nil, err
		}
		// Lost the race: a grant or eviction landed first. Honor it.
		return l.afterWait(w, <-w.ready)
	case <-ctx.Done():
		if l.abandonQuiet(w) {
			return nil, ctx.Err()
		}
		if <-w.ready {
			// Granted concurrently with the caller giving up: hand the
			// slot straight to the next waiter, no latency sample.
			l.mu.Lock()
			l.inflight--
			l.grantLocked()
			l.mu.Unlock()
		}
		return nil, ctx.Err()
	}
}

// afterWait finishes a queued admission: a granted waiter records its queue
// wait and becomes in-flight; an evicted one surfaces the shed its evictor
// prepared.
func (l *classLimiter) afterWait(w *waiter, granted bool) (func(), error) {
	if !granted {
		return nil, w.shed
	}
	start := l.cfg.now()
	l.mQueueWait.Observe(start.Sub(w.enq).Seconds())
	return func() { l.release(start) }, nil
}

// release returns a slot, feeds the AIMD loop one latency sample, hands the
// slot to the next waiter, and runs the periodic adjustment when due.
func (l *classLimiter) release(start time.Time) {
	d := l.cfg.now().Sub(start)
	l.mu.Lock()
	l.window.Record(d)
	sec := d.Seconds()
	if l.ewma == 0 {
		l.ewma = sec
	} else {
		l.ewma += 0.2 * (sec - l.ewma)
	}
	l.inflight--
	l.grantLocked()
	now := l.cfg.now()
	due := !l.adjusting && now.Sub(l.lastAdjust) >= l.cfg.AdjustEvery
	if due {
		l.adjusting = true
	}
	l.mu.Unlock()
	if due {
		l.adjust()
	}
}

// grantLocked drains waiters into freed capacity, highest tier first, FIFO
// within a tier.
func (l *classLimiter) grantLocked() {
	for l.queued > 0 && float64(l.inflight) < l.limit {
		var w *waiter
		for p := int(numPriorities) - 1; p >= 0; p-- {
			if q := l.queues[p]; len(q) > 0 {
				w = q[0]
				copy(q, q[1:])
				q[len(q)-1] = nil
				l.queues[p] = q[:len(q)-1]
				break
			}
		}
		l.queued--
		l.inflight++
		l.admitted++
		l.mAdmitted.Inc()
		w.ready <- true
	}
}

// adjust is the AIMD step, run at most once per period: multiplicative
// back-off when the admitted-latency window or the external signal
// breaches, additive probe when healthy and demand actually filled the
// current limit.
func (l *classLimiter) adjust() {
	sig := l.sig.read() // outside the lock: may walk the SLO engine and read memstats
	l.mu.Lock()
	win := l.window
	l.window = obs.NewLatencySketch()
	breach := sig.FastBurnBreached || sig.Saturated
	if !breach && win.Count() >= uint64(l.cfg.MinSamples) {
		breach = win.Quantile(l.cfg.LatencyQuantile) > l.cfg.LatencyTarget
	}
	switch {
	case breach:
		l.limit *= l.cfg.BackoffRatio
		if l.limit < float64(l.cfg.MinLimit) {
			l.limit = float64(l.cfg.MinLimit)
		}
		l.backoffs++
	case l.peak >= int(l.limit):
		l.limit += l.cfg.ProbeStep
		if l.limit > float64(l.cfg.MaxLimit) {
			l.limit = float64(l.cfg.MaxLimit)
		}
		l.probes++
		l.grantLocked()
	}
	l.peak = l.inflight + l.queued
	l.lastAdjust = l.cfg.now()
	l.adjusting = false
	l.mu.Unlock()
}

// estWaitLocked estimates how long an arrival at pri would wait: the
// waiters it queues behind (its own tier and above), drained at the pool's
// current throughput (limit slots, ewma seconds each).
func (l *classLimiter) estWaitLocked(pri Priority) time.Duration {
	ahead := 0
	for p := int(pri); p < int(numPriorities); p++ {
		ahead += len(l.queues[p])
	}
	return l.drainTimeLocked(ahead + 1)
}

// drainTimeLocked is the time to serve n queued requests at current
// capacity and observed service latency.
func (l *classLimiter) drainTimeLocked(n int) time.Duration {
	per := l.ewma
	if per <= 0 {
		per = l.cfg.LatencyTarget.Seconds()
	}
	lim := l.limit
	if lim < 1 {
		lim = 1
	}
	return time.Duration(float64(n) * per / lim * float64(time.Second))
}

// retryAfterLocked estimates when the pool will have drained enough for a
// comeback to stand a chance: full-queue drain time, floored at one second
// (the Retry-After header granularity) and capped so a transient spike
// cannot send clients away for minutes.
func (l *classLimiter) retryAfterLocked() time.Duration {
	d := l.drainTimeLocked(l.queued + 1)
	if d < time.Second {
		d = time.Second
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// shedLocked refuses an arrival: accounts the shed and returns the
// ShedError. Unlocks l.mu.
func (l *classLimiter) shedLocked(pri Priority, reason int) error {
	err := &ShedError{
		Class:      l.class,
		Priority:   pri,
		Reason:     shedReasons[reason],
		RetryAfter: l.retryAfterLocked(),
	}
	l.shedN++
	l.mShed[pri][reason].Inc()
	l.mu.Unlock()
	return err
}

// evictLocked displaces the newest waiter of the highest tier strictly
// below pri, making room for a more important arrival. Newest-first keeps
// the eviction fair to waiters who have already invested queue time.
func (l *classLimiter) evictLocked(pri Priority) bool {
	for p := int(pri) - 1; p >= 0; p-- {
		q := l.queues[p]
		if len(q) == 0 {
			continue
		}
		w := q[len(q)-1]
		q[len(q)-1] = nil
		l.queues[p] = q[:len(q)-1]
		l.queued--
		w.shed = &ShedError{
			Class:      l.class,
			Priority:   w.pri,
			Reason:     shedReasons[reasonEvicted],
			RetryAfter: l.retryAfterLocked(),
		}
		l.shedN++
		l.mShed[w.pri][reasonEvicted].Inc()
		w.ready <- false
		return true
	}
	return false
}

// abandonShed removes w from the queue after its deadline expired,
// accounting a shed. Reports false when w was granted or evicted first.
func (l *classLimiter) abandonShed(w *waiter) error {
	l.mu.Lock()
	if !l.removeLocked(w) {
		l.mu.Unlock()
		return nil
	}
	w.shed = &ShedError{
		Class:      l.class,
		Priority:   w.pri,
		Reason:     shedReasons[reasonDeadline],
		RetryAfter: l.retryAfterLocked(),
	}
	l.shedN++
	l.mShed[w.pri][reasonDeadline].Inc()
	l.mu.Unlock()
	return w.shed
}

// abandonQuiet removes w when its caller's context ended — the client went
// away, which is not a shed. Reports false when w was granted or evicted
// first.
func (l *classLimiter) abandonQuiet(w *waiter) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.removeLocked(w)
}

func (l *classLimiter) removeLocked(w *waiter) bool {
	q := l.queues[w.pri]
	for i, cand := range q {
		if cand == w {
			copy(q[i:], q[i+1:])
			q[len(q)-1] = nil
			l.queues[w.pri] = q[:len(q)-1]
			l.queued--
			return true
		}
	}
	return false
}

func (l *classLimiter) status() ClassStatus {
	l.mu.Lock()
	defer l.mu.Unlock()
	return ClassStatus{
		Class:         l.class.String(),
		Limit:         l.limit,
		InFlight:      l.inflight,
		Queued:        l.queued,
		Admitted:      l.admitted,
		Shed:          l.shedN,
		Probes:        l.probes,
		Backoffs:      l.backoffs,
		EWMALatencyMs: l.ewma * 1000,
	}
}

// signalCache samples the external Signal at most once per ttl across all
// classes: the saturation probe stops the world briefly (ReadMemStats) and
// the SLO status walk merges every route's sketches, so three limiters must
// not each pay that per adjustment.
type signalCache struct {
	fn       func() Signal
	onChange func(prev, cur Signal)
	ttl      time.Duration
	now      func() time.Time

	mu      sync.Mutex
	at      time.Time
	val     Signal
	sampled bool
}

func newSignalCache(fn func() Signal, onChange func(prev, cur Signal), ttl time.Duration, now func() time.Time) *signalCache {
	if ttl <= 0 {
		ttl = 100 * time.Millisecond
	}
	return &signalCache{fn: fn, onChange: onChange, ttl: ttl, now: now}
}

func (s *signalCache) read() Signal {
	if s == nil || s.fn == nil {
		return Signal{}
	}
	s.mu.Lock()
	now := s.now()
	if !s.at.IsZero() && now.Sub(s.at) < s.ttl {
		val := s.val
		s.mu.Unlock()
		return val
	}
	s.at = now
	prev, hadPrev := s.val, s.sampled
	s.val = s.fn()
	s.sampled = true
	val := s.val
	s.mu.Unlock()
	// Notify outside the lock: the hook may be slow (profiling trigger) or
	// re-enter the controller for status.
	if s.onChange != nil && hadPrev && prev != val {
		s.onChange(prev, val)
	}
	return val
}
