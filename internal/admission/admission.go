// Package admission closes the loop from overload signals to back-pressure.
//
// PR 6 made overload visible — the SLO engine's burn-rate windows and the
// /healthz saturation block — and BENCH_LOAD recorded the failure mode they
// watch: past the knee, every request is admitted, queues grow without
// bound, and the corrected p99 collapses into seconds while throughput goes
// nowhere. This package is the actuator those signals were missing:
//
//   - An adaptive concurrency limit per route class (query/view/mutate),
//     AIMD-controlled: probe additively upward while the admitted-latency
//     window and the external Signal (SLO fast-burn, saturation) stay
//     healthy, back off multiplicatively the moment either breaches. The
//     limit converges to the concurrency the backend can actually serve
//     inside its latency target, wherever that is on today's hardware.
//
//   - A small bounded FIFO in front of each limit with a per-request queue
//     deadline. A request that would predictably wait past the deadline is
//     shed *immediately* — queue wait must never silently become tail
//     latency, which is exactly how the unbounded collapse happens.
//
//   - Priority tiers: the paper's security roles double as QoS classes.
//     Mutations and emergency-response queries (High) outlive best-effort
//     traffic under shed — a High arrival may evict a queued BestEffort
//     waiter rather than be refused.
//
// Shed requests carry a Retry-After estimate so well-behaved clients (the
// federation retry loop, replication followers) spread their comeback
// instead of stampeding.
package admission

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/obs"
)

// Class partitions the HTTP surface into independently limited resource
// pools: a mutation burst must not be able to starve the query pool's
// concurrency and vice versa.
type Class int

const (
	// ClassQuery covers /v1/query and /v1/resource — the decision-engine
	// read path.
	ClassQuery Class = iota
	// ClassView covers /v1/view — full redacted-graph exports, the heaviest
	// read shape.
	ClassView
	// ClassMutate covers /v1/insert, /v1/delete, /v1/update, /v1/mutate —
	// the WAL'd write path.
	ClassMutate

	numClasses
)

// String returns the metric label value for c.
func (c Class) String() string {
	switch c {
	case ClassQuery:
		return "query"
	case ClassView:
		return "view"
	case ClassMutate:
		return "mutate"
	default:
		return "unknown"
	}
}

// Priority orders requests under contention. Higher values outlive lower
// ones: a higher-priority arrival is queued ahead of — and may evict — a
// lower-priority waiter, so under sustained shed the BestEffort tier
// absorbs nearly all of the refusals.
type Priority int

const (
	// BestEffort is traffic that may be shed first (bulk exports, batch
	// analytics, anything tagged low by the priority header).
	BestEffort Priority = iota
	// Normal is the default tier for untagged requests.
	Normal
	// High is availability-critical traffic: mutations (losing a write hurts
	// more than a slow read) and the paper's emergency-response role, whose
	// queries are the reason the system exists during an incident.
	High

	numPriorities
)

// String returns the metric label value for p.
func (p Priority) String() string {
	switch p {
	case BestEffort:
		return "best_effort"
	case Normal:
		return "normal"
	case High:
		return "high"
	default:
		return "unknown"
	}
}

// ParsePriority maps a client-supplied priority header value onto a tier.
// The mapping is deliberately forgiving — "high"/"critical"/"emergency",
// "normal"/"default", "low"/"best-effort"/"best_effort" — and ok reports
// whether the value was recognized at all, so an unknown tag falls back to
// the server's own classification instead of silently becoming Normal.
func ParsePriority(s string) (Priority, bool) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "high", "critical", "emergency":
		return High, true
	case "normal", "default":
		return Normal, true
	case "low", "best-effort", "best_effort", "besteffort":
		return BestEffort, true
	}
	return Normal, false
}

// Signal is the external health input to the AIMD controller, sampled at
// most once per adjustment period. Either flag forces a multiplicative
// back-off even when the limiter's own latency window looks healthy — the
// window only sees admitted requests of its own class, while the SLO engine
// and the saturation probe see the whole process.
type Signal struct {
	// FastBurnBreached reports the SLO engine's fast-window availability
	// verdict (burn rate > 1 means the error budget is burning faster than
	// it accrues).
	FastBurnBreached bool
	// Saturated reports process-level resource exhaustion (runaway
	// goroutines, heap pressure).
	Saturated bool
}

// DefaultSignal composes the standard server health inputs: the SLO
// engine's fast-burn verdict and the obs saturation probe. Either argument
// may be nil.
func DefaultSignal(slo *obs.SLOEngine, reg *obs.Registry) func() Signal {
	return func() Signal {
		var sig Signal
		if slo != nil {
			sig.FastBurnBreached = !slo.Status().AvailabilityOK
		}
		sat := obs.ReadSaturation(reg)
		// Goroutine runaway is the canonical Go overload signature: every
		// parked request is a goroutine, so tens of thousands of them means
		// the queues this package exists to prevent are forming anyway.
		// Heap occupancy near the OS-granted ceiling precedes GC death
		// spirals.
		sig.Saturated = sat.Goroutines > 50_000 ||
			(sat.HeapSysBytes > 0 && float64(sat.HeapAllocBytes) > 0.92*float64(sat.HeapSysBytes))
		return sig
	}
}

// ShedError reports a refused request: which pool refused it, at what
// priority, why, and when the client should come back.
type ShedError struct {
	Class    Class
	Priority Priority
	// Reason is a bounded label: "queue_deadline" (the wait estimate
	// already exceeded the deadline at arrival, or the deadline expired
	// while queued), "queue_full" (bounded FIFO at capacity with no
	// lower-priority waiter to evict), or "evicted" (a queued waiter
	// displaced by a higher-priority arrival).
	Reason string
	// RetryAfter estimates when the pool will have drained enough to
	// accept this request — the value of the Retry-After header.
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("admission: %s request shed (%s, class %s): retry after %s",
		e.Priority, e.Reason, e.Class, e.RetryAfter)
}

// Config tunes a Controller. Zero values select the defaults noted on each
// field; the same configuration applies to every class pool.
type Config struct {
	// InitialLimit is the per-class concurrency limit before any
	// adaptation (default 32).
	InitialLimit int
	// MinLimit floors the multiplicative decrease (default 2): even a
	// melting server keeps probing with a trickle, or it could never
	// discover recovery.
	MinLimit int
	// MaxLimit caps the additive increase (default 4096).
	MaxLimit int
	// MaxQueue bounds the per-class wait queue (default 128; 0 disables
	// queueing — over-limit arrivals shed immediately).
	MaxQueue int
	// QueueDeadline is the longest a request may wait for a slot (default
	// 500ms). Arrivals whose estimated wait already exceeds it are shed
	// on the spot rather than parked to time out.
	QueueDeadline time.Duration
	// LatencyTarget is the admitted-request service-latency objective the
	// AIMD loop defends (default 100ms). Note this is service time after
	// admission; the end-to-end target seen by clients is roughly
	// LatencyTarget + QueueDeadline in the worst case.
	LatencyTarget time.Duration
	// LatencyQuantile is the window quantile compared against the target
	// (default 0.95).
	LatencyQuantile float64
	// AdjustEvery is the control period: limits move at most once per
	// period per class (default 250ms).
	AdjustEvery time.Duration
	// ProbeStep is the additive increase per healthy period (default 4).
	ProbeStep float64
	// BackoffRatio is the multiplicative decrease on breach (default 0.7).
	BackoffRatio float64
	// MinSamples is how many admitted requests a window needs before its
	// quantile may veto an increase or force a decrease (default 10).
	MinSamples int
	// Signal, when set, contributes external health (SLO fast burn,
	// saturation) to every adjustment. Sampled at most once per period
	// across all classes.
	Signal func() Signal
	// OnSignal, when set, observes every sampled Signal transition (a read
	// whose value differs from the previous sample). It is called outside
	// the sampler's lock and must be fast or hand off — the standard use is
	// triggering an immediate profile capture the moment overload begins.
	OnSignal func(prev, cur Signal)
	// Metrics receives the admission instruments (nil disables).
	Metrics *obs.Registry

	// now is injectable for tests.
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.InitialLimit <= 0 {
		c.InitialLimit = 32
	}
	if c.MinLimit <= 0 {
		c.MinLimit = 2
	}
	if c.MaxLimit <= 0 {
		c.MaxLimit = 4096
	}
	if c.MaxLimit < c.MinLimit {
		c.MaxLimit = c.MinLimit
	}
	if c.InitialLimit > c.MaxLimit {
		c.InitialLimit = c.MaxLimit
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	} else if c.MaxQueue == 0 {
		c.MaxQueue = 128
	}
	if c.QueueDeadline <= 0 {
		c.QueueDeadline = 500 * time.Millisecond
	}
	if c.LatencyTarget <= 0 {
		c.LatencyTarget = 100 * time.Millisecond
	}
	if c.LatencyQuantile <= 0 || c.LatencyQuantile >= 1 {
		c.LatencyQuantile = 0.95
	}
	if c.AdjustEvery <= 0 {
		c.AdjustEvery = 250 * time.Millisecond
	}
	if c.ProbeStep <= 0 {
		c.ProbeStep = 4
	}
	if c.BackoffRatio <= 0 || c.BackoffRatio >= 1 {
		c.BackoffRatio = 0.7
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 10
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// NoQueue is the MaxQueue value that disables queueing entirely.
const NoQueue = -1

// Controller is the admission front door: one adaptive limiter per class,
// shared external signal, shared configuration. Safe for concurrent use.
type Controller struct {
	cfg     Config
	classes [numClasses]*classLimiter
	sig     *signalCache
}

// NewController builds a Controller from cfg (defaults applied).
func NewController(cfg Config) *Controller {
	cfg = cfg.withDefaults()
	c := &Controller{cfg: cfg}
	c.sig = newSignalCache(cfg.Signal, cfg.OnSignal, cfg.AdjustEvery/2, cfg.now)
	reg := cfg.Metrics
	for i := range c.classes {
		c.classes[i] = newClassLimiter(Class(i), cfg, c.sig, reg)
	}
	return c
}

// Admit asks for a slot in class at priority pri. It returns a release
// function to call exactly once when the request finishes, or an error:
// a *ShedError when the pool refused the request (answer 429 with its
// RetryAfter), or ctx.Err() when the caller gave up while queued.
func (c *Controller) Admit(ctx context.Context, class Class, pri Priority) (release func(), err error) {
	if class < 0 || class >= numClasses {
		return func() {}, nil
	}
	if pri < BestEffort {
		pri = BestEffort
	} else if pri > High {
		pri = High
	}
	return c.classes[class].admit(ctx, pri)
}

// ClassStatus is one pool's point-in-time state in the Status block.
type ClassStatus struct {
	Class         string  `json:"class"`
	Limit         float64 `json:"limit"`
	InFlight      int     `json:"in_flight"`
	Queued        int     `json:"queued"`
	Admitted      uint64  `json:"admitted"`
	Shed          uint64  `json:"shed"`
	Probes        uint64  `json:"probes"`
	Backoffs      uint64  `json:"backoffs"`
	EWMALatencyMs float64 `json:"ewma_latency_ms"`
}

// Status is the admission block surfaced on /healthz.
type Status struct {
	QueueDeadlineMs float64       `json:"queue_deadline_ms"`
	MaxQueue        int           `json:"max_queue"`
	Classes         []ClassStatus `json:"classes"`
	TotalShed       uint64        `json:"total_shed"`
}

// Status reports every pool's current limit, occupancy and counters.
func (c *Controller) Status() Status {
	st := Status{
		QueueDeadlineMs: float64(c.cfg.QueueDeadline) / float64(time.Millisecond),
		MaxQueue:        c.cfg.MaxQueue,
	}
	for _, l := range c.classes {
		cs := l.status()
		st.TotalShed += cs.Shed
		st.Classes = append(st.Classes, cs)
	}
	return st
}
