package federation

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/rdf"
)

// remoteBodyLimit bounds how much of a peer's response is read: a
// misbehaving source must not be able to exhaust the federator's memory.
const remoteBodyLimit = 32 << 20

// RemoteSource queries a peer G-SACS server over its v1 HTTP API
// (GET {base}/v1/query?role=...&q=...). The action parameter is implied by
// the endpoint (view); transport failures, 5xx answers and undecodable
// bodies surface as retryable errors, 4xx answers as terminal ones.
type RemoteSource struct {
	name   string
	base   string // e.g. "http://peer:8080", no trailing slash
	client *http.Client
}

// NewRemoteSource builds a source for the peer at base. A nil client gets a
// dedicated one with sane connection pooling; per-attempt deadlines come
// from the Federator's context, not the client.
func NewRemoteSource(name, base string, client *http.Client) *RemoteSource {
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	return &RemoteSource{name: name, base: strings.TrimRight(base, "/"), client: client}
}

// Name implements Source.
func (s *RemoteSource) Name() string { return s.name }

// Base returns the peer's base URL.
func (s *RemoteSource) Base() string { return s.base }

// FetchJSON GETs {base}{path} (path must start with "/") and decodes the
// JSON body into out, with the same trace propagation, body bound and
// status handling as Query. Non-200 answers surface as *StatusError carrying
// the peer's error envelope — the cluster rollup uses this to read a peer's
// /v1/slo, /v1/queries and /healthz without duplicating client plumbing.
func (s *RemoteSource) FetchJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.base+path, nil)
	if err != nil {
		return fmt.Errorf("federation: build request for %s: %w", s.name, err)
	}
	if id := obs.TraceID(ctx); id != "" {
		req.Header.Set(obs.TraceHeader, id)
	}
	if sid := obs.CurrentSpanID(ctx); sid != "" {
		req.Header.Set(obs.ParentSpanHeader, sid)
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, remoteBodyLimit))
	if err != nil {
		return fmt.Errorf("federation: read %s response: %w", s.name, err)
	}
	if resp.StatusCode != http.StatusOK {
		se := &StatusError{Status: resp.StatusCode}
		var env struct {
			Error string `json:"error"`
			Code  string `json:"code"`
		}
		if json.Unmarshal(body, &env) == nil {
			se.Code, se.Msg = env.Code, env.Error
		}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
				se.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		return se
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("federation: undecodable %s response: %w", s.name, err)
	}
	return nil
}

// wireResult is the union of the v1 /query success shapes plus the error
// envelope.
type wireResult struct {
	Head *struct {
		Vars []string `json:"vars"`
	} `json:"head"`
	Results []map[string]string `json:"results"`
	Boolean *bool               `json:"boolean"`
	Triples *string             `json:"triples"`

	Error string `json:"error"`
	Code  string `json:"code"`
}

// Query implements Source over HTTP.
func (s *RemoteSource) Query(ctx context.Context, role, action rdf.IRI, query string) (*Result, error) {
	q := url.Values{}
	q.Set("role", string(role))
	q.Set("q", query)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		s.base+"/v1/query?"+q.Encode(), nil)
	if err != nil {
		return nil, fmt.Errorf("federation: build request for %s: %w", s.name, err)
	}
	// Propagate the trace across the process boundary: the peer adopts the
	// trace ID (joining its logs and metrics to ours) and parents its own
	// root span under our current fed.source span.
	if id := obs.TraceID(ctx); id != "" {
		req.Header.Set(obs.TraceHeader, id)
	}
	if sid := obs.CurrentSpanID(ctx); sid != "" {
		req.Header.Set(obs.ParentSpanHeader, sid)
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return nil, err // transport error: retryable
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, remoteBodyLimit))
	if err != nil {
		return nil, fmt.Errorf("federation: read %s response: %w", s.name, err)
	}
	var wire wireResult
	decodeErr := json.Unmarshal(body, &wire)
	if resp.StatusCode != http.StatusOK {
		se := &StatusError{Status: resp.StatusCode}
		if decodeErr == nil {
			se.Code, se.Msg = wire.Code, wire.Error
		}
		// An overloaded or restarting peer names its comeback time; carry it
		// so the retry loop can honor it instead of stampeding back.
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
				se.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		return nil, se
	}
	if decodeErr != nil {
		return nil, fmt.Errorf("federation: undecodable %s response: %w", s.name, decodeErr)
	}
	switch {
	case wire.Boolean != nil:
		return &Result{Kind: KindAsk, Boolean: *wire.Boolean}, nil
	case wire.Triples != nil:
		out := &Result{Kind: KindGraph}
		for _, line := range strings.Split(*wire.Triples, "\n") {
			if line = strings.TrimSpace(line); line != "" {
				out.Triples = append(out.Triples, line)
			}
		}
		return out, nil
	case wire.Head != nil:
		return &Result{Kind: KindSelect, Vars: wire.Head.Vars, Rows: wire.Results}, nil
	default:
		return nil, fmt.Errorf("federation: %s response has no recognizable result shape", s.name)
	}
}
