package federation

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"repro/internal/rdf"
)

// FaultConfig drives deterministic (seeded) fault injection. The rates are
// probabilities per request drawn in order error → hang → garbage; whatever
// probability mass remains passes through to the wrapped source. All
// injected behavior honors ctx.
type FaultConfig struct {
	// Seed makes the fault sequence reproducible.
	Seed int64
	// ErrorRate is the probability of answering with a synthetic 503.
	ErrorRate float64
	// HangRate is the probability of blocking until ctx is done — the
	// pathological peer that accepts the connection and never answers.
	HangRate float64
	// GarbageRate is the probability of returning a syntactically valid but
	// semantically bogus result (wrong vars, junk bindings).
	GarbageRate float64
	// Latency (± LatencyJitter, uniform) is added to every request,
	// injected faults included.
	Latency       time.Duration
	LatencyJitter time.Duration
}

// FaultStats counts what a FaultySource actually injected.
type FaultStats struct {
	Requests, Errors, Hangs, Garbage, PassedThrough int
}

// FaultySource wraps a Source with seeded latency/error/hang/garbage
// injection for chaos testing. Safe for concurrent use; the shared rng is
// locked so a fixed seed yields a fixed fault sequence under sequential
// load.
type FaultySource struct {
	inner Source
	cfg   FaultConfig

	mu    sync.Mutex
	rng   *rand.Rand
	stats FaultStats
}

// NewFaultySource wraps inner with fault injection.
func NewFaultySource(inner Source, cfg FaultConfig) *FaultySource {
	return &FaultySource{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Name implements Source, passing the wrapped identity through.
func (f *FaultySource) Name() string { return f.inner.Name() }

// Stats snapshots the injection counters.
func (f *FaultySource) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Query implements Source with fault injection in front of the inner source.
func (f *FaultySource) Query(ctx context.Context, role, action rdf.IRI, query string) (*Result, error) {
	f.mu.Lock()
	roll := f.rng.Float64()
	delay := f.cfg.Latency
	if f.cfg.LatencyJitter > 0 {
		delay += time.Duration(f.rng.Int63n(int64(f.cfg.LatencyJitter)))
	}
	f.stats.Requests++
	const (
		passThrough = iota
		injectErr
		injectHang
		injectGarbage
	)
	mode := passThrough
	switch {
	case roll < f.cfg.ErrorRate:
		mode, f.stats.Errors = injectErr, f.stats.Errors+1
	case roll < f.cfg.ErrorRate+f.cfg.HangRate:
		mode, f.stats.Hangs = injectHang, f.stats.Hangs+1
	case roll < f.cfg.ErrorRate+f.cfg.HangRate+f.cfg.GarbageRate:
		mode, f.stats.Garbage = injectGarbage, f.stats.Garbage+1
	default:
		f.stats.PassedThrough++
	}
	f.mu.Unlock()

	if delay > 0 {
		if err := sleepCtx(ctx, delay); err != nil {
			return nil, err
		}
	}
	switch mode {
	case injectErr:
		return nil, &StatusError{Status: 503, Code: "injected", Msg: "fault injection: synthetic error"}
	case injectHang:
		<-ctx.Done()
		return nil, ctx.Err()
	case injectGarbage:
		return &Result{
			Kind: KindSelect,
			Vars: []string{"garbage"},
			Rows: []map[string]string{{"garbage": "\x00\xfffault-injected"}},
		}, nil
	default:
		return f.inner.Query(ctx, role, action, query)
	}
}
