package federation

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// RetryConfig tunes the per-source retry loop. Zero values select the
// defaults noted on each field.
type RetryConfig struct {
	// MaxAttempts is the total try count including the first (default 3;
	// 1 disables retries).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (default 2s).
	MaxDelay time.Duration
	// Multiplier is the exponential factor (default 2).
	Multiplier float64
	// Jitter is the fraction of each delay that is randomized: the actual
	// delay is uniform in [d·(1−Jitter), d] (default 0.5).
	Jitter float64
	// BudgetRatio is the token-bucket refill per attempted request: with
	// 0.2, sustained retries are capped at 20% of request volume so a
	// down source cannot triple the load on it (default 0.2).
	BudgetRatio float64
	// BudgetBurst is the bucket capacity — retries allowed in a burst
	// before the ratio gate kicks in (default 10).
	BudgetBurst float64

	// rnd and sleep are injectable for deterministic tests.
	rnd   func() float64
	sleep func(ctx context.Context, d time.Duration) error
}

func (c *RetryConfig) defaults() {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.BaseDelay <= 0 {
		c.BaseDelay = 50 * time.Millisecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Second
	}
	if c.Multiplier <= 0 {
		c.Multiplier = 2
	}
	if c.Jitter < 0 || c.Jitter > 1 {
		c.Jitter = 0.5
	}
	if c.BudgetRatio <= 0 {
		c.BudgetRatio = 0.2
	}
	if c.BudgetBurst <= 0 {
		c.BudgetBurst = 10
	}
	if c.rnd == nil {
		c.rnd = rand.Float64
	}
	if c.sleep == nil {
		c.sleep = sleepCtx
	}
}

// backoff computes the delay before retry number retry (1-based), with
// exponential growth, cap, and jitter.
func (c *RetryConfig) backoff(retry int) time.Duration {
	d := float64(c.BaseDelay)
	for i := 1; i < retry; i++ {
		d *= c.Multiplier
		if d >= float64(c.MaxDelay) {
			break
		}
	}
	if d > float64(c.MaxDelay) {
		d = float64(c.MaxDelay)
	}
	if c.Jitter > 0 {
		d -= c.rnd() * c.Jitter * d
	}
	return time.Duration(d)
}

// Backoff computes the delay before retry number retry (1-based) using the
// config's exponential/jitter policy with defaults filled in, without
// mutating the receiver. Exported for callers outside the federator loop —
// the replication follower paces its reconnects with the same policy a
// federated query retry uses.
func (c RetryConfig) Backoff(retry int) time.Duration {
	c.defaults()
	return c.backoff(retry)
}

// sleepCtx waits d or until ctx is done, returning ctx.Err() in the latter
// case.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// RetryBudget is a token bucket shared by all requests to one target:
// each request deposits BudgetRatio tokens, each retry withdraws one, so
// sustained retries are capped at a fraction of real traffic. The federator
// keeps one per source; the replication follower keeps one per leader.
type RetryBudget struct {
	mu     sync.Mutex
	tokens float64
	max    float64
	ratio  float64
}

// NewRetryBudget builds a bucket from cfg's BudgetBurst/BudgetRatio
// (defaults applied).
func NewRetryBudget(cfg RetryConfig) *RetryBudget {
	cfg.defaults()
	return &RetryBudget{tokens: cfg.BudgetBurst, max: cfg.BudgetBurst, ratio: cfg.BudgetRatio}
}

// Deposit credits one request's worth of retry allowance.
func (b *RetryBudget) Deposit() {
	b.mu.Lock()
	b.tokens += b.ratio
	if b.tokens > b.max {
		b.tokens = b.max
	}
	b.mu.Unlock()
}

// Withdraw takes one retry token, reporting whether the budget allows it.
func (b *RetryBudget) Withdraw() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// StatusError is a non-2xx answer from a remote source, carrying the v1
// error envelope when one was decodable.
type StatusError struct {
	Status int
	Code   string
	Msg    string
	// RetryAfter is the peer's Retry-After hint (zero when absent). A peer
	// that sheds with 429 names the moment its queue will have drained;
	// retrying sooner is a stampede, so the backoff loop takes the larger of
	// its own delay and this hint.
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("federation: remote status %d (%s): %s", e.Status, e.Code, e.Msg)
	}
	return fmt.Sprintf("federation: remote status %d", e.Status)
}

// RetryAfterHint extracts the peer's Retry-After hint from err, or zero when
// err carries none.
func RetryAfterHint(err error) time.Duration {
	var se *StatusError
	if errors.As(err, &se) && se.RetryAfter > 0 {
		return se.RetryAfter
	}
	return 0
}

// IsShed reports whether err is a peer's load-shed answer (429): the peer is
// healthy but refusing work, which is an overload outcome, not a fault.
func IsShed(err error) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Status == http.StatusTooManyRequests
}

// terminalError marks an error as not worth retrying regardless of its
// underlying type.
type terminalError struct{ err error }

func (e *terminalError) Error() string { return e.err.Error() }
func (e *terminalError) Unwrap() error { return e.err }

// MarkTerminal wraps err so IsRetryable reports false — for failures known
// to be deterministic, like a local parse error.
func MarkTerminal(err error) error {
	if err == nil {
		return nil
	}
	return &terminalError{err: err}
}

// IsRetryable classifies an error as transient (worth another attempt
// against the same source) or terminal. Server-side failures, timeouts and
// transport/decoding faults are transient; client-side errors (a malformed
// query stays malformed) and breaker rejections are terminal.
func IsRetryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrOpen) || errors.Is(err, context.Canceled) {
		return false
	}
	var te *terminalError
	if errors.As(err, &te) {
		return false
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.Status >= 500 || se.Status == 429 || se.Status == 408
	}
	// Attempt deadline, transport error, garbage payload: transient.
	return true
}
