package federation

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/rdf"
)

// TestBackoffBounds checks the exponential envelope: every delay for retry
// k lies in [base·m^(k−1)·(1−jitter), base·m^(k−1)], capped at MaxDelay.
func TestBackoffBounds(t *testing.T) {
	cfg := RetryConfig{
		MaxAttempts: 6,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    100 * time.Millisecond,
		Multiplier:  2,
		Jitter:      0.5,
	}
	cfg.defaults()
	for _, roll := range []float64{0, 0.25, 0.5, 0.9999} {
		cfg.rnd = func() float64 { return roll }
		for retry := 1; retry <= 6; retry++ {
			full := float64(cfg.BaseDelay)
			for i := 1; i < retry; i++ {
				full *= cfg.Multiplier
			}
			if full > float64(cfg.MaxDelay) {
				full = float64(cfg.MaxDelay)
			}
			got := float64(cfg.backoff(retry))
			lo := full * (1 - cfg.Jitter)
			if got < lo-1 || got > full+1 {
				t.Errorf("backoff(retry=%d, roll=%v) = %v, want within [%v, %v]",
					retry, roll, time.Duration(got), time.Duration(lo), time.Duration(full))
			}
		}
	}
	// Growth must actually be exponential up to the cap (with jitter off).
	cfg.rnd = func() float64 { return 0 }
	if d2, d1 := cfg.backoff(2), cfg.backoff(1); d2 != 2*d1 {
		t.Errorf("backoff(2) = %v, want 2×backoff(1) = %v", d2, 2*d1)
	}
	if got := cfg.backoff(6); got != cfg.MaxDelay {
		t.Errorf("backoff(6) = %v, want capped at %v", got, cfg.MaxDelay)
	}
}

// TestRetryBudget verifies the token bucket: a burst of retries drains it,
// deposits refill it at the configured ratio.
func TestRetryBudget(t *testing.T) {
	b := NewRetryBudget(RetryConfig{BudgetBurst: 2, BudgetRatio: 0.5})
	if !b.Withdraw() || !b.Withdraw() {
		t.Fatal("burst capacity of 2 not available")
	}
	if b.Withdraw() {
		t.Fatal("withdraw succeeded on an empty budget")
	}
	b.Deposit() // +0.5 — still under one token
	if b.Withdraw() {
		t.Fatal("withdraw succeeded on a fractional budget")
	}
	b.Deposit() // 1.0
	if !b.Withdraw() {
		t.Fatal("refilled budget refused a withdrawal")
	}
}

// TestIsRetryable pins the error classification.
func TestIsRetryable(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{ErrOpen, false},
		{context.Canceled, false},
		{context.DeadlineExceeded, true},
		{&StatusError{Status: 500}, true},
		{&StatusError{Status: 503}, true},
		{&StatusError{Status: 429}, true},
		{&StatusError{Status: 400}, false},
		{&StatusError{Status: 403}, false},
		{fmt.Errorf("wrapped: %w", &StatusError{Status: 502}), true},
		{errors.New("transport reset"), true},
	}
	for _, c := range cases {
		if got := IsRetryable(c.err); got != c.want {
			t.Errorf("IsRetryable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

// scriptedSource fails a fixed number of times before succeeding, recording
// call times.
type scriptedSource struct {
	mu        sync.Mutex
	failures  int
	calls     int
	failError error
}

func (s *scriptedSource) Name() string { return "scripted" }

func (s *scriptedSource) Query(ctx context.Context, role, action rdf.IRI, q string) (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls++
	if s.calls <= s.failures {
		return nil, s.failError
	}
	return &Result{Kind: KindSelect, Vars: []string{"x"},
		Rows: []map[string]string{{"x": "\"v\""}}}, nil
}

// TestFederatorRetriesThenSucceeds verifies the retry loop: two transient
// failures then success yields an OK status with 3 attempts and two backoff
// sleeps whose durations follow the (jitter-free) schedule.
func TestFederatorRetriesThenSucceeds(t *testing.T) {
	var slept []time.Duration
	cfg := Config{
		SourceTimeout: time.Second,
		Retry: RetryConfig{
			MaxAttempts: 4,
			BaseDelay:   10 * time.Millisecond,
			Multiplier:  2,
			Jitter:      0.000001, // effectively off, but exercise the jitter path
			rnd:         func() float64 { return 1 },
			sleep: func(ctx context.Context, d time.Duration) error {
				slept = append(slept, d)
				return nil
			},
		},
	}
	src := &scriptedSource{failures: 2, failError: &StatusError{Status: 503}}
	fed, err := New(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	resp := fed.Query(context.Background(), "r", "a", "q")
	if resp.Err != nil {
		t.Fatalf("Query error: %v", resp.Err)
	}
	if resp.Degraded {
		t.Error("successful retry marked degraded")
	}
	st := resp.Sources[0]
	if st.State != StateOK || st.Attempts != 3 {
		t.Fatalf("status = %+v, want ok after 3 attempts", st)
	}
	if len(slept) != 2 {
		t.Fatalf("sleeps = %v, want 2 backoffs", slept)
	}
	// Schedule: ~10ms then ~20ms (jitter ≈ 0).
	if slept[0] < 9*time.Millisecond || slept[0] > 10*time.Millisecond {
		t.Errorf("first backoff = %v, want ≈10ms", slept[0])
	}
	if slept[1] < 19*time.Millisecond || slept[1] > 20*time.Millisecond {
		t.Errorf("second backoff = %v, want ≈20ms", slept[1])
	}
}

// TestFederatorTerminalErrorNotRetried verifies a 4xx stops the loop after
// one attempt.
func TestFederatorTerminalErrorNotRetried(t *testing.T) {
	var slept int
	cfg := Config{
		Retry: RetryConfig{
			MaxAttempts: 5,
			sleep: func(ctx context.Context, d time.Duration) error {
				slept++
				return nil
			},
		},
	}
	src := &scriptedSource{failures: 99, failError: &StatusError{Status: 400, Code: "query_error"}}
	fed, err := New(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	resp := fed.Query(context.Background(), "r", "a", "q")
	if resp.Err == nil || !errors.Is(resp.Err, ErrAllSourcesFailed) {
		t.Fatalf("Err = %v, want ErrAllSourcesFailed", resp.Err)
	}
	if src.calls != 1 || slept != 0 {
		t.Errorf("terminal error retried: calls=%d sleeps=%d, want 1/0", src.calls, slept)
	}
}

// TestFederatorRetryBudgetCaps verifies that once the budget drains, further
// requests fail without retrying.
func TestFederatorRetryBudgetCaps(t *testing.T) {
	var slept int
	cfg := Config{
		DisableBreaker: true, // isolate the budget from breaker fail-fast
		Retry: RetryConfig{
			MaxAttempts: 2,
			BudgetBurst: 3,
			BudgetRatio: 0.0001,
			sleep: func(ctx context.Context, d time.Duration) error {
				slept++
				return nil
			},
		},
	}
	src := &scriptedSource{failures: 1 << 30, failError: &StatusError{Status: 503}}
	fed, err := New(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		fed.Query(context.Background(), "r", "a", "q")
	}
	// 10 requests × 1 retry each would be 10 retries; the budget allows ~3.
	if slept != 3 {
		t.Errorf("retries issued = %d, want 3 (budget-capped)", slept)
	}
	// 10 first attempts + 3 budgeted retries.
	if src.calls != 13 {
		t.Errorf("source calls = %d, want 13", src.calls)
	}
}
