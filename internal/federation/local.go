package federation

import (
	"context"
	"errors"

	"repro/internal/rdf"
	"repro/internal/sparql"
)

// Querier is the slice of the G-SACS decision engine a LocalSource needs;
// *gsacs.Engine satisfies it (the interface lives here so the engine package
// can depend on federation for the server wiring without a cycle).
type Querier interface {
	QueryCtx(ctx context.Context, subject, action rdf.IRI, query string) (*sparql.Result, error)
}

// LocalSource adapts an in-process engine to the Source interface. It is the
// degenerate federation member: always reachable, failing only on query
// errors or cancellation.
type LocalSource struct {
	name string
	eng  Querier
}

// NewLocalSource names an engine-backed source.
func NewLocalSource(name string, eng Querier) *LocalSource {
	return &LocalSource{name: name, eng: eng}
}

// Name implements Source.
func (s *LocalSource) Name() string { return s.name }

// Query implements Source by evaluating against the local engine and
// rendering the result into the wire shape. Apart from cancellation and
// deadlines, a local failure is deterministic (parse or evaluation error),
// so it is marked terminal: retrying it cannot help.
func (s *LocalSource) Query(ctx context.Context, role, action rdf.IRI, query string) (*Result, error) {
	res, err := s.eng.QueryCtx(ctx, role, action, query)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			return nil, err
		}
		return nil, MarkTerminal(err)
	}
	return FromSPARQL(res), nil
}

// FromSPARQL renders an in-process query result into the wire shape — the
// same rendering the v1 HTTP handler uses, so local and remote sources are
// indistinguishable to the merge.
func FromSPARQL(res *sparql.Result) *Result {
	switch res.Kind {
	case sparql.Ask:
		return &Result{Kind: KindAsk, Boolean: res.Bool}
	case sparql.Construct, sparql.Describe:
		out := &Result{Kind: KindGraph}
		for _, t := range res.Graph.Triples() {
			out.Triples = append(out.Triples, t.String())
		}
		return out
	default:
		out := &Result{Kind: KindSelect, Vars: make([]string, len(res.Vars))}
		for i, v := range res.Vars {
			out.Vars[i] = string(v)
		}
		out.Rows = make([]map[string]string, len(res.Bindings))
		for i, b := range res.Bindings {
			row := make(map[string]string, len(b))
			for v, t := range b {
				row[string(v)] = t.String()
			}
			out.Rows[i] = row
		}
		return out
	}
}
