package federation

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/obs"
	"repro/internal/rdf"
)

// TestRemoteSourceTraceHeaders: a traced context must reach the peer as
// X-Trace-Id plus X-Parent-Span (the caller's current span, so the peer's
// root parents under our fed.source span); an untraced context sends neither.
func TestRemoteSourceTraceHeaders(t *testing.T) {
	type seen struct{ traceID, parentSpan string }
	headers := make(chan seen, 1)
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		headers <- seen{
			traceID:    r.Header.Get(obs.TraceHeader),
			parentSpan: r.Header.Get(obs.ParentSpanHeader),
		}
		w.Write([]byte(`{"head":{"vars":[]},"results":[]}`))
	}))
	defer peer.Close()

	src := NewRemoteSource("peer", peer.URL, nil)
	role := rdf.IRI("http://example.org/Role")
	action := rdf.IRI("http://example.org/View")

	tr := obs.NewTracer(4)
	ctx, root := tr.StartTrace(context.Background(), "req", "")
	ctx, span := obs.StartSpan(ctx, "fed.source")
	if _, err := src.Query(ctx, role, action, "SELECT ?s WHERE { ?s ?p ?o }"); err != nil {
		t.Fatal(err)
	}
	got := <-headers
	if got.traceID != obs.TraceID(ctx) {
		t.Errorf("peer saw trace id %q, want %q", got.traceID, obs.TraceID(ctx))
	}
	if got.parentSpan != span.ID() {
		t.Errorf("peer saw parent span %q, want the caller's span %q", got.parentSpan, span.ID())
	}
	span.End()
	root.End()

	if _, err := src.Query(context.Background(), role, action, "SELECT ?s WHERE { ?s ?p ?o }"); err != nil {
		t.Fatal(err)
	}
	got = <-headers
	if got.traceID != "" || got.parentSpan != "" {
		t.Errorf("untraced request leaked headers: %+v", got)
	}
}

// TestFederatorPropagatesSpanToPeers exercises the same propagation through
// the full fan-out: every peer must observe the shared trace ID and a parent
// span that belongs to the originating trace.
func TestFederatorPropagatesSpanToPeers(t *testing.T) {
	type seen struct{ traceID, parentSpan string }
	headers := make(chan seen, 2)
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		headers <- seen{
			traceID:    r.Header.Get(obs.TraceHeader),
			parentSpan: r.Header.Get(obs.ParentSpanHeader),
		}
		w.Write([]byte(`{"head":{"vars":[]},"results":[]}`))
	})
	p1 := httptest.NewServer(handler)
	defer p1.Close()
	p2 := httptest.NewServer(handler)
	defer p2.Close()

	fed, err := New(Config{},
		NewRemoteSource("p1", p1.URL, nil),
		NewRemoteSource("p2", p2.URL, nil))
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer(4)
	ctx, root := tr.StartTrace(context.Background(), "req", "")
	resp := fed.Query(ctx, rdf.IRI("http://example.org/Role"),
		rdf.IRI("http://example.org/View"), "SELECT ?s WHERE { ?s ?p ?o }")
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	root.End()

	td, ok := tr.Trace(obs.TraceID(ctx))
	if !ok {
		t.Fatal("trace not retained")
	}
	spanIDs := map[string]bool{}
	for _, sd := range td.Spans {
		spanIDs[sd.SpanID] = true
	}
	for i := 0; i < 2; i++ {
		got := <-headers
		if got.traceID != obs.TraceID(ctx) {
			t.Errorf("peer %d saw trace id %q, want %q", i, got.traceID, obs.TraceID(ctx))
		}
		if !spanIDs[got.parentSpan] {
			t.Errorf("peer %d saw parent span %q, not a span of the originating trace",
				i, got.parentSpan)
		}
	}
}
