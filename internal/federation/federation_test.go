// Chaos and equivalence tests for the federation layer, driven through real
// G-SACS engines over the Section 7.1 scenario. The scenario is naturally
// federated — a hydrology store and a chemical-site store — which is exactly
// the split the paper's emergency workload has to aggregate.
package federation_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/federation"
	"repro/internal/grdf"
	"repro/internal/gsacs"
	"repro/internal/owl"
	"repro/internal/rdf"
	"repro/internal/seconto"
	"repro/internal/store"
)

// chemQuery aggregates chemical sites — partition-local to the chemical
// store, so federated evaluation over the (hydrology, chemical) split must
// agree with the merged store.
const chemQuery = `SELECT ?site ?name WHERE {
  ?site a app:ChemSite .
  ?site app:hasSiteName ?name .
}`

const streamQuery = `SELECT ?s WHERE { ?s a app:HydroStream . }`

// buildEngine wires a decision engine the same way cmd/gsacs-server does.
func buildEngine(t *testing.T, data *store.Store, policies *seconto.Set) *gsacs.Engine {
	t.Helper()
	r := owl.NewReasoner()
	r.AddGraph(grdf.Ontology())
	r.AddGraph(seconto.Ontology())
	r.AddAll(data.Triples())
	return gsacs.New(policies, data, gsacs.Options{Reasoner: r, CacheSize: 16})
}

// rowKeysOver canonicalizes a result for comparison, projecting every row
// onto vars: one sorted key per distinct projected row. Projection matters
// under fault injection, where garbage sources widen the variable union.
func rowKeysOver(res *federation.Result, vars []string) []string {
	vars = append([]string(nil), vars...)
	sort.Strings(vars)
	seen := map[string]bool{}
	var keys []string
	for _, row := range res.Rows {
		var sb strings.Builder
		for _, v := range vars {
			sb.WriteString(v)
			sb.WriteByte('=')
			sb.WriteString(row[v])
			sb.WriteByte(';')
		}
		if k := sb.String(); !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// rowKeys canonicalizes a result over its own variables.
func rowKeys(res *federation.Result) []string { return rowKeysOver(res, res.Vars) }

func queryKeys(t *testing.T, src federation.Source, role rdf.IRI, q string) []string {
	t.Helper()
	res, err := src.Query(context.Background(), role, seconto.ActionView, q)
	if err != nil {
		t.Fatalf("query %s: %v", src.Name(), err)
	}
	return rowKeys(res)
}

func equalKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFederatedMergeEquivalence: federating the hydrology and chemical
// stores must answer partition-local queries exactly like the single merged
// store, for SELECT and ASK alike.
func TestFederatedMergeEquivalence(t *testing.T) {
	sc := datagen.NewScenario(datagen.ScenarioConfig{Seed: 11, Sites: 6})
	hydro := buildEngine(t, sc.Hydrology.Store, sc.Policies)
	chem := buildEngine(t, sc.Chemical.Store, sc.Policies)
	merged := buildEngine(t, sc.Merged, sc.Policies)

	fed, err := federation.New(federation.Config{},
		federation.NewLocalSource("hydro", hydro),
		federation.NewLocalSource("chem", chem))
	if err != nil {
		t.Fatal(err)
	}
	mergedSrc := federation.NewLocalSource("merged", merged)

	for _, role := range []rdf.IRI{datagen.RoleEmergency, datagen.RoleHazmat} {
		for _, q := range []string{chemQuery, streamQuery} {
			resp := fed.Query(context.Background(), role, seconto.ActionView, q)
			if resp.Err != nil {
				t.Fatalf("federated query: %v", resp.Err)
			}
			if resp.Degraded {
				t.Errorf("healthy federation degraded: %+v", resp.Sources)
			}
			got := rowKeys(resp.Result)
			want := queryKeys(t, mergedSrc, role, q)
			if !equalKeys(got, want) {
				t.Errorf("role %s: federated %d rows != merged %d rows",
					role.LocalName(), len(got), len(want))
			}
			if len(want) == 0 {
				t.Errorf("role %s query %q: empty baseline, test is vacuous", role.LocalName(), q)
			}
		}
		// ASK must OR across sources.
		resp := fed.Query(context.Background(), role, seconto.ActionView,
			`ASK { ?s a app:ChemSite }`)
		if resp.Err != nil || resp.Result.Kind != federation.KindAsk || !resp.Result.Boolean {
			t.Errorf("federated ASK = %+v (err %v), want true", resp.Result, resp.Err)
		}
	}
}

// TestFederatedDegradationChaos is the headline chaos scenario: one of two
// sources forced to 100% errors. Every request must still be answered with
// the healthy source's full solution set and degraded=true, and the breaker
// must open within its configured threshold of requests.
func TestFederatedDegradationChaos(t *testing.T) {
	sc := datagen.NewScenario(datagen.ScenarioConfig{Seed: 11, Sites: 6})
	healthy := buildEngine(t, sc.Chemical.Store, sc.Policies)
	downEng := buildEngine(t, sc.Hydrology.Store, sc.Policies)
	down := federation.NewFaultySource(
		federation.NewLocalSource("down", downEng),
		federation.FaultConfig{Seed: 1, ErrorRate: 1.0})

	const threshold = 3
	fed, err := federation.New(federation.Config{
		SourceTimeout: time.Second,
		Retry:         federation.RetryConfig{MaxAttempts: 2, BaseDelay: time.Millisecond},
		Breaker:       federation.BreakerConfig{Threshold: threshold, Cooldown: time.Minute},
	},
		federation.NewLocalSource("healthy", healthy), down)
	if err != nil {
		t.Fatal(err)
	}

	want := queryKeys(t, federation.NewLocalSource("baseline", healthy),
		datagen.RoleEmergency, chemQuery)
	for i := 0; i < threshold+2; i++ {
		resp := fed.Query(context.Background(), datagen.RoleEmergency, seconto.ActionView, chemQuery)
		if resp.Err != nil {
			t.Fatalf("request %d: federated query failed outright: %v", i, resp.Err)
		}
		if !resp.Degraded {
			t.Fatalf("request %d: not marked degraded with a 100%%-error source", i)
		}
		if got := rowKeys(resp.Result); !equalKeys(got, want) {
			t.Fatalf("request %d: degraded answer lost healthy solutions (%d != %d rows)",
				i, len(got), len(want))
		}
		var downStatus *federation.SourceStatus
		for j := range resp.Sources {
			if resp.Sources[j].Source == "down" {
				downStatus = &resp.Sources[j]
			}
		}
		if downStatus == nil {
			t.Fatalf("request %d: no status block for the down source", i)
		}
		if i >= threshold && downStatus.State != federation.StateOpen {
			t.Errorf("request %d: down source state = %s, want open after %d failures",
				i, downStatus.State, threshold)
		}
	}
	if st, ok := fed.BreakerState("down"); !ok || st != federation.Open {
		t.Errorf("breaker state = %v (known=%v), want open", st, ok)
	}
	if st, ok := fed.BreakerState("healthy"); !ok || st != federation.Closed {
		t.Errorf("healthy breaker state = %v (known=%v), want closed", st, ok)
	}
}

// TestFederationChaosInvariants drives a 3-source federation with two
// misbehaving members (errors, hangs, garbage) and asserts the availability
// and correctness invariants: no request fails outright, the healthy
// source's solutions are always present, and every status block is
// well-formed.
func TestFederationChaosInvariants(t *testing.T) {
	sc := datagen.NewScenario(datagen.ScenarioConfig{Seed: 11, Sites: 6})
	healthy := buildEngine(t, sc.Merged, sc.Policies)
	flaky1 := federation.NewFaultySource(
		federation.NewLocalSource("flaky1", buildEngine(t, sc.Chemical.Store, sc.Policies)),
		federation.FaultConfig{Seed: 42, ErrorRate: 0.35, HangRate: 0.2, GarbageRate: 0.2, Latency: 200 * time.Microsecond})
	flaky2 := federation.NewFaultySource(
		federation.NewLocalSource("flaky2", buildEngine(t, sc.Hydrology.Store, sc.Policies)),
		federation.FaultConfig{Seed: 43, ErrorRate: 0.5, HangRate: 0.3, Latency: 100 * time.Microsecond})

	fed, err := federation.New(federation.Config{
		SourceTimeout: 20 * time.Millisecond,
		Retry:         federation.RetryConfig{MaxAttempts: 2, BaseDelay: time.Millisecond},
		Breaker:       federation.BreakerConfig{Threshold: 4, Cooldown: 50 * time.Millisecond},
	},
		federation.NewLocalSource("healthy", healthy), flaky1, flaky2)
	if err != nil {
		t.Fatal(err)
	}

	baseline, err := federation.NewLocalSource("baseline", healthy).
		Query(context.Background(), datagen.RoleEmergency, seconto.ActionView, chemQuery)
	if err != nil {
		t.Fatal(err)
	}
	want := rowKeys(baseline)
	validStates := map[string]bool{
		federation.StateOK: true, federation.StateError: true,
		federation.StateTimeout: true, federation.StateOpen: true,
	}
	degraded := 0
	for i := 0; i < 60; i++ {
		resp := fed.Query(context.Background(), datagen.RoleEmergency, seconto.ActionView, chemQuery)
		if resp.Err != nil {
			t.Fatalf("request %d failed outright with a healthy member: %v", i, resp.Err)
		}
		if resp.Degraded {
			degraded++
		}
		got := map[string]bool{}
		for _, k := range rowKeysOver(resp.Result, baseline.Vars) {
			got[k] = true
		}
		for _, k := range want {
			if !got[k] {
				t.Fatalf("request %d: healthy solution missing from merged answer", i)
			}
		}
		if len(resp.Sources) != 3 {
			t.Fatalf("request %d: %d status blocks, want 3", i, len(resp.Sources))
		}
		for _, st := range resp.Sources {
			if !validStates[st.State] {
				t.Errorf("request %d: invalid state %q for %s", i, st.State, st.Source)
			}
			if st.State != federation.StateOpen && st.Attempts < 1 {
				t.Errorf("request %d: %s reports %d attempts", i, st.Source, st.Attempts)
			}
		}
	}
	if degraded == 0 {
		t.Error("chaos run never degraded — fault injection inert, test is vacuous")
	}
	s1, s2 := flaky1.Stats(), flaky2.Stats()
	if s1.Errors+s1.Hangs+s1.Garbage == 0 || s2.Errors+s2.Hangs == 0 {
		t.Errorf("fault stats empty: %+v %+v", s1, s2)
	}
}

// TestRemoteSourceEndToEnd federates a local engine with a real peer served
// over HTTP (httptest + the v1 API) and checks both agree.
func TestRemoteSourceEndToEnd(t *testing.T) {
	sc := datagen.NewScenario(datagen.ScenarioConfig{Seed: 11, Sites: 6})
	chem := buildEngine(t, sc.Chemical.Store, sc.Policies)
	hydro := buildEngine(t, sc.Hydrology.Store, sc.Policies)
	merged := buildEngine(t, sc.Merged, sc.Policies)

	peer := httptest.NewServer(gsacs.NewServer(hydro, nil))
	defer peer.Close()

	fed, err := federation.New(federation.Config{},
		federation.NewLocalSource("chem", chem),
		federation.NewRemoteSource("hydro-remote", peer.URL, peer.Client()))
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{chemQuery, streamQuery} {
		resp := fed.Query(context.Background(), datagen.RoleEmergency, seconto.ActionView, q)
		if resp.Err != nil {
			t.Fatalf("federated query over HTTP: %v", resp.Err)
		}
		if resp.Degraded {
			t.Fatalf("remote peer degraded: %+v", resp.Sources)
		}
		want := queryKeys(t, federation.NewLocalSource("merged", merged),
			datagen.RoleEmergency, q)
		if got := rowKeys(resp.Result); !equalKeys(got, want) {
			t.Errorf("local+remote rows (%d) != merged rows (%d)", len(got), len(want))
		}
	}

	// A malformed query is terminal: the remote answers 400 and the
	// federator must not retry it into availability.
	resp := fed.Query(context.Background(), datagen.RoleEmergency, seconto.ActionView,
		"SELECT ?x WHERE { broken")
	if resp.Err == nil || !errors.Is(resp.Err, federation.ErrAllSourcesFailed) {
		t.Fatalf("malformed query: err = %v, want ErrAllSourcesFailed", resp.Err)
	}
	for _, st := range resp.Sources {
		if st.Attempts > 1 {
			t.Errorf("source %s retried a terminal query error %d times", st.Source, st.Attempts)
		}
	}
}
