package federation

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic breaker tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// fail reports one failed request through the breaker; admitted reports
// whether the breaker let it through.
func fail(t *testing.T, b *Breaker) bool {
	t.Helper()
	report, err := b.Allow()
	if err != nil {
		if !errors.Is(err, ErrOpen) {
			t.Fatalf("Allow: unexpected error %v", err)
		}
		return false
	}
	report(false)
	return true
}

func succeed(t *testing.T, b *Breaker) bool {
	t.Helper()
	report, err := b.Allow()
	if err != nil {
		return false
	}
	report(true)
	return true
}

// TestBreakerLifecycle walks the full closed → open → half-open → closed
// cycle on a fake clock, recording every transition.
func TestBreakerLifecycle(t *testing.T) {
	clock := newFakeClock()
	var transitions []string
	b := NewBreaker(BreakerConfig{
		Threshold: 3,
		Cooldown:  time.Second,
		Now:       clock.Now,
		OnTransition: func(from, to BreakerState) {
			transitions = append(transitions, from.String()+">"+to.String())
		},
	})

	if got := b.State(); got != Closed {
		t.Fatalf("initial state = %v, want closed", got)
	}
	// Two failures stay under the threshold.
	fail(t, b)
	fail(t, b)
	if got := b.State(); got != Closed {
		t.Fatalf("state after 2 failures = %v, want closed", got)
	}
	// An intervening success resets the consecutive count.
	succeed(t, b)
	fail(t, b)
	fail(t, b)
	if got := b.State(); got != Closed {
		t.Fatalf("consecutive count survived a success: state = %v", got)
	}
	// The third consecutive failure trips the circuit.
	fail(t, b)
	if got := b.State(); got != Open {
		t.Fatalf("state after threshold failures = %v, want open", got)
	}
	// While open, requests are rejected without reaching the source.
	if admitted := fail(t, b); admitted {
		t.Fatal("open breaker admitted a request before cooldown")
	}
	// After the cooldown the next request is admitted as a half-open probe;
	// its failure reopens the circuit.
	clock.Advance(time.Second)
	if got := b.State(); got != HalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", got)
	}
	if admitted := fail(t, b); !admitted {
		t.Fatal("half-open breaker rejected the probe")
	}
	if got := b.State(); got != Open {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	// A successful probe after another cooldown recloses the circuit.
	clock.Advance(time.Second)
	if admitted := succeed(t, b); !admitted {
		t.Fatal("half-open breaker rejected the second probe")
	}
	if got := b.State(); got != Closed {
		t.Fatalf("state after successful probe = %v, want closed", got)
	}
	// And the circuit must trip again only after a fresh threshold run.
	fail(t, b)
	fail(t, b)
	if got := b.State(); got != Closed {
		t.Fatalf("stale failure count survived reclose: state = %v", got)
	}

	want := []string{
		"closed>open",
		"open>half-open", "half-open>open",
		"open>half-open", "half-open>closed",
	}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transition[%d] = %s, want %s (all: %v)", i, transitions[i], want[i], transitions)
		}
	}
}

// TestBreakerHalfOpenProbeLimit verifies only HalfOpenProbes requests get
// through while a probe is outstanding.
func TestBreakerHalfOpenProbeLimit(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Second, HalfOpenProbes: 1, Now: clock.Now})
	fail(t, b) // trip
	clock.Advance(time.Second)

	probe, err := b.Allow()
	if err != nil {
		t.Fatalf("first half-open probe rejected: %v", err)
	}
	if _, err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("second concurrent probe admitted, want ErrOpen (err=%v)", err)
	}
	probe(true)
	if got := b.State(); got != Closed {
		t.Fatalf("state after probe success = %v, want closed", got)
	}
}

// TestBreakerReportIdempotent checks a report callback applied twice counts
// once.
func TestBreakerReportIdempotent(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 2})
	report, err := b.Allow()
	if err != nil {
		t.Fatal(err)
	}
	report(false)
	report(false) // must not double-count toward the threshold
	if got := b.State(); got != Closed {
		t.Fatalf("double-counted report tripped the breaker: %v", got)
	}
}

// TestBreakerConcurrent hammers one breaker from many goroutines to give
// the race detector something to chew on.
func TestBreakerConcurrent(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(BreakerConfig{Threshold: 5, Cooldown: time.Millisecond, Now: clock.Now})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if report, err := b.Allow(); err == nil {
					report(i%3 == 0)
				}
				if i%50 == 0 {
					clock.Advance(time.Millisecond)
				}
				_ = b.State()
			}
		}(g)
	}
	wg.Wait()
}
