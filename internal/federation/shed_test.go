package federation

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestRetryAfterHint(t *testing.T) {
	cases := []struct {
		err  error
		want time.Duration
	}{
		{nil, 0},
		{errors.New("plain"), 0},
		{&StatusError{Status: 429}, 0},
		{&StatusError{Status: 429, RetryAfter: 3 * time.Second}, 3 * time.Second},
		{fmt.Errorf("wrapped: %w", &StatusError{Status: 503, RetryAfter: time.Second}), time.Second},
	}
	for _, c := range cases {
		if got := RetryAfterHint(c.err); got != c.want {
			t.Errorf("RetryAfterHint(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestIsShed(t *testing.T) {
	if !IsShed(&StatusError{Status: 429}) {
		t.Error("429 not classified as shed")
	}
	if IsShed(&StatusError{Status: 503}) || IsShed(errors.New("x")) || IsShed(nil) {
		t.Error("non-429 classified as shed")
	}
}

// TestRetryAfterStretchesBackoff: a shedding peer's Retry-After hint must
// replace a shorter computed backoff, and MaxDelay must still cap the hint.
func TestRetryAfterStretchesBackoff(t *testing.T) {
	var slept []time.Duration
	cfg := Config{
		Retry: RetryConfig{
			MaxAttempts: 3,
			BaseDelay:   10 * time.Millisecond,
			MaxDelay:    700 * time.Millisecond,
			Jitter:      0.000001,
			rnd:         func() float64 { return 1 },
			sleep: func(ctx context.Context, d time.Duration) error {
				slept = append(slept, d)
				return nil
			},
		},
	}
	src := &scriptedSource{failures: 2,
		failError: &StatusError{Status: 429, RetryAfter: 500 * time.Millisecond}}
	fed, err := New(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	resp := fed.Query(context.Background(), "r", "a", "q")
	if resp.Err != nil {
		t.Fatalf("Query error: %v", resp.Err)
	}
	if len(slept) != 2 {
		t.Fatalf("sleeps = %v, want 2", slept)
	}
	for i, d := range slept {
		if d != 500*time.Millisecond {
			t.Errorf("sleep %d = %v, want the 500ms Retry-After hint", i, d)
		}
	}

	// A hint beyond MaxDelay is capped: advice, not a contract.
	slept = nil
	src2 := &scriptedSource{failures: 1,
		failError: &StatusError{Status: 429, RetryAfter: time.Hour}}
	fed, err = New(cfg, src2)
	if err != nil {
		t.Fatal(err)
	}
	if resp := fed.Query(context.Background(), "r", "a", "q"); resp.Err != nil {
		t.Fatalf("Query error: %v", resp.Err)
	}
	if len(slept) != 1 || slept[0] != 700*time.Millisecond {
		t.Errorf("sleeps = %v, want the hint capped at MaxDelay (700ms)", slept)
	}
}

// TestFinal429ClassifiedShed: a peer that sheds through every attempt lands
// in the dedicated shed state, not error, and the per-source metric moves.
func TestFinal429ClassifiedShed(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := Config{
		DisableBreaker: true,
		Metrics:        reg,
		Retry: RetryConfig{
			MaxAttempts: 2,
			sleep:       func(ctx context.Context, d time.Duration) error { return nil },
		},
	}
	src := &scriptedSource{failures: 1 << 30, failError: &StatusError{Status: 429}}
	fed, err := New(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	resp := fed.Query(context.Background(), "r", "a", "q")
	if !errors.Is(resp.Err, ErrAllSourcesFailed) {
		t.Fatalf("Err = %v, want ErrAllSourcesFailed", resp.Err)
	}
	if st := resp.Sources[0]; st.State != StateShed {
		t.Fatalf("state = %q, want %q", st.State, StateShed)
	}
	found := false
	for _, m := range reg.Snapshot() {
		if m.Name == "grdf_fed_source_requests_total" && m.Labels["state"] == StateShed && m.Value > 0 {
			found = true
		}
	}
	if !found {
		t.Error("shed outcome not counted in grdf_fed_source_requests_total{state=shed}")
	}
}

// TestRemoteSourceParsesRetryAfter: the wire → StatusError mapping carries
// the peer's Retry-After so the loop above has something to honor.
func TestRemoteSourceParsesRetryAfter(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(map[string]string{"error": "shed", "code": "overloaded"})
	}))
	defer srv.Close()
	src := NewRemoteSource("peer", srv.URL, nil)
	_, err := src.Query(context.Background(), "r", "a", "SELECT ?s WHERE {?s ?p ?o}")
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *StatusError", err)
	}
	if se.Status != http.StatusTooManyRequests || se.Code != "overloaded" {
		t.Errorf("StatusError = %+v, want 429/overloaded", se)
	}
	if se.RetryAfter != 7*time.Second {
		t.Errorf("RetryAfter = %v, want 7s", se.RetryAfter)
	}
	if !IsShed(err) {
		t.Error("peer 429 not recognized as shed")
	}
}
