package federation

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/rdf"
)

// Per-source request outcome labels used in SourceStatus.State and the
// grdf_fed_source_requests_total metric.
const (
	StateOK      = "ok"
	StateError   = "error"
	StateTimeout = "timeout"
	StateOpen    = "open" // skipped: circuit breaker rejected the request
	StateShed    = "shed" // refused: peer answered 429 (load shed, not a fault)
)

// Config tunes a Federator. Zero values select the defaults noted on each
// field.
type Config struct {
	// SourceTimeout bounds each attempt against one source (default 2s).
	SourceTimeout time.Duration
	// Retry tunes the per-source retry loop.
	Retry RetryConfig
	// Breaker tunes the per-source circuit breaker.
	Breaker BreakerConfig
	// DisableBreaker turns the breakers off (every request probes every
	// source) — the E14 ablation arm.
	DisableBreaker bool
	// Metrics receives federation instrumentation (nil disables).
	Metrics *obs.Registry
}

// SourceStatus is the per-source block of a federated response: what
// happened at this source for this request.
type SourceStatus struct {
	Source   string  `json:"source"`
	State    string  `json:"state"` // ok | error | timeout | open | shed
	Attempts int     `json:"attempts"`
	Error    string  `json:"error,omitempty"`
	Millis   float64 `json:"ms"`
}

// Response is one federated query outcome. Degraded is true when at least
// one source did not contribute; Err is non-nil only when no source did.
type Response struct {
	Result   *Result
	Degraded bool
	Sources  []SourceStatus
	Err      error
}

// sourceState bundles one Source with its resilience companions and metric
// handles.
type sourceState struct {
	src     Source
	breaker *Breaker
	budget  *RetryBudget

	mOK, mErr, mTimeout, mOpen, mShed *obs.Counter
	mRetries                          *obs.Counter
	mLatency                          *obs.Histogram
}

// Federator fans queries out to its sources and merges the answers under
// the resilience stack. Safe for concurrent use.
type Federator struct {
	cfg     Config
	sources []*sourceState

	mDegraded *obs.Counter
	mFailed   *obs.Counter
	mRequests *obs.Counter
}

// New builds a Federator over sources. Source names must be unique: they
// key the per-source status blocks and metric labels.
func New(cfg Config, sources ...Source) (*Federator, error) {
	if len(sources) == 0 {
		return nil, errors.New("federation: no sources")
	}
	if cfg.SourceTimeout <= 0 {
		cfg.SourceTimeout = 2 * time.Second
	}
	cfg.Retry.defaults()
	f := &Federator{cfg: cfg}
	reg := cfg.Metrics
	f.mRequests = reg.Counter("grdf_fed_requests_total",
		"Federated queries by outcome.", "outcome", "ok")
	f.mDegraded = reg.Counter("grdf_fed_requests_total",
		"Federated queries by outcome.", "outcome", "degraded")
	f.mFailed = reg.Counter("grdf_fed_requests_total",
		"Federated queries by outcome.", "outcome", "failed")
	seen := map[string]bool{}
	for _, src := range sources {
		name := src.Name()
		if seen[name] {
			return nil, fmt.Errorf("federation: duplicate source name %q", name)
		}
		seen[name] = true
		ss := &sourceState{
			src:      src,
			budget:   NewRetryBudget(cfg.Retry),
			mOK:      sourceCounter(reg, name, StateOK),
			mErr:     sourceCounter(reg, name, StateError),
			mTimeout: sourceCounter(reg, name, StateTimeout),
			mOpen:    sourceCounter(reg, name, StateOpen),
			mShed:    sourceCounter(reg, name, StateShed),
			mRetries: reg.Counter("grdf_fed_retries_total",
				"Retries issued per source.", "source", name),
			mLatency: reg.Histogram("grdf_fed_source_duration_seconds",
				"Per-source federated request latency (all attempts).", nil,
				"source", name),
		}
		if !cfg.DisableBreaker {
			bcfg := cfg.Breaker
			userHook := bcfg.OnTransition
			if reg != nil {
				gauge := reg.Gauge("grdf_fed_breaker_state",
					"Breaker position per source (0 closed, 1 half-open, 2 open).",
					"source", name)
				transitions := func(to BreakerState) *obs.Counter {
					return reg.Counter("grdf_fed_breaker_transitions_total",
						"Breaker transitions per source and target state.",
						"source", name, "to", to.String())
				}
				toClosed, toOpen, toHalf := transitions(Closed), transitions(Open), transitions(HalfOpen)
				bcfg.OnTransition = func(from, to BreakerState) {
					switch to {
					case Closed:
						gauge.Set(0)
						toClosed.Inc()
					case HalfOpen:
						gauge.Set(1)
						toHalf.Inc()
					case Open:
						gauge.Set(2)
						toOpen.Inc()
					}
					if userHook != nil {
						userHook(from, to)
					}
				}
			}
			ss.breaker = NewBreaker(bcfg)
		}
		f.sources = append(f.sources, ss)
	}
	return f, nil
}

func sourceCounter(reg *obs.Registry, name, state string) *obs.Counter {
	return reg.Counter("grdf_fed_source_requests_total",
		"Per-source federated request outcomes.", "source", name, "state", state)
}

// Sources lists the member names in fan-out order.
func (f *Federator) Sources() []string {
	out := make([]string, len(f.sources))
	for i, ss := range f.sources {
		out[i] = ss.src.Name()
	}
	return out
}

// BreakerState reports the named source's breaker position; ok is false for
// unknown sources or when breakers are disabled.
func (f *Federator) BreakerState(source string) (BreakerState, bool) {
	for _, ss := range f.sources {
		if ss.src.Name() == source && ss.breaker != nil {
			return ss.breaker.State(), true
		}
	}
	return Closed, false
}

// Query fans the query out to every source concurrently and merges the
// results. The returned Response always carries per-source statuses; its
// Err wraps ErrAllSourcesFailed (or the parent ctx error) only when not a
// single source answered.
func (f *Federator) Query(ctx context.Context, role, action rdf.IRI, query string) *Response {
	ctx, span := obs.StartSpan(ctx, "fed.fanout")
	defer span.End()
	n := len(f.sources)
	span.Add("sources", int64(n))
	results := make([]*Result, n)
	statuses := make([]SourceStatus, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i, ss := range f.sources {
		go func(i int, ss *sourceState) {
			defer wg.Done()
			results[i], statuses[i] = f.querySource(ctx, ss, role, action, query)
		}(i, ss)
	}
	wg.Wait()

	resp := &Response{Sources: statuses}
	answered := 0
	for i, st := range statuses {
		if st.State == StateOK {
			answered++
		} else {
			resp.Degraded = true
			results[i] = nil
		}
	}
	span.Add("answered", int64(answered))
	switch {
	case answered == 0:
		if err := ctx.Err(); err != nil {
			resp.Err = err
		} else {
			resp.Err = fmt.Errorf("%w (%d sources)", ErrAllSourcesFailed, n)
		}
		f.mFailed.Inc()
		span.Fail(resp.Err)
		return resp
	case resp.Degraded:
		f.mDegraded.Inc()
		span.SetAttr("degraded", "true")
	default:
		f.mRequests.Inc()
	}
	resp.Result = Merge(results)
	return resp
}

// querySource runs the full per-source pipeline: breaker admission, retry
// loop with backoff and budget, attempt deadlines, outcome classification.
// Each source gets a fed.source span — including breaker-rejected and dead
// sources, so a skipped peer shows up in the trace as a failed span rather
// than a hole.
func (f *Federator) querySource(ctx context.Context, ss *sourceState, role, action rdf.IRI, query string) (*Result, SourceStatus) {
	status := SourceStatus{Source: ss.src.Name()}
	ctx, span := obs.StartSpan(ctx, "fed.source")
	span.SetAttr("source", ss.src.Name())
	if ss.breaker != nil {
		span.SetAttr("breaker", ss.breaker.State().String())
	}
	start := time.Now()
	defer func() {
		status.Millis = float64(time.Since(start).Microseconds()) / 1000
		ss.mLatency.ObserveSince(start)
		span.SetAttr("state", status.State)
		span.Add("attempts", int64(status.Attempts))
		span.End()
	}()

	report := func(bool) {}
	if ss.breaker != nil {
		r, err := ss.breaker.Allow()
		if err != nil {
			status.State = StateOpen
			status.Error = err.Error()
			ss.mOpen.Inc()
			span.Fail(err)
			return nil, status
		}
		report = r
	}
	ss.budget.Deposit()

	var lastErr error
	for attempt := 1; attempt <= f.cfg.Retry.MaxAttempts; attempt++ {
		status.Attempts = attempt
		actx, cancel := context.WithTimeout(ctx, f.cfg.SourceTimeout)
		res, err := ss.src.Query(actx, role, action, query)
		cancel()
		if err == nil {
			report(true)
			status.State = StateOK
			ss.mOK.Inc()
			return res, status
		}
		lastErr = err
		if ctx.Err() != nil || !IsRetryable(err) || attempt == f.cfg.Retry.MaxAttempts {
			break
		}
		if !ss.budget.Withdraw() {
			lastErr = fmt.Errorf("federation: retry budget exhausted: %w", err)
			break
		}
		ss.mRetries.Inc()
		span.Add("retries", 1)
		// A shedding peer names its own comeback time: take the larger of
		// our backoff and its Retry-After hint (still capped — the hint is
		// advice from an overloaded machine, not a contract), so retries
		// land after its queue drains instead of joining the stampede.
		delay := f.cfg.Retry.backoff(attempt)
		if hint := RetryAfterHint(err); hint > delay {
			delay = hint
			if delay > f.cfg.Retry.MaxDelay {
				delay = f.cfg.Retry.MaxDelay
			}
		}
		if err := f.cfg.Retry.sleep(ctx, delay); err != nil {
			lastErr = err
			break
		}
	}
	report(false)
	switch {
	case errors.Is(lastErr, context.DeadlineExceeded):
		status.State = StateTimeout
		ss.mTimeout.Inc()
	case IsShed(lastErr):
		// The peer is up and talking — it refused the work on purpose. Keep
		// the outcome distinct from faults so shed storms don't masquerade
		// as peer failures on dashboards.
		status.State = StateShed
		ss.mShed.Inc()
	default:
		status.State = StateError
		ss.mErr.Inc()
	}
	if lastErr != nil {
		status.Error = lastErr.Error()
	}
	span.Fail(lastErr)
	return nil, status
}
