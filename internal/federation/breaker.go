package federation

import (
	"errors"
	"sync"
	"time"
)

// BreakerState is the circuit breaker's position.
type BreakerState int32

const (
	// Closed passes requests through, counting consecutive failures.
	Closed BreakerState = iota
	// Open fails fast; after Cooldown the next request probes half-open.
	Open
	// HalfOpen admits a bounded number of probe requests; success closes
	// the circuit, failure reopens it.
	HalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// ErrOpen is returned by Breaker.Allow while the circuit rejects requests.
var ErrOpen = errors.New("federation: circuit breaker open")

// BreakerConfig tunes a Breaker. Zero values select the defaults noted on
// each field.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that trips the circuit
	// (default 5).
	Threshold int
	// Cooldown is how long the circuit stays open before admitting a
	// half-open probe (default 5s).
	Cooldown time.Duration
	// HalfOpenProbes bounds concurrently admitted probes while half-open
	// (default 1).
	HalfOpenProbes int
	// SuccessesToClose is the probe-success count that recloses the circuit
	// (default 1).
	SuccessesToClose int
	// Now is the clock, injectable for deterministic tests (default
	// time.Now).
	Now func() time.Time
	// OnTransition observes every state change in transition order. It runs
	// under the breaker's lock and must not call back into the breaker.
	OnTransition func(from, to BreakerState)
}

func (c *BreakerConfig) defaults() {
	if c.Threshold <= 0 {
		c.Threshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	if c.SuccessesToClose <= 0 {
		c.SuccessesToClose = 1
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// Breaker is a three-state circuit breaker. It is safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu             sync.Mutex
	state          BreakerState
	failures       int       // consecutive failures while closed
	openedAt       time.Time // when the circuit last opened
	probesInFlight int       // admitted half-open probes not yet reported
	probeSuccesses int       // successful probes this half-open episode
}

// NewBreaker builds a breaker from cfg (zero fields take defaults).
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg.defaults()
	return &Breaker{cfg: cfg}
}

// State reports the current state, promoting open → half-open when the
// cooldown has elapsed (observing the state is side-effect free apart from
// that time-driven promotion being visible).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open && b.cfg.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
		return HalfOpen
	}
	return b.state
}

// Allow asks to admit one request. On admission it returns a report
// callback that MUST be called exactly once with the request's outcome;
// otherwise it returns ErrOpen. The callback is safe to call from any
// goroutine.
func (b *Breaker) Allow() (report func(ok bool), err error) {
	b.mu.Lock()
	switch b.state {
	case Open:
		if b.cfg.Now().Sub(b.openedAt) < b.cfg.Cooldown {
			b.mu.Unlock()
			return nil, ErrOpen
		}
		b.transition(HalfOpen)
		fallthrough
	case HalfOpen:
		if b.probesInFlight >= b.cfg.HalfOpenProbes {
			b.mu.Unlock()
			return nil, ErrOpen
		}
		b.probesInFlight++
		b.mu.Unlock()
		return b.reportOnce(b.reportProbe), nil
	default: // Closed
		b.mu.Unlock()
		return b.reportOnce(b.reportClosed), nil
	}
}

// reportOnce guards a report callback against double invocation.
func (b *Breaker) reportOnce(fn func(ok bool)) func(ok bool) {
	var once sync.Once
	return func(ok bool) { once.Do(func() { fn(ok) }) }
}

func (b *Breaker) reportClosed(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != Closed {
		// A concurrent failure already tripped the circuit; this late
		// outcome no longer matters.
		return
	}
	if ok {
		b.failures = 0
		return
	}
	b.failures++
	if b.failures >= b.cfg.Threshold {
		b.trip()
	}
}

func (b *Breaker) reportProbe(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probesInFlight--
	if b.state != HalfOpen {
		return
	}
	if !ok {
		b.trip()
		return
	}
	b.probeSuccesses++
	if b.probeSuccesses >= b.cfg.SuccessesToClose {
		b.failures = 0
		b.transition(Closed)
	}
}

// trip opens the circuit. Caller holds b.mu.
func (b *Breaker) trip() {
	b.openedAt = b.cfg.Now()
	b.failures = 0
	b.probeSuccesses = 0
	b.transition(Open)
}

// transition changes state and fires the observer. Caller holds b.mu.
func (b *Breaker) transition(to BreakerState) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	if to != HalfOpen {
		b.probeSuccesses = 0
	}
	if fn := b.cfg.OnTransition; fn != nil {
		fn(from, to)
	}
}
