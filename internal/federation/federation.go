// Package federation implements fault-tolerant multi-source query
// aggregation for the G-SACS front-end.
//
// The paper's Section 7.1 scenario is inherently federated: the hydrology
// layer comes from one agency's store (NCTCOG) and the chemical-site layer
// from another, and the emergency-response workload hits both at exactly the
// moment either may be slow or down. The Federator fans one query out to N
// Sources concurrently and merges what comes back, wrapped in a resilience
// stack:
//
//   - per-source attempt deadlines,
//   - retry with exponential backoff + jitter, gated by a token-bucket
//     retry budget and an error classification (only transient failures
//     are retried),
//   - a three-state circuit breaker per source (closed → open on repeated
//     failure, half-open probes after a cooldown),
//   - graceful degradation: a request succeeds with the healthy sources'
//     solutions and a per-source status block instead of failing whole.
//
// Sources come in three flavors: LocalSource wraps an in-process decision
// engine, RemoteSource speaks the v1 HTTP API of a peer G-SACS server, and
// FaultySource deterministically injects latency/errors/hangs/garbage for
// chaos testing.
package federation

import (
	"context"
	"errors"
	"sort"
	"strings"

	"repro/internal/rdf"
)

// Source is one queryable G-SACS endpoint in a federation.
//
// Query evaluates a SPARQL query as role (for action, normally
// seconto.ActionView) against the source's policy-filtered view and returns
// the wire-shaped result. Implementations must honor ctx cancellation and
// be safe for concurrent use.
type Source interface {
	Name() string
	Query(ctx context.Context, role, action rdf.IRI, query string) (*Result, error)
}

// Result kinds, mirroring sparql.QueryKind on the wire.
const (
	KindSelect = "select"
	KindAsk    = "ask"
	KindGraph  = "graph" // CONSTRUCT / DESCRIBE
)

// Result is a query result in the v1 wire shape: variable names and rows of
// term renderings for SELECT, a boolean for ASK, N-Triples lines for
// CONSTRUCT/DESCRIBE. Keeping the federated currency at the wire shape means
// local and remote sources merge identically and no term round-tripping is
// needed.
type Result struct {
	Kind    string              `json:"kind"`
	Vars    []string            `json:"vars,omitempty"`
	Rows    []map[string]string `json:"rows,omitempty"`
	Boolean bool                `json:"boolean,omitempty"`
	Triples []string            `json:"triples,omitempty"`
}

// rowKey serializes a row over vars for deduplication; \x00 cannot occur in
// term renderings.
func rowKey(row map[string]string, vars []string) string {
	var sb strings.Builder
	for _, v := range vars {
		sb.WriteString(row[v])
		sb.WriteByte(0)
	}
	return sb.String()
}

// Merge unions parts (nil entries skipped) into one Result. The merged kind
// is the first non-nil part's kind; parts of another kind are dropped (they
// can only arise from a corrupted source). SELECT vars union in first-seen
// order and rows deduplicate across sources; ASK booleans OR; graph triples
// union sorted. Merging is deterministic in the order of parts.
func Merge(parts []*Result) *Result {
	merged := &Result{}
	seenVar := map[string]bool{}
	seenRow := map[string]bool{}
	seenTriple := map[string]bool{}
	for _, p := range parts {
		if p == nil {
			continue
		}
		if merged.Kind == "" {
			merged.Kind = p.Kind
		}
		if p.Kind != merged.Kind {
			continue
		}
		for _, v := range p.Vars {
			if !seenVar[v] {
				seenVar[v] = true
				merged.Vars = append(merged.Vars, v)
			}
		}
		merged.Boolean = merged.Boolean || p.Boolean
		for _, t := range p.Triples {
			if !seenTriple[t] {
				seenTriple[t] = true
				merged.Triples = append(merged.Triples, t)
			}
		}
		merged.Rows = append(merged.Rows, p.Rows...)
	}
	// Deduplicate rows over the union of vars: a row present in two sources
	// (replicated data) must not count twice.
	if len(merged.Rows) > 0 {
		dedup := merged.Rows[:0]
		for _, row := range merged.Rows {
			k := rowKey(row, merged.Vars)
			if !seenRow[k] {
				seenRow[k] = true
				dedup = append(dedup, row)
			}
		}
		merged.Rows = dedup
	}
	sort.Strings(merged.Triples)
	return merged
}

// ErrAllSourcesFailed is wrapped by Federator.Query when no source produced
// a result — the one condition that is a hard error rather than degradation.
var ErrAllSourcesFailed = errors.New("federation: all sources failed")
