package owl

import (
	"fmt"
	"sort"

	"repro/internal/rdf"
	"repro/internal/store"
)

// Violation describes a consistency failure found by Check.
type Violation struct {
	// Kind is one of "cardinality", "min-cardinality", "max-cardinality",
	// "disjoint", "same-different".
	Kind string
	// Subject is the individual in violation.
	Subject rdf.Term
	// Detail is a human-readable explanation.
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s: %s", v.Kind, v.Subject, v.Detail)
}

// Check validates a (preferably materialized) store against the OWL
// cardinality and disjointness axioms it contains. This is how GRDF uses the
// restrictions in the paper's Lists 3 and 5: an EnvelopeWithTimePeriod must
// have exactly two time positions, a Face at most two TopoSolids, at most one
// Surface and at least one Edge.
func Check(st *store.Store) []Violation {
	var out []Violation

	// Find restriction classes with cardinality constraints.
	type constraint struct {
		restr    rdf.Term
		prop     rdf.IRI
		min, max int64 // -1 when absent
		exact    int64 // -1 when absent
	}
	var constraints []constraint
	seen := map[rdf.Term]bool{}
	collect := func(pred rdf.IRI) {
		st.ForEachMatch(nil, pred, nil, func(t rdf.Triple) bool {
			if !seen[t.Subject] {
				seen[t.Subject] = true
			}
			return true
		})
	}
	collect(rdf.OWLCardinality)
	collect(rdf.OWLMinCardinality)
	collect(rdf.OWLMaxCardinality)
	for restr := range seen {
		onProp, ok := st.FirstObject(restr, rdf.OWLOnProperty)
		if !ok {
			continue
		}
		p, ok := onProp.(rdf.IRI)
		if !ok {
			continue
		}
		c := constraint{restr: restr, prop: p, min: -1, max: -1, exact: -1}
		if v, ok := st.FirstObject(restr, rdf.OWLCardinality); ok {
			if n, err := termInt(v); err == nil {
				c.exact = n
			}
		}
		if v, ok := st.FirstObject(restr, rdf.OWLMinCardinality); ok {
			if n, err := termInt(v); err == nil {
				c.min = n
			}
		}
		if v, ok := st.FirstObject(restr, rdf.OWLMaxCardinality); ok {
			if n, err := termInt(v); err == nil {
				c.max = n
			}
		}
		constraints = append(constraints, c)
	}
	sort.Slice(constraints, func(i, j int) bool {
		return constraints[i].restr.String() < constraints[j].restr.String()
	})

	for _, c := range constraints {
		// Members of the restriction: direct types plus members of
		// subclasses (the materialized closure already propagated those).
		members := st.Subjects(rdf.RDFType, c.restr)
		sort.Slice(members, func(i, j int) bool { return members[i].String() < members[j].String() })
		for _, m := range members {
			n := int64(st.Count(m, c.prop, nil))
			if c.exact >= 0 && n != c.exact {
				out = append(out, Violation{
					Kind:    "cardinality",
					Subject: m,
					Detail: fmt.Sprintf("property %s has %d value(s), restriction requires exactly %d",
						c.prop.LocalName(), n, c.exact),
				})
			}
			if c.min >= 0 && n < c.min {
				out = append(out, Violation{
					Kind:    "min-cardinality",
					Subject: m,
					Detail: fmt.Sprintf("property %s has %d value(s), restriction requires at least %d",
						c.prop.LocalName(), n, c.min),
				})
			}
			if c.max >= 0 && n > c.max {
				out = append(out, Violation{
					Kind:    "max-cardinality",
					Subject: m,
					Detail: fmt.Sprintf("property %s has %d value(s), restriction allows at most %d",
						c.prop.LocalName(), n, c.max),
				})
			}
		}
	}

	// Disjointness: x : C, x : D, C disjointWith D.
	st.ForEachMatch(nil, rdf.OWLDisjointWith, nil, func(dj rdf.Triple) bool {
		for _, x := range st.Subjects(rdf.RDFType, dj.Subject) {
			if st.Has(rdf.T(x, rdf.RDFType, dj.Object)) {
				out = append(out, Violation{
					Kind:    "disjoint",
					Subject: x,
					Detail: fmt.Sprintf("individual belongs to disjoint classes %s and %s",
						termName(dj.Subject), termName(dj.Object)),
				})
			}
		}
		return true
	})

	// sameAs vs differentFrom clash.
	st.ForEachMatch(nil, rdf.OWLDifferentFrom, nil, func(df rdf.Triple) bool {
		if st.Has(rdf.T(df.Subject, rdf.OWLSameAs, df.Object)) {
			out = append(out, Violation{
				Kind:    "same-different",
				Subject: df.Subject,
				Detail:  fmt.Sprintf("declared both sameAs and differentFrom %s", termName(df.Object)),
			})
		}
		return true
	})

	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Subject.String() < out[j].Subject.String()
	})
	return out
}

func termInt(t rdf.Term) (int64, error) {
	l, ok := t.(rdf.Literal)
	if !ok {
		return 0, fmt.Errorf("owl: %s is not a literal", t)
	}
	return l.Int()
}

func termName(t rdf.Term) string {
	if iri, ok := t.(rdf.IRI); ok {
		return iri.LocalName()
	}
	return t.String()
}
