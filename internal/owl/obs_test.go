package owl

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/rdf"
)

func TestReasonerInstrumentation(t *testing.T) {
	reg := obs.NewRegistry()
	r := NewReasoner().Instrument(reg)

	ex := rdf.IRI("http://example.org/")
	r.AddAll([]rdf.Triple{
		rdf.T(ex+"Dog", rdf.RDFSSubClassOf, ex+"Animal"),
		rdf.T(ex+"rex", rdf.RDFType, ex+"Dog"),
	})
	if !r.Entails(rdf.T(ex+"rex", rdf.RDFType, ex+"Animal")) {
		t.Fatal("closure incomplete")
	}

	st := r.Stats()
	if got := reg.Gauge("grdf_reasoner_inferred_triples", "").Value(); int(got) != st.Inferred {
		t.Errorf("inferred gauge = %v, stats %d", got, st.Inferred)
	}
	if got := reg.Gauge("grdf_reasoner_iterations", "").Value(); int(got) != st.Iterations {
		t.Errorf("iterations gauge = %v, stats %d", got, st.Iterations)
	}
	if got := reg.Counter("grdf_reasoner_materializations_total", "").Value(); got < 1 {
		t.Errorf("materializations = %v", got)
	}
	if got := reg.Histogram("grdf_reasoner_materialize_seconds", "", nil).Count(); got < 1 {
		t.Errorf("duration observations = %v", got)
	}

	// Incremental adds refresh the gauges.
	r.Add(rdf.T(ex+"Animal", rdf.RDFSSubClassOf, ex+"LivingThing"))
	if got := reg.Gauge("grdf_reasoner_inferred_triples", "").Value(); int(got) != r.Stats().Inferred {
		t.Errorf("gauge stale after incremental add: %v vs %d", got, r.Stats().Inferred)
	}
}
