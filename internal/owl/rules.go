package owl

import (
	"repro/internal/rdf"
)

// applyRules fires every rule whose premises include the new triple t,
// joining against the already-materialized store for the other premises.
func (r *Reasoner) applyRules(t rdf.Triple) {
	s, p, o := t.Subject, t.Predicate, t.Object
	r.curTrigger = t

	// --- rules keyed on the predicate of the new triple ---------------------
	switch p {
	case rdf.RDFSSubClassOf:
		r.curRule = "subclass"
		// rdfs11: subclass transitivity (both join orders)
		for _, super := range r.st.Objects(o, rdf.RDFSSubClassOf) {
			r.emit(rdf.T(s, rdf.RDFSSubClassOf, super))
		}
		for _, sub := range r.st.Subjects(rdf.RDFSSubClassOf, s) {
			r.emit(rdf.T(sub, rdf.RDFSSubClassOf, o))
		}
		// rdfs9: retype existing instances
		for _, inst := range r.st.Subjects(rdf.RDFType, s) {
			r.emit(rdf.T(inst, rdf.RDFType, o))
		}
		// restriction semantics may be unlocked by new subclass edges
		r.applyRestrictionForClassEdge(s, o)

	case rdf.RDFSSubPropertyOf:
		r.curRule = "subproperty"
		// rdfs5: subproperty transitivity
		for _, super := range r.st.Objects(o, rdf.RDFSSubPropertyOf) {
			r.emit(rdf.T(s, rdf.RDFSSubPropertyOf, super))
		}
		for _, sub := range r.st.Subjects(rdf.RDFSSubPropertyOf, s) {
			r.emit(rdf.T(sub, rdf.RDFSSubPropertyOf, o))
		}
		// rdfs7: propagate existing assertions of the subproperty
		if sp, ok := s.(rdf.IRI); ok {
			if op, ok2 := o.(rdf.IRI); ok2 {
				r.st.ForEachMatch(nil, sp, nil, func(u rdf.Triple) bool {
					r.emit(rdf.T(u.Subject, op, u.Object))
					return true
				})
			}
		}

	case rdf.RDFSDomain:
		r.curRule = "domain"
		if sp, ok := s.(rdf.IRI); ok {
			r.st.ForEachMatch(nil, sp, nil, func(u rdf.Triple) bool {
				r.emit(rdf.T(u.Subject, rdf.RDFType, o))
				return true
			})
		}

	case rdf.RDFSRange:
		r.curRule = "range"
		if sp, ok := s.(rdf.IRI); ok {
			r.st.ForEachMatch(nil, sp, nil, func(u rdf.Triple) bool {
				if u.Object.Kind() != rdf.KindLiteral {
					r.emit(rdf.T(u.Object, rdf.RDFType, o))
				}
				return true
			})
		}

	case rdf.OWLEquivalentClass:
		r.curRule = "equivalent-class"
		// equivalent classes are mutual subclasses
		r.emit(rdf.T(s, rdf.RDFSSubClassOf, o))
		if o.Kind() != rdf.KindLiteral {
			r.emit(rdf.T(o, rdf.RDFSSubClassOf, s))
			r.emit(rdf.T(o, rdf.OWLEquivalentClass, s))
		}

	case rdf.OWLEquivalentProperty:
		r.curRule = "equivalent-property"
		r.emit(rdf.T(s, rdf.RDFSSubPropertyOf, o))
		if o.Kind() != rdf.KindLiteral {
			r.emit(rdf.T(o, rdf.RDFSSubPropertyOf, s))
			r.emit(rdf.T(o, rdf.OWLEquivalentProperty, s))
		}

	case rdf.OWLInverseOf:
		r.curRule = "inverse"
		if o.Kind() == rdf.KindLiteral {
			break
		}
		r.emit(rdf.T(o, rdf.OWLInverseOf, s))
		sp, sok := s.(rdf.IRI)
		op, ook := o.(rdf.IRI)
		if sok && ook {
			r.st.ForEachMatch(nil, sp, nil, func(u rdf.Triple) bool {
				if u.Object.Kind() != rdf.KindLiteral {
					r.emit(rdf.T(u.Object, op, u.Subject))
				}
				return true
			})
			r.st.ForEachMatch(nil, op, nil, func(u rdf.Triple) bool {
				if u.Object.Kind() != rdf.KindLiteral {
					r.emit(rdf.T(u.Object, sp, u.Subject))
				}
				return true
			})
		}

	case rdf.OWLSameAs:
		r.curRule = "same-as"
		if o.Kind() == rdf.KindLiteral {
			break
		}
		r.emit(rdf.T(o, rdf.OWLSameAs, s)) // symmetry
		// transitivity
		for _, third := range r.st.Objects(o, rdf.OWLSameAs) {
			if third.Kind() != rdf.KindLiteral && !third.Equal(s) {
				r.emit(rdf.T(s, rdf.OWLSameAs, third))
			}
		}
		// substitution: copy statements between the equated individuals
		r.copyStatements(s, o)
		r.copyStatements(o, s)

	case rdf.OWLUnionOf:
		r.curRule = "union"
		// Each member of the union is a subclass of the union class.
		for _, m := range r.storeList(o) {
			if m.Kind() != rdf.KindLiteral {
				r.emit(rdf.T(m, rdf.RDFSSubClassOf, s))
			}
		}

	case rdf.OWLIntersectionOf:
		r.curRule = "intersection"
		// The intersection class is a subclass of each member, and any
		// individual already carrying every member type joins the class.
		members := r.storeList(o)
		for _, m := range members {
			if m.Kind() != rdf.KindLiteral {
				r.emit(rdf.T(s, rdf.RDFSSubClassOf, m))
			}
		}
		if len(members) > 0 {
			for _, x := range r.st.Subjects(rdf.RDFType, members[0]) {
				if r.hasAllTypes(x, members) {
					r.emit(rdf.T(x, rdf.RDFType, s))
				}
			}
		}

	case rdf.RDFType:
		r.applyTypeRules(s, o)
		return
	}

	// --- rules keyed on any assertion (s p o): property semantics -----------
	r.applyPropertySemantics(t)
}

// applyTypeRules handles a new (ind rdf:type class) triple.
func (r *Reasoner) applyTypeRules(ind, class rdf.Term) {
	r.curRule = "type-propagation"
	// rdfs9 via existing subclass edges
	for _, super := range r.st.Objects(class, rdf.RDFSSubClassOf) {
		r.emit(rdf.T(ind, rdf.RDFType, super))
	}

	// intersection membership: acquiring one member type may complete the
	// set required by an owl:intersectionOf class.
	for _, t := range r.st.Match(nil, rdf.OWLIntersectionOf, nil) {
		members := r.storeList(t.Object)
		relevant := false
		for _, m := range members {
			if m.Equal(class) {
				relevant = true
				break
			}
		}
		if relevant && r.hasAllTypes(ind, members) {
			r.emit(rdf.T(ind, rdf.RDFType, t.Subject))
		}
	}

	// owl:Restriction semantics when class is (or leads to) a restriction.
	r.applyRestrictionMembership(ind, class)

	// Characteristic declarations: a property newly typed symmetric or
	// transitive must reprocess its existing assertions.
	switch class {
	case rdf.OWLSymmetricProperty:
		if p, ok := ind.(rdf.IRI); ok {
			r.st.ForEachMatch(nil, p, nil, func(u rdf.Triple) bool {
				if u.Object.Kind() != rdf.KindLiteral {
					r.emit(rdf.T(u.Object, p, u.Subject))
				}
				return true
			})
		}
	case rdf.OWLTransitiveProperty:
		if p, ok := ind.(rdf.IRI); ok {
			// Collect first: applyTransitive streams from the store itself,
			// and nesting streams risks reader/writer lock interleaving.
			for _, u := range r.st.Match(nil, p, nil) {
				r.applyTransitive(p, u)
			}
		}
	}

	// someValuesFrom: (x p ind), ind:class, Restriction(p, someValuesFrom
	// class) => x : Restriction
	for _, restr := range r.st.Subjects(rdf.OWLSomeValuesFrom, class) {
		onProp, ok := r.st.FirstObject(restr, rdf.OWLOnProperty)
		if !ok {
			continue
		}
		p, ok := onProp.(rdf.IRI)
		if !ok {
			continue
		}
		r.st.ForEachMatch(nil, p, ind, func(u rdf.Triple) bool {
			r.emit(rdf.T(u.Subject, rdf.RDFType, restr))
			return true
		})
	}
}

// applyRestrictionMembership fires restriction class rules for an individual
// that just acquired a type.
func (r *Reasoner) applyRestrictionMembership(ind, class rdf.Term) {
	onProp, ok := r.st.FirstObject(class, rdf.OWLOnProperty)
	if !ok {
		return
	}
	p, ok := onProp.(rdf.IRI)
	if !ok {
		return
	}
	// hasValue: membership implies the value
	if hv, ok := r.st.FirstObject(class, rdf.OWLHasValue); ok {
		r.emit(rdf.T(ind, p, hv))
	}
	// allValuesFrom: every value gets typed
	if av, ok := r.st.FirstObject(class, rdf.OWLAllValuesFrom); ok {
		r.st.ForEachMatch(ind, p, nil, func(u rdf.Triple) bool {
			if u.Object.Kind() != rdf.KindLiteral {
				r.emit(rdf.T(u.Object, rdf.RDFType, av))
			}
			return true
		})
	}
}

// applyRestrictionForClassEdge handles new subclass edges into restriction
// classes: members of sub must satisfy the restriction semantics of sup.
func (r *Reasoner) applyRestrictionForClassEdge(sub, sup rdf.Term) {
	if _, ok := r.st.FirstObject(sup, rdf.OWLOnProperty); !ok {
		return
	}
	for _, inst := range r.st.Subjects(rdf.RDFType, sub) {
		r.applyRestrictionMembership(inst, sup)
	}
}

// applyPropertySemantics fires rules for an arbitrary assertion (s p o).
func (r *Reasoner) applyPropertySemantics(t rdf.Triple) {
	r.curRule = "property-semantics"
	p, ok := t.Predicate.(rdf.IRI)
	if !ok {
		return
	}
	s, o := t.Subject, t.Object

	// rdfs7: propagate to superproperties
	for _, superP := range r.st.Objects(p, rdf.RDFSSubPropertyOf) {
		if sp, ok := superP.(rdf.IRI); ok && sp != p {
			r.emit(rdf.T(s, sp, o))
		}
	}
	// rdfs2: domain
	for _, dom := range r.st.Objects(p, rdf.RDFSDomain) {
		r.emit(rdf.T(s, rdf.RDFType, dom))
	}
	// rdfs3: range
	if o.Kind() != rdf.KindLiteral {
		for _, rng := range r.st.Objects(p, rdf.RDFSRange) {
			r.emit(rdf.T(o, rdf.RDFType, rng))
		}
	}
	// inverse
	for _, inv := range r.st.Objects(p, rdf.OWLInverseOf) {
		if ip, ok := inv.(rdf.IRI); ok && o.Kind() != rdf.KindLiteral {
			r.emit(rdf.T(o, ip, s))
		}
	}
	for _, inv := range r.st.Subjects(rdf.OWLInverseOf, p) {
		if ip, ok := inv.(rdf.IRI); ok && o.Kind() != rdf.KindLiteral {
			r.emit(rdf.T(o, ip, s))
		}
	}
	// symmetric
	if r.st.Has(rdf.T(p, rdf.RDFType, rdf.OWLSymmetricProperty)) && o.Kind() != rdf.KindLiteral {
		r.emit(rdf.T(o, p, s))
	}
	// transitive
	if r.st.Has(rdf.T(p, rdf.RDFType, rdf.OWLTransitiveProperty)) {
		r.applyTransitive(p, t)
	}
	// functional: two values for one subject are the same individual
	if r.st.Has(rdf.T(p, rdf.RDFType, rdf.OWLFunctionalProperty)) && o.Kind() != rdf.KindLiteral {
		r.st.ForEachMatch(s, p, nil, func(u rdf.Triple) bool {
			if !u.Object.Equal(o) && u.Object.Kind() != rdf.KindLiteral {
				r.emit(rdf.T(o, rdf.OWLSameAs, u.Object))
			}
			return true
		})
	}
	// inverse functional: two subjects sharing a value are the same
	if r.st.Has(rdf.T(p, rdf.RDFType, rdf.OWLInverseFunctional)) && o.Kind() != rdf.KindLiteral {
		r.st.ForEachMatch(nil, p, o, func(u rdf.Triple) bool {
			if !u.Subject.Equal(s) {
				r.emit(rdf.T(s, rdf.OWLSameAs, u.Subject))
			}
			return true
		})
	}
	// hasValue (entry direction): (s p v), Restriction(p, hasValue v) => s : R
	for _, restr := range r.st.Subjects(rdf.OWLHasValue, o) {
		if rp, ok := r.st.FirstObject(restr, rdf.OWLOnProperty); ok && rp.Equal(p) {
			r.emit(rdf.T(s, rdf.RDFType, restr))
		}
	}
	// someValuesFrom (entry direction): (s p o), o : d, Restriction(p, some d)
	if o.Kind() != rdf.KindLiteral {
		for _, d := range r.st.Objects(o, rdf.RDFType) {
			for _, restr := range r.st.Subjects(rdf.OWLSomeValuesFrom, d) {
				if rp, ok := r.st.FirstObject(restr, rdf.OWLOnProperty); ok && rp.Equal(p) {
					r.emit(rdf.T(s, rdf.RDFType, restr))
				}
			}
		}
	}
	// allValuesFrom (propagation direction): s : Restriction(p, all d) => o : d
	if o.Kind() != rdf.KindLiteral {
		for _, cls := range r.st.Objects(s, rdf.RDFType) {
			if av, ok := r.st.FirstObject(cls, rdf.OWLAllValuesFrom); ok {
				if rp, ok2 := r.st.FirstObject(cls, rdf.OWLOnProperty); ok2 && rp.Equal(p) {
					r.emit(rdf.T(o, rdf.RDFType, av))
				}
			}
		}
	}
	// sameAs substitution on endpoints
	for _, alias := range r.st.Objects(s, rdf.OWLSameAs) {
		if alias.Kind() != rdf.KindLiteral {
			r.emit(rdf.T(alias, p, o))
		}
	}
	if o.Kind() != rdf.KindLiteral {
		for _, alias := range r.st.Objects(o, rdf.OWLSameAs) {
			if alias.Kind() != rdf.KindLiteral {
				r.emit(rdf.T(s, p, alias))
			}
		}
	}
}

// applyTransitive extends chains through a transitive property for the new
// assertion u = (s p o).
func (r *Reasoner) applyTransitive(p rdf.IRI, u rdf.Triple) {
	if u.Object.Kind() != rdf.KindLiteral {
		r.st.ForEachMatch(u.Object, p, nil, func(v rdf.Triple) bool {
			r.emit(rdf.T(u.Subject, p, v.Object))
			return true
		})
	}
	r.st.ForEachMatch(nil, p, u.Subject, func(v rdf.Triple) bool {
		r.emit(rdf.T(v.Subject, p, u.Object))
		return true
	})
}

// storeList reads an rdf:first/rdf:rest collection from the store.
func (r *Reasoner) storeList(head rdf.Term) []rdf.Term {
	var out []rdf.Term
	seen := map[string]struct{}{}
	cur := head
	for {
		if cur == nil || cur.Equal(rdf.RDFNil) {
			return out
		}
		k := cur.String()
		if _, dup := seen[k]; dup {
			return out // cycle guard
		}
		seen[k] = struct{}{}
		first, ok := r.st.FirstObject(cur, rdf.RDFFirst)
		if !ok {
			return out
		}
		out = append(out, first)
		rest, ok := r.st.FirstObject(cur, rdf.RDFRest)
		if !ok {
			return out
		}
		cur = rest
	}
}

// hasAllTypes reports whether ind carries every type in classes.
func (r *Reasoner) hasAllTypes(ind rdf.Term, classes []rdf.Term) bool {
	for _, c := range classes {
		if !r.st.Has(rdf.T(ind, rdf.RDFType, c)) {
			return false
		}
	}
	return len(classes) > 0
}

// copyStatements replicates statements of a onto b (sameAs substitution).
func (r *Reasoner) copyStatements(a, b rdf.Term) {
	if a.Equal(b) {
		return
	}
	r.st.ForEachMatch(a, nil, nil, func(u rdf.Triple) bool {
		if !u.Predicate.Equal(rdf.OWLSameAs) {
			r.emit(rdf.T(b, u.Predicate, u.Object))
		}
		return true
	})
	r.st.ForEachMatch(nil, nil, a, func(u rdf.Triple) bool {
		if !u.Predicate.Equal(rdf.OWLSameAs) {
			r.emit(rdf.T(u.Subject, u.Predicate, b))
		}
		return true
	})
}
