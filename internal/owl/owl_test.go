package owl

import (
	"fmt"
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
	"repro/internal/turtle"
)

func iri(s string) rdf.IRI { return rdf.IRI("http://e/" + s) }

func loadTurtle(t *testing.T, doc string) *store.Store {
	t.Helper()
	g, err := turtle.ParseString(doc)
	if err != nil {
		t.Fatalf("turtle: %v", err)
	}
	return store.FromGraph(g)
}

func TestSubClassTransitivityAndTyping(t *testing.T) {
	st := loadTurtle(t, `
@prefix ex: <http://e/> .
ex:Creek rdfs:subClassOf ex:Stream .
ex:Stream rdfs:subClassOf grdf:Feature .
ex:rowlett a ex:Creek .
`)
	m, stats := Materialize(st)
	if !m.Has(rdf.T(iri("Creek"), rdf.RDFSSubClassOf, rdf.IRI(rdf.GRDFNS+"Feature"))) {
		t.Error("rdfs11 failed")
	}
	for _, class := range []rdf.Term{iri("Stream"), rdf.IRI(rdf.GRDFNS + "Feature")} {
		if !m.Has(rdf.T(iri("rowlett"), rdf.RDFType, class)) {
			t.Errorf("rdfs9 failed for %s", class)
		}
	}
	if stats.Inferred < 3 {
		t.Errorf("Inferred = %d", stats.Inferred)
	}
}

func TestSubPropertyAndDomainRange(t *testing.T) {
	st := loadTurtle(t, `
@prefix ex: <http://e/> .
ex:flowsDirectlyInto rdfs:subPropertyOf ex:flowsInto .
ex:flowsInto rdfs:domain ex:Watercourse ;
             rdfs:range ex:Watercourse .
ex:a ex:flowsDirectlyInto ex:b .
`)
	m, _ := Materialize(st)
	if !m.Has(rdf.T(iri("a"), iri("flowsInto"), iri("b"))) {
		t.Error("rdfs7 failed")
	}
	if !m.Has(rdf.T(iri("a"), rdf.RDFType, iri("Watercourse"))) {
		t.Error("rdfs2 (domain) failed")
	}
	if !m.Has(rdf.T(iri("b"), rdf.RDFType, iri("Watercourse"))) {
		t.Error("rdfs3 (range) failed")
	}
}

func TestDomainRangeDeclaredAfterData(t *testing.T) {
	r := NewReasoner()
	r.Add(rdf.T(iri("a"), iri("p"), iri("b")))
	r.Add(rdf.T(iri("p"), rdf.RDFSDomain, iri("C")))
	r.Add(rdf.T(iri("p"), rdf.RDFSRange, iri("D")))
	if !r.Entails(rdf.T(iri("a"), rdf.RDFType, iri("C"))) {
		t.Error("late domain failed")
	}
	if !r.Entails(rdf.T(iri("b"), rdf.RDFType, iri("D"))) {
		t.Error("late range failed")
	}
}

func TestRangeNotAppliedToLiterals(t *testing.T) {
	r := NewReasoner()
	r.Add(rdf.T(iri("p"), rdf.RDFSRange, rdf.XSDString))
	r.Add(rdf.T(iri("a"), iri("p"), rdf.NewString("text")))
	for _, tr := range r.Store().Triples() {
		if tr.Subject.Kind() == rdf.KindLiteral {
			t.Errorf("literal subject inferred: %s", tr)
		}
	}
}

func TestInverseOf(t *testing.T) {
	st := loadTurtle(t, `
@prefix ex: <http://e/> .
ex:contains owl:inverseOf ex:within .
ex:zone ex:contains ex:site .
ex:house ex:within ex:city .
`)
	m, _ := Materialize(st)
	if !m.Has(rdf.T(iri("site"), iri("within"), iri("zone"))) {
		t.Error("inverse (forward decl) failed")
	}
	if !m.Has(rdf.T(iri("city"), iri("contains"), iri("house"))) {
		t.Error("inverse (reverse decl) failed")
	}
}

func TestSymmetricAndTransitive(t *testing.T) {
	st := loadTurtle(t, `
@prefix ex: <http://e/> .
ex:adjacentTo a owl:SymmetricProperty .
ex:upstreamOf a owl:TransitiveProperty .
ex:a ex:adjacentTo ex:b .
ex:x ex:upstreamOf ex:y .
ex:y ex:upstreamOf ex:z .
`)
	m, _ := Materialize(st)
	if !m.Has(rdf.T(iri("b"), iri("adjacentTo"), iri("a"))) {
		t.Error("symmetric failed")
	}
	if !m.Has(rdf.T(iri("x"), iri("upstreamOf"), iri("z"))) {
		t.Error("transitive failed")
	}
}

func TestTransitiveChainLong(t *testing.T) {
	r := NewReasoner()
	r.Add(rdf.T(iri("flows"), rdf.RDFType, rdf.OWLTransitiveProperty))
	const n = 30
	for i := 0; i < n; i++ {
		r.Add(rdf.T(iri(fmt.Sprintf("n%d", i)), iri("flows"), iri(fmt.Sprintf("n%d", i+1))))
	}
	if !r.Entails(rdf.T(iri("n0"), iri("flows"), iri(fmt.Sprintf("n%d", n)))) {
		t.Error("long transitive chain incomplete")
	}
	// Closure of a linear chain of n+1 nodes has n(n+1)/2 edges.
	want := (n + 1) * n / 2
	if got := r.Store().Count(nil, iri("flows"), nil); got != want {
		t.Errorf("closure edges = %d, want %d", got, want)
	}
}

func TestEquivalentClassAndProperty(t *testing.T) {
	st := loadTurtle(t, `
@prefix ex: <http://e/> .
ex:Stream owl:equivalentClass ex:Watercourse .
ex:name owl:equivalentProperty ex:title .
ex:s a ex:Stream .
ex:s ex:name "Trinity" .
`)
	m, _ := Materialize(st)
	if !m.Has(rdf.T(iri("s"), rdf.RDFType, iri("Watercourse"))) {
		t.Error("equivalentClass failed")
	}
	if !m.Has(rdf.T(iri("s"), iri("title"), rdf.NewString("Trinity"))) {
		t.Error("equivalentProperty failed")
	}
}

func TestSameAsSubstitution(t *testing.T) {
	st := loadTurtle(t, `
@prefix ex: <http://e/> .
ex:ntx owl:sameAs ex:northTexasEnergy .
ex:ntx ex:risk 4 .
ex:auditor ex:inspected ex:northTexasEnergy .
`)
	m, _ := Materialize(st)
	if !m.Has(rdf.T(iri("northTexasEnergy"), iri("risk"), rdf.NewInteger(4))) {
		t.Error("sameAs subject substitution failed")
	}
	if !m.Has(rdf.T(iri("auditor"), iri("inspected"), iri("ntx"))) {
		t.Error("sameAs object substitution failed")
	}
	if !m.Has(rdf.T(iri("northTexasEnergy"), rdf.OWLSameAs, iri("ntx"))) {
		t.Error("sameAs symmetry failed")
	}
}

func TestSameAsTransitivity(t *testing.T) {
	r := NewReasoner()
	r.Add(rdf.T(iri("a"), rdf.OWLSameAs, iri("b")))
	r.Add(rdf.T(iri("b"), rdf.OWLSameAs, iri("c")))
	r.Add(rdf.T(iri("a"), iri("p"), rdf.NewString("v")))
	if !r.Entails(rdf.T(iri("c"), iri("p"), rdf.NewString("v"))) {
		t.Error("sameAs transitivity + substitution failed")
	}
}

func TestFunctionalProperties(t *testing.T) {
	st := loadTurtle(t, `
@prefix ex: <http://e/> .
ex:hasCRS a owl:FunctionalProperty .
ex:hasSiteId a owl:InverseFunctionalProperty .
ex:f ex:hasCRS ex:crs1 .
ex:f ex:hasCRS ex:crs2 .
ex:s1 ex:hasSiteId ex:id42 .
ex:s2 ex:hasSiteId ex:id42 .
`)
	m, _ := Materialize(st)
	if !m.Has(rdf.T(iri("crs1"), rdf.OWLSameAs, iri("crs2"))) &&
		!m.Has(rdf.T(iri("crs2"), rdf.OWLSameAs, iri("crs1"))) {
		t.Error("functional property sameAs failed")
	}
	if !m.Has(rdf.T(iri("s1"), rdf.OWLSameAs, iri("s2"))) &&
		!m.Has(rdf.T(iri("s2"), rdf.OWLSameAs, iri("s1"))) {
		t.Error("inverse functional property sameAs failed")
	}
}

func TestHasValueBothDirections(t *testing.T) {
	st := loadTurtle(t, `
@prefix ex: <http://e/> .
ex:TexasSite owl:onProperty ex:state ; owl:hasValue ex:TX .
ex:s1 ex:state ex:TX .
ex:s2 a ex:TexasSite .
`)
	m, _ := Materialize(st)
	if !m.Has(rdf.T(iri("s1"), rdf.RDFType, iri("TexasSite"))) {
		t.Error("hasValue entry direction failed")
	}
	if !m.Has(rdf.T(iri("s2"), iri("state"), iri("TX"))) {
		t.Error("hasValue value direction failed")
	}
}

func TestSomeValuesFrom(t *testing.T) {
	st := loadTurtle(t, `
@prefix ex: <http://e/> .
ex:RiskySite owl:onProperty ex:stores ; owl:someValuesFrom ex:HazardousChemical .
ex:sulfuric a ex:HazardousChemical .
ex:plant ex:stores ex:sulfuric .
`)
	m, _ := Materialize(st)
	if !m.Has(rdf.T(iri("plant"), rdf.RDFType, iri("RiskySite"))) {
		t.Error("someValuesFrom failed")
	}
}

func TestSomeValuesFromLateType(t *testing.T) {
	r := NewReasoner()
	r.Add(rdf.T(iri("RiskySite"), rdf.OWLOnProperty, iri("stores")))
	r.Add(rdf.T(iri("RiskySite"), rdf.OWLSomeValuesFrom, iri("Hazardous")))
	r.Add(rdf.T(iri("plant"), iri("stores"), iri("sulfuric")))
	// chemical classified *after* the link exists
	r.Add(rdf.T(iri("sulfuric"), rdf.RDFType, iri("Hazardous")))
	if !r.Entails(rdf.T(iri("plant"), rdf.RDFType, iri("RiskySite"))) {
		t.Error("someValuesFrom with late typing failed")
	}
}

func TestAllValuesFrom(t *testing.T) {
	st := loadTurtle(t, `
@prefix ex: <http://e/> .
ex:PureWaterBody owl:onProperty ex:feeds ; owl:allValuesFrom ex:CleanStream .
ex:spring a ex:PureWaterBody .
ex:spring ex:feeds ex:brook .
`)
	m, _ := Materialize(st)
	if !m.Has(rdf.T(iri("brook"), rdf.RDFType, iri("CleanStream"))) {
		t.Error("allValuesFrom failed")
	}
}

func TestIncrementalMatchesBatch(t *testing.T) {
	doc := `
@prefix ex: <http://e/> .
ex:Creek rdfs:subClassOf ex:Stream .
ex:flowsInto a owl:TransitiveProperty .
ex:contains owl:inverseOf ex:within .
ex:a a ex:Creek . ex:a ex:flowsInto ex:b . ex:b ex:flowsInto ex:c .
ex:zone ex:contains ex:a .
`
	st := loadTurtle(t, doc)
	batch, _ := Materialize(st)

	inc := NewReasoner()
	for _, tr := range st.Triples() {
		inc.Add(tr)
	}
	if batch.Len() != inc.Store().Len() {
		t.Fatalf("batch %d != incremental %d\nbatch:\n%s\ninc:\n%s",
			batch.Len(), inc.Store().Len(), batch, inc.Store())
	}
	for _, tr := range batch.Triples() {
		if !inc.Store().Has(tr) {
			t.Errorf("incremental missing %s", tr)
		}
	}
}

func TestHelperAccessors(t *testing.T) {
	r := NewReasoner()
	r.Add(rdf.T(iri("Creek"), rdf.RDFSSubClassOf, iri("Stream")))
	r.Add(rdf.T(iri("p1"), rdf.RDFSSubPropertyOf, iri("p2")))
	r.Add(rdf.T(iri("x"), rdf.RDFType, iri("Creek")))
	if !r.IsSubClassOf(iri("Creek"), iri("Stream")) || !r.IsSubClassOf(iri("Creek"), iri("Creek")) {
		t.Error("IsSubClassOf failed")
	}
	if r.IsSubClassOf(iri("Stream"), iri("Creek")) {
		t.Error("IsSubClassOf inverted")
	}
	if !r.IsSubPropertyOf(iri("p1"), iri("p2")) {
		t.Error("IsSubPropertyOf failed")
	}
	if !r.HasType(iri("x"), iri("Stream")) {
		t.Error("HasType with inference failed")
	}
	if got := r.TypesOf(iri("x")); len(got) != 2 {
		t.Errorf("TypesOf = %v", got)
	}
	if got := r.SubClasses(iri("Stream")); len(got) != 1 {
		t.Errorf("SubClasses = %v", got)
	}
}

func TestCheckCardinalityList3(t *testing.T) {
	// List 3: EnvelopeWithTimePeriod requires exactly 2 time positions.
	doc := `
@prefix ex: <http://e/> .
grdf:EnvelopeWithTimePeriodRestr owl:onProperty temporal:hasTimePosition ;
    owl:cardinality 2 .
ex:good a grdf:EnvelopeWithTimePeriodRestr ;
    temporal:hasTimePosition ex:t1, ex:t2 .
ex:bad a grdf:EnvelopeWithTimePeriodRestr ;
    temporal:hasTimePosition ex:t1 .
`
	m, _ := Materialize(loadTurtle(t, doc))
	vs := Check(m)
	if len(vs) != 1 {
		t.Fatalf("violations = %v", vs)
	}
	if vs[0].Kind != "cardinality" || !vs[0].Subject.Equal(iri("bad")) {
		t.Errorf("violation = %+v", vs[0])
	}
}

func TestCheckFaceList5(t *testing.T) {
	// List 5: Face has maxCardinality 2 on hasTopoSolid, max 1 on hasSurface,
	// min 1 on hasEdge. Model the three restrictions as three restriction
	// classes that Face members carry.
	doc := `
@prefix ex: <http://e/> .
ex:FaceSolidRestr owl:onProperty grdf:hasTopoSolid ; owl:maxCardinality 2 .
ex:FaceSurfaceRestr owl:onProperty grdf:hasSurface ; owl:maxCardinality 1 .
ex:FaceEdgeRestr owl:onProperty grdf:hasEdge ; owl:minCardinality 1 .
grdf:Face rdfs:subClassOf ex:FaceSolidRestr, ex:FaceSurfaceRestr, ex:FaceEdgeRestr .

ex:okFace a grdf:Face ;
    grdf:hasTopoSolid ex:s1, ex:s2 ;
    grdf:hasSurface ex:surf1 ;
    grdf:hasEdge ex:e1 .
ex:badFace a grdf:Face ;
    grdf:hasTopoSolid ex:s1, ex:s2, ex:s3 ;
    grdf:hasSurface ex:surf1, ex:surf2 .
`
	m, _ := Materialize(loadTurtle(t, doc))
	vs := Check(m)
	kinds := map[string]int{}
	for _, v := range vs {
		if !v.Subject.Equal(iri("badFace")) {
			t.Errorf("unexpected subject: %+v", v)
		}
		kinds[v.Kind]++
	}
	if kinds["max-cardinality"] != 2 || kinds["min-cardinality"] != 1 {
		t.Errorf("violations = %v", vs)
	}
}

func TestCheckDisjointAndSameDifferent(t *testing.T) {
	doc := `
@prefix ex: <http://e/> .
ex:Water owl:disjointWith ex:Land .
ex:thing a ex:Water, ex:Land .
ex:a owl:sameAs ex:b .
ex:a owl:differentFrom ex:b .
`
	m, _ := Materialize(loadTurtle(t, doc))
	vs := Check(m)
	kinds := map[string]int{}
	for _, v := range vs {
		kinds[v.Kind]++
	}
	if kinds["disjoint"] == 0 {
		t.Error("disjoint violation missed")
	}
	if kinds["same-different"] == 0 {
		t.Error("same-different violation missed")
	}
	if vs[0].String() == "" {
		t.Error("violation String empty")
	}
}

func TestCheckCleanStore(t *testing.T) {
	m, _ := Materialize(loadTurtle(t, `
@prefix ex: <http://e/> .
ex:a ex:p ex:b .
`))
	if vs := Check(m); len(vs) != 0 {
		t.Errorf("violations on clean store: %v", vs)
	}
}

func TestAddDuplicateAndInvalid(t *testing.T) {
	r := NewReasoner()
	tr := rdf.T(iri("a"), iri("p"), iri("b"))
	if !r.Add(tr) || r.Add(tr) {
		t.Error("Add dup semantics wrong")
	}
	if r.Add(rdf.Triple{Subject: rdf.NewString("x"), Predicate: iri("p"), Object: iri("b")}) {
		t.Error("invalid triple accepted")
	}
	if r.Stats().Asserted != 1 {
		t.Errorf("Asserted = %d", r.Stats().Asserted)
	}
}

func TestUnionOf(t *testing.T) {
	st := loadTurtle(t, `
@prefix ex: <http://e/> .
ex:WaterBody owl:unionOf ( ex:Lake ex:Stream ) .
ex:tahoe a ex:Lake .
ex:trinity a ex:Stream .
`)
	m, _ := Materialize(st)
	if !m.Has(rdf.T(iri("Lake"), rdf.RDFSSubClassOf, iri("WaterBody"))) {
		t.Error("union member not subclass")
	}
	if !m.Has(rdf.T(iri("tahoe"), rdf.RDFType, iri("WaterBody"))) {
		t.Error("lake instance not typed WaterBody")
	}
	if !m.Has(rdf.T(iri("trinity"), rdf.RDFType, iri("WaterBody"))) {
		t.Error("stream instance not typed WaterBody")
	}
}

func TestIntersectionOf(t *testing.T) {
	st := loadTurtle(t, `
@prefix ex: <http://e/> .
ex:RiskyRiversideSite owl:intersectionOf ( ex:ChemSite ex:Riverside ) .
ex:a a ex:ChemSite .
ex:a a ex:Riverside .
ex:b a ex:ChemSite .
`)
	m, _ := Materialize(st)
	if !m.Has(rdf.T(iri("RiskyRiversideSite"), rdf.RDFSSubClassOf, iri("ChemSite"))) {
		t.Error("intersection not subclass of member")
	}
	if !m.Has(rdf.T(iri("a"), rdf.RDFType, iri("RiskyRiversideSite"))) {
		t.Error("individual with all member types not classified")
	}
	if m.Has(rdf.T(iri("b"), rdf.RDFType, iri("RiskyRiversideSite"))) {
		t.Error("individual with partial member types classified")
	}
}

func TestIntersectionOfLateTyping(t *testing.T) {
	r := NewReasoner()
	g := rdf.NewGraph()
	head := g.List([]rdf.Term{iri("A"), iri("B")})
	r.AddGraph(g)
	r.Add(rdf.T(iri("Both"), rdf.OWLIntersectionOf, head))
	r.Add(rdf.T(iri("x"), rdf.RDFType, iri("A")))
	if r.Entails(rdf.T(iri("x"), rdf.RDFType, iri("Both"))) {
		t.Error("classified with only one member type")
	}
	r.Add(rdf.T(iri("x"), rdf.RDFType, iri("B")))
	if !r.Entails(rdf.T(iri("x"), rdf.RDFType, iri("Both"))) {
		t.Error("late second member type did not classify")
	}
}

// Property: materialization is idempotent — running the reasoner over an
// already-materialized store derives nothing new.
func TestMaterializeIdempotent(t *testing.T) {
	docs := []string{
		`
@prefix ex: <http://e/> .
ex:Creek rdfs:subClassOf ex:Stream .
ex:flowsInto a owl:TransitiveProperty .
ex:contains owl:inverseOf ex:within .
ex:a a ex:Creek . ex:a ex:flowsInto ex:b . ex:b ex:flowsInto ex:c .
ex:zone ex:contains ex:a .
ex:a owl:sameAs ex:aPrime .
`,
		`
@prefix ex: <http://e/> .
ex:WaterBody owl:unionOf ( ex:Lake ex:Stream ) .
ex:Both owl:intersectionOf ( ex:A ex:B ) .
ex:x a ex:A , ex:B .
ex:t a ex:Lake .
`,
	}
	for i, doc := range docs {
		st := loadTurtle(t, doc)
		once, stats1 := Materialize(st)
		twice, stats2 := Materialize(once)
		if stats2.Inferred != 0 {
			t.Errorf("doc %d: second materialization inferred %d (first %d)",
				i, stats2.Inferred, stats1.Inferred)
		}
		if twice.Len() != once.Len() {
			t.Errorf("doc %d: %d -> %d triples", i, once.Len(), twice.Len())
		}
	}
}

// Property: materialization is monotone — the closure contains every
// asserted triple.
func TestMaterializeMonotone(t *testing.T) {
	st := loadTurtle(t, `
@prefix ex: <http://e/> .
ex:Creek rdfs:subClassOf ex:Stream .
ex:a a ex:Creek .
ex:a ex:p "v" .
`)
	m, _ := Materialize(st)
	for _, tr := range st.Triples() {
		if !m.Has(tr) {
			t.Errorf("closure lost asserted triple %s", tr)
		}
	}
}

func TestExplain(t *testing.T) {
	r := NewReasoner()
	r.Add(rdf.T(iri("Creek"), rdf.RDFSSubClassOf, iri("Stream")))
	r.Add(rdf.T(iri("Stream"), rdf.RDFSSubClassOf, iri("Feature")))
	r.Add(rdf.T(iri("rowlett"), rdf.RDFType, iri("Creek")))

	// asserted triple: empty chain, ok
	chain, ok := r.Explain(rdf.T(iri("rowlett"), rdf.RDFType, iri("Creek")))
	if !ok || len(chain) != 0 {
		t.Errorf("asserted explain = %v, %t", chain, ok)
	}
	// inferred: rowlett type Feature (via rdfs9/rdfs11)
	chain, ok = r.Explain(rdf.T(iri("rowlett"), rdf.RDFType, iri("Feature")))
	if !ok || len(chain) == 0 {
		t.Fatalf("inferred explain = %v, %t", chain, ok)
	}
	for _, d := range chain {
		if d.Rule == "" {
			t.Errorf("unnamed rule in %+v", d)
		}
		if !d.Trigger.Valid() {
			t.Errorf("invalid trigger in %+v", d)
		}
	}
	// the chain must terminate at an asserted triple: its last trigger is
	// asserted (not in provenance)
	last := chain[len(chain)-1].Trigger
	if c2, ok2 := r.Explain(last); !ok2 || len(c2) != 0 {
		t.Errorf("chain does not end at an asserted triple: %s (%v)", last, c2)
	}
	// absent triple
	if _, ok := r.Explain(rdf.T(iri("x"), rdf.RDFType, iri("Nope"))); ok {
		t.Error("explained absent triple")
	}
}

func TestExplainRuleNames(t *testing.T) {
	r := NewReasoner()
	r.Add(rdf.T(iri("contains"), rdf.OWLInverseOf, iri("within")))
	r.Add(rdf.T(iri("zone"), iri("contains"), iri("site")))
	chain, ok := r.Explain(rdf.T(iri("site"), iri("within"), iri("zone")))
	if !ok || len(chain) == 0 {
		t.Fatalf("explain = %v, %t", chain, ok)
	}
	names := map[string]bool{}
	for _, d := range chain {
		names[d.Rule] = true
	}
	if !names["inverse"] && !names["property-semantics"] {
		t.Errorf("rule names = %v", names)
	}
}
