// Package owl implements the forward-chaining OWL reasoner the GRDF paper
// relies on ("any OWL reasoning engine could be plugged into the system").
// It materializes the RDFS and OWL-Horst (pD*) entailments of a triple store:
// class and property hierarchies, domains and ranges, inverse / symmetric /
// transitive / (inverse-)functional properties, owl:sameAs smushing,
// equivalence, and property restrictions (hasValue, someValuesFrom,
// allValuesFrom). Cardinality and disjointness are handled as consistency
// checks (see Check), matching how the paper's listings use them (Lists 3
// and 5 constrain models rather than derive new facts).
//
// The reasoner is incremental: Add feeds new triples through a semi-naive
// delta queue, so loading an ontology once and streaming instance data stays
// cheap. Materialize is the batch entry point.
package owl

import (
	"time"

	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/store"
)

// Stats reports the outcome of a materialization.
type Stats struct {
	// Asserted is the number of input triples.
	Asserted int
	// Inferred is the number of new triples derived.
	Inferred int
	// Iterations counts delta-queue drain rounds (diagnostic).
	Iterations int
}

// Reasoner maintains a materialized store: the deductive closure of
// everything added so far.
type Reasoner struct {
	st    *store.Store
	stats Stats
	// queue of freshly added triples not yet processed by the rules
	queue []rdf.Triple
	// pending buffers derivations produced while rules iterate the store;
	// they are flushed into the store between rule applications (the store's
	// streaming reads must never be interleaved with writes).
	pending []rdf.Triple
	// provenance records, for each inferred triple, the rule that produced
	// it and the delta triple that triggered the rule (first derivation
	// wins). Asserted triples are absent.
	provenance map[rdf.Triple]Derivation
	// curRule / curTrigger hold the provenance context while rules run.
	curRule    string
	curTrigger rdf.Triple

	// Dictionary IDs of the vocabulary predicates probed by the hot
	// entailment helpers (IsSubClassOf and friends). Interned once at
	// construction so concurrent readers never race on lazy init.
	idType     store.ID
	idSubClass store.ID
	idSubProp  store.ID

	// Metric handles (set by Instrument; nil-safe no-ops otherwise). The
	// gauges are refreshed after every materialization so /metrics always
	// shows the current closure, not a stale sample.
	instrumented      bool
	mMaterializations *obs.Counter
	mDuration         *obs.Histogram
	mInferred         *obs.Gauge
	mAsserted         *obs.Gauge
	mIterations       *obs.Gauge
}

// Derivation explains one inferred triple.
type Derivation struct {
	// Rule names the rule family that fired (e.g. "rdfs9-subclass").
	Rule string
	// Trigger is the delta triple whose processing produced the inference.
	Trigger rdf.Triple
}

// NewReasoner returns an empty reasoner.
func NewReasoner() *Reasoner {
	st := store.New()
	return &Reasoner{
		st:         st,
		provenance: make(map[rdf.Triple]Derivation),
		idType:     st.Intern(rdf.RDFType),
		idSubClass: st.Intern(rdf.RDFSSubClassOf),
		idSubProp:  st.Intern(rdf.RDFSSubPropertyOf),
	}
}

// Materialize computes the closure of all triples in src and returns a new
// store holding asserted plus inferred triples.
func Materialize(src *store.Store) (*store.Store, Stats) {
	r := NewReasoner()
	r.AddAll(src.Triples())
	return r.Store(), r.Stats()
}

// Store returns the materialized store (asserted + inferred). Callers must
// not mutate it directly; use Add.
func (r *Reasoner) Store() *store.Store { return r.st }

// Stats returns counters accumulated so far.
func (r *Reasoner) Stats() Stats { return r.stats }

// Instrument exports the reasoner's counters into reg: cumulative
// inferred-triple / iteration gauges, a materialization counter, and a
// drain-duration histogram. Call before feeding data; the reasoner itself
// is not concurrency-safe, so neither is this.
func (r *Reasoner) Instrument(reg *obs.Registry) *Reasoner {
	if reg == nil {
		return r
	}
	r.instrumented = true
	r.mMaterializations = reg.Counter("grdf_reasoner_materializations_total",
		"Delta-queue drains that derived at least one consequence batch.")
	r.mDuration = reg.Histogram("grdf_reasoner_materialize_seconds",
		"Wall time per materialization drain.", nil)
	r.mInferred = reg.Gauge("grdf_reasoner_inferred_triples",
		"Triples derived (not asserted) in the current closure.")
	r.mAsserted = reg.Gauge("grdf_reasoner_asserted_triples",
		"Triples asserted into the reasoner.")
	r.mIterations = reg.Gauge("grdf_reasoner_iterations",
		"Cumulative delta-queue rounds across all materializations.")
	return r
}

// Add asserts one triple and derives its consequences. It reports whether
// the triple was new.
func (r *Reasoner) Add(t rdf.Triple) bool {
	if !t.Valid() {
		return false
	}
	if !r.st.Add(t) {
		return false
	}
	r.stats.Asserted++
	r.queue = append(r.queue, t)
	r.drain()
	return true
}

// AddAll asserts a batch and then derives consequences once, which is faster
// than calling Add per triple.
func (r *Reasoner) AddAll(ts []rdf.Triple) int {
	n := 0
	for _, t := range ts {
		if !t.Valid() {
			continue
		}
		if r.st.Add(t) {
			r.stats.Asserted++
			r.queue = append(r.queue, t)
			n++
		}
	}
	r.drain()
	return n
}

// AddGraph asserts every triple of g.
func (r *Reasoner) AddGraph(g *rdf.Graph) int { return r.AddAll(g.Triples()) }

// Entails reports whether t is in the closure.
func (r *Reasoner) Entails(t rdf.Triple) bool { return r.st.Has(t) }

// InferredCount returns how many triples were derived (not asserted).
func (r *Reasoner) InferredCount() int { return r.stats.Inferred }

// emit records a derived triple. It must not write to the store directly:
// rules call emit while streaming matches from the store, and interleaving a
// write would deadlock the store's RWMutex. Derivations are buffered and
// flushed by drain.
func (r *Reasoner) emit(t rdf.Triple) {
	if !t.Valid() {
		return
	}
	if _, known := r.provenance[t]; !known && !r.st.Has(t) {
		r.provenance[t] = Derivation{Rule: r.curRule, Trigger: r.curTrigger}
	}
	r.pending = append(r.pending, t)
}

// drain processes the delta queue to fixpoint.
func (r *Reasoner) drain() {
	if len(r.queue) == 0 {
		return
	}
	var start time.Time
	if r.instrumented {
		start = time.Now()
	}
	for len(r.queue) > 0 {
		r.stats.Iterations++
		batch := r.queue
		r.queue = nil
		for _, t := range batch {
			r.applyRules(t)
			// Flush buffered derivations; genuinely new ones re-enter the
			// queue for the next round.
			for _, d := range r.pending {
				if r.st.Add(d) {
					r.stats.Inferred++
					r.queue = append(r.queue, d)
				}
			}
			r.pending = r.pending[:0]
		}
	}
	if r.instrumented {
		r.mMaterializations.Inc()
		r.mDuration.ObserveSince(start)
		r.mInferred.Set(float64(r.stats.Inferred))
		r.mAsserted.Set(float64(r.stats.Asserted))
		r.mIterations.Set(float64(r.stats.Iterations))
	}
}

// SubClasses returns every subclass of class (reflexive per RDFS closure
// when the ontology declares it; this helper just reads the materialized
// hierarchy).
func (r *Reasoner) SubClasses(class rdf.Term) []rdf.Term {
	return r.st.Subjects(rdf.RDFSSubClassOf, class)
}

// hasWithPred is the ID-space fast path behind the entailment helpers: it
// resolves both endpoints through the store dictionary (never interning) and
// probes the SPO index with the pre-interned predicate ID. The G-SACS
// decision engine calls these helpers once per (policy, property) pair, so
// skipping term hashing on the probe matters on that path.
func (r *Reasoner) hasWithPred(sub rdf.Term, pid store.ID, obj rdf.Term) bool {
	sid, ok := r.st.LookupID(sub)
	if !ok {
		return false
	}
	oid, ok := r.st.LookupID(obj)
	if !ok {
		return false
	}
	return r.st.HasIDs(sid, pid, oid)
}

// IsSubClassOf reports whether sub is materialized as a subclass of super
// (true also when sub == super).
func (r *Reasoner) IsSubClassOf(sub, super rdf.Term) bool {
	if sub.Equal(super) {
		return true
	}
	return r.hasWithPred(sub, r.idSubClass, super)
}

// IsSubPropertyOf reports whether sub is materialized as a subproperty of
// super (true also when sub == super).
func (r *Reasoner) IsSubPropertyOf(sub, super rdf.Term) bool {
	if sub.Equal(super) {
		return true
	}
	return r.hasWithPred(sub, r.idSubProp, super)
}

// TypesOf returns the materialized types of an individual.
func (r *Reasoner) TypesOf(ind rdf.Term) []rdf.Term {
	sid, ok := r.st.LookupID(ind)
	if !ok {
		return nil
	}
	view := r.st.DictView()
	var out []rdf.Term
	r.st.ForEachMatchIDs(sid, r.idType, store.NoID, func(_, _, oid store.ID) bool {
		out = append(out, view.Term(oid))
		return true
	})
	return out
}

// HasType reports whether the individual has the given (possibly inferred)
// type.
func (r *Reasoner) HasType(ind, class rdf.Term) bool {
	return r.hasWithPred(ind, r.idType, class)
}

// Explain returns the derivation chain of t, outermost first: each step
// names the rule and the triple that triggered it, ending at an asserted
// triple. ok is false when t is not in the closure; an empty chain with
// ok=true means t was asserted directly.
func (r *Reasoner) Explain(t rdf.Triple) (chain []Derivation, ok bool) {
	if !r.st.Has(t) {
		return nil, false
	}
	seen := map[rdf.Triple]bool{}
	cur := t
	for {
		d, inferred := r.provenance[cur]
		if !inferred {
			return chain, true // reached an asserted triple
		}
		chain = append(chain, d)
		if seen[cur] {
			return chain, true // defensive: cyclic provenance
		}
		seen[cur] = true
		cur = d.Trigger
	}
}
