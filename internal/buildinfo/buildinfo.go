// Package buildinfo is the single source of the repository's release
// identity: the version constant stamped into the grdf_build_info metric and
// printed by every binary's -version flag. Scrapes can therefore answer
// "which build produced these numbers" without shell access to the host.
package buildinfo

import (
	"fmt"
	"io"
	"runtime"

	"repro/internal/obs"
)

// Version identifies the source tree the binaries were built from. Bumped
// once per release line, not per commit — the Go runtime version next to it
// in grdf_build_info pins the toolchain.
const Version = "0.5.0"

// Register exports grdf_build_info{version,go} into reg with the conventional
// constant value 1, so joins like `grdf_build_info * on() group_left ...`
// attach the build identity to any other series. Nil-safe.
func Register(reg *obs.Registry) {
	reg.Gauge("grdf_build_info",
		"Build identity of the running binary (value is always 1).",
		"version", Version, "go", runtime.Version()).Set(1)
}

// Print writes the one-line -version output for the named binary.
func Print(w io.Writer, binary string) {
	fmt.Fprintf(w, "%s %s (%s)\n", binary, Version, runtime.Version())
}
