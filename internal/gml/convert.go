package gml

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/grdf"
	"repro/internal/rdf"
	"repro/internal/store"
)

// The GML ⇄ GRDF converter — the mapping the paper motivates GRDF with:
// GML's content model carried over into OWL so that "a polygon in GRDF can
// be directly mapped to a polygon in GML."

// ToGRDF writes the collection into st as GRDF triples. Feature IRIs are
// minted under ns (e.g. rdf.AppNS) from the feature ID or an index. It
// returns the minted feature IRIs in input order.
func ToGRDF(st *store.Store, col *Collection, ns string) ([]rdf.IRI, error) {
	if ns == "" {
		ns = rdf.AppNS
	}
	var out []rdf.IRI
	for i := range col.Features {
		f := &col.Features[i]
		id := f.ID
		if id == "" {
			id = fmt.Sprintf("%s_%d", f.TypeName, i)
		}
		iri := rdf.IRI(ns + id)
		class := rdf.IRI(ns + f.TypeName)
		grdf.NewFeature(st, iri, class)

		for _, p := range f.Properties {
			propNS := p.Namespace
			if propNS == "" || isGMLNS(propNS) {
				propNS = ns
			}
			if !strings.HasSuffix(propNS, "#") && !strings.HasSuffix(propNS, "/") {
				propNS += "#"
			}
			st.Add(rdf.T(iri, rdf.IRI(propNS+p.Name), rdf.NewString(p.Value)))
		}
		if f.Geometry != nil {
			node, err := grdf.SetGeometry(st, iri, f.Geometry, f.SRSName)
			if err != nil {
				return nil, fmt.Errorf("gml: feature %s: %w", id, err)
			}
			if f.GeomProperty != "" {
				// preserve the original property name alongside hasGeometry
				st.Add(rdf.T(iri, rdf.IRI(ns+f.GeomProperty), node))
			}
		}
		if f.HasBounds {
			if _, err := grdf.SetEnvelope(st, iri, f.Bounds, f.SRSName); err != nil {
				return nil, fmt.Errorf("gml: feature %s bounds: %w", id, err)
			}
		}
		out = append(out, iri)
	}
	return out, nil
}

// FromGRDF extracts every feature of the given class (or every grdf:Feature
// subject when class is empty) back into a GML collection.
func FromGRDF(st *store.Store, class rdf.IRI) (*Collection, error) {
	var subjects []rdf.Term
	if class != "" {
		subjects = st.SubjectsOfType(class)
	} else {
		// Instances carry their domain class (app:ChemSite, …), which
		// NewFeature links under grdf:Feature; without a reasoning pass we
		// follow those declared subclass edges ourselves.
		seen := map[string]struct{}{}
		classes := append(st.Subjects(rdf.RDFSSubClassOf, grdf.Feature), rdf.Term(grdf.Feature))
		for _, c := range classes {
			for _, s := range st.SubjectsOfType(c) {
				k := s.String()
				if _, dup := seen[k]; dup {
					continue
				}
				seen[k] = struct{}{}
				subjects = append(subjects, s)
			}
		}
	}
	sort.Slice(subjects, func(i, j int) bool { return subjects[i].String() < subjects[j].String() })

	col := &Collection{}
	for _, s := range subjects {
		iri, ok := s.(rdf.IRI)
		if !ok {
			continue
		}
		f := Feature{
			ID:       iri.LocalName(),
			TypeName: featureTypeName(st, s),
		}
		// Simple literal properties outside the GRDF namespaces.
		props := st.Match(s, nil, nil)
		sort.Slice(props, func(i, j int) bool {
			if props[i].Predicate.String() != props[j].Predicate.String() {
				return props[i].Predicate.String() < props[j].Predicate.String()
			}
			return props[i].Object.String() < props[j].Object.String()
		})
		for _, t := range props {
			pred := t.Predicate.(rdf.IRI)
			if strings.HasPrefix(string(pred), grdf.NS) ||
				strings.HasPrefix(string(pred), grdf.TemporalNS) ||
				strings.HasPrefix(string(pred), rdf.RDFNS) ||
				strings.HasPrefix(string(pred), rdf.RDFSNS) {
				continue
			}
			lit, isLit := t.Object.(rdf.Literal)
			if !isLit {
				continue
			}
			f.Properties = append(f.Properties, Property{
				Name:      pred.LocalName(),
				Namespace: pred.Namespace(),
				Value:     lit.Value,
			})
		}
		if g, srs, err := grdf.GeometryOf(st, s); err == nil {
			f.Geometry, f.SRSName = g, srs
		}
		if env, ok := grdf.EnvelopeOfFeature(st, s); ok {
			f.Bounds, f.HasBounds = env, true
		}
		col.Features = append(col.Features, f)
	}
	return col, nil
}

// featureTypeName picks the most specific non-GRDF type's local name,
// falling back to "Feature".
func featureTypeName(st *store.Store, s rdf.Term) string {
	var classes []string
	for _, ty := range st.Objects(s, rdf.RDFType) {
		iri, ok := ty.(rdf.IRI)
		if !ok {
			continue
		}
		if strings.HasPrefix(string(iri), grdf.NS) || strings.HasPrefix(string(iri), rdf.OWLNS) {
			continue
		}
		classes = append(classes, iri.LocalName())
	}
	sort.Strings(classes)
	if len(classes) > 0 {
		return classes[0]
	}
	return "Feature"
}
