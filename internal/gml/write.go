package gml

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/geom"
)

// Write serializes a collection as a GML FeatureCollection document.
func Write(w io.Writer, col *Collection) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(`<?xml version="1.0" encoding="UTF-8"?>` + "\n")
	bw.WriteString(`<gml:FeatureCollection xmlns:gml="http://www.opengis.net/gml" xmlns:app="http://grdf.org/app#">` + "\n")
	if col.HasBounds {
		bw.WriteString("  <gml:boundedBy>\n")
		writeEnvelope(bw, col.Bounds, col.SRSName, "    ")
		bw.WriteString("  </gml:boundedBy>\n")
	}
	for i := range col.Features {
		f := &col.Features[i]
		bw.WriteString("  <gml:featureMember>\n")
		if err := writeFeature(bw, f, "    "); err != nil {
			return err
		}
		bw.WriteString("  </gml:featureMember>\n")
	}
	bw.WriteString("</gml:FeatureCollection>\n")
	return bw.Flush()
}

// Format renders a collection as a GML string.
func Format(col *Collection) string {
	var sb strings.Builder
	_ = Write(&sb, col)
	return sb.String()
}

func writeFeature(bw *bufio.Writer, f *Feature, indent string) error {
	name := "app:" + f.TypeName
	bw.WriteString(indent + "<" + name)
	if f.ID != "" {
		bw.WriteString(` gml:id="` + escape(f.ID) + `"`)
	}
	bw.WriteString(">\n")
	if f.HasBounds {
		bw.WriteString(indent + "  <gml:boundedBy>\n")
		writeEnvelope(bw, f.Bounds, f.SRSName, indent+"    ")
		bw.WriteString(indent + "  </gml:boundedBy>\n")
	}
	for _, p := range f.Properties {
		bw.WriteString(indent + "  <app:" + p.Name + ">" + escape(p.Value) + "</app:" + p.Name + ">\n")
	}
	if f.Geometry != nil {
		prop := f.GeomProperty
		if prop == "" {
			prop = "geometryProperty"
		}
		bw.WriteString(indent + "  <app:" + prop + ">\n")
		if err := writeGeometry(bw, f.Geometry, f.SRSName, indent+"    "); err != nil {
			return err
		}
		bw.WriteString(indent + "  </app:" + prop + ">\n")
	}
	bw.WriteString(indent + "</" + name + ">\n")
	return nil
}

func writeEnvelope(bw *bufio.Writer, e geom.Envelope, srs, indent string) {
	bw.WriteString(indent + "<gml:Envelope")
	if srs != "" {
		bw.WriteString(` srsName="` + escape(srs) + `"`)
	}
	bw.WriteString(">\n")
	ll, ur := e.Corners()
	bw.WriteString(indent + "  <gml:lowerCorner>" + geom.FormatPosList([]geom.Coord{ll}) + "</gml:lowerCorner>\n")
	bw.WriteString(indent + "  <gml:upperCorner>" + geom.FormatPosList([]geom.Coord{ur}) + "</gml:upperCorner>\n")
	bw.WriteString(indent + "</gml:Envelope>\n")
}

func writeGeometry(bw *bufio.Writer, g geom.Geometry, srs, indent string) error {
	srsAttr := ""
	if srs != "" {
		srsAttr = ` srsName="` + escape(srs) + `"`
	}
	switch v := g.(type) {
	case geom.Point:
		bw.WriteString(indent + "<gml:Point" + srsAttr + "><gml:coordinates>" +
			geom.FormatCoordinates([]geom.Coord{v.C}) + "</gml:coordinates></gml:Point>\n")
	case geom.LineString:
		bw.WriteString(indent + "<gml:LineString" + srsAttr + "><gml:coordinates>" +
			geom.FormatCoordinates(v.Coords) + "</gml:coordinates></gml:LineString>\n")
	case geom.Polygon:
		bw.WriteString(indent + "<gml:Polygon" + srsAttr + ">\n")
		bw.WriteString(indent + "  <gml:exterior><gml:LinearRing><gml:coordinates>" +
			geom.FormatCoordinates(v.Exterior.Coords) + "</gml:coordinates></gml:LinearRing></gml:exterior>\n")
		for _, h := range v.Holes {
			bw.WriteString(indent + "  <gml:interior><gml:LinearRing><gml:coordinates>" +
				geom.FormatCoordinates(h.Coords) + "</gml:coordinates></gml:LinearRing></gml:interior>\n")
		}
		bw.WriteString(indent + "</gml:Polygon>\n")
	case geom.Envelope:
		writeEnvelope(bw, v, srs, indent)
	case geom.MultiCurve:
		bw.WriteString(indent + "<gml:MultiLineString" + srsAttr + ">\n")
		for _, c := range v.Curves {
			bw.WriteString(indent + "  <gml:lineStringMember>\n")
			if err := writeGeometry(bw, c, "", indent+"    "); err != nil {
				return err
			}
			bw.WriteString(indent + "  </gml:lineStringMember>\n")
		}
		bw.WriteString(indent + "</gml:MultiLineString>\n")
	case geom.MultiSurface:
		bw.WriteString(indent + "<gml:MultiPolygon" + srsAttr + ">\n")
		for _, s := range v.Surfaces {
			bw.WriteString(indent + "  <gml:polygonMember>\n")
			if err := writeGeometry(bw, s, "", indent+"    "); err != nil {
				return err
			}
			bw.WriteString(indent + "  </gml:polygonMember>\n")
		}
		bw.WriteString(indent + "</gml:MultiPolygon>\n")
	default:
		return fmt.Errorf("gml: cannot serialize geometry kind %s", g.Kind())
	}
	return nil
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
