package gml

import (
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/grdf"
	"repro/internal/rdf"
	"repro/internal/store"
)

// sampleDoc mirrors the shape of the paper's List 6/7 data as proper GML.
const sampleDoc = `<?xml version="1.0"?>
<gml:FeatureCollection xmlns:gml="http://www.opengis.net/gml" xmlns:app="http://grdf.org/app#">
  <gml:boundedBy>
    <gml:Envelope srsName="http://grdf.org/crs/TX83-NCF">
      <gml:lowerCorner>2530000 7100000</gml:lowerCorner>
      <gml:upperCorner>2540000 7110000</gml:upperCorner>
    </gml:Envelope>
  </gml:boundedBy>
  <gml:featureMember>
    <app:HydroStream gml:id="stream11070">
      <app:hasObjectID>11070</app:hasObjectID>
      <app:centerLineOf>
        <gml:LineString srsName="http://grdf.org/crs/TX83-NCF">
          <gml:coordinates>2533822.17263276,7108248.82783879 2533900.5,7108300.25</gml:coordinates>
        </gml:LineString>
      </app:centerLineOf>
    </app:HydroStream>
  </gml:featureMember>
  <gml:featureMember>
    <app:ChemSite gml:id="NTEnergy">
      <app:hasSiteName>North Texas Energy</app:hasSiteName>
      <app:hasSiteId>004221</app:hasSiteId>
      <gml:boundedBy>
        <gml:Envelope srsName="http://grdf.org/crs/TX83-NCF">
          <gml:lowerCorner>2533000 7107000</gml:lowerCorner>
          <gml:upperCorner>2533500 7107500</gml:upperCorner>
        </gml:Envelope>
      </gml:boundedBy>
    </app:ChemSite>
  </gml:featureMember>
</gml:FeatureCollection>`

func TestParseCollection(t *testing.T) {
	col, err := ParseString(sampleDoc)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if len(col.Features) != 2 {
		t.Fatalf("features = %d", len(col.Features))
	}
	if !col.HasBounds || col.Bounds.MinX != 2530000 {
		t.Errorf("collection bounds = %+v", col.Bounds)
	}
	stream := col.Features[0]
	if stream.TypeName != "HydroStream" || stream.ID != "stream11070" {
		t.Errorf("stream meta = %+v", stream)
	}
	if v, ok := stream.Prop("hasObjectID"); !ok || v != "11070" {
		t.Errorf("hasObjectID = %q %t", v, ok)
	}
	if stream.Geometry == nil || stream.Geometry.Kind() != geom.KindLineString {
		t.Fatalf("stream geometry = %v", stream.Geometry)
	}
	if stream.GeomProperty != "centerLineOf" {
		t.Errorf("GeomProperty = %q", stream.GeomProperty)
	}
	if stream.SRSName != "http://grdf.org/crs/TX83-NCF" {
		t.Errorf("SRSName = %q", stream.SRSName)
	}
	site := col.Features[1]
	if !site.HasBounds || site.Bounds.MaxX != 2533500 {
		t.Errorf("site bounds = %+v", site.Bounds)
	}
	if v, _ := site.Prop("hasSiteName"); v != "North Texas Energy" {
		t.Errorf("hasSiteName = %q", v)
	}
}

func TestParseGeometryVariants(t *testing.T) {
	doc := `<?xml version="1.0"?>
<gml:FeatureCollection xmlns:gml="http://www.opengis.net/gml" xmlns:app="http://e/">
  <gml:featureMember>
    <app:Zone>
      <app:extent>
        <gml:Polygon>
          <gml:exterior><gml:LinearRing><gml:posList>0 0 4 0 4 4 0 4 0 0</gml:posList></gml:LinearRing></gml:exterior>
          <gml:interior><gml:LinearRing><gml:posList>1 1 2 1 2 2 1 2 1 1</gml:posList></gml:LinearRing></gml:interior>
        </gml:Polygon>
      </app:extent>
    </app:Zone>
  </gml:featureMember>
  <gml:featureMember>
    <app:Spot>
      <gml:Point><gml:pos>5 6</gml:pos></gml:Point>
    </app:Spot>
  </gml:featureMember>
  <gml:featureMember>
    <app:Net>
      <app:lines>
        <gml:MultiLineString>
          <gml:lineStringMember><gml:LineString><gml:posList>0 0 1 1</gml:posList></gml:LineString></gml:lineStringMember>
          <gml:lineStringMember><gml:LineString><gml:posList>2 2 3 3</gml:posList></gml:LineString></gml:lineStringMember>
        </gml:MultiLineString>
      </app:lines>
    </app:Net>
  </gml:featureMember>
</gml:FeatureCollection>`
	col, err := ParseString(doc)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if len(col.Features) != 3 {
		t.Fatalf("features = %d", len(col.Features))
	}
	poly, ok := col.Features[0].Geometry.(geom.Polygon)
	if !ok {
		t.Fatalf("zone geometry = %T", col.Features[0].Geometry)
	}
	if poly.Area() != 15 {
		t.Errorf("polygon area = %g", poly.Area())
	}
	pt, ok := col.Features[1].Geometry.(geom.Point)
	if !ok || pt.C != (geom.Coord{X: 5, Y: 6}) {
		t.Errorf("point = %v", col.Features[1].Geometry)
	}
	mc, ok := col.Features[2].Geometry.(geom.MultiCurve)
	if !ok || len(mc.Curves) != 2 {
		t.Errorf("multicurve = %v", col.Features[2].Geometry)
	}
}

func TestParseSingleFeatureDocument(t *testing.T) {
	doc := `<app:Site xmlns:app="http://e/" xmlns:gml="http://www.opengis.net/gml">
  <app:name>solo</app:name>
</app:Site>`
	col, err := ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(col.Features) != 1 || col.Features[0].TypeName != "Site" {
		t.Errorf("col = %+v", col)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`<gml:FeatureCollection xmlns:gml="http://www.opengis.net/gml"><gml:featureMember><a:X xmlns:a="http://e/"><a:g><gml:Point></gml:Point></a:g></a:X></gml:featureMember></gml:FeatureCollection>`, // point without coords
		`<unclosed`,
	}
	for _, doc := range bad {
		if _, err := ParseString(doc); err == nil {
			t.Errorf("no error for %.60s", doc)
		}
	}
}

func TestWriteRoundTrip(t *testing.T) {
	col, err := ParseString(sampleDoc)
	if err != nil {
		t.Fatal(err)
	}
	out := Format(col)
	back, err := ParseString(out)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
	if len(back.Features) != len(col.Features) {
		t.Fatalf("features %d -> %d", len(col.Features), len(back.Features))
	}
	for i := range col.Features {
		a, b := col.Features[i], back.Features[i]
		if a.TypeName != b.TypeName || len(a.Properties) != len(b.Properties) {
			t.Errorf("feature %d changed: %+v -> %+v", i, a, b)
		}
		if (a.Geometry == nil) != (b.Geometry == nil) {
			t.Errorf("feature %d geometry presence changed", i)
		}
		if a.Geometry != nil && a.Geometry.Envelope() != b.Geometry.Envelope() {
			t.Errorf("feature %d geometry envelope changed", i)
		}
	}
}

func TestToGRDF(t *testing.T) {
	col, err := ParseString(sampleDoc)
	if err != nil {
		t.Fatal(err)
	}
	st := store.New()
	iris, err := ToGRDF(st, col, rdf.AppNS)
	if err != nil {
		t.Fatalf("ToGRDF: %v", err)
	}
	if len(iris) != 2 {
		t.Fatalf("iris = %v", iris)
	}
	stream := iris[0]
	if !st.Has(rdf.T(stream, rdf.RDFType, rdf.IRI(rdf.AppNS+"HydroStream"))) {
		t.Error("stream type missing")
	}
	if !st.Has(rdf.T(stream, rdf.IRI(rdf.AppNS+"hasObjectID"), rdf.NewString("11070"))) {
		t.Error("property missing")
	}
	g, srs, err := grdf.GeometryOf(st, stream)
	if err != nil || g.Kind() != geom.KindLineString {
		t.Fatalf("GeometryOf = %v, %v", g, err)
	}
	if srs != "http://grdf.org/crs/TX83-NCF" {
		t.Errorf("srs = %q", srs)
	}
	site := iris[1]
	env, ok := grdf.EnvelopeOfFeature(st, site)
	if !ok || env.MinX != 2533000 {
		t.Errorf("site envelope = %+v %t", env, ok)
	}
}

func TestGRDFRoundTrip(t *testing.T) {
	col, err := ParseString(sampleDoc)
	if err != nil {
		t.Fatal(err)
	}
	st := store.New()
	if _, err := ToGRDF(st, col, rdf.AppNS); err != nil {
		t.Fatal(err)
	}
	back, err := FromGRDF(st, "")
	if err != nil {
		t.Fatalf("FromGRDF: %v", err)
	}
	if len(back.Features) != 2 {
		t.Fatalf("features = %d", len(back.Features))
	}
	byType := map[string]*Feature{}
	for i := range back.Features {
		byType[back.Features[i].TypeName] = &back.Features[i]
	}
	stream, ok := byType["HydroStream"]
	if !ok {
		t.Fatalf("HydroStream lost: %+v", byType)
	}
	if v, _ := stream.Prop("hasObjectID"); v != "11070" {
		t.Errorf("hasObjectID = %q", v)
	}
	if stream.Geometry == nil || stream.Geometry.Kind() != geom.KindLineString {
		t.Errorf("stream geometry = %v", stream.Geometry)
	}
	site := byType["ChemSite"]
	if site == nil || !site.HasBounds {
		t.Fatalf("site = %+v", site)
	}
	if v, _ := site.Prop("hasSiteName"); v != "North Texas Energy" {
		t.Errorf("hasSiteName = %q", v)
	}
	// Full circle: GML again
	out := Format(back)
	if !strings.Contains(out, "North Texas Energy") {
		t.Errorf("final GML lost data:\n%s", out)
	}
}

func TestFromGRDFFiltersGRDFInternals(t *testing.T) {
	st := store.New()
	f := grdf.NewFeature(st, rdf.IRI(rdf.AppNS+"x"), rdf.IRI(rdf.AppNS+"Site"))
	st.Add(rdf.T(f, rdf.RDFSLabel, rdf.NewString("label"))) // rdfs: filtered
	st.Add(rdf.T(f, rdf.IRI(rdf.AppNS+"keep"), rdf.NewString("yes")))
	col, err := FromGRDF(st, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(col.Features) != 1 {
		t.Fatalf("features = %d", len(col.Features))
	}
	if len(col.Features[0].Properties) != 1 || col.Features[0].Properties[0].Name != "keep" {
		t.Errorf("properties = %+v", col.Features[0].Properties)
	}
}

func TestWriteGeometryVariants(t *testing.T) {
	ring1, _ := geom.NewLinearRing([]geom.Coord{{X: 0, Y: 0}, {X: 4, Y: 0}, {X: 4, Y: 4}, {X: 0, Y: 4}, {X: 0, Y: 0}})
	hole, _ := geom.NewLinearRing([]geom.Coord{{X: 1, Y: 1}, {X: 2, Y: 1}, {X: 2, Y: 2}, {X: 1, Y: 2}, {X: 1, Y: 1}})
	l1, _ := geom.NewLineString([]geom.Coord{{X: 0, Y: 0}, {X: 1, Y: 1}})
	l2, _ := geom.NewLineString([]geom.Coord{{X: 2, Y: 2}, {X: 3, Y: 3}})
	geoms := []geom.Geometry{
		geom.NewPoint(5, 6),
		l1,
		geom.NewPolygon(ring1, hole),
		geom.EnvelopeOf(geom.Coord{X: 0, Y: 0}, geom.Coord{X: 9, Y: 9}),
		geom.MultiCurve{Curves: []geom.LineString{l1, l2}},
		geom.MultiSurface{Surfaces: []geom.Polygon{geom.NewPolygon(ring1)}},
	}
	for _, g := range geoms {
		col := &Collection{Features: []Feature{{
			ID: "f1", TypeName: "Thing", Geometry: g, SRSName: "http://grdf.org/crs/TX83-NCF",
		}}}
		out := Format(col)
		back, err := ParseString(out)
		if err != nil {
			t.Fatalf("%s: reparse: %v\n%s", g.Kind(), err, out)
		}
		if len(back.Features) != 1 || back.Features[0].Geometry == nil {
			t.Fatalf("%s: feature lost:\n%s", g.Kind(), out)
		}
		if back.Features[0].Geometry.Envelope() != g.Envelope() {
			t.Errorf("%s: envelope changed: %v -> %v", g.Kind(),
				g.Envelope(), back.Features[0].Geometry.Envelope())
		}
		if back.Features[0].SRSName == "" {
			t.Errorf("%s: srsName lost", g.Kind())
		}
	}
	// unsupported geometry errors
	cc, _ := geom.NewCompositeCurve(l1)
	col := &Collection{Features: []Feature{{TypeName: "X", Geometry: cc}}}
	var sb strings.Builder
	if err := Write(&sb, col); err == nil {
		t.Error("unsupported geometry serialized")
	}
}

func TestParseLegacyBoxAndBoundaries(t *testing.T) {
	doc := `<?xml version="1.0"?>
<gml:FeatureCollection xmlns:gml="http://www.opengis.net/gml" xmlns:app="http://e/">
  <gml:featureMember>
    <app:Old>
      <gml:boundedBy>
        <gml:Box><gml:coordinates>0,0 10,10</gml:coordinates></gml:Box>
      </gml:boundedBy>
      <app:shape>
        <gml:Polygon>
          <gml:outerBoundaryIs><gml:LinearRing><gml:coordinates>0,0 4,0 4,4 0,0</gml:coordinates></gml:LinearRing></gml:outerBoundaryIs>
          <gml:innerBoundaryIs><gml:LinearRing><gml:coordinates>1,1 2,1 2,2 1,1</gml:coordinates></gml:LinearRing></gml:innerBoundaryIs>
        </gml:Polygon>
      </app:shape>
    </app:Old>
  </gml:featureMember>
</gml:FeatureCollection>`
	col, err := ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	f := col.Features[0]
	if !f.HasBounds || f.Bounds.MaxX != 10 {
		t.Errorf("Box bounds = %+v", f.Bounds)
	}
	poly, ok := f.Geometry.(geom.Polygon)
	if !ok || len(poly.Holes) != 1 {
		t.Errorf("GML2-style polygon = %v", f.Geometry)
	}
}

func TestParseEnvelopeErrors(t *testing.T) {
	bad := []string{
		// missing upperCorner
		`<gml:Envelope xmlns:gml="http://www.opengis.net/gml"><gml:lowerCorner>0 0</gml:lowerCorner></gml:Envelope>`,
		// corner with one value
		`<gml:Envelope xmlns:gml="http://www.opengis.net/gml"><gml:lowerCorner>0</gml:lowerCorner><gml:upperCorner>1 1</gml:upperCorner></gml:Envelope>`,
	}
	for _, env := range bad {
		doc := `<gml:FeatureCollection xmlns:gml="http://www.opengis.net/gml" xmlns:a="http://e/">
  <gml:featureMember><a:X><a:g>` + env + `</a:g></a:X></gml:featureMember>
</gml:FeatureCollection>`
		if _, err := ParseString(doc); err == nil {
			t.Errorf("bad envelope accepted: %.60s", env)
		}
	}
}
