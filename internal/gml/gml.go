// Package gml implements a GML 3.1 subset codec and the bidirectional
// GML ⇄ GRDF converter. The paper's design rule is that "there is a direct
// correspondence between high-level GML schemas and GRDF ontologies" and that
// "a polygon in GRDF can be directly mapped to a polygon in GML"; this
// package makes that correspondence executable and testable.
//
// Supported GML: FeatureCollection/featureMember, arbitrary feature types
// with simple (text) properties, boundedBy/Envelope (lowerCorner/upperCorner
// or coordinates), Point (pos/coordinates), LineString (posList/
// coordinates), Polygon (exterior/interior LinearRing), MultiLineString
// (lineStringMember) and MultiPolygon (polygonMember).
package gml

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"repro/internal/geom"
)

// Property is one simple (text-valued) feature property.
type Property struct {
	// Name is the local element name, e.g. "hasSiteName".
	Name string
	// Namespace is the element's namespace URI (may be empty).
	Namespace string
	// Value is the text content.
	Value string
}

// Feature is a GML feature instance.
type Feature struct {
	// ID is the gml:id attribute (may be empty).
	ID string
	// TypeName is the feature element's local name, e.g. "ChemSite".
	TypeName string
	// Namespace is the feature element's namespace URI.
	Namespace string
	// Properties holds the simple properties in document order.
	Properties []Property
	// Geometry is the feature geometry, when present.
	Geometry geom.Geometry
	// GeomProperty is the property element name that carried the geometry
	// (e.g. "centerLineOf"); empty means a bare geometry child.
	GeomProperty string
	// SRSName is the geometry's declared CRS (may be empty).
	SRSName string
	// Bounds is the gml:boundedBy envelope.
	Bounds geom.Envelope
	// HasBounds reports whether boundedBy was present.
	HasBounds bool
}

// Prop returns the first property value with the given local name.
func (f *Feature) Prop(name string) (string, bool) {
	for _, p := range f.Properties {
		if p.Name == name {
			return p.Value, true
		}
	}
	return "", false
}

// Collection is a GML feature collection.
type Collection struct {
	Features []Feature
	// Bounds is the collection-level boundedBy, when present.
	Bounds    geom.Envelope
	HasBounds bool
	SRSName   string
}

// gmlNS matches any GML namespace version (…/gml and …/gml/3.2 variants).
func isGMLNS(ns string) bool {
	return strings.HasPrefix(ns, "http://www.opengis.net/gml")
}

// Parse reads a GML document: either a FeatureCollection or a single
// feature element.
func Parse(r io.Reader) (*Collection, error) {
	dec := xml.NewDecoder(r)
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return nil, fmt.Errorf("gml: document contains no XML element")
		}
		if err != nil {
			return nil, fmt.Errorf("gml: %w", err)
		}
		se, ok := tok.(xml.StartElement)
		if !ok {
			continue
		}
		if isGMLNS(se.Name.Space) && se.Name.Local == "FeatureCollection" {
			return parseCollection(dec, se)
		}
		// single feature document
		f, err := parseFeature(dec, se)
		if err != nil {
			return nil, err
		}
		return &Collection{Features: []Feature{*f}}, nil
	}
}

// ParseString parses a GML document from a string.
func ParseString(doc string) (*Collection, error) {
	return Parse(strings.NewReader(doc))
}

func parseCollection(dec *xml.Decoder, _ xml.StartElement) (*Collection, error) {
	col := &Collection{}
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("gml: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch {
			case isGMLNS(t.Name.Space) && t.Name.Local == "boundedBy":
				env, srs, err := parseBoundedBy(dec)
				if err != nil {
					return nil, err
				}
				col.Bounds, col.HasBounds, col.SRSName = env, true, srs
			case isGMLNS(t.Name.Space) && t.Name.Local == "featureMember":
				f, err := parseMember(dec)
				if err != nil {
					return nil, err
				}
				if f != nil {
					col.Features = append(col.Features, *f)
				}
			default:
				if err := skipElement(dec); err != nil {
					return nil, err
				}
			}
		case xml.EndElement:
			return col, nil
		}
	}
}

// parseMember reads the single feature inside a featureMember wrapper.
func parseMember(dec *xml.Decoder) (*Feature, error) {
	var feature *Feature
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("gml: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			f, err := parseFeature(dec, t)
			if err != nil {
				return nil, err
			}
			feature = f
		case xml.EndElement:
			return feature, nil
		}
	}
}

var geometryNames = map[string]bool{
	"Point": true, "LineString": true, "Polygon": true,
	"MultiLineString": true, "MultiPolygon": true, "Envelope": true,
	"LinearRing": true, "MultiCurve": true, "MultiSurface": true,
}

func parseFeature(dec *xml.Decoder, se xml.StartElement) (*Feature, error) {
	f := &Feature{TypeName: se.Name.Local, Namespace: se.Name.Space}
	for _, a := range se.Attr {
		if a.Name.Local == "id" {
			f.ID = a.Value
		}
	}
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("gml: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch {
			case isGMLNS(t.Name.Space) && t.Name.Local == "boundedBy":
				env, srs, err := parseBoundedBy(dec)
				if err != nil {
					return nil, err
				}
				f.Bounds, f.HasBounds = env, true
				if f.SRSName == "" {
					f.SRSName = srs
				}
			case isGMLNS(t.Name.Space) && geometryNames[t.Name.Local]:
				g, srs, err := parseGeometry(dec, t)
				if err != nil {
					return nil, err
				}
				f.Geometry, f.GeomProperty = g, ""
				if srs != "" {
					f.SRSName = srs
				}
			default:
				// Property element: may contain text or a nested geometry.
				prop, g, srs, err := parsePropertyOrGeom(dec, t)
				if err != nil {
					return nil, err
				}
				if g != nil {
					f.Geometry, f.GeomProperty = g, t.Name.Local
					if srs != "" {
						f.SRSName = srs
					}
				} else if prop != nil {
					f.Properties = append(f.Properties, *prop)
				}
			}
		case xml.EndElement:
			return f, nil
		}
	}
}

// parsePropertyOrGeom reads a property element; if it wraps a geometry the
// geometry is returned, otherwise its text content becomes a Property.
func parsePropertyOrGeom(dec *xml.Decoder, se xml.StartElement) (*Property, geom.Geometry, string, error) {
	var text strings.Builder
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, nil, "", fmt.Errorf("gml: %w", err)
		}
		switch t := tok.(type) {
		case xml.CharData:
			text.Write(t)
		case xml.StartElement:
			if isGMLNS(t.Name.Space) && geometryNames[t.Name.Local] {
				g, srs, err := parseGeometry(dec, t)
				if err != nil {
					return nil, nil, "", err
				}
				if err := skipElement(dec); err != nil { // consume property end
					return nil, nil, "", err
				}
				return nil, g, srs, nil
			}
			if err := skipElement(dec); err != nil {
				return nil, nil, "", err
			}
		case xml.EndElement:
			return &Property{
				Name:      se.Name.Local,
				Namespace: se.Name.Space,
				Value:     strings.TrimSpace(text.String()),
			}, nil, "", nil
		}
	}
}

// parseBoundedBy reads the envelope inside a boundedBy wrapper.
func parseBoundedBy(dec *xml.Decoder) (geom.Envelope, string, error) {
	env := geom.EmptyEnvelope()
	srs := ""
	for {
		tok, err := dec.Token()
		if err != nil {
			return env, srs, fmt.Errorf("gml: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch t.Name.Local {
			case "Envelope", "Box":
				g, s, err := parseGeometry(dec, t)
				if err != nil {
					return env, srs, err
				}
				if e, ok := g.(geom.Envelope); ok {
					env, srs = e, s
				}
			case "Null", "null":
				if err := skipElement(dec); err != nil {
					return env, srs, err
				}
			default:
				if err := skipElement(dec); err != nil {
					return env, srs, err
				}
			}
		case xml.EndElement:
			return env, srs, nil
		}
	}
}

// parseGeometry reads one geometry element whose start tag is se.
func parseGeometry(dec *xml.Decoder, se xml.StartElement) (geom.Geometry, string, error) {
	srs := ""
	for _, a := range se.Attr {
		if a.Name.Local == "srsName" {
			srs = a.Value
		}
	}
	switch se.Name.Local {
	case "Point":
		cs, err := readCoords(dec)
		if err != nil {
			return nil, "", err
		}
		if len(cs) != 1 {
			return nil, "", fmt.Errorf("gml: Point needs 1 coordinate, got %d", len(cs))
		}
		return geom.Point{C: cs[0]}, srs, nil
	case "LineString":
		cs, err := readCoords(dec)
		if err != nil {
			return nil, "", err
		}
		l, err := geom.NewLineString(cs)
		return l, srs, err
	case "LinearRing":
		cs, err := readCoords(dec)
		if err != nil {
			return nil, "", err
		}
		r, err := geom.NewLinearRing(cs)
		return r, srs, err
	case "Envelope", "Box":
		return readEnvelope(dec, srs)
	case "Polygon":
		return readPolygon(dec, srs)
	case "MultiLineString", "MultiCurve":
		var mc geom.MultiCurve
		if err := readMembers(dec, func(g geom.Geometry) error {
			l, ok := g.(geom.LineString)
			if !ok {
				return fmt.Errorf("gml: MultiLineString member is %s", g.Kind())
			}
			mc.Curves = append(mc.Curves, l)
			return nil
		}); err != nil {
			return nil, "", err
		}
		return mc, srs, nil
	case "MultiPolygon", "MultiSurface":
		var ms geom.MultiSurface
		if err := readMembers(dec, func(g geom.Geometry) error {
			p, ok := g.(geom.Polygon)
			if !ok {
				return fmt.Errorf("gml: MultiPolygon member is %s", g.Kind())
			}
			ms.Surfaces = append(ms.Surfaces, p)
			return nil
		}); err != nil {
			return nil, "", err
		}
		return ms, srs, nil
	}
	return nil, "", fmt.Errorf("gml: unsupported geometry element %s", se.Name.Local)
}

// readCoords reads coordinates/pos/posList children until the geometry's end
// element.
func readCoords(dec *xml.Decoder) ([]geom.Coord, error) {
	var coords []geom.Coord
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("gml: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch t.Name.Local {
			case "coordinates":
				text, err := elementText(dec)
				if err != nil {
					return nil, err
				}
				cs, err := geom.ParseCoordinates(text)
				if err != nil {
					return nil, err
				}
				coords = append(coords, cs...)
			case "pos", "posList":
				text, err := elementText(dec)
				if err != nil {
					return nil, err
				}
				cs, err := geom.ParsePosList(text)
				if err != nil {
					return nil, err
				}
				coords = append(coords, cs...)
			default:
				if err := skipElement(dec); err != nil {
					return nil, err
				}
			}
		case xml.EndElement:
			if len(coords) == 0 {
				return nil, fmt.Errorf("gml: geometry has no coordinates")
			}
			return coords, nil
		}
	}
}

func readEnvelope(dec *xml.Decoder, srs string) (geom.Geometry, string, error) {
	var lower, upper *geom.Coord
	var coords []geom.Coord
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, "", fmt.Errorf("gml: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch t.Name.Local {
			case "lowerCorner", "upperCorner":
				text, err := elementText(dec)
				if err != nil {
					return nil, "", err
				}
				cs, err := geom.ParsePosList(text)
				if err != nil || len(cs) != 1 {
					return nil, "", fmt.Errorf("gml: bad corner %q", text)
				}
				if t.Name.Local == "lowerCorner" {
					lower = &cs[0]
				} else {
					upper = &cs[0]
				}
			case "coordinates":
				text, err := elementText(dec)
				if err != nil {
					return nil, "", err
				}
				cs, err := geom.ParseCoordinates(text)
				if err != nil {
					return nil, "", err
				}
				coords = cs
			default:
				if err := skipElement(dec); err != nil {
					return nil, "", err
				}
			}
		case xml.EndElement:
			switch {
			case lower != nil && upper != nil:
				return geom.EnvelopeOf(*lower, *upper), srs, nil
			case len(coords) >= 2:
				return geom.EnvelopeOf(coords...), srs, nil
			}
			return nil, "", fmt.Errorf("gml: envelope missing corners")
		}
	}
}

func readPolygon(dec *xml.Decoder, srs string) (geom.Geometry, string, error) {
	var ext *geom.LinearRing
	var holes []geom.LinearRing
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, "", fmt.Errorf("gml: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch t.Name.Local {
			case "exterior", "outerBoundaryIs", "interior", "innerBoundaryIs":
				ring, err := readRingWrapper(dec)
				if err != nil {
					return nil, "", err
				}
				if t.Name.Local == "exterior" || t.Name.Local == "outerBoundaryIs" {
					ext = &ring
				} else {
					holes = append(holes, ring)
				}
			default:
				if err := skipElement(dec); err != nil {
					return nil, "", err
				}
			}
		case xml.EndElement:
			if ext == nil {
				return nil, "", fmt.Errorf("gml: polygon has no exterior")
			}
			return geom.NewPolygon(*ext, holes...), srs, nil
		}
	}
}

func readRingWrapper(dec *xml.Decoder) (geom.LinearRing, error) {
	var ring *geom.LinearRing
	for {
		tok, err := dec.Token()
		if err != nil {
			return geom.LinearRing{}, fmt.Errorf("gml: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Local == "LinearRing" {
				cs, err := readCoords(dec)
				if err != nil {
					return geom.LinearRing{}, err
				}
				r, err := geom.NewLinearRing(cs)
				if err != nil {
					return geom.LinearRing{}, err
				}
				ring = &r
			} else if err := skipElement(dec); err != nil {
				return geom.LinearRing{}, err
			}
		case xml.EndElement:
			if ring == nil {
				return geom.LinearRing{}, fmt.Errorf("gml: ring wrapper without LinearRing")
			}
			return *ring, nil
		}
	}
}

// readMembers reads *Member wrappers each containing one geometry.
func readMembers(dec *xml.Decoder, add func(geom.Geometry) error) error {
	for {
		tok, err := dec.Token()
		if err != nil {
			return fmt.Errorf("gml: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			// wrapper like lineStringMember / polygonMember / curveMember
			inner, err := readSingleGeometry(dec)
			if err != nil {
				return err
			}
			if inner != nil {
				if err := add(inner); err != nil {
					return err
				}
			}
			_ = t
		case xml.EndElement:
			return nil
		}
	}
}

// readSingleGeometry reads the single geometry child of a member wrapper.
func readSingleGeometry(dec *xml.Decoder) (geom.Geometry, error) {
	var out geom.Geometry
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("gml: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if geometryNames[t.Name.Local] {
				g, _, err := parseGeometry(dec, t)
				if err != nil {
					return nil, err
				}
				out = g
			} else if err := skipElement(dec); err != nil {
				return nil, err
			}
		case xml.EndElement:
			return out, nil
		}
	}
}

// elementText reads the text content of the current element through its end.
func elementText(dec *xml.Decoder) (string, error) {
	var sb strings.Builder
	for {
		tok, err := dec.Token()
		if err != nil {
			return "", fmt.Errorf("gml: %w", err)
		}
		switch t := tok.(type) {
		case xml.CharData:
			sb.Write(t)
		case xml.StartElement:
			if err := skipElement(dec); err != nil {
				return "", err
			}
		case xml.EndElement:
			return strings.TrimSpace(sb.String()), nil
		}
	}
}

func skipElement(dec *xml.Decoder) error {
	depth := 0
	for {
		tok, err := dec.Token()
		if err != nil {
			return fmt.Errorf("gml: %w", err)
		}
		switch tok.(type) {
		case xml.StartElement:
			depth++
		case xml.EndElement:
			if depth == 0 {
				return nil
			}
			depth--
		}
	}
}
