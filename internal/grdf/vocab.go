// Package grdf implements the paper's primary contribution: the Geospatial
// Resource Description Framework — a mid-level geospatial ontology written
// in OWL (Fig. 1), a typed feature API over the triple store, spatial SPARQL
// filter functions, and the cross-source aggregation engine ("dynamic
// content aggregation") that motivates the work.
package grdf

import "repro/internal/rdf"

// NS is the GRDF ontology namespace.
const NS = rdf.GRDFNS

// TemporalNS is the temporal sub-ontology namespace (List 3 uses a separate
// temporal# namespace for hasTimePosition).
const TemporalNS = rdf.GRDFTemporalNS

// Classes of the feature model (Section 4 and 3.3).
const (
	RootGRDFObject         rdf.IRI = NS + "RootGRDFObject"
	Feature                rdf.IRI = NS + "Feature"
	FeatureCollection      rdf.IRI = NS + "FeatureCollection"
	Envelope               rdf.IRI = NS + "Envelope"
	EnvelopeWithTimePeriod rdf.IRI = NS + "EnvelopeWithTimePeriod"
	BoundingShape          rdf.IRI = NS + "BoundingShape"
	Null                   rdf.IRI = NS + "Null"
	Observation            rdf.IRI = NS + "Observation"
	Value                  rdf.IRI = NS + "Value"
	CRS                    rdf.IRI = NS + "CRS"
	Coverage               rdf.IRI = NS + "Coverage"
)

// Classes of the geometry model (Section 5).
const (
	Geometry         rdf.IRI = NS + "Geometry"
	Point            rdf.IRI = NS + "Point"
	Curve            rdf.IRI = NS + "Curve"
	LineString       rdf.IRI = NS + "LineString"
	Ring             rdf.IRI = NS + "Ring"
	LinearRing       rdf.IRI = NS + "LinearRing"
	Surface          rdf.IRI = NS + "Surface"
	Polygon          rdf.IRI = NS + "Polygon"
	Solid            rdf.IRI = NS + "Solid"
	MultiPoint       rdf.IRI = NS + "MultiPoint"
	MultiCurve       rdf.IRI = NS + "MultiCurve"
	MultiSurface     rdf.IRI = NS + "MultiSurface"
	CompositeCurve   rdf.IRI = NS + "CompositeCurve"
	CompositeSurface rdf.IRI = NS + "CompositeSurface"
	ComplexGeometry  rdf.IRI = NS + "Complex"
)

// Classes of the topology model (Section 6, Fig. 2).
const (
	Topology      rdf.IRI = NS + "Topology"
	TopoPrimitive rdf.IRI = NS + "TopoPrimitive"
	TopoNode      rdf.IRI = NS + "Node"
	TopoEdge      rdf.IRI = NS + "Edge"
	TopoFace      rdf.IRI = NS + "Face"
	TopoSolid     rdf.IRI = NS + "TopoSolid"
	TopoCurve     rdf.IRI = NS + "TopoCurve"
	TopoSurface   rdf.IRI = NS + "TopoSurface"
	TopoVolume    rdf.IRI = NS + "TopoVolume"
	TopoComplex   rdf.IRI = NS + "TopoComplex"
)

// Temporal model classes.
const (
	TimeObject   rdf.IRI = TemporalNS + "TimeObject"
	TimePosition rdf.IRI = TemporalNS + "TimePosition"
)

// Object properties of the feature model. List 2 of the paper names the
// has*Of extent properties; boundedBy/hasEnvelope carry the bounding box.
const (
	HasCenterLineOf rdf.IRI = NS + "hasCenterLineOf"
	HasCenterOf     rdf.IRI = NS + "hasCenterOf"
	HasEdgeOf       rdf.IRI = NS + "hasEdgeOf"
	HasEnvelope     rdf.IRI = NS + "hasEnvelope"
	HasExtentOf     rdf.IRI = NS + "hasExtentOf"
	IsBoundedBy     rdf.IRI = NS + "isBoundedBy"
	BoundedBy       rdf.IRI = NS + "boundedBy"
	HasGeometry     rdf.IRI = NS + "hasGeometry"
	FeatureMember   rdf.IRI = NS + "featureMember"
	Bounds          rdf.IRI = NS + "bounds"
	HasValue        rdf.IRI = NS + "hasValue"
	ObservedFeature rdf.IRI = NS + "observedFeature"
	HasCoverage     rdf.IRI = NS + "hasCoverage"
	CoverageOf      rdf.IRI = NS + "coverageOf"
)

// Geometry model properties.
const (
	Coordinates    rdf.IRI = NS + "coordinates"
	PosList        rdf.IRI = NS + "posList"
	HasSRSName     rdf.IRI = NS + "hasSRSName"
	LowerCorner    rdf.IRI = NS + "lowerCorner"
	UpperCorner    rdf.IRI = NS + "upperCorner"
	Exterior       rdf.IRI = NS + "exterior"
	Interior       rdf.IRI = NS + "interior"
	PointMember    rdf.IRI = NS + "pointMember"
	CurveMember    rdf.IRI = NS + "curveMember"
	SurfaceMember  rdf.IRI = NS + "surfaceMember"
	SolidMember    rdf.IRI = NS + "solidMember"
	GeometryMember rdf.IRI = NS + "geometryMember"
)

// Topology model properties.
const (
	HasStartNode rdf.IRI = NS + "hasStartNode"
	HasEndNode   rdf.IRI = NS + "hasEndNode"
	HasEdge      rdf.IRI = NS + "hasEdge"
	HasFace      rdf.IRI = NS + "hasFace"
	HasSurface   rdf.IRI = NS + "hasSurface"
	HasTopoSolid rdf.IRI = NS + "hasTopoSolid"
	RealizedBy   rdf.IRI = NS + "realizedBy"
	Realizes     rdf.IRI = NS + "realizes"
	IsolatedIn   rdf.IRI = NS + "isolatedIn"
)

// Temporal properties.
const (
	HasTimePosition rdf.IRI = TemporalNS + "hasTimePosition"
	TimeValue       rdf.IRI = TemporalNS + "timeValue"
)

// Measure / value properties (Section 3.2: XML extension types with a
// built-in base become properties with a range restriction).
const (
	MeasureValue rdf.IRI = NS + "measureValue"
	UOM          rdf.IRI = NS + "uom"
)
