package grdf

import (
	"fmt"
	"sort"

	"repro/internal/owl"
	"repro/internal/rdf"
	"repro/internal/store"
)

// Instance validation: checks a GRDF dataset against the ontology — the
// machine-checkable counterpart of Section 3.1's knowledge/instance
// separation.

// Issue is one validation finding.
type Issue struct {
	// Severity is "error" or "warning".
	Severity string
	// Subject is the offending node.
	Subject rdf.Term
	// Message explains the finding.
	Message string
}

func (i Issue) String() string {
	return fmt.Sprintf("%s: %s: %s", i.Severity, i.Subject, i.Message)
}

// ValidationReport aggregates findings.
type ValidationReport struct {
	Issues []Issue
	// Checked counts the geometry nodes decoded.
	Checked int
}

// Errors returns only the error-severity issues.
func (r *ValidationReport) Errors() []Issue {
	var out []Issue
	for _, i := range r.Issues {
		if i.Severity == "error" {
			out = append(out, i)
		}
	}
	return out
}

// Valid reports whether no errors were found.
func (r *ValidationReport) Valid() bool { return len(r.Errors()) == 0 }

// Validate checks instance data in st against the GRDF ontology:
//
//   - every node typed with a geometry class must decode (coordinates parse,
//     rings close, composites chain);
//   - OWL consistency (cardinalities from Lists 3/5, disjointness) holds on
//     the materialized union of data and ontology;
//   - features whose geometry properties point at undecodable nodes are
//     flagged;
//   - instances typed with classes that the ontology does not know get a
//     warning when they use GRDF-namespace classes (likely typos).
func Validate(st *store.Store) *ValidationReport {
	rep := &ValidationReport{}
	onto := Ontology()

	geometryClasses := map[rdf.IRI]bool{
		Point: true, Curve: true, LineString: true, Ring: true, LinearRing: true,
		Surface: true, Polygon: true, Solid: true, Envelope: true,
		EnvelopeWithTimePeriod: true, MultiPoint: true, MultiCurve: true,
		MultiSurface: true, CompositeCurve: true, CompositeSurface: true,
		ComplexGeometry: true,
	}

	// 1. decode every typed geometry node
	var geomNodes []rdf.Term
	seen := map[string]struct{}{}
	st.ForEachMatch(nil, rdf.RDFType, nil, func(t rdf.Triple) bool {
		cls, ok := t.Object.(rdf.IRI)
		if !ok || !geometryClasses[cls] {
			return true
		}
		k := t.Subject.String()
		if _, dup := seen[k]; !dup {
			seen[k] = struct{}{}
			geomNodes = append(geomNodes, t.Subject)
		}
		return true
	})
	sort.Slice(geomNodes, func(i, j int) bool { return geomNodes[i].String() < geomNodes[j].String() })
	for _, n := range geomNodes {
		rep.Checked++
		if _, _, err := DecodeGeometry(st, n); err != nil {
			rep.Issues = append(rep.Issues, Issue{
				Severity: "error", Subject: n,
				Message: fmt.Sprintf("geometry does not decode: %v", err),
			})
		}
	}

	// 2. unknown grdf-namespace classes (typos like grdf:Poligon)
	classSeen := map[rdf.IRI]struct{}{}
	st.ForEachMatch(nil, rdf.RDFType, nil, func(t rdf.Triple) bool {
		cls, ok := t.Object.(rdf.IRI)
		if !ok {
			return true
		}
		if cls.Namespace() != NS && cls.Namespace() != TemporalNS {
			return true
		}
		if _, dup := classSeen[cls]; dup {
			return true
		}
		classSeen[cls] = struct{}{}
		if !onto.Has(rdf.T(cls, rdf.RDFType, rdf.OWLClass)) {
			rep.Issues = append(rep.Issues, Issue{
				Severity: "warning", Subject: cls,
				Message: "class is in the GRDF namespace but not defined by the ontology",
			})
		}
		return true
	})

	// 3. OWL consistency over data + ontology
	union := st.Snapshot()
	union.AddGraph(onto)
	materialized, _ := owl.Materialize(union)
	for _, v := range owl.Check(materialized) {
		rep.Issues = append(rep.Issues, Issue{
			Severity: "error", Subject: v.Subject,
			Message: fmt.Sprintf("%s: %s", v.Kind, v.Detail),
		})
	}

	sort.SliceStable(rep.Issues, func(i, j int) bool {
		if rep.Issues[i].Severity != rep.Issues[j].Severity {
			return rep.Issues[i].Severity < rep.Issues[j].Severity
		}
		return rep.Issues[i].Subject.String() < rep.Issues[j].Subject.String()
	})
	return rep
}
