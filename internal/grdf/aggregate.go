package grdf

import (
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/owl"
	"repro/internal/rdf"
	"repro/internal/store"
)

// The aggregation engine: "the most important advantage GRDF has over other
// geospatial languages is the ability to use logical inference and dynamic
// content aggregation." Aggregate merges heterogeneous GRDF sources into one
// layered view, normalizes their CRSs so coordinates are comparable, and
// optionally materializes OWL inferences over the union.

// Source is one input to an aggregation.
type Source struct {
	// Name identifies the layer (e.g. "hydrology", "chemical").
	Name string
	// Store holds the layer's triples.
	Store *store.Store
}

// AggregateOptions tunes Aggregate.
type AggregateOptions struct {
	// TargetCRS, when set, rewrites every geometry's coordinates into this
	// CRS using Registry.
	TargetCRS string
	// Registry resolves CRS names; required when TargetCRS is set.
	Registry *geom.Registry
	// Reason materializes OWL entailments over the merged store (the
	// ontology should be part of one of the sources or added by the caller).
	Reason bool
	// Ontology, when non-nil, is merged in before reasoning.
	Ontology *rdf.Graph
}

// AggregateResult reports what the merge did.
type AggregateResult struct {
	// Merged is the layered view.
	Merged *store.Store
	// SourceTriples counts input triples per source name.
	SourceTriples map[string]int
	// Rewritten counts coordinate literals converted to the target CRS.
	Rewritten int
	// Inferred counts triples added by reasoning.
	Inferred int
}

// Aggregate merges the sources into one store per opts.
func Aggregate(sources []Source, opts AggregateOptions) (*AggregateResult, error) {
	res := &AggregateResult{
		Merged:        store.New(),
		SourceTriples: make(map[string]int),
	}
	for _, src := range sources {
		ts := src.Store.Triples()
		res.SourceTriples[src.Name] = len(ts)
		res.Merged.AddAll(ts)
	}
	if opts.Ontology != nil {
		res.Merged.AddGraph(opts.Ontology)
	}
	if opts.TargetCRS != "" {
		if opts.Registry == nil {
			return nil, fmt.Errorf("grdf: TargetCRS set without a Registry")
		}
		n, err := NormalizeCRS(res.Merged, opts.Registry, opts.TargetCRS)
		if err != nil {
			return nil, err
		}
		res.Rewritten = n
	}
	if opts.Reason {
		materialized, stats := owl.Materialize(res.Merged)
		res.Merged = materialized
		res.Inferred = stats.Inferred
	}
	return res, nil
}

// NormalizeCRS rewrites every coordinates / corner literal whose node
// declares a hasSRSName different from target, converting the coordinates
// and updating the srsName. It returns the number of nodes rewritten.
func NormalizeCRS(st *store.Store, reg *geom.Registry, target string) (int, error) {
	type rewrite struct {
		node rdf.Term
		srs  string
	}
	var victims []rewrite
	for _, t := range st.Match(nil, HasSRSName, nil) {
		lit, ok := t.Object.(rdf.Literal)
		if !ok || lit.Value == target {
			continue
		}
		victims = append(victims, rewrite{node: t.Subject, srs: lit.Value})
	}
	sort.Slice(victims, func(i, j int) bool {
		return victims[i].node.String() < victims[j].node.String()
	})
	n := 0
	for _, v := range victims {
		if err := rewriteNodeCRS(st, reg, v.node, v.srs, target); err != nil {
			return n, fmt.Errorf("grdf: normalizing %s: %w", v.node, err)
		}
		n++
	}
	return n, nil
}

func rewriteNodeCRS(st *store.Store, reg *geom.Registry, node rdf.Term, from, to string) error {
	convert := func(prop rdf.IRI) error {
		for _, t := range st.Match(node, prop, nil) {
			lit, ok := t.Object.(rdf.Literal)
			if !ok {
				continue
			}
			cs, err := geom.ParseCoordinates(lit.Value)
			if err != nil {
				return err
			}
			out, err := reg.TransformAll(cs, from, to)
			if err != nil {
				return err
			}
			st.Remove(t)
			st.Add(rdf.T(node, prop, rdf.NewString(geom.FormatCoordinates(out))))
		}
		return nil
	}
	for _, prop := range []rdf.IRI{Coordinates, LowerCorner, UpperCorner} {
		if err := convert(prop); err != nil {
			return err
		}
	}
	// Nested components (polygon rings, multi members) inherit the node's
	// CRS; convert them too.
	for _, prop := range []rdf.IRI{Exterior, Interior, PointMember, CurveMember,
		SurfaceMember, SolidMember, GeometryMember} {
		for _, t := range st.Match(node, prop, nil) {
			if err := rewriteNodeCRS(st, reg, t.Object, from, to); err != nil {
				return err
			}
		}
	}
	// Update the srsName.
	st.RemoveMatching(node, HasSRSName, nil)
	st.Add(rdf.T(node, HasSRSName, rdf.NewString(to)))
	return nil
}

// SpatialJoin finds pairs (a, b) with a from classA, b from classB, whose
// geometries satisfy the predicate within the given distance (distance <= 0
// means a direct Intersects test). It powers the scenario's "which chemical
// sites sit near the affected stream" step.
type JoinPair struct {
	A, B     rdf.Term
	Distance float64
}

// SpatialJoin computes the join over st.
func SpatialJoin(st *store.Store, classA, classB rdf.IRI, maxDist float64) ([]JoinPair, error) {
	as := FeaturesOfType(st, classA)
	bs := FeaturesOfType(st, classB)
	sort.Slice(as, func(i, j int) bool { return as[i].String() < as[j].String() })
	sort.Slice(bs, func(i, j int) bool { return bs[i].String() < bs[j].String() })

	type resolved struct {
		term rdf.Term
		geo  geom.Geometry
	}
	resolveAll := func(terms []rdf.Term) []resolved {
		var out []resolved
		for _, t := range terms {
			if g, _, err := GeometryOf(st, t); err == nil {
				out = append(out, resolved{term: t, geo: g})
			}
		}
		return out
	}
	ra, rb := resolveAll(as), resolveAll(bs)
	var pairs []JoinPair
	for _, a := range ra {
		for _, b := range rb {
			d := geom.Distance(a.geo, b.geo)
			if (maxDist <= 0 && d == 0) || (maxDist > 0 && d <= maxDist) {
				pairs = append(pairs, JoinPair{A: a.term, B: b.term, Distance: d})
			}
		}
	}
	return pairs, nil
}
