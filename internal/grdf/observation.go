package grdf

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/geom"
	"repro/internal/rdf"
	"repro/internal/store"
)

// Typed APIs for the remaining Section 3.3 types: Value (the MeasureType
// mapping of Section 3.2), Observation ("recording/observing of a feature;
// Observation itself is a Feature type"), TimeObject, Coverage ("a series of
// sensor temperatures could be captured by the Coverage type") and
// EnvelopeWithTimePeriod (List 3).

// NewMeasure writes a measure value node per the Section 3.2 rule: the XML
// extension type with base 'double' becomes a property with a range
// restriction, plus the unit-of-measure attribute.
func NewMeasure(st *store.Store, node rdf.Term, value float64, uom string) {
	st.Add(rdf.T(node, rdf.RDFType, Value))
	st.Add(rdf.T(node, MeasureValue, rdf.NewDouble(value)))
	if uom != "" {
		st.Add(rdf.T(node, UOM, rdf.Literal{Value: uom, Datatype: rdf.XSDAnyURI}))
	}
}

// Measure reads a measure node back.
func Measure(st *store.Store, node rdf.Term) (value float64, uom string, err error) {
	v, ok := st.FirstObject(node, MeasureValue)
	if !ok {
		return 0, "", fmt.Errorf("grdf: %s has no measureValue", node)
	}
	lit, ok := v.(rdf.Literal)
	if !ok {
		return 0, "", fmt.Errorf("grdf: %s measureValue is not a literal", node)
	}
	value, err = lit.Float()
	if err != nil {
		return 0, "", err
	}
	if u, ok := st.FirstObject(node, UOM); ok {
		if ul, isLit := u.(rdf.Literal); isLit {
			uom = ul.Value
		}
	}
	return value, uom, nil
}

// NewTimePosition writes a TimePosition node carrying the instant.
func NewTimePosition(st *store.Store, node rdf.Term, at time.Time) {
	st.Add(rdf.T(node, rdf.RDFType, TimePosition))
	st.Add(rdf.T(node, TimeValue, rdf.NewDateTime(at)))
}

// TimePositionOf reads a TimePosition node.
func TimePositionOf(st *store.Store, node rdf.Term) (time.Time, error) {
	v, ok := st.FirstObject(node, TimeValue)
	if !ok {
		return time.Time{}, fmt.Errorf("grdf: %s has no timeValue", node)
	}
	lit, ok := v.(rdf.Literal)
	if !ok {
		return time.Time{}, fmt.Errorf("grdf: %s timeValue is not a literal", node)
	}
	return lit.Time()
}

// NewObservation records an observation of a feature at an instant,
// optionally with a measured value. Observations are themselves features
// ("can be used as such in a transaction that accepts a Feature type").
func NewObservation(st *store.Store, id rdf.IRI, observed rdf.Term, at time.Time) rdf.IRI {
	st.Add(rdf.T(id, rdf.RDFType, Observation))
	if observed != nil {
		st.Add(rdf.T(id, ObservedFeature, observed))
	}
	tp := rdf.IRI(string(id) + "_time")
	NewTimePosition(st, tp, at)
	st.Add(rdf.T(id, HasTimePosition, tp))
	return id
}

// ObservationRecord is a decoded observation.
type ObservationRecord struct {
	ID       rdf.IRI
	Observed rdf.Term
	At       time.Time
	// Value and UOM are set when the observation carries a measure.
	Value  float64
	UOM    string
	HasVal bool
}

// SetObservationValue attaches a measured value to an observation.
func SetObservationValue(st *store.Store, obs rdf.IRI, value float64, uom string) {
	node := rdf.IRI(string(obs) + "_value")
	NewMeasure(st, node, value, uom)
	st.Add(rdf.T(obs, HasValue, node))
}

// ObservationsOf returns the decoded observations of a feature, sorted by
// time.
func ObservationsOf(st *store.Store, feature rdf.Term) ([]ObservationRecord, error) {
	var out []ObservationRecord
	for _, obs := range st.Subjects(ObservedFeature, feature) {
		id, ok := obs.(rdf.IRI)
		if !ok {
			continue
		}
		rec := ObservationRecord{ID: id, Observed: feature}
		if tp, ok := st.FirstObject(obs, HasTimePosition); ok {
			at, err := TimePositionOf(st, tp)
			if err != nil {
				return nil, fmt.Errorf("grdf: observation %s: %w", id, err)
			}
			rec.At = at
		}
		if vn, ok := st.FirstObject(obs, HasValue); ok {
			v, uom, err := Measure(st, vn)
			if err != nil {
				return nil, fmt.Errorf("grdf: observation %s: %w", id, err)
			}
			rec.Value, rec.UOM, rec.HasVal = v, uom, true
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].At.Equal(out[j].At) {
			return out[i].At.Before(out[j].At)
		}
		return out[i].ID < out[j].ID
	})
	return out, nil
}

// SetEnvelopeWithTimePeriod attaches a spatio-temporal envelope to a
// feature: the List 3 construct with exactly two time positions describing
// the period of validity.
func SetEnvelopeWithTimePeriod(st *store.Store, feature rdf.IRI, env geom.Envelope,
	srs string, from, to time.Time) (rdf.Term, error) {
	if to.Before(from) {
		return nil, fmt.Errorf("grdf: envelope period ends (%s) before it begins (%s)", to, from)
	}
	node := rdf.IRI(string(feature) + "_timeEnvelope")
	if err := EncodeGeometry(st, node, env, srs); err != nil {
		return nil, err
	}
	// Specialize the type: EnvelopeWithTimePeriod replaces plain Envelope.
	st.Remove(rdf.T(node, rdf.RDFType, Envelope))
	st.Add(rdf.T(node, rdf.RDFType, EnvelopeWithTimePeriod))
	start := rdf.IRI(string(node) + "_begin")
	end := rdf.IRI(string(node) + "_end")
	NewTimePosition(st, start, from)
	NewTimePosition(st, end, to)
	st.Add(rdf.T(node, HasTimePosition, start))
	st.Add(rdf.T(node, HasTimePosition, end))
	st.Add(rdf.T(feature, BoundedBy, node))
	return node, nil
}

// TimePeriodOf reads the (earliest, latest) pair of an
// EnvelopeWithTimePeriod node.
func TimePeriodOf(st *store.Store, node rdf.Term) (time.Time, time.Time, error) {
	positions := st.Objects(node, HasTimePosition)
	if len(positions) != 2 {
		return time.Time{}, time.Time{}, fmt.Errorf(
			"grdf: %s has %d time positions, List 3 requires exactly 2", node, len(positions))
	}
	var times []time.Time
	for _, p := range positions {
		at, err := TimePositionOf(st, p)
		if err != nil {
			return time.Time{}, time.Time{}, err
		}
		times = append(times, at)
	}
	sort.Slice(times, func(i, j int) bool { return times[i].Before(times[j]) })
	return times[0], times[1], nil
}

// NewCoverage creates a coverage describing the distribution of a quantity
// over an object ("the object may or may not be geospatial in nature").
func NewCoverage(st *store.Store, id rdf.IRI, of rdf.Term) rdf.IRI {
	st.Add(rdf.T(id, rdf.RDFType, Coverage))
	if of != nil {
		st.Add(rdf.T(id, CoverageOf, of))
		st.Add(rdf.T(of, HasCoverage, id))
	}
	return id
}

// CoverageSample is one (time, value) sample of a coverage.
type CoverageSample struct {
	At    time.Time
	Value float64
	UOM   string
}

// AddCoverageSample appends a timestamped sample to a coverage.
func AddCoverageSample(st *store.Store, cov rdf.IRI, at time.Time, value float64, uom string) {
	idx := st.Count(cov, HasValue, nil)
	node := rdf.IRI(fmt.Sprintf("%s_sample%d", string(cov), idx))
	NewMeasure(st, node, value, uom)
	tp := rdf.IRI(string(node) + "_time")
	NewTimePosition(st, tp, at)
	st.Add(rdf.T(node, HasTimePosition, tp))
	st.Add(rdf.T(cov, HasValue, node))
}

// CoverageSamples reads a coverage's samples sorted by time.
func CoverageSamples(st *store.Store, cov rdf.Term) ([]CoverageSample, error) {
	var out []CoverageSample
	for _, node := range st.Objects(cov, HasValue) {
		v, uom, err := Measure(st, node)
		if err != nil {
			return nil, err
		}
		s := CoverageSample{Value: v, UOM: uom}
		if tp, ok := st.FirstObject(node, HasTimePosition); ok {
			at, err := TimePositionOf(st, tp)
			if err != nil {
				return nil, err
			}
			s.At = at
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At.Before(out[j].At) })
	return out, nil
}
