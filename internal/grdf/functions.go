package grdf

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/store"
)

// Spatial filter-function IRIs usable in SPARQL queries once registered:
//
//	FILTER(grdf:within(?feature, ?container))
//	FILTER(grdf:intersects(?a, ?b))
//	FILTER(grdf:distance(?a, ?b) < 500)
const (
	FnWithin     rdf.IRI = NS + "within"
	FnIntersects rdf.IRI = NS + "intersects"
	FnContains   rdf.IRI = NS + "contains"
	FnDistance   rdf.IRI = NS + "distance"
)

// RegisterSpatialFuncs installs the grdf: spatial filter functions on an
// engine. Geometry arguments may be feature terms (resolved through their
// geometry properties) or geometry nodes. st is the store geometries are
// resolved against — usually the engine's own store or the merged layered
// view.
func RegisterSpatialFuncs(e *sparql.Engine, st *store.Store) {
	resolve := func(t rdf.Term) (geom.Geometry, error) {
		g, _, err := GeometryOf(st, t)
		return g, err
	}
	binary := func(name string, pred func(a, b geom.Geometry) bool) sparql.CustomFunc {
		return func(args []rdf.Term) (rdf.Term, error) {
			if len(args) != 2 {
				return nil, fmt.Errorf("grdf: %s takes 2 arguments", name)
			}
			a, err := resolve(args[0])
			if err != nil {
				return nil, err
			}
			b, err := resolve(args[1])
			if err != nil {
				return nil, err
			}
			return rdf.NewBoolean(pred(a, b)), nil
		}
	}
	e.RegisterFunc(FnWithin, binary("within", geom.Within))
	e.RegisterFunc(FnIntersects, binary("intersects", geom.Intersects))
	e.RegisterFunc(FnContains, binary("contains", geom.Contains))
	e.RegisterFunc(FnDistance, func(args []rdf.Term) (rdf.Term, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("grdf: distance takes 2 arguments")
		}
		a, err := resolve(args[0])
		if err != nil {
			return nil, err
		}
		b, err := resolve(args[1])
		if err != nil {
			return nil, err
		}
		return rdf.NewDouble(geom.Distance(a, b)), nil
	})
}

// NewEngine builds a SPARQL engine over st with the spatial functions
// pre-registered — the standard query entry point for GRDF datasets.
func NewEngine(st *store.Store) *sparql.Engine {
	e := sparql.NewEngine(st)
	RegisterSpatialFuncs(e, st)
	return e
}
