package grdf

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/owl"
	"repro/internal/rdf"
	"repro/internal/store"
	"repro/internal/turtle"
)

func TestOntologyStructure(t *testing.T) {
	g := Ontology()
	r := Report(g)
	if r.Classes < 35 {
		t.Errorf("Classes = %d, want >= 35", r.Classes)
	}
	if r.ObjectProperties < 20 {
		t.Errorf("ObjectProperties = %d, want >= 20", r.ObjectProperties)
	}
	if r.DataProperties < 6 {
		t.Errorf("DataProperties = %d, want >= 6", r.DataProperties)
	}
	if r.Restrictions != 4 {
		t.Errorf("Restrictions = %d, want 4 (List 3 + three from List 5)", r.Restrictions)
	}
	// Fig. 1 hierarchy spot checks.
	checks := [][2]rdf.IRI{
		{Feature, RootGRDFObject},
		{Geometry, RootGRDFObject},
		{Topology, RootGRDFObject},
		{Observation, Feature},
		{EnvelopeWithTimePeriod, Envelope},
		{Envelope, BoundingShape},
		{LineString, Curve},
		{Polygon, Surface},
		{TopoNode, TopoPrimitive},
		{TopoFace, TopoPrimitive},
		{TopoComplex, Topology},
	}
	for _, c := range checks {
		if !g.Has(rdf.T(c[0], rdf.RDFSSubClassOf, c[1])) {
			t.Errorf("missing subclass edge %s -> %s", c[0].LocalName(), c[1].LocalName())
		}
	}
	// List 2 properties exist.
	for _, p := range []rdf.IRI{HasCenterLineOf, HasCenterOf, HasEdgeOf, HasEnvelope, HasExtentOf} {
		if !g.Has(rdf.T(p, rdf.RDFType, rdf.OWLObjectProperty)) {
			t.Errorf("List 2 property %s missing", p.LocalName())
		}
	}
}

func TestOntologyConsistentUnderReasoning(t *testing.T) {
	st := store.FromGraph(Ontology())
	m, stats := owl.Materialize(st)
	if stats.Inferred == 0 {
		t.Error("ontology materialization inferred nothing")
	}
	// The class hierarchy must become transitive: LineString is a Geometry.
	if !m.Has(rdf.T(LineString, rdf.RDFSSubClassOf, Geometry)) {
		t.Error("transitive subclass edge missing after materialization")
	}
	if vs := owl.Check(m); len(vs) != 0 {
		t.Errorf("ontology has violations: %v", vs)
	}
}

func TestEnvelopeWithTimePeriodCardinality(t *testing.T) {
	st := store.FromGraph(Ontology())
	env := rdf.IRI("http://e/env1")
	st.Add(rdf.T(env, rdf.RDFType, EnvelopeWithTimePeriod))
	st.Add(rdf.T(env, HasTimePosition, rdf.IRI("http://e/t1")))
	// only one time position: violates List 3's cardinality 2
	m, _ := owl.Materialize(st)
	vs := owl.Check(m)
	found := false
	for _, v := range vs {
		if v.Subject.Equal(env) && v.Kind == "cardinality" {
			found = true
		}
	}
	if !found {
		t.Errorf("List 3 cardinality violation not detected: %v", vs)
	}
}

func roundTripGeometry(t *testing.T, g geom.Geometry) geom.Geometry {
	t.Helper()
	st := store.New()
	node := rdf.IRI("http://e/geo")
	if err := EncodeGeometry(st, node, g, geom.TX83NCF); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	back, srs, err := DecodeGeometry(st, node)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if srs != geom.TX83NCF {
		t.Errorf("srs = %q", srs)
	}
	return back
}

func TestGeometryRoundTrips(t *testing.T) {
	ring, _ := geom.NewLinearRing([]geom.Coord{{X: 0, Y: 0}, {X: 4, Y: 0}, {X: 4, Y: 4}, {X: 0, Y: 4}, {X: 0, Y: 0}})
	hole, _ := geom.NewLinearRing([]geom.Coord{{X: 1, Y: 1}, {X: 2, Y: 1}, {X: 2, Y: 2}, {X: 1, Y: 2}, {X: 1, Y: 1}})
	line, _ := geom.NewLineString([]geom.Coord{{X: 0, Y: 0}, {X: 5, Y: 5}, {X: 9, Y: 2}})
	line2, _ := geom.NewLineString([]geom.Coord{{X: 9, Y: 2}, {X: 12, Y: 0}})
	cc, _ := geom.NewCompositeCurve(line, line2)

	cases := []geom.Geometry{
		geom.NewPoint(2533822.17, 7108248.83),
		line,
		ring,
		geom.NewPolygon(ring, hole),
		geom.EnvelopeOf(geom.Coord{X: 1, Y: 2}, geom.Coord{X: 3, Y: 4}),
		geom.MultiPoint{Points: []geom.Point{geom.NewPoint(1, 1), geom.NewPoint(2, 2)}},
		geom.MultiCurve{Curves: []geom.LineString{line, line2}},
		geom.MultiSurface{Surfaces: []geom.Polygon{geom.NewPolygon(ring)}},
		cc,
		geom.Complex{Members: []geom.Geometry{geom.NewPoint(0, 0), line}},
		geom.Solid{Boundary: []geom.Polygon{geom.NewPolygon(ring)}},
	}
	for _, c := range cases {
		back := roundTripGeometry(t, c)
		if back.Kind() != c.Kind() {
			t.Errorf("kind %s -> %s", c.Kind(), back.Kind())
			continue
		}
		if be, ce := back.Envelope(), c.Envelope(); be != ce {
			t.Errorf("%s envelope %+v -> %+v", c.Kind(), ce, be)
		}
	}
}

func TestPolygonRoundTripPreservesHoles(t *testing.T) {
	ring, _ := geom.NewLinearRing([]geom.Coord{{X: 0, Y: 0}, {X: 4, Y: 0}, {X: 4, Y: 4}, {X: 0, Y: 4}, {X: 0, Y: 0}})
	hole, _ := geom.NewLinearRing([]geom.Coord{{X: 1, Y: 1}, {X: 2, Y: 1}, {X: 2, Y: 2}, {X: 1, Y: 2}, {X: 1, Y: 1}})
	back := roundTripGeometry(t, geom.NewPolygon(ring, hole)).(geom.Polygon)
	if len(back.Holes) != 1 {
		t.Fatalf("holes = %d", len(back.Holes))
	}
	if back.Area() != 15 {
		t.Errorf("area = %g", back.Area())
	}
}

func TestDecodeErrors(t *testing.T) {
	st := store.New()
	node := rdf.IRI("http://e/geo")
	if _, _, err := DecodeGeometry(st, node); err == nil {
		t.Error("decode of untyped node succeeded")
	}
	st.Add(rdf.T(node, rdf.RDFType, Point))
	if _, _, err := DecodeGeometry(st, node); err == nil {
		t.Error("decode of point without coordinates succeeded")
	}
	st.Add(rdf.T(node, Coordinates, rdf.NewString("not-coords")))
	if _, _, err := DecodeGeometry(st, node); err == nil {
		t.Error("decode of malformed coordinates succeeded")
	}
	poly := rdf.IRI("http://e/poly")
	st.Add(rdf.T(poly, rdf.RDFType, Polygon))
	if _, _, err := DecodeGeometry(st, poly); err == nil {
		t.Error("polygon without exterior decoded")
	}
}

func TestNewFeatureAndGeometryOf(t *testing.T) {
	st := store.New()
	site := NewFeature(st, rdf.IRI(rdf.AppNS+"NTEnergy"), rdf.IRI(rdf.AppNS+"ChemSite"))
	// app:ChemSite is auto-linked under grdf:Feature
	if !st.Has(rdf.T(rdf.IRI(rdf.AppNS+"ChemSite"), rdf.RDFSSubClassOf, Feature)) {
		t.Error("domain class not linked under grdf:Feature")
	}
	env := geom.EnvelopeOf(geom.Coord{X: 0, Y: 0}, geom.Coord{X: 10, Y: 10})
	if _, err := SetEnvelope(st, site, env, geom.TX83NCF); err != nil {
		t.Fatal(err)
	}
	got, ok := EnvelopeOfFeature(st, site)
	if !ok || got != env.Envelope() {
		t.Errorf("EnvelopeOfFeature = %+v, %t", got, ok)
	}
	g, srs, err := GeometryOf(st, site)
	if err != nil || g.Kind() != geom.KindEnvelope || srs != geom.TX83NCF {
		t.Errorf("GeometryOf = %v, %q, %v", g, srs, err)
	}
}

func TestGeometryOfViaHasGeometry(t *testing.T) {
	st := store.New()
	stream := NewFeature(st, rdf.IRI("http://e/stream"), Feature)
	line, _ := geom.NewLineString([]geom.Coord{{X: 0, Y: 0}, {X: 100, Y: 100}})
	if _, err := SetGeometry(st, stream, line, geom.TX83NCF); err != nil {
		t.Fatal(err)
	}
	g, _, err := GeometryOf(st, stream)
	if err != nil || g.Kind() != geom.KindLineString {
		t.Fatalf("GeometryOf = %v, %v", g, err)
	}
	if g.(geom.LineString).Length() != line.Length() {
		t.Error("length changed through round trip")
	}
	if _, _, err := GeometryOf(st, rdf.IRI("http://e/nothing")); err == nil {
		t.Error("feature without geometry resolved")
	}
}

func TestSpatialSparqlFunctions(t *testing.T) {
	st := store.New()
	zoneRing, _ := geom.NewLinearRing([]geom.Coord{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 100, Y: 100}, {X: 0, Y: 100}, {X: 0, Y: 0}})
	zone := NewFeature(st, rdf.IRI("http://e/zone"), rdf.IRI("http://e/Zone"))
	if _, err := SetGeometry(st, zone, geom.NewPolygon(zoneRing), ""); err != nil {
		t.Fatal(err)
	}
	inside := NewFeature(st, rdf.IRI("http://e/inside"), rdf.IRI("http://e/Site"))
	if _, err := SetGeometry(st, inside, geom.NewPoint(50, 50), ""); err != nil {
		t.Fatal(err)
	}
	outside := NewFeature(st, rdf.IRI("http://e/outside"), rdf.IRI("http://e/Site"))
	if _, err := SetGeometry(st, outside, geom.NewPoint(500, 500), ""); err != nil {
		t.Fatal(err)
	}

	e := NewEngine(st)
	res, err := e.Query(`
PREFIX ex: <http://e/>
SELECT ?s WHERE { ?s a ex:Site . FILTER(grdf:within(?s, ex:zone)) }`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(res.Bindings) != 1 || !res.Bindings[0]["s"].Equal(rdf.IRI("http://e/inside")) {
		t.Errorf("within results = %v", res.Bindings)
	}

	res, err = e.Query(`
PREFIX ex: <http://e/>
SELECT ?s WHERE { ?s a ex:Site . FILTER(grdf:distance(?s, ex:zone) > 100) }`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(res.Bindings) != 1 || !res.Bindings[0]["s"].Equal(rdf.IRI("http://e/outside")) {
		t.Errorf("distance results = %v", res.Bindings)
	}

	res, err = e.Query(`
PREFIX ex: <http://e/>
ASK { FILTER(grdf:intersects(ex:inside, ex:zone)) }`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if !res.Bool {
		t.Error("intersects ASK = false")
	}
	res, err = e.Query(`
PREFIX ex: <http://e/>
ASK { FILTER(grdf:contains(ex:zone, ex:inside)) }`)
	if err != nil || !res.Bool {
		t.Errorf("contains ASK = %v, %v", res, err)
	}
}

func TestAggregateMergesAndCounts(t *testing.T) {
	hydro := store.New()
	NewFeature(hydro, rdf.IRI("http://e/stream"), Feature)
	chem := store.New()
	NewFeature(chem, rdf.IRI("http://e/site"), rdf.IRI(rdf.AppNS+"ChemSite"))

	res, err := Aggregate([]Source{
		{Name: "hydrology", Store: hydro},
		{Name: "chemical", Store: chem},
	}, AggregateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Merged.Len() != hydro.Len()+chem.Len() {
		t.Errorf("merged = %d", res.Merged.Len())
	}
	if res.SourceTriples["hydrology"] != hydro.Len() {
		t.Errorf("SourceTriples = %v", res.SourceTriples)
	}
}

func TestAggregateWithReasoning(t *testing.T) {
	data := store.New()
	NewFeature(data, rdf.IRI("http://e/site"), rdf.IRI(rdf.AppNS+"ChemSite"))
	res, err := Aggregate([]Source{{Name: "d", Store: data}}, AggregateOptions{
		Reason:   true,
		Ontology: Ontology(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inferred == 0 {
		t.Error("no inferences over merged store")
	}
	// the site must now be typed as grdf:Feature and RootGRDFObject
	if !res.Merged.Has(rdf.T(rdf.IRI("http://e/site"), rdf.RDFType, Feature)) {
		t.Error("inference did not type site as Feature")
	}
	if !res.Merged.Has(rdf.T(rdf.IRI("http://e/site"), rdf.RDFType, RootGRDFObject)) {
		t.Error("inference did not type site as RootGRDFObject")
	}
}

func TestNormalizeCRS(t *testing.T) {
	reg := geom.NewRegistry()
	st := store.New()
	// one feature in feet, one in meters
	f1 := NewFeature(st, rdf.IRI("http://e/f1"), Feature)
	if _, err := SetGeometry(st, f1, geom.NewPoint(2500000, 7000000), geom.TX83NCF); err != nil {
		t.Fatal(err)
	}
	f2 := NewFeature(st, rdf.IRI("http://e/f2"), Feature)
	if _, err := SetGeometry(st, f2, geom.NewPoint(0, 0), geom.TX83NCM); err != nil {
		t.Fatal(err)
	}
	n, err := NormalizeCRS(st, reg, geom.TX83NCM)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("rewritten = %d, want 1", n)
	}
	g1, srs1, err := GeometryOf(st, f1)
	if err != nil || srs1 != geom.TX83NCM {
		t.Fatalf("after normalize: %v %q %v", g1, srs1, err)
	}
	// 2500000 ft east of the false origin is the origin itself in the
	// reference frame, which in TX83NCM coordinates is also (0,0)... verify
	// agreement instead of absolute values:
	p1 := g1.(geom.Point).C
	ref1, _ := reg.Transform(p1, geom.TX83NCM, geom.ReferenceCRS)
	origFt, _ := reg.Transform(geom.Coord{X: 2500000, Y: 7000000}, geom.TX83NCF, geom.ReferenceCRS)
	if math.Abs(ref1.X-origFt.X) > 1e-6 || math.Abs(ref1.Y-origFt.Y) > 1e-6 {
		t.Errorf("normalized point %v does not match original location %v", ref1, origFt)
	}
}

func TestNormalizeCRSPolygonNested(t *testing.T) {
	reg := geom.NewRegistry()
	st := store.New()
	ring, _ := geom.NewLinearRing([]geom.Coord{{X: 0, Y: 0}, {X: 328.083333, Y: 0}, {X: 328.083333, Y: 328.083333}, {X: 0, Y: 328.083333}, {X: 0, Y: 0}})
	f := NewFeature(st, rdf.IRI("http://e/f"), Feature)
	if _, err := SetGeometry(st, f, geom.NewPolygon(ring), geom.TX83NCF); err != nil {
		t.Fatal(err)
	}
	if _, err := NormalizeCRS(st, reg, geom.TX83NCM); err != nil {
		t.Fatal(err)
	}
	g, srs, err := GeometryOf(st, f)
	if err != nil || srs != geom.TX83NCM {
		t.Fatalf("after normalize: %v %q", srs, err)
	}
	// 328.08ft ≈ 100m sides → area ≈ 10000 m²
	area := g.(geom.Polygon).Area()
	if math.Abs(area-10000) > 1 {
		t.Errorf("area = %g, want ≈10000", area)
	}
}

func TestSpatialJoin(t *testing.T) {
	st := store.New()
	streamClass := rdf.IRI("http://e/Stream")
	siteClass := rdf.IRI("http://e/Site")
	stream := NewFeature(st, rdf.IRI("http://e/stream"), streamClass)
	line, _ := geom.NewLineString([]geom.Coord{{X: 0, Y: 0}, {X: 1000, Y: 0}})
	if _, err := SetGeometry(st, stream, line, ""); err != nil {
		t.Fatal(err)
	}
	near := NewFeature(st, rdf.IRI("http://e/near"), siteClass)
	if _, err := SetGeometry(st, near, geom.NewPoint(500, 50), ""); err != nil {
		t.Fatal(err)
	}
	far := NewFeature(st, rdf.IRI("http://e/far"), siteClass)
	if _, err := SetGeometry(st, far, geom.NewPoint(500, 5000), ""); err != nil {
		t.Fatal(err)
	}
	pairs, err := SpatialJoin(st, streamClass, siteClass, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || !pairs[0].B.Equal(rdf.IRI("http://e/near")) {
		t.Errorf("pairs = %v", pairs)
	}
	if pairs[0].Distance != 50 {
		t.Errorf("distance = %g", pairs[0].Distance)
	}
}

func TestOntologySerializesToTurtle(t *testing.T) {
	g := Ontology()
	out := turtle.Format(g, nil)
	back, err := turtle.ParseString(out)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if back.Len() != g.Len() {
		t.Errorf("round trip %d -> %d", g.Len(), back.Len())
	}
}

func TestEnvelopeOfFeatureFallbacks(t *testing.T) {
	st := store.New()
	f := NewFeature(st, rdf.IRI("http://e/f"), Feature)
	// no geometry at all
	if _, ok := EnvelopeOfFeature(st, f); ok {
		t.Error("envelope found for bare feature")
	}
	// geometry but no boundedBy: falls back to geometry envelope
	line, _ := geom.NewLineString([]geom.Coord{{X: 0, Y: 0}, {X: 10, Y: 10}})
	if _, err := SetGeometry(st, f, line, ""); err != nil {
		t.Fatal(err)
	}
	env, ok := EnvelopeOfFeature(st, f)
	if !ok || env.MaxX != 10 {
		t.Errorf("fallback envelope = %+v %t", env, ok)
	}
	// broken boundedBy node: falls through to geometry
	bad := rdf.IRI("http://e/badenv")
	st.Add(rdf.T(f, BoundedBy, bad))
	env, ok = EnvelopeOfFeature(st, f)
	if !ok || env.MaxX != 10 {
		t.Errorf("broken boundedBy fallback = %+v %t", env, ok)
	}
}
