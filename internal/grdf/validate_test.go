package grdf

import (
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/rdf"
	"repro/internal/store"
)

func TestValidateCleanData(t *testing.T) {
	st := store.New()
	f := NewFeature(st, rdf.IRI("http://e/f"), Feature)
	if _, err := SetGeometry(st, f, geom.NewPoint(1, 2), geom.TX83NCF); err != nil {
		t.Fatal(err)
	}
	rep := Validate(st)
	if !rep.Valid() {
		t.Errorf("clean data invalid: %v", rep.Issues)
	}
	if rep.Checked != 1 {
		t.Errorf("Checked = %d", rep.Checked)
	}
}

func TestValidateBrokenGeometry(t *testing.T) {
	st := store.New()
	bad := rdf.IRI("http://e/badGeom")
	st.Add(rdf.T(bad, rdf.RDFType, LineString))
	st.Add(rdf.T(bad, Coordinates, rdf.NewString("not numbers")))
	rep := Validate(st)
	if rep.Valid() {
		t.Fatal("broken geometry passed validation")
	}
	errs := rep.Errors()
	if len(errs) != 1 || !errs[0].Subject.Equal(bad) {
		t.Errorf("errors = %v", errs)
	}
	if !strings.Contains(errs[0].String(), "does not decode") {
		t.Errorf("message = %s", errs[0])
	}
}

func TestValidateUnclosedRing(t *testing.T) {
	st := store.New()
	ringNode := rdf.IRI("http://e/openRing")
	st.Add(rdf.T(ringNode, rdf.RDFType, LinearRing))
	st.Add(rdf.T(ringNode, Coordinates, rdf.NewString("0,0 1,0 1,1 0,1"))) // not closed
	rep := Validate(st)
	if rep.Valid() {
		t.Error("unclosed ring passed validation")
	}
}

func TestValidateUnknownGRDFClass(t *testing.T) {
	st := store.New()
	st.Add(rdf.T(rdf.IRI("http://e/x"), rdf.RDFType, rdf.IRI(NS+"Poligon"))) // typo
	rep := Validate(st)
	warned := false
	for _, i := range rep.Issues {
		if i.Severity == "warning" && strings.Contains(i.Message, "not defined") {
			warned = true
		}
	}
	if !warned {
		t.Errorf("typo class not warned: %v", rep.Issues)
	}
	// warnings alone keep the report valid
	if !rep.Valid() {
		t.Error("warnings should not invalidate")
	}
}

func TestValidateCardinalityViolation(t *testing.T) {
	st := store.New()
	env := rdf.IRI("http://e/env")
	st.Add(rdf.T(env, rdf.RDFType, EnvelopeWithTimePeriod))
	st.Add(rdf.T(env, LowerCorner, rdf.NewString("0,0")))
	st.Add(rdf.T(env, UpperCorner, rdf.NewString("1,1")))
	st.Add(rdf.T(env, HasTimePosition, rdf.IRI("http://e/t1"))) // only one
	rep := Validate(st)
	if rep.Valid() {
		t.Fatal("cardinality violation passed")
	}
	found := false
	for _, i := range rep.Errors() {
		if strings.Contains(i.Message, "cardinality") {
			found = true
		}
	}
	if !found {
		t.Errorf("cardinality error missing: %v", rep.Issues)
	}
}

func TestValidateScenarioData(t *testing.T) {
	// The synthetic generators must produce valid GRDF.
	st := store.New()
	f := NewFeature(st, rdf.IRI("http://e/multi"), Feature)
	ring, _ := geom.NewLinearRing([]geom.Coord{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 0, Y: 0}})
	ms := geom.MultiSurface{Surfaces: []geom.Polygon{geom.NewPolygon(ring)}}
	if _, err := SetGeometry(st, f, ms, ""); err != nil {
		t.Fatal(err)
	}
	rep := Validate(st)
	if !rep.Valid() {
		t.Errorf("issues: %v", rep.Issues)
	}
}
